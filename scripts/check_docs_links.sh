#!/usr/bin/env bash
# Docs link check: every relative markdown link in docs/*.md, the top-level
# README.md, and the per-subsystem src/*/README.md files must resolve to an
# existing file or directory. External links (http/https/mailto) and pure
# in-page anchors are skipped; anchors on relative links are stripped before
# the existence check.
set -euo pipefail
cd "$(dirname "$0")/.."

failures=0
checked=0
for md in docs/*.md README.md src/*/README.md; do
  [ -f "$md" ] || continue
  dir=$(dirname "$md")
  # Pull out every](target) markdown link target, tolerating several per line.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|"#"*) continue ;;
    esac
    path="${target%%#*}"           # strip in-page anchor
    [ -n "$path" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $md -> $target (no such file: $dir/$path)"
      failures=$((failures + 1))
    fi
  done < <(grep -o ']([^)]*)' "$md" 2>/dev/null | sed 's/^](//; s/)$//' || true)
done

if [ "$checked" -eq 0 ]; then
  echo "docs link check: no links found (suspicious — did the extraction break?)"
  exit 1
fi
if [ "$failures" -gt 0 ]; then
  echo "docs link check: $failures broken link(s) out of $checked"
  exit 1
fi
echo "docs link check: all $checked relative links resolve"
