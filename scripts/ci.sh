#!/usr/bin/env bash
# CI entry point, in two modes selected by SANITIZER (docs/static-analysis.md):
#
#   SANITIZER=off (default)  configure, build (-Werror), run the test suite,
#                            run the static lint gate (scripts/check_static.sh),
#                            check the docs tree's links, then run the
#                            streaming throughput, observability, and
#                            saturation benches in quick mode (emits
#                            BENCH_streaming.json, BENCH_pattern_cache.json,
#                            BENCH_sharded.json, BENCH_framed.json,
#                            BENCH_int8.json, BENCH_obs.json,
#                            BENCH_saturation.json, BENCH_codec.json,
#                            BENCH_resilience.json and trace_obs.json in
#                            build/).
#   SANITIZER=tsan           build everything under -fsanitize=thread and run
#                            the full test suite (the stress suite included)
#                            with the pinned runtime options from
#                            scripts/san_env.sh. halt_on_error=1: the first
#                            finding fails CI.
#   SANITIZER=asan           same, under -fsanitize=address,undefined (+LSan).
#
# Sanitizer modes skip the benches and lints: their job is the race/UB gate,
# and sanitized timings would only add noise. Perf claims come from the
# default job's benches.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER=${SANITIZER:-off}
case "$SANITIZER" in
  off)  BUILD_DIR=${BUILD_DIR:-build};      SAN_PRESET="off" ;;
  tsan) BUILD_DIR=${BUILD_DIR:-build-tsan}; SAN_PRESET="thread" ;;
  asan) BUILD_DIR=${BUILD_DIR:-build-asan}; SAN_PRESET="address;undefined" ;;
  *) echo "ci.sh: SANITIZER must be off, tsan, or asan (got '$SANITIZER')" >&2
     exit 2 ;;
esac

cmake -B "$BUILD_DIR" -S . -DSNAPPIX_SANITIZE="$SAN_PRESET"
cmake --build "$BUILD_DIR" -j"$(nproc)"

if [ "$SANITIZER" != "off" ]; then
  # Pinned runtime options: halt on the first finding, no suppressions,
  # reports mirrored to $BUILD_DIR/san_report.* (uploaded as CI artifacts).
  # shellcheck source=scripts/san_env.sh
  SNAPPIX_SAN_LOG="$PWD/$BUILD_DIR/san_report" source scripts/san_env.sh
  ctest --test-dir "$BUILD_DIR" --output-on-failure
  echo "ci.sh: $SANITIZER run clean (suppressions file empty by policy)"
  exit 0
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Static lint gate: clang-tidy (when installed) + the portable grep lints.
./scripts/check_static.sh "$BUILD_DIR"

# Docs: every relative link in docs/*.md and README.md must resolve.
./scripts/check_docs_links.sh

# Streaming bench: quick mode keeps CI fast; the binary exits non-zero if any
# serving arm (batched, pattern-cache, sharded work-stealing, framed MIPI
# transport at zero faults, the fp32 half of the mixed-precision fleet)
# diverges bitwise from the sequential path, if the cache misses its
# hit/eviction gates, if the lossy framed arm's drop counters diverge from
# the injected ground truth, if int8-vs-fp32 top-1 agreement falls below
# 0.98, or — where the hardware supports it — if sharded serving falls below
# 1.5x the single-consumer arm (>= 4 hw threads) / int8 below 1.8x fp32
# classify throughput (AVX2 hosts).
(cd "$BUILD_DIR" && ./bench_streaming_throughput --quick)
echo "BENCH_streaming.json:"
cat "$BUILD_DIR/BENCH_streaming.json"
echo "BENCH_pattern_cache.json:"
cat "$BUILD_DIR/BENCH_pattern_cache.json"
echo "BENCH_sharded.json:"
cat "$BUILD_DIR/BENCH_sharded.json"
echo "BENCH_framed.json:"
cat "$BUILD_DIR/BENCH_framed.json"
echo "BENCH_int8.json:"
cat "$BUILD_DIR/BENCH_int8.json"

# Observability bench: exits non-zero if tracing with no frames sampled costs
# more than 2% throughput, 1-in-8 per-camera sampling costs more than 5%, any
# served bit differs between the traced and untraced arms, or the sampled
# arm's trace is incomplete (a sampled served frame missing any of its
# frame/capture/queue_wait/batch_assembly/infer spans), unsorted, truncated,
# or not valid JSON. Emits BENCH_obs.json and the Perfetto-loadable
# trace_obs.json.
(cd "$BUILD_DIR" && ./bench_obs_overhead --quick)
echo "BENCH_obs.json:"
cat "$BUILD_DIR/BENCH_obs.json"

# Saturation bench: offers ~3x the measured serving capacity through a
# realtime + best-effort fleet and exits non-zero if any overload invariant
# breaks — a realtime frame shed, per-camera conservation (offered == served
# + shed) off by even one frame, a starved camera, unbounded realtime p99,
# the drop-late arm shedding nothing for kDeadline, or any served prediction
# differing from the unloaded batch-1 reference (see docs/serving.md).
(cd "$BUILD_DIR" && ./bench_saturation --quick)
echo "BENCH_saturation.json:"
cat "$BUILD_DIR/BENCH_saturation.json"

# Codec frontier bench: sweeps the bit-plane wire tier across decode depths
# and exits non-zero if the full-depth framed decode is not bit-identical to
# the in-memory quantize round trip, if no truncated depth reaches 0.98 top-1
# agreement with full-fidelity classification, if that rate point puts more
# than 0.5x the raw float32 framed bytes on the wire, or if a served fleet
# classifying from early planes diverges bitwise from the pre-truncated
# in-memory reference (see docs/serving.md).
(cd "$BUILD_DIR" && ./bench_codec_frontier --quick)
echo "BENCH_codec.json:"
cat "$BUILD_DIR/BENCH_codec.json"

# Resilience bench: chaos-drives the health supervision tier and exits
# non-zero if any resilience invariant breaks — the burst-afflicted camera
# failing to engage the degradation ladder or to recover to full fidelity
# within the hysteresis deadline, a healthy camera's (or a full-fidelity)
# answer diverging from the fault-free reference, per-camera conservation
# off by one frame, the injected shard stall going undetected, the rescue
# re-routing nothing, or a realtime frame shed during the rescue (see
# docs/resilience.md).
(cd "$BUILD_DIR" && ./bench_resilience --quick)
echo "BENCH_resilience.json:"
cat "$BUILD_DIR/BENCH_resilience.json"

# Independent check that the exported trace parses as JSON (the bench already
# validates it with the in-repo parser; this cross-checks with a second
# implementation when python3 is around).
if command -v python3 > /dev/null 2>&1; then
  python3 - "$BUILD_DIR/trace_obs.json" << 'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f, parse_constant=lambda tok: sys.exit(f"non-finite token {tok!r} in trace"))
events = trace["traceEvents"]
assert events, "trace has no events"
print(f"trace_obs.json: valid JSON, {len(events)} trace events")
EOF
fi
