#!/usr/bin/env bash
# CI entry point: configure, build, run the test suite, then the streaming
# throughput bench in quick mode (emits BENCH_streaming.json and
# BENCH_pattern_cache.json in build/).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Streaming bench: quick mode keeps CI fast; the binary exits non-zero if the
# batched path is not bit-identical to the sequential path, or if the
# heterogeneous pattern-cache run fails its hit/eviction gates.
(cd "$BUILD_DIR" && ./bench_streaming_throughput --quick)
echo "BENCH_streaming.json:"
cat "$BUILD_DIR/BENCH_streaming.json"
echo "BENCH_pattern_cache.json:"
cat "$BUILD_DIR/BENCH_pattern_cache.json"
