#!/usr/bin/env bash
# CI entry point: configure, build, run the test suite, check the docs tree's
# links, then run the streaming throughput bench in quick mode (emits
# BENCH_streaming.json, BENCH_pattern_cache.json, BENCH_sharded.json,
# BENCH_framed.json and BENCH_int8.json in build/).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Docs: every relative link in docs/*.md and README.md must resolve.
./scripts/check_docs_links.sh

# Streaming bench: quick mode keeps CI fast; the binary exits non-zero if any
# serving arm (batched, pattern-cache, sharded work-stealing, framed MIPI
# transport at zero faults, the fp32 half of the mixed-precision fleet)
# diverges bitwise from the sequential path, if the cache misses its
# hit/eviction gates, if the lossy framed arm's drop counters diverge from
# the injected ground truth, if int8-vs-fp32 top-1 agreement falls below
# 0.98, or — where the hardware supports it — if sharded serving falls below
# 1.5x the single-consumer arm (>= 4 hw threads) / int8 below 1.8x fp32
# classify throughput (AVX2 hosts).
(cd "$BUILD_DIR" && ./bench_streaming_throughput --quick)
echo "BENCH_streaming.json:"
cat "$BUILD_DIR/BENCH_streaming.json"
echo "BENCH_pattern_cache.json:"
cat "$BUILD_DIR/BENCH_pattern_cache.json"
echo "BENCH_sharded.json:"
cat "$BUILD_DIR/BENCH_sharded.json"
echo "BENCH_framed.json:"
cat "$BUILD_DIR/BENCH_framed.json"
echo "BENCH_int8.json:"
cat "$BUILD_DIR/BENCH_int8.json"
