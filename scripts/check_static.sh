#!/usr/bin/env bash
# In-repo static lint gate (docs/static-analysis.md). Two layers:
#
#   1. clang-tidy over src/ via the .clang-tidy profile — runs only when
#      clang-tidy AND a compile_commands.json are available (CMake exports
#      one into the build dir). Absence is a skip, not a pass-with-warning:
#      layer 2 always runs, so the repo invariants below gate every CI job
#      even on toolchains without clang.
#
#   2. Portable grep-based lints enforcing repo invariants that no compiler
#      flag covers:
#        - the sanitizer suppressions file stays EMPTY (a suppression is a
#          deferred bug; see scripts/san_env.sh)
#        - no naked `new` / `delete` in src/ — ownership goes through
#          make_unique/make_shared/containers (there is no arena allocator
#          in-tree; if one lands, exempt its files here, not call sites)
#        - every std::atomic member/global declared in src/obs/, src/codec/,
#          src/transport/ and
#          src/runtime/ carries an adjacent `// order:` comment (same line
#          or within the 3 lines above) stating its memory-ordering
#          argument — the happens-before reasoning is part of the code
#        - no rand()/srand()/time() in src/ — all randomness flows through
#          the seeded util/rng.h so every run is reproducible
#        - no %f/%e/%a printf conversions in the JSON/stats emitters
#          (src/obs/, src/runtime/stats.cpp) — fixed-point rendering of
#          doubles bloats artifacts and invites locale/precision drift;
#          use %g forms via obs::json_number
#
# Usage: scripts/check_static.sh [build-dir]   (default: build)
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-${BUILD_DIR:-build}}
FAILURES=0

fail() {
  echo "check_static: FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

# Strips // line comments and string literal CONTENTS (quotes stay, so
# format-string lints keep their own matching) to keep the greps below from
# tripping on prose. Not a full lexer; good enough for this codebase's style.
strip_noise() {
  sed -e 's://.*$::' -e 's:"[^"]*":"":g' "$1"
}

SRC_FILES=$(find src -name '*.cpp' -o -name '*.h' | sort)

# --- 1. suppressions file must be empty -------------------------------------
if grep -vE '^\s*(#|$)' scripts/sanitizer.supp > /dev/null 2>&1; then
  fail "scripts/sanitizer.supp has active suppressions — fix the bug instead:
$(grep -nvE '^\s*(#|$)' scripts/sanitizer.supp)"
fi

# --- 2. no naked new/delete in src/ -----------------------------------------
for f in $SRC_FILES; do
  HITS=$(strip_noise "$f" | grep -nE '(^|[^_[:alnum:]])(new[[:space:]]+[[:alnum:]_:<(]|new[[:space:]]*\[|delete[[:space:]]*\[|delete[[:space:]]+[[:alnum:]_*(])' | grep -vE 'order:')
  if [ -n "$HITS" ]; then
    fail "naked new/delete in $f (use make_unique/make_shared/containers):
$HITS"
  fi
done

# --- 3. std::atomic declarations need an adjacent '// order:' comment -------
# The concurrency-heavy test suites are in scope too: a relaxed tally in a
# stress test is exactly where an unjustified ordering assumption hides.
for f in $(find src/obs src/runtime src/codec src/transport \
    tests/test_stress.cpp tests/test_overload.cpp tests/chaos.h \
    -name '*.h' -o -name '*.cpp' | sort); do
  HITS=$(awk '
    /\/\/.*order:/ { last_order = NR }
    # a contiguous // comment block extends an order: annotation downward,
    # so multi-line happens-before arguments count as adjacent
    /^[[:space:]]*\/\// { if (last_order && NR - last_order == 1) last_order = NR }
    /std::atomic</ {
      # a declaration (or local) introducing an atomic: require an order
      # comment on this line or within the 3 lines above
      if ($0 !~ /\/\/.*order:/ && (last_order == 0 || NR - last_order > 3)) {
        printf "%d:%s\n", NR, $0
      }
    }
  ' "$f")
  if [ -n "$HITS" ]; then
    fail "std::atomic without an adjacent '// order:' justification in $f:
$HITS"
  fi
done

# --- 4. no unseeded libc randomness / wall-clock seeding in src/ ------------
for f in $SRC_FILES; do
  HITS=$(strip_noise "$f" | grep -nE '(^|[^_[:alnum:]:.>])(rand|srand|time)\(' )
  if [ -n "$HITS" ]; then
    fail "rand()/srand()/time() in $f — use the seeded util/rng.h Rng:
$HITS"
  fi
done

# --- 5. no fixed-point float printf conversions in the JSON emitters --------
for f in src/obs/*.cpp src/obs/*.h src/runtime/stats.cpp; do
  HITS=$(grep -nE '%[-+ #0-9.]*l?[feFEaA]["0-9]' "$f")
  if [ -n "$HITS" ]; then
    fail "%f/%e/%a printf conversion in JSON emitter $f — use %g via json_number:
$HITS"
  fi
done

# --- clang-tidy (when available) --------------------------------------------
if command -v clang-tidy > /dev/null 2>&1 && [ -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "check_static: running clang-tidy over src/ (profile: .clang-tidy)"
  if ! find src -name '*.cpp' | sort | xargs clang-tidy -p "$BUILD_DIR" --quiet; then
    fail "clang-tidy reported errors (see output above)"
  fi
else
  echo "check_static: clang-tidy or $BUILD_DIR/compile_commands.json not found — grep lints only"
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "check_static: $FAILURES lint failure(s)" >&2
  exit 1
fi
echo "check_static: OK"
