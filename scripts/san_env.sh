#!/usr/bin/env bash
# Sanitizer runtime options, pinned in ONE place so local repros run exactly
# what CI runs (docs/static-analysis.md). Source this before running any
# binary from a sanitized build:
#
#   source scripts/san_env.sh
#   ctest --test-dir build-tsan --output-on-failure
#
# Policy:
#   - halt_on_error=1: the first finding fails the run. Sanitizer findings
#     are bugs, not warnings.
#   - The suppressions file (scripts/sanitizer.supp) MUST stay empty — a
#     suppression is a deferred bug. It is wired anyway so that any future
#     entry is at least visible in review, and CI's empty-file check
#     (scripts/check_static.sh) makes sneaking one in a lint failure.
#   - abort_on_error=0: exit(1) instead of SIGABRT so ctest reports a plain
#     failure and log files flush.
#   - log_path: findings also land in build*/san_report.* files, which CI
#     uploads as artifacts.

SNAPPIX_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SNAPPIX_SUPP="$SNAPPIX_ROOT/scripts/sanitizer.supp"
SNAPPIX_SAN_LOG="${SNAPPIX_SAN_LOG:-san_report}"

export TSAN_OPTIONS="halt_on_error=1 abort_on_error=0 second_deadlock_stack=1 suppressions=$SNAPPIX_SUPP log_path=$SNAPPIX_SAN_LOG"
export ASAN_OPTIONS="halt_on_error=1 abort_on_error=0 detect_leaks=1 strict_string_checks=1 detect_stack_use_after_return=1 suppressions=$SNAPPIX_SUPP log_path=$SNAPPIX_SAN_LOG"
export UBSAN_OPTIONS="halt_on_error=1 abort_on_error=0 print_stacktrace=1 report_error_type=1 log_path=$SNAPPIX_SAN_LOG"
export LSAN_OPTIONS="suppressions=$SNAPPIX_SUPP"
