#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "eval/metrics.h"
#include "train/optimizer.h"
#include "util/common.h"

namespace snappix::train {

namespace {

// Iterates the train split in shuffled mini-batches, invoking
// step(videos, labels) for each.
void for_each_batch(const data::VideoDataset& dataset, int batch_size, Rng& rng,
                    const std::function<void(const Tensor&, const std::vector<std::int64_t>&)>&
                        step) {
  const auto order = dataset.shuffled_train_indices(rng);
  for (std::size_t begin = 0; begin < order.size(); begin += static_cast<std::size_t>(batch_size)) {
    const std::size_t end = std::min(order.size(), begin + static_cast<std::size_t>(batch_size));
    const std::vector<std::int64_t> indices(order.begin() + static_cast<std::ptrdiff_t>(begin),
                                            order.begin() + static_cast<std::ptrdiff_t>(end));
    std::vector<std::int64_t> labels;
    const Tensor videos = dataset.train_batch(indices, labels);
    step(videos, labels);
  }
}

std::int64_t steps_per_epoch(const data::VideoDataset& dataset, int batch_size) {
  return (dataset.train_size() + batch_size - 1) / batch_size;
}

}  // namespace

FitResult fit_classifier(const std::vector<Tensor>& params, const ForwardFn& forward,
                         const data::VideoDataset& dataset, const InputTransform& transform,
                         const TrainConfig& config) {
  SNAPPIX_CHECK(config.epochs > 0 && config.batch_size > 0, "bad TrainConfig");
  AdamW optimizer(params, config.lr, 0.9F, 0.999F, 1e-8F, config.weight_decay);
  Rng rng(config.seed);
  FitResult result;
  const std::int64_t total_steps =
      static_cast<std::int64_t>(config.epochs) * steps_per_epoch(dataset, config.batch_size);
  std::int64_t step_index = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    float epoch_loss = 0.0F;
    int batches = 0;
    for_each_batch(dataset, config.batch_size, rng,
                   [&](const Tensor& videos, const std::vector<std::int64_t>& labels) {
                     optimizer.set_lr(cosine_warmup_lr(config.lr, step_index, total_steps,
                                                       config.warmup_steps));
                     optimizer.zero_grad();
                     Tensor logits = forward(transform(videos));
                     Tensor loss = cross_entropy(logits, labels);
                     loss.backward();
                     optimizer.step();
                     epoch_loss += loss.item();
                     ++batches;
                     ++step_index;
                   });
    epoch_loss /= static_cast<float>(std::max(batches, 1));
    result.epoch_losses.push_back(epoch_loss);
    if (config.verbose) {
      std::printf("  epoch %3d/%d  loss %.4f\n", epoch + 1, config.epochs,
                  static_cast<double>(epoch_loss));
    }
  }
  result.final_train_loss = result.epoch_losses.empty() ? 0.0F : result.epoch_losses.back();
  result.test_metric = evaluate_classifier(forward, dataset, transform, config.batch_size);
  return result;
}

float evaluate_classifier(const ForwardFn& forward, const data::VideoDataset& dataset,
                          const InputTransform& transform, int batch_size) {
  NoGradGuard guard;
  std::int64_t correct = 0;
  std::int64_t total = 0;
  for (std::int64_t begin = 0; begin < dataset.test_size(); begin += batch_size) {
    const std::int64_t end = std::min(dataset.test_size(), begin + batch_size);
    std::vector<std::int64_t> indices;
    for (std::int64_t i = begin; i < end; ++i) {
      indices.push_back(i);
    }
    std::vector<std::int64_t> labels;
    const Tensor videos = dataset.test_batch(indices, labels);
    const Tensor logits = forward(transform(videos));
    const auto acc = eval::top1_accuracy(logits, labels);
    correct += static_cast<std::int64_t>(
        std::lround(static_cast<double>(acc) * static_cast<double>(labels.size())));
    total += static_cast<std::int64_t>(labels.size());
  }
  return total > 0 ? static_cast<float>(correct) / static_cast<float>(total) : 0.0F;
}

FitResult fit_reconstructor(const std::vector<Tensor>& params, const ForwardFn& forward,
                            const data::VideoDataset& dataset, const InputTransform& transform,
                            const TrainConfig& config) {
  SNAPPIX_CHECK(config.epochs > 0 && config.batch_size > 0, "bad TrainConfig");
  AdamW optimizer(params, config.lr, 0.9F, 0.999F, 1e-8F, config.weight_decay);
  Rng rng(config.seed);
  FitResult result;
  const std::int64_t total_steps =
      static_cast<std::int64_t>(config.epochs) * steps_per_epoch(dataset, config.batch_size);
  std::int64_t step_index = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    float epoch_loss = 0.0F;
    int batches = 0;
    for_each_batch(dataset, config.batch_size, rng,
                   [&](const Tensor& videos, const std::vector<std::int64_t>& labels) {
                     (void)labels;
                     optimizer.set_lr(cosine_warmup_lr(config.lr, step_index, total_steps,
                                                       config.warmup_steps));
                     optimizer.zero_grad();
                     Tensor predicted = forward(transform(videos));
                     Tensor loss = mse_loss(predicted, videos);
                     loss.backward();
                     optimizer.step();
                     epoch_loss += loss.item();
                     ++batches;
                     ++step_index;
                   });
    epoch_loss /= static_cast<float>(std::max(batches, 1));
    result.epoch_losses.push_back(epoch_loss);
    if (config.verbose) {
      std::printf("  epoch %3d/%d  mse %.5f\n", epoch + 1, config.epochs,
                  static_cast<double>(epoch_loss));
    }
  }
  result.final_train_loss = result.epoch_losses.empty() ? 0.0F : result.epoch_losses.back();
  result.test_metric = evaluate_reconstructor(forward, dataset, transform, config.batch_size);
  return result;
}

float evaluate_reconstructor(const ForwardFn& forward, const data::VideoDataset& dataset,
                             const InputTransform& transform, int batch_size) {
  NoGradGuard guard;
  double mse_sum = 0.0;
  std::int64_t count = 0;
  for (std::int64_t begin = 0; begin < dataset.test_size(); begin += batch_size) {
    const std::int64_t end = std::min(dataset.test_size(), begin + batch_size);
    std::vector<std::int64_t> indices;
    for (std::int64_t i = begin; i < end; ++i) {
      indices.push_back(i);
    }
    std::vector<std::int64_t> labels;
    const Tensor videos = dataset.test_batch(indices, labels);
    const Tensor predicted = forward(transform(videos));
    const auto& dp = predicted.data();
    const auto& dt = videos.data();
    SNAPPIX_CHECK(dp.size() == dt.size(), "reconstructor output shape mismatch");
    for (std::size_t i = 0; i < dp.size(); ++i) {
      const double diff = static_cast<double>(dp[i]) - static_cast<double>(dt[i]);
      mse_sum += diff * diff;
    }
    count += static_cast<std::int64_t>(dp.size());
  }
  if (count == 0) {
    return 0.0F;
  }
  const double mse = mse_sum / static_cast<double>(count);
  return mse > 0.0 ? static_cast<float>(10.0 * std::log10(1.0 / mse))
                   : std::numeric_limits<float>::infinity();
}

}  // namespace snappix::train
