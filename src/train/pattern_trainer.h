// CE-pattern learning (paper Sec. III).
//
// Task-agnostic learning: minimize L_Cor (Eqn. 2) over a dataset with Adam
// and a straight-through estimator for the binary masking — irrespective of
// any downstream task. Also provides the task-specific (SVC2D-style)
// end-to-end learned pattern for the baseline comparison in Sec. VI-C.
#pragma once

#include <functional>
#include <vector>

#include "ce/pattern.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace snappix::train {

struct PatternTrainConfig {
  int tile = 8;
  int steps = 150;
  int batch_size = 8;
  float lr = 3e-2F;
  std::uint64_t seed = 99;
  // Keeps the exposure budget from collapsing to all-closed: penalty weight
  // pulling the mean continuous weight toward `target_exposure`.
  float budget_weight = 0.1F;
  float target_exposure = 0.5F;
  bool verbose = false;
};

struct PatternTrainResult {
  ce::CePattern pattern;
  std::vector<float> loss_curve;
  float final_loss = 0.0F;
};

// Learns the decorrelated task-agnostic pattern on `dataset` (Sec. III).
PatternTrainResult learn_decorrelated_pattern(const data::VideoDataset& dataset,
                                              const PatternTrainConfig& config);

// Learns a task-specific pattern end-to-end: the CE weights receive
// cross-entropy gradients through the given model forward (SVC2D-style,
// [17]/[18]). `model_params` are trained jointly with the pattern weights.
PatternTrainResult learn_task_pattern(
    const data::VideoDataset& dataset, const std::vector<Tensor>& model_params,
    const std::function<Tensor(const Tensor&)>& model_forward, const PatternTrainConfig& config,
    int epochs);

}  // namespace snappix::train
