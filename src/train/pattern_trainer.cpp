#include "train/pattern_trainer.h"

#include <algorithm>
#include <cstdio>

#include "ce/encode.h"
#include "ce/stats.h"
#include "train/optimizer.h"
#include "util/common.h"

namespace snappix::train {

namespace {

// Draws a random mini-batch of training videos as (B, T, H, W).
Tensor random_video_batch(const data::VideoDataset& dataset, int batch_size, Rng& rng,
                          std::vector<std::int64_t>* labels_out = nullptr) {
  std::vector<std::int64_t> indices;
  indices.reserve(static_cast<std::size_t>(batch_size));
  for (int i = 0; i < batch_size; ++i) {
    indices.push_back(rng.uniform_int(0, dataset.train_size() - 1));
  }
  std::vector<std::int64_t> labels;
  Tensor videos = dataset.train_batch(indices, labels);
  if (labels_out != nullptr) {
    *labels_out = std::move(labels);
  }
  return videos;
}

// Clamp continuous mask weights to [0, 1] after the optimizer step so the
// straight-through pass band stays meaningful.
void clamp_weights(Tensor& weights) {
  for (auto& v : weights.data()) {
    v = std::clamp(v, 0.0F, 1.0F);
  }
}

}  // namespace

PatternTrainResult learn_decorrelated_pattern(const data::VideoDataset& dataset,
                                              const PatternTrainConfig& config) {
  SNAPPIX_CHECK(config.steps > 0 && config.batch_size > 0, "bad PatternTrainConfig");
  const int frames = dataset.scene().frames;
  Rng rng(config.seed);
  // Initialize near the threshold with small jitter so gradients break ties.
  Tensor weights = Tensor::rand_uniform(Shape{frames, config.tile, config.tile}, rng, 0.45F,
                                        0.55F, /*requires_grad=*/true);
  AdamW optimizer({weights}, config.lr);
  PatternTrainResult result{ce::CePattern(frames, config.tile), {}, 0.0F};
  for (int step = 0; step < config.steps; ++step) {
    optimizer.zero_grad();
    const Tensor videos = random_video_batch(dataset, config.batch_size, rng);
    Tensor coded = ce::ce_encode_diff(videos, weights);
    Tensor loss = ce::decorrelation_loss(coded, config.tile);
    if (config.budget_weight > 0.0F) {
      // Exposure-budget regularizer: pull the mean weight toward the target.
      Tensor budget = square(add_scalar(mean_all(weights), -config.target_exposure));
      loss = add(loss, mul_scalar(budget, config.budget_weight));
    }
    loss.backward();
    optimizer.step();
    clamp_weights(weights);
    result.loss_curve.push_back(loss.item());
    if (config.verbose && (step % 25 == 0 || step == config.steps - 1)) {
      std::printf("  pattern step %4d  L_cor %.5f\n", step, static_cast<double>(loss.item()));
    }
  }
  result.final_loss = result.loss_curve.back();
  result.pattern = ce::CePattern::from_weights(weights.detach());
  // Guard against fully-closed patterns (the collapse Sec. III warns about):
  // if a pixel is never exposed, open it at a random slot so the sensor
  // read-out still carries signal for every pixel.
  auto counts = result.pattern.exposure_counts();
  for (int y = 0; y < config.tile; ++y) {
    for (int x = 0; x < config.tile; ++x) {
      if (counts[static_cast<std::size_t>(y * config.tile + x)] == 0) {
        result.pattern.set_bit(static_cast<int>(rng.uniform_int(0, frames - 1)), y, x, true);
      }
    }
  }
  return result;
}

PatternTrainResult learn_task_pattern(
    const data::VideoDataset& dataset, const std::vector<Tensor>& model_params,
    const std::function<Tensor(const Tensor&)>& model_forward, const PatternTrainConfig& config,
    int epochs) {
  SNAPPIX_CHECK(epochs > 0, "learn_task_pattern: epochs must be positive");
  const int frames = dataset.scene().frames;
  Rng rng(config.seed);
  Tensor weights = Tensor::rand_uniform(Shape{frames, config.tile, config.tile}, rng, 0.45F,
                                        0.55F, /*requires_grad=*/true);
  std::vector<Tensor> all_params = model_params;
  all_params.push_back(weights);
  AdamW optimizer(all_params, config.lr);
  PatternTrainResult result{ce::CePattern(frames, config.tile), {}, 0.0F};
  const std::int64_t steps_per_epoch =
      (dataset.train_size() + config.batch_size - 1) / config.batch_size;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    float epoch_loss = 0.0F;
    for (std::int64_t s = 0; s < steps_per_epoch; ++s) {
      optimizer.zero_grad();
      std::vector<std::int64_t> labels;
      const Tensor videos = random_video_batch(dataset, config.batch_size, rng, &labels);
      Tensor coded = ce::ce_encode_diff(videos, weights);
      Tensor logits = model_forward(coded);
      Tensor loss = cross_entropy(logits, labels);
      loss.backward();
      optimizer.step();
      clamp_weights(weights);
      epoch_loss += loss.item();
    }
    result.loss_curve.push_back(epoch_loss / static_cast<float>(steps_per_epoch));
  }
  result.final_loss = result.loss_curve.back();
  result.pattern = ce::CePattern::from_weights(weights.detach());
  return result;
}

}  // namespace snappix::train
