// First-order optimizers over parameter handles.
#pragma once

#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace snappix::train {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  // Applies one update from the accumulated gradients.
  virtual void step() = 0;
  void zero_grad();

  std::size_t num_params() const { return params_.size(); }

 protected:
  std::vector<Tensor> params_;
};

// SGD with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0F);

  void step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

// Adam / AdamW (decoupled weight decay when weight_decay > 0).
class AdamW : public Optimizer {
 public:
  AdamW(std::vector<Tensor> params, float lr, float beta1 = 0.9F, float beta2 = 0.999F,
        float eps = 1e-8F, float weight_decay = 0.0F);

  void step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

// Cosine decay with linear warmup; returns the lr for step `step` of
// `total_steps` given a base lr.
float cosine_warmup_lr(float base_lr, std::int64_t step, std::int64_t total_steps,
                       std::int64_t warmup_steps);

}  // namespace snappix::train
