#include "train/optimizer.h"

#include <cmath>

#include "util/common.h"

namespace snappix::train {

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  SNAPPIX_CHECK(!params_.empty(), "optimizer needs at least one parameter");
  for (const auto& p : params_) {
    SNAPPIX_CHECK(p.defined() && p.requires_grad(),
                  "optimizer parameters must be defined and require grad");
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) {
    p.zero_grad();
  }
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].data().size(), 0.0F);
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& impl = *params_[i].impl();
    if (impl.grad.size() != impl.data.size()) {
      continue;  // parameter untouched by the last backward
    }
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < impl.data.size(); ++j) {
      vel[j] = momentum_ * vel[j] + impl.grad[j];
      impl.data[j] -= lr_ * vel[j];
    }
  }
}

AdamW::AdamW(std::vector<Tensor> params, float lr, float beta1, float beta2, float eps,
             float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].data().size(), 0.0F);
    v_[i].assign(params_[i].data().size(), 0.0F);
  }
}

void AdamW::step() {
  ++t_;
  const float bias1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& impl = *params_[i].impl();
    if (impl.grad.size() != impl.data.size()) {
      continue;
    }
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < impl.data.size(); ++j) {
      const float g = impl.grad[j];
      m[j] = beta1_ * m[j] + (1.0F - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0F - beta2_) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      impl.data[j] -= lr_ * (m_hat / (std::sqrt(v_hat) + eps_) + weight_decay_ * impl.data[j]);
    }
  }
}

float cosine_warmup_lr(float base_lr, std::int64_t step, std::int64_t total_steps,
                       std::int64_t warmup_steps) {
  SNAPPIX_CHECK(total_steps > 0, "cosine_warmup_lr: total_steps must be positive");
  if (warmup_steps > 0 && step < warmup_steps) {
    return base_lr * static_cast<float>(step + 1) / static_cast<float>(warmup_steps);
  }
  const float progress = static_cast<float>(step - warmup_steps) /
                         static_cast<float>(std::max<std::int64_t>(1, total_steps - warmup_steps));
  constexpr float kPi = 3.14159265358979323846F;
  return 0.5F * base_lr * (1.0F + std::cos(kPi * std::min(progress, 1.0F)));
}

}  // namespace snappix::train
