// Training loops for classification (AR) and reconstruction (REC) tasks.
//
// Models are passed as forward closures plus a parameter list, so the same
// trainer drives coded-image models (SNAPPIX, SVC2D) and video models (C3D,
// VideoViT); an input transform maps the raw video batch (B, T, H, W) to
// whatever the model consumes (coded image, downsampled video, ...).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix::train {

// Maps a raw video batch (B, T, H, W) to the model's input tensor.
using InputTransform = std::function<Tensor(const Tensor&)>;
// Model forward pass; returns logits (classification) or video (REC).
using ForwardFn = std::function<Tensor(const Tensor&)>;

struct TrainConfig {
  int epochs = 10;
  int batch_size = 16;
  float lr = 1e-3F;
  float weight_decay = 1e-4F;
  std::int64_t warmup_steps = 10;
  std::uint64_t seed = 7;
  bool verbose = false;
};

struct FitResult {
  float final_train_loss = 0.0F;
  float test_metric = 0.0F;  // accuracy for AR, PSNR (dB) for REC
  std::vector<float> epoch_losses;
};

// Trains a classifier with AdamW + cosine schedule and cross-entropy.
FitResult fit_classifier(const std::vector<Tensor>& params, const ForwardFn& forward,
                         const data::VideoDataset& dataset, const InputTransform& transform,
                         const TrainConfig& config);

// Test-set top-1 accuracy of a classifier.
float evaluate_classifier(const ForwardFn& forward, const data::VideoDataset& dataset,
                          const InputTransform& transform, int batch_size = 16);

// Trains a reconstructor with MSE against the original videos; the forward
// receives transform(videos) and must return (B, T, H, W).
FitResult fit_reconstructor(const std::vector<Tensor>& params, const ForwardFn& forward,
                            const data::VideoDataset& dataset, const InputTransform& transform,
                            const TrainConfig& config);

// Test-set PSNR (dB) of a reconstructor.
float evaluate_reconstructor(const ForwardFn& forward, const data::VideoDataset& dataset,
                             const InputTransform& transform, int batch_size = 16);

}  // namespace snappix::train
