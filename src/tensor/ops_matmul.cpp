// Matrix multiplication with 2-D, batched 3-D, and batch-broadcast forms.
#include <utility>

#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/common.h"
#include "util/parallel.h"

namespace snappix {

namespace detail {

// c(m,n) (+)= a(m,k) * b(k,n), register-tiled.
//
// 4-row x 8-column accumulator tiles are held in registers across the whole
// k loop, so each b element is loaded once per 4 rows and each c element is
// touched once instead of k times — ~5x over the streaming row-at-a-time
// kernel at transformer-block shapes. Every output element still accumulates
// its k products in ascending-l order with separate mul and add, so results
// are bit-identical to the naive triple loop (the fused serving engine and
// determinism tests rely on this).
void gemm_rows_nn(const float* a, const float* b, float* c, std::int64_t i0, std::int64_t i1,
                  std::int64_t k, std::int64_t n) {
  std::int64_t j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    std::int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      const float* a0 = a + i * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      float acc[4][8] = {};
      for (std::int64_t l = 0; l < k; ++l) {
        const float* bp = b + l * n + j0;
        const float av0 = a0[l], av1 = a1[l], av2 = a2[l], av3 = a3[l];
        for (int j = 0; j < 8; ++j) {
          const float bv = bp[j];
          acc[0][j] += av0 * bv;
          acc[1][j] += av1 * bv;
          acc[2][j] += av2 * bv;
          acc[3][j] += av3 * bv;
        }
      }
      for (int r = 0; r < 4; ++r) {
        for (int j = 0; j < 8; ++j) {
          c[(i + r) * n + j0 + j] += acc[r][j];
        }
      }
    }
    for (; i < i1; ++i) {  // row tail
      const float* arow = a + i * k;
      float acc[8] = {};
      for (std::int64_t l = 0; l < k; ++l) {
        const float* bp = b + l * n + j0;
        const float av = arow[l];
        for (int j = 0; j < 8; ++j) {
          acc[j] += av * bp[j];
        }
      }
      for (int j = 0; j < 8; ++j) {
        c[i * n + j0 + j] += acc[j];
      }
    }
  }
  if (j0 < n) {  // column tail: streaming accumulation over the remainder
    const std::int64_t nt = n - j0;
    for (std::int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n + j0;
      const float* arow = a + i * k;
      for (std::int64_t l = 0; l < k; ++l) {
        const float av = arow[l];
        const float* bp = b + l * n + j0;
        for (std::int64_t j = 0; j < nt; ++j) {
          crow[j] += av * bp[j];
        }
      }
    }
  }
}

void gemm_nn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n) {
  auto rows = [&](std::int64_t i0, std::int64_t i1) { gemm_rows_nn(a, b, c, i0, i1, k, n); };
  // Thread-spawn cost dwarfs small matmuls (transformer blocks issue many of
  // them); only fan out when there is real work per thread. Row results are
  // independent, so the chunking does not change any output bit.
  constexpr std::int64_t kParallelWork = 1 << 22;
  if (m * k * n < kParallelWork) {
    rows(0, m);
    return;
  }
  parallel_for(m, rows, /*grain=*/std::max<std::int64_t>(1, kParallelWork / (k * n)));
}

// c(m,k) += a(m,n) * b(k,n)^T  (i.e. a * b^T), register-tiled.
//
// 4x4 output tiles hold their dot-product accumulators in registers, so each
// a and b element is loaded once per 4 outputs instead of once per output.
// Per element the operation sequence is unchanged from the streaming kernel:
// a zero-initialized accumulator sums the n products in ascending-l order
// with separate mul and add, then one add folds it into c — so the tiled
// kernel is bit-identical to the naive loop (training gradients depend on
// this; see the GemmBackwardKernels regression tests).
void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t n,
             std::int64_t k) {
  std::int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + i * n;
    const float* a1 = a0 + n;
    const float* a2 = a1 + n;
    const float* a3 = a2 + n;
    std::int64_t j = 0;
    for (; j + 4 <= k; j += 4) {
      const float* b0 = b + j * n;
      const float* b1 = b0 + n;
      const float* b2 = b1 + n;
      const float* b3 = b2 + n;
      float acc[4][4] = {};
      for (std::int64_t l = 0; l < n; ++l) {
        const float av0 = a0[l], av1 = a1[l], av2 = a2[l], av3 = a3[l];
        const float bv0 = b0[l], bv1 = b1[l], bv2 = b2[l], bv3 = b3[l];
        acc[0][0] += av0 * bv0;
        acc[0][1] += av0 * bv1;
        acc[0][2] += av0 * bv2;
        acc[0][3] += av0 * bv3;
        acc[1][0] += av1 * bv0;
        acc[1][1] += av1 * bv1;
        acc[1][2] += av1 * bv2;
        acc[1][3] += av1 * bv3;
        acc[2][0] += av2 * bv0;
        acc[2][1] += av2 * bv1;
        acc[2][2] += av2 * bv2;
        acc[2][3] += av2 * bv3;
        acc[3][0] += av3 * bv0;
        acc[3][1] += av3 * bv1;
        acc[3][2] += av3 * bv2;
        acc[3][3] += av3 * bv3;
      }
      for (int r = 0; r < 4; ++r) {
        for (int q = 0; q < 4; ++q) {
          c[(i + r) * k + j + q] += acc[r][q];
        }
      }
    }
    for (; j < k; ++j) {  // column tail: 4 rows x 1 output
      const float* brow = b + j * n;
      float acc[4] = {};
      for (std::int64_t l = 0; l < n; ++l) {
        const float bv = brow[l];
        acc[0] += a0[l] * bv;
        acc[1] += a1[l] * bv;
        acc[2] += a2[l] * bv;
        acc[3] += a3[l] * bv;
      }
      for (int r = 0; r < 4; ++r) {
        c[(i + r) * k + j] += acc[r];
      }
    }
  }
  for (; i < m; ++i) {  // row tail: the original streaming loop
    const float* arow = a + i * n;
    for (std::int64_t j = 0; j < k; ++j) {
      const float* brow = b + j * n;
      float acc = 0.0F;
      for (std::int64_t l = 0; l < n; ++l) {
        acc += arow[l] * brow[l];
      }
      c[i * k + j] += acc;
    }
  }
}

// c(k,n) += a(m,k)^T * b(m,n), register-tiled.
//
// The streaming kernel walked l (the reduction over m) in the OUTER loop,
// re-reading and re-writing all of c every iteration. Here a 4x8 c tile is
// loaded into registers once, accumulates its m products in the same
// ascending-l order — including the av == 0 skip, which is observable in
// floating point (it can preserve a -0.0 an explicit +0.0 add would erase) —
// and is stored once. Per element the operation sequence
// ((c + p_0) + p_1) + ... is exactly the streaming kernel's, so results are
// bit-identical while c traffic drops by a factor of m.
void gemm_tn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= k; i += 4) {
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      float acc[4][8];
      for (int r = 0; r < 4; ++r) {
        for (int q = 0; q < 8; ++q) {
          acc[r][q] = c[(i + r) * n + j + q];
        }
      }
      for (std::int64_t l = 0; l < m; ++l) {
        const float* arow = a + l * k + i;
        const float* bp = b + l * n + j;
        for (int r = 0; r < 4; ++r) {
          const float av = arow[r];
          if (av == 0.0F) {
            continue;
          }
          for (int q = 0; q < 8; ++q) {
            acc[r][q] += av * bp[q];
          }
        }
      }
      for (int r = 0; r < 4; ++r) {
        for (int q = 0; q < 8; ++q) {
          c[(i + r) * n + j + q] = acc[r][q];
        }
      }
    }
    if (j < n) {  // column tail: same order over the remaining columns
      const std::int64_t nt = n - j;
      for (std::int64_t l = 0; l < m; ++l) {
        const float* arow = a + l * k + i;
        const float* bp = b + l * n + j;
        for (int r = 0; r < 4; ++r) {
          const float av = arow[r];
          if (av == 0.0F) {
            continue;
          }
          float* crow = c + (i + r) * n + j;
          for (std::int64_t q = 0; q < nt; ++q) {
            crow[q] += av * bp[q];
          }
        }
      }
    }
  }
  if (i < k) {  // row tail: the original streaming loop over the last rows
    for (std::int64_t l = 0; l < m; ++l) {
      const float* arow = a + l * k;
      const float* brow = b + l * n;
      for (std::int64_t r = i; r < k; ++r) {
        const float av = arow[r];
        if (av == 0.0F) {
          continue;
        }
        float* crow = c + r * n;
        for (std::int64_t q = 0; q < n; ++q) {
          crow[q] += av * brow[q];
        }
      }
    }
  }
}

}  // namespace detail

using detail::gemm_nn;
using detail::gemm_nt;
using detail::gemm_tn;

Tensor matmul(const Tensor& a, const Tensor& b) {
  const int and_ = a.ndim();
  const int bnd = b.ndim();
  SNAPPIX_CHECK((and_ == 2 || and_ == 3) && (bnd == 2 || bnd == 3),
                "matmul supports 2-D/3-D inputs, got " << a.shape().to_string() << " x "
                                                       << b.shape().to_string());
  SNAPPIX_CHECK(!(and_ == 2 && bnd == 3), "matmul: (m,k) x (B,k,n) form is not supported");

  const std::int64_t batch = and_ == 3 ? a.shape()[0] : 1;
  const std::int64_t m = a.shape()[and_ - 2];
  const std::int64_t k = a.shape()[and_ - 1];
  const std::int64_t kb = b.shape()[bnd - 2];
  const std::int64_t n = b.shape()[bnd - 1];
  SNAPPIX_CHECK(k == kb, "matmul inner dims mismatch: " << a.shape().to_string() << " x "
                                                        << b.shape().to_string());
  const bool b_batched = bnd == 3;
  if (b_batched && and_ == 3) {
    SNAPPIX_CHECK(b.shape()[0] == batch, "matmul batch mismatch: " << a.shape().to_string()
                                                                   << " x "
                                                                   << b.shape().to_string());
  }

  Shape out_shape = and_ == 3 ? Shape{batch, m, n} : Shape{m, n};
  std::vector<float> out(static_cast<std::size_t>(out_shape.numel()), 0.0F);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    gemm_nn(pa + bi * m * k, b_batched ? pb + bi * k * n : pb, out.data() + bi * m * n, m, k, n);
  }

  auto ai = a.impl();
  auto bimpl = b.impl();
  return make_result(out_shape, std::move(out), {a, b},
                     [ai, bimpl, batch, m, k, n, b_batched](TensorImpl& self) {
                       const float* g = self.grad.data();
                       if (ai->requires_grad) {
                         ai->ensure_grad();
                         for (std::int64_t bi = 0; bi < batch; ++bi) {
                           // dA = dC * B^T : (m,n) x (k,n)^T -> (m,k)
                           gemm_nt(g + bi * m * n,
                                 bimpl->data.data() + (b_batched ? bi * k * n : 0),
                                 ai->grad.data() + bi * m * k, m, n, k);
                         }
                       }
                       if (bimpl->requires_grad) {
                         bimpl->ensure_grad();
                         for (std::int64_t bi = 0; bi < batch; ++bi) {
                           // dB = A^T * dC : (m,k)^T x (m,n) -> (k,n); batch-broadcast sums.
                           gemm_tn(ai->data.data() + bi * m * k, g + bi * m * n,
                                 bimpl->grad.data() + (b_batched ? bi * k * n : 0), m, k, n);
                         }
                       }
                     });
}

}  // namespace snappix
