// Matrix multiplication with 2-D, batched 3-D, and batch-broadcast forms.
#include <utility>

#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/common.h"
#include "util/parallel.h"

namespace snappix {

namespace detail {

// c(m,n) (+)= a(m,k) * b(k,n), register-tiled.
//
// 4-row x 8-column accumulator tiles are held in registers across the whole
// k loop, so each b element is loaded once per 4 rows and each c element is
// touched once instead of k times — ~5x over the streaming row-at-a-time
// kernel at transformer-block shapes. Every output element still accumulates
// its k products in ascending-l order with separate mul and add, so results
// are bit-identical to the naive triple loop (the fused serving engine and
// determinism tests rely on this).
void gemm_rows_nn(const float* a, const float* b, float* c, std::int64_t i0, std::int64_t i1,
                  std::int64_t k, std::int64_t n) {
  std::int64_t j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    std::int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      const float* a0 = a + i * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      float acc[4][8] = {};
      for (std::int64_t l = 0; l < k; ++l) {
        const float* bp = b + l * n + j0;
        const float av0 = a0[l], av1 = a1[l], av2 = a2[l], av3 = a3[l];
        for (int j = 0; j < 8; ++j) {
          const float bv = bp[j];
          acc[0][j] += av0 * bv;
          acc[1][j] += av1 * bv;
          acc[2][j] += av2 * bv;
          acc[3][j] += av3 * bv;
        }
      }
      for (int r = 0; r < 4; ++r) {
        for (int j = 0; j < 8; ++j) {
          c[(i + r) * n + j0 + j] += acc[r][j];
        }
      }
    }
    for (; i < i1; ++i) {  // row tail
      const float* arow = a + i * k;
      float acc[8] = {};
      for (std::int64_t l = 0; l < k; ++l) {
        const float* bp = b + l * n + j0;
        const float av = arow[l];
        for (int j = 0; j < 8; ++j) {
          acc[j] += av * bp[j];
        }
      }
      for (int j = 0; j < 8; ++j) {
        c[i * n + j0 + j] += acc[j];
      }
    }
  }
  if (j0 < n) {  // column tail: streaming accumulation over the remainder
    const std::int64_t nt = n - j0;
    for (std::int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n + j0;
      const float* arow = a + i * k;
      for (std::int64_t l = 0; l < k; ++l) {
        const float av = arow[l];
        const float* bp = b + l * n + j0;
        for (std::int64_t j = 0; j < nt; ++j) {
          crow[j] += av * bp[j];
        }
      }
    }
  }
}

void gemm_nn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n) {
  auto rows = [&](std::int64_t i0, std::int64_t i1) { gemm_rows_nn(a, b, c, i0, i1, k, n); };
  // Thread-spawn cost dwarfs small matmuls (transformer blocks issue many of
  // them); only fan out when there is real work per thread. Row results are
  // independent, so the chunking does not change any output bit.
  constexpr std::int64_t kParallelWork = 1 << 22;
  if (m * k * n < kParallelWork) {
    rows(0, m);
    return;
  }
  parallel_for(m, rows, /*grain=*/std::max<std::int64_t>(1, kParallelWork / (k * n)));
}

// c(m,k) += a(m,n) * b(k,n)^T  (i.e. a * b^T)
void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t n,
           std::int64_t k) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      const float* arow = a + i * n;
      const float* brow = b + j * n;
      float acc = 0.0F;
      for (std::int64_t l = 0; l < n; ++l) {
        acc += arow[l] * brow[l];
      }
      c[i * k + j] += acc;
    }
  }
}

// c(k,n) += a(m,k)^T * b(m,n)
void gemm_tn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
           std::int64_t n) {
  for (std::int64_t l = 0; l < m; ++l) {
    const float* arow = a + l * k;
    const float* brow = b + l * n;
    for (std::int64_t i = 0; i < k; ++i) {
      const float av = arow[i];
      if (av == 0.0F) {
        continue;
      }
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace detail

using detail::gemm_nn;
using detail::gemm_nt;
using detail::gemm_tn;

Tensor matmul(const Tensor& a, const Tensor& b) {
  const int and_ = a.ndim();
  const int bnd = b.ndim();
  SNAPPIX_CHECK((and_ == 2 || and_ == 3) && (bnd == 2 || bnd == 3),
                "matmul supports 2-D/3-D inputs, got " << a.shape().to_string() << " x "
                                                       << b.shape().to_string());
  SNAPPIX_CHECK(!(and_ == 2 && bnd == 3), "matmul: (m,k) x (B,k,n) form is not supported");

  const std::int64_t batch = and_ == 3 ? a.shape()[0] : 1;
  const std::int64_t m = a.shape()[and_ - 2];
  const std::int64_t k = a.shape()[and_ - 1];
  const std::int64_t kb = b.shape()[bnd - 2];
  const std::int64_t n = b.shape()[bnd - 1];
  SNAPPIX_CHECK(k == kb, "matmul inner dims mismatch: " << a.shape().to_string() << " x "
                                                        << b.shape().to_string());
  const bool b_batched = bnd == 3;
  if (b_batched && and_ == 3) {
    SNAPPIX_CHECK(b.shape()[0] == batch, "matmul batch mismatch: " << a.shape().to_string()
                                                                   << " x "
                                                                   << b.shape().to_string());
  }

  Shape out_shape = and_ == 3 ? Shape{batch, m, n} : Shape{m, n};
  std::vector<float> out(static_cast<std::size_t>(out_shape.numel()), 0.0F);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    gemm_nn(pa + bi * m * k, b_batched ? pb + bi * k * n : pb, out.data() + bi * m * n, m, k, n);
  }

  auto ai = a.impl();
  auto bimpl = b.impl();
  return make_result(out_shape, std::move(out), {a, b},
                     [ai, bimpl, batch, m, k, n, b_batched](TensorImpl& self) {
                       const float* g = self.grad.data();
                       if (ai->requires_grad) {
                         ai->ensure_grad();
                         for (std::int64_t bi = 0; bi < batch; ++bi) {
                           // dA = dC * B^T : (m,n) x (k,n)^T -> (m,k)
                           gemm_nt(g + bi * m * n,
                                 bimpl->data.data() + (b_batched ? bi * k * n : 0),
                                 ai->grad.data() + bi * m * k, m, n, k);
                         }
                       }
                       if (bimpl->requires_grad) {
                         bimpl->ensure_grad();
                         for (std::int64_t bi = 0; bi < batch; ++bi) {
                           // dB = A^T * dC : (m,k)^T x (m,n) -> (k,n); batch-broadcast sums.
                           gemm_tn(ai->data.data() + bi * m * k, g + bi * m * n,
                                 bimpl->grad.data() + (b_batched ? bi * k * n : 0), m, k, n);
                         }
                       }
                     });
}

}  // namespace snappix
