// Matrix multiplication with 2-D, batched 3-D, and batch-broadcast forms.
#include <utility>

#include "tensor/tensor.h"
#include "util/common.h"
#include "util/parallel.h"

namespace snappix {

namespace {

// c(m,n) (+)= a(m,k) * b(k,n)
void mm_nn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
           std::int64_t n) {
  auto rows = [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      const float* arow = a + i * k;
      for (std::int64_t l = 0; l < k; ++l) {
        const float av = arow[l];
        if (av == 0.0F) {
          continue;
        }
        const float* brow = b + l * n;
        for (std::int64_t j = 0; j < n; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  };
  // Thread-spawn cost dwarfs small matmuls (transformer blocks issue many of
  // them); only fan out when there is real work per thread.
  constexpr std::int64_t kParallelWork = 1 << 22;
  if (m * k * n < kParallelWork) {
    rows(0, m);
    return;
  }
  parallel_for(m, rows, /*grain=*/std::max<std::int64_t>(1, kParallelWork / (k * n)));
}

// c(m,k) += a(m,n) * b(k,n)^T  (i.e. a * b^T)
void mm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t n,
           std::int64_t k) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      const float* arow = a + i * n;
      const float* brow = b + j * n;
      float acc = 0.0F;
      for (std::int64_t l = 0; l < n; ++l) {
        acc += arow[l] * brow[l];
      }
      c[i * k + j] += acc;
    }
  }
}

// c(k,n) += a(m,k)^T * b(m,n)
void mm_tn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
           std::int64_t n) {
  for (std::int64_t l = 0; l < m; ++l) {
    const float* arow = a + l * k;
    const float* brow = b + l * n;
    for (std::int64_t i = 0; i < k; ++i) {
      const float av = arow[i];
      if (av == 0.0F) {
        continue;
      }
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  const int and_ = a.ndim();
  const int bnd = b.ndim();
  SNAPPIX_CHECK((and_ == 2 || and_ == 3) && (bnd == 2 || bnd == 3),
                "matmul supports 2-D/3-D inputs, got " << a.shape().to_string() << " x "
                                                       << b.shape().to_string());
  SNAPPIX_CHECK(!(and_ == 2 && bnd == 3), "matmul: (m,k) x (B,k,n) form is not supported");

  const std::int64_t batch = and_ == 3 ? a.shape()[0] : 1;
  const std::int64_t m = a.shape()[and_ - 2];
  const std::int64_t k = a.shape()[and_ - 1];
  const std::int64_t kb = b.shape()[bnd - 2];
  const std::int64_t n = b.shape()[bnd - 1];
  SNAPPIX_CHECK(k == kb, "matmul inner dims mismatch: " << a.shape().to_string() << " x "
                                                        << b.shape().to_string());
  const bool b_batched = bnd == 3;
  if (b_batched && and_ == 3) {
    SNAPPIX_CHECK(b.shape()[0] == batch, "matmul batch mismatch: " << a.shape().to_string()
                                                                   << " x "
                                                                   << b.shape().to_string());
  }

  Shape out_shape = and_ == 3 ? Shape{batch, m, n} : Shape{m, n};
  std::vector<float> out(static_cast<std::size_t>(out_shape.numel()), 0.0F);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    mm_nn(pa + bi * m * k, b_batched ? pb + bi * k * n : pb, out.data() + bi * m * n, m, k, n);
  }

  auto ai = a.impl();
  auto bimpl = b.impl();
  return make_result(out_shape, std::move(out), {a, b},
                     [ai, bimpl, batch, m, k, n, b_batched](TensorImpl& self) {
                       const float* g = self.grad.data();
                       if (ai->requires_grad) {
                         ai->ensure_grad();
                         for (std::int64_t bi = 0; bi < batch; ++bi) {
                           // dA = dC * B^T : (m,n) x (k,n)^T -> (m,k)
                           mm_nt(g + bi * m * n,
                                 bimpl->data.data() + (b_batched ? bi * k * n : 0),
                                 ai->grad.data() + bi * m * k, m, n, k);
                         }
                       }
                       if (bimpl->requires_grad) {
                         bimpl->ensure_grad();
                         for (std::int64_t bi = 0; bi < batch; ++bi) {
                           // dB = A^T * dC : (m,k)^T x (m,n) -> (k,n); batch-broadcast sums.
                           mm_tn(ai->data.data() + bi * m * k, g + bi * m * n,
                                 bimpl->grad.data() + (b_batched ? bi * k * n : 0), m, k, n);
                         }
                       }
                     });
}

}  // namespace snappix
