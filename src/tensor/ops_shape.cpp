// Shape-manipulation operations: reshape, transpose/permute, concat, slice,
// index_select, and 2-D tiling (used to repeat CE tile patterns across frames).
#include <numeric>
#include <utility>

#include "tensor/tensor.h"
#include "util/common.h"

namespace snappix {

namespace {

int normalize_axis(int axis, int ndim) {
  if (axis < 0) {
    axis += ndim;
  }
  SNAPPIX_CHECK(axis >= 0 && axis < ndim, "axis " << axis << " out of range for rank " << ndim);
  return axis;
}

}  // namespace

Tensor reshape(const Tensor& a, const Shape& shape) {
  SNAPPIX_CHECK(shape.numel() == a.numel(), "reshape " << a.shape().to_string() << " -> "
                                                       << shape.to_string()
                                                       << " changes element count");
  std::vector<float> out = a.data();
  auto ai = a.impl();
  return make_result(shape, std::move(out), {a}, [ai](TensorImpl& self) {
    ai->ensure_grad();
    for (std::size_t i = 0; i < self.grad.size(); ++i) {
      ai->grad[i] += self.grad[i];
    }
  });
}

Tensor permute(const Tensor& a, const std::vector<int>& order) {
  const int nd = a.ndim();
  SNAPPIX_CHECK(static_cast<int>(order.size()) == nd,
                "permute order rank mismatch for " << a.shape().to_string());
  std::vector<bool> seen(static_cast<std::size_t>(nd), false);
  std::vector<std::int64_t> out_dims(static_cast<std::size_t>(nd));
  for (int d = 0; d < nd; ++d) {
    const int src = order[static_cast<std::size_t>(d)];
    SNAPPIX_CHECK(src >= 0 && src < nd && !seen[static_cast<std::size_t>(src)],
                  "invalid permute order entry " << src);
    seen[static_cast<std::size_t>(src)] = true;
    out_dims[static_cast<std::size_t>(d)] = a.shape()[src];
  }
  const Shape out_shape{out_dims};
  const auto in_strides = a.shape().strides();
  // Stride of output dim d within the input layout.
  std::vector<std::int64_t> gather_strides(static_cast<std::size_t>(nd));
  for (int d = 0; d < nd; ++d) {
    gather_strides[static_cast<std::size_t>(d)] =
        in_strides[static_cast<std::size_t>(order[static_cast<std::size_t>(d)])];
  }
  const std::int64_t total = out_shape.numel();
  std::vector<float> out(static_cast<std::size_t>(total));
  std::vector<std::int64_t> src_offsets(static_cast<std::size_t>(total));
  const auto& da = a.data();
  std::vector<std::int64_t> index(static_cast<std::size_t>(nd), 0);
  std::int64_t src = 0;
  for (std::int64_t lin = 0; lin < total; ++lin) {
    out[static_cast<std::size_t>(lin)] = da[static_cast<std::size_t>(src)];
    src_offsets[static_cast<std::size_t>(lin)] = src;
    for (int d = nd - 1; d >= 0; --d) {
      const auto ud = static_cast<std::size_t>(d);
      ++index[ud];
      src += gather_strides[ud];
      if (index[ud] < out_shape[d]) {
        break;
      }
      src -= gather_strides[ud] * out_shape[d];
      index[ud] = 0;
    }
  }
  auto ai = a.impl();
  return make_result(out_shape, std::move(out), {a},
                     [ai, src_offsets = std::move(src_offsets)](TensorImpl& self) {
                       ai->ensure_grad();
                       for (std::size_t i = 0; i < self.grad.size(); ++i) {
                         ai->grad[static_cast<std::size_t>(src_offsets[i])] += self.grad[i];
                       }
                     });
}

Tensor transpose(const Tensor& a, int dim0, int dim1) {
  const int nd = a.ndim();
  dim0 = normalize_axis(dim0, nd);
  dim1 = normalize_axis(dim1, nd);
  std::vector<int> order(static_cast<std::size_t>(nd));
  std::iota(order.begin(), order.end(), 0);
  std::swap(order[static_cast<std::size_t>(dim0)], order[static_cast<std::size_t>(dim1)]);
  return permute(a, order);
}

Tensor concat(const std::vector<Tensor>& tensors, int axis) {
  SNAPPIX_CHECK(!tensors.empty(), "concat of zero tensors");
  const int nd = tensors.front().ndim();
  axis = normalize_axis(axis, nd);
  std::int64_t axis_total = 0;
  for (const auto& t : tensors) {
    SNAPPIX_CHECK(t.ndim() == nd, "concat rank mismatch");
    for (int d = 0; d < nd; ++d) {
      if (d != axis) {
        SNAPPIX_CHECK(t.shape()[d] == tensors.front().shape()[d],
                      "concat non-axis extent mismatch at dim " << d);
      }
    }
    axis_total += t.shape()[axis];
  }
  std::vector<std::int64_t> out_dims = tensors.front().shape().dims();
  out_dims[static_cast<std::size_t>(axis)] = axis_total;
  const Shape out_shape{out_dims};

  std::int64_t outer = 1;
  for (int d = 0; d < axis; ++d) {
    outer *= out_shape[d];
  }
  std::int64_t inner = 1;
  for (int d = axis + 1; d < nd; ++d) {
    inner *= out_shape[d];
  }

  std::vector<float> out(static_cast<std::size_t>(out_shape.numel()));
  std::int64_t axis_cursor = 0;
  struct Segment {
    std::shared_ptr<TensorImpl> impl;
    std::int64_t axis_begin;
    std::int64_t axis_extent;
  };
  std::vector<Segment> segments;
  for (const auto& t : tensors) {
    const std::int64_t extent = t.shape()[axis];
    const auto& dt = t.data();
    for (std::int64_t o = 0; o < outer; ++o) {
      const float* src = dt.data() + o * extent * inner;
      float* dst = out.data() + (o * axis_total + axis_cursor) * inner;
      std::copy(src, src + extent * inner, dst);
    }
    segments.push_back({t.impl(), axis_cursor, extent});
    axis_cursor += extent;
  }
  return make_result(out_shape, std::move(out), tensors,
                     [segments = std::move(segments), outer, inner, axis_total](TensorImpl& self) {
                       for (const auto& seg : segments) {
                         if (!seg.impl->requires_grad) {
                           continue;
                         }
                         seg.impl->ensure_grad();
                         for (std::int64_t o = 0; o < outer; ++o) {
                           const float* src =
                               self.grad.data() + (o * axis_total + seg.axis_begin) * inner;
                           float* dst = seg.impl->grad.data() + o * seg.axis_extent * inner;
                           for (std::int64_t i = 0; i < seg.axis_extent * inner; ++i) {
                             dst[i] += src[i];
                           }
                         }
                       }
                     });
}

Tensor slice(const Tensor& a, int axis, std::int64_t start, std::int64_t end) {
  const int nd = a.ndim();
  axis = normalize_axis(axis, nd);
  const std::int64_t extent = a.shape()[axis];
  SNAPPIX_CHECK(start >= 0 && end <= extent && start < end,
                "slice [" << start << ", " << end << ") out of range for axis extent " << extent);
  std::vector<std::int64_t> out_dims = a.shape().dims();
  out_dims[static_cast<std::size_t>(axis)] = end - start;
  const Shape out_shape{out_dims};
  std::int64_t outer = 1;
  for (int d = 0; d < axis; ++d) {
    outer *= a.shape()[d];
  }
  std::int64_t inner = 1;
  for (int d = axis + 1; d < nd; ++d) {
    inner *= a.shape()[d];
  }
  const std::int64_t span = end - start;
  std::vector<float> out(static_cast<std::size_t>(out_shape.numel()));
  const auto& da = a.data();
  for (std::int64_t o = 0; o < outer; ++o) {
    const float* src = da.data() + (o * extent + start) * inner;
    std::copy(src, src + span * inner, out.data() + o * span * inner);
  }
  auto ai = a.impl();
  return make_result(out_shape, std::move(out), {a},
                     [ai, outer, inner, extent, start, span](TensorImpl& self) {
                       ai->ensure_grad();
                       for (std::int64_t o = 0; o < outer; ++o) {
                         const float* src = self.grad.data() + o * span * inner;
                         float* dst = ai->grad.data() + (o * extent + start) * inner;
                         for (std::int64_t i = 0; i < span * inner; ++i) {
                           dst[i] += src[i];
                         }
                       }
                     });
}

Tensor index_select(const Tensor& a, int axis, const std::vector<std::int64_t>& indices) {
  const int nd = a.ndim();
  axis = normalize_axis(axis, nd);
  const std::int64_t extent = a.shape()[axis];
  for (const std::int64_t idx : indices) {
    SNAPPIX_CHECK(idx >= 0 && idx < extent,
                  "index_select index " << idx << " out of range for extent " << extent);
  }
  std::vector<std::int64_t> out_dims = a.shape().dims();
  out_dims[static_cast<std::size_t>(axis)] = static_cast<std::int64_t>(indices.size());
  const Shape out_shape{out_dims};
  std::int64_t outer = 1;
  for (int d = 0; d < axis; ++d) {
    outer *= a.shape()[d];
  }
  std::int64_t inner = 1;
  for (int d = axis + 1; d < nd; ++d) {
    inner *= a.shape()[d];
  }
  const auto k = static_cast<std::int64_t>(indices.size());
  std::vector<float> out(static_cast<std::size_t>(out_shape.numel()));
  const auto& da = a.data();
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t i = 0; i < k; ++i) {
      const float* src = da.data() + (o * extent + indices[static_cast<std::size_t>(i)]) * inner;
      std::copy(src, src + inner, out.data() + (o * k + i) * inner);
    }
  }
  auto ai = a.impl();
  return make_result(out_shape, std::move(out), {a},
                     [ai, indices, outer, inner, extent, k](TensorImpl& self) {
                       ai->ensure_grad();
                       for (std::int64_t o = 0; o < outer; ++o) {
                         for (std::int64_t i = 0; i < k; ++i) {
                           const float* src = self.grad.data() + (o * k + i) * inner;
                           float* dst = ai->grad.data() +
                                        (o * extent + indices[static_cast<std::size_t>(i)]) * inner;
                           for (std::int64_t r = 0; r < inner; ++r) {
                             dst[r] += src[r];
                           }
                         }
                       }
                     });
}

Tensor tile_2d(const Tensor& a, std::int64_t reps_h, std::int64_t reps_w) {
  SNAPPIX_CHECK(a.ndim() >= 2, "tile_2d needs rank >= 2, got " << a.shape().to_string());
  SNAPPIX_CHECK(reps_h >= 1 && reps_w >= 1, "tile_2d repetitions must be positive");
  const int nd = a.ndim();
  const std::int64_t th = a.shape()[nd - 2];
  const std::int64_t tw = a.shape()[nd - 1];
  std::int64_t lead = 1;
  for (int d = 0; d < nd - 2; ++d) {
    lead *= a.shape()[d];
  }
  std::vector<std::int64_t> out_dims = a.shape().dims();
  out_dims[static_cast<std::size_t>(nd - 2)] = th * reps_h;
  out_dims[static_cast<std::size_t>(nd - 1)] = tw * reps_w;
  const Shape out_shape{out_dims};
  const std::int64_t oh = th * reps_h;
  const std::int64_t ow = tw * reps_w;
  std::vector<float> out(static_cast<std::size_t>(out_shape.numel()));
  const auto& da = a.data();
  for (std::int64_t l = 0; l < lead; ++l) {
    const float* src = da.data() + l * th * tw;
    float* dst = out.data() + l * oh * ow;
    for (std::int64_t i = 0; i < oh; ++i) {
      const float* srow = src + (i % th) * tw;
      float* drow = dst + i * ow;
      for (std::int64_t j = 0; j < ow; ++j) {
        drow[j] = srow[j % tw];
      }
    }
  }
  auto ai = a.impl();
  return make_result(out_shape, std::move(out), {a},
                     [ai, lead, th, tw, oh, ow](TensorImpl& self) {
                       ai->ensure_grad();
                       for (std::int64_t l = 0; l < lead; ++l) {
                         const float* g = self.grad.data() + l * oh * ow;
                         float* dst = ai->grad.data() + l * th * tw;
                         for (std::int64_t i = 0; i < oh; ++i) {
                           float* drow = dst + (i % th) * tw;
                           const float* grow = g + i * ow;
                           for (std::int64_t j = 0; j < ow; ++j) {
                             drow[j % tw] += grow[j];
                           }
                         }
                       }
                     });
}

}  // namespace snappix
