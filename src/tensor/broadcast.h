// Numpy-style broadcasting helpers shared by the elementwise kernels.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/shape.h"

namespace snappix::detail {

// Broadcast two shapes following numpy rules; throws on incompatibility.
Shape broadcast_shapes(const Shape& a, const Shape& b);

// Per-output-dimension strides into each input; 0 for broadcast dimensions.
struct BroadcastPlan {
  Shape out_shape;
  std::vector<std::int64_t> a_strides;
  std::vector<std::int64_t> b_strides;
  bool same_shape = false;  // fast path: both inputs already out-shaped
};

BroadcastPlan make_broadcast_plan(const Shape& a, const Shape& b);

// Calls fn(out_index, a_offset, b_offset) for every element of the broadcast
// output, walking the inputs with an incremental odometer.
void for_each_broadcast(const BroadcastPlan& plan,
                        const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn);

}  // namespace snappix::detail
