#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "util/common.h"

namespace snappix {

namespace grad_mode {
namespace {
thread_local bool grad_enabled = true;
}  // namespace
bool enabled() { return grad_enabled; }
void set_enabled(bool value) { grad_enabled = value; }
}  // namespace grad_mode

// --- factories ---------------------------------------------------------------

Tensor Tensor::make(const Shape& shape, std::vector<float> values, bool requires_grad) {
  SNAPPIX_CHECK(static_cast<std::int64_t>(values.size()) == shape.numel(),
                "value count " << values.size() << " does not match shape " << shape.to_string());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::zeros(const Shape& shape, bool requires_grad) {
  return make(shape, std::vector<float>(static_cast<std::size_t>(shape.numel()), 0.0F),
              requires_grad);
}

Tensor Tensor::ones(const Shape& shape, bool requires_grad) {
  return make(shape, std::vector<float>(static_cast<std::size_t>(shape.numel()), 1.0F),
              requires_grad);
}

Tensor Tensor::full(const Shape& shape, float value, bool requires_grad) {
  return make(shape, std::vector<float>(static_cast<std::size_t>(shape.numel()), value),
              requires_grad);
}

Tensor Tensor::from_vector(std::vector<float> values, const Shape& shape, bool requires_grad) {
  return make(shape, std::move(values), requires_grad);
}

Tensor Tensor::scalar(float value, bool requires_grad) {
  return make(Shape{1}, std::vector<float>{value}, requires_grad);
}

Tensor Tensor::randn(const Shape& shape, Rng& rng, float stddev, bool requires_grad) {
  std::vector<float> values(static_cast<std::size_t>(shape.numel()));
  for (auto& v : values) {
    v = rng.normal(0.0F, stddev);
  }
  return make(shape, std::move(values), requires_grad);
}

Tensor Tensor::rand_uniform(const Shape& shape, Rng& rng, float lo, float hi, bool requires_grad) {
  std::vector<float> values(static_cast<std::size_t>(shape.numel()));
  for (auto& v : values) {
    v = rng.uniform(lo, hi);
  }
  return make(shape, std::move(values), requires_grad);
}

// --- structure & data access ---------------------------------------------------

const Shape& Tensor::shape() const {
  SNAPPIX_CHECK(defined(), "operation on undefined tensor");
  return impl_->shape;
}

std::vector<float>& Tensor::data() {
  SNAPPIX_CHECK(defined(), "operation on undefined tensor");
  return impl_->data;
}

const std::vector<float>& Tensor::data() const {
  SNAPPIX_CHECK(defined(), "operation on undefined tensor");
  return impl_->data;
}

float Tensor::item() const {
  SNAPPIX_CHECK(numel() == 1, "item() requires a single-element tensor, got "
                                  << shape().to_string());
  return data()[0];
}

namespace {
std::int64_t linear_index(const Shape& shape, std::initializer_list<std::int64_t> index) {
  SNAPPIX_CHECK(static_cast<int>(index.size()) == shape.ndim(),
                "index rank " << index.size() << " does not match shape " << shape.to_string());
  const auto strides = shape.strides();
  std::int64_t off = 0;
  int d = 0;
  for (const std::int64_t i : index) {
    SNAPPIX_CHECK(i >= 0 && i < shape[d], "index " << i << " out of bounds in dim " << d
                                                   << " of " << shape.to_string());
    off += i * strides[static_cast<std::size_t>(d)];
    ++d;
  }
  return off;
}
}  // namespace

float Tensor::at(std::initializer_list<std::int64_t> index) const {
  return data()[static_cast<std::size_t>(linear_index(shape(), index))];
}

void Tensor::set_at(std::initializer_list<std::int64_t> index, float value) {
  data()[static_cast<std::size_t>(linear_index(shape(), index))] = value;
}

// --- autograd -----------------------------------------------------------------

bool Tensor::requires_grad() const { return defined() && impl_->requires_grad; }

Tensor& Tensor::set_requires_grad(bool value) {
  SNAPPIX_CHECK(defined(), "operation on undefined tensor");
  impl_->requires_grad = value;
  return *this;
}

Tensor Tensor::grad() const {
  SNAPPIX_CHECK(defined(), "operation on undefined tensor");
  if (impl_->grad.size() != impl_->data.size()) {
    return Tensor::zeros(impl_->shape);
  }
  return Tensor::from_vector(impl_->grad, impl_->shape);
}

void Tensor::zero_grad() {
  SNAPPIX_CHECK(defined(), "operation on undefined tensor");
  impl_->grad.assign(impl_->data.size(), 0.0F);
}

Tensor Tensor::detach() const {
  SNAPPIX_CHECK(defined(), "operation on undefined tensor");
  return Tensor::from_vector(impl_->data, impl_->shape);
}

void Tensor::copy_from(const Tensor& other) {
  SNAPPIX_CHECK(defined() && other.defined(), "copy_from on undefined tensor");
  SNAPPIX_CHECK(shape() == other.shape(), "copy_from shape mismatch: " << shape().to_string()
                                                                       << " vs "
                                                                       << other.shape().to_string());
  impl_->data = other.impl_->data;
}

namespace {
// Post-order DFS yielding parents before children.
void topo_sort(TensorImpl* root, std::vector<TensorImpl*>& order) {
  std::unordered_set<TensorImpl*> visited;
  // Explicit stack: (node, next parent index to visit).
  std::vector<std::pair<TensorImpl*, std::size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->parents.size()) {
      TensorImpl* parent = node->parents[next].get();
      ++next;
      if (parent != nullptr && visited.find(parent) == visited.end()) {
        visited.insert(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}
}  // namespace

void Tensor::backward() {
  SNAPPIX_CHECK(defined(), "backward() on undefined tensor");
  SNAPPIX_CHECK(numel() == 1, "backward() requires a scalar, got " << shape().to_string());
  SNAPPIX_CHECK(impl_->requires_grad, "backward() on tensor that does not require grad");
  std::vector<TensorImpl*> order;
  topo_sort(impl_.get(), order);
  impl_->ensure_grad();
  impl_->grad[0] += 1.0F;
  // `order` has parents before children; run children (outputs) first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn && node->grad.size() == node->data.size()) {
      node->backward_fn(*node);
    }
  }
}

// --- op plumbing ----------------------------------------------------------------

Tensor make_result(const Shape& shape, std::vector<float> values, std::vector<Tensor> parents,
                   std::function<void(TensorImpl&)> backward_fn) {
  SNAPPIX_CHECK(static_cast<std::int64_t>(values.size()) == shape.numel(),
                "internal: result size mismatch for shape " << shape.to_string());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(values);
  bool track = false;
  if (grad_mode::enabled()) {
    for (const auto& p : parents) {
      if (p.defined() && p.requires_grad()) {
        track = true;
        break;
      }
    }
  }
  if (track) {
    impl->requires_grad = true;
    impl->backward_fn = std::move(backward_fn);
    for (const auto& p : parents) {
      if (p.defined()) {
        impl->parents.push_back(p.impl());
      }
    }
  }
  return Tensor(std::move(impl));
}

void accumulate_grad(TensorImpl& impl, const std::vector<float>& values) {
  impl.ensure_grad();
  SNAPPIX_CHECK(values.size() == impl.grad.size(), "internal: grad size mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    impl.grad[i] += values[i];
  }
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) {
    return false;
  }
  const auto& da = a.data();
  const auto& db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    const float diff = std::fabs(da[i] - db[i]);
    const float tol = atol + rtol * std::fabs(db[i]);
    if (diff > tol || std::isnan(diff)) {
      return false;
    }
  }
  return true;
}

}  // namespace snappix
