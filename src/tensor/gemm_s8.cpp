#include "tensor/gemm_s8.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"
#include "util/parallel.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace snappix::detail {

namespace {

#if defined(__AVX2__)

inline std::int32_t hsum_epi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

// Sign-extend 16 int8 lanes to int16 and multiply-accumulate pairs into
// int32 (vpmaddwd). Every intermediate fits: |a*b| <= 127^2 and madd's pair
// sum is formed at 32-bit width, so the arithmetic is exact.
inline __m256i dot16(__m256i acc, const std::int8_t* a, const std::int8_t* b) {
  const __m256i va = _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a)));
  const __m256i vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(b)));
  return _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
}

// 2-row x 4-channel register tile: the two a-row vectors are loaded once per
// 16-k chunk and shared across four b rows, so the kernel retires ~16 MACs
// per instruction pair instead of re-streaming a for every output.
void gemm_s8_rows(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                  std::int64_t i0, std::int64_t i1, std::int64_t k, std::int64_t n) {
  std::int64_t i = i0;
  for (; i + 2 <= i1; i += 2) {
    const std::int8_t* a0 = a + i * k;
    const std::int8_t* a1 = a0 + k;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* b0 = b + j * k;
      const std::int8_t* b1 = b0 + k;
      const std::int8_t* b2 = b1 + k;
      const std::int8_t* b3 = b2 + k;
      __m256i acc00 = _mm256_setzero_si256(), acc01 = _mm256_setzero_si256();
      __m256i acc02 = _mm256_setzero_si256(), acc03 = _mm256_setzero_si256();
      __m256i acc10 = _mm256_setzero_si256(), acc11 = _mm256_setzero_si256();
      __m256i acc12 = _mm256_setzero_si256(), acc13 = _mm256_setzero_si256();
      std::int64_t l = 0;
      for (; l + 16 <= k; l += 16) {
        const __m256i va0 =
            _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a0 + l)));
        const __m256i va1 =
            _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a1 + l)));
        const __m256i vb0 =
            _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + l)));
        const __m256i vb1 =
            _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(b1 + l)));
        const __m256i vb2 =
            _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(b2 + l)));
        const __m256i vb3 =
            _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(b3 + l)));
        acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(va0, vb0));
        acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(va0, vb1));
        acc02 = _mm256_add_epi32(acc02, _mm256_madd_epi16(va0, vb2));
        acc03 = _mm256_add_epi32(acc03, _mm256_madd_epi16(va0, vb3));
        acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(va1, vb0));
        acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(va1, vb1));
        acc12 = _mm256_add_epi32(acc12, _mm256_madd_epi16(va1, vb2));
        acc13 = _mm256_add_epi32(acc13, _mm256_madd_epi16(va1, vb3));
      }
      std::int32_t s00 = hsum_epi32(acc00), s01 = hsum_epi32(acc01);
      std::int32_t s02 = hsum_epi32(acc02), s03 = hsum_epi32(acc03);
      std::int32_t s10 = hsum_epi32(acc10), s11 = hsum_epi32(acc11);
      std::int32_t s12 = hsum_epi32(acc12), s13 = hsum_epi32(acc13);
      for (; l < k; ++l) {
        const std::int32_t av0 = a0[l], av1 = a1[l];
        s00 += av0 * b0[l];
        s01 += av0 * b1[l];
        s02 += av0 * b2[l];
        s03 += av0 * b3[l];
        s10 += av1 * b0[l];
        s11 += av1 * b1[l];
        s12 += av1 * b2[l];
        s13 += av1 * b3[l];
      }
      std::int32_t* c0 = c + i * n + j;
      std::int32_t* c1 = c0 + n;
      c0[0] = s00;
      c0[1] = s01;
      c0[2] = s02;
      c0[3] = s03;
      c1[0] = s10;
      c1[1] = s11;
      c1[2] = s12;
      c1[3] = s13;
    }
    for (; j < n; ++j) {  // channel tail
      const std::int8_t* brow = b + j * k;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      std::int64_t l = 0;
      for (; l + 16 <= k; l += 16) {
        acc0 = dot16(acc0, a0 + l, brow + l);
        acc1 = dot16(acc1, a1 + l, brow + l);
      }
      std::int32_t s0 = hsum_epi32(acc0), s1 = hsum_epi32(acc1);
      for (; l < k; ++l) {
        s0 += static_cast<std::int32_t>(a0[l]) * brow[l];
        s1 += static_cast<std::int32_t>(a1[l]) * brow[l];
      }
      c[i * n + j] = s0;
      c[(i + 1) * n + j] = s1;
    }
  }
  for (; i < i1; ++i) {  // row tail
    const std::int8_t* arow = a + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int8_t* brow = b + j * k;
      __m256i acc = _mm256_setzero_si256();
      std::int64_t l = 0;
      for (; l + 16 <= k; l += 16) {
        acc = dot16(acc, arow + l, brow + l);
      }
      std::int32_t s = hsum_epi32(acc);
      for (; l < k; ++l) {
        s += static_cast<std::int32_t>(arow[l]) * brow[l];
      }
      c[i * n + j] = s;
    }
  }
}

#else  // scalar fallback

void gemm_s8_rows(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                  std::int64_t i0, std::int64_t i1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const std::int8_t* arow = a + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int8_t* brow = b + j * k;
      std::int32_t acc = 0;
      for (std::int64_t l = 0; l < k; ++l) {
        acc += static_cast<std::int32_t>(arow[l]) * static_cast<std::int32_t>(brow[l]);
      }
      c[i * n + j] = acc;
    }
  }
}

#endif

}  // namespace

void gemm_s8_nt(const std::int8_t* a, const std::int8_t* b, std::int32_t* c, std::int64_t m,
                std::int64_t k, std::int64_t n) {
  SNAPPIX_CHECK(k <= kGemmS8MaxK, "gemm_s8_nt reduction depth k = "
                                      << k << " can overflow the int32 accumulator (max "
                                      << kGemmS8MaxK << ")");
  auto rows = [&](std::int64_t i0, std::int64_t i1) { gemm_s8_rows(a, b, c, i0, i1, k, n); };
  // Same fan-out policy as the float gemm_nn: spawning threads only pays off
  // past real work, and int32 accumulation is exact, so the partition can
  // never change an output value. The threshold comparison divides instead
  // of multiplying — m * k * n itself could overflow int64 on adversarial
  // shapes, and signed overflow is UB.
  constexpr std::int64_t kParallelWork = 1 << 22;
  const std::int64_t row_work = std::max<std::int64_t>(1, k * n);
  if (m < (kParallelWork + row_work - 1) / row_work) {
    rows(0, m);
    return;
  }
  parallel_for(m, rows, /*grain=*/std::max<std::int64_t>(1, kParallelWork / row_work));
}

void gemm_s8_nt_ref(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                    std::int64_t m, std::int64_t k, std::int64_t n) {
  SNAPPIX_CHECK(k <= kGemmS8MaxK, "gemm_s8_nt_ref reduction depth k = "
                                      << k << " can overflow the int32 accumulator (max "
                                      << kGemmS8MaxK << ")");
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t l = 0; l < k; ++l) {
        acc += static_cast<std::int32_t>(a[i * k + l]) * static_cast<std::int32_t>(b[j * k + l]);
      }
      c[i * n + j] = acc;
    }
  }
}

bool gemm_s8_simd_enabled() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

float absmax(const float* x, std::int64_t n) {
  float amax = 0.0F;
  for (std::int64_t i = 0; i < n; ++i) {
    amax = std::max(amax, std::fabs(x[i]));
  }
  return amax;
}

float symmetric_scale(float absmax_value) {
  return absmax_value > 0.0F ? absmax_value / 127.0F : 1.0F;
}

void quantize_symmetric_ref(const float* x, std::int64_t n, float scale, std::int8_t* q) {
  const float inv = 1.0F / scale;
  for (std::int64_t i = 0; i < n; ++i) {
    const float r = std::nearbyintf(x[i] * inv);
    q[i] = static_cast<std::int8_t>(std::max(-127.0F, std::min(127.0F, r)));
  }
}

#if defined(__AVX2__)
namespace {

// Shared tail of both int8 quantizers: clamp in fp32 FIRST so vcvtps2dq can
// never overflow to INT_MIN (whose saturating pack would flip a huge
// positive input to -128); clamping before or after nearest-even rounding is
// equivalent on [-127, 127], so results stay bit-identical to the scalar
// references. Packs four 8-float vectors into 32 int8s, restoring byte
// order after the two in-lane packs (epi32 -> epi16 -> epi8).
inline __m256i clamp_round_pack_epi8(const __m256 (&scaled)[4]) {
  const __m256 lo = _mm256_set1_ps(-127.0F);
  const __m256 hi = _mm256_set1_ps(127.0F);
  const __m256i unshuffle = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  __m256i v[4];
  for (int c = 0; c < 4; ++c) {
    v[c] = _mm256_cvtps_epi32(_mm256_max_ps(lo, _mm256_min_ps(hi, scaled[c])));
  }
  const __m256i p8 = _mm256_packs_epi16(_mm256_packs_epi32(v[0], v[1]),
                                        _mm256_packs_epi32(v[2], v[3]));
  return _mm256_permutevar8x32_epi32(p8, unshuffle);
}

}  // namespace
#endif

void quantize_symmetric(const float* x, std::int64_t n, float scale, std::int8_t* q) {
#if defined(__AVX2__)
  const __m256 inv = _mm256_set1_ps(1.0F / scale);
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256 scaled[4];
    for (int c = 0; c < 4; ++c) {
      scaled[c] = _mm256_mul_ps(_mm256_loadu_ps(x + i + c * 8), inv);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i), clamp_round_pack_epi8(scaled));
  }
  if (i < n) {
    quantize_symmetric_ref(x + i, n - i, scale, q + i);
  }
#else
  quantize_symmetric_ref(x, n, scale, q);
#endif
}

void requantize_rows_ref(const std::int32_t* acc, const float* deq, const float* bias,
                         float inv_scale, std::int8_t* q, std::int64_t rows,
                         std::int64_t n) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int32_t* arow = acc + r * n;
    std::int8_t* qrow = q + r * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float v = (static_cast<float>(arow[j]) * deq[j] + bias[j]) * inv_scale;
      const float rounded = std::nearbyintf(v);
      qrow[j] = static_cast<std::int8_t>(std::max(-127.0F, std::min(127.0F, rounded)));
    }
  }
}

void requantize_rows(const std::int32_t* acc, const float* deq, const float* bias,
                     float inv_scale, std::int8_t* q, std::int64_t rows, std::int64_t n) {
#if defined(__AVX2__)
  const __m256 vs = _mm256_set1_ps(inv_scale);
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int32_t* arow = acc + r * n;
    std::int8_t* qrow = q + r * n;
    std::int64_t j = 0;
    for (; j + 32 <= n; j += 32) {
      __m256 scaled[4];
      for (int c = 0; c < 4; ++c) {
        const std::int64_t o = j + c * 8;
        const __m256 f = _mm256_cvtepi32_ps(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arow + o)));
        scaled[c] = _mm256_mul_ps(
            _mm256_add_ps(_mm256_mul_ps(f, _mm256_loadu_ps(deq + o)),
                          _mm256_loadu_ps(bias + o)),
            vs);
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(qrow + j),
                          clamp_round_pack_epi8(scaled));
    }
    if (j < n) {
      requantize_rows_ref(arow + j, deq + j, bias + j, inv_scale, qrow + j, 1, n - j);
    }
  }
#else
  requantize_rows_ref(acc, deq, bias, inv_scale, q, rows, n);
#endif
}

void quantize_weights_per_channel(const float* w, std::int64_t k, std::int64_t n,
                                  std::int8_t* wq, float* scales) {
  for (std::int64_t j = 0; j < n; ++j) {
    float amax = 0.0F;
    for (std::int64_t l = 0; l < k; ++l) {
      amax = std::max(amax, std::fabs(w[l * n + j]));
    }
    const float scale = symmetric_scale(amax);
    const float inv = 1.0F / scale;
    scales[j] = scale;
    for (std::int64_t l = 0; l < k; ++l) {
      const float r = std::nearbyintf(w[l * n + j] * inv);
      wq[j * k + l] = static_cast<std::int8_t>(std::max(-127.0F, std::min(127.0F, r)));
    }
  }
}

}  // namespace snappix::detail
