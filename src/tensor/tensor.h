// Tensor: a dynamically shaped float tensor with reverse-mode autodiff.
//
// Tensor is a cheap-to-copy handle (shared_ptr to TensorImpl). Operations are
// free functions that build a tape: each result remembers its parents and a
// backward closure. Calling backward() on a scalar runs reverse-mode
// accumulation through the tape.
//
// Autograd is define-by-run and can be disabled with NoGradGuard (used for
// inference and for plain numeric work such as the sensor simulator).
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"

namespace snappix {

struct TensorImpl;
class Tensor;

// Thread-local switch controlling whether new ops record the autograd tape.
namespace grad_mode {
bool enabled();
void set_enabled(bool value);
}  // namespace grad_mode

// RAII guard that disables gradient recording within a scope.
class NoGradGuard {
 public:
  NoGradGuard() : previous_(grad_mode::enabled()) { grad_mode::set_enabled(false); }
  ~NoGradGuard() { grad_mode::set_enabled(previous_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  bool requires_grad = false;
  std::vector<float> grad;  // same size as data once touched by backward
  // Backward closure: reads this->grad and accumulates into parents' grads.
  std::function<void(TensorImpl&)> backward_fn;
  std::vector<std::shared_ptr<TensorImpl>> parents;

  void ensure_grad() {
    if (grad.size() != data.size()) {
      grad.assign(data.size(), 0.0F);
    }
  }
};

class Tensor {
 public:
  Tensor() = default;

  // --- factories ------------------------------------------------------------
  static Tensor zeros(const Shape& shape, bool requires_grad = false);
  static Tensor ones(const Shape& shape, bool requires_grad = false);
  static Tensor full(const Shape& shape, float value, bool requires_grad = false);
  static Tensor from_vector(std::vector<float> values, const Shape& shape,
                            bool requires_grad = false);
  static Tensor scalar(float value, bool requires_grad = false);
  static Tensor randn(const Shape& shape, Rng& rng, float stddev = 1.0F,
                      bool requires_grad = false);
  static Tensor rand_uniform(const Shape& shape, Rng& rng, float lo = 0.0F, float hi = 1.0F,
                             bool requires_grad = false);

  // --- structure ------------------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int ndim() const { return shape().ndim(); }
  std::int64_t numel() const { return shape().numel(); }

  // --- data access ----------------------------------------------------------
  std::vector<float>& data();
  const std::vector<float>& data() const;
  float item() const;  // requires numel() == 1
  float at(std::initializer_list<std::int64_t> index) const;
  void set_at(std::initializer_list<std::int64_t> index, float value);

  // --- autograd -------------------------------------------------------------
  bool requires_grad() const;
  Tensor& set_requires_grad(bool value);
  // Gradient accumulated by the last backward(); zeros-shaped if untouched.
  Tensor grad() const;
  void zero_grad();
  // Runs reverse-mode accumulation from this scalar tensor.
  void backward();
  // Value copy detached from the tape.
  Tensor detach() const;
  // In-place value copy from another tensor of the same shape (no tape).
  void copy_from(const Tensor& other);

  std::shared_ptr<TensorImpl>& impl() { return impl_; }
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}
  static Tensor make(const Shape& shape, std::vector<float> values, bool requires_grad);

  std::shared_ptr<TensorImpl> impl_;

  friend Tensor make_result(const Shape& shape, std::vector<float> values,
                            std::vector<Tensor> parents,
                            std::function<void(TensorImpl&)> backward_fn);
};

// Internal helper for op implementations: wraps forward results and attaches
// the backward closure when grad mode is on and any parent requires grad.
Tensor make_result(const Shape& shape, std::vector<float> values, std::vector<Tensor> parents,
                   std::function<void(TensorImpl&)> backward_fn);

// Accumulates `values` into impl's grad buffer (resizing it on first touch).
void accumulate_grad(TensorImpl& impl, const std::vector<float>& values);

// --- elementwise binary (broadcasting) --------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// --- scalar variants --------------------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
Tensor pow_scalar(const Tensor& a, float exponent);

// --- elementwise unary ------------------------------------------------------
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor gelu(const Tensor& a);  // tanh approximation
Tensor sigmoid(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor square(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor clamp(const Tensor& a, float lo, float hi);
// Straight-through binarization: forward 1[x > threshold], backward identity
// for x within [pass_lo, pass_hi] and zero outside (clipped STE).
Tensor binarize_ste(const Tensor& a, float threshold = 0.5F, float pass_lo = 0.0F,
                    float pass_hi = 1.0F);
// Dropout with inverted scaling; identity when `training` is false.
Tensor dropout(const Tensor& a, float p, Rng& rng, bool training);

// --- matmul -----------------------------------------------------------------
// Supports (m,k)x(k,n), (b,m,k)x(b,k,n) and (b,m,k)x(k,n).
Tensor matmul(const Tensor& a, const Tensor& b);

// --- reductions -------------------------------------------------------------
Tensor sum_all(const Tensor& a);
Tensor mean_all(const Tensor& a);
Tensor sum(const Tensor& a, int axis, bool keepdim = false);
Tensor mean(const Tensor& a, int axis, bool keepdim = false);
Tensor max_values(const Tensor& a, int axis, bool keepdim = false);
// Argmax along the last axis (no gradient). Returns int indices.
std::vector<std::int64_t> argmax_last_axis(const Tensor& a);

// --- softmax & losses -------------------------------------------------------
Tensor softmax(const Tensor& a, int axis);
Tensor log_softmax(const Tensor& a, int axis);
// Mean cross-entropy over the batch; logits (B, C), labels in [0, C).
Tensor cross_entropy(const Tensor& logits, const std::vector<std::int64_t>& labels);
Tensor mse_loss(const Tensor& prediction, const Tensor& target);
// MSE restricted to entries where mask == 1 (mask broadcastable to pred).
Tensor masked_mse_loss(const Tensor& prediction, const Tensor& target, const Tensor& mask);

// --- shape ops ----------------------------------------------------------------
Tensor reshape(const Tensor& a, const Shape& shape);
Tensor transpose(const Tensor& a, int dim0, int dim1);
Tensor permute(const Tensor& a, const std::vector<int>& order);
Tensor concat(const std::vector<Tensor>& tensors, int axis);
Tensor slice(const Tensor& a, int axis, std::int64_t start, std::int64_t end);
Tensor index_select(const Tensor& a, int axis, const std::vector<std::int64_t>& indices);
// Tiles the last two dims: input (..., th, tw) -> (..., th*reps_h, tw*reps_w).
// Backward sums gradients over the repetitions (used for tile-repetitive CE).
Tensor tile_2d(const Tensor& a, std::int64_t reps_h, std::int64_t reps_w);

// --- convolution & pooling ----------------------------------------------------
// x: (B, C, H, W), w: (O, C, kh, kw), optional bias (O).
Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& bias, int stride, int padding);
// x: (B, C, T, H, W), w: (O, C, kt, kh, kw), optional bias (O).
Tensor conv3d(const Tensor& x, const Tensor& w, const Tensor& bias, int stride_t, int stride_hw,
              int pad_t, int pad_hw);
Tensor avg_pool2d(const Tensor& x, int kernel, int stride);
Tensor max_pool2d(const Tensor& x, int kernel, int stride);
Tensor avg_pool3d(const Tensor& x, int kernel_t, int kernel_hw, int stride_t, int stride_hw);

// --- numeric helpers (no autograd) --------------------------------------------
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5F, float rtol = 1e-4F);

}  // namespace snappix
