#include "tensor/broadcast.h"

#include <algorithm>

namespace snappix::detail {

Shape broadcast_shapes(const Shape& a, const Shape& b) {
  const int nd = std::max(a.ndim(), b.ndim());
  std::vector<std::int64_t> out(static_cast<std::size_t>(nd), 1);
  for (int i = 0; i < nd; ++i) {
    const std::int64_t da = i < a.ndim() ? a[a.ndim() - 1 - i] : 1;
    const std::int64_t db = i < b.ndim() ? b[b.ndim() - 1 - i] : 1;
    SNAPPIX_CHECK(da == db || da == 1 || db == 1,
                  "cannot broadcast " << a.to_string() << " with " << b.to_string());
    out[static_cast<std::size_t>(nd - 1 - i)] = std::max(da, db);
  }
  return Shape(out);
}

BroadcastPlan make_broadcast_plan(const Shape& a, const Shape& b) {
  BroadcastPlan plan;
  plan.out_shape = broadcast_shapes(a, b);
  if (a == b) {
    plan.same_shape = true;
    return plan;
  }
  const int nd = plan.out_shape.ndim();
  const auto a_strides_native = a.strides();
  const auto b_strides_native = b.strides();
  plan.a_strides.assign(static_cast<std::size_t>(nd), 0);
  plan.b_strides.assign(static_cast<std::size_t>(nd), 0);
  for (int i = 0; i < nd; ++i) {
    // Align from the trailing dimension.
    const int ai = a.ndim() - 1 - i;
    const int bi = b.ndim() - 1 - i;
    const int oi = nd - 1 - i;
    if (ai >= 0 && a[ai] != 1) {
      plan.a_strides[static_cast<std::size_t>(oi)] = a_strides_native[static_cast<std::size_t>(ai)];
    }
    if (bi >= 0 && b[bi] != 1) {
      plan.b_strides[static_cast<std::size_t>(oi)] = b_strides_native[static_cast<std::size_t>(bi)];
    }
  }
  return plan;
}

void for_each_broadcast(const BroadcastPlan& plan,
                        const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn) {
  const std::int64_t total = plan.out_shape.numel();
  if (plan.same_shape) {
    for (std::int64_t i = 0; i < total; ++i) {
      fn(i, i, i);
    }
    return;
  }
  const int nd = plan.out_shape.ndim();
  if (nd == 0) {
    fn(0, 0, 0);
    return;
  }
  std::vector<std::int64_t> index(static_cast<std::size_t>(nd), 0);
  std::int64_t a_off = 0;
  std::int64_t b_off = 0;
  for (std::int64_t lin = 0; lin < total; ++lin) {
    fn(lin, a_off, b_off);
    // Odometer increment from the last dimension.
    for (int d = nd - 1; d >= 0; --d) {
      const auto ud = static_cast<std::size_t>(d);
      ++index[ud];
      a_off += plan.a_strides[ud];
      b_off += plan.b_strides[ud];
      if (index[ud] < plan.out_shape[d]) {
        break;
      }
      // Roll over: subtract the full extent of this dimension.
      a_off -= plan.a_strides[ud] * plan.out_shape[d];
      b_off -= plan.b_strides[ud] * plan.out_shape[d];
      index[ud] = 0;
    }
  }
}

}  // namespace snappix::detail
