// Int8 GEMM kernels + symmetric quantization helpers for the quantized
// serving engine (runtime/engine.cpp).
//
// Unlike the float kernels in gemm.h — whose accumulation ORDER is part of
// the bit-exactness contract — int8 x int8 products accumulate into int32
// exactly (no rounding), so the AVX2 path, the scalar fallback, and any
// row partition produce identical results by construction. The contract
// here is exactness against the naive reference (gemm_s8_nt_ref), which the
// quantization tests pin down.
//
// Weights are stored PRE-TRANSPOSED: b is (n, k) row-major, one output
// channel per row, so both operands stream contiguously along k and the
// per-output-channel dequantization scale lives next to its weights.
#pragma once

#include <cstdint>

namespace snappix::detail {

// Largest reduction depth the int32 accumulator provably holds: every
// partial sum is bounded by k * 128 * 128 (int8 magnitudes are <= 128), so
// k <= 2^31 / 2^14 keeps the scalar accumulation inside int32 — beyond it a
// dot product could overflow, which for the SIGNED scalar accumulator is
// undefined behavior (the AVX2 lanes would silently wrap to a different
// answer). gemm_s8_nt and gemm_s8_nt_ref reject larger k up front; pinned by
// GemmS8.RejectsAccumulatorOverflowDepth in tests/test_quant.cpp.
constexpr std::int64_t kGemmS8MaxK = (std::int64_t{1} << 31) / (128 * 128) - 1;

// c(m, n) = a(m, k) @ b(n, k)^T with int32 accumulation. `c` is fully
// overwritten. AVX2 (vpmaddwd over sign-extended int8 lanes) when compiled
// in, scalar otherwise — bit-identical either way. Rows are independent, so
// large problems fan out across threads without changing any output.
// Requires k <= kGemmS8MaxK (throws std::runtime_error beyond it).
void gemm_s8_nt(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                std::int64_t m, std::int64_t k, std::int64_t n);

// Naive triple-loop reference, always scalar; the exactness oracle for tests.
void gemm_s8_nt_ref(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                    std::int64_t m, std::int64_t k, std::int64_t n);

// True when gemm_s8_nt runs the AVX2 path (build had -mavx2).
bool gemm_s8_simd_enabled();

// max(|x[i]|) over n values; 0 for an empty range.
float absmax(const float* x, std::int64_t n);

// Symmetric scale for the int8 grid [-127, 127]: absmax / 127, or 1 when the
// tensor is all zero (any scale quantizes zero to zero).
float symmetric_scale(float absmax_value);

// q[i] = clamp(nearbyint(x[i] / scale), -127, 127). Round-to-nearest-even
// (the default FP environment), deterministic across runs and hosts. AVX2
// (clamp in fp32, then vcvtps2dq's nearest-even rounding + saturating packs)
// when compiled in, scalar otherwise — bit-identical either way, pinned by
// quantize_symmetric_ref in the tests.
void quantize_symmetric(const float* x, std::int64_t n, float scale, std::int8_t* q);

// Always-scalar reference for quantize_symmetric; the exactness oracle.
void quantize_symmetric_ref(const float* x, std::int64_t n, float scale, std::int8_t* q);

// Per-channel requantization of int32 GEMM output straight onto an int8
// grid: q[r, j] = clamp(nearbyint((acc[r, j] * deq[j] + bias[j]) * inv_scale))
// — the fused dequantize + rescale the quantized engine uses between
// back-to-back int8 GEMMs (fc1 -> GELU LUT -> fc2). Same AVX2
// clamp-before-round pack pipeline as quantize_symmetric, bit-identical to
// the scalar reference.
void requantize_rows(const std::int32_t* acc, const float* deq, const float* bias,
                     float inv_scale, std::int8_t* q, std::int64_t rows, std::int64_t n);

// Always-scalar reference for requantize_rows; the exactness oracle.
void requantize_rows_ref(const std::int32_t* acc, const float* deq, const float* bias,
                         float inv_scale, std::int8_t* q, std::int64_t rows, std::int64_t n);

// Per-output-channel symmetric weight quantization with layout transpose:
// w is (k, n) with one output channel per COLUMN (the layout Linear weights
// use); wq is (n, k) with channel j's weights contiguous in row j, quantized
// with its own scale scales[j] = absmax(w[:, j]) / 127.
void quantize_weights_per_channel(const float* w, std::int64_t k, std::int64_t n,
                                  std::int8_t* wq, float* scales);

}  // namespace snappix::detail
