// Naive direct convolutions and pooling. Model sizes in this repo are small
// enough that direct loops (parallelized over batch x output-channel) are
// sufficient; correctness is established by gradient-check tests.
#include <limits>
#include <utility>

#include "tensor/tensor.h"
#include "util/common.h"
#include "util/parallel.h"

namespace snappix {

Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& bias, int stride, int padding) {
  SNAPPIX_CHECK(x.ndim() == 4, "conv2d input must be (B,C,H,W), got " << x.shape().to_string());
  SNAPPIX_CHECK(w.ndim() == 4, "conv2d weight must be (O,C,kh,kw), got " << w.shape().to_string());
  SNAPPIX_CHECK(stride >= 1 && padding >= 0, "conv2d: bad stride/padding");
  const std::int64_t batch = x.shape()[0];
  const std::int64_t cin = x.shape()[1];
  const std::int64_t h = x.shape()[2];
  const std::int64_t wd = x.shape()[3];
  const std::int64_t cout = w.shape()[0];
  const std::int64_t kh = w.shape()[2];
  const std::int64_t kw = w.shape()[3];
  SNAPPIX_CHECK(w.shape()[1] == cin, "conv2d channel mismatch: " << x.shape().to_string() << " vs "
                                                                 << w.shape().to_string());
  if (bias.defined()) {
    SNAPPIX_CHECK(bias.ndim() == 1 && bias.shape()[0] == cout, "conv2d bias must be (O)");
  }
  const std::int64_t oh = (h + 2 * padding - kh) / stride + 1;
  const std::int64_t ow = (wd + 2 * padding - kw) / stride + 1;
  SNAPPIX_CHECK(oh > 0 && ow > 0, "conv2d output would be empty");

  const Shape out_shape{batch, cout, oh, ow};
  std::vector<float> out(static_cast<std::size_t>(out_shape.numel()), 0.0F);
  const float* px = x.data().data();
  const float* pw = w.data().data();
  const float* pb = bias.defined() ? bias.data().data() : nullptr;

  parallel_for(batch * cout, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t bo = i0; bo < i1; ++bo) {
      const std::int64_t b = bo / cout;
      const std::int64_t o = bo % cout;
      float* dst = out.data() + (b * cout + o) * oh * ow;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float acc = pb != nullptr ? pb[o] : 0.0F;
          for (std::int64_t c = 0; c < cin; ++c) {
            const float* xc = px + (b * cin + c) * h * wd;
            const float* wc = pw + (o * cin + c) * kh * kw;
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t iy = oy * stride + ky - padding;
              if (iy < 0 || iy >= h) {
                continue;
              }
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ix = ox * stride + kx - padding;
                if (ix < 0 || ix >= wd) {
                  continue;
                }
                acc += xc[iy * wd + ix] * wc[ky * kw + kx];
              }
            }
          }
          dst[oy * ow + ox] = acc;
        }
      }
    }
  });

  auto xi = x.impl();
  auto wi = w.impl();
  auto bi = bias.defined() ? bias.impl() : nullptr;
  std::vector<Tensor> parents = bias.defined() ? std::vector<Tensor>{x, w, bias}
                                               : std::vector<Tensor>{x, w};
  return make_result(
      out_shape, std::move(out), std::move(parents),
      [xi, wi, bi, batch, cin, h, wd, cout, kh, kw, oh, ow, stride, padding](TensorImpl& self) {
        const float* g = self.grad.data();
        if (xi->requires_grad) {
          xi->ensure_grad();
        }
        if (wi->requires_grad) {
          wi->ensure_grad();
        }
        if (bi != nullptr && bi->requires_grad) {
          bi->ensure_grad();
        }
        for (std::int64_t b = 0; b < batch; ++b) {
          for (std::int64_t o = 0; o < cout; ++o) {
            const float* grow = g + (b * cout + o) * oh * ow;
            for (std::int64_t oy = 0; oy < oh; ++oy) {
              for (std::int64_t ox = 0; ox < ow; ++ox) {
                const float gv = grow[oy * ow + ox];
                if (gv == 0.0F) {
                  continue;
                }
                if (bi != nullptr && bi->requires_grad) {
                  bi->grad[static_cast<std::size_t>(o)] += gv;
                }
                for (std::int64_t c = 0; c < cin; ++c) {
                  const std::int64_t xbase = (b * cin + c) * h * wd;
                  const std::int64_t wbase = (o * cin + c) * kh * kw;
                  for (std::int64_t ky = 0; ky < kh; ++ky) {
                    const std::int64_t iy = oy * stride + ky - padding;
                    if (iy < 0 || iy >= h) {
                      continue;
                    }
                    for (std::int64_t kx = 0; kx < kw; ++kx) {
                      const std::int64_t ix = ox * stride + kx - padding;
                      if (ix < 0 || ix >= wd) {
                        continue;
                      }
                      if (xi->requires_grad) {
                        xi->grad[static_cast<std::size_t>(xbase + iy * wd + ix)] +=
                            gv * wi->data[static_cast<std::size_t>(wbase + ky * kw + kx)];
                      }
                      if (wi->requires_grad) {
                        wi->grad[static_cast<std::size_t>(wbase + ky * kw + kx)] +=
                            gv * xi->data[static_cast<std::size_t>(xbase + iy * wd + ix)];
                      }
                    }
                  }
                }
              }
            }
          }
        }
      });
}

Tensor conv3d(const Tensor& x, const Tensor& w, const Tensor& bias, int stride_t, int stride_hw,
              int pad_t, int pad_hw) {
  SNAPPIX_CHECK(x.ndim() == 5, "conv3d input must be (B,C,T,H,W), got " << x.shape().to_string());
  SNAPPIX_CHECK(w.ndim() == 5, "conv3d weight must be (O,C,kt,kh,kw), got "
                                   << w.shape().to_string());
  const std::int64_t batch = x.shape()[0];
  const std::int64_t cin = x.shape()[1];
  const std::int64_t t = x.shape()[2];
  const std::int64_t h = x.shape()[3];
  const std::int64_t wd = x.shape()[4];
  const std::int64_t cout = w.shape()[0];
  const std::int64_t kt = w.shape()[2];
  const std::int64_t kh = w.shape()[3];
  const std::int64_t kw = w.shape()[4];
  SNAPPIX_CHECK(w.shape()[1] == cin, "conv3d channel mismatch");
  if (bias.defined()) {
    SNAPPIX_CHECK(bias.ndim() == 1 && bias.shape()[0] == cout, "conv3d bias must be (O)");
  }
  const std::int64_t ot = (t + 2 * pad_t - kt) / stride_t + 1;
  const std::int64_t oh = (h + 2 * pad_hw - kh) / stride_hw + 1;
  const std::int64_t ow = (wd + 2 * pad_hw - kw) / stride_hw + 1;
  SNAPPIX_CHECK(ot > 0 && oh > 0 && ow > 0, "conv3d output would be empty");

  const Shape out_shape{batch, cout, ot, oh, ow};
  std::vector<float> out(static_cast<std::size_t>(out_shape.numel()), 0.0F);
  const float* px = x.data().data();
  const float* pw = w.data().data();
  const float* pb = bias.defined() ? bias.data().data() : nullptr;

  parallel_for(batch * cout, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t bo = i0; bo < i1; ++bo) {
      const std::int64_t b = bo / cout;
      const std::int64_t o = bo % cout;
      float* dst = out.data() + (b * cout + o) * ot * oh * ow;
      for (std::int64_t oz = 0; oz < ot; ++oz) {
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            float acc = pb != nullptr ? pb[o] : 0.0F;
            for (std::int64_t c = 0; c < cin; ++c) {
              const float* xc = px + ((b * cin + c) * t) * h * wd;
              const float* wc = pw + ((o * cin + c) * kt) * kh * kw;
              for (std::int64_t kz = 0; kz < kt; ++kz) {
                const std::int64_t iz = oz * stride_t + kz - pad_t;
                if (iz < 0 || iz >= t) {
                  continue;
                }
                for (std::int64_t ky = 0; ky < kh; ++ky) {
                  const std::int64_t iy = oy * stride_hw + ky - pad_hw;
                  if (iy < 0 || iy >= h) {
                    continue;
                  }
                  for (std::int64_t kx = 0; kx < kw; ++kx) {
                    const std::int64_t ix = ox * stride_hw + kx - pad_hw;
                    if (ix < 0 || ix >= wd) {
                      continue;
                    }
                    acc += xc[(iz * h + iy) * wd + ix] * wc[(kz * kh + ky) * kw + kx];
                  }
                }
              }
            }
            dst[(oz * oh + oy) * ow + ox] = acc;
          }
        }
      }
    }
  });

  auto xi = x.impl();
  auto wi = w.impl();
  auto bi = bias.defined() ? bias.impl() : nullptr;
  std::vector<Tensor> parents = bias.defined() ? std::vector<Tensor>{x, w, bias}
                                               : std::vector<Tensor>{x, w};
  return make_result(
      out_shape, std::move(out), std::move(parents),
      [xi, wi, bi, batch, cin, t, h, wd, cout, kt, kh, kw, ot, oh, ow, stride_t, stride_hw, pad_t,
       pad_hw](TensorImpl& self) {
        const float* g = self.grad.data();
        if (xi->requires_grad) {
          xi->ensure_grad();
        }
        if (wi->requires_grad) {
          wi->ensure_grad();
        }
        if (bi != nullptr && bi->requires_grad) {
          bi->ensure_grad();
        }
        for (std::int64_t b = 0; b < batch; ++b) {
          for (std::int64_t o = 0; o < cout; ++o) {
            const float* grow = g + (b * cout + o) * ot * oh * ow;
            for (std::int64_t oz = 0; oz < ot; ++oz) {
              for (std::int64_t oy = 0; oy < oh; ++oy) {
                for (std::int64_t ox = 0; ox < ow; ++ox) {
                  const float gv = grow[(oz * oh + oy) * ow + ox];
                  if (gv == 0.0F) {
                    continue;
                  }
                  if (bi != nullptr && bi->requires_grad) {
                    bi->grad[static_cast<std::size_t>(o)] += gv;
                  }
                  for (std::int64_t c = 0; c < cin; ++c) {
                    const std::int64_t xbase = ((b * cin + c) * t) * h * wd;
                    const std::int64_t wbase = ((o * cin + c) * kt) * kh * kw;
                    for (std::int64_t kz = 0; kz < kt; ++kz) {
                      const std::int64_t iz = oz * stride_t + kz - pad_t;
                      if (iz < 0 || iz >= t) {
                        continue;
                      }
                      for (std::int64_t ky = 0; ky < kh; ++ky) {
                        const std::int64_t iy = oy * stride_hw + ky - pad_hw;
                        if (iy < 0 || iy >= h) {
                          continue;
                        }
                        for (std::int64_t kx = 0; kx < kw; ++kx) {
                          const std::int64_t ix = ox * stride_hw + kx - pad_hw;
                          if (ix < 0 || ix >= wd) {
                            continue;
                          }
                          const auto xoff =
                              static_cast<std::size_t>(xbase + (iz * h + iy) * wd + ix);
                          const auto woff =
                              static_cast<std::size_t>(wbase + (kz * kh + ky) * kw + kx);
                          if (xi->requires_grad) {
                            xi->grad[xoff] += gv * wi->data[woff];
                          }
                          if (wi->requires_grad) {
                            wi->grad[woff] += gv * xi->data[xoff];
                          }
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      });
}

Tensor avg_pool2d(const Tensor& x, int kernel, int stride) {
  SNAPPIX_CHECK(x.ndim() == 4, "avg_pool2d input must be (B,C,H,W)");
  SNAPPIX_CHECK(kernel >= 1 && stride >= 1, "avg_pool2d: bad kernel/stride");
  const std::int64_t batch = x.shape()[0];
  const std::int64_t c = x.shape()[1];
  const std::int64_t h = x.shape()[2];
  const std::int64_t w = x.shape()[3];
  const std::int64_t oh = (h - kernel) / stride + 1;
  const std::int64_t ow = (w - kernel) / stride + 1;
  SNAPPIX_CHECK(oh > 0 && ow > 0, "avg_pool2d output would be empty");
  const Shape out_shape{batch, c, oh, ow};
  std::vector<float> out(static_cast<std::size_t>(out_shape.numel()), 0.0F);
  const auto& dx = x.data();
  const float inv = 1.0F / static_cast<float>(kernel * kernel);
  for (std::int64_t bc = 0; bc < batch * c; ++bc) {
    const float* src = dx.data() + bc * h * w;
    float* dst = out.data() + bc * oh * ow;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float acc = 0.0F;
        for (int ky = 0; ky < kernel; ++ky) {
          for (int kx = 0; kx < kernel; ++kx) {
            acc += src[(oy * stride + ky) * w + ox * stride + kx];
          }
        }
        dst[oy * ow + ox] = acc * inv;
      }
    }
  }
  auto xi = x.impl();
  return make_result(out_shape, std::move(out), {x},
                     [xi, batch, c, h, w, oh, ow, kernel, stride, inv](TensorImpl& self) {
                       xi->ensure_grad();
                       for (std::int64_t bc = 0; bc < batch * c; ++bc) {
                         const float* g = self.grad.data() + bc * oh * ow;
                         float* dst = xi->grad.data() + bc * h * w;
                         for (std::int64_t oy = 0; oy < oh; ++oy) {
                           for (std::int64_t ox = 0; ox < ow; ++ox) {
                             const float gv = g[oy * ow + ox] * inv;
                             for (int ky = 0; ky < kernel; ++ky) {
                               for (int kx = 0; kx < kernel; ++kx) {
                                 dst[(oy * stride + ky) * w + ox * stride + kx] += gv;
                               }
                             }
                           }
                         }
                       }
                     });
}

Tensor max_pool2d(const Tensor& x, int kernel, int stride) {
  SNAPPIX_CHECK(x.ndim() == 4, "max_pool2d input must be (B,C,H,W)");
  SNAPPIX_CHECK(kernel >= 1 && stride >= 1, "max_pool2d: bad kernel/stride");
  const std::int64_t batch = x.shape()[0];
  const std::int64_t c = x.shape()[1];
  const std::int64_t h = x.shape()[2];
  const std::int64_t w = x.shape()[3];
  const std::int64_t oh = (h - kernel) / stride + 1;
  const std::int64_t ow = (w - kernel) / stride + 1;
  SNAPPIX_CHECK(oh > 0 && ow > 0, "max_pool2d output would be empty");
  const Shape out_shape{batch, c, oh, ow};
  std::vector<float> out(static_cast<std::size_t>(out_shape.numel()));
  std::vector<std::int64_t> arg(out.size());
  const auto& dx = x.data();
  for (std::int64_t bc = 0; bc < batch * c; ++bc) {
    const float* src = dx.data() + bc * h * w;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        std::int64_t best_off = 0;
        for (int ky = 0; ky < kernel; ++ky) {
          for (int kx = 0; kx < kernel; ++kx) {
            const std::int64_t off = (oy * stride + ky) * w + ox * stride + kx;
            if (src[off] > best) {
              best = src[off];
              best_off = bc * h * w + off;
            }
          }
        }
        const auto oidx = static_cast<std::size_t>(bc * oh * ow + oy * ow + ox);
        out[oidx] = best;
        arg[oidx] = best_off;
      }
    }
  }
  auto xi = x.impl();
  return make_result(out_shape, std::move(out), {x},
                     [xi, arg = std::move(arg)](TensorImpl& self) {
                       xi->ensure_grad();
                       for (std::size_t i = 0; i < self.grad.size(); ++i) {
                         xi->grad[static_cast<std::size_t>(arg[i])] += self.grad[i];
                       }
                     });
}

Tensor avg_pool3d(const Tensor& x, int kernel_t, int kernel_hw, int stride_t, int stride_hw) {
  SNAPPIX_CHECK(x.ndim() == 5, "avg_pool3d input must be (B,C,T,H,W)");
  const std::int64_t batch = x.shape()[0];
  const std::int64_t c = x.shape()[1];
  const std::int64_t t = x.shape()[2];
  const std::int64_t h = x.shape()[3];
  const std::int64_t w = x.shape()[4];
  const std::int64_t ot = (t - kernel_t) / stride_t + 1;
  const std::int64_t oh = (h - kernel_hw) / stride_hw + 1;
  const std::int64_t ow = (w - kernel_hw) / stride_hw + 1;
  SNAPPIX_CHECK(ot > 0 && oh > 0 && ow > 0, "avg_pool3d output would be empty");
  const Shape out_shape{batch, c, ot, oh, ow};
  std::vector<float> out(static_cast<std::size_t>(out_shape.numel()), 0.0F);
  const auto& dx = x.data();
  const float inv = 1.0F / static_cast<float>(kernel_t * kernel_hw * kernel_hw);
  for (std::int64_t bc = 0; bc < batch * c; ++bc) {
    const float* src = dx.data() + bc * t * h * w;
    float* dst = out.data() + bc * ot * oh * ow;
    for (std::int64_t oz = 0; oz < ot; ++oz) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0F;
          for (int kz = 0; kz < kernel_t; ++kz) {
            for (int ky = 0; ky < kernel_hw; ++ky) {
              for (int kx = 0; kx < kernel_hw; ++kx) {
                acc += src[((oz * stride_t + kz) * h + oy * stride_hw + ky) * w + ox * stride_hw +
                           kx];
              }
            }
          }
          dst[(oz * oh + oy) * ow + ox] = acc * inv;
        }
      }
    }
  }
  auto xi = x.impl();
  return make_result(
      out_shape, std::move(out), {x},
      [xi, batch, c, t, h, w, ot, oh, ow, kernel_t, kernel_hw, stride_t, stride_hw,
       inv](TensorImpl& self) {
        xi->ensure_grad();
        for (std::int64_t bc = 0; bc < batch * c; ++bc) {
          const float* g = self.grad.data() + bc * ot * oh * ow;
          float* dst = xi->grad.data() + bc * t * h * w;
          for (std::int64_t oz = 0; oz < ot; ++oz) {
            for (std::int64_t oy = 0; oy < oh; ++oy) {
              for (std::int64_t ox = 0; ox < ow; ++ox) {
                const float gv = g[(oz * oh + oy) * ow + ox] * inv;
                for (int kz = 0; kz < kernel_t; ++kz) {
                  for (int ky = 0; ky < kernel_hw; ++ky) {
                    for (int kx = 0; kx < kernel_hw; ++kx) {
                      dst[((oz * stride_t + kz) * h + oy * stride_hw + ky) * w + ox * stride_hw +
                          kx] += gv;
                    }
                  }
                }
              }
            }
          }
        }
      });
}

}  // namespace snappix
