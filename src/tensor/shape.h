// Shape: an immutable list of dimension extents with row-major stride helpers.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/common.h"

namespace snappix {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) { validate(); }

  int ndim() const { return static_cast<int>(dims_.size()); }

  std::int64_t numel() const {
    std::int64_t n = 1;
    for (const std::int64_t d : dims_) {
      n *= d;
    }
    return n;
  }

  // Extent of dimension `i`; negative indices count from the back.
  std::int64_t operator[](int i) const {
    const int n = ndim();
    if (i < 0) {
      i += n;
    }
    SNAPPIX_CHECK(i >= 0 && i < n, "dimension index " << i << " out of range for " << to_string());
    return dims_[static_cast<std::size_t>(i)];
  }

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  // Row-major (C-order) strides in elements.
  std::vector<std::int64_t> strides() const {
    std::vector<std::int64_t> s(dims_.size(), 1);
    for (int i = ndim() - 2; i >= 0; --i) {
      s[static_cast<std::size_t>(i)] =
          s[static_cast<std::size_t>(i + 1)] * dims_[static_cast<std::size_t>(i + 1)];
    }
    return s;
  }

  std::string to_string() const {
    std::string out = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += std::to_string(dims_[i]);
    }
    out += "]";
    return out;
  }

 private:
  void validate() const {
    for (const std::int64_t d : dims_) {
      SNAPPIX_CHECK(d >= 0, "negative dimension in shape " << to_string());
    }
  }

  std::vector<std::int64_t> dims_;
};

}  // namespace snappix
