// Raw single-precision GEMM kernels shared by the autograd matmul op and the
// fused serving engine (runtime/engine.cpp).
//
// The serving engine must produce logits bit-identical to the tape-based
// forward pass, so it calls the *same* kernel the matmul op uses rather than
// reimplementing the loop (identical code + identical flags = identical
// floating-point results).
#pragma once

#include <cstdint>

namespace snappix::detail {

// c(m,n) = a(m,k) * b(k,n). `c` MUST be zero-initialized: the tiled kernel
// sums each element's k products (in ascending order) into a local
// accumulator and stores the total, which rounds differently from
// element-wise accumulation if c started nonzero.
void gemm_nn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n);

// c(m,k) += a(m,n) * b(k,n)^T  (i.e. a * b^T). Register-tiled like gemm_nn;
// each element still sums its n products in ascending order into a fresh
// accumulator and folds it into c with one add, so results are bit-identical
// to the naive loop.
void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t n,
             std::int64_t k);

// c(k,n) += a(m,k)^T * b(m,n). Register-tiled; each element's read-modify-
// write chain ((c + p_0) + p_1) + ... runs in ascending-m order with the
// historical av == 0 skip preserved, so results are bit-identical to the
// naive loop even when c starts nonzero (grad accumulation relies on this).
void gemm_tn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n);

}  // namespace snappix::detail
