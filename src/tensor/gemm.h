// Raw single-precision GEMM kernels shared by the autograd matmul op and the
// fused serving engine (runtime/engine.cpp).
//
// The serving engine must produce logits bit-identical to the tape-based
// forward pass, so it calls the *same* kernel the matmul op uses rather than
// reimplementing the loop (identical code + identical flags = identical
// floating-point results).
#pragma once

#include <cstdint>

namespace snappix::detail {

// c(m,n) = a(m,k) * b(k,n). `c` MUST be zero-initialized: the tiled kernel
// sums each element's k products (in ascending order) into a local
// accumulator and stores the total, which rounds differently from
// element-wise accumulation if c started nonzero.
void gemm_nn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n);

// c(m,k) += a(m,n) * b(k,n)^T  (i.e. a * b^T)
void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t n,
             std::int64_t k);

// c(k,n) += a(m,k)^T * b(m,n)
void gemm_tn(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n);

}  // namespace snappix::detail
