// Elementwise binary (broadcasting), scalar, and unary operations.
#include <cmath>
#include <utility>

#include "tensor/broadcast.h"
#include "tensor/tensor.h"
#include "util/common.h"

namespace snappix {

namespace {

constexpr float kPi = 3.14159265358979323846F;

// Generic broadcasting binary op.
//   forward(a, b) -> out
//   dda(a, b) -> d out / d a        ddb(a, b) -> d out / d b
template <typename Fwd, typename Dda, typename Ddb>
Tensor binary_op(const Tensor& a, const Tensor& b, Fwd forward, Dda dda, Ddb ddb) {
  auto plan = detail::make_broadcast_plan(a.shape(), b.shape());
  std::vector<float> out(static_cast<std::size_t>(plan.out_shape.numel()));
  const auto& da = a.data();
  const auto& db = b.data();
  if (plan.same_shape) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = forward(da[i], db[i]);
    }
  } else {
    detail::for_each_broadcast(plan, [&](std::int64_t o, std::int64_t ai, std::int64_t bi) {
      out[static_cast<std::size_t>(o)] =
          forward(da[static_cast<std::size_t>(ai)], db[static_cast<std::size_t>(bi)]);
    });
  }
  auto ai = a.impl();
  auto bi = b.impl();
  return make_result(
      plan.out_shape, std::move(out), {a, b},
      [ai, bi, plan, dda, ddb](TensorImpl& self) {
        const bool need_a = ai->requires_grad;
        const bool need_b = bi->requires_grad;
        if (need_a) {
          ai->ensure_grad();
        }
        if (need_b) {
          bi->ensure_grad();
        }
        if (plan.same_shape) {
          for (std::size_t i = 0; i < self.grad.size(); ++i) {
            const float g = self.grad[i];
            if (need_a) {
              ai->grad[i] += g * dda(ai->data[i], bi->data[i]);
            }
            if (need_b) {
              bi->grad[i] += g * ddb(ai->data[i], bi->data[i]);
            }
          }
        } else {
          detail::for_each_broadcast(
              plan, [&](std::int64_t o, std::int64_t aoff, std::int64_t boff) {
                const float g = self.grad[static_cast<std::size_t>(o)];
                const float av = ai->data[static_cast<std::size_t>(aoff)];
                const float bv = bi->data[static_cast<std::size_t>(boff)];
                if (need_a) {
                  ai->grad[static_cast<std::size_t>(aoff)] += g * dda(av, bv);
                }
                if (need_b) {
                  bi->grad[static_cast<std::size_t>(boff)] += g * ddb(av, bv);
                }
              });
        }
      });
}

// Generic unary op: forward(x) and derivative expressed from (x, y).
template <typename Fwd, typename Dd>
Tensor unary_op(const Tensor& a, Fwd forward, Dd derivative) {
  std::vector<float> out(a.data().size());
  const auto& da = a.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = forward(da[i]);
  }
  auto ai = a.impl();
  return make_result(a.shape(), std::move(out), {a}, [ai, derivative](TensorImpl& self) {
    ai->ensure_grad();
    for (std::size_t i = 0; i < self.grad.size(); ++i) {
      ai->grad[i] += self.grad[i] * derivative(ai->data[i], self.data[i]);
    }
  });
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, [](float x, float y) { return x + y; }, [](float, float) { return 1.0F; },
      [](float, float) { return 1.0F; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, [](float x, float y) { return x - y; }, [](float, float) { return 1.0F; },
      [](float, float) { return -1.0F; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, [](float x, float y) { return x * y; }, [](float, float y) { return y; },
      [](float x, float) { return x; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, [](float x, float y) { return x / y; }, [](float, float y) { return 1.0F / y; },
      [](float x, float y) { return -x / (y * y); });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0F; });
}

Tensor mul_scalar(const Tensor& a, float s) {
  return unary_op(
      a, [s](float x) { return x * s; }, [s](float, float) { return s; });
}

Tensor pow_scalar(const Tensor& a, float exponent) {
  return unary_op(
      a, [exponent](float x) { return std::pow(x, exponent); },
      [exponent](float x, float) { return exponent * std::pow(x, exponent - 1.0F); });
}

Tensor neg(const Tensor& a) { return mul_scalar(a, -1.0F); }

Tensor exp(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::exp(x); }, [](float, float y) { return y; });
}

Tensor log(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::log(x); }, [](float x, float) { return 1.0F / x; });
}

Tensor sqrt(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return y > 0.0F ? 0.5F / y : 0.0F; });
}

Tensor relu(const Tensor& a) {
  return unary_op(
      a, [](float x) { return x > 0.0F ? x : 0.0F; },
      [](float x, float) { return x > 0.0F ? 1.0F : 0.0F; });
}

Tensor gelu(const Tensor& a) {
  // tanh approximation of GELU, matching common DNN framework defaults.
  const float c = std::sqrt(2.0F / kPi);
  return unary_op(
      a,
      [c](float x) {
        const float inner = c * (x + 0.044715F * x * x * x);
        return 0.5F * x * (1.0F + std::tanh(inner));
      },
      [c](float x, float) {
        const float x3 = x * x * x;
        const float inner = c * (x + 0.044715F * x3);
        const float t = std::tanh(inner);
        const float sech2 = 1.0F - t * t;
        const float dinner = c * (1.0F + 3.0F * 0.044715F * x * x);
        return 0.5F * (1.0F + t) + 0.5F * x * sech2 * dinner;
      });
}

Tensor sigmoid(const Tensor& a) {
  return unary_op(
      a, [](float x) { return 1.0F / (1.0F + std::exp(-x)); },
      [](float, float y) { return y * (1.0F - y); });
}

Tensor tanh(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::tanh(x); }, [](float, float y) { return 1.0F - y * y; });
}

Tensor square(const Tensor& a) {
  return unary_op(
      a, [](float x) { return x * x; }, [](float x, float) { return 2.0F * x; });
}

Tensor abs(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x >= 0.0F ? 1.0F : -1.0F; });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  SNAPPIX_CHECK(lo <= hi, "clamp: lo " << lo << " > hi " << hi);
  return unary_op(
      a, [lo, hi](float x) { return x < lo ? lo : (x > hi ? hi : x); },
      [lo, hi](float x, float) { return (x >= lo && x <= hi) ? 1.0F : 0.0F; });
}

Tensor binarize_ste(const Tensor& a, float threshold, float pass_lo, float pass_hi) {
  return unary_op(
      a, [threshold](float x) { return x > threshold ? 1.0F : 0.0F; },
      [pass_lo, pass_hi](float x, float) {
        // Clipped straight-through estimator: identity inside the pass band.
        return (x >= pass_lo && x <= pass_hi) ? 1.0F : 0.0F;
      });
}

Tensor dropout(const Tensor& a, float p, Rng& rng, bool training) {
  SNAPPIX_CHECK(p >= 0.0F && p < 1.0F, "dropout probability " << p << " out of [0,1)");
  if (!training || p == 0.0F) {
    // Identity that still participates in the tape.
    return add_scalar(a, 0.0F);
  }
  const float scale = 1.0F / (1.0F - p);
  std::vector<float> mask(a.data().size());
  for (auto& m : mask) {
    m = rng.bernoulli(p) ? 0.0F : scale;
  }
  std::vector<float> out(a.data().size());
  const auto& da = a.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = da[i] * mask[i];
  }
  auto ai = a.impl();
  return make_result(a.shape(), std::move(out), {a},
                     [ai, mask = std::move(mask)](TensorImpl& self) {
                       ai->ensure_grad();
                       for (std::size_t i = 0; i < self.grad.size(); ++i) {
                         ai->grad[i] += self.grad[i] * mask[i];
                       }
                     });
}

}  // namespace snappix
