// Reductions, softmax family, and loss functions.
#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "tensor/tensor.h"
#include "util/common.h"

namespace snappix {

namespace {

int normalize_axis(int axis, int ndim) {
  if (axis < 0) {
    axis += ndim;
  }
  SNAPPIX_CHECK(axis >= 0 && axis < ndim, "axis " << axis << " out of range for rank " << ndim);
  return axis;
}

// Decomposes a shape around `axis` into (outer, d, inner) extents so that the
// linear offset of element (o, i, r) is o*d*inner + i*inner + r.
struct AxisPlan {
  std::int64_t outer = 1;
  std::int64_t d = 1;
  std::int64_t inner = 1;
};

AxisPlan make_axis_plan(const Shape& shape, int axis) {
  AxisPlan plan;
  for (int i = 0; i < axis; ++i) {
    plan.outer *= shape[i];
  }
  plan.d = shape[axis];
  for (int i = axis + 1; i < shape.ndim(); ++i) {
    plan.inner *= shape[i];
  }
  return plan;
}

Shape reduced_shape(const Shape& shape, int axis, bool keepdim) {
  std::vector<std::int64_t> dims;
  for (int i = 0; i < shape.ndim(); ++i) {
    if (i == axis) {
      if (keepdim) {
        dims.push_back(1);
      }
      continue;
    }
    dims.push_back(shape[i]);
  }
  if (dims.empty()) {
    dims.push_back(1);
  }
  return Shape(dims);
}

}  // namespace

Tensor sum_all(const Tensor& a) {
  float acc = 0.0F;
  for (const float v : a.data()) {
    acc += v;
  }
  auto ai = a.impl();
  return make_result(Shape{1}, {acc}, {a}, [ai](TensorImpl& self) {
    ai->ensure_grad();
    const float g = self.grad[0];
    for (auto& gv : ai->grad) {
      gv += g;
    }
  });
}

Tensor mean_all(const Tensor& a) {
  SNAPPIX_CHECK(a.numel() > 0, "mean_all of empty tensor");
  return mul_scalar(sum_all(a), 1.0F / static_cast<float>(a.numel()));
}

Tensor sum(const Tensor& a, int axis, bool keepdim) {
  axis = normalize_axis(axis, a.ndim());
  const AxisPlan plan = make_axis_plan(a.shape(), axis);
  const Shape out_shape = reduced_shape(a.shape(), axis, keepdim);
  std::vector<float> out(static_cast<std::size_t>(plan.outer * plan.inner), 0.0F);
  const auto& da = a.data();
  for (std::int64_t o = 0; o < plan.outer; ++o) {
    for (std::int64_t i = 0; i < plan.d; ++i) {
      const std::int64_t base = o * plan.d * plan.inner + i * plan.inner;
      for (std::int64_t r = 0; r < plan.inner; ++r) {
        out[static_cast<std::size_t>(o * plan.inner + r)] += da[static_cast<std::size_t>(base + r)];
      }
    }
  }
  auto ai = a.impl();
  return make_result(out_shape, std::move(out), {a}, [ai, plan](TensorImpl& self) {
    ai->ensure_grad();
    for (std::int64_t o = 0; o < plan.outer; ++o) {
      for (std::int64_t i = 0; i < plan.d; ++i) {
        const std::int64_t base = o * plan.d * plan.inner + i * plan.inner;
        for (std::int64_t r = 0; r < plan.inner; ++r) {
          ai->grad[static_cast<std::size_t>(base + r)] +=
              self.grad[static_cast<std::size_t>(o * plan.inner + r)];
        }
      }
    }
  });
}

Tensor mean(const Tensor& a, int axis, bool keepdim) {
  const int ax = normalize_axis(axis, a.ndim());
  const std::int64_t d = a.shape()[ax];
  SNAPPIX_CHECK(d > 0, "mean over empty axis");
  return mul_scalar(sum(a, ax, keepdim), 1.0F / static_cast<float>(d));
}

Tensor max_values(const Tensor& a, int axis, bool keepdim) {
  axis = normalize_axis(axis, a.ndim());
  const AxisPlan plan = make_axis_plan(a.shape(), axis);
  SNAPPIX_CHECK(plan.d > 0, "max over empty axis");
  const Shape out_shape = reduced_shape(a.shape(), axis, keepdim);
  std::vector<float> out(static_cast<std::size_t>(plan.outer * plan.inner),
                         -std::numeric_limits<float>::infinity());
  std::vector<std::int64_t> arg(out.size(), 0);
  const auto& da = a.data();
  for (std::int64_t o = 0; o < plan.outer; ++o) {
    for (std::int64_t i = 0; i < plan.d; ++i) {
      const std::int64_t base = o * plan.d * plan.inner + i * plan.inner;
      for (std::int64_t r = 0; r < plan.inner; ++r) {
        const auto oi = static_cast<std::size_t>(o * plan.inner + r);
        const float v = da[static_cast<std::size_t>(base + r)];
        if (v > out[oi]) {
          out[oi] = v;
          arg[oi] = base + r;
        }
      }
    }
  }
  auto ai = a.impl();
  return make_result(out_shape, std::move(out), {a},
                     [ai, arg = std::move(arg)](TensorImpl& self) {
                       ai->ensure_grad();
                       for (std::size_t oi = 0; oi < self.grad.size(); ++oi) {
                         ai->grad[static_cast<std::size_t>(arg[oi])] += self.grad[oi];
                       }
                     });
}

std::vector<std::int64_t> argmax_last_axis(const Tensor& a) {
  SNAPPIX_CHECK(a.ndim() >= 1, "argmax on scalar tensor");
  const std::int64_t d = a.shape()[a.ndim() - 1];
  SNAPPIX_CHECK(d > 0, "argmax over empty axis");
  const std::int64_t rows = a.numel() / d;
  std::vector<std::int64_t> result(static_cast<std::size_t>(rows));
  const auto& da = a.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = da.data() + r * d;
    result[static_cast<std::size_t>(r)] =
        std::max_element(row, row + d) - row;
  }
  return result;
}

Tensor softmax(const Tensor& a, int axis) {
  axis = normalize_axis(axis, a.ndim());
  const AxisPlan plan = make_axis_plan(a.shape(), axis);
  std::vector<float> out(a.data().size());
  const auto& da = a.data();
  for (std::int64_t o = 0; o < plan.outer; ++o) {
    for (std::int64_t r = 0; r < plan.inner; ++r) {
      const std::int64_t base = o * plan.d * plan.inner + r;
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t i = 0; i < plan.d; ++i) {
        mx = std::max(mx, da[static_cast<std::size_t>(base + i * plan.inner)]);
      }
      float denom = 0.0F;
      for (std::int64_t i = 0; i < plan.d; ++i) {
        const auto idx = static_cast<std::size_t>(base + i * plan.inner);
        out[idx] = std::exp(da[idx] - mx);
        denom += out[idx];
      }
      for (std::int64_t i = 0; i < plan.d; ++i) {
        out[static_cast<std::size_t>(base + i * plan.inner)] /= denom;
      }
    }
  }
  auto ai = a.impl();
  return make_result(a.shape(), std::move(out), {a}, [ai, plan](TensorImpl& self) {
    ai->ensure_grad();
    for (std::int64_t o = 0; o < plan.outer; ++o) {
      for (std::int64_t r = 0; r < plan.inner; ++r) {
        const std::int64_t base = o * plan.d * plan.inner + r;
        float dot = 0.0F;
        for (std::int64_t i = 0; i < plan.d; ++i) {
          const auto idx = static_cast<std::size_t>(base + i * plan.inner);
          dot += self.grad[idx] * self.data[idx];
        }
        for (std::int64_t i = 0; i < plan.d; ++i) {
          const auto idx = static_cast<std::size_t>(base + i * plan.inner);
          ai->grad[idx] += self.data[idx] * (self.grad[idx] - dot);
        }
      }
    }
  });
}

Tensor log_softmax(const Tensor& a, int axis) {
  axis = normalize_axis(axis, a.ndim());
  const AxisPlan plan = make_axis_plan(a.shape(), axis);
  std::vector<float> out(a.data().size());
  const auto& da = a.data();
  for (std::int64_t o = 0; o < plan.outer; ++o) {
    for (std::int64_t r = 0; r < plan.inner; ++r) {
      const std::int64_t base = o * plan.d * plan.inner + r;
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t i = 0; i < plan.d; ++i) {
        mx = std::max(mx, da[static_cast<std::size_t>(base + i * plan.inner)]);
      }
      float denom = 0.0F;
      for (std::int64_t i = 0; i < plan.d; ++i) {
        denom += std::exp(da[static_cast<std::size_t>(base + i * plan.inner)] - mx);
      }
      const float lse = mx + std::log(denom);
      for (std::int64_t i = 0; i < plan.d; ++i) {
        const auto idx = static_cast<std::size_t>(base + i * plan.inner);
        out[idx] = da[idx] - lse;
      }
    }
  }
  auto ai = a.impl();
  return make_result(a.shape(), std::move(out), {a}, [ai, plan](TensorImpl& self) {
    ai->ensure_grad();
    for (std::int64_t o = 0; o < plan.outer; ++o) {
      for (std::int64_t r = 0; r < plan.inner; ++r) {
        const std::int64_t base = o * plan.d * plan.inner + r;
        float gsum = 0.0F;
        for (std::int64_t i = 0; i < plan.d; ++i) {
          gsum += self.grad[static_cast<std::size_t>(base + i * plan.inner)];
        }
        for (std::int64_t i = 0; i < plan.d; ++i) {
          const auto idx = static_cast<std::size_t>(base + i * plan.inner);
          ai->grad[idx] += self.grad[idx] - std::exp(self.data[idx]) * gsum;
        }
      }
    }
  });
}

Tensor cross_entropy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  SNAPPIX_CHECK(logits.ndim() == 2, "cross_entropy expects (B, C) logits, got "
                                        << logits.shape().to_string());
  const std::int64_t batch = logits.shape()[0];
  const std::int64_t classes = logits.shape()[1];
  SNAPPIX_CHECK(static_cast<std::int64_t>(labels.size()) == batch,
                "cross_entropy: " << labels.size() << " labels for batch " << batch);
  const auto& dl = logits.data();
  std::vector<float> probs(dl.size());
  float loss = 0.0F;
  for (std::int64_t b = 0; b < batch; ++b) {
    const std::int64_t label = labels[static_cast<std::size_t>(b)];
    SNAPPIX_CHECK(label >= 0 && label < classes, "label " << label << " out of range [0, "
                                                          << classes << ")");
    const float* row = dl.data() + b * classes;
    float* prow = probs.data() + b * classes;
    const float mx = *std::max_element(row, row + classes);
    float denom = 0.0F;
    for (std::int64_t c = 0; c < classes; ++c) {
      prow[c] = std::exp(row[c] - mx);
      denom += prow[c];
    }
    for (std::int64_t c = 0; c < classes; ++c) {
      prow[c] /= denom;
    }
    loss -= std::log(std::max(prow[label], 1e-12F));
  }
  loss /= static_cast<float>(batch);
  auto li = logits.impl();
  return make_result(Shape{1}, {loss}, {logits},
                     [li, labels, probs = std::move(probs), batch, classes](TensorImpl& self) {
                       li->ensure_grad();
                       const float g = self.grad[0] / static_cast<float>(batch);
                       for (std::int64_t b = 0; b < batch; ++b) {
                         const std::int64_t label = labels[static_cast<std::size_t>(b)];
                         for (std::int64_t c = 0; c < classes; ++c) {
                           const auto idx = static_cast<std::size_t>(b * classes + c);
                           const float onehot = c == label ? 1.0F : 0.0F;
                           li->grad[idx] += g * (probs[idx] - onehot);
                         }
                       }
                     });
}

Tensor mse_loss(const Tensor& prediction, const Tensor& target) {
  SNAPPIX_CHECK(prediction.shape() == target.shape(),
                "mse_loss shape mismatch: " << prediction.shape().to_string() << " vs "
                                            << target.shape().to_string());
  const auto& dp = prediction.data();
  const auto& dt = target.data();
  const auto n = static_cast<float>(prediction.numel());
  float loss = 0.0F;
  for (std::size_t i = 0; i < dp.size(); ++i) {
    const float diff = dp[i] - dt[i];
    loss += diff * diff;
  }
  loss /= n;
  auto pi = prediction.impl();
  auto ti = target.impl();
  return make_result(Shape{1}, {loss}, {prediction, target}, [pi, ti, n](TensorImpl& self) {
    const float g = self.grad[0] * 2.0F / n;
    if (pi->requires_grad) {
      pi->ensure_grad();
      for (std::size_t i = 0; i < pi->data.size(); ++i) {
        pi->grad[i] += g * (pi->data[i] - ti->data[i]);
      }
    }
    if (ti->requires_grad) {
      ti->ensure_grad();
      for (std::size_t i = 0; i < ti->data.size(); ++i) {
        ti->grad[i] -= g * (pi->data[i] - ti->data[i]);
      }
    }
  });
}

Tensor masked_mse_loss(const Tensor& prediction, const Tensor& target, const Tensor& mask) {
  SNAPPIX_CHECK(prediction.shape() == target.shape() && prediction.shape() == mask.shape(),
                "masked_mse_loss requires equal shapes");
  const auto& dp = prediction.data();
  const auto& dt = target.data();
  const auto& dm = mask.data();
  float loss = 0.0F;
  float count = 0.0F;
  for (std::size_t i = 0; i < dp.size(); ++i) {
    const float diff = dp[i] - dt[i];
    loss += dm[i] * diff * diff;
    count += dm[i];
  }
  const float denom = std::max(count, 1.0F);
  loss /= denom;
  auto pi = prediction.impl();
  auto ti = target.impl();
  auto mi = mask.impl();
  return make_result(Shape{1}, {loss}, {prediction, target},
                     [pi, ti, mi, denom](TensorImpl& self) {
                       const float g = self.grad[0] * 2.0F / denom;
                       if (pi->requires_grad) {
                         pi->ensure_grad();
                         for (std::size_t i = 0; i < pi->data.size(); ++i) {
                           pi->grad[i] += g * mi->data[i] * (pi->data[i] - ti->data[i]);
                         }
                       }
                       if (ti->requires_grad) {
                         ti->ensure_grad();
                         for (std::size_t i = 0; i < ti->data.size(); ++i) {
                           ti->grad[i] -= g * mi->data[i] * (pi->data[i] - ti->data[i]);
                         }
                       }
                     });
}

}  // namespace snappix
