#include "models/mae.h"

#include <algorithm>
#include <numeric>

#include "nn/embed.h"
#include "util/common.h"

namespace snappix::models {

std::vector<std::int64_t> sample_keep_indices(std::int64_t total, std::int64_t keep_count,
                                              Rng& rng) {
  SNAPPIX_CHECK(keep_count >= 1 && keep_count <= total,
                "keep_count " << keep_count << " out of [1, " << total << "]");
  std::vector<std::int64_t> all(static_cast<std::size_t>(total));
  std::iota(all.begin(), all.end(), 0);
  std::shuffle(all.begin(), all.end(), rng.engine());
  all.resize(static_cast<std::size_t>(keep_count));
  std::sort(all.begin(), all.end());
  return all;
}

CodedMae::CodedMae(std::shared_ptr<ViTEncoder> encoder, int frames, const MaeConfig& config,
                   Rng& rng)
    : config_(config), frames_(frames) {
  SNAPPIX_CHECK(config.mask_ratio > 0.0F && config.mask_ratio < 1.0F,
                "mask_ratio " << config.mask_ratio << " out of (0,1)");
  SNAPPIX_CHECK(config.frame_stride >= 1 && frames % config.frame_stride == 0,
                "frame_stride " << config.frame_stride << " does not divide " << frames);
  encoder_ = register_module("encoder", std::move(encoder));
  predicted_frames_ = frames / config.frame_stride;
  const auto& vit = encoder_->config();
  enc_to_dec_ = register_module("enc_to_dec",
                                std::make_shared<nn::Linear>(vit.dim, config.decoder_dim, rng));
  mask_token_ =
      register_parameter("mask_token", Tensor::randn(Shape{config.decoder_dim}, rng, 0.02F));
  dec_pos_embed_ = register_parameter(
      "dec_pos_embed", Tensor::randn(Shape{vit.tokens(), config.decoder_dim}, rng, 0.02F));
  for (int i = 0; i < config.decoder_depth; ++i) {
    dec_blocks_.push_back(register_module(
        "dec_blocks." + std::to_string(i),
        std::make_shared<nn::TransformerBlock>(config.decoder_dim, config.decoder_heads, 2.0F,
                                               rng)));
  }
  dec_norm_ = register_module("dec_norm", std::make_shared<nn::LayerNorm>(config.decoder_dim));
  dec_head_ = register_module(
      "dec_head",
      std::make_shared<nn::Linear>(
          config.decoder_dim, predicted_frames_ * vit.patch * vit.patch, rng));
}

Tensor CodedMae::decode(const Tensor& encoded_visible, const std::vector<std::int64_t>& keep,
                        std::int64_t batch) const {
  const auto& vit = encoder_->config();
  const std::int64_t total = vit.tokens();
  const auto visible = static_cast<std::int64_t>(keep.size());

  // Project encoder outputs into decoder width.
  const Tensor dec_visible = enc_to_dec_->forward(encoded_visible);  // (B, n, dd)

  // Masked positions receive the learned mask token (broadcast via mul).
  Tensor dec_sequence;
  if (visible == total) {
    dec_sequence = dec_visible;
  } else {
    const Tensor mask_tokens = mul(
        Tensor::ones(Shape{batch, total - visible, config_.decoder_dim}), mask_token_);
    const Tensor stacked = concat({dec_visible, mask_tokens}, 1);  // (B, N, dd)
    // Reorder so each position receives its own token: position i takes the
    // j-th visible token if keep[j] == i, otherwise the next mask token.
    std::vector<std::int64_t> source(static_cast<std::size_t>(total));
    std::vector<bool> is_visible(static_cast<std::size_t>(total), false);
    for (std::size_t j = 0; j < keep.size(); ++j) {
      source[static_cast<std::size_t>(keep[j])] = static_cast<std::int64_t>(j);
      is_visible[static_cast<std::size_t>(keep[j])] = true;
    }
    std::int64_t next_masked = visible;
    for (std::int64_t i = 0; i < total; ++i) {
      if (!is_visible[static_cast<std::size_t>(i)]) {
        source[static_cast<std::size_t>(i)] = next_masked++;
      }
    }
    dec_sequence = index_select(stacked, 1, source);
  }

  Tensor x = add(dec_sequence, dec_pos_embed_);
  for (const auto& block : dec_blocks_) {
    x = block->forward(x);
  }
  return dec_head_->forward(dec_norm_->forward(x));  // (B, N, Tpred*p*p)
}

Tensor CodedMae::pretrain_loss(const Tensor& coded, const Tensor& video, Rng& rng) const {
  const auto& vit = encoder_->config();
  SNAPPIX_CHECK(video.ndim() == 4 && video.shape()[1] == frames_,
                "pretrain_loss expects (B, " << frames_ << ", H, W) video, got "
                                             << video.shape().to_string());
  const std::int64_t batch = coded.shape()[0];
  const std::int64_t total = vit.tokens();
  const auto keep_count = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             static_cast<float>(total) * (1.0F - config_.mask_ratio) + 0.5F));
  const auto keep = sample_keep_indices(total, keep_count, rng);

  // Encode visible tiles only (the MAE efficiency trick).
  const Tensor tokens = encoder_->embed(coded);
  const Tensor visible = index_select(tokens, 1, keep);
  const Tensor encoded = encoder_->encode_tokens(visible);
  const Tensor pred = decode(encoded, keep, batch);  // (B, N, Tpred*p*p)

  // Target: the strided frames of the original video, patchified.
  std::vector<std::int64_t> frame_idx;
  for (int t = 0; t < frames_; t += config_.frame_stride) {
    frame_idx.push_back(t);
  }
  const Tensor target_video = index_select(video, 1, frame_idx);
  const Tensor target = nn::patchify_video(target_video, vit.patch);  // (B, N, Tpred*p*p)

  // Loss on masked tiles only.
  std::vector<std::int64_t> masked;
  std::vector<bool> is_visible(static_cast<std::size_t>(total), false);
  for (const auto k : keep) {
    is_visible[static_cast<std::size_t>(k)] = true;
  }
  for (std::int64_t i = 0; i < total; ++i) {
    if (!is_visible[static_cast<std::size_t>(i)]) {
      masked.push_back(i);
    }
  }
  SNAPPIX_CHECK(!masked.empty(), "mask ratio too low: no masked tiles");
  const Tensor pred_masked = index_select(pred, 1, masked);
  const Tensor target_masked = index_select(target, 1, masked);
  return mse_loss(pred_masked, target_masked.detach());
}

Tensor CodedMae::reconstruct(const Tensor& coded) const {
  const auto& vit = encoder_->config();
  const std::int64_t total = vit.tokens();
  std::vector<std::int64_t> all(static_cast<std::size_t>(total));
  std::iota(all.begin(), all.end(), 0);
  const Tensor encoded = encoder_->forward(coded);
  const Tensor pred = decode(encoded, all, coded.shape()[0]);
  return nn::unpatchify_video(pred, vit.patch, predicted_frames_, vit.image_h, vit.image_w);
}

}  // namespace snappix::models
