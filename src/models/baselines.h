// Baseline systems reproduced for Table I and Fig. 6 (paper Sec. VI-A):
//  - Svc2dModel: CE-based AR with Shift-Variant Convolution [Okawara et al.]
//  - C3dModel: 3-D CNN video model [Tran et al.], prior CE work's upper bound
//  - VideoViT: tubelet-token video transformer, stand-in for VideoMAEv2-ST
// All operate at the same scaled-down resolution as the SNAPPIX variants.
#pragma once

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/embed.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/svconv.h"

namespace snappix::models {

// SVC2D: SVC first layer (per-CE-position kernels) + small conv trunk.
// Matches prior work's structure: SVC only in the first layer because of its
// cost (the 4x slowdown the paper profiles in Sec. IV).
class Svc2dModel : public nn::Module {
 public:
  Svc2dModel(std::int64_t image, int tile, std::int64_t num_classes, Rng& rng);

  // (B, H, W) coded image -> (B, num_classes) logits.
  Tensor forward(const Tensor& coded) const;

 private:
  std::int64_t image_;
  std::shared_ptr<nn::ShiftVariantConv2d> svc_;
  std::shared_ptr<nn::Conv2d> conv1_;
  std::shared_ptr<nn::Conv2d> conv2_;
  std::shared_ptr<nn::Linear> head_;
};

// C3D: small 3-D CNN over raw videos.
class C3dModel : public nn::Module {
 public:
  C3dModel(std::int64_t image, int frames, std::int64_t num_classes, Rng& rng);

  // (B, T, H, W) video -> (B, num_classes) logits.
  Tensor forward(const Tensor& video) const;

 private:
  std::int64_t image_;
  int frames_;
  std::shared_ptr<nn::Conv3d> conv1_;
  std::shared_ptr<nn::Conv3d> conv2_;
  std::shared_ptr<nn::Conv3d> conv3_;
  std::shared_ptr<nn::Linear> head_;
};

// VideoViT: tubelet-embedded video transformer (VideoMAEv2-ST stand-in),
// "adjusted to match SNAPPIX-B's speed" by sizing width/depth so its FLOPs
// are comparable despite the 16x larger input.
struct VideoViTConfig {
  std::int64_t image_h = 32;
  std::int64_t image_w = 32;
  int frames = 16;
  int tubelet_t = 2;
  int patch = 8;
  std::int64_t dim = 64;
  int depth = 3;
  int heads = 4;
  float mlp_ratio = 2.0F;
  std::int64_t num_classes = 10;

  std::int64_t tokens() const {
    return (frames / tubelet_t) * (image_h / patch) * (image_w / patch);
  }
};

class VideoViT : public nn::Module {
 public:
  VideoViT(const VideoViTConfig& config, Rng& rng);

  // (B, T, H, W) video -> (B, num_classes) logits.
  Tensor forward(const Tensor& video) const;

  const VideoViTConfig& config() const { return config_; }

 private:
  VideoViTConfig config_;
  std::shared_ptr<nn::TubeletEmbed> embed_;
  Tensor pos_embed_;
  std::vector<std::shared_ptr<nn::TransformerBlock>> blocks_;
  std::shared_ptr<nn::LayerNorm> norm_;
  std::shared_ptr<nn::Linear> head_;
};

}  // namespace snappix::models
