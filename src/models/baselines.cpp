#include "models/baselines.h"

#include "util/common.h"

namespace snappix::models {

Svc2dModel::Svc2dModel(std::int64_t image, int tile, std::int64_t num_classes, Rng& rng)
    : image_(image) {
  svc_ = register_module("svc", std::make_shared<nn::ShiftVariantConv2d>(1, 8, 3, tile, rng));
  conv1_ = register_module("conv1", std::make_shared<nn::Conv2d>(8, 16, 3, 2, 1, rng));
  conv2_ = register_module("conv2", std::make_shared<nn::Conv2d>(16, 32, 3, 2, 1, rng));
  head_ = register_module("head", std::make_shared<nn::Linear>(32, num_classes, rng));
}

Tensor Svc2dModel::forward(const Tensor& coded) const {
  SNAPPIX_CHECK(coded.ndim() == 3, "Svc2dModel expects (B, H, W), got "
                                       << coded.shape().to_string());
  const std::int64_t batch = coded.shape()[0];
  Tensor x = reshape(coded, Shape{batch, 1, coded.shape()[1], coded.shape()[2]});
  x = relu(svc_->forward(x));
  x = relu(conv1_->forward(x));
  x = relu(conv2_->forward(x));
  // Global average pool -> (B, C).
  x = mean(mean(x, -1), -1);
  return head_->forward(x);
}

C3dModel::C3dModel(std::int64_t image, int frames, std::int64_t num_classes, Rng& rng)
    : image_(image), frames_(frames) {
  conv1_ = register_module("conv1", std::make_shared<nn::Conv3d>(1, 8, 3, 3, 1, 2, 1, 1, rng));
  conv2_ = register_module("conv2", std::make_shared<nn::Conv3d>(8, 16, 3, 3, 2, 2, 1, 1, rng));
  conv3_ = register_module("conv3", std::make_shared<nn::Conv3d>(16, 32, 3, 3, 2, 2, 1, 1, rng));
  head_ = register_module("head", std::make_shared<nn::Linear>(32, num_classes, rng));
}

Tensor C3dModel::forward(const Tensor& video) const {
  SNAPPIX_CHECK(video.ndim() == 4, "C3dModel expects (B, T, H, W), got "
                                       << video.shape().to_string());
  const std::int64_t batch = video.shape()[0];
  Tensor x = reshape(video, Shape{batch, 1, video.shape()[1], video.shape()[2], video.shape()[3]});
  x = relu(conv1_->forward(x));
  x = relu(conv2_->forward(x));
  x = relu(conv3_->forward(x));
  // Global average pool over (T, H, W) -> (B, C).
  x = mean(mean(mean(x, -1), -1), -1);
  return head_->forward(x);
}

VideoViT::VideoViT(const VideoViTConfig& config, Rng& rng) : config_(config) {
  SNAPPIX_CHECK(config.frames % config.tubelet_t == 0, "frames not divisible by tubelet");
  embed_ = register_module(
      "embed", std::make_shared<nn::TubeletEmbed>(config.tubelet_t, config.patch, config.dim, rng));
  pos_embed_ = register_parameter(
      "pos_embed", Tensor::randn(Shape{config.tokens(), config.dim}, rng, 0.02F));
  for (int i = 0; i < config.depth; ++i) {
    blocks_.push_back(register_module(
        "blocks." + std::to_string(i),
        std::make_shared<nn::TransformerBlock>(config.dim, config.heads, config.mlp_ratio, rng)));
  }
  norm_ = register_module("norm", std::make_shared<nn::LayerNorm>(config.dim));
  head_ = register_module("head",
                          std::make_shared<nn::Linear>(config.dim, config.num_classes, rng));
}

Tensor VideoViT::forward(const Tensor& video) const {
  Tensor x = add(embed_->forward(video), pos_embed_);
  for (const auto& block : blocks_) {
    x = block->forward(x);
  }
  x = norm_->forward(x);
  return head_->forward(mean(x, 1));
}

}  // namespace snappix::models
