// CE-optimized Vision Transformer (paper Sec. IV).
//
// The ViT patch size equals the CE tile size, so the patch-wise embedding and
// MLPs learn the (offline-fixed) within-tile exposure variation while MHA
// shares information across tiles. Two task heads are provided: action
// recognition (classification) and video reconstruction.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/attention.h"
#include "nn/embed.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace snappix::models {

struct ViTConfig {
  std::int64_t image_h = 32;
  std::int64_t image_w = 32;
  int patch = 8;  // must equal the CE tile size (Sec. IV)
  std::int64_t dim = 64;
  int depth = 4;
  int heads = 4;
  float mlp_ratio = 2.0F;
  std::int64_t num_classes = 10;

  std::int64_t tokens() const { return (image_h / patch) * (image_w / patch); }

  // Scaled-down stand-ins for the paper's two variants (ViT-S 22M / ViT-B
  // 87M): snappix_b is deeper and wider than snappix_s, preserving the
  // accuracy-vs-speed trade-off of Table I.
  static ViTConfig snappix_s(std::int64_t image, std::int64_t num_classes);
  static ViTConfig snappix_b(std::int64_t image, std::int64_t num_classes);
};

// Transformer encoder over coded-image patches.
class ViTEncoder : public nn::Module {
 public:
  ViTEncoder(const ViTConfig& config, Rng& rng);

  // (B, H, W) coded image -> (B, N, dim) encoded tokens.
  Tensor forward(const Tensor& coded) const;

  // Patch embedding + positional embedding only: (B, H, W) -> (B, N, dim).
  Tensor embed(const Tensor& coded) const;
  // Runs the transformer stack + final norm on an arbitrary token subset.
  Tensor encode_tokens(const Tensor& tokens) const;

  const ViTConfig& config() const { return config_; }

 private:
  ViTConfig config_;
  std::shared_ptr<nn::PatchEmbed> patch_embed_;
  Tensor pos_embed_;  // (N, dim)
  std::vector<std::shared_ptr<nn::TransformerBlock>> blocks_;
  std::shared_ptr<nn::LayerNorm> norm_;
};

// Action-recognition model: ViT encoder + mean-pool + linear head.
class SnapPixClassifier : public nn::Module {
 public:
  SnapPixClassifier(const ViTConfig& config, Rng& rng);
  // Wraps an existing (e.g. pre-trained) encoder.
  SnapPixClassifier(std::shared_ptr<ViTEncoder> encoder, Rng& rng);

  // (B, H, W) coded image -> (B, num_classes) logits.
  Tensor forward(const Tensor& coded) const;

  std::shared_ptr<ViTEncoder> encoder() { return encoder_; }
  std::shared_ptr<const ViTEncoder> encoder() const { return encoder_; }

 private:
  std::shared_ptr<ViTEncoder> encoder_;
  std::shared_ptr<nn::Linear> head_;
};

// Video-reconstruction model: ViT encoder + per-patch linear decoder that
// predicts all T frames of each tile (the REC task of Sec. VI-A).
class SnapPixReconstructor : public nn::Module {
 public:
  SnapPixReconstructor(const ViTConfig& config, int frames, Rng& rng);
  SnapPixReconstructor(std::shared_ptr<ViTEncoder> encoder, int frames, Rng& rng);

  // (B, H, W) coded image -> (B, T, H, W) reconstructed video.
  Tensor forward(const Tensor& coded) const;

  int frames() const { return frames_; }
  std::shared_ptr<ViTEncoder> encoder() { return encoder_; }
  std::shared_ptr<const ViTEncoder> encoder() const { return encoder_; }

 private:
  std::shared_ptr<ViTEncoder> encoder_;
  int frames_;
  std::shared_ptr<nn::Linear> head_;
};

}  // namespace snappix::models
