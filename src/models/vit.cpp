#include "models/vit.h"

#include "util/common.h"

namespace snappix::models {

ViTConfig ViTConfig::snappix_s(std::int64_t image, std::int64_t num_classes) {
  ViTConfig cfg;
  cfg.image_h = image;
  cfg.image_w = image;
  cfg.patch = 8;
  cfg.dim = 48;
  cfg.depth = 3;
  cfg.heads = 4;
  cfg.mlp_ratio = 2.0F;
  cfg.num_classes = num_classes;
  return cfg;
}

ViTConfig ViTConfig::snappix_b(std::int64_t image, std::int64_t num_classes) {
  ViTConfig cfg;
  cfg.image_h = image;
  cfg.image_w = image;
  cfg.patch = 8;
  cfg.dim = 96;
  cfg.depth = 6;
  cfg.heads = 6;
  cfg.mlp_ratio = 3.0F;
  cfg.num_classes = num_classes;
  return cfg;
}

ViTEncoder::ViTEncoder(const ViTConfig& config, Rng& rng) : config_(config) {
  SNAPPIX_CHECK(config.image_h % config.patch == 0 && config.image_w % config.patch == 0,
                "image " << config.image_h << "x" << config.image_w
                         << " not divisible by patch " << config.patch);
  patch_embed_ =
      register_module("patch_embed", std::make_shared<nn::PatchEmbed>(config.patch, config.dim, rng));
  pos_embed_ = register_parameter(
      "pos_embed", Tensor::randn(Shape{config.tokens(), config.dim}, rng, 0.02F));
  for (int i = 0; i < config.depth; ++i) {
    blocks_.push_back(register_module(
        "blocks." + std::to_string(i),
        std::make_shared<nn::TransformerBlock>(config.dim, config.heads, config.mlp_ratio, rng)));
  }
  norm_ = register_module("norm", std::make_shared<nn::LayerNorm>(config.dim));
}

Tensor ViTEncoder::embed(const Tensor& coded) const {
  SNAPPIX_CHECK(coded.ndim() == 3 && coded.shape()[1] == config_.image_h &&
                    coded.shape()[2] == config_.image_w,
                "encoder expects (B, " << config_.image_h << ", " << config_.image_w << "), got "
                                       << coded.shape().to_string());
  return add(patch_embed_->forward(coded), pos_embed_);
}

Tensor ViTEncoder::encode_tokens(const Tensor& tokens) const {
  Tensor x = tokens;
  for (const auto& block : blocks_) {
    x = block->forward(x);
  }
  return norm_->forward(x);
}

Tensor ViTEncoder::forward(const Tensor& coded) const { return encode_tokens(embed(coded)); }

SnapPixClassifier::SnapPixClassifier(const ViTConfig& config, Rng& rng)
    : SnapPixClassifier(std::make_shared<ViTEncoder>(config, rng), rng) {}

SnapPixClassifier::SnapPixClassifier(std::shared_ptr<ViTEncoder> encoder, Rng& rng) {
  encoder_ = register_module("encoder", std::move(encoder));
  head_ = register_module("head", std::make_shared<nn::Linear>(encoder_->config().dim,
                                                               encoder_->config().num_classes,
                                                               rng));
}

Tensor SnapPixClassifier::forward(const Tensor& coded) const {
  const Tensor tokens = encoder_->forward(coded);  // (B, N, D)
  const Tensor pooled = mean(tokens, 1);           // (B, D)
  return head_->forward(pooled);
}

SnapPixReconstructor::SnapPixReconstructor(const ViTConfig& config, int frames, Rng& rng)
    : SnapPixReconstructor(std::make_shared<ViTEncoder>(config, rng), frames, rng) {}

SnapPixReconstructor::SnapPixReconstructor(std::shared_ptr<ViTEncoder> encoder, int frames,
                                           Rng& rng)
    : frames_(frames) {
  SNAPPIX_CHECK(frames > 0, "reconstructor needs positive frame count");
  encoder_ = register_module("encoder", std::move(encoder));
  const auto& cfg = encoder_->config();
  head_ = register_module(
      "head", std::make_shared<nn::Linear>(
                  cfg.dim, static_cast<std::int64_t>(frames) * cfg.patch * cfg.patch, rng));
}

Tensor SnapPixReconstructor::forward(const Tensor& coded) const {
  const auto& cfg = encoder_->config();
  const Tensor tokens = encoder_->forward(coded);     // (B, N, D)
  const Tensor patches = head_->forward(tokens);      // (B, N, T*p*p)
  return nn::unpatchify_video(patches, cfg.patch, frames_, cfg.image_h, cfg.image_w);
}

}  // namespace snappix::models
