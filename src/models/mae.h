// CE-optimized reconstruction pre-training (paper Sec. IV, Eqn. 3).
//
// "Coded image-to-video" masked-autoencoder pre-training: randomly mask a
// large fraction (default 85%) of the coded image's tiles, encode only the
// visible tiles, and train a lightweight decoder to reconstruct the original
// *video* — forcing the encoder to learn both spatial scene structure and the
// temporal dynamics folded into the coded pixels. Following the paper, only
// every other frame (50%) is predicted during pre-training.
#pragma once

#include <memory>
#include <vector>

#include "models/vit.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace snappix::models {

struct MaeConfig {
  float mask_ratio = 0.85F;
  std::int64_t decoder_dim = 48;
  int decoder_depth = 1;
  int decoder_heads = 4;
  // Temporal stride of predicted frames; 2 = predict 50% of frames (paper).
  int frame_stride = 2;
};

class CodedMae : public nn::Module {
 public:
  CodedMae(std::shared_ptr<ViTEncoder> encoder, int frames, const MaeConfig& config, Rng& rng);

  // One pre-training forward pass: masks tiles of `coded`, reconstructs the
  // strided frames of `video`, and returns the MSE on *masked* tiles.
  // coded: (B, H, W); video: (B, T, H, W).
  Tensor pretrain_loss(const Tensor& coded, const Tensor& video, Rng& rng) const;

  // Full-visibility reconstruction of the strided frames: (B, H, W) ->
  // (B, T/stride, H, W). Used to inspect pre-training quality.
  Tensor reconstruct(const Tensor& coded) const;

  std::shared_ptr<ViTEncoder> encoder() { return encoder_; }
  const MaeConfig& config() const { return config_; }
  std::int64_t predicted_frames() const { return predicted_frames_; }

 private:
  // Decodes visible-token encodings back to per-patch pixel predictions.
  // `keep` lists the visible token indices (sorted); masked positions get the
  // learned mask token. Returns (B, N, Tpred*p*p).
  Tensor decode(const Tensor& encoded_visible, const std::vector<std::int64_t>& keep,
                std::int64_t batch) const;

  std::shared_ptr<ViTEncoder> encoder_;
  MaeConfig config_;
  int frames_;
  std::int64_t predicted_frames_;
  std::shared_ptr<nn::Linear> enc_to_dec_;
  Tensor mask_token_;     // (decoder_dim)
  Tensor dec_pos_embed_;  // (N, decoder_dim)
  std::vector<std::shared_ptr<nn::TransformerBlock>> dec_blocks_;
  std::shared_ptr<nn::LayerNorm> dec_norm_;
  std::shared_ptr<nn::Linear> dec_head_;
};

// Draws a sorted random subset of [0, total) of the given size.
std::vector<std::int64_t> sample_keep_indices(std::int64_t total, std::int64_t keep_count,
                                              Rng& rng);

}  // namespace snappix::models
