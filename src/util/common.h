// Common error-checking utilities used across all snappix modules.
//
// SNAPPIX_CHECK is the single precondition/invariant mechanism of the
// library: it throws std::runtime_error with a file:line-prefixed message so
// that both library users and tests can observe violations without aborting
// the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace snappix {

[[noreturn]] inline void check_failed(const std::string& message, const char* file, int line) {
  std::ostringstream os;
  os << file << ":" << line << ": " << message;
  throw std::runtime_error(os.str());
}

}  // namespace snappix

// Throws std::runtime_error when `condition` is false. `message_expr` is a
// stream expression, e.g. SNAPPIX_CHECK(a == b, "got " << a << " vs " << b).
#define SNAPPIX_CHECK(condition, message_expr)                                  \
  do {                                                                          \
    if (!(condition)) {                                                         \
      std::ostringstream snappix_os_;                                           \
      snappix_os_ << "check failed: `" #condition "` — " << message_expr;       \
      ::snappix::check_failed(snappix_os_.str(), __FILE__, __LINE__);           \
    }                                                                           \
  } while (0)
