// Minimal data-parallel helper used by the hot tensor kernels (matmul, conv).
//
// parallel_for splits [0, n) into contiguous chunks executed on std::thread
// workers. Small ranges run inline to avoid thread-spawn overhead dominating
// the many tiny kernels a training step issues.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace snappix {

// Invokes fn(begin, end) over a partition of [0, n). `grain` is the minimum
// work per thread; ranges smaller than 2*grain run on the calling thread.
inline void parallel_for(std::int64_t n,
                         const std::function<void(std::int64_t, std::int64_t)>& fn,
                         std::int64_t grain = 4096) {
  if (n <= 0) {
    return;
  }
  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  const std::int64_t max_threads = static_cast<std::int64_t>(hw);
  const std::int64_t want = std::min<std::int64_t>(max_threads, (n + grain - 1) / grain);
  if (want <= 1) {
    fn(0, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(want));
  const std::int64_t chunk = (n + want - 1) / want;
  for (std::int64_t t = 0; t < want; ++t) {
    const std::int64_t begin = t * chunk;
    const std::int64_t end = std::min(n, begin + chunk);
    if (begin >= end) {
      break;
    }
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& w : workers) {
    w.join();
  }
}

}  // namespace snappix
