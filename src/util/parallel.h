// Parallel execution helpers.
//
// parallel_for splits [0, n) into contiguous chunks executed on std::thread
// workers. Small ranges run inline to avoid thread-spawn overhead dominating
// the many tiny kernels a training step issues.
//
// ThreadPool is a persistent fixed-size worker pool used by the streaming
// runtime (src/runtime/) to drive long-lived per-camera capture tasks without
// paying a thread spawn per frame.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.h"

namespace snappix {

// Invokes fn(begin, end) over a partition of [0, n). `grain` is the minimum
// work per thread; ranges smaller than 2*grain run on the calling thread.
inline void parallel_for(std::int64_t n,
                         const std::function<void(std::int64_t, std::int64_t)>& fn,
                         std::int64_t grain = 4096) {
  if (n <= 0) {
    return;
  }
  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  const std::int64_t max_threads = static_cast<std::int64_t>(hw);
  const std::int64_t want = std::min<std::int64_t>(max_threads, (n + grain - 1) / grain);
  if (want <= 1) {
    fn(0, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(want));
  const std::int64_t chunk = (n + want - 1) / want;
  for (std::int64_t t = 0; t < want; ++t) {
    const std::int64_t begin = t * chunk;
    const std::int64_t end = std::min(n, begin + chunk);
    if (begin >= end) {
      break;
    }
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& w : workers) {
    w.join();
  }
}

// Fixed-size pool of persistent workers draining a FIFO task queue.
//
// submit() never blocks (the queue is unbounded — backpressure belongs to the
// data plane, e.g. runtime::FrameQueue, not the control plane). wait_idle()
// blocks until every submitted task has finished; the destructor drains the
// queue, then joins the workers. Tasks must not throw — an escaping exception
// would terminate the worker — so long-running tasks catch internally.
class ThreadPool {
 public:
  explicit ThreadPool(int threads) {
    SNAPPIX_CHECK(threads > 0, "ThreadPool needs at least one thread, got " << threads);
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto& w : workers_) {
      w.join();
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SNAPPIX_CHECK(!stopping_, "submit() on a stopping ThreadPool");
      tasks_.push_back(std::move(task));
    }
    task_ready_.notify_one();
  }

  // Blocks until the queue is empty and no task is running.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
  }

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) {
          return;  // stopping_ with a drained queue
        }
        task = std::move(tasks_.front());
        tasks_.pop_front();
        ++active_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
        if (tasks_.empty() && active_ == 0) {
          idle_.notify_all();
        }
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool stopping_ = false;
};

}  // namespace snappix
