// Deterministic random number generation for the whole library.
//
// Every stochastic component (weight init, synthetic data, noise models,
// random CE patterns) takes an explicit Rng so experiments are reproducible
// from a single seed.
#pragma once

#include <cstdint>
#include <random>

namespace snappix {

// Thin wrapper over std::mt19937_64 with the distributions snappix needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  // Uniform float in [lo, hi).
  float uniform(float lo = 0.0F, float hi = 1.0F) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
  }

  // Standard normal scaled by `stddev` around `mean`.
  float normal(float mean = 0.0F, float stddev = 1.0F) {
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
  }

  // Bernoulli draw with probability `p` of returning true.
  bool bernoulli(float p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Poisson sample with the given mean (used by the photon shot-noise model).
  std::int64_t poisson(double mean) {
    std::poisson_distribution<std::int64_t> dist(mean);
    return dist(engine_);
  }

  // Derives an independent child generator; lets parallel components share a
  // master seed without correlated streams.
  Rng split() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace snappix
