#include "energy/scenario.h"

#include "util/common.h"

namespace snappix::energy {

ScenarioResult offload_scenario(const EnergyModel& model, std::int64_t pixels_per_frame,
                                int slots, WirelessTech tech) {
  ScenarioResult result;
  result.name = std::string("offload/") + wireless_tech_name(tech);
  result.baseline_j = model.conventional_edge_energy_j(pixels_per_frame, slots, tech);
  result.snappix_j = model.snappix_edge_energy_j(pixels_per_frame, slots, tech);
  result.saving_factor = result.baseline_j / result.snappix_j;
  return result;
}

ScenarioResult edge_gpu_scenario(const EnergyModel& model, const GpuModelParams& gpu,
                                 std::int64_t pixels_per_frame, int slots,
                                 const GpuInference& snappix_model,
                                 const GpuInference& baseline_model) {
  ScenarioResult result;
  result.name = "edge-gpu/" + snappix_model.name + "-vs-" + baseline_model.name;
  // Sensing without wireless (data stays on the edge node), plus GPU energy.
  const double wifi_off = 0.0;
  const double baseline_sensing =
      static_cast<double>(pixels_per_frame) * slots *
      (model.analog_pj_per_pixel() + model.readout_pj_per_pixel()) * 1e-12;
  const double snappix_sensing =
      static_cast<double>(pixels_per_frame) *
      (static_cast<double>(slots) *
           (model.analog_pj_per_pixel() + model.ce_pj_per_pixel_slot()) +
       model.readout_pj_per_pixel()) *
      1e-12;
  (void)wifi_off;
  result.baseline_j = baseline_sensing + gpu_inference_energy_j(baseline_model, gpu);
  result.snappix_j = snappix_sensing + gpu_inference_energy_j(snappix_model, gpu);
  result.saving_factor = result.baseline_j / result.snappix_j;
  return result;
}

std::vector<ComponentReduction> component_reductions(const EnergyModel& model, int slots,
                                                     WirelessTech tech) {
  SNAPPIX_CHECK(slots > 0, "slots must be positive");
  std::vector<ComponentReduction> table;
  const double readout = model.readout_pj_per_pixel();
  table.push_back({"adc+mipi readout", readout * slots, readout,
                   static_cast<double>(slots)});
  const double wireless = model.wireless_pj_per_pixel(tech);
  table.push_back({std::string("wireless ") + wireless_tech_name(tech), wireless * slots,
                   wireless, static_cast<double>(slots)});
  const double analog = model.analog_pj_per_pixel();
  table.push_back({"analog front-end", analog * slots, analog * slots, 1.0});
  const double ce = model.ce_pj_per_pixel_slot() * slots;
  table.push_back({"ce pattern streaming", 0.0, ce, 0.0});
  return table;
}

}  // namespace snappix::energy
