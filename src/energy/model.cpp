#include "energy/model.h"

#include "util/common.h"

namespace snappix::energy {

const char* wireless_tech_name(WirelessTech tech) {
  switch (tech) {
    case WirelessTech::kPassiveWifi:
      return "passive-wifi (~10 m)";
    case WirelessTech::kLoraBackscatter:
      return "lora-backscatter (>100 m)";
  }
  return "unknown";
}

double EnergyModel::wireless_pj_per_pixel(WirelessTech tech) const {
  switch (tech) {
    case WirelessTech::kPassiveWifi:
      return wireless_.passive_wifi_pj_per_pixel;
    case WirelessTech::kLoraBackscatter:
      return wireless_.lora_backscatter_pj_per_pixel;
  }
  SNAPPIX_CHECK(false, "unknown wireless tech");
}

double EnergyModel::conventional_edge_energy_j(std::int64_t pixels_per_frame, int frames,
                                               WirelessTech tech) const {
  SNAPPIX_CHECK(pixels_per_frame > 0 && frames > 0, "bad scenario parameters");
  const double per_frame_pj =
      static_cast<double>(pixels_per_frame) *
      (analog_pj_per_pixel() + readout_pj_per_pixel() + wireless_pj_per_pixel(tech));
  return per_frame_pj * frames * 1e-12;
}

double EnergyModel::snappix_edge_energy_j(std::int64_t pixels_per_frame, int slots,
                                          WirelessTech tech) const {
  SNAPPIX_CHECK(pixels_per_frame > 0 && slots > 0, "bad scenario parameters");
  // Every slot pays the analog exposure and the CE pattern streaming; only
  // one coded frame is read out and transmitted.
  const double per_pixel_pj =
      static_cast<double>(slots) * (analog_pj_per_pixel() + ce_pj_per_pixel_slot()) +
      readout_pj_per_pixel() + wireless_pj_per_pixel(tech);
  return static_cast<double>(pixels_per_frame) * per_pixel_pj * 1e-12;
}

double gpu_inference_energy_j(const GpuInference& inference, const GpuModelParams& params) {
  SNAPPIX_CHECK(inference.gflops > 0.0, "inference FLOPs must be positive");
  const double j_per_gflop =
      inference.conv3d_bound ? params.conv3d_j_per_gflop : params.dense_j_per_gflop;
  return params.fixed_j_per_inference + j_per_gflop * inference.gflops;
}

double vit_gflops(std::int64_t tokens, std::int64_t dim, int depth, std::int64_t patch_in) {
  // Patch embedding + transformer blocks (attention projections, attention
  // matrices, MLP with ratio 4), MACs counted as 2 FLOPs.
  const double n = static_cast<double>(tokens);
  const double d = static_cast<double>(dim);
  const double embed = 2.0 * n * static_cast<double>(patch_in) * d;
  const double qkv_proj = 2.0 * n * d * (3.0 * d) + 2.0 * n * d * d;  // qkv + out proj
  const double attn_mat = 2.0 * 2.0 * n * n * d;                      // QK^T and AV
  const double mlp = 2.0 * 2.0 * n * d * (4.0 * d);                   // two 4x linears
  return (embed + depth * (qkv_proj + attn_mat + mlp)) / 1e9;
}

double paper_snappix_s_gflops() {
  // ViT-S on a single 112x112 coded image: 14x14 = 196 tokens, dim 384, 12L.
  return vit_gflops(196, 384, 12, 64);
}

double paper_snappix_b_gflops() {
  // ViT-B: 196 tokens, dim 768, 12 layers.
  return vit_gflops(196, 768, 12, 64);
}

double paper_videomae_st_gflops() {
  // VideoMAEv2-ST sized to match SNAPPIX-B's speed (Table I: 750 vs 760
  // inferences/sec): 16 frames, tubelet 2 -> 8x14x14 = 1568 tokens, width
  // reduced so the FLOP budget lands at SNAPPIX-B's.
  return vit_gflops(1568, 192, 10, 2 * 64);
}

double paper_c3d_gflops() {
  // Classic C3D at 112x112x16 input: ~38.5 GFLOPs (Tran et al. scaled).
  return 38.5;
}

}  // namespace snappix::energy
