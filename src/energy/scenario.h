// Edge-sensing scenario calculators reproducing the Sec. VI-D numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/model.h"

namespace snappix::energy {

struct ScenarioResult {
  std::string name;
  double baseline_j = 0.0;
  double snappix_j = 0.0;
  double saving_factor = 0.0;
};

// Offload scenario: the edge node senses and transmits everything; the
// server computes. Compares a conventional T-frame pipeline against SNAPPIX.
ScenarioResult offload_scenario(const EnergyModel& model, std::int64_t pixels_per_frame,
                                int slots, WirelessTech tech);

// Mobile-GPU scenario: the edge node runs the downstream model locally on a
// Jetson-class GPU. Compares SNAPPIX-S's edge energy (sensing + GPU) against
// a video baseline (sensing T frames + its GPU energy).
ScenarioResult edge_gpu_scenario(const EnergyModel& model, const GpuModelParams& gpu,
                                 std::int64_t pixels_per_frame, int slots,
                                 const GpuInference& snappix_model,
                                 const GpuInference& baseline_model);

// Component-level reduction table (ADC/MIPI, wireless) under T slots.
struct ComponentReduction {
  std::string component;
  double baseline_pj_per_pixel = 0.0;
  double snappix_pj_per_pixel = 0.0;
  double reduction = 0.0;
};
std::vector<ComponentReduction> component_reductions(const EnergyModel& model, int slots,
                                                     WirelessTech tech);

}  // namespace snappix::energy
