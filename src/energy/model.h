// Edge-sensing energy model (paper Sec. VI-D), seeded with the paper's
// CamJ-calibrated constants:
//  - 220 pJ/pixel total sensing energy at 8 bits, 95.6% of it ADC + MIPI,
//  - 9 pJ/pixel CE pattern-streaming overhead per slot (20 MHz pattern clk),
//  - passive Wi-Fi 43.04 pJ/pixel (short range, ~10 m),
//  - LoRa backscatter 7.4 uJ/pixel (long range, >100 m).
#pragma once

#include <cstdint>
#include <string>

namespace snappix::energy {

struct SensorEnergyParams {
  double sensing_pj_per_pixel = 220.0;  // conventional 8-bit read-out
  double adc_mipi_fraction = 0.956;     // read-out share of sensing energy
  double adc_fraction = 0.66;           // ADC share of a sensor's energy (survey)
  double ce_overhead_pj_per_pixel_slot = 9.0;
};

struct WirelessParams {
  double passive_wifi_pj_per_pixel = 43.04;
  double lora_backscatter_pj_per_pixel = 7.4e6;  // 7.4 uJ
};

enum class WirelessTech { kPassiveWifi, kLoraBackscatter };

const char* wireless_tech_name(WirelessTech tech);

class EnergyModel {
 public:
  EnergyModel() = default;
  EnergyModel(const SensorEnergyParams& sensor, const WirelessParams& wireless)
      : sensor_(sensor), wireless_(wireless) {}

  // --- per-pixel component energies (picojoules) ---------------------------
  // Read-out (ADC + MIPI) share of the sensing energy; paid per pixel READ.
  double readout_pj_per_pixel() const {
    return sensor_.sensing_pj_per_pixel * sensor_.adc_mipi_fraction;
  }
  // Analog front-end (exposure, amplification); paid per pixel per FRAME/slot
  // integrated, whether or not the value is read out.
  double analog_pj_per_pixel() const {
    return sensor_.sensing_pj_per_pixel * (1.0 - sensor_.adc_mipi_fraction);
  }
  double ce_pj_per_pixel_slot() const { return sensor_.ce_overhead_pj_per_pixel_slot; }
  double wireless_pj_per_pixel(WirelessTech tech) const;

  // --- composed energies (joules) ------------------------------------------
  // Conventional sensor: T frames exposed, read out, and transmitted.
  double conventional_edge_energy_j(std::int64_t pixels_per_frame, int frames,
                                    WirelessTech tech) const;
  // SNAPPIX: T slots exposed (analog + CE streaming each slot), one coded
  // frame read out and transmitted.
  double snappix_edge_energy_j(std::int64_t pixels_per_frame, int slots,
                               WirelessTech tech) const;

  // Per-component reduction factor of the read-out + wireless energy
  // (the "16x" claim under T = 16).
  double readout_wireless_reduction(int slots) const { return static_cast<double>(slots); }

  const SensorEnergyParams& sensor_params() const { return sensor_; }
  const WirelessParams& wireless_params() const { return wireless_; }

 private:
  SensorEnergyParams sensor_;
  WirelessParams wireless_;
};

// --- mobile-GPU scenario (Sec. VI-D, Jetson Xavier) --------------------------
// Energy of running a model on the edge GPU at batch 1, modeled as a fixed
// per-inference cost (kernel launches, memory traffic, loading 16 frames vs
// 1 coded image) plus workload-dependent energy per GFLOP (conv3d utilizes
// the mobile GPU far worse than dense transformer matmuls). Calibrated
// against the paper's measured Jetson Xavier ratios: SNAPPIX-S saves 1.4x vs
// VideoMAEv2-ST and 4.5x vs C3D.
struct GpuModelParams {
  double fixed_j_per_inference = 5.52;  // batch-1 overhead (static power x latency floor)
  double dense_j_per_gflop = 0.10;      // transformer/dense workloads
  double conv3d_j_per_gflop = 0.607;    // conv3d workloads (poor mobile-GPU utilization)
};

struct GpuInference {
  std::string name;
  double gflops = 0.0;
  bool conv3d_bound = false;  // true for C3D-style workloads
};

double gpu_inference_energy_j(const GpuInference& inference, const GpuModelParams& params);

// Analytic FLOP counts (multiply-accumulate pairs counted as 2 FLOPs) of the
// paper-scale model variants at 112x112, T = 16, patch 8.
double vit_gflops(std::int64_t tokens, std::int64_t dim, int depth, std::int64_t patch_in);
double paper_snappix_s_gflops();
double paper_snappix_b_gflops();
double paper_videomae_st_gflops();
double paper_c3d_gflops();

}  // namespace snappix::energy
