// Patch/tubelet embeddings and patchify helpers.
//
// SNAPPIX aligns the ViT patch size with the CE tile size so the per-patch
// MLPs can learn the within-tile exposure variation (paper Sec. IV). The
// patchify helpers are also used to build MAE pre-training targets.
#pragma once

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"

namespace snappix::nn {

// (B, H, W) image -> (B, N, p*p) patch rows, N = (H/p)*(W/p).
Tensor patchify_image(const Tensor& image, int patch);
// Inverse of patchify_image: (B, N, p*p) -> (B, H, W).
Tensor unpatchify_image(const Tensor& patches, int patch, std::int64_t height,
                        std::int64_t width);
// (B, T, H, W) video -> (B, N, T*p*p): per spatial patch, all frames.
Tensor patchify_video(const Tensor& video, int patch);
// Inverse of patchify_video: (B, N, T*p*p) -> (B, T, H, W).
Tensor unpatchify_video(const Tensor& patches, int patch, std::int64_t frames,
                        std::int64_t height, std::int64_t width);

// Linear patch embedding for single coded images (B, H, W) -> (B, N, dim).
class PatchEmbed : public Module {
 public:
  PatchEmbed(int patch, std::int64_t dim, Rng& rng);

  Tensor forward(const Tensor& image) const;

  int patch() const { return patch_; }

 private:
  int patch_;
  std::shared_ptr<Linear> proj_;
};

// Tubelet embedding for videos (B, T, H, W) -> (B, N, dim); tokens span
// `tubelet_t` frames by `patch` x `patch` pixels (VideoMAE-style).
class TubeletEmbed : public Module {
 public:
  TubeletEmbed(int tubelet_t, int patch, std::int64_t dim, Rng& rng);

  Tensor forward(const Tensor& video) const;

  int patch() const { return patch_; }
  int tubelet_t() const { return tubelet_t_; }

 private:
  int tubelet_t_;
  int patch_;
  std::shared_ptr<Linear> proj_;
};

}  // namespace snappix::nn
