#include "nn/layers.h"

#include <cmath>

#include "util/common.h"

namespace snappix::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng, bool with_bias)
    : in_features_(in_features), out_features_(out_features) {
  SNAPPIX_CHECK(in_features > 0 && out_features > 0, "Linear: non-positive feature count");
  // Xavier/Glorot normal initialization.
  const float stddev = std::sqrt(2.0F / static_cast<float>(in_features + out_features));
  weight_ = register_parameter("weight",
                               Tensor::randn(Shape{in_features, out_features}, rng, stddev));
  if (with_bias) {
    bias_ = register_parameter("bias", Tensor::zeros(Shape{out_features}));
  }
}

Tensor Linear::forward(const Tensor& x) const {
  SNAPPIX_CHECK(x.shape()[-1] == in_features_, "Linear expects last dim " << in_features_
                                                                          << ", got "
                                                                          << x.shape().to_string());
  Tensor y = matmul(x, weight_);
  if (bias_.defined()) {
    y = add(y, bias_);
  }
  return y;
}

LayerNorm::LayerNorm(std::int64_t dim, float eps) : dim_(dim), eps_(eps) {
  SNAPPIX_CHECK(dim > 0, "LayerNorm: non-positive dim");
  gamma_ = register_parameter("gamma", Tensor::ones(Shape{dim}));
  beta_ = register_parameter("beta", Tensor::zeros(Shape{dim}));
}

Tensor LayerNorm::forward(const Tensor& x) const {
  SNAPPIX_CHECK(x.shape()[-1] == dim_, "LayerNorm expects last dim " << dim_ << ", got "
                                                                     << x.shape().to_string());
  const Tensor mu = mean(x, -1, /*keepdim=*/true);
  const Tensor centered = sub(x, mu);
  const Tensor var = mean(square(centered), -1, /*keepdim=*/true);
  const Tensor normalized = div(centered, snappix::sqrt(add_scalar(var, eps_)));
  return add(mul(normalized, gamma_), beta_);
}

Mlp::Mlp(std::int64_t dim, std::int64_t hidden, Rng& rng) {
  fc1_ = register_module("fc1", std::make_shared<Linear>(dim, hidden, rng));
  fc2_ = register_module("fc2", std::make_shared<Linear>(hidden, dim, rng));
}

Tensor Mlp::forward(const Tensor& x) const { return fc2_->forward(gelu(fc1_->forward(x))); }

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels, int kernel, int stride,
               int padding, Rng& rng)
    : stride_(stride), padding_(padding) {
  const auto fan_in = static_cast<float>(in_channels * kernel * kernel);
  const float stddev = std::sqrt(2.0F / fan_in);  // He init for ReLU nets
  weight_ = register_parameter(
      "weight", Tensor::randn(Shape{out_channels, in_channels, kernel, kernel}, rng, stddev));
  bias_ = register_parameter("bias", Tensor::zeros(Shape{out_channels}));
}

Tensor Conv2d::forward(const Tensor& x) const {
  return conv2d(x, weight_, bias_, stride_, padding_);
}

Conv3d::Conv3d(std::int64_t in_channels, std::int64_t out_channels, int kernel_t, int kernel_hw,
               int stride_t, int stride_hw, int pad_t, int pad_hw, Rng& rng)
    : stride_t_(stride_t), stride_hw_(stride_hw), pad_t_(pad_t), pad_hw_(pad_hw) {
  const auto fan_in = static_cast<float>(in_channels * kernel_t * kernel_hw * kernel_hw);
  const float stddev = std::sqrt(2.0F / fan_in);
  weight_ = register_parameter(
      "weight",
      Tensor::randn(Shape{out_channels, in_channels, kernel_t, kernel_hw, kernel_hw}, rng, stddev));
  bias_ = register_parameter("bias", Tensor::zeros(Shape{out_channels}));
}

Tensor Conv3d::forward(const Tensor& x) const {
  return conv3d(x, weight_, bias_, stride_t_, stride_hw_, pad_t_, pad_hw_);
}

}  // namespace snappix::nn
