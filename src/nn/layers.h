// Basic layers: Linear, LayerNorm, Mlp, and convolution wrappers.
#pragma once

#include <memory>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix::nn {

// Fully connected layer. Weight layout is (in, out) so the forward pass is
// matmul(x, weight) + bias with x of shape (..., in) flattened to 2-D/3-D.
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng, bool with_bias = true);

  // x: (B, in) or (B, N, in) -> same leading dims with `out` features.
  Tensor forward(const Tensor& x) const;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  Tensor weight_;
  Tensor bias_;  // undefined when bias disabled
};

// Layer normalization over the last axis with learnable affine parameters.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t dim, float eps = 1e-5F);

  Tensor forward(const Tensor& x) const;

 private:
  std::int64_t dim_;
  float eps_;
  Tensor gamma_;
  Tensor beta_;
};

// Transformer MLP: Linear -> GELU -> Linear.
class Mlp : public Module {
 public:
  Mlp(std::int64_t dim, std::int64_t hidden, Rng& rng);

  Tensor forward(const Tensor& x) const;

 private:
  std::shared_ptr<Linear> fc1_;
  std::shared_ptr<Linear> fc2_;
};

// 2-D convolution layer wrapping the conv2d op.
class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, int kernel, int stride, int padding,
         Rng& rng);

  Tensor forward(const Tensor& x) const;

 private:
  int stride_;
  int padding_;
  Tensor weight_;
  Tensor bias_;
};

// 3-D convolution layer wrapping the conv3d op.
class Conv3d : public Module {
 public:
  Conv3d(std::int64_t in_channels, std::int64_t out_channels, int kernel_t, int kernel_hw,
         int stride_t, int stride_hw, int pad_t, int pad_hw, Rng& rng);

  Tensor forward(const Tensor& x) const;

 private:
  int stride_t_;
  int stride_hw_;
  int pad_t_;
  int pad_hw_;
  Tensor weight_;
  Tensor bias_;
};

}  // namespace snappix::nn
