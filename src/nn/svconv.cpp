#include "nn/svconv.h"

#include <cmath>
#include <utility>

#include "util/common.h"
#include "util/parallel.h"

namespace snappix::nn {

Tensor shift_variant_conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias, int tile) {
  SNAPPIX_CHECK(x.ndim() == 4, "svc input must be (B,C,H,W), got " << x.shape().to_string());
  SNAPPIX_CHECK(weight.ndim() == 5, "svc weight must be (P,O,C,kh,kw), got "
                                        << weight.shape().to_string());
  SNAPPIX_CHECK(tile >= 1, "svc tile must be positive");
  const std::int64_t batch = x.shape()[0];
  const std::int64_t cin = x.shape()[1];
  const std::int64_t h = x.shape()[2];
  const std::int64_t w = x.shape()[3];
  const std::int64_t positions = weight.shape()[0];
  const std::int64_t cout = weight.shape()[1];
  const std::int64_t kh = weight.shape()[3];
  const std::int64_t kw = weight.shape()[4];
  SNAPPIX_CHECK(positions == static_cast<std::int64_t>(tile) * tile,
                "svc weight has " << positions << " kernels but tile " << tile << " needs "
                                  << tile * tile);
  SNAPPIX_CHECK(weight.shape()[2] == cin, "svc channel mismatch");
  SNAPPIX_CHECK(kh % 2 == 1 && kw % 2 == 1, "svc kernels must be odd-sized for same padding");
  if (bias.defined()) {
    SNAPPIX_CHECK(bias.ndim() == 1 && bias.shape()[0] == cout, "svc bias must be (O)");
  }
  const std::int64_t pad_h = kh / 2;
  const std::int64_t pad_w = kw / 2;

  const Shape out_shape{batch, cout, h, w};
  std::vector<float> out(static_cast<std::size_t>(out_shape.numel()), 0.0F);
  const float* px = x.data().data();
  const float* pw = weight.data().data();
  const float* pb = bias.defined() ? bias.data().data() : nullptr;

  parallel_for(batch * cout, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t bo = i0; bo < i1; ++bo) {
      const std::int64_t b = bo / cout;
      const std::int64_t o = bo % cout;
      float* dst = out.data() + (b * cout + o) * h * w;
      for (std::int64_t oy = 0; oy < h; ++oy) {
        for (std::int64_t ox = 0; ox < w; ++ox) {
          const std::int64_t p = (oy % tile) * tile + (ox % tile);
          float acc = pb != nullptr ? pb[o] : 0.0F;
          for (std::int64_t c = 0; c < cin; ++c) {
            const float* xc = px + (b * cin + c) * h * w;
            const float* wc = pw + ((p * cout + o) * cin + c) * kh * kw;
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t iy = oy + ky - pad_h;
              if (iy < 0 || iy >= h) {
                continue;
              }
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ix = ox + kx - pad_w;
                if (ix < 0 || ix >= w) {
                  continue;
                }
                acc += xc[iy * w + ix] * wc[ky * kw + kx];
              }
            }
          }
          dst[oy * w + ox] = acc;
        }
      }
    }
  });

  auto xi = x.impl();
  auto wi = weight.impl();
  auto bi = bias.defined() ? bias.impl() : nullptr;
  std::vector<Tensor> parents = bias.defined() ? std::vector<Tensor>{x, weight, bias}
                                               : std::vector<Tensor>{x, weight};
  return make_result(
      out_shape, std::move(out), std::move(parents),
      [xi, wi, bi, batch, cin, h, w, cout, kh, kw, pad_h, pad_w, tile](TensorImpl& self) {
        const float* g = self.grad.data();
        if (xi->requires_grad) {
          xi->ensure_grad();
        }
        if (wi->requires_grad) {
          wi->ensure_grad();
        }
        if (bi != nullptr && bi->requires_grad) {
          bi->ensure_grad();
        }
        for (std::int64_t b = 0; b < batch; ++b) {
          for (std::int64_t o = 0; o < cout; ++o) {
            const float* grow = g + (b * cout + o) * h * w;
            for (std::int64_t oy = 0; oy < h; ++oy) {
              for (std::int64_t ox = 0; ox < w; ++ox) {
                const float gv = grow[oy * w + ox];
                if (gv == 0.0F) {
                  continue;
                }
                const std::int64_t p = (oy % tile) * tile + (ox % tile);
                if (bi != nullptr && bi->requires_grad) {
                  bi->grad[static_cast<std::size_t>(o)] += gv;
                }
                for (std::int64_t c = 0; c < cin; ++c) {
                  const std::int64_t xbase = (b * cin + c) * h * w;
                  const std::int64_t wbase = ((p * cout + o) * cin + c) * kh * kw;
                  for (std::int64_t ky = 0; ky < kh; ++ky) {
                    const std::int64_t iy = oy + ky - pad_h;
                    if (iy < 0 || iy >= h) {
                      continue;
                    }
                    for (std::int64_t kx = 0; kx < kw; ++kx) {
                      const std::int64_t ix = ox + kx - pad_w;
                      if (ix < 0 || ix >= w) {
                        continue;
                      }
                      if (xi->requires_grad) {
                        xi->grad[static_cast<std::size_t>(xbase + iy * w + ix)] +=
                            gv * wi->data[static_cast<std::size_t>(wbase + ky * kw + kx)];
                      }
                      if (wi->requires_grad) {
                        wi->grad[static_cast<std::size_t>(wbase + ky * kw + kx)] +=
                            gv * xi->data[static_cast<std::size_t>(xbase + iy * w + ix)];
                      }
                    }
                  }
                }
              }
            }
          }
        }
      });
}

ShiftVariantConv2d::ShiftVariantConv2d(std::int64_t in_channels, std::int64_t out_channels,
                                       int kernel, int tile, Rng& rng)
    : tile_(tile) {
  const auto fan_in = static_cast<float>(in_channels * kernel * kernel);
  const float stddev = std::sqrt(2.0F / fan_in);
  weight_ = register_parameter(
      "weight", Tensor::randn(Shape{static_cast<std::int64_t>(tile) * tile, out_channels,
                                    in_channels, kernel, kernel},
                              rng, stddev));
  bias_ = register_parameter("bias", Tensor::zeros(Shape{out_channels}));
}

Tensor ShiftVariantConv2d::forward(const Tensor& x) const {
  return shift_variant_conv2d(x, weight_, bias_, tile_);
}

}  // namespace snappix::nn
