// Multi-head self-attention and the pre-norm transformer block.
#pragma once

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"

namespace snappix::nn {

// Standard multi-head self-attention over token sequences (B, N, D).
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(std::int64_t dim, int heads, Rng& rng);

  Tensor forward(const Tensor& x) const;

  int heads() const { return heads_; }

 private:
  std::int64_t dim_;
  int heads_;
  std::int64_t head_dim_;
  std::shared_ptr<Linear> qkv_;
  std::shared_ptr<Linear> proj_;
};

// Pre-norm transformer encoder block: x + MHA(LN(x)); x + MLP(LN(x)).
class TransformerBlock : public Module {
 public:
  TransformerBlock(std::int64_t dim, int heads, float mlp_ratio, Rng& rng);

  Tensor forward(const Tensor& x) const;

 private:
  std::shared_ptr<LayerNorm> norm1_;
  std::shared_ptr<MultiHeadAttention> attn_;
  std::shared_ptr<LayerNorm> norm2_;
  std::shared_ptr<Mlp> mlp_;
};

}  // namespace snappix::nn
