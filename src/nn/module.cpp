#include "nn/module.h"

#include <fstream>

#include "util/common.h"

namespace snappix::nn {

Tensor Module::register_parameter(const std::string& name, Tensor value) {
  SNAPPIX_CHECK(value.defined(), "register_parameter(" << name << "): undefined tensor");
  value.set_requires_grad(true);
  params_.emplace_back(name, value);
  return value;
}

void Module::collect(const std::string& prefix,
                     std::vector<std::pair<std::string, Tensor>>& out) const {
  for (const auto& [name, tensor] : params_) {
    out.emplace_back(prefix.empty() ? name : prefix + "." + name, tensor);
  }
  for (const auto& [name, child] : children_) {
    child->collect(prefix.empty() ? name : prefix + "." + name, out);
  }
}

std::vector<std::pair<std::string, Tensor>> Module::named_parameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  collect("", out);
  return out;
}

std::vector<Tensor> Module::parameters() const {
  std::vector<Tensor> out;
  for (auto& [name, tensor] : named_parameters()) {
    (void)name;
    out.push_back(tensor);
  }
  return out;
}

std::int64_t Module::parameter_count() const {
  std::int64_t n = 0;
  for (const auto& p : parameters()) {
    n += p.numel();
  }
  return n;
}

void Module::zero_grad() {
  for (auto& p : parameters()) {
    p.zero_grad();
  }
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) {
    (void)name;
    child->set_training(training);
  }
}

namespace {
constexpr std::uint32_t kMagic = 0x534E5058;  // "SNPX"
}  // namespace

void Module::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  SNAPPIX_CHECK(out.good(), "cannot open " << path << " for writing");
  const auto named = named_parameters();
  const auto count = static_cast<std::uint64_t>(named.size());
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, tensor] : named) {
    const auto name_len = static_cast<std::uint64_t>(name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const auto numel = static_cast<std::uint64_t>(tensor.numel());
    out.write(reinterpret_cast<const char*>(&numel), sizeof(numel));
    out.write(reinterpret_cast<const char*>(tensor.data().data()),
              static_cast<std::streamsize>(numel * sizeof(float)));
  }
  SNAPPIX_CHECK(out.good(), "write failure on " << path);
}

void Module::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SNAPPIX_CHECK(in.good(), "cannot open " << path << " for reading");
  std::uint32_t magic = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  SNAPPIX_CHECK(magic == kMagic, path << " is not a snappix checkpoint");
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  auto named = named_parameters();
  SNAPPIX_CHECK(count == named.size(), "checkpoint has " << count << " tensors, module expects "
                                                         << named.size());
  for (auto& [name, tensor] : named) {
    std::uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    std::string stored(name_len, '\0');
    in.read(stored.data(), static_cast<std::streamsize>(name_len));
    SNAPPIX_CHECK(stored == name, "checkpoint tensor `" << stored << "` does not match module "
                                                        << "parameter `" << name << "`");
    std::uint64_t numel = 0;
    in.read(reinterpret_cast<char*>(&numel), sizeof(numel));
    SNAPPIX_CHECK(numel == static_cast<std::uint64_t>(tensor.numel()),
                  "checkpoint tensor `" << name << "` has " << numel << " values, expected "
                                        << tensor.numel());
    in.read(reinterpret_cast<char*>(tensor.data().data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
  }
  SNAPPIX_CHECK(in.good(), "read failure on " << path);
}

}  // namespace snappix::nn
