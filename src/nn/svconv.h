// Shift-Variant Convolution (SVC), the mechanism prior CE work (SVC2D,
// Okawara et al.) uses to handle pixel-level exposure non-uniformity: pixels
// at different positions within the CE tile get different convolution
// kernels. SNAPPIX replaces this with tile-aligned ViT patches; SVC is
// implemented here for the baseline comparison.
#pragma once

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix::nn {

// Functional op: x (B,C,H,W), weight (P,O,C,kh,kw) with P = tile*tile and the
// kernel selected by p = (y % tile)*tile + (x % tile); stride 1, same padding.
Tensor shift_variant_conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias, int tile);

// Layer wrapper holding per-position kernels.
class ShiftVariantConv2d : public Module {
 public:
  ShiftVariantConv2d(std::int64_t in_channels, std::int64_t out_channels, int kernel, int tile,
                     Rng& rng);

  Tensor forward(const Tensor& x) const;

  int tile() const { return tile_; }

 private:
  int tile_;
  Tensor weight_;  // (P, O, C, k, k)
  Tensor bias_;    // (O)
};

}  // namespace snappix::nn
