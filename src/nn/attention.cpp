#include "nn/attention.h"

#include <cmath>

#include "util/common.h"

namespace snappix::nn {

MultiHeadAttention::MultiHeadAttention(std::int64_t dim, int heads, Rng& rng)
    : dim_(dim), heads_(heads), head_dim_(dim / heads) {
  SNAPPIX_CHECK(heads > 0 && dim % heads == 0,
                "attention dim " << dim << " not divisible by heads " << heads);
  qkv_ = register_module("qkv", std::make_shared<Linear>(dim, 3 * dim, rng));
  proj_ = register_module("proj", std::make_shared<Linear>(dim, dim, rng));
}

Tensor MultiHeadAttention::forward(const Tensor& x) const {
  SNAPPIX_CHECK(x.ndim() == 3 && x.shape()[2] == dim_,
                "attention expects (B, N, " << dim_ << "), got " << x.shape().to_string());
  const std::int64_t batch = x.shape()[0];
  const std::int64_t tokens = x.shape()[1];
  const std::int64_t h = heads_;
  const std::int64_t hd = head_dim_;

  const Tensor qkv = qkv_->forward(x);  // (B, N, 3D)
  auto split_head = [&](std::int64_t part) {
    // (B, N, D) -> (B*H, N, hd)
    Tensor s = slice(qkv, 2, part * dim_, (part + 1) * dim_);
    s = reshape(s, Shape{batch, tokens, h, hd});
    s = permute(s, {0, 2, 1, 3});  // (B, H, N, hd)
    return reshape(s, Shape{batch * h, tokens, hd});
  };
  const Tensor q = split_head(0);
  const Tensor k = split_head(1);
  const Tensor v = split_head(2);

  const float scale = 1.0F / std::sqrt(static_cast<float>(hd));
  Tensor scores = mul_scalar(matmul(q, transpose(k, 1, 2)), scale);  // (B*H, N, N)
  Tensor attn = softmax(scores, -1);
  Tensor out = matmul(attn, v);  // (B*H, N, hd)
  out = reshape(out, Shape{batch, h, tokens, hd});
  out = permute(out, {0, 2, 1, 3});  // (B, N, H, hd)
  out = reshape(out, Shape{batch, tokens, dim_});
  return proj_->forward(out);
}

TransformerBlock::TransformerBlock(std::int64_t dim, int heads, float mlp_ratio, Rng& rng) {
  norm1_ = register_module("norm1", std::make_shared<LayerNorm>(dim));
  attn_ = register_module("attn", std::make_shared<MultiHeadAttention>(dim, heads, rng));
  norm2_ = register_module("norm2", std::make_shared<LayerNorm>(dim));
  const auto hidden = static_cast<std::int64_t>(static_cast<float>(dim) * mlp_ratio);
  mlp_ = register_module("mlp", std::make_shared<Mlp>(dim, hidden, rng));
}

Tensor TransformerBlock::forward(const Tensor& x) const {
  Tensor y = add(x, attn_->forward(norm1_->forward(x)));
  return add(y, mlp_->forward(norm2_->forward(y)));
}

}  // namespace snappix::nn
