#include "nn/embed.h"

#include "util/common.h"

namespace snappix::nn {

Tensor patchify_image(const Tensor& image, int patch) {
  SNAPPIX_CHECK(image.ndim() == 3, "patchify_image expects (B, H, W), got "
                                       << image.shape().to_string());
  const std::int64_t batch = image.shape()[0];
  const std::int64_t h = image.shape()[1];
  const std::int64_t w = image.shape()[2];
  SNAPPIX_CHECK(patch > 0 && h % patch == 0 && w % patch == 0,
                "image " << h << "x" << w << " not divisible by patch " << patch);
  const std::int64_t gh = h / patch;
  const std::int64_t gw = w / patch;
  Tensor t = reshape(image, Shape{batch, gh, patch, gw, patch});
  t = permute(t, {0, 1, 3, 2, 4});  // (B, gh, gw, p, p)
  return reshape(t, Shape{batch, gh * gw, static_cast<std::int64_t>(patch) * patch});
}

Tensor unpatchify_image(const Tensor& patches, int patch, std::int64_t height,
                        std::int64_t width) {
  SNAPPIX_CHECK(patches.ndim() == 3, "unpatchify_image expects (B, N, p*p)");
  const std::int64_t batch = patches.shape()[0];
  const std::int64_t gh = height / patch;
  const std::int64_t gw = width / patch;
  SNAPPIX_CHECK(patches.shape()[1] == gh * gw &&
                    patches.shape()[2] == static_cast<std::int64_t>(patch) * patch,
                "unpatchify_image: patches " << patches.shape().to_string()
                                             << " do not fit image " << height << "x" << width);
  Tensor t = reshape(patches, Shape{batch, gh, gw, patch, patch});
  t = permute(t, {0, 1, 3, 2, 4});  // (B, gh, p, gw, p)
  return reshape(t, Shape{batch, height, width});
}

Tensor patchify_video(const Tensor& video, int patch) {
  SNAPPIX_CHECK(video.ndim() == 4, "patchify_video expects (B, T, H, W), got "
                                       << video.shape().to_string());
  const std::int64_t batch = video.shape()[0];
  const std::int64_t frames = video.shape()[1];
  const std::int64_t h = video.shape()[2];
  const std::int64_t w = video.shape()[3];
  SNAPPIX_CHECK(patch > 0 && h % patch == 0 && w % patch == 0,
                "video " << h << "x" << w << " not divisible by patch " << patch);
  const std::int64_t gh = h / patch;
  const std::int64_t gw = w / patch;
  Tensor t = reshape(video, Shape{batch, frames, gh, patch, gw, patch});
  t = permute(t, {0, 2, 4, 1, 3, 5});  // (B, gh, gw, T, p, p)
  return reshape(t, Shape{batch, gh * gw, frames * patch * patch});
}

Tensor unpatchify_video(const Tensor& patches, int patch, std::int64_t frames,
                        std::int64_t height, std::int64_t width) {
  SNAPPIX_CHECK(patches.ndim() == 3, "unpatchify_video expects (B, N, T*p*p)");
  const std::int64_t batch = patches.shape()[0];
  const std::int64_t gh = height / patch;
  const std::int64_t gw = width / patch;
  SNAPPIX_CHECK(patches.shape()[1] == gh * gw &&
                    patches.shape()[2] == frames * patch * patch,
                "unpatchify_video: patches " << patches.shape().to_string() << " do not fit video");
  Tensor t = reshape(patches, Shape{batch, gh, gw, frames, patch, patch});
  t = permute(t, {0, 3, 1, 4, 2, 5});  // (B, T, gh, p, gw, p)
  return reshape(t, Shape{batch, frames, height, width});
}

PatchEmbed::PatchEmbed(int patch, std::int64_t dim, Rng& rng) : patch_(patch) {
  proj_ = register_module(
      "proj", std::make_shared<Linear>(static_cast<std::int64_t>(patch) * patch, dim, rng));
}

Tensor PatchEmbed::forward(const Tensor& image) const {
  return proj_->forward(patchify_image(image, patch_));
}

TubeletEmbed::TubeletEmbed(int tubelet_t, int patch, std::int64_t dim, Rng& rng)
    : tubelet_t_(tubelet_t), patch_(patch) {
  proj_ = register_module(
      "proj",
      std::make_shared<Linear>(
          static_cast<std::int64_t>(tubelet_t) * patch * patch, dim, rng));
}

Tensor TubeletEmbed::forward(const Tensor& video) const {
  SNAPPIX_CHECK(video.ndim() == 4, "TubeletEmbed expects (B, T, H, W), got "
                                       << video.shape().to_string());
  const std::int64_t batch = video.shape()[0];
  const std::int64_t frames = video.shape()[1];
  const std::int64_t h = video.shape()[2];
  const std::int64_t w = video.shape()[3];
  SNAPPIX_CHECK(frames % tubelet_t_ == 0, "frames " << frames << " not divisible by tubelet "
                                                    << tubelet_t_);
  SNAPPIX_CHECK(h % patch_ == 0 && w % patch_ == 0, "video not divisible by patch " << patch_);
  const std::int64_t gt = frames / tubelet_t_;
  const std::int64_t gh = h / patch_;
  const std::int64_t gw = w / patch_;
  Tensor t = reshape(video, Shape{batch, gt, tubelet_t_, gh, patch_, gw, patch_});
  t = permute(t, {0, 1, 3, 5, 2, 4, 6});  // (B, gt, gh, gw, tt, p, p)
  t = reshape(t, Shape{batch, gt * gh * gw,
                       static_cast<std::int64_t>(tubelet_t_) * patch_ * patch_});
  return proj_->forward(t);
}

}  // namespace snappix::nn
