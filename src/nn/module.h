// Module: base class for neural-network components.
//
// A Module owns named parameters and named child modules; parameters() walks
// the tree. Parameters are Tensors with requires_grad set, so optimizers can
// hold them by handle. Serialization writes a flat name->values binary file.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace snappix::nn {

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All parameters of this module and its children (depth-first).
  std::vector<Tensor> parameters() const;
  // Parameters with their dotted path names, e.g. "blocks.0.attn.qkv.weight".
  std::vector<std::pair<std::string, Tensor>> named_parameters() const;

  std::int64_t parameter_count() const;
  void zero_grad();

  // Training mode toggles dropout etc. Propagates to children.
  void set_training(bool training);
  bool training() const { return training_; }

  // Binary checkpoint I/O. Load verifies names and shapes.
  void save(const std::string& path) const;
  void load(const std::string& path);

 protected:
  // Registers (and returns) a trainable parameter.
  Tensor register_parameter(const std::string& name, Tensor value);

  // Registers a child module and returns the typed pointer for convenience.
  template <typename M>
  std::shared_ptr<M> register_module(const std::string& name, std::shared_ptr<M> child) {
    children_.emplace_back(name, child);
    return child;
  }

 private:
  void collect(const std::string& prefix,
               std::vector<std::pair<std::string, Tensor>>& out) const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

}  // namespace snappix::nn
