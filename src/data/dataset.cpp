#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "util/common.h"

namespace snappix::data {

VideoDataset::VideoDataset(const DatasetConfig& config) : config_(config) {
  SNAPPIX_CHECK(config.train_per_class > 0 && config.test_per_class >= 0,
                "DatasetConfig: bad split sizes");
  const SyntheticVideoGenerator generator(config.scene);
  Rng rng(config.seed);
  for (int c = 0; c < config.scene.num_classes; ++c) {
    for (int i = 0; i < config.train_per_class; ++i) {
      train_.push_back(generator.sample(rng, c));
    }
    for (int i = 0; i < config.test_per_class; ++i) {
      test_.push_back(generator.sample(rng, c));
    }
  }
}

const VideoSample& VideoDataset::train_sample(std::int64_t i) const {
  SNAPPIX_CHECK(i >= 0 && i < train_size(), "train index " << i << " out of range");
  return train_[static_cast<std::size_t>(i)];
}

const VideoSample& VideoDataset::test_sample(std::int64_t i) const {
  SNAPPIX_CHECK(i >= 0 && i < test_size(), "test index " << i << " out of range");
  return test_[static_cast<std::size_t>(i)];
}

Tensor VideoDataset::stack(const std::vector<VideoSample>& pool,
                           const std::vector<std::int64_t>& indices,
                           std::vector<std::int64_t>& labels_out) {
  SNAPPIX_CHECK(!indices.empty(), "empty batch");
  const Shape& clip_shape = pool.front().video.shape();
  const std::int64_t clip_numel = clip_shape.numel();
  std::vector<float> out(static_cast<std::size_t>(clip_numel) * indices.size());
  labels_out.clear();
  labels_out.reserve(indices.size());
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const std::int64_t i = indices[b];
    SNAPPIX_CHECK(i >= 0 && i < static_cast<std::int64_t>(pool.size()),
                  "batch index " << i << " out of range");
    const auto& sample = pool[static_cast<std::size_t>(i)];
    std::copy(sample.video.data().begin(), sample.video.data().end(),
              out.begin() + static_cast<std::ptrdiff_t>(b) * clip_numel);
    labels_out.push_back(sample.label);
  }
  return Tensor::from_vector(std::move(out),
                             Shape{static_cast<std::int64_t>(indices.size()), clip_shape[0],
                                   clip_shape[1], clip_shape[2]});
}

Tensor VideoDataset::train_batch(const std::vector<std::int64_t>& indices,
                                 std::vector<std::int64_t>& labels_out) const {
  return stack(train_, indices, labels_out);
}

Tensor VideoDataset::test_batch(const std::vector<std::int64_t>& indices,
                                std::vector<std::int64_t>& labels_out) const {
  return stack(test_, indices, labels_out);
}

std::vector<std::int64_t> VideoDataset::shuffled_train_indices(Rng& rng) const {
  std::vector<std::int64_t> indices(static_cast<std::size_t>(train_size()));
  std::iota(indices.begin(), indices.end(), 0);
  std::shuffle(indices.begin(), indices.end(), rng.engine());
  return indices;
}

DatasetConfig ucf101_like(int frames, int size) {
  DatasetConfig cfg;
  cfg.name = "ucf101-like";
  cfg.scene.frames = frames;
  cfg.scene.height = size;
  cfg.scene.width = size;
  cfg.scene.num_classes = 6;
  cfg.scene.background_texture = 0.25F;
  cfg.scene.pixel_noise = 0.0F;
  cfg.seed = 101;
  return cfg;
}

DatasetConfig ssv2_like(int frames, int size) {
  DatasetConfig cfg;
  cfg.name = "ssv2-like";
  cfg.scene.frames = frames;
  cfg.scene.height = size;
  cfg.scene.width = size;
  cfg.scene.num_classes = 10;
  cfg.scene.background_texture = 0.45F;
  cfg.scene.pixel_noise = 0.02F;
  cfg.seed = 202;
  return cfg;
}

DatasetConfig k400_like(int frames, int size) {
  DatasetConfig cfg;
  cfg.name = "k400-like";
  cfg.scene.frames = frames;
  cfg.scene.height = size;
  cfg.scene.width = size;
  cfg.scene.num_classes = 8;
  cfg.scene.background_texture = 0.35F;
  cfg.scene.pixel_noise = 0.01F;
  cfg.seed = 400;
  return cfg;
}

Tensor downsample_videos(const Tensor& videos, int factor) {
  SNAPPIX_CHECK(videos.ndim() == 4, "downsample_videos expects (B, T, H, W), got "
                                        << videos.shape().to_string());
  SNAPPIX_CHECK(factor >= 1, "downsample factor must be >= 1");
  const std::int64_t batch = videos.shape()[0];
  const std::int64_t frames = videos.shape()[1];
  const std::int64_t h = videos.shape()[2];
  const std::int64_t w = videos.shape()[3];
  SNAPPIX_CHECK(h % factor == 0 && w % factor == 0,
                "video " << h << "x" << w << " not divisible by factor " << factor);
  NoGradGuard guard;
  // Reuse avg_pool2d by folding (B, T) into the channel axis.
  const Tensor folded = Tensor::from_vector(videos.data(), Shape{batch * frames, 1, h, w});
  const Tensor pooled = avg_pool2d(folded, factor, factor);
  return Tensor::from_vector(pooled.data(), Shape{batch, frames, h / factor, w / factor});
}

}  // namespace snappix::data
