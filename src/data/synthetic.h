// Procedural synthetic video generator.
//
// Stand-in for the paper's action-recognition datasets (SSV2, K400, UCF-101):
// each clip is T grayscale linear-space frames whose *label is the motion
// class* of the foreground shapes. Classes are separable only through
// temporal structure, which is exactly the information axis coded exposure
// trades off — so relative CE-pattern quality transfers (see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix::data {

enum class MotionClass {
  kStatic = 0,
  kTranslateLeft,
  kTranslateRight,
  kTranslateUp,
  kTranslateDown,
  kRotateCw,
  kRotateCcw,
  kZoomIn,
  kZoomOut,
  kOscillate,
};
inline constexpr int kMotionClassCount = 10;

const char* motion_class_name(MotionClass motion);

struct SceneConfig {
  int frames = 16;
  int height = 32;
  int width = 32;
  // Number of motion classes drawn from the front of MotionClass.
  int num_classes = kMotionClassCount;
  // Amplitude of the background value-noise texture in [0, 1].
  float background_texture = 0.35F;
  // Per-pixel additive Gaussian noise applied to every frame.
  float pixel_noise = 0.0F;
  // Translation speed in pixels/frame; also scales rotation/zoom rates.
  float speed = 1.4F;
  int min_shapes = 1;
  int max_shapes = 3;
};

struct VideoSample {
  Tensor video;        // (T, H, W), values in [0, 1], linear space
  std::int64_t label;  // motion class id in [0, num_classes)
};

// Renders labelled clips; deterministic given the Rng stream.
class SyntheticVideoGenerator {
 public:
  explicit SyntheticVideoGenerator(const SceneConfig& config);

  // Renders one clip; `label` < 0 draws a uniform class.
  VideoSample sample(Rng& rng, int label = -1) const;

  const SceneConfig& config() const { return config_; }

 private:
  SceneConfig config_;
};

}  // namespace snappix::data
