#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/common.h"

namespace snappix::data {

namespace {

constexpr float kTwoPi = 6.28318530717958647692F;

const char* kMotionNames[kMotionClassCount] = {
    "static",       "translate_left", "translate_right", "translate_up", "translate_down",
    "rotate_cw",    "rotate_ccw",     "zoom_in",         "zoom_out",     "oscillate"};

// A soft-edged foreground primitive. `kind` 0 = disk, 1 = axis-aligned box.
struct ShapeSpec {
  int kind = 0;
  float cx = 0.0F;   // offset from image centre, pixels
  float cy = 0.0F;
  float size = 4.0F;       // radius / half-extent
  float aspect = 1.0F;     // box height/width ratio
  float intensity = 0.4F;  // signed contrast against the background
};

// Coarse-grid value noise with bilinear interpolation; used for backgrounds.
std::vector<float> make_background(int height, int width, float amplitude, Rng& rng) {
  constexpr int kGrid = 5;
  std::vector<float> grid(static_cast<std::size_t>(kGrid * kGrid));
  for (auto& g : grid) {
    g = rng.uniform(-1.0F, 1.0F);
  }
  std::vector<float> bg(static_cast<std::size_t>(height) * width);
  for (int y = 0; y < height; ++y) {
    const float gy = static_cast<float>(y) / static_cast<float>(height - 1) * (kGrid - 1);
    const int y0 = std::min(static_cast<int>(gy), kGrid - 2);
    const float fy = gy - static_cast<float>(y0);
    for (int x = 0; x < width; ++x) {
      const float gx = static_cast<float>(x) / static_cast<float>(width - 1) * (kGrid - 1);
      const int x0 = std::min(static_cast<int>(gx), kGrid - 2);
      const float fx = gx - static_cast<float>(x0);
      const float v00 = grid[static_cast<std::size_t>(y0 * kGrid + x0)];
      const float v01 = grid[static_cast<std::size_t>(y0 * kGrid + x0 + 1)];
      const float v10 = grid[static_cast<std::size_t>((y0 + 1) * kGrid + x0)];
      const float v11 = grid[static_cast<std::size_t>((y0 + 1) * kGrid + x0 + 1)];
      const float v = (1 - fy) * ((1 - fx) * v00 + fx * v01) + fy * ((1 - fx) * v10 + fx * v11);
      bg[static_cast<std::size_t>(y * width + x)] = 0.5F + 0.5F * amplitude * v;
    }
  }
  return bg;
}

// Soft coverage of a shape at pixel (px, py) given its transformed pose.
float shape_alpha(const ShapeSpec& shape, float px, float py, float scale, float angle,
                  float shift_x, float shift_y, float cx0, float cy0) {
  // Rotate the shape's centre offset around the image centre, then translate.
  const float cosr = std::cos(angle);
  const float sinr = std::sin(angle);
  const float rx = shape.cx * cosr - shape.cy * sinr;
  const float ry = shape.cx * sinr + shape.cy * cosr;
  const float cx = cx0 + rx * scale + shift_x;
  const float cy = cy0 + ry * scale + shift_y;
  const float dx = px - cx;
  const float dy = py - cy;
  const float size = shape.size * scale;
  float signed_dist = 0.0F;
  if (shape.kind == 0) {
    signed_dist = std::sqrt(dx * dx + dy * dy) - size;
  } else {
    // Rotate the query point into the box frame so boxes spin visibly.
    const float bx = dx * cosr + dy * sinr;
    const float by = -dx * sinr + dy * cosr;
    const float half_w = size;
    const float half_h = size * shape.aspect;
    signed_dist = std::max(std::fabs(bx) - half_w, std::fabs(by) - half_h);
  }
  // 1-pixel soft edge.
  return std::clamp(0.5F - signed_dist, 0.0F, 1.0F);
}

}  // namespace

const char* motion_class_name(MotionClass motion) {
  const int idx = static_cast<int>(motion);
  SNAPPIX_CHECK(idx >= 0 && idx < kMotionClassCount, "invalid motion class " << idx);
  return kMotionNames[idx];
}

SyntheticVideoGenerator::SyntheticVideoGenerator(const SceneConfig& config) : config_(config) {
  SNAPPIX_CHECK(config.frames > 0 && config.height > 0 && config.width > 0,
                "SceneConfig: non-positive dimensions");
  SNAPPIX_CHECK(config.num_classes >= 2 && config.num_classes <= kMotionClassCount,
                "SceneConfig: num_classes " << config.num_classes << " out of [2, "
                                            << kMotionClassCount << "]");
  SNAPPIX_CHECK(config.min_shapes >= 1 && config.max_shapes >= config.min_shapes,
                "SceneConfig: bad shape-count range");
}

VideoSample SyntheticVideoGenerator::sample(Rng& rng, int label) const {
  const auto& cfg = config_;
  if (label < 0) {
    label = static_cast<int>(rng.uniform_int(0, cfg.num_classes - 1));
  }
  SNAPPIX_CHECK(label < cfg.num_classes, "label " << label << " out of range");
  const auto motion = static_cast<MotionClass>(label);

  const auto bg = make_background(cfg.height, cfg.width, cfg.background_texture, rng);
  const int shape_count =
      static_cast<int>(rng.uniform_int(cfg.min_shapes, cfg.max_shapes));
  std::vector<ShapeSpec> shapes(static_cast<std::size_t>(shape_count));
  const float extent = 0.30F * static_cast<float>(std::min(cfg.height, cfg.width));
  for (auto& s : shapes) {
    s.kind = rng.bernoulli(0.5F) ? 0 : 1;
    s.cx = rng.uniform(-extent, extent);
    s.cy = rng.uniform(-extent, extent);
    s.size = rng.uniform(2.5F, 5.5F);
    s.aspect = rng.uniform(0.6F, 1.6F);
    s.intensity = rng.bernoulli(0.5F) ? rng.uniform(0.25F, 0.5F) : rng.uniform(-0.5F, -0.25F);
  }

  const float cx0 = static_cast<float>(cfg.width) * 0.5F;
  const float cy0 = static_cast<float>(cfg.height) * 0.5F;
  const float omega = 0.10F * cfg.speed;   // radians/frame for rotation classes
  const float zoom_rate = 0.035F * cfg.speed;
  const float osc_amp = 2.2F * cfg.speed;

  std::vector<float> out(static_cast<std::size_t>(cfg.frames) * cfg.height * cfg.width);
  for (int t = 0; t < cfg.frames; ++t) {
    const auto ft = static_cast<float>(t);
    float shift_x = 0.0F;
    float shift_y = 0.0F;
    float angle = 0.0F;
    float scale = 1.0F;
    switch (motion) {
      case MotionClass::kStatic:
        break;
      case MotionClass::kTranslateLeft:
        shift_x = -cfg.speed * ft;
        break;
      case MotionClass::kTranslateRight:
        shift_x = cfg.speed * ft;
        break;
      case MotionClass::kTranslateUp:
        shift_y = -cfg.speed * ft;
        break;
      case MotionClass::kTranslateDown:
        shift_y = cfg.speed * ft;
        break;
      case MotionClass::kRotateCw:
        angle = omega * ft;
        break;
      case MotionClass::kRotateCcw:
        angle = -omega * ft;
        break;
      case MotionClass::kZoomIn:
        scale = 1.0F + zoom_rate * ft;
        break;
      case MotionClass::kZoomOut:
        scale = 1.0F / (1.0F + zoom_rate * ft);
        break;
      case MotionClass::kOscillate:
        shift_x = osc_amp * std::sin(kTwoPi * ft / static_cast<float>(cfg.frames) * 2.0F);
        break;
    }
    float* frame = out.data() + static_cast<std::ptrdiff_t>(t) * cfg.height * cfg.width;
    for (int y = 0; y < cfg.height; ++y) {
      for (int x = 0; x < cfg.width; ++x) {
        float v = bg[static_cast<std::size_t>(y * cfg.width + x)];
        for (const auto& s : shapes) {
          const float alpha = shape_alpha(s, static_cast<float>(x), static_cast<float>(y), scale,
                                          angle, shift_x, shift_y, cx0, cy0);
          v += alpha * s.intensity;
        }
        if (cfg.pixel_noise > 0.0F) {
          v += rng.normal(0.0F, cfg.pixel_noise);
        }
        frame[y * cfg.width + x] = std::clamp(v, 0.0F, 1.0F);
      }
    }
  }
  return VideoSample{
      Tensor::from_vector(std::move(out), Shape{cfg.frames, cfg.height, cfg.width}),
      static_cast<std::int64_t>(label)};
}

}  // namespace snappix::data
