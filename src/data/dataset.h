// In-memory labelled video datasets with train/test splits and batching.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix::data {

struct DatasetConfig {
  SceneConfig scene;
  int train_per_class = 32;
  int test_per_class = 8;
  std::uint64_t seed = 1234;
  std::string name = "synthetic";
};

// Materialized dataset of synthetic clips, balanced across classes.
class VideoDataset {
 public:
  explicit VideoDataset(const DatasetConfig& config);

  const std::string& name() const { return config_.name; }
  int num_classes() const { return config_.scene.num_classes; }
  const SceneConfig& scene() const { return config_.scene; }

  std::int64_t train_size() const { return static_cast<std::int64_t>(train_.size()); }
  std::int64_t test_size() const { return static_cast<std::int64_t>(test_.size()); }
  const VideoSample& train_sample(std::int64_t i) const;
  const VideoSample& test_sample(std::int64_t i) const;

  // Stacks the given train samples into (B, T, H, W) plus labels.
  Tensor train_batch(const std::vector<std::int64_t>& indices,
                     std::vector<std::int64_t>& labels_out) const;
  Tensor test_batch(const std::vector<std::int64_t>& indices,
                    std::vector<std::int64_t>& labels_out) const;

  // A shuffled epoch's worth of train indices.
  std::vector<std::int64_t> shuffled_train_indices(Rng& rng) const;

 private:
  static Tensor stack(const std::vector<VideoSample>& pool,
                      const std::vector<std::int64_t>& indices,
                      std::vector<std::int64_t>& labels_out);

  DatasetConfig config_;
  std::vector<VideoSample> train_;
  std::vector<VideoSample> test_;
};

// Dataset presets standing in for the paper's three benchmarks. They differ
// in class count and nuisance factors so the systems rank the same way the
// paper's Table I ranks them across UCF-101 / SSV2 / K400.
DatasetConfig ucf101_like(int frames = 16, int size = 32);   // easiest: 6 classes, clean
DatasetConfig ssv2_like(int frames = 16, int size = 32);     // hardest: 10 classes, noisy
DatasetConfig k400_like(int frames = 16, int size = 32);     // medium: 8 classes

// 4x4 (or `factor`^2) average-filter spatial downsampling of a video batch
// (B, T, H, W) -> (B, T, H/factor, W/factor); the paper's simple compression
// baseline in Sec. VI-D. Tape-free.
Tensor downsample_videos(const Tensor& videos, int factor);

}  // namespace snappix::data
