// Area models for the CE pixel augmentations (paper Sec. V).
//
// The per-pixel digital logic (DFF + M6/M7 control) synthesizes to 30 um^2 in
// TSMC 65 nm; DeepScale-style technology scaling maps it to 3.2 um^2 at
// 22 nm, far below commercial stacked DPS pixels, so the top-layer APS sets
// the pixel pitch. The alternative broadcast design needs 2N wires per pixel
// for a tile of N x N, whose routing area overtakes the APS as N grows; the
// shift-register design needs a constant 4 wires.
#pragma once

#include <vector>

namespace snappix::hw {

// DeepScale-style area scaling between technology nodes. Factors are
// calibrated so 65 nm -> 22 nm reproduces the paper's 30 -> 3.2 um^2.
double scale_area_um2(double area_um2, int from_nm, int to_nm);

// Nodes known to the scaling table, descending feature size.
std::vector<int> known_nodes();

struct PixelAreaParams {
  double logic_area_um2_at_65nm = 30.0;  // synthesized DFF + control
  double aps_pitch_um = 3.0;             // state-of-the-art APS pixel pitch
  double wire_pitch_um = 0.14;           // metal pitch for pattern wires
};

class PixelAreaModel {
 public:
  explicit PixelAreaModel(const PixelAreaParams& params = PixelAreaParams{});

  // Bottom-layer logic area at the given node (um^2).
  double logic_area_um2(int node_nm) const;

  // Broadcast alternative: 2N parallel wires per pixel -> side length (um)
  // of the wiring footprint for a tile of N x N.
  double broadcast_wire_side_um(int tile_n) const;

  // Our shift-register design: constant 4 wires regardless of tile size.
  double shift_register_wire_side_um() const;

  // Smallest tile size at which broadcast wiring exceeds the APS pitch.
  int broadcast_crossover_tile() const;

  // True when the bottom-layer logic fits beneath the APS at `node_nm`
  // (i.e. the pixel area is constrained by the APS, not by our logic).
  bool logic_hidden_under_aps(int node_nm) const;

  const PixelAreaParams& params() const { return params_; }

 private:
  PixelAreaParams params_;
};

}  // namespace snappix::hw
