#include "hw/area.h"

#include <cmath>

#include "util/common.h"

namespace snappix::hw {

namespace {

// Area scale factor relative to 65 nm, per node. The 22 nm entry reproduces
// the paper's DeepScale result exactly: 30 um^2 -> 3.2 um^2 (9.375x).
struct NodeFactor {
  int nm;
  double area_vs_65nm;
};

constexpr NodeFactor kNodeTable[] = {
    {65, 1.0},    {45, 1.0 / 2.02}, {32, 1.0 / 3.97},
    {28, 1.0 / 5.23}, {22, 1.0 / 9.375}, {16, 1.0 / 15.9},
};

double node_factor(int nm) {
  for (const auto& entry : kNodeTable) {
    if (entry.nm == nm) {
      return entry.area_vs_65nm;
    }
  }
  SNAPPIX_CHECK(false, "unknown technology node " << nm
                                                  << " nm; known: 65/45/32/28/22/16");
}

}  // namespace

std::vector<int> known_nodes() {
  std::vector<int> nodes;
  for (const auto& entry : kNodeTable) {
    nodes.push_back(entry.nm);
  }
  return nodes;
}

double scale_area_um2(double area_um2, int from_nm, int to_nm) {
  SNAPPIX_CHECK(area_um2 >= 0.0, "area must be non-negative");
  return area_um2 * node_factor(to_nm) / node_factor(from_nm);
}

PixelAreaModel::PixelAreaModel(const PixelAreaParams& params) : params_(params) {
  SNAPPIX_CHECK(params.logic_area_um2_at_65nm > 0.0 && params.aps_pitch_um > 0.0 &&
                    params.wire_pitch_um > 0.0,
                "PixelAreaParams must be positive");
}

double PixelAreaModel::logic_area_um2(int node_nm) const {
  return scale_area_um2(params_.logic_area_um2_at_65nm, 65, node_nm);
}

double PixelAreaModel::broadcast_wire_side_um(int tile_n) const {
  SNAPPIX_CHECK(tile_n >= 1, "tile size must be positive");
  return 2.0 * static_cast<double>(tile_n) * params_.wire_pitch_um;
}

double PixelAreaModel::shift_register_wire_side_um() const {
  return 4.0 * params_.wire_pitch_um;
}

int PixelAreaModel::broadcast_crossover_tile() const {
  // Smallest N with 2N * pitch > APS pitch.
  return static_cast<int>(
             std::floor(params_.aps_pitch_um / (2.0 * params_.wire_pitch_um))) +
         1;
}

bool PixelAreaModel::logic_hidden_under_aps(int node_nm) const {
  const double aps_area = params_.aps_pitch_um * params_.aps_pitch_um;
  return logic_area_um2(node_nm) <= aps_area;
}

}  // namespace snappix::hw
