#include "transport/fault.h"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace snappix::transport {

void validate(const FaultConfig& config) {
  const auto check_rate = [](const char* name, double rate) {
    // The negated >=/<= form rejects NaN too: `NaN < 0.0 || NaN > 1.0` is
    // false, so the naive check waves a NaN rate straight into bernoulli().
    if (!(rate >= 0.0 && rate <= 1.0)) {
      std::ostringstream os;
      os << "FaultConfig." << name << " must be a probability in [0, 1], got " << rate;
      throw std::invalid_argument(os.str());
    }
  };
  check_rate("bit_flip_per_byte", config.bit_flip_per_byte);
  check_rate("packet_drop_rate", config.packet_drop_rate);
  check_rate("lane_stall_rate", config.lane_stall_rate);
}

namespace {

const FaultConfig& validated(const FaultConfig& config) {
  validate(config);
  return config;
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(validated(config)), rng_(config.seed) {}

void FaultInjector::set_rates(const FaultConfig& config) {
  validate(config);
  config_.bit_flip_per_byte = config.bit_flip_per_byte;
  config_.packet_drop_rate = config.packet_drop_rate;
  config_.lane_stall_rate = config.lane_stall_rate;
  // config_.seed stays: the Rng stream continues where it was.
}

bool FaultInjector::apply(WireFrame& wire) {
  ++stats_.frames;
  if (!config_.any()) {
    return false;
  }
  bool faulted = false;
  std::vector<Packet> survivors;
  survivors.reserve(wire.packets.size());
  for (Packet& packet : wire.packets) {
    if (config_.packet_drop_rate > 0.0 &&
        rng_.bernoulli(static_cast<float>(config_.packet_drop_rate))) {
      ++stats_.packets_dropped;
      faulted = true;
      continue;  // lost whole: the receiver never sees a byte of it
    }
    if (config_.lane_stall_rate > 0.0 &&
        rng_.bernoulli(static_cast<float>(config_.lane_stall_rate))) {
      // The lane died mid-packet: keep a strict prefix (at least one byte so
      // the cut is observable, never the full packet).
      const std::int64_t keep =
          rng_.uniform_int(1, static_cast<std::int64_t>(packet.size()) - 1);
      packet.resize(static_cast<std::size_t>(keep));
      ++stats_.lane_stalls;
      faulted = true;
    }
    if (config_.bit_flip_per_byte > 0.0) {
      for (std::uint8_t& byte : packet) {
        if (rng_.bernoulli(static_cast<float>(config_.bit_flip_per_byte))) {
          byte = static_cast<std::uint8_t>(byte ^ (1U << rng_.uniform_int(0, 7)));
          ++stats_.bits_flipped;
          faulted = true;
        }
      }
    }
    survivors.push_back(std::move(packet));
  }
  wire.packets = std::move(survivors);
  if (faulted) {
    ++stats_.frames_faulted;
  }
  return faulted;
}

}  // namespace snappix::transport
