#include "transport/link.h"

#include <utility>

namespace snappix::transport {

FramedLink::FramedLink(const LinkConfig& config)
    : config_(config), packetizer_(config.virtual_channel), mipi_(config.mipi),
      injector_(config.faults) {}

TransferResult FramedLink::transfer(const Tensor& coded, std::uint16_t frame_number) {
  WireFrame wire = packetizer_.packetize(coded, frame_number);

  // Account the transmit side first: every framed byte goes on the wire and
  // costs its lane time whether or not it survives the trip.
  TransferResult result;
  for (const Packet& packet : wire.packets) {
    const std::uint64_t payload =
        packet.size() > static_cast<std::size_t>(kHeaderBytes + kCrcBytes)
            ? packet.size() - kHeaderBytes - kCrcBytes
            : 0;
    result.wire_bytes += mipi_.send_packet(packet.size(), payload);
  }

  injector_.apply(wire);

  RxFrame rx = depacketizer_.depacketize(wire, coded.shape()[0], coded.shape()[1]);
  result.outcome = rx.outcome;
  result.coded = std::move(rx.coded);
  result.crc_errors = rx.crc_errors;
  result.corrected_headers = rx.corrected_headers;
  result.lost_packets = rx.lost_packets;

  ++counters_.frames;
  switch (rx.outcome) {
    case RxOutcome::kOk:
      ++counters_.ok_frames;
      break;
    case RxOutcome::kCrcError:
      ++counters_.crc_error_frames;
      break;
    case RxOutcome::kTruncated:
      ++counters_.truncated_frames;
      break;
    default:
      ++counters_.missing_line_frames;
      break;
  }
  return result;
}

}  // namespace snappix::transport
