#include "transport/link.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "codec/bitplane.h"

namespace snappix::transport {

namespace {

void check_codec_planes(int planes) {
  if (planes < 0 || planes > codec::kMaxBitplanes) {
    throw std::invalid_argument("codec_planes " + std::to_string(planes) +
                                " out of [0, " + std::to_string(codec::kMaxBitplanes) +
                                "]");
  }
}

}  // namespace

void validate(const LinkConfig& config) {
  validate(config.faults);
  if (config.mipi.lanes < 1 || config.mipi.lanes > 8) {
    throw std::invalid_argument("LinkConfig.mipi.lanes must be in [1, 8], got " +
                                std::to_string(config.mipi.lanes));
  }
  // The negated form rejects NaN clocks too (NaN > 0.0 is false either way,
  // but spelling it this way matches the fault-rate checks).
  if (!(config.mipi.byte_clock_hz > 0.0) ||
      config.mipi.byte_clock_hz > 1e18) {
    throw std::invalid_argument("LinkConfig.mipi.byte_clock_hz must be positive and finite");
  }
  if (config.virtual_channel < 0 || config.virtual_channel > 3) {
    throw std::invalid_argument("LinkConfig.virtual_channel must be in [0, 3], got " +
                                std::to_string(config.virtual_channel));
  }
  check_codec_planes(config.codec_planes);
}

namespace {

// Member-init-list validation gate: config_ is the first member, so a bad
// config throws std::invalid_argument before MipiCsi2Link's internal checks
// can fire with a different exception type.
const LinkConfig& validated(const LinkConfig& config) {
  validate(config);
  return config;
}

}  // namespace

FramedLink::FramedLink(const LinkConfig& config)
    : config_(validated(config)), packetizer_(config.virtual_channel), mipi_(config.mipi),
      injector_(config.faults) {}

void FramedLink::set_codec_planes(int planes) {
  check_codec_planes(planes);
  config_.codec_planes = planes;
}

void FramedLink::set_faults(const FaultConfig& faults) {
  injector_.set_rates(faults);
  config_.faults.bit_flip_per_byte = faults.bit_flip_per_byte;
  config_.faults.packet_drop_rate = faults.packet_drop_rate;
  config_.faults.lane_stall_rate = faults.lane_stall_rate;
}

TransferResult FramedLink::transfer(const Tensor& coded, std::uint16_t frame_number) {
  WireFrame wire = config_.codec
                       ? packetizer_.packetize_codec(coded, frame_number,
                                                     config_.codec_planes)
                       : packetizer_.packetize(coded, frame_number);

  // Account the transmit side first: every framed byte goes on the wire and
  // costs its lane time whether or not it survives the trip. This runs once
  // per ATTEMPT — a retransmit of the same frame pays the wire again.
  TransferResult result;
  for (const Packet& packet : wire.packets) {
    const std::uint64_t payload =
        packet.size() > static_cast<std::size_t>(kHeaderBytes + kCrcBytes)
            ? packet.size() - kHeaderBytes - kCrcBytes
            : 0;
    result.wire_bytes += mipi_.send_packet(packet.size(), payload);
  }

  injector_.apply(wire);

  RxFrame rx;
  if (config_.codec) {
    RxCodecFrame codec_rx = depacketizer_.depacketize_codec(
        wire, coded.shape()[0], coded.shape()[1], config_.codec_planes);
    result.decoded_planes = codec_rx.decoded_planes;
    result.total_planes = codec_rx.total_planes;
    rx.outcome = codec_rx.outcome;
    rx.coded = std::move(codec_rx.coded);
    rx.crc_errors = codec_rx.crc_errors;
    rx.corrected_headers = codec_rx.corrected_headers;
    rx.lost_packets = codec_rx.lost_packets;
  } else {
    rx = depacketizer_.depacketize(wire, coded.shape()[0], coded.shape()[1]);
  }
  result.outcome = rx.outcome;
  result.coded = std::move(rx.coded);
  result.crc_errors = rx.crc_errors;
  result.corrected_headers = rx.corrected_headers;
  result.lost_packets = rx.lost_packets;

  ++counters_.frames;
  switch (rx.outcome) {
    case RxOutcome::kOk:
      ++counters_.ok_frames;
      break;
    case RxOutcome::kCrcError:
      ++counters_.crc_error_frames;
      break;
    case RxOutcome::kTruncated:
      ++counters_.truncated_frames;
      break;
    default:
      ++counters_.missing_line_frames;
      break;
  }
  return result;
}

}  // namespace snappix::transport
