#include "transport/link.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "codec/bitplane.h"

namespace snappix::transport {

namespace {

void check_codec_planes(int planes) {
  if (planes < 0 || planes > codec::kMaxBitplanes) {
    throw std::invalid_argument("codec_planes " + std::to_string(planes) +
                                " out of [0, " + std::to_string(codec::kMaxBitplanes) +
                                "]");
  }
}

}  // namespace

FramedLink::FramedLink(const LinkConfig& config)
    : config_(config), packetizer_(config.virtual_channel), mipi_(config.mipi),
      injector_(config.faults) {
  check_codec_planes(config.codec_planes);
}

void FramedLink::set_codec_planes(int planes) {
  check_codec_planes(planes);
  config_.codec_planes = planes;
}

TransferResult FramedLink::transfer(const Tensor& coded, std::uint16_t frame_number) {
  WireFrame wire = config_.codec
                       ? packetizer_.packetize_codec(coded, frame_number,
                                                     config_.codec_planes)
                       : packetizer_.packetize(coded, frame_number);

  // Account the transmit side first: every framed byte goes on the wire and
  // costs its lane time whether or not it survives the trip. This runs once
  // per ATTEMPT — a retransmit of the same frame pays the wire again.
  TransferResult result;
  for (const Packet& packet : wire.packets) {
    const std::uint64_t payload =
        packet.size() > static_cast<std::size_t>(kHeaderBytes + kCrcBytes)
            ? packet.size() - kHeaderBytes - kCrcBytes
            : 0;
    result.wire_bytes += mipi_.send_packet(packet.size(), payload);
  }

  injector_.apply(wire);

  RxFrame rx;
  if (config_.codec) {
    RxCodecFrame codec_rx = depacketizer_.depacketize_codec(
        wire, coded.shape()[0], coded.shape()[1], config_.codec_planes);
    result.decoded_planes = codec_rx.decoded_planes;
    result.total_planes = codec_rx.total_planes;
    rx.outcome = codec_rx.outcome;
    rx.coded = std::move(codec_rx.coded);
    rx.crc_errors = codec_rx.crc_errors;
    rx.corrected_headers = codec_rx.corrected_headers;
    rx.lost_packets = codec_rx.lost_packets;
  } else {
    rx = depacketizer_.depacketize(wire, coded.shape()[0], coded.shape()[1]);
  }
  result.outcome = rx.outcome;
  result.coded = std::move(rx.coded);
  result.crc_errors = rx.crc_errors;
  result.corrected_headers = rx.corrected_headers;
  result.lost_packets = rx.lost_packets;

  ++counters_.frames;
  switch (rx.outcome) {
    case RxOutcome::kOk:
      ++counters_.ok_frames;
      break;
    case RxOutcome::kCrcError:
      ++counters_.crc_error_frames;
      break;
    case RxOutcome::kTruncated:
      ++counters_.truncated_frames;
      break;
    default:
      ++counters_.missing_line_frames;
      break;
  }
  return result;
}

}  // namespace snappix::transport
