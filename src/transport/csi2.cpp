#include "transport/csi2.h"

#include <cstring>

#include "util/common.h"

namespace snappix::transport {

std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t size) {
  // The accumulator is deliberately uint32: a uint16 operand would promote
  // to *signed* int under the shifts below, making the bit math depend on
  // implicit promotion (and UB on any platform where int is 16 bits).
  // Unsigned 32-bit shifts of a value masked to 16 bits are always defined;
  // the 0xFFFFU mask keeps each round's result exactly the CRC-16 state.
  // Pinned by CrcMatchesSpecCheckValue (0x29B1 over "123456789") and the
  // all-0xFF edge-case regression in tests/test_transport.cpp.
  std::uint32_t crc = 0xFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= static_cast<std::uint32_t>(data[i]) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000U) != 0 ? ((crc << 1) ^ 0x1021U) : (crc << 1);
      crc &= 0xFFFFU;
    }
  }
  return static_cast<std::uint16_t>(crc);
}

// --- header ECC --------------------------------------------------------------
//
// SEC-DED Hamming code over the 24 header bits. Codeword positions 1..29:
// positions 1, 2, 4, 8, 16 hold the five Hamming parity bits, the remaining
// 24 positions hold data bits d0..d23 in increasing position order. A sixth,
// overall parity bit covers the whole codeword, turning single-error
// correction into single-correct/double-detect.

namespace {

constexpr int kCodewordBits = 29;  // 24 data + 5 Hamming parity positions

inline bool is_parity_position(int pos) { return (pos & (pos - 1)) == 0; }

// Spreads the 24 data bits over the non-parity codeword positions.
// codeword[pos] for pos in 1..29; index 0 unused.
void fill_data_positions(std::uint32_t data24, bool (&codeword)[kCodewordBits + 1]) {
  int bit = 0;
  for (int pos = 1; pos <= kCodewordBits; ++pos) {
    if (is_parity_position(pos)) {
      codeword[pos] = false;
    } else {
      codeword[pos] = ((data24 >> bit) & 1U) != 0;
      ++bit;
    }
  }
}

// Hamming parity for the position-group `mask` (1, 2, 4, 8 or 16): XOR of
// every codeword bit whose position has that bit set.
bool group_parity(const bool (&codeword)[kCodewordBits + 1], int mask) {
  bool parity = false;
  for (int pos = 1; pos <= kCodewordBits; ++pos) {
    if ((pos & mask) != 0) {
      parity ^= codeword[pos];
    }
  }
  return parity;
}

// Packs the data positions of a codeword back into 24 bits.
//
// The load and the shift are deliberately separate statements: gcc 12.2
// miscompiles the one-liner `data |= (codeword[pos] ? 1U : 0U) << bit` under
// -fsanitize=bounds,shift (both in -fsanitize=undefined) — the instrumented
// bounds check evaluates a clobbered index and the function returns garbage.
// This shape compiles correctly under every preset; pinned by
// HeaderEcc.CorrectsEverySingleBitFlip running in the asan CI job.
std::uint32_t collect_data_positions(const bool (&codeword)[kCodewordBits + 1]) {
  std::uint32_t data = 0;
  int bit = 0;
  for (int pos = 1; pos <= kCodewordBits; ++pos) {
    if (!is_parity_position(pos)) {
      const bool set = codeword[pos];
      if (set) {
        data |= std::uint32_t{1} << bit;
      }
      ++bit;
    }
  }
  return data;
}

}  // namespace

std::uint8_t ecc_encode(std::uint32_t header24) {
  SNAPPIX_CHECK((header24 >> 24) == 0, "header ECC covers 24 bits, got " << header24);
  bool codeword[kCodewordBits + 1];
  fill_data_positions(header24, codeword);
  std::uint8_t ecc = 0;
  bool overall = false;
  int ecc_bit = 0;
  for (int mask = 1; mask <= 16; mask <<= 1, ++ecc_bit) {
    const bool p = group_parity(codeword, mask);
    codeword[mask] = p;
    ecc |= static_cast<std::uint8_t>((p ? 1U : 0U) << ecc_bit);
  }
  for (int pos = 1; pos <= kCodewordBits; ++pos) {
    overall ^= codeword[pos];
  }
  ecc |= static_cast<std::uint8_t>((overall ? 1U : 0U) << 5);
  return ecc;
}

EccDecode ecc_decode(std::uint32_t header24, std::uint8_t ecc) {
  EccDecode out;
  if ((header24 >> 24) != 0 || (ecc >> 6) != 0) {
    return out;  // reserved bits set: not a parseable header
  }
  bool codeword[kCodewordBits + 1];
  fill_data_positions(header24, codeword);
  int ecc_bit = 0;
  for (int mask = 1; mask <= 16; mask <<= 1, ++ecc_bit) {
    codeword[mask] = ((ecc >> ecc_bit) & 1U) != 0;
  }
  const bool overall_rx = ((ecc >> 5) & 1U) != 0;

  // Syndrome: which parity groups disagree. Nonzero => its value is the
  // (claimed) position of a single-bit error.
  int syndrome = 0;
  for (int mask = 1; mask <= 16; mask <<= 1) {
    if (group_parity(codeword, mask)) {
      syndrome |= mask;
    }
  }
  bool overall_calc = false;
  for (int pos = 1; pos <= kCodewordBits; ++pos) {
    overall_calc ^= codeword[pos];
  }
  const bool overall_ok = overall_calc == overall_rx;

  if (syndrome == 0 && overall_ok) {
    out.status = EccDecode::Status::kClean;
    out.header24 = header24;
    return out;
  }
  if (syndrome == 0) {
    // Only the overall parity bit itself flipped; the data is intact.
    out.status = EccDecode::Status::kCorrected;
    out.header24 = header24;
    return out;
  }
  if (!overall_ok && syndrome <= kCodewordBits) {
    // Single-bit error at position `syndrome`: flip it back.
    codeword[syndrome] = !codeword[syndrome];
    out.status = EccDecode::Status::kCorrected;
    out.header24 = collect_data_positions(codeword);
    return out;
  }
  // syndrome != 0 with overall parity consistent (or an impossible position):
  // at least two bits flipped — uncorrectable.
  return out;
}

// --- WireFrame ---------------------------------------------------------------

std::uint64_t WireFrame::total_bytes() const {
  std::uint64_t total = 0;
  for (const Packet& packet : packets) {
    total += packet.size();
  }
  return total;
}

std::uint64_t WireFrame::payload_bytes() const {
  std::uint64_t payload = 0;
  for (const Packet& packet : packets) {
    if (packet.size() > static_cast<std::size_t>(kHeaderBytes + kCrcBytes)) {
      payload += packet.size() - kHeaderBytes - kCrcBytes;
    }
  }
  return payload;
}

// --- CodedFramePacketizer ----------------------------------------------------

CodedFramePacketizer::CodedFramePacketizer(int virtual_channel)
    : virtual_channel_(virtual_channel) {
  SNAPPIX_CHECK(virtual_channel >= 0 && virtual_channel <= 3,
                "CSI-2 virtual channel " << virtual_channel << " out of [0, 3]");
}

Packet CodedFramePacketizer::short_packet(std::uint8_t data_id, std::uint16_t value) {
  const std::uint32_t header24 = static_cast<std::uint32_t>(data_id) |
                                 (static_cast<std::uint32_t>(value) << 8);
  return Packet{data_id, static_cast<std::uint8_t>(value & 0xFF),
                static_cast<std::uint8_t>(value >> 8), ecc_encode(header24)};
}

WireFrame CodedFramePacketizer::packetize_codec(const Tensor& coded,
                                                std::uint16_t frame_number,
                                                int max_planes) const {
  SNAPPIX_CHECK(coded.shape().ndim() == 2,
                "packetize_codec expects a (H, W) coded frame, got rank "
                    << coded.shape().ndim());
  SNAPPIX_CHECK(max_planes >= 0, "max_planes " << max_planes << " negative");
  const codec::QuantizedFrame quantized = codec::quantize_frame(coded);
  const codec::PlaneStream stream = codec::encode_bitplanes(quantized, max_planes);
  const std::uint8_t vc_bits = static_cast<std::uint8_t>(virtual_channel_ << 6);

  WireFrame wire;
  wire.packets.reserve(stream.planes.size() + 3);
  wire.packets.push_back(
      short_packet(static_cast<std::uint8_t>(vc_bits | kDtFrameStart), frame_number));
  const auto header = codec::serialize_stream_header(stream);
  wire.packets.push_back(long_packet(static_cast<std::uint8_t>(vc_bits | kDtCodecHeader),
                                     header.data(),
                                     static_cast<std::uint16_t>(header.size())));
  std::vector<std::uint8_t> payload;
  for (std::size_t j = 0; j < stream.planes.size(); ++j) {
    const std::vector<std::uint8_t>& chunk = stream.planes[j];
    SNAPPIX_CHECK(chunk.size() + 1 <= 0xFFFF,
                  "plane chunk of " << chunk.size() << " bytes overflows the word count");
    payload.clear();
    payload.push_back(static_cast<std::uint8_t>(j));
    payload.insert(payload.end(), chunk.begin(), chunk.end());
    wire.packets.push_back(long_packet(static_cast<std::uint8_t>(vc_bits | kDtCodecPlane),
                                       payload.data(),
                                       static_cast<std::uint16_t>(payload.size())));
  }
  wire.packets.push_back(
      short_packet(static_cast<std::uint8_t>(vc_bits | kDtFrameEnd), frame_number));
  return wire;
}

Packet CodedFramePacketizer::long_packet(std::uint8_t data_id, const std::uint8_t* payload,
                                         std::uint16_t word_count) {
  Packet packet = short_packet(data_id, word_count);  // same 4-byte header layout
  packet.insert(packet.end(), payload, payload + word_count);
  const std::uint16_t crc = crc16_ccitt(payload, word_count);
  packet.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  packet.push_back(static_cast<std::uint8_t>(crc >> 8));
  return packet;
}

WireFrame CodedFramePacketizer::packetize(const Tensor& coded,
                                          std::uint16_t frame_number) const {
  SNAPPIX_CHECK(coded.shape().ndim() == 2,
                "packetize expects a (H, W) coded frame, got rank " << coded.shape().ndim());
  const std::int64_t height = coded.shape()[0];
  const std::int64_t width = coded.shape()[1];
  SNAPPIX_CHECK(height >= 1 && width >= 1, "empty coded frame");
  SNAPPIX_CHECK(width * 4 <= 0xFFFF,
                "row of " << width << " float32 pixels overflows the 16-bit word count");
  const std::uint8_t vc_bits = static_cast<std::uint8_t>(virtual_channel_ << 6);

  WireFrame wire;
  wire.packets.reserve(static_cast<std::size_t>(height) + 2);
  wire.packets.push_back(
      short_packet(static_cast<std::uint8_t>(vc_bits | kDtFrameStart), frame_number));
  const std::uint16_t wc = static_cast<std::uint16_t>(width * 4);
  for (std::int64_t r = 0; r < height; ++r) {
    wire.packets.push_back(long_packet(
        static_cast<std::uint8_t>(vc_bits | kDtRaw32),
        reinterpret_cast<const std::uint8_t*>(coded.data().data() + r * width), wc));
  }
  wire.packets.push_back(
      short_packet(static_cast<std::uint8_t>(vc_bits | kDtFrameEnd), frame_number));
  return wire;
}

// --- Depacketizer ------------------------------------------------------------

const char* to_string(RxOutcome outcome) {
  switch (outcome) {
    case RxOutcome::kOk:
      return "ok";
    case RxOutcome::kCrcError:
      return "crc_error";
    case RxOutcome::kTruncated:
      return "truncated";
    default:
      return "missing_lines";
  }
}

RxFrame Depacketizer::depacketize(const WireFrame& wire, std::int64_t height,
                                  std::int64_t width) const {
  SNAPPIX_CHECK(height >= 1 && width >= 1,
                "depacketize needs positive geometry, got " << height << "x" << width);
  RxFrame rx;
  std::vector<float> pixels(static_cast<std::size_t>(height * width), 0.0F);
  bool saw_fs = false;
  bool saw_fe = false;
  bool truncated = false;
  std::int64_t row = 0;
  const std::uint16_t expected_wc = static_cast<std::uint16_t>(width * 4);

  for (const Packet& packet : wire.packets) {
    if (packet.size() < static_cast<std::size_t>(kHeaderBytes)) {
      truncated = true;  // the stream died mid-header
      break;
    }
    const std::uint32_t header24 = static_cast<std::uint32_t>(packet[0]) |
                                   (static_cast<std::uint32_t>(packet[1]) << 8) |
                                   (static_cast<std::uint32_t>(packet[2]) << 16);
    // Full ECC byte on purpose: a flip in its two reserved (always-zero) bits
    // is outside the Hamming code's reach, and ecc_decode classifies such a
    // header as uncorrectable rather than silently passing corruption.
    const EccDecode dec = ecc_decode(header24, packet[3]);
    if (dec.status == EccDecode::Status::kUncorrectable) {
      ++rx.lost_packets;  // unparseable noise: whatever it carried is gone
      continue;
    }
    if (dec.status == EccDecode::Status::kCorrected) {
      ++rx.corrected_headers;
    }
    const std::uint8_t data_type = static_cast<std::uint8_t>(dec.header24 & 0x3F);
    const std::uint16_t wc = static_cast<std::uint16_t>((dec.header24 >> 8) & 0xFFFF);
    if (data_type < 0x10) {  // short packet: wc field carries the value
      if (data_type == kDtFrameStart) {
        saw_fs = true;
        rx.frame_number = wc;
      } else if (data_type == kDtFrameEnd) {
        saw_fe = true;
      }
      continue;
    }
    // Long packet: header promises wc payload bytes + CRC.
    if (packet.size() < static_cast<std::size_t>(kHeaderBytes) + wc + kCrcBytes) {
      truncated = true;  // a stalled lane cut the packet short
      break;
    }
    const std::uint8_t* payload = packet.data() + kHeaderBytes;
    const std::uint16_t crc_rx =
        static_cast<std::uint16_t>(packet[static_cast<std::size_t>(kHeaderBytes) + wc]) |
        static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(packet[static_cast<std::size_t>(kHeaderBytes) + wc + 1])
            << 8);
    if (crc16_ccitt(payload, wc) != crc_rx) {
      ++rx.crc_errors;
    }
    if (wc == expected_wc && row < height) {
      std::memcpy(pixels.data() + row * width, payload, wc);
      ++row;
      ++rx.lines_received;
    } else {
      ++rx.lost_packets;  // wrong geometry or surplus line: unusable
    }
  }

  rx.coded = Tensor::from_vector(std::move(pixels), Shape{height, width});
  if (truncated || !saw_fs || !saw_fe) {
    rx.outcome = RxOutcome::kTruncated;
  } else if (rx.lines_received < static_cast<std::uint32_t>(height)) {
    rx.outcome = RxOutcome::kMissingLines;
  } else if (rx.crc_errors > 0) {
    rx.outcome = RxOutcome::kCrcError;
  } else {
    rx.outcome = RxOutcome::kOk;
  }
  return rx;
}

RxCodecFrame Depacketizer::depacketize_codec(const WireFrame& wire, std::int64_t height,
                                             std::int64_t width, int max_planes) const {
  SNAPPIX_CHECK(height >= 1 && width >= 1,
                "depacketize_codec needs positive geometry, got " << height << "x" << width);
  SNAPPIX_CHECK(max_planes >= 0, "max_planes " << max_planes << " negative");
  RxCodecFrame rx;
  bool saw_fs = false;
  bool saw_fe = false;
  bool truncated = false;
  bool have_header = false;
  codec::PlaneStream stream;
  std::vector<std::vector<std::uint8_t>> planes(codec::kMaxBitplanes);
  std::vector<bool> plane_seen(codec::kMaxBitplanes, false);

  for (const Packet& packet : wire.packets) {
    if (packet.size() < static_cast<std::size_t>(kHeaderBytes)) {
      truncated = true;
      break;
    }
    const std::uint32_t header24 = static_cast<std::uint32_t>(packet[0]) |
                                   (static_cast<std::uint32_t>(packet[1]) << 8) |
                                   (static_cast<std::uint32_t>(packet[2]) << 16);
    const EccDecode dec = ecc_decode(header24, packet[3]);
    if (dec.status == EccDecode::Status::kUncorrectable) {
      ++rx.lost_packets;
      continue;
    }
    if (dec.status == EccDecode::Status::kCorrected) {
      ++rx.corrected_headers;
    }
    const std::uint8_t data_type = static_cast<std::uint8_t>(dec.header24 & 0x3F);
    const std::uint16_t wc = static_cast<std::uint16_t>((dec.header24 >> 8) & 0xFFFF);
    if (data_type < 0x10) {
      if (data_type == kDtFrameStart) {
        saw_fs = true;
        rx.frame_number = wc;
      } else if (data_type == kDtFrameEnd) {
        saw_fe = true;
      }
      continue;
    }
    if (packet.size() < static_cast<std::size_t>(kHeaderBytes) + wc + kCrcBytes) {
      truncated = true;
      break;
    }
    const std::uint8_t* payload = packet.data() + kHeaderBytes;
    const std::uint16_t crc_rx =
        static_cast<std::uint16_t>(packet[static_cast<std::size_t>(kHeaderBytes) + wc]) |
        static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(packet[static_cast<std::size_t>(kHeaderBytes) + wc + 1])
            << 8);
    if (crc16_ccitt(payload, wc) != crc_rx) {
      // A damaged payload's bytes — including a plane packet's index byte —
      // cannot be trusted; count it and discard it whole.
      ++rx.crc_errors;
      continue;
    }
    if (data_type == kDtCodecHeader) {
      codec::PlaneStream parsed;
      if (!have_header && codec::parse_stream_header(payload, wc, parsed) &&
          parsed.height == static_cast<std::uint16_t>(height) &&
          parsed.width == static_cast<std::uint16_t>(width)) {
        stream = parsed;
        have_header = true;
      } else {
        ++rx.lost_packets;  // duplicate, malformed, or wrong-geometry header
      }
    } else if (data_type == kDtCodecPlane) {
      const std::uint8_t index = wc >= 1 ? payload[0] : codec::kMaxBitplanes;
      if (wc >= 1 && index < codec::kMaxBitplanes && !plane_seen[index]) {
        planes[index].assign(payload + 1, payload + wc);
        plane_seen[index] = true;
        ++rx.planes_received;
      } else {
        ++rx.lost_packets;
      }
    } else {
      ++rx.lost_packets;  // e.g. a RAW32 row on a codec link: unusable
    }
  }

  if (truncated || !saw_fs || !saw_fe || !have_header) {
    rx.coded = Tensor::zeros(Shape{height, width});
    rx.outcome = RxOutcome::kTruncated;
    return rx;
  }

  int needed = stream.plane_count;
  if (max_planes != 0 && max_planes < needed) {
    needed = max_planes;
  }
  for (int j = 0; j < needed && plane_seen[static_cast<std::size_t>(j)]; ++j) {
    stream.planes.push_back(std::move(planes[static_cast<std::size_t>(j)]));
  }
  const codec::BitplaneDecode decode = codec::decode_bitplanes(stream, needed);
  rx.coded = codec::dequantize_frame(decode.frame);
  rx.decoded_planes = static_cast<std::uint8_t>(decode.decoded_planes);
  rx.total_planes = stream.plane_count;
  if (decode.decoded_planes >= needed) {
    rx.outcome = RxOutcome::kOk;
  } else if (rx.crc_errors > 0) {
    rx.outcome = RxOutcome::kCrcError;
  } else {
    rx.outcome = RxOutcome::kMissingLines;
  }
  return rx;
}

}  // namespace snappix::transport
