// MIPI CSI-2-style framed transport for coded frames.
//
// A coded (H, W) frame leaves the sensor as a sequence of packets modeled on
// the CSI-2 low-level protocol, so transport errors and partial frames become
// first-class, testable events instead of an accounting fiction:
//
//   Frame Start   short packet   [DI][frame#lo][frame#hi][ECC]
//   row 0..H-1    long packets   [DI][wc lo][wc hi][ECC] payload[wc] [CRC16]
//   Frame End     short packet   [DI][frame#lo][frame#hi][ECC]
//
// DI (data identifier) carries the virtual channel in bits 7..6 and the data
// type in bits 5..0; `wc` (word count) is the payload byte count. The payload
// of a row packet is the row's float32 pixels in host byte order (a RAW32-
// style user-defined data type — full precision, so the framed path can be
// bit-identical to the in-memory path). The footer is CRC-16/CCITT-FALSE over
// the payload; the header is protected by a 6-bit SEC-DED Hamming code over
// its 24 bits (single-bit errors corrected, double-bit errors detected), in
// the spirit of the CSI-2 packet-header ECC.
//
// `CodedFramePacketizer` serializes; `Depacketizer` reassembles, verifies
// CRC/ECC, and classifies the frame-level outcome (`RxOutcome`). The wire
// model between them — byte/lane accounting and fault injection — lives in
// transport/link.h.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/bitplane.h"
#include "tensor/tensor.h"

namespace snappix::transport {

// --- integrity primitives ----------------------------------------------------

// CRC-16/CCITT-FALSE: polynomial 0x1021, init 0xFFFF, MSB-first, no final
// xor. crc16_ccitt("123456789") == 0x29B1 (the standard check value).
std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t size);

// Encodes the 24 header bits (DI | wc_lo << 8 | wc_hi << 16) into the 6-bit
// SEC-DED code stored in the header's fourth byte (upper two bits zero).
std::uint8_t ecc_encode(std::uint32_t header24);

struct EccDecode {
  enum class Status : std::uint8_t {
    kClean,          // no error
    kCorrected,      // single-bit error (data or ECC) fixed
    kUncorrectable,  // >= 2 bit errors: the header cannot be trusted
  };
  Status status = Status::kUncorrectable;
  std::uint32_t header24 = 0;  // corrected header bits (valid unless uncorrectable)
};
EccDecode ecc_decode(std::uint32_t header24, std::uint8_t ecc);

// --- packet layout -----------------------------------------------------------

constexpr int kHeaderBytes = 4;  // DI + 16-bit wc/value + ECC
constexpr int kCrcBytes = 2;     // long-packet footer, little-endian on the wire

// Data types (DI bits 5..0). Types below 0x10 are short packets.
constexpr std::uint8_t kDtFrameStart = 0x00;
constexpr std::uint8_t kDtFrameEnd = 0x01;
constexpr std::uint8_t kDtRaw32 = 0x30;  // user-defined: one row of float32 pixels
// Entropy-coded mode (codec/bitplane.h): one stream header packet followed by
// one packet per bit-plane chunk. A plane packet's payload is the plane index
// (one byte, MSB plane = 0) followed by the chunk's entropy-coded bytes.
constexpr std::uint8_t kDtCodecHeader = 0x31;
constexpr std::uint8_t kDtCodecPlane = 0x32;

// One packet's bytes exactly as they travel the link.
using Packet = std::vector<std::uint8_t>;

// A whole frame on the wire: Frame Start, H row packets, Frame End.
struct WireFrame {
  std::vector<Packet> packets;

  std::uint64_t total_bytes() const;
  // Long-packet payload bytes only (headers, CRCs and short packets excluded).
  std::uint64_t payload_bytes() const;
};

class CodedFramePacketizer {
 public:
  // `virtual_channel` in [0, 3] is stamped into every packet's DI bits 7..6.
  explicit CodedFramePacketizer(int virtual_channel = 0);

  // Serializes a (H, W) coded frame: FS, one RAW32 long packet per row
  // (wc = W * 4, so W must stay under 16384 pixels), FE. `frame_number`
  // rides in the FS/FE short packets.
  WireFrame packetize(const Tensor& coded, std::uint16_t frame_number) const;

  // Entropy-coded mode: quantizes the frame (codec::quantize_frame), encodes
  // its bit-planes, and serializes FS, a kDtCodecHeader packet, one
  // kDtCodecPlane packet per chunk, FE. `max_planes` > 0 truncates the
  // TRANSMITTED stream to the top planes — the wire carries fewer bytes, not
  // just the decoder reading fewer (0 = every plane).
  WireFrame packetize_codec(const Tensor& coded, std::uint16_t frame_number,
                            int max_planes = 0) const;

  // Building blocks, exposed so tests can pin byte-exact golden vectors.
  static Packet short_packet(std::uint8_t data_id, std::uint16_t value);
  static Packet long_packet(std::uint8_t data_id, const std::uint8_t* payload,
                            std::uint16_t word_count);

  int virtual_channel() const { return virtual_channel_; }

 private:
  int virtual_channel_;
};

// --- reassembly --------------------------------------------------------------

// Frame-level outcome, by severity: a truncated stream beats missing lines
// beats a payload CRC failure beats clean.
enum class RxOutcome : std::uint8_t { kOk, kCrcError, kTruncated, kMissingLines };
const char* to_string(RxOutcome outcome);

struct RxFrame {
  RxOutcome outcome = RxOutcome::kTruncated;
  // Reassembled (H, W) image. Bit-identical to the transmitted frame when the
  // outcome is kOk. Row packets carry no line index (as in real CSI-2, order
  // is implicit), so rows fill in ARRIVAL order: when a mid-frame row is
  // lost, every later row shifts up one slot and only the trailing rows stay
  // zero — a kMissingLines frame's pixel content is not positionally
  // trustworthy, which is why the serving policy drops or retries it.
  Tensor coded;
  std::uint16_t frame_number = 0;
  std::uint32_t lines_received = 0;
  std::uint32_t crc_errors = 0;         // row packets whose payload CRC failed
  std::uint32_t corrected_headers = 0;  // single-bit header errors fixed by ECC
  std::uint32_t lost_packets = 0;       // headers the ECC could not rescue
};

// Receiver-side view of one entropy-coded frame.
struct RxCodecFrame {
  RxOutcome outcome = RxOutcome::kTruncated;
  // Dequantized at the decoded depth (undecoded low bits zero-filled);
  // all-zeros when the stream was truncated. With every requested plane
  // decoded this is bit-identical to
  // dequantize_frame(quantize_frame(tx frame)) at the same depth.
  Tensor coded;
  std::uint16_t frame_number = 0;
  std::uint8_t decoded_planes = 0;  // consecutive MSB planes decoded cleanly
  std::uint8_t total_planes = 0;    // full bit depth from the stream header
  std::uint32_t planes_received = 0;
  std::uint32_t crc_errors = 0;
  std::uint32_t corrected_headers = 0;
  std::uint32_t lost_packets = 0;
};

class Depacketizer {
 public:
  // Reassembles a frame of known geometry. Classification:
  //   kTruncated     the stream cut off mid-packet, or FS/FE never arrived
  //   kMissingLines  fewer than `height` row packets survived
  //   kCrcError      geometry complete but >= 1 row failed its CRC
  //   kOk            every row present and CRC-verified
  // A packet whose header is uncorrectable is skipped (counted in
  // lost_packets) — on a real link it would be unparseable noise.
  RxFrame depacketize(const WireFrame& wire, std::int64_t height,
                      std::int64_t width) const;

  // Entropy-coded counterpart. `max_planes` must match the transmit-side cap
  // (0 = full depth): the receiver treats needed = min(cap, header depth)
  // planes as required. Classification:
  //   kTruncated     stream cut off, FS/FE missing, or no valid stream header
  //                  for this geometry
  //   kCrcError      a needed plane arrived damaged (payload CRC failure)
  //   kMissingLines  a needed plane never arrived (dropped / unparseable)
  //   kOk            every needed plane decoded cleanly; later planes may
  //                  still be damaged without demoting the outcome
  // Plane packets failing their CRC are discarded whole — their index byte
  // cannot be trusted — and corrupt chunk contents end the decode at that
  // plane instead of invoking UB (see codec/bitplane.h).
  RxCodecFrame depacketize_codec(const WireFrame& wire, std::int64_t height,
                                 std::int64_t width, int max_planes = 0) const;
};

}  // namespace snappix::transport
