// Deterministic, seeded fault injection for the framed MIPI link.
//
// Three fault classes, matched to how real CSI-2 links fail and to the
// Depacketizer outcome they provoke:
//
//   bit flips      random single-bit corruption of wire bytes. Payload/CRC
//                  hits surface as kCrcError; a single header hit is repaired
//                  by the ECC (frame stays kOk, corrected_headers counts it)
//                  unless it lands on the ECC byte's reserved bits, which the
//                  code cannot repair; double header hits lose the packet.
//   packet drops   a whole packet vanishes in transit. A dropped row packet
//                  => kMissingLines; a dropped FS/FE => kTruncated.
//   lane stalls    a lane dies mid-packet, cutting its tail off => kTruncated.
//
// Every injector owns its Rng, seeded from FaultConfig::seed, and draws in a
// fixed packet order — so a camera's fault sequence is a pure function of its
// seed, reproducible no matter how producer threads interleave.
#pragma once

#include <cstdint>

#include "transport/csi2.h"
#include "util/rng.h"

namespace snappix::transport {

struct FaultConfig {
  double bit_flip_per_byte = 0.0;  // P(one bit of a wire byte flips)
  double packet_drop_rate = 0.0;   // P(a packet is lost whole)
  double lane_stall_rate = 0.0;    // P(a packet is truncated mid-flight)
  std::uint64_t seed = 0x5eedULL;

  bool any() const {
    return bit_flip_per_byte > 0.0 || packet_drop_rate > 0.0 || lane_stall_rate > 0.0;
  }
};

// Throws std::invalid_argument when a rate is outside [0, 1] or non-finite
// (NaN/inf never reach the bernoulli draws).
void validate(const FaultConfig& config);

struct FaultStats {
  std::uint64_t frames = 0;          // frames passed through apply()
  std::uint64_t frames_faulted = 0;  // frames that took >= 1 injected fault
  std::uint64_t bits_flipped = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t lane_stalls = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  // Mutates `wire` in place (dropping, truncating, and corrupting packets).
  // Returns true when at least one fault touched this frame. With all rates
  // zero this is a counted no-op.
  bool apply(WireFrame& wire);

  // Swaps the fault RATES mid-stream (validated; `config.seed` is ignored)
  // while KEEPING the Rng where it is — a chaos schedule's episodes stay a
  // pure function of the injector's original seed plus the sequence of
  // rates/frames it saw, never of wall-clock time. The mechanism behind
  // tests/chaos.h burst-noise episodes and camera flapping.
  void set_rates(const FaultConfig& config);

  const FaultStats& stats() const { return stats_; }
  const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace snappix::transport
