// FramedLink: one camera's end-to-end framed MIPI transport.
//
// transfer() pushes a coded frame through the whole wire model:
//
//   CodedFramePacketizer ──► MipiCsi2Link accounting ──► FaultInjector ──►
//   (FS + row packets + FE)  (bytes, lanes, wire time)   (seeded corruption)
//   ──► Depacketizer ──► TransferResult {outcome, reassembled tensor, counters}
//
// Byte/time accounting happens BEFORE fault injection: a dropped or corrupted
// packet still cost its transmit energy — loss happens in transit, not at the
// transmitter. With all fault rates zero the reassembled tensor is
// bit-identical to the input (float payloads round-trip exactly), which is
// the invariant the framed serving path is pinned to.
//
// A FramedLink is owned by one camera and driven from that camera's producer
// thread only; its Rng stream makes the fault sequence a pure function of
// FaultConfig::seed.
#pragma once

#include <cstdint>

#include "sensor/mipi.h"
#include "transport/csi2.h"
#include "transport/fault.h"

namespace snappix::transport {

struct LinkConfig {
  sensor::MipiConfig mipi;  // lanes + byte clock; drives the wire-time model
  FaultConfig faults;       // all-zero rates = clean link
  int virtual_channel = 0;  // stamped into every packet's DI (in [0, 3])
  // Entropy-coded wire mode: frames travel as quantized bit-plane chunks
  // (codec/bitplane.h) instead of raw float32 rows. `codec_planes` > 0
  // truncates the stream at the transmitter — only the top planes are put on
  // the wire and decoded (0 = full depth). Adjustable per frame through
  // FramedLink::set_codec_planes (e.g. classify shallow, reconstruct deep).
  bool codec = false;
  int codec_planes = 0;
};

// Throws std::invalid_argument when the link cannot exist: fault rates
// outside [0, 1] or non-finite, zero (or > 8) MIPI lanes, a non-positive or
// non-finite byte clock, a virtual channel outside [0, 3], or a codec plane
// cap exceeding the stream's total planes (codec::kMaxBitplanes). The single
// validation site for FramedLink construction and every config that embeds a
// LinkConfig.
void validate(const LinkConfig& config);

// One transfer's receiver-side view.
struct TransferResult {
  RxOutcome outcome = RxOutcome::kTruncated;
  Tensor coded;                      // reassembled (H, W); see RxFrame::coded
  std::uint64_t wire_bytes = 0;      // framed bytes transmitted for this frame
  std::uint32_t crc_errors = 0;      // rows failing CRC
  std::uint32_t corrected_headers = 0;
  std::uint32_t lost_packets = 0;    // uncorrectable headers
  std::uint8_t decoded_planes = 0;   // codec mode: planes decoded cleanly
  std::uint8_t total_planes = 0;     // codec mode: the frame's full bit depth
};

// Lifetime outcome counters (frames classified by final receive outcome).
struct LinkCounters {
  std::uint64_t frames = 0;
  std::uint64_t ok_frames = 0;
  std::uint64_t crc_error_frames = 0;
  std::uint64_t truncated_frames = 0;
  std::uint64_t missing_line_frames = 0;
};

class FramedLink {
 public:
  explicit FramedLink(const LinkConfig& config);

  // Serializes, accounts, (maybe) corrupts, and reassembles one coded frame.
  TransferResult transfer(const Tensor& coded, std::uint16_t frame_number);

  // Adjusts the codec-mode plane cap for subsequent transfers (0 = full
  // depth). No-op semantics on a raw (non-codec) link; retransmits of a
  // frame reuse whatever cap is current, so callers set it before the first
  // attempt.
  void set_codec_planes(int planes);
  int codec_planes() const { return config_.codec_planes; }

  // Swaps the fault rates for subsequent transfers (validated; the
  // injector's Rng stream continues — see FaultInjector::set_rates). Drives
  // the chaos harness's burst-noise episodes and link flapping.
  void set_faults(const FaultConfig& faults);

  // Byte / lane / wire-time accounting for everything transferred so far.
  const sensor::MipiCsi2Link& mipi() const { return mipi_; }
  // Injected-fault ground truth (what the tests compare observed drops to).
  const FaultInjector& injector() const { return injector_; }
  const LinkCounters& counters() const { return counters_; }
  const LinkConfig& config() const { return config_; }

 private:
  LinkConfig config_;
  CodedFramePacketizer packetizer_;
  sensor::MipiCsi2Link mipi_;
  FaultInjector injector_;
  Depacketizer depacketizer_;
  LinkCounters counters_;
};

}  // namespace snappix::transport
