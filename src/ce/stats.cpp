#include "ce/stats.h"

#include <cmath>

#include "util/common.h"

namespace snappix::ce {

Tensor tile_samples(const Tensor& coded, int tile) {
  SNAPPIX_CHECK(coded.ndim() == 3, "tile_samples expects (B, H, W), got "
                                       << coded.shape().to_string());
  const std::int64_t batch = coded.shape()[0];
  const std::int64_t h = coded.shape()[1];
  const std::int64_t w = coded.shape()[2];
  SNAPPIX_CHECK(tile > 0 && h % tile == 0 && w % tile == 0,
                "frame " << h << "x" << w << " not divisible by tile " << tile);
  const std::int64_t gh = h / tile;
  const std::int64_t gw = w / tile;
  Tensor t = reshape(coded, Shape{batch, gh, tile, gw, tile});
  t = permute(t, {0, 1, 3, 2, 4});  // (B, gh, gw, tile, tile)
  return reshape(t, Shape{batch * gh * gw, static_cast<std::int64_t>(tile) * tile});
}

Tensor zero_mean_contrast(const Tensor& samples) {
  SNAPPIX_CHECK(samples.ndim() == 2, "zero_mean_contrast expects (S, P), got "
                                         << samples.shape().to_string());
  const Tensor tile_mean = mean(samples, -1, /*keepdim=*/true);  // (S, 1)
  return sub(samples, tile_mean);
}

Tensor pearson_matrix(const Tensor& samples, float eps) {
  SNAPPIX_CHECK(samples.ndim() == 2, "pearson_matrix expects (S, P), got "
                                         << samples.shape().to_string());
  const std::int64_t s = samples.shape()[0];
  SNAPPIX_CHECK(s >= 2, "pearson_matrix needs at least 2 samples, got " << s);
  // Standardize each pixel-position column over the sample axis.
  const Tensor mu = mean(samples, 0, /*keepdim=*/true);               // (1, P)
  const Tensor centered = sub(samples, mu);                           // (S, P)
  const Tensor var = mean(square(centered), 0, /*keepdim=*/true);     // (1, P)
  const Tensor z = div(centered, snappix::sqrt(add_scalar(var, eps)));
  // C = Z^T Z / S.
  return mul_scalar(matmul(transpose(z, 0, 1), z), 1.0F / static_cast<float>(s));
}

Tensor decorrelation_loss(const Tensor& coded, int tile, float eps) {
  const Tensor samples = zero_mean_contrast(tile_samples(coded, tile));
  const Tensor corr = pearson_matrix(samples, eps);
  const std::int64_t p = corr.shape()[0];
  SNAPPIX_CHECK(p >= 2, "decorrelation_loss needs a tile with at least 2 pixels");
  // Mean of squared off-diagonal entries. Rather than materializing a mask,
  // subtract the diagonal contribution: diagonal entries of a correlation
  // matrix of standardized variables are var/(var+eps) <= 1; we compute them
  // exactly by extracting the diagonal with index_select on the flattened
  // matrix.
  const Tensor sq = square(corr);
  Tensor total = sum_all(sq);
  std::vector<std::int64_t> diag_idx(static_cast<std::size_t>(p));
  for (std::int64_t i = 0; i < p; ++i) {
    diag_idx[static_cast<std::size_t>(i)] = i * p + i;
  }
  const Tensor flat = reshape(sq, Shape{p * p});
  const Tensor diag = sum_all(index_select(flat, 0, diag_idx));
  const float denom = static_cast<float>(p) * static_cast<float>(p - 1);
  return mul_scalar(sub(total, diag), 1.0F / denom);
}

float mean_correlation(const Tensor& coded, int tile) {
  NoGradGuard guard;
  const float l_cor = decorrelation_loss(coded.detach(), tile).item();
  return std::sqrt(std::max(l_cor, 0.0F));
}

}  // namespace snappix::ce
