#include "ce/pattern.h"

#include <fstream>

#include "util/common.h"

namespace snappix::ce {

CePattern::CePattern(int slots, int tile) : slots_(slots), tile_(tile) {
  SNAPPIX_CHECK(slots > 0 && tile > 0, "CePattern: slots and tile must be positive, got "
                                           << slots << ", " << tile);
  bits_.assign(static_cast<std::size_t>(bits_per_tile()), 0);
}

std::int64_t CePattern::index(int slot, int y, int x) const {
  SNAPPIX_CHECK(slot >= 0 && slot < slots_, "slot " << slot << " out of range [0, " << slots_
                                                    << ")");
  SNAPPIX_CHECK(y >= 0 && y < tile_ && x >= 0 && x < tile_,
                "pixel (" << y << ", " << x << ") out of tile " << tile_ << "x" << tile_);
  return (static_cast<std::int64_t>(slot) * tile_ + y) * tile_ + x;
}

bool CePattern::bit(int slot, int y, int x) const {
  return bits_[static_cast<std::size_t>(index(slot, y, x))] != 0;
}

void CePattern::set_bit(int slot, int y, int x, bool value) {
  bits_[static_cast<std::size_t>(index(slot, y, x))] = value ? 1 : 0;
}

CePattern CePattern::long_exposure(int slots, int tile) {
  CePattern p(slots, tile);
  for (auto& b : p.bits_) {
    b = 1;
  }
  return p;
}

CePattern CePattern::short_exposure(int slots, int tile, int period) {
  SNAPPIX_CHECK(period > 0, "short_exposure: period must be positive");
  CePattern p(slots, tile);
  for (int t = 0; t < slots; t += period) {
    for (int y = 0; y < tile; ++y) {
      for (int x = 0; x < tile; ++x) {
        p.set_bit(t, y, x, true);
      }
    }
  }
  return p;
}

CePattern CePattern::random(int slots, int tile, Rng& rng, float p) {
  SNAPPIX_CHECK(p >= 0.0F && p <= 1.0F, "random pattern probability " << p << " out of [0,1]");
  CePattern pat(slots, tile);
  for (auto& b : pat.bits_) {
    b = rng.bernoulli(p) ? 1 : 0;
  }
  return pat;
}

CePattern CePattern::sparse_random(int slots, int tile, Rng& rng) {
  CePattern pat(slots, tile);
  for (int y = 0; y < tile; ++y) {
    for (int x = 0; x < tile; ++x) {
      const int slot = static_cast<int>(rng.uniform_int(0, slots - 1));
      pat.set_bit(slot, y, x, true);
    }
  }
  return pat;
}

CePattern CePattern::from_weights(const Tensor& weights, float threshold) {
  SNAPPIX_CHECK(weights.ndim() == 3 && weights.shape()[1] == weights.shape()[2],
                "from_weights expects (T, tile, tile), got " << weights.shape().to_string());
  const int slots = static_cast<int>(weights.shape()[0]);
  const int tile = static_cast<int>(weights.shape()[1]);
  CePattern pat(slots, tile);
  const auto& data = weights.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    pat.bits_[i] = data[i] > threshold ? 1 : 0;
  }
  return pat;
}

std::vector<int> CePattern::exposure_counts() const {
  std::vector<int> counts(static_cast<std::size_t>(tile_) * tile_, 0);
  for (int t = 0; t < slots_; ++t) {
    for (int y = 0; y < tile_; ++y) {
      for (int x = 0; x < tile_; ++x) {
        counts[static_cast<std::size_t>(y * tile_ + x)] += bit(t, y, x) ? 1 : 0;
      }
    }
  }
  return counts;
}

int CePattern::total_exposed() const {
  int total = 0;
  for (const auto b : bits_) {
    total += b;
  }
  return total;
}

float CePattern::exposure_fraction() const {
  return static_cast<float>(total_exposed()) / static_cast<float>(bits_per_tile());
}

Tensor CePattern::to_tensor() const {
  std::vector<float> values(bits_.size());
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    values[i] = static_cast<float>(bits_[i]);
  }
  return Tensor::from_vector(std::move(values), Shape{slots_, tile_, tile_});
}

Tensor CePattern::full_mask(std::int64_t height, std::int64_t width) const {
  SNAPPIX_CHECK(height % tile_ == 0 && width % tile_ == 0,
                "frame " << height << "x" << width << " not divisible by tile " << tile_);
  NoGradGuard guard;
  return tile_2d(to_tensor(), height / tile_, width / tile_);
}

std::vector<std::uint8_t> CePattern::slot_bits(int slot) const {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(tile_) * tile_);
  for (int y = 0; y < tile_; ++y) {
    for (int x = 0; x < tile_; ++x) {
      out[static_cast<std::size_t>(y * tile_ + x)] = bit(slot, y, x) ? 1 : 0;
    }
  }
  return out;
}

std::uint64_t CePattern::hash() const {
  // FNV-1a, 64-bit. Geometry bytes first so (slots=2, tile=4) and
  // (slots=4, tile=2) patterns with identical bit streams still differ.
  constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h = kOffset;
  const auto mix = [&h](std::uint64_t byte) {
    h ^= byte;
    h *= kPrime;
  };
  for (int shift = 0; shift < 32; shift += 8) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(slots_) >> shift) & 0xFFU);
  }
  for (int shift = 0; shift < 32; shift += 8) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(tile_) >> shift) & 0xFFU);
  }
  for (const std::uint8_t bit : bits_) {
    mix(bit);
  }
  return h;
}

void CePattern::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  SNAPPIX_CHECK(out.good(), "cannot open " << path << " for writing");
  out.write(reinterpret_cast<const char*>(&slots_), sizeof(slots_));
  out.write(reinterpret_cast<const char*>(&tile_), sizeof(tile_));
  out.write(reinterpret_cast<const char*>(bits_.data()),
            static_cast<std::streamsize>(bits_.size()));
  SNAPPIX_CHECK(out.good(), "write failure on " << path);
}

CePattern CePattern::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SNAPPIX_CHECK(in.good(), "cannot open " << path << " for reading");
  int slots = 0;
  int tile = 0;
  in.read(reinterpret_cast<char*>(&slots), sizeof(slots));
  in.read(reinterpret_cast<char*>(&tile), sizeof(tile));
  SNAPPIX_CHECK(in.good() && slots > 0 && tile > 0, path << " is not a valid CE pattern file");
  CePattern pat(slots, tile);
  in.read(reinterpret_cast<char*>(pat.bits_.data()),
          static_cast<std::streamsize>(pat.bits_.size()));
  SNAPPIX_CHECK(in.good(), "read failure on " << path);
  return pat;
}

bool CePattern::operator==(const CePattern& other) const {
  return slots_ == other.slots_ && tile_ == other.tile_ && bits_ == other.bits_;
}

std::string CePattern::to_string() const {
  std::string out;
  for (int t = 0; t < slots_; ++t) {
    out += "slot " + std::to_string(t) + ":\n";
    for (int y = 0; y < tile_; ++y) {
      out += "  ";
      for (int x = 0; x < tile_; ++x) {
        out += bit(t, y, x) ? '#' : '.';
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace snappix::ce
