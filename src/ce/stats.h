// Within-tile pixel-correlation statistics (paper Sec. III, Fig. 3).
//
// Coded images are divided into tiles of P = tile*tile pixels; each within-
// tile pixel position becomes an S-dimensional sample vector (S = B * number
// of tiles). After zero-mean contrast encoding, the Pearson correlation
// matrix between positions quantifies redundancy; the decorrelation loss
// L_Cor (Eqn. 2) is the mean of squared off-diagonal coefficients.
#pragma once

#include "tensor/tensor.h"

namespace snappix::ce {

// Rearranges coded images (B, H, W) into per-tile sample rows (S, P) with
// S = B*(H/tile)*(W/tile) and P = tile*tile. Differentiable.
Tensor tile_samples(const Tensor& coded, int tile);

// Zero-mean contrast encoding: subtracts each tile instance's mean pixel
// value from all pixels of that tile (Fig. 3: "ensuring the mean pixel value
// of each tile is zero"). Input/output shape (S, P). Differentiable.
Tensor zero_mean_contrast(const Tensor& samples);

// Pearson correlation matrix (P, P) between within-tile pixel positions from
// samples (S, P). Differentiable.
Tensor pearson_matrix(const Tensor& samples, float eps = 1e-6F);

// L_Cor (Eqn. 2): mean of squared off-diagonal Pearson coefficients.
// Differentiable; `coded` is (B, H, W).
Tensor decorrelation_loss(const Tensor& coded, int tile, float eps = 1e-6F);

// Scalar summary used in Fig. 6's legend: sqrt of the mean squared
// off-diagonal Pearson coefficient (reported as "the correlation
// coefficient" of a pattern). Tape-free.
float mean_correlation(const Tensor& coded, int tile);

}  // namespace snappix::ce
