#include "ce/encode.h"

#include <algorithm>

#include "util/common.h"

namespace snappix::ce {

Tensor ce_encode(const Tensor& videos, const CePattern& pattern) {
  SNAPPIX_CHECK(videos.ndim() == 4, "ce_encode expects (B, T, H, W), got "
                                        << videos.shape().to_string());
  const std::int64_t batch = videos.shape()[0];
  const std::int64_t frames = videos.shape()[1];
  const std::int64_t h = videos.shape()[2];
  const std::int64_t w = videos.shape()[3];
  SNAPPIX_CHECK(frames == pattern.slots(), "video has " << frames << " frames but pattern has "
                                                        << pattern.slots() << " slots");
  const int tile = pattern.tile();
  SNAPPIX_CHECK(h % tile == 0 && w % tile == 0,
                "frame " << h << "x" << w << " not divisible by tile " << tile);

  std::vector<float> out(static_cast<std::size_t>(batch * h * w), 0.0F);
  const auto& dv = videos.data();
  const Tensor mask = pattern.to_tensor();  // (T, tile, tile)
  const auto& dm = mask.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t t = 0; t < frames; ++t) {
      const float* frame = dv.data() + (b * frames + t) * h * w;
      const float* mslot = dm.data() + t * tile * tile;
      float* dst = out.data() + b * h * w;
      for (std::int64_t y = 0; y < h; ++y) {
        const float* mrow = mslot + (y % tile) * tile;
        for (std::int64_t x = 0; x < w; ++x) {
          dst[y * w + x] += mrow[x % tile] * frame[y * w + x];
        }
      }
    }
  }
  return Tensor::from_vector(std::move(out), Shape{batch, h, w});
}

Tensor ce_encode_single(const Tensor& video, const CePattern& pattern) {
  SNAPPIX_CHECK(video.ndim() == 3, "ce_encode_single expects (T, H, W), got "
                                       << video.shape().to_string());
  const Tensor batched = Tensor::from_vector(
      video.data(), Shape{1, video.shape()[0], video.shape()[1], video.shape()[2]});
  const Tensor coded = ce_encode(batched, pattern);
  return Tensor::from_vector(coded.data(), Shape{video.shape()[1], video.shape()[2]});
}

Tensor ce_encode_diff(const Tensor& videos, const Tensor& weights) {
  SNAPPIX_CHECK(videos.ndim() == 4, "ce_encode_diff expects (B, T, H, W) videos, got "
                                        << videos.shape().to_string());
  SNAPPIX_CHECK(weights.ndim() == 3 && weights.shape()[1] == weights.shape()[2],
                "ce_encode_diff expects (T, tile, tile) weights, got "
                    << weights.shape().to_string());
  const std::int64_t frames = videos.shape()[1];
  const std::int64_t h = videos.shape()[2];
  const std::int64_t w = videos.shape()[3];
  const std::int64_t tile = weights.shape()[1];
  SNAPPIX_CHECK(weights.shape()[0] == frames, "weights slots " << weights.shape()[0]
                                                               << " != video frames " << frames);
  SNAPPIX_CHECK(h % tile == 0 && w % tile == 0,
                "frame " << h << "x" << w << " not divisible by tile " << tile);
  // Binary mask with straight-through gradients, repeated across tiles.
  const Tensor mask = binarize_ste(weights);                // (T, tile, tile)
  const Tensor full = tile_2d(mask, h / tile, w / tile);    // (T, H, W)
  const Tensor masked = mul(videos, full);                  // broadcast over batch
  return sum(masked, /*axis=*/1);                           // (B, H, W)
}

Tensor normalize_by_exposure(const Tensor& coded, const CePattern& pattern) {
  SNAPPIX_CHECK(coded.ndim() == 3, "normalize_by_exposure expects (B, H, W), got "
                                       << coded.shape().to_string());
  const std::int64_t batch = coded.shape()[0];
  const std::int64_t h = coded.shape()[1];
  const std::int64_t w = coded.shape()[2];
  const int tile = pattern.tile();
  SNAPPIX_CHECK(h % tile == 0 && w % tile == 0,
                "frame " << h << "x" << w << " not divisible by tile " << tile);
  const auto counts = pattern.exposure_counts();
  std::vector<float> inv(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    inv[i] = counts[i] > 0 ? 1.0F / static_cast<float>(counts[i]) : 0.0F;
  }
  std::vector<float> out(coded.data().size());
  const auto& dc = coded.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* src = dc.data() + b * h * w;
    float* dst = out.data() + b * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      const float* irow = inv.data() + (y % tile) * tile;
      for (std::int64_t x = 0; x < w; ++x) {
        dst[y * w + x] = src[y * w + x] * irow[x % tile];
      }
    }
  }
  return Tensor::from_vector(std::move(out), coded.shape());
}

}  // namespace snappix::ce
