// CePattern: a tile-repetitive coded-exposure pattern (paper Sec. II-B/IV).
//
// The pattern is a binary mask over (T slots, tile x tile pixels). Pixels
// within a tile may differ; the pattern repeats across tiles (tile-repetitive
// constraint that lets the ViT handle all within-tile variation, Sec. IV).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix::ce {

class CePattern {
 public:
  // All-zero pattern with `slots` exposure slots and a `tile` x `tile` tile.
  CePattern(int slots, int tile);

  // --- factories matching the paper's task-agnostic baselines (Sec. VI-A) ---
  // LONG EXPOSURE: all pixels exposed in all slots.
  static CePattern long_exposure(int slots, int tile);
  // SHORT EXPOSURE: all pixels exposed every `period`-th slot (paper: 8).
  static CePattern short_exposure(int slots, int tile, int period = 8);
  // RANDOM: each pixel/slot exposed independently with probability `p`.
  static CePattern random(int slots, int tile, Rng& rng, float p = 0.5F);
  // SPARSE RANDOM: each pixel exposed in exactly one uniformly random slot.
  static CePattern sparse_random(int slots, int tile, Rng& rng);
  // Binarizes learned continuous weights (T, tile, tile) at `threshold`.
  static CePattern from_weights(const Tensor& weights, float threshold = 0.5F);

  int slots() const { return slots_; }
  int tile() const { return tile_; }
  std::int64_t bits_per_tile() const {
    return static_cast<std::int64_t>(slots_) * tile_ * tile_;
  }

  bool bit(int slot, int y, int x) const;
  void set_bit(int slot, int y, int x, bool value);

  // Number of exposed slots for each within-tile pixel; shape (tile, tile).
  std::vector<int> exposure_counts() const;
  // Total exposed (pixel, slot) pairs; the "exposure budget".
  int total_exposed() const;
  // Fraction of (pixel, slot) pairs exposed.
  float exposure_fraction() const;

  // Dense float tensor of shape (T, tile, tile) with 0/1 entries.
  Tensor to_tensor() const;
  // Pattern tiled over a full frame: (T, height, width).
  Tensor full_mask(std::int64_t height, std::int64_t width) const;

  // Bit order used to stream the pattern into the per-pixel DFF chain
  // (sensor Sec. V): raster order within the tile for a given slot.
  std::vector<std::uint8_t> slot_bits(int slot) const;

  // Stable 64-bit content hash (FNV-1a over geometry + bits). Two patterns
  // hash equal iff they compare equal (modulo the usual collision caveat);
  // the value is independent of process, platform, and build, so it can key
  // server-side caches and travel with frames as a wire-stable pattern id.
  std::uint64_t hash() const;

  void save(const std::string& path) const;
  static CePattern load(const std::string& path);

  bool operator==(const CePattern& other) const;

  std::string to_string() const;  // human-readable per-slot bitmap

 private:
  std::int64_t index(int slot, int y, int x) const;

  int slots_;
  int tile_;
  std::vector<std::uint8_t> bits_;  // layout (T, tile, tile)
};

}  // namespace snappix::ce
