// Coded-exposure encoding (paper Eqn. 1): X(i,j) = sum_t M(i,j,t) * Y(i,j,t).
//
// Two paths are provided:
//  - ce_encode: fast, tape-free encoding for inference and data preparation.
//  - ce_encode_diff: differentiable encoding through continuous mask weights
//    with a straight-through estimator, used to *learn* patterns (Sec. III).
#pragma once

#include "ce/pattern.h"
#include "tensor/tensor.h"

namespace snappix::ce {

// Encodes a batch of videos (B, T, H, W) into coded images (B, H, W).
// No autograd tape is recorded.
Tensor ce_encode(const Tensor& videos, const CePattern& pattern);

// Single-video convenience: (T, H, W) -> (H, W).
Tensor ce_encode_single(const Tensor& video, const CePattern& pattern);

// Differentiable encoding for pattern learning. `weights` is a continuous
// (T, tile, tile) tensor; the binary mask is binarize_ste(weights) tiled over
// the frame, so gradients flow back into `weights` straight-through.
Tensor ce_encode_diff(const Tensor& videos, const Tensor& weights);

// Divides each coded pixel by its exposure-slot count (paper Sec. IV: "each
// pixel value is normalized by the number of exposure slots"). Pixels that
// are never exposed stay zero. Input (B, H, W), tape-free.
Tensor normalize_by_exposure(const Tensor& coded, const CePattern& pattern);

}  // namespace snappix::ce
