#include "sensor/mipi.h"

#include "util/common.h"

namespace snappix::sensor {

MipiCsi2Link::MipiCsi2Link(const MipiConfig& config) : config_(config) {
  SNAPPIX_CHECK(config.lanes >= 1 && config.lanes <= 8, "MIPI lanes " << config.lanes
                                                                      << " out of [1, 8]");
  SNAPPIX_CHECK(config.byte_clock_hz > 0.0, "MIPI byte clock must be positive");
}

std::uint64_t MipiCsi2Link::send_line(std::uint64_t payload) {
  SNAPPIX_CHECK(payload > 0, "MIPI line payload must be positive");
  const std::uint64_t wire =
      payload + static_cast<std::uint64_t>(config_.header_bytes + config_.footer_bytes);
  total_bytes_ += wire;
  payload_bytes_ += payload;
  ++packets_;
  return wire;
}

double MipiCsi2Link::transmit_seconds() const {
  return static_cast<double>(total_bytes_) /
         (config_.byte_clock_hz * static_cast<double>(config_.lanes));
}

}  // namespace snappix::sensor
