#include "sensor/mipi.h"

#include "util/common.h"

namespace snappix::sensor {

MipiCsi2Link::MipiCsi2Link(const MipiConfig& config) : config_(config) {
  SNAPPIX_CHECK(config.lanes >= 1 && config.lanes <= 8, "MIPI lanes " << config.lanes
                                                                      << " out of [1, 8]");
  SNAPPIX_CHECK(config.byte_clock_hz > 0.0, "MIPI byte clock must be positive");
}

std::uint64_t MipiCsi2Link::send_line(std::uint64_t payload) {
  SNAPPIX_CHECK(payload > 0, "MIPI line payload must be positive");
  const std::uint64_t wire =
      payload + static_cast<std::uint64_t>(config_.header_bytes + config_.footer_bytes);
  return send_packet(wire, payload);
}

std::uint64_t MipiCsi2Link::send_packet(std::uint64_t wire_bytes,
                                        std::uint64_t payload_bytes) {
  SNAPPIX_CHECK(wire_bytes > 0, "MIPI packet must carry at least one byte");
  SNAPPIX_CHECK(payload_bytes <= wire_bytes,
                "payload " << payload_bytes << " exceeds wire bytes " << wire_bytes);
  total_bytes_ += wire_bytes;
  payload_bytes_ += payload_bytes;
  ++packets_;
  const auto lanes = static_cast<std::uint64_t>(config_.lanes);
  busiest_lane_bytes_ += (wire_bytes + lanes - 1) / lanes;  // lane 0's share
  for (std::uint64_t lane = 0; lane < lanes; ++lane) {
    lane_bytes_[lane] += wire_bytes / lanes + (lane < wire_bytes % lanes ? 1 : 0);
  }
  return wire_bytes;
}

std::uint64_t MipiCsi2Link::lane_bytes(int lane) const {
  SNAPPIX_CHECK(lane >= 0 && lane < config_.lanes,
                "lane " << lane << " out of range for " << config_.lanes << " lanes");
  return lane_bytes_[static_cast<std::size_t>(lane)];
}

double MipiCsi2Link::transmit_seconds() const {
  return static_cast<double>(busiest_lane_bytes_) / config_.byte_clock_hz;
}

}  // namespace snappix::sensor
