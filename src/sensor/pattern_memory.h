// Bottom-layer pattern distribution (paper Fig. 5 / Sec. V).
//
// Each pixel carries one DFF; the DFFs of a tile form a shift register
// (pattern_out of pixel i feeds pattern_in of pixel i+1). A slot's CE bits
// are streamed in over `length` pattern-clk cycles, consumed via the
// pattern-reset / pattern-transfer pulses (M6/M7), and the DFFs are
// power-gated between uses. Only four wires reach each tile chain —
// pattern_in, pattern_clk, pattern_reset, pattern_transfer — regardless of
// tile size (vs 2N wires/pixel for a broadcast design).
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace snappix::sensor {

class DffShiftChain {
 public:
  explicit DffShiftChain(int length);

  // One pattern_clk cycle: shifts `bit` into DFF 0, pushing contents along.
  void shift_in(std::uint8_t bit);

  // Streams a full slot's bits so that bits[i] lands in DFF i.
  // Costs exactly length() cycles. Wakes the chain if power-gated.
  void load_slot(const std::vector<std::uint8_t>& bits);

  // DFF output seen by the pixel at `index` (drives M1/M3 gating via M6/M7).
  std::uint8_t bit_at(int index) const;

  // Clock gating between the reset and transfer phases.
  void power_gate() { power_gated_ = true; }
  void wake() { power_gated_ = false; }
  bool power_gated() const { return power_gated_; }

  int length() const { return static_cast<int>(dffs_.size()); }
  // Total pattern-clk cycles consumed by this chain so far.
  std::uint64_t cycles() const { return cycles_; }
  // Total DFF toggle events (for the energy model).
  std::uint64_t shift_events() const { return shift_events_; }

 private:
  std::vector<std::uint8_t> dffs_;
  bool power_gated_ = false;
  std::uint64_t cycles_ = 0;
  std::uint64_t shift_events_ = 0;
};

}  // namespace snappix::sensor
