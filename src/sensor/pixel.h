// The CE pixel of paper Fig. 5 (top layer).
//
// Classic 4T APS extended so PD reset (M1) is decoupled from FD reset (M2):
// the PD can integrate across multiple exposure slots, be selectively reset
// at slot start, and transfer photocharge to the FD (M3) at slot end — the FD
// accumulates transfers across slots, realizing Eqn. 1 in charge domain.
#pragma once

#include <cstdint>

namespace snappix::sensor {

struct PixelParams {
  float full_well_electrons = 8192.0F;  // PD/FD saturation
  float conversion_gain = 1.0F;         // volts per electron (normalized)
};

class ApsPixel {
 public:
  explicit ApsPixel(const PixelParams& params = PixelParams{}) : params_(params) {}

  // M1 pulse: clears the photodiode.
  void reset_pd() { pd_electrons_ = 0.0F; }
  // M2 pulse: clears the floating diffusion (start of a coded frame).
  void reset_fd() { fd_electrons_ = 0.0F; }
  // Light integration during one exposure slot (electrons).
  void expose(float electrons);
  // M3 pulse: moves the PD charge onto the FD (accumulating), then clears PD.
  void transfer();
  // M4/M5 read-out path: FD charge as a voltage through the source follower.
  float read() const { return fd_electrons_ * params_.conversion_gain; }

  float pd_electrons() const { return pd_electrons_; }
  float fd_electrons() const { return fd_electrons_; }
  const PixelParams& params() const { return params_; }

 private:
  PixelParams params_;
  float pd_electrons_ = 0.0F;
  float fd_electrons_ = 0.0F;
};

}  // namespace snappix::sensor
