// Column-parallel SAR ADC model: quantizes pixel voltages into digital
// numbers and accounts conversions/cycles for the timing and energy models.
#pragma once

#include <cstdint>

namespace snappix::sensor {

struct AdcConfig {
  int bits = 8;
  float full_scale = 4096.0F;       // input voltage mapped to code 2^bits - 1
  int cycles_per_conversion = 8;    // SAR: one cycle per bit
};

class ColumnAdc {
 public:
  explicit ColumnAdc(const AdcConfig& config);

  // Quantizes `voltage` in [0, full_scale] to a code in [0, 2^bits - 1].
  std::uint32_t convert(float voltage);

  std::uint64_t conversions() const { return conversions_; }
  std::uint64_t cycles() const { return conversions_ * config_.cycles_per_conversion; }
  std::uint32_t max_code() const { return max_code_; }
  const AdcConfig& config() const { return config_; }

 private:
  AdcConfig config_;
  std::uint32_t max_code_;
  std::uint64_t conversions_ = 0;
};

}  // namespace snappix::sensor
