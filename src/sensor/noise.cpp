#include "sensor/noise.h"

#include <algorithm>

#include "util/common.h"

namespace snappix::sensor {

NoiseModel::NoiseModel(const NoiseConfig& config, std::int64_t num_pixels) : config_(config) {
  SNAPPIX_CHECK(num_pixels > 0, "NoiseModel needs at least one pixel");
  if (!config.enabled) {
    return;
  }
  Rng rng(config.seed);
  fpn_gain_.resize(static_cast<std::size_t>(num_pixels));
  fpn_offset_.resize(static_cast<std::size_t>(num_pixels));
  for (std::int64_t i = 0; i < num_pixels; ++i) {
    fpn_gain_[static_cast<std::size_t>(i)] = 1.0F + rng.normal(0.0F, config.fpn_gain_sigma);
    fpn_offset_[static_cast<std::size_t>(i)] =
        std::max(0.0F, rng.normal(0.0F, config.fpn_offset_electrons));
  }
}

float NoiseModel::apply_exposure(std::int64_t pixel, float electrons, double exposure_s,
                                 Rng& rng) const {
  if (!config_.enabled) {
    return electrons;
  }
  float result = electrons * fpn_gain_[static_cast<std::size_t>(pixel)];
  result += config_.dark_current_e_per_s * static_cast<float>(exposure_s);
  if (config_.shot_noise && result > 0.0F) {
    result = static_cast<float>(rng.poisson(static_cast<double>(result)));
  }
  return std::max(result, 0.0F);
}

float NoiseModel::apply_read(std::int64_t pixel, float voltage, Rng& rng) const {
  if (!config_.enabled) {
    return voltage;
  }
  voltage += fpn_offset_[static_cast<std::size_t>(pixel)];
  voltage += rng.normal(0.0F, config_.read_noise_electrons);
  return std::max(voltage, 0.0F);
}

}  // namespace snappix::sensor
