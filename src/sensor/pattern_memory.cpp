#include "sensor/pattern_memory.h"

namespace snappix::sensor {

DffShiftChain::DffShiftChain(int length) {
  SNAPPIX_CHECK(length > 0, "shift chain length must be positive, got " << length);
  dffs_.assign(static_cast<std::size_t>(length), 0);
}

void DffShiftChain::shift_in(std::uint8_t bit) {
  SNAPPIX_CHECK(!power_gated_, "shift_in on a power-gated chain; call wake() first");
  // Shift toward higher indices; the new bit enters DFF 0.
  for (std::size_t i = dffs_.size() - 1; i > 0; --i) {
    dffs_[i] = dffs_[i - 1];
  }
  dffs_[0] = bit != 0 ? 1 : 0;
  ++cycles_;
  shift_events_ += static_cast<std::uint64_t>(dffs_.size());
}

void DffShiftChain::load_slot(const std::vector<std::uint8_t>& bits) {
  SNAPPIX_CHECK(static_cast<int>(bits.size()) == length(),
                "load_slot got " << bits.size() << " bits for a chain of " << length());
  wake();
  // Stream in reverse so bits[0] ends up in DFF 0 after length() shifts.
  for (auto it = bits.rbegin(); it != bits.rend(); ++it) {
    shift_in(*it);
  }
}

std::uint8_t DffShiftChain::bit_at(int index) const {
  SNAPPIX_CHECK(index >= 0 && index < length(), "DFF index " << index << " out of range");
  return dffs_[static_cast<std::size_t>(index)];
}

}  // namespace snappix::sensor
