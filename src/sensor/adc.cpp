#include "sensor/adc.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace snappix::sensor {

ColumnAdc::ColumnAdc(const AdcConfig& config) : config_(config) {
  SNAPPIX_CHECK(config.bits >= 1 && config.bits <= 16, "ADC bits " << config.bits
                                                                   << " out of [1, 16]");
  SNAPPIX_CHECK(config.full_scale > 0.0F, "ADC full_scale must be positive");
  SNAPPIX_CHECK(config.cycles_per_conversion >= 1, "ADC cycles_per_conversion must be >= 1");
  max_code_ = (1U << config.bits) - 1U;
}

std::uint32_t ColumnAdc::convert(float voltage) {
  ++conversions_;
  const float clamped = std::clamp(voltage, 0.0F, config_.full_scale);
  const float normalized = clamped / config_.full_scale;
  const auto code =
      static_cast<std::uint32_t>(std::lround(normalized * static_cast<float>(max_code_)));
  return std::min(code, max_code_);
}

}  // namespace snappix::sensor
