#include "sensor/pixel.h"

#include <algorithm>

namespace snappix::sensor {

void ApsPixel::expose(float electrons) {
  if (electrons < 0.0F) {
    electrons = 0.0F;
  }
  pd_electrons_ = std::min(pd_electrons_ + electrons, params_.full_well_electrons);
}

void ApsPixel::transfer() {
  fd_electrons_ = std::min(fd_electrons_ + pd_electrons_, params_.full_well_electrons);
  pd_electrons_ = 0.0F;
}

}  // namespace snappix::sensor
