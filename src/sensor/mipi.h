// MIPI CSI-2 link model: packetizes read-out rows into long packets
// (4-byte header + payload + 2-byte CRC footer) across one or more lanes.
#pragma once

#include <cstdint>

namespace snappix::sensor {

struct MipiConfig {
  int lanes = 1;
  double byte_clock_hz = 100e6;  // bytes/second per lane
  int header_bytes = 4;
  int footer_bytes = 2;
};

class MipiCsi2Link {
 public:
  explicit MipiCsi2Link(const MipiConfig& config);

  // Transmits one row of `payload_bytes`; returns bytes on the wire.
  std::uint64_t send_line(std::uint64_t payload_bytes);

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t payload_bytes() const { return payload_bytes_; }
  std::uint64_t packets() const { return packets_; }
  // Wire time in seconds given the lane count and byte clock.
  double transmit_seconds() const;
  const MipiConfig& config() const { return config_; }

 private:
  MipiConfig config_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t packets_ = 0;
};

}  // namespace snappix::sensor
