// MIPI CSI-2 link model: packetizes read-out rows into long packets
// (4-byte header + payload + 2-byte CRC footer) across one or more lanes.
//
// Two entry points share the accounting:
//   send_line(payload)          — the analytic sensor read-out path: wire
//                                 bytes = payload + header + footer.
//   send_packet(wire, payload)  — the framed-transport path (src/transport/):
//                                 the caller already built the packet bytes.
// Wire time follows the MOST-LOADED lane: each packet's bytes are striped
// round-robin starting at lane 0, so lane 0 carries ceil(bytes / lanes) of
// every packet and the packet is done only when lane 0 is. Summing that
// per-packet ceiling (rather than dividing the byte total by the lane count)
// is what keeps odd-sized payloads on multi-lane configs from being
// undercounted.
#pragma once

#include <array>
#include <cstdint>

namespace snappix::sensor {

struct MipiConfig {
  int lanes = 1;
  double byte_clock_hz = 100e6;  // bytes/second per lane
  int header_bytes = 4;
  int footer_bytes = 2;
};

class MipiCsi2Link {
 public:
  explicit MipiCsi2Link(const MipiConfig& config);

  // Transmits one row of `payload_bytes` (framing overhead added from the
  // config); returns bytes on the wire.
  std::uint64_t send_line(std::uint64_t payload_bytes);

  // Transmits one pre-framed packet of `wire_bytes` total, `payload_bytes` of
  // which are payload; returns `wire_bytes`.
  std::uint64_t send_packet(std::uint64_t wire_bytes, std::uint64_t payload_bytes);

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t payload_bytes() const { return payload_bytes_; }
  std::uint64_t packets() const { return packets_; }
  // Bytes carried by `lane` (round-robin striping, lane 0 first).
  std::uint64_t lane_bytes(int lane) const;
  // Wire time in seconds: the busiest lane's byte count (summed per packet)
  // over the per-lane byte clock.
  double transmit_seconds() const;
  const MipiConfig& config() const { return config_; }

 private:
  MipiConfig config_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t packets_ = 0;
  // Busiest-lane bytes, accumulated per packet (= sum of ceil(wire / lanes)).
  std::uint64_t busiest_lane_bytes_ = 0;
  std::array<std::uint64_t, 8> lane_bytes_{};
};

}  // namespace snappix::sensor
