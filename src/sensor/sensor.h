// StackedSensor: cycle-level simulator of the SNAPPIX CE image sensor.
//
// Executes the Sec. V control protocol per exposure slot:
//   1. stream the slot's CE bits into every tile's DFF chain (P pattern-clk
//      cycles, all tiles in parallel),
//   2. pulse pattern_reset (M6): pixels whose CE bit is 1 reset their PD,
//   3. power-gate the DFFs and expose for the slot duration,
//   4. re-stream the same bits, pulse pattern_transfer (M7): pixels whose CE
//      bit is 1 transfer PD charge to the accumulating FD,
//   5. power-gate the DFFs again.
// After all T slots, rows are read out through column-parallel ADCs and sent
// over the MIPI CSI-2 link. Functional equivalence to Eqn. 1 is established
// by tests; the cycle/byte accounting feeds the energy model of Sec. VI-D.
//
// Thread-safety: capture*() methods are const and re-entrant — all per-capture
// state (pixel array, DFF chains, activity counters) is thread-local, and only
// the last-capture stats snapshot is shared (behind a mutex). One StackedSensor
// may therefore be driven by several runtime camera threads concurrently, each
// with its own Rng; concurrent callers should take per-capture stats via the
// `stats_out` parameter rather than the shared stats() snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ce/pattern.h"
#include "sensor/adc.h"
#include "sensor/mipi.h"
#include "sensor/noise.h"
#include "sensor/pattern_memory.h"
#include "sensor/pixel.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix::sensor {

struct SensorConfig {
  std::int64_t height = 32;
  std::int64_t width = 32;
  // Scene intensity 1.0 maps to this many electrons in one exposure slot.
  float electrons_per_unit = 200.0F;
  double pattern_clk_hz = 20e6;  // paper: 20 MHz pattern stream clock
  double slot_exposure_s = 1.0 / 480.0;
  double row_time_s = 2e-6;  // read-out time per row (column-parallel ADC)
  PixelParams pixel;
  AdcConfig adc;
  MipiConfig mipi;
  NoiseConfig noise;
};

// Per-capture activity counters consumed by the energy/timing models.
struct CaptureStats {
  std::uint64_t pattern_bits_streamed = 0;  // per chain x chains
  std::uint64_t pattern_clk_cycles = 0;     // per-chain cycles (parallel chains)
  std::uint64_t pd_resets = 0;
  std::uint64_t charge_transfers = 0;
  std::uint64_t adc_conversions = 0;
  std::uint64_t mipi_bytes = 0;
  double exposure_time_s = 0.0;
  double pattern_time_s = 0.0;
  double readout_time_s = 0.0;
  double mipi_time_s = 0.0;
  double frame_time_s = 0.0;
};

class StackedSensor {
 public:
  // Copies `pattern` into sensor-owned storage.
  StackedSensor(const SensorConfig& config, const ce::CePattern& pattern);
  // Shares an existing pattern (no copy): a fleet of sensors programmed with
  // the same system pattern holds one CePattern instance between them.
  StackedSensor(const SensorConfig& config, std::shared_ptr<const ce::CePattern> pattern);

  // Captures one coded frame from a (T, H, W) scene with intensities in
  // [0, 1]. Returns the digital coded image (H, W) in ADC codes (floats).
  // `stats_out`, when non-null, receives THIS capture's counters — the
  // race-free way to consume stats when several threads share one sensor
  // (stats() only snapshots the most recently finished capture).
  Tensor capture(const Tensor& scene, Rng& rng, CaptureStats* stats_out = nullptr) const;

  // Conventional (non-CE) reference mode: captures the same scene as T
  // separate frames, each fully exposed, read out, and transmitted — the
  // baseline pipeline of Sec. VI-D. Returns (T, H, W) in ADC codes; stats
  // accumulate across all T read-outs, so comparing against capture() shows
  // the CE read-out/transmission reduction directly in simulation.
  Tensor capture_conventional(const Tensor& scene, Rng& rng,
                              CaptureStats* stats_out = nullptr) const;

  // Digital codes normalized back to scene units: code / code_per_unit().
  Tensor capture_normalized(const Tensor& scene, Rng& rng,
                            CaptureStats* stats_out = nullptr) const;

  // The ideal (noise-free, unquantized) Eqn.-1 output in ADC codes; used by
  // tests to bound simulator-vs-math divergence.
  Tensor ideal_codes(const Tensor& scene) const;

  // Digital code corresponding to one scene-intensity unit in one slot.
  float code_per_unit() const;

  // Snapshot of the most recent capture's activity counters (any thread).
  CaptureStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
  }
  const SensorConfig& config() const { return config_; }
  const ce::CePattern& pattern() const { return *pattern_; }
  const std::shared_ptr<const ce::CePattern>& pattern_ref() const { return pattern_; }
  std::int64_t tiles() const { return tiles_; }

 private:
  // Per-capture working state: thread-local so concurrent captures never
  // share pixels or DFF chains, cached so a camera thread pays the array
  // construction once, not per frame. The signature fields detect a thread
  // switching between sensors of different geometry/pixel parameters.
  struct CaptureState {
    std::vector<ApsPixel> pixels;       // row-major (H, W)
    std::vector<DffShiftChain> chains;  // one per tile, row-major tile grid
    CaptureStats stats;
    std::int64_t sig_height = -1;
    std::int64_t sig_width = -1;
    int sig_tile = -1;
    PixelParams sig_pixel;
  };
  // Returns this thread's state, (re)built if the signature changed, with
  // stats cleared. `with_chains` = false skips the DFF chains (conventional
  // mode has no pattern streaming to simulate).
  CaptureState& thread_capture_state(bool with_chains) const;
  void run_slot(int slot, const Tensor& scene, Rng& rng, CaptureState& state) const;
  void publish_stats(const CaptureStats& stats) const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_ = stats;
  }

  SensorConfig config_;
  std::shared_ptr<const ce::CePattern> pattern_;
  std::int64_t tiles_;
  mutable std::mutex stats_mutex_;
  mutable CaptureStats stats_;  // last-capture snapshot, guarded by stats_mutex_
};

}  // namespace snappix::sensor
