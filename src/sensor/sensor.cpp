#include "sensor/sensor.h"

#include <algorithm>
#include <cmath>

#include "ce/encode.h"
#include "util/common.h"

namespace snappix::sensor {

StackedSensor::StackedSensor(const SensorConfig& config, const ce::CePattern& pattern)
    : StackedSensor(config, std::make_shared<const ce::CePattern>(pattern)) {}

StackedSensor::StackedSensor(const SensorConfig& config,
                             std::shared_ptr<const ce::CePattern> pattern)
    : config_(config), pattern_(std::move(pattern)) {
  SNAPPIX_CHECK(pattern_ != nullptr, "sensor needs a CE pattern");
  SNAPPIX_CHECK(config.height > 0 && config.width > 0, "sensor dimensions must be positive");
  const int tile = pattern_->tile();
  SNAPPIX_CHECK(config.height % tile == 0 && config.width % tile == 0,
                "sensor " << config.height << "x" << config.width
                          << " not divisible by CE tile " << tile);
  SNAPPIX_CHECK(config.electrons_per_unit > 0.0F, "electrons_per_unit must be positive");
  tiles_ = (config.height / tile) * (config.width / tile);
}

StackedSensor::CaptureState& StackedSensor::thread_capture_state(bool with_chains) const {
  static thread_local CaptureState state;
  const int tile = pattern_->tile();
  const bool pixels_match =
      state.sig_height == config_.height && state.sig_width == config_.width &&
      state.sig_pixel.full_well_electrons == config_.pixel.full_well_electrons &&
      state.sig_pixel.conversion_gain == config_.pixel.conversion_gain;
  if (!pixels_match) {
    state.pixels.assign(static_cast<std::size_t>(config_.height * config_.width),
                        ApsPixel(config_.pixel));
    state.sig_height = config_.height;
    state.sig_width = config_.width;
    state.sig_pixel = config_.pixel;
    state.chains.clear();
    state.sig_tile = -1;
  }
  if (with_chains && (state.sig_tile != tile ||
                      state.chains.size() != static_cast<std::size_t>(tiles_))) {
    // Chain contents are fully overwritten by each load_slot(), so reuse only
    // needs matching geometry.
    state.chains.assign(static_cast<std::size_t>(tiles_), DffShiftChain(tile * tile));
    state.sig_tile = tile;
  }
  state.stats = CaptureStats{};
  return state;
}

float StackedSensor::code_per_unit() const {
  const ColumnAdc adc(config_.adc);
  return config_.electrons_per_unit * config_.pixel.conversion_gain /
         config_.adc.full_scale * static_cast<float>(adc.max_code());
}

void StackedSensor::run_slot(int slot, const Tensor& scene, Rng& rng,
                             CaptureState& state) const {
  const int tile = pattern_->tile();
  const std::int64_t h = config_.height;
  const std::int64_t w = config_.width;
  const std::int64_t tiles_x = w / tile;
  const auto slot_bits = pattern_->slot_bits(slot);
  const NoiseModel noise(config_.noise, h * w);
  auto& pixels = state.pixels;
  auto& chains = state.chains;
  auto& stats = state.stats;

  // Phase 1: stream the slot pattern into every chain (parallel across
  // chains; P cycles on the shared pattern clock).
  for (auto& chain : chains) {
    chain.load_slot(slot_bits);
  }
  stats.pattern_bits_streamed +=
      static_cast<std::uint64_t>(slot_bits.size()) * chains.size();
  stats.pattern_clk_cycles += static_cast<std::uint64_t>(slot_bits.size());
  stats.pattern_time_s +=
      static_cast<double>(slot_bits.size()) / config_.pattern_clk_hz;

  // Phase 2: pattern_reset pulse — CE bit 1 resets the PD via M1.
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const std::int64_t chain_idx = (y / tile) * tiles_x + (x / tile);
      const int dff_idx = static_cast<int>((y % tile) * tile + (x % tile));
      if (chains[static_cast<std::size_t>(chain_idx)].bit_at(dff_idx) != 0) {
        pixels[static_cast<std::size_t>(y * w + x)].reset_pd();
        ++stats.pd_resets;
      }
    }
  }
  for (auto& chain : chains) {
    chain.power_gate();
  }

  // Phase 3: exposure — every PD integrates the slot's light.
  const auto& ds = scene.data();
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const std::int64_t p = y * w + x;
      const float intensity =
          ds[static_cast<std::size_t>((static_cast<std::int64_t>(slot) * h + y) * w + x)];
      float electrons = intensity * config_.electrons_per_unit;
      electrons = noise.apply_exposure(p, electrons, config_.slot_exposure_s, rng);
      pixels[static_cast<std::size_t>(p)].expose(electrons);
    }
  }
  stats.exposure_time_s += config_.slot_exposure_s;

  // Phase 4: re-stream the same bits, then pattern_transfer pulse (M7).
  for (auto& chain : chains) {
    chain.load_slot(slot_bits);
  }
  stats.pattern_bits_streamed +=
      static_cast<std::uint64_t>(slot_bits.size()) * chains.size();
  stats.pattern_clk_cycles += static_cast<std::uint64_t>(slot_bits.size());
  stats.pattern_time_s +=
      static_cast<double>(slot_bits.size()) / config_.pattern_clk_hz;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const std::int64_t chain_idx = (y / tile) * tiles_x + (x / tile);
      const int dff_idx = static_cast<int>((y % tile) * tile + (x % tile));
      if (chains[static_cast<std::size_t>(chain_idx)].bit_at(dff_idx) != 0) {
        pixels[static_cast<std::size_t>(y * w + x)].transfer();
        ++stats.charge_transfers;
      }
    }
  }
  for (auto& chain : chains) {
    chain.power_gate();
  }
}

Tensor StackedSensor::capture(const Tensor& scene, Rng& rng, CaptureStats* stats_out) const {
  SNAPPIX_CHECK(scene.ndim() == 3, "capture expects a (T, H, W) scene, got "
                                       << scene.shape().to_string());
  SNAPPIX_CHECK(scene.shape()[0] == pattern_->slots() && scene.shape()[1] == config_.height &&
                    scene.shape()[2] == config_.width,
                "scene " << scene.shape().to_string() << " does not match sensor ("
                         << pattern_->slots() << ", " << config_.height << ", " << config_.width
                         << ")");
  CaptureState& state = thread_capture_state(/*with_chains=*/true);

  // Start of frame: clear every FD (M2) — PD state is cleared per-slot by M1.
  for (auto& pixel : state.pixels) {
    pixel.reset_fd();
    pixel.reset_pd();
  }

  for (int slot = 0; slot < pattern_->slots(); ++slot) {
    run_slot(slot, scene, rng, state);
  }

  // Read-out: row by row through column-parallel ADCs, then MIPI.
  const std::int64_t h = config_.height;
  const std::int64_t w = config_.width;
  const NoiseModel noise(config_.noise, h * w);
  ColumnAdc adc(config_.adc);
  MipiCsi2Link mipi(config_.mipi);
  std::vector<float> codes(static_cast<std::size_t>(h * w));
  const int bytes_per_pixel = (config_.adc.bits + 7) / 8;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const std::int64_t p = y * w + x;
      float voltage = state.pixels[static_cast<std::size_t>(p)].read();
      voltage = noise.apply_read(p, voltage, rng);
      codes[static_cast<std::size_t>(p)] = static_cast<float>(adc.convert(voltage));
    }
    mipi.send_line(static_cast<std::uint64_t>(w) * bytes_per_pixel);
  }
  state.stats.adc_conversions = adc.conversions();
  state.stats.mipi_bytes = mipi.total_bytes();
  state.stats.readout_time_s = static_cast<double>(h) * config_.row_time_s;
  state.stats.mipi_time_s = mipi.transmit_seconds();
  // exposure_time_s already accumulated once per slot in run_slot().
  state.stats.frame_time_s = state.stats.pattern_time_s + state.stats.exposure_time_s +
                             state.stats.readout_time_s + state.stats.mipi_time_s;
  publish_stats(state.stats);
  if (stats_out != nullptr) {
    *stats_out = state.stats;
  }
  return Tensor::from_vector(std::move(codes), Shape{h, w});
}

Tensor StackedSensor::capture_conventional(const Tensor& scene, Rng& rng,
                                           CaptureStats* stats_out) const {
  SNAPPIX_CHECK(scene.ndim() == 3 && scene.shape()[1] == config_.height &&
                    scene.shape()[2] == config_.width,
                "capture_conventional expects (T, " << config_.height << ", " << config_.width
                                                    << "), got " << scene.shape().to_string());
  const std::int64_t frames = scene.shape()[0];
  const std::int64_t h = config_.height;
  const std::int64_t w = config_.width;
  CaptureState& state = thread_capture_state(/*with_chains=*/false);
  const NoiseModel noise(config_.noise, h * w);
  ColumnAdc adc(config_.adc);
  MipiCsi2Link mipi(config_.mipi);
  const int bytes_per_pixel = (config_.adc.bits + 7) / 8;
  std::vector<float> codes(static_cast<std::size_t>(frames * h * w));
  const auto& ds = scene.data();
  for (std::int64_t t = 0; t < frames; ++t) {
    // Expose every pixel for the slot, then read the whole frame out.
    for (auto& pixel : state.pixels) {
      pixel.reset_fd();
      pixel.reset_pd();
    }
    for (std::int64_t p = 0; p < h * w; ++p) {
      float electrons = ds[static_cast<std::size_t>(t * h * w + p)] *
                        config_.electrons_per_unit;
      electrons = noise.apply_exposure(p, electrons, config_.slot_exposure_s, rng);
      state.pixels[static_cast<std::size_t>(p)].expose(electrons);
      state.pixels[static_cast<std::size_t>(p)].transfer();
    }
    state.stats.exposure_time_s += config_.slot_exposure_s;
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        const std::int64_t p = y * w + x;
        float voltage = state.pixels[static_cast<std::size_t>(p)].read();
        voltage = noise.apply_read(p, voltage, rng);
        codes[static_cast<std::size_t>(t * h * w + p)] =
            static_cast<float>(adc.convert(voltage));
      }
      mipi.send_line(static_cast<std::uint64_t>(w) * bytes_per_pixel);
    }
    state.stats.readout_time_s += static_cast<double>(h) * config_.row_time_s;
  }
  state.stats.adc_conversions = adc.conversions();
  state.stats.mipi_bytes = mipi.total_bytes();
  state.stats.mipi_time_s = mipi.transmit_seconds();
  state.stats.frame_time_s =
      state.stats.exposure_time_s + state.stats.readout_time_s + state.stats.mipi_time_s;
  publish_stats(state.stats);
  if (stats_out != nullptr) {
    *stats_out = state.stats;
  }
  return Tensor::from_vector(std::move(codes), Shape{frames, h, w});
}

Tensor StackedSensor::capture_normalized(const Tensor& scene, Rng& rng,
                                         CaptureStats* stats_out) const {
  Tensor codes = capture(scene, rng, stats_out);
  const float scale = 1.0F / code_per_unit();
  for (auto& v : codes.data()) {
    v *= scale;
  }
  return codes;
}

Tensor StackedSensor::ideal_codes(const Tensor& scene) const {
  NoGradGuard guard;
  const Tensor batched = Tensor::from_vector(
      scene.data(), Shape{1, scene.shape()[0], scene.shape()[1], scene.shape()[2]});
  Tensor coded = ce::ce_encode(batched, *pattern_);  // scene units
  const ColumnAdc adc(config_.adc);
  std::vector<float> out(coded.data().size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    // Same clamp + quantization as the ADC applies.
    const float electrons = std::min(coded.data()[i] * config_.electrons_per_unit,
                                     config_.pixel.full_well_electrons);
    const float voltage = electrons * config_.pixel.conversion_gain;
    const float normalized = std::clamp(voltage / config_.adc.full_scale, 0.0F, 1.0F);
    out[i] = std::round(normalized * static_cast<float>(adc.max_code()));
  }
  return Tensor::from_vector(std::move(out), Shape{config_.height, config_.width});
}

}  // namespace snappix::sensor
