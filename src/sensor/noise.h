// Sensor noise models: photon shot noise, read noise, dark current, and
// fixed-pattern noise (per-pixel gain/offset). All optional and seeded.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace snappix::sensor {

struct NoiseConfig {
  bool enabled = false;
  bool shot_noise = true;              // Poisson photon arrival
  float read_noise_electrons = 2.5F;   // Gaussian, applied at read-out
  float dark_current_e_per_s = 5.0F;   // accumulates during exposure
  float fpn_gain_sigma = 0.01F;        // per-pixel PRNU
  float fpn_offset_electrons = 1.0F;   // per-pixel DSNU
  std::uint64_t seed = 42;
};

class NoiseModel {
 public:
  NoiseModel(const NoiseConfig& config, std::int64_t num_pixels);

  // Electrons actually collected given ideal `electrons` arriving at `pixel`
  // over `exposure_s` seconds.
  float apply_exposure(std::int64_t pixel, float electrons, double exposure_s, Rng& rng) const;

  // Voltage perturbation at read-out time.
  float apply_read(std::int64_t pixel, float voltage, Rng& rng) const;

  bool enabled() const { return config_.enabled; }
  const NoiseConfig& config() const { return config_; }

 private:
  NoiseConfig config_;
  std::vector<float> fpn_gain_;
  std::vector<float> fpn_offset_;
};

}  // namespace snappix::sensor
