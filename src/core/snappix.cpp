#include "core/snappix.h"

#include <algorithm>
#include <cstdio>

#include "train/optimizer.h"
#include "util/common.h"

namespace snappix::core {

models::ViTConfig backbone_config(Backbone backbone, std::int64_t image,
                                  std::int64_t num_classes) {
  switch (backbone) {
    case Backbone::kSnapPixS:
      return models::ViTConfig::snappix_s(image, num_classes);
    case Backbone::kSnapPixB:
      return models::ViTConfig::snappix_b(image, num_classes);
  }
  SNAPPIX_CHECK(false, "unknown backbone");
}

SnapPixSystem::SnapPixSystem(const SnapPixConfig& config)
    : config_(config),
      rng_(config.seed),
      pattern_(std::make_shared<const ce::CePattern>(
          ce::CePattern::long_exposure(config.frames, config.tile))) {
  SNAPPIX_CHECK(config.image % config.tile == 0,
                "image " << config.image << " not divisible by tile " << config.tile);
  auto vit = backbone_config(config.backbone, config.image, config.num_classes);
  SNAPPIX_CHECK(vit.patch == config.tile,
                "ViT patch " << vit.patch << " must equal CE tile " << config.tile
                             << " (paper Sec. IV)");
  encoder_ = std::make_shared<models::ViTEncoder>(vit, rng_);
  classifier_ = std::make_shared<models::SnapPixClassifier>(encoder_, rng_);
  reconstructor_ =
      std::make_shared<models::SnapPixReconstructor>(encoder_, config.frames, rng_);
}

train::PatternTrainResult SnapPixSystem::learn_pattern(
    const data::VideoDataset& dataset, train::PatternTrainConfig pattern_config) {
  pattern_config.tile = config_.tile;
  auto result = train::learn_decorrelated_pattern(dataset, pattern_config);
  pattern_ = std::make_shared<const ce::CePattern>(result.pattern);
  return result;
}

void SnapPixSystem::set_pattern(const ce::CePattern& pattern) {
  SNAPPIX_CHECK(pattern.tile() == config_.tile && pattern.slots() == config_.frames,
                "pattern (" << pattern.slots() << " slots, tile " << pattern.tile()
                            << ") does not match system (" << config_.frames << ", "
                            << config_.tile << ")");
  pattern_ = std::make_shared<const ce::CePattern>(pattern);
}

Tensor SnapPixSystem::normalized_input(const Tensor& coded) const {
  // Sec. IV: "each pixel value is normalized by the number of exposure slots".
  return ce::normalize_by_exposure(coded, *pattern_);
}

Tensor SnapPixSystem::encode(const Tensor& videos) const {
  NoGradGuard guard;
  return normalized_input(ce::ce_encode(videos, *pattern_));
}

float SnapPixSystem::pretrain(const data::VideoDataset& dataset, int epochs, float lr,
                              int batch_size, bool verbose, models::MaeConfig mae_config) {
  SNAPPIX_CHECK(epochs > 0 && batch_size > 0, "bad pretrain parameters");
  Rng init_rng(config_.seed + 17);
  models::CodedMae mae(encoder_, config_.frames, mae_config, init_rng);
  train::AdamW optimizer(mae.parameters(), lr);
  Rng rng(config_.seed + 29);
  float final_loss = 0.0F;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    float epoch_loss = 0.0F;
    int batches = 0;
    const auto order = dataset.shuffled_train_indices(rng);
    for (std::size_t begin = 0; begin < order.size();
         begin += static_cast<std::size_t>(batch_size)) {
      const std::size_t end =
          std::min(order.size(), begin + static_cast<std::size_t>(batch_size));
      const std::vector<std::int64_t> indices(order.begin() + static_cast<std::ptrdiff_t>(begin),
                                              order.begin() + static_cast<std::ptrdiff_t>(end));
      std::vector<std::int64_t> labels;
      const Tensor videos = dataset.train_batch(indices, labels);
      const Tensor coded = encode(videos);
      optimizer.zero_grad();
      Tensor loss = mae.pretrain_loss(coded, videos, rng);
      loss.backward();
      optimizer.step();
      epoch_loss += loss.item();
      ++batches;
    }
    final_loss = epoch_loss / static_cast<float>(std::max(batches, 1));
    if (verbose) {
      std::printf("  pretrain epoch %2d/%d  mse %.5f\n", epoch + 1, epochs,
                  static_cast<double>(final_loss));
    }
  }
  return final_loss;
}

train::FitResult SnapPixSystem::train_action_recognition(const data::VideoDataset& dataset,
                                                         const train::TrainConfig& config) {
  auto forward = [this](const Tensor& input) { return classifier_->forward(input); };
  auto transform = [this](const Tensor& videos) { return encode(videos); };
  return train::fit_classifier(classifier_->parameters(), forward, dataset, transform, config);
}

train::FitResult SnapPixSystem::train_reconstruction(const data::VideoDataset& dataset,
                                                     const train::TrainConfig& config) {
  auto forward = [this](const Tensor& input) { return reconstructor_->forward(input); };
  auto transform = [this](const Tensor& videos) { return encode(videos); };
  return train::fit_reconstructor(reconstructor_->parameters(), forward, dataset, transform,
                                  config);
}

Tensor SnapPixSystem::classify_logits(const Tensor& videos) const {
  NoGradGuard guard;
  return classifier_->forward(encode(videos));
}

std::vector<std::int64_t> SnapPixSystem::classify(const Tensor& videos) const {
  return argmax_last_axis(classify_logits(videos));
}

Tensor SnapPixSystem::reconstruct(const Tensor& videos) const {
  NoGradGuard guard;
  return reconstructor_->forward(encode(videos));
}

Tensor SnapPixSystem::classify_logits_coded(const Tensor& coded_normalized) const {
  NoGradGuard guard;
  SNAPPIX_CHECK(coded_normalized.ndim() == 3, "expected (B, H, W) coded images, got "
                                                  << coded_normalized.shape().to_string());
  return classifier_->forward(coded_normalized);
}

std::vector<std::int64_t> SnapPixSystem::classify_coded(const Tensor& coded_normalized) const {
  return argmax_last_axis(classify_logits_coded(coded_normalized));
}

Tensor SnapPixSystem::reconstruct_coded(const Tensor& coded_normalized) const {
  NoGradGuard guard;
  SNAPPIX_CHECK(coded_normalized.ndim() == 3, "expected (B, H, W) coded images, got "
                                                  << coded_normalized.shape().to_string());
  return reconstructor_->forward(coded_normalized);
}

std::int64_t SnapPixSystem::classify_via_sensor(const Tensor& scene,
                                                const sensor::StackedSensor& sensor,
                                                Rng& rng) const {
  NoGradGuard guard;
  SNAPPIX_CHECK(sensor.pattern() == *pattern_,
                "sensor is programmed with a different CE pattern than the system");
  const Tensor coded = sensor.capture_normalized(scene, rng);  // (H, W) in scene units
  const Tensor batched = Tensor::from_vector(coded.data(),
                                             Shape{1, coded.shape()[0], coded.shape()[1]});
  const Tensor logits = classifier_->forward(normalized_input(batched));
  return argmax_last_axis(logits)[0];
}

sensor::SensorConfig SnapPixSystem::default_sensor_config() const {
  sensor::SensorConfig cfg;
  cfg.height = config_.image;
  cfg.width = config_.image;
  // Scale full-scale so a fully-exposed bright pixel (T slots at 1.0) spans
  // the ADC range without clipping.
  cfg.adc.full_scale = cfg.electrons_per_unit * static_cast<float>(config_.frames);
  cfg.pixel.full_well_electrons = cfg.adc.full_scale;
  return cfg;
}

}  // namespace snappix::core
