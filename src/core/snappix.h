// SnapPixSystem: the end-to-end SNAPPIX pipeline (paper Fig. 4).
//
//   sensor side: tile-repetitive CE pattern learned by decorrelation
//                (Sec. III) applied in the analog domain (Sec. V simulator)
//   server side: CE-optimized ViT (Sec. IV) pre-trained coded-image-to-video
//                and fine-tuned per task (AR classification / REC).
//
// This facade owns the pattern, the encoder, and the task heads, and exposes
// the full train/infer lifecycle plus a sensor-in-the-loop path that runs the
// cycle-level hardware simulator instead of the mathematical encoder.
#pragma once

#include <memory>
#include <vector>

#include "ce/encode.h"
#include "ce/pattern.h"
#include "data/dataset.h"
#include "models/mae.h"
#include "models/vit.h"
#include "sensor/sensor.h"
#include "train/pattern_trainer.h"
#include "train/trainer.h"

namespace snappix::core {

enum class Backbone { kSnapPixS, kSnapPixB };

struct SnapPixConfig {
  std::int64_t image = 32;
  int frames = 16;
  int tile = 8;  // CE tile == ViT patch (Sec. IV)
  Backbone backbone = Backbone::kSnapPixS;
  std::int64_t num_classes = 10;
  std::uint64_t seed = 1;
};

class SnapPixSystem {
 public:
  explicit SnapPixSystem(const SnapPixConfig& config);

  // --- pattern (Sec. III) ----------------------------------------------------
  // Learns the decorrelated task-agnostic pattern on `dataset`.
  train::PatternTrainResult learn_pattern(const data::VideoDataset& dataset,
                                          train::PatternTrainConfig pattern_config = {});
  void set_pattern(const ce::CePattern& pattern);
  const ce::CePattern& pattern() const { return *pattern_; }
  // Shared handle to the system pattern: cameras/sensors programmed with the
  // system default hold this one instance instead of per-camera copies.
  // set_pattern()/learn_pattern() install a NEW instance (copy-on-write), so
  // handles taken earlier keep observing the pattern they were built with.
  const std::shared_ptr<const ce::CePattern>& pattern_ref() const { return pattern_; }
  // Stable content hash of the current pattern (CePattern::hash()) — the
  // `pattern_id` frames carry through the serving runtime.
  std::uint64_t pattern_hash() const { return pattern_->hash(); }

  // --- encoding ---------------------------------------------------------------
  // (B, T, H, W) videos -> exposure-normalized coded images (B, H, W).
  Tensor encode(const Tensor& videos) const;

  // --- training (Sec. IV) -----------------------------------------------------
  // MAE-style coded-image-to-video pre-training; returns final loss. The
  // paper masks 85% of tiles at 196 tokens; at small token counts the mask
  // ratio must leave enough visible context (default keeps half the tiles).
  float pretrain(const data::VideoDataset& dataset, int epochs, float lr = 1e-3F,
                 int batch_size = 16, bool verbose = false,
                 models::MaeConfig mae_config = default_mae_config());

  // Mask ratio 0.5 at our 16-token geometry ~ the paper's 85% at 196 tokens
  // in terms of visible-context tokens.
  static models::MaeConfig default_mae_config() {
    models::MaeConfig config;
    config.mask_ratio = 0.5F;
    return config;
  }
  // Fine-tunes (or trains from scratch) the AR head; returns fit metrics.
  train::FitResult train_action_recognition(const data::VideoDataset& dataset,
                                            const train::TrainConfig& config);
  // Trains the REC head; test metric is PSNR (dB).
  train::FitResult train_reconstruction(const data::VideoDataset& dataset,
                                        const train::TrainConfig& config);

  // --- inference ----------------------------------------------------------------
  std::vector<std::int64_t> classify(const Tensor& videos) const;
  Tensor classify_logits(const Tensor& videos) const;
  Tensor reconstruct(const Tensor& videos) const;

  // --- batched serving entry points (src/runtime/) ------------------------------
  // Frames arriving from remote CE sensors are already coded; these skip the
  // encoder and run the server-side model on exposure-normalized coded images
  // (B, H, W) coalesced across cameras. All per-sample math is independent of
  // the batch it rides in, so batched logits are bit-identical to batch-1.
  Tensor classify_logits_coded(const Tensor& coded_normalized) const;
  std::vector<std::int64_t> classify_coded(const Tensor& coded_normalized) const;
  Tensor reconstruct_coded(const Tensor& coded_normalized) const;

  // Sensor-in-the-loop: captures one (T, H, W) scene on the cycle-level
  // simulator, then classifies the captured coded image.
  std::int64_t classify_via_sensor(const Tensor& scene, const sensor::StackedSensor& sensor,
                                   Rng& rng) const;

  const SnapPixConfig& config() const { return config_; }
  std::shared_ptr<models::ViTEncoder> encoder() { return encoder_; }
  std::shared_ptr<models::SnapPixClassifier> classifier() { return classifier_; }
  std::shared_ptr<models::SnapPixReconstructor> reconstructor() { return reconstructor_; }
  std::shared_ptr<const models::ViTEncoder> encoder() const { return encoder_; }
  std::shared_ptr<const models::SnapPixClassifier> classifier() const { return classifier_; }
  std::shared_ptr<const models::SnapPixReconstructor> reconstructor() const {
    return reconstructor_;
  }

  // A sensor configuration matched to this system's geometry.
  sensor::SensorConfig default_sensor_config() const;

 private:
  Tensor normalized_input(const Tensor& coded) const;

  SnapPixConfig config_;
  Rng rng_;
  std::shared_ptr<const ce::CePattern> pattern_;
  std::shared_ptr<models::ViTEncoder> encoder_;
  std::shared_ptr<models::SnapPixClassifier> classifier_;
  std::shared_ptr<models::SnapPixReconstructor> reconstructor_;
};

// The ViT configuration used by a backbone choice.
models::ViTConfig backbone_config(Backbone backbone, std::int64_t image,
                                  std::int64_t num_classes);

}  // namespace snappix::core
