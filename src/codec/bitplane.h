// Bit-plane entropy codec for coded measurements: the entropy-coded wire tier.
//
// The framed transport used to ship coded frames as raw float32 rows; this
// codec replaces those rows with a quantized, entropy-coded, *truncatable*
// plane stream:
//
//   quantize_frame()    per-frame scale to int16 (scale = max|x| / 32767,
//                       dequantized value = q * scale)
//   encode_bitplanes()  ICER-style bit-plane passes over the magnitudes,
//                       MSB first: a significance bit per not-yet-significant
//                       coefficient (context = number of significant causal
//                       neighbors), a sign bit on first significance, and a
//                       refinement bit per already-significant coefficient.
//                       Bits go through an adaptive binary range coder
//                       (LZMA-style, 11-bit probabilities); each plane is
//                       flushed into its own byte-aligned chunk so the stream
//                       can be cut at any plane boundary.
//   decode_bitplanes()  decodes the first d chunks and zero-fills the
//                       undecoded low bits. Per-coefficient error is monotone
//                       non-increasing in d, and decoding every plane
//                       reproduces the int16 values exactly — so the full-
//                       depth framed path is bit-identical to
//                       dequantize_frame(quantize_frame(x)) computed in
//                       memory.
//
// Probability contexts persist across planes (the decoder replays them in
// lockstep), which is safe because decode is always a strict MSB-first
// prefix. The wire header produced by serialize_stream_header() is validated
// structurally on parse; payload integrity on a real link is the CSI-2
// CRC's job (transport/csi2.h), but the decoder is also safe on arbitrary
// bytes: every read is bounds-checked and a chunk that overruns its bytes
// ends the decode at that plane instead of invoking UB.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace snappix::codec {

// int16 magnitudes fit 15 bits, so a stream never has more planes than this.
constexpr int kMaxBitplanes = 15;

struct QuantizedFrame {
  float scale = 0.0F;  // dequantized value = q * scale; 0 for an all-zero frame
  std::int64_t height = 0;
  std::int64_t width = 0;
  std::vector<std::int16_t> values;  // row-major, height * width entries
};

// Per-frame scale quantization: scale = max|x| / 32767, q = round(x / scale)
// clamped to [-32767, 32767]. Requires a (H, W) tensor.
QuantizedFrame quantize_frame(const Tensor& coded);
Tensor dequantize_frame(const QuantizedFrame& frame);

// An encoded frame: geometry + scale + MSB-first plane chunks. `plane_count`
// is the full bit depth of the frame's magnitudes; `planes` may hold fewer
// chunks than that when the transmit side truncates the stream.
struct PlaneStream {
  float scale = 0.0F;
  std::uint16_t height = 0;
  std::uint16_t width = 0;
  std::uint8_t plane_count = 0;
  std::vector<std::vector<std::uint8_t>> planes;  // MSB first

  std::uint64_t payload_bytes() const;
};

// Encodes the top min(max_planes, full depth) planes (0 = every plane).
// plane_count always reports the full depth so a truncated stream still
// knows what it was cut from.
PlaneStream encode_bitplanes(const QuantizedFrame& frame, int max_planes = 0);

// Wire header: magic "SX", version, plane count, geometry, scale bits.
constexpr std::size_t kStreamHeaderBytes = 12;
std::array<std::uint8_t, kStreamHeaderBytes> serialize_stream_header(
    const PlaneStream& stream);
// Parses and structurally validates a header (magic, version, plane count
// <= kMaxBitplanes, nonzero geometry, finite non-negative scale). On success
// fills scale / geometry / plane_count and returns true; `out.planes` is
// left untouched. Never reads past `size`.
bool parse_stream_header(const std::uint8_t* data, std::size_t size,
                         PlaneStream& out);

struct BitplaneDecode {
  int decoded_planes = 0;  // consecutive MSB chunks that decoded cleanly
  QuantizedFrame frame;    // partial magnitudes, undecoded low bits zero
};

// Decodes up to `max_planes` chunks (0 = all present). Stops early at a
// chunk that is too short to hold a range-coder stream or that overruns its
// bytes; everything decoded before the bad chunk is kept.
BitplaneDecode decode_bitplanes(const PlaneStream& stream, int max_planes = 0);

}  // namespace snappix::codec
