#include "codec/bitplane.h"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace snappix::codec {
namespace {

// --- adaptive binary range coder (LZMA-style) --------------------------------
//
// 11-bit probabilities, shift-5 adaptation, 32-bit range with byte-wise
// renormalization and carry propagation through a cache byte. Encoder and
// decoder update `prob` identically, so they stay in lockstep by
// construction.

constexpr std::uint32_t kProbBits = 11;
constexpr std::uint16_t kProbOne = 1U << kProbBits;
constexpr std::uint16_t kProbInit = kProbOne / 2;
constexpr int kAdaptShift = 5;
constexpr std::uint32_t kTopValue = 1U << 24;

// A range-coder stream is never shorter than its 5 flush bytes; a chunk
// below this cannot be decoded at all.
constexpr std::size_t kMinChunkBytes = 5;

class RangeEncoder {
 public:
  explicit RangeEncoder(std::vector<std::uint8_t>& out) : out_(out) {}

  void encode(std::uint16_t& prob, int bit) {
    const std::uint32_t bound = (range_ >> kProbBits) * prob;
    if (bit == 0) {
      range_ = bound;
      prob = static_cast<std::uint16_t>(prob + ((kProbOne - prob) >> kAdaptShift));
    } else {
      low_ += bound;
      range_ -= bound;
      prob = static_cast<std::uint16_t>(prob - (prob >> kAdaptShift));
    }
    while (range_ < kTopValue) {
      range_ <<= 8;
      shift_low();
    }
  }

  void flush() {
    for (int i = 0; i < 5; ++i) {
      shift_low();
    }
  }

 private:
  void shift_low() {
    if (static_cast<std::uint32_t>(low_) < 0xFF000000U || (low_ >> 32) != 0) {
      std::uint8_t byte = cache_;
      do {
        out_.push_back(static_cast<std::uint8_t>(byte + static_cast<std::uint8_t>(low_ >> 32)));
        byte = 0xFF;
      } while (--cache_size_ != 0);
      cache_ = static_cast<std::uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ & 0x00FFFFFFULL) << 8;
  }

  std::vector<std::uint8_t>& out_;
  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFU;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
};

class RangeDecoder {
 public:
  RangeDecoder(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {
    next_byte();  // the encoder's initial cache byte, always skipped
    for (int i = 0; i < 4; ++i) {
      code_ = (code_ << 8) | next_byte();
    }
  }

  int decode(std::uint16_t& prob) {
    const std::uint32_t bound = (range_ >> kProbBits) * prob;
    int bit;
    if (code_ < bound) {
      range_ = bound;
      prob = static_cast<std::uint16_t>(prob + ((kProbOne - prob) >> kAdaptShift));
      bit = 0;
    } else {
      code_ -= bound;
      range_ -= bound;
      prob = static_cast<std::uint16_t>(prob - (prob >> kAdaptShift));
      bit = 1;
    }
    while (range_ < kTopValue) {
      range_ <<= 8;
      code_ = (code_ << 8) | next_byte();
    }
    return bit;
  }

  bool overran() const { return overran_; }

 private:
  // Past-end reads hand back zeros and raise the overrun flag instead of
  // touching memory: a truncated or corrupt chunk decodes to garbage that
  // the caller then discards, never to UB.
  std::uint32_t next_byte() {
    if (pos_ >= size_) {
      overran_ = true;
      return 0;
    }
    return data_[pos_++];
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint32_t code_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFU;
  bool overran_ = false;
};

// --- bit-plane pass state ----------------------------------------------------

// Adaptive contexts shared by every plane of one frame: significance keyed by
// how many causal neighbors (left, above) are already significant, one sign
// context, one refinement context.
struct Contexts {
  std::uint16_t significance[3] = {kProbInit, kProbInit, kProbInit};
  std::uint16_t sign = kProbInit;
  std::uint16_t refinement = kProbInit;
};

int magnitude_plane_count(const std::vector<std::uint16_t>& mag) {
  std::uint16_t top = 0;
  for (const std::uint16_t m : mag) {
    top = m > top ? m : top;
  }
  int planes = 0;
  while (top != 0) {
    ++planes;
    top = static_cast<std::uint16_t>(top >> 1);
  }
  return planes;
}

}  // namespace

// --- quantization ------------------------------------------------------------

QuantizedFrame quantize_frame(const Tensor& coded) {
  if (!coded.defined() || coded.ndim() != 2) {
    throw std::runtime_error("quantize_frame: expected a (H, W) tensor");
  }
  QuantizedFrame frame;
  frame.height = coded.shape()[0];
  frame.width = coded.shape()[1];
  const std::vector<float>& data = coded.data();

  float max_abs = 0.0F;
  for (const float x : data) {
    if (!std::isfinite(x)) {
      throw std::runtime_error("quantize_frame: non-finite coded measurement");
    }
    const float a = std::fabs(x);
    max_abs = a > max_abs ? a : max_abs;
  }
  frame.values.resize(data.size(), 0);
  if (max_abs == 0.0F) {
    frame.scale = 0.0F;
    return frame;
  }
  frame.scale = max_abs / 32767.0F;
  for (std::size_t i = 0; i < data.size(); ++i) {
    long q = std::lround(data[i] / frame.scale);
    q = q > 32767 ? 32767 : q;
    q = q < -32767 ? -32767 : q;
    frame.values[i] = static_cast<std::int16_t>(q);
  }
  return frame;
}

Tensor dequantize_frame(const QuantizedFrame& frame) {
  std::vector<float> data(frame.values.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(frame.values[i]) * frame.scale;
  }
  return Tensor::from_vector(std::move(data), Shape{frame.height, frame.width});
}

// --- stream header -----------------------------------------------------------

std::uint64_t PlaneStream::payload_bytes() const {
  std::uint64_t total = 0;
  for (const std::vector<std::uint8_t>& plane : planes) {
    total += plane.size();
  }
  return total;
}

std::array<std::uint8_t, kStreamHeaderBytes> serialize_stream_header(
    const PlaneStream& stream) {
  std::array<std::uint8_t, kStreamHeaderBytes> header{};
  header[0] = 'S';
  header[1] = 'X';
  header[2] = 1;  // version
  header[3] = stream.plane_count;
  header[4] = static_cast<std::uint8_t>(stream.height & 0xFF);
  header[5] = static_cast<std::uint8_t>(stream.height >> 8);
  header[6] = static_cast<std::uint8_t>(stream.width & 0xFF);
  header[7] = static_cast<std::uint8_t>(stream.width >> 8);
  std::uint32_t scale_bits = 0;
  std::memcpy(&scale_bits, &stream.scale, sizeof(scale_bits));
  header[8] = static_cast<std::uint8_t>(scale_bits & 0xFF);
  header[9] = static_cast<std::uint8_t>((scale_bits >> 8) & 0xFF);
  header[10] = static_cast<std::uint8_t>((scale_bits >> 16) & 0xFF);
  header[11] = static_cast<std::uint8_t>((scale_bits >> 24) & 0xFF);
  return header;
}

bool parse_stream_header(const std::uint8_t* data, std::size_t size,
                         PlaneStream& out) {
  if (data == nullptr || size < kStreamHeaderBytes) {
    return false;
  }
  if (data[0] != 'S' || data[1] != 'X' || data[2] != 1) {
    return false;
  }
  const std::uint8_t plane_count = data[3];
  if (plane_count > kMaxBitplanes) {
    return false;
  }
  const std::uint16_t height =
      static_cast<std::uint16_t>(data[4] | (static_cast<std::uint16_t>(data[5]) << 8));
  const std::uint16_t width =
      static_cast<std::uint16_t>(data[6] | (static_cast<std::uint16_t>(data[7]) << 8));
  if (height == 0 || width == 0) {
    return false;
  }
  std::uint32_t scale_bits = static_cast<std::uint32_t>(data[8]) |
                             (static_cast<std::uint32_t>(data[9]) << 8) |
                             (static_cast<std::uint32_t>(data[10]) << 16) |
                             (static_cast<std::uint32_t>(data[11]) << 24);
  float scale = 0.0F;
  std::memcpy(&scale, &scale_bits, sizeof(scale));
  if (!std::isfinite(scale) || scale < 0.0F) {
    return false;
  }
  if ((plane_count > 0) != (scale > 0.0F)) {
    return false;  // nonzero planes need a nonzero scale and vice versa
  }
  out.scale = scale;
  out.height = height;
  out.width = width;
  out.plane_count = plane_count;
  return true;
}

// --- encode ------------------------------------------------------------------

PlaneStream encode_bitplanes(const QuantizedFrame& frame, int max_planes) {
  if (frame.height <= 0 || frame.width <= 0 || frame.height > 0xFFFF ||
      frame.width > 0xFFFF ||
      frame.values.size() !=
          static_cast<std::size_t>(frame.height * frame.width)) {
    throw std::runtime_error("encode_bitplanes: bad frame geometry");
  }
  if (max_planes < 0) {
    throw std::runtime_error("encode_bitplanes: max_planes must be >= 0");
  }

  const std::size_t n = frame.values.size();
  std::vector<std::uint16_t> mag(n);
  std::vector<std::uint8_t> negative(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int v = frame.values[i];
    mag[i] = static_cast<std::uint16_t>(v < 0 ? -v : v);
    negative[i] = v < 0 ? 1 : 0;
  }

  PlaneStream stream;
  stream.scale = frame.scale;
  stream.height = static_cast<std::uint16_t>(frame.height);
  stream.width = static_cast<std::uint16_t>(frame.width);
  stream.plane_count = static_cast<std::uint8_t>(magnitude_plane_count(mag));

  const int chunks = max_planes == 0
                         ? stream.plane_count
                         : (max_planes < stream.plane_count ? max_planes
                                                            : stream.plane_count);
  Contexts ctx;
  std::vector<std::uint8_t> significant(n, 0);
  const std::size_t width = static_cast<std::size_t>(frame.width);
  for (int j = 0; j < chunks; ++j) {
    const int bitpos = stream.plane_count - 1 - j;
    std::vector<std::uint8_t> chunk;
    RangeEncoder encoder(chunk);
    for (std::size_t i = 0; i < n; ++i) {
      const int bit = (mag[i] >> bitpos) & 1;
      if (significant[i] != 0) {
        encoder.encode(ctx.refinement, bit);
        continue;
      }
      const std::size_t col = i % width;
      int neighbors = 0;
      neighbors += (col > 0 && significant[i - 1] != 0) ? 1 : 0;
      neighbors += (i >= width && significant[i - width] != 0) ? 1 : 0;
      encoder.encode(ctx.significance[neighbors], bit);
      if (bit != 0) {
        encoder.encode(ctx.sign, negative[i]);
        significant[i] = 1;
      }
    }
    encoder.flush();
    stream.planes.push_back(std::move(chunk));
  }
  return stream;
}

// --- decode ------------------------------------------------------------------

BitplaneDecode decode_bitplanes(const PlaneStream& stream, int max_planes) {
  if (stream.height == 0 || stream.width == 0) {
    throw std::runtime_error("decode_bitplanes: bad stream geometry");
  }
  if (max_planes < 0) {
    throw std::runtime_error("decode_bitplanes: max_planes must be >= 0");
  }

  BitplaneDecode result;
  result.frame.scale = stream.scale;
  result.frame.height = stream.height;
  result.frame.width = stream.width;

  const std::size_t n =
      static_cast<std::size_t>(stream.height) * static_cast<std::size_t>(stream.width);
  std::vector<std::uint16_t> mag(n, 0);
  std::vector<std::uint8_t> negative(n, 0);
  std::vector<std::uint8_t> significant(n, 0);
  Contexts ctx;

  std::size_t available = stream.planes.size();
  if (available > stream.plane_count) {
    available = stream.plane_count;  // chunks beyond the full depth are noise
  }
  std::size_t want = available;
  if (max_planes != 0 && static_cast<std::size_t>(max_planes) < want) {
    want = static_cast<std::size_t>(max_planes);
  }

  const std::size_t width = stream.width;
  for (std::size_t j = 0; j < want; ++j) {
    const std::vector<std::uint8_t>& chunk = stream.planes[j];
    if (chunk.size() < kMinChunkBytes) {
      break;  // cannot even hold the coder's flush tail
    }
    // Stage the plane so a chunk that overruns its bytes can be discarded
    // whole: partially applied garbage must not leak into the output.
    std::vector<std::uint16_t> mag_stage = mag;
    std::vector<std::uint8_t> negative_stage = negative;
    std::vector<std::uint8_t> significant_stage = significant;
    Contexts ctx_stage = ctx;

    const int bitpos = static_cast<int>(stream.plane_count) - 1 - static_cast<int>(j);
    RangeDecoder decoder(chunk.data(), chunk.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (significant_stage[i] != 0) {
        const int bit = decoder.decode(ctx_stage.refinement);
        mag_stage[i] = static_cast<std::uint16_t>(mag_stage[i] | (bit << bitpos));
        continue;
      }
      const std::size_t col = i % width;
      int neighbors = 0;
      neighbors += (col > 0 && significant_stage[i - 1] != 0) ? 1 : 0;
      neighbors += (i >= width && significant_stage[i - width] != 0) ? 1 : 0;
      const int bit = decoder.decode(ctx_stage.significance[neighbors]);
      if (bit != 0) {
        mag_stage[i] = static_cast<std::uint16_t>(mag_stage[i] | (1U << bitpos));
        negative_stage[i] = static_cast<std::uint8_t>(decoder.decode(ctx_stage.sign));
        significant_stage[i] = 1;
      }
    }
    if (decoder.overran()) {
      break;
    }
    mag = std::move(mag_stage);
    negative = std::move(negative_stage);
    significant = std::move(significant_stage);
    ctx = ctx_stage;
    ++result.decoded_planes;
  }

  result.frame.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int m = mag[i];
    result.frame.values[i] = static_cast<std::int16_t>(negative[i] != 0 ? -m : m);
  }
  return result;
}

}  // namespace snappix::codec
