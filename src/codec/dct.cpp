#include "codec/dct.h"

#include <algorithm>
#include <cmath>

#include "eval/metrics.h"
#include "util/common.h"

namespace snappix::codec {

namespace {

constexpr float kPi = 3.14159265358979323846F;

// Standard JPEG luminance quantization table (Annex K).
constexpr int kQuantTable[kBlock * kBlock] = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

// Zigzag scan order of an 8x8 block.
constexpr int kZigzag[kBlock * kBlock] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,   //
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,  //
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,  //
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

// DCT basis cache: cos((2x+1) u pi / 16) with orthonormal scale factors.
struct DctBasis {
  float c[kBlock][kBlock];  // c[u][x]
  DctBasis() {
    for (int u = 0; u < kBlock; ++u) {
      const float alpha =
          u == 0 ? std::sqrt(1.0F / kBlock) : std::sqrt(2.0F / kBlock);
      for (int x = 0; x < kBlock; ++x) {
        c[u][x] = alpha * std::cos((2.0F * x + 1.0F) * u * kPi / (2.0F * kBlock));
      }
    }
  }
};
const DctBasis& basis() {
  static const DctBasis b;
  return b;
}

int scaled_quant(int index, int quality) {
  // libjpeg quality scaling.
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  const int q = (kQuantTable[index] * scale + 50) / 100;
  return std::clamp(q, 1, 255);
}

}  // namespace

int magnitude_bits(int value) {
  // std::abs(INT_MIN) is UB; the unsigned negation is defined for every int
  // and yields the right magnitude (0x80000000 -> 32 bits).
  unsigned v = value < 0 ? 0U - static_cast<unsigned>(value)
                         : static_cast<unsigned>(value);
  int bits = 0;
  while (v != 0U) {
    ++bits;
    v >>= 1U;
  }
  return bits;
}

std::int64_t estimate_block_bits(const int quantized[kBlock * kBlock], int prev_dc) {
  // DC: differential category code (~4 bits of Huffman) + offset bits.
  std::int64_t bits = 4 + magnitude_bits(quantized[0] - prev_dc);
  // AC in zigzag order: a run/size code (~4 bits) + magnitude bits per
  // nonzero. JPEG's run field holds at most 15, so every full run of 16
  // zeros before a nonzero needs a ZRL symbol (11 bits in the Annex K
  // luminance AC table); EOB (4 bits) is spent only when zeros trail the
  // last nonzero coefficient.
  int run = 0;
  for (int i = 1; i < kBlock * kBlock; ++i) {
    const int v = quantized[kZigzag[i]];
    if (v == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      bits += 11;
      run -= 16;
    }
    bits += 4 + magnitude_bits(v);
    run = 0;
  }
  if (run > 0) {
    bits += 4;  // EOB
  }
  return bits;
}

void dct_8x8(const float* input, float* output) {
  const auto& b = basis();
  // Separable: rows then columns.
  float tmp[kBlock * kBlock];
  for (int y = 0; y < kBlock; ++y) {
    for (int u = 0; u < kBlock; ++u) {
      float acc = 0.0F;
      for (int x = 0; x < kBlock; ++x) {
        acc += input[y * kBlock + x] * b.c[u][x];
      }
      tmp[y * kBlock + u] = acc;
    }
  }
  for (int u = 0; u < kBlock; ++u) {
    for (int v = 0; v < kBlock; ++v) {
      float acc = 0.0F;
      for (int y = 0; y < kBlock; ++y) {
        acc += tmp[y * kBlock + u] * b.c[v][y];
      }
      output[v * kBlock + u] = acc;
    }
  }
}

void idct_8x8(const float* input, float* output) {
  const auto& b = basis();
  float tmp[kBlock * kBlock];
  for (int u = 0; u < kBlock; ++u) {
    for (int y = 0; y < kBlock; ++y) {
      float acc = 0.0F;
      for (int v = 0; v < kBlock; ++v) {
        acc += input[v * kBlock + u] * b.c[v][y];
      }
      tmp[y * kBlock + u] = acc;
    }
  }
  for (int y = 0; y < kBlock; ++y) {
    for (int x = 0; x < kBlock; ++x) {
      float acc = 0.0F;
      for (int u = 0; u < kBlock; ++u) {
        acc += tmp[y * kBlock + u] * b.c[u][x];
      }
      output[y * kBlock + x] = acc;
    }
  }
}

CodecResult jpeg_like_compress(const Tensor& image, const JpegLikeConfig& config) {
  SNAPPIX_CHECK(image.ndim() == 2, "jpeg_like_compress expects (H, W), got "
                                       << image.shape().to_string());
  SNAPPIX_CHECK(config.quality >= 1 && config.quality <= 100,
                "quality " << config.quality << " out of [1, 100]");
  const std::int64_t h = image.shape()[0];
  const std::int64_t w = image.shape()[1];
  SNAPPIX_CHECK(h % kBlock == 0 && w % kBlock == 0,
                "image " << h << "x" << w << " not divisible by " << kBlock);

  std::vector<float> recon(image.data().size());
  std::int64_t bits = 0;
  int prev_dc = 0;  // DC prediction runs across blocks in raster order
  float block_in[kBlock * kBlock];
  float coeffs[kBlock * kBlock];
  int quantized[kBlock * kBlock];
  float dequant[kBlock * kBlock];
  float block_out[kBlock * kBlock];
  const auto& src = image.data();

  for (std::int64_t by = 0; by < h; by += kBlock) {
    for (std::int64_t bx = 0; bx < w; bx += kBlock) {
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          // Level-shift to [-128, 127] like JPEG.
          block_in[y * kBlock + x] =
              src[static_cast<std::size_t>((by + y) * w + bx + x)] * 255.0F - 128.0F;
        }
      }
      dct_8x8(block_in, coeffs);
      for (int i = 0; i < kBlock * kBlock; ++i) {
        const int q = scaled_quant(i, config.quality);
        quantized[i] = static_cast<int>(std::lround(coeffs[i] / static_cast<float>(q)));
        dequant[i] = static_cast<float>(quantized[i] * q);
      }
      bits += estimate_block_bits(quantized, prev_dc);
      prev_dc = quantized[0];
      idct_8x8(dequant, block_out);
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          recon[static_cast<std::size_t>((by + y) * w + bx + x)] =
              std::clamp((block_out[y * kBlock + x] + 128.0F) / 255.0F, 0.0F, 1.0F);
        }
      }
    }
  }

  CodecResult result;
  result.reconstruction = Tensor::from_vector(std::move(recon), image.shape());
  result.compressed_bits = bits;
  result.compression_ratio =
      static_cast<double>(h * w * 8) / static_cast<double>(std::max<std::int64_t>(bits, 1));
  result.psnr_db = eval::psnr_db(result.reconstruction, image);
  return result;
}

double digital_compression_energy_j(std::int64_t pixels, double nj_per_pixel) {
  SNAPPIX_CHECK(pixels > 0 && nj_per_pixel > 0.0, "bad digital compression parameters");
  return static_cast<double>(pixels) * nj_per_pixel * 1e-9;
}

}  // namespace snappix::codec
