// Digital-domain image compression baseline (paper Sec. VII, Related Work).
//
// The paper's argument for in-sensor compression: classic digital
// compression (JPEG-style DCT coding) achieves high ratios but runs AFTER
// read-out — so it saves no sensing energy — and costs ~nJ/pixel even with
// dedicated hardware [42], orders of magnitude above the 220 pJ/pixel of
// sensing itself. This module implements a JPEG-like 8x8 DCT codec so that
// trade-off can be measured rather than asserted.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace snappix::codec {

inline constexpr int kBlock = 8;

// 2-D type-II DCT of one 8x8 block (orthonormal scaling) and its inverse.
void dct_8x8(const float* input, float* output);
void idct_8x8(const float* input, float* output);

// Bit length of |value| (the JPEG size category). Computed on the unsigned
// magnitude, so it is well-defined for every int including INT_MIN.
int magnitude_bits(int value);

// JPEG-style entropy size estimate for one quantized 8x8 block in natural
// (row-major) order: the DC coefficient is coded differentially against
// `prev_dc` (category code + offset bits), each nonzero AC pays a run/size
// code plus magnitude bits, every full run of 16 zeros before a nonzero
// needs a ZRL symbol, and end-of-block is charged only when zeros trail the
// last nonzero coefficient.
std::int64_t estimate_block_bits(const int quantized[kBlock * kBlock], int prev_dc);

struct JpegLikeConfig {
  // libjpeg-style quality in [1, 100]; scales the standard luminance
  // quantization table.
  int quality = 50;
};

struct CodecResult {
  Tensor reconstruction;            // same shape as input, values in [0, 1]
  std::int64_t compressed_bits = 0; // entropy-coded size estimate
  double compression_ratio = 0.0;   // raw 8-bit size / compressed size
  float psnr_db = 0.0F;
};

// Compresses a grayscale image (H, W) with values in [0, 1]: 8x8 DCT,
// quantization, zigzag run-length size estimate, and reconstruction.
// H and W must be multiples of 8.
CodecResult jpeg_like_compress(const Tensor& image, const JpegLikeConfig& config = {});

// Energy of digital compression at `nj_per_pixel` (default from the paper's
// reference [42]: an energy-optimized JPEG encoder on a parallel ULP
// platform still costs on the order of a nanojoule per pixel).
double digital_compression_energy_j(std::int64_t pixels, double nj_per_pixel = 1.2);

}  // namespace snappix::codec
