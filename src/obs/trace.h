/// \file trace.h
/// \brief Per-frame span tracing for the streaming runtime, exported as
/// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
///
/// Recording model: a TraceRecorder owns one TraceLane per writer thread
/// (one per server shard, plus auxiliaries). A lane is a SINGLE-WRITER
/// append buffer — the owning worker pushes events with no locking into
/// chunked storage and publishes each event with one release store; the
/// recorder's mutex guards only the lane list (creation vs. enumeration).
/// Readers (chrome_json() / all_events() / dropped_events()) may therefore
/// run MID-SERVE, racing the lane writers: an export observes a consistent
/// prefix of every lane — each event either fully present or not yet
/// published, never torn (pinned by tests/test_stress.cpp TraceExportRaces*
/// under TSan). The hot path stays one slot write + one release store per
/// span, and exactly zero work when tracing is off.
///
/// Sampling: per-camera 1-in-N. A frame is sampled when
/// `sequence % sample_every == 0`; `sample_every == 0` keeps tracing
/// compiled-in and enabled but samples no frames (the overhead-measurement
/// arm of bench/obs_overhead.cpp). Only batches containing at least one
/// sampled frame pay for span emission.
///
/// Span plumbing: instrumented leaf code (engine stages, EngineCache) does
/// not take a lane parameter. Instead the shard worker installs its lane in
/// thread-local storage with ScopedTraceLane for the duration of a traced
/// batch; ScopedSpan then picks the lane up from TLS, or reduces to a
/// no-op (two null checks, no clock reads) when no lane is installed.
///
/// Event vocabulary written by the server (docs/observability.md has the
/// full map): per-frame lifecycles are Chrome ASYNC events (ph "b"/"e",
/// cat "frame", id = camera_id<<32 | sequence) nesting
/// frame ⊃ {capture ⊃ transport, queue_wait, batch_assembly, infer};
/// per-batch and per-stage work are COMPLETE events (ph "X") on the shard's
/// own track: serve_batch ⊃ {cache_resolve, encode, embed, qkv, attention,
/// proj, mlp, classify_head / rec_decode, quantize, gemm_s8, requant}.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace snappix::obs {

using TraceClock = std::chrono::steady_clock;

struct TraceConfig {
  bool enabled = false;
  /// Per-camera sampling period: frame `sequence` is sampled when
  /// `sequence % sample_every == 0`. 1 traces every frame; 0 traces none
  /// (tracing stays enabled — the overhead arm). Must be >= 0.
  int sample_every = 1;
  /// Hard cap per lane; events beyond it are counted in dropped_events()
  /// instead of growing the buffer without bound.
  std::size_t max_events_per_lane = 1u << 20;
};

void validate(const TraceConfig& config);

/// \brief One Chrome trace event. Timestamps are nanoseconds on the
/// recorder's clock epoch; the JSON writer renders them as fractional
/// microseconds (the unit chrome://tracing expects).
struct TraceEvent {
  std::string name;
  std::string cat;        ///< non-empty only for async (per-frame) events
  char ph = 'X';          ///< 'X' complete, 'b'/'e' async begin/end
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;   ///< complete events only
  std::uint64_t id = 0;      ///< async correlation id (one per frame)
  std::uint64_t tid = 0;     ///< lane index (rendered as the Chrome tid)
  std::string args_json;     ///< raw inner JSON, e.g. "\"hit\": true"
};

/// \brief Single-writer append buffer of trace events. The owning thread
/// writes without locking; any thread may read the published prefix
/// concurrently (size()/event(i) below, normally via the recorder).
///
/// Storage is chunked: a fixed, never-reallocated vector of chunk slots is
/// sized at construction, and the writer materializes chunks lazily. The
/// writer fills the event slot FIRST, then publishes it with a release
/// store of the new size; a reader that acquires the size therefore sees
/// every byte of every event below it. Published events are never mutated
/// again, so readers index them without further synchronization.
class TraceLane {
 public:
  /// Passkey: only TraceRecorder::create_lane constructs lanes, but the
  /// constructor must be public for std::make_unique (no naked `new` — see
  /// scripts/check_static.sh).
  class PassKey {
   private:
    PassKey() = default;
    friend class TraceRecorder;
  };

  TraceLane(PassKey key, std::uint64_t tid, std::string thread_name, std::size_t capacity);

  void add(TraceEvent event);
  void add_complete(std::string name, std::int64_t ts_ns, std::int64_t dur_ns,
                    std::string args_json = {});
  void add_async_begin(std::string name, std::string cat, std::uint64_t id,
                       std::int64_t ts_ns, std::string args_json = {});
  void add_async_end(std::string name, std::string cat, std::uint64_t id,
                     std::int64_t ts_ns);

  std::uint64_t tid() const { return tid_; }
  const std::string& thread_name() const { return thread_name_; }
  /// \brief Number of PUBLISHED events — safe to call while the owner writes.
  std::size_t size() const {
    // order: acquire pairs with the writer's release in add(); every event
    // below the returned count is fully written and immutable.
    return size_.load(std::memory_order_acquire);
  }
  /// \brief Event `index`, which must be < a size() read by THIS thread
  /// (that acquire is what makes the slot safe to touch).
  const TraceEvent& event(std::size_t index) const {
    return chunks_[index / kChunkEvents][index % kChunkEvents];
  }
  std::uint64_t dropped() const {
    // order: relaxed — independent monotonic counter, no cross-variable
    // invariant with size_; a snapshot may be one drop stale, never torn.
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  friend class TraceRecorder;

  static constexpr std::size_t kChunkEvents = 1024;

  std::uint64_t tid_;
  std::string thread_name_;
  std::size_t capacity_;
  // order: single-writer publish protocol. Only the owning thread stores
  // size_ (release, after filling the slot and — on a chunk boundary — the
  // chunk pointer); readers acquire it and touch only entries below it.
  std::atomic<std::size_t> size_{0};
  // order: relaxed — monotonic overflow counter, read by dropped() above.
  std::atomic<std::uint64_t> dropped_{0};
  // Chunk slots are pre-sized (never reallocated); the owning writer fills a
  // slot's unique_ptr before publishing any size that covers it, so readers
  // ordered by the size_ acquire see the pointer.
  std::vector<std::unique_ptr<TraceEvent[]>> chunks_;
};

/// \brief Owns the per-thread lanes and the export path. Lane creation is
/// mutex-guarded and returns a pointer stable for the recorder's lifetime;
/// everything per-event is lane-local.
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {});
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  const TraceConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  /// \brief True when a frame with this per-camera sequence number should
  /// carry a trace context.
  bool should_sample(std::int64_t sequence) const {
    return config_.enabled && config_.sample_every > 0 &&
           sequence % config_.sample_every == 0;
  }

  /// \brief Nanoseconds since the recorder's epoch (its construction time).
  std::int64_t to_ns(TraceClock::time_point tp) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_).count();
  }
  std::int64_t now_ns() const { return to_ns(TraceClock::now()); }

  TraceLane* create_lane(const std::string& thread_name);

  /// \brief Every recorded event from every lane, sorted by timestamp. Safe
  /// to call while lane owners are still writing: each lane contributes its
  /// published prefix (single-writer release/acquire — see TraceLane).
  std::vector<TraceEvent> all_events() const;
  std::size_t dropped_events() const;

  /// \brief Chrome trace-event JSON: {"traceEvents": [...]} with a
  /// thread_name metadata record per lane. Like all_events(), safe to call
  /// mid-run; a complete trace still requires the workers to have finished.
  std::string chrome_json() const;
  void write(const std::string& path) const;

 private:
  TraceConfig config_;
  TraceClock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TraceLane>> lanes_;
};

/// \brief Installs {recorder, lane} as the calling thread's active trace
/// destination for the current scope; restores the previous one on exit.
/// Shard workers wrap traced batches in this so leaf code (engines, the
/// EngineCache) can emit spans with no API changes.
class ScopedTraceLane {
 public:
  ScopedTraceLane(TraceRecorder* recorder, TraceLane* lane);
  ~ScopedTraceLane();
  ScopedTraceLane(const ScopedTraceLane&) = delete;
  ScopedTraceLane& operator=(const ScopedTraceLane&) = delete;

 private:
  TraceRecorder* prev_recorder_;
  TraceLane* prev_lane_;
};

/// \brief The calling thread's active lane / recorder, or nullptr when no
/// ScopedTraceLane is live (the common, untraced case).
TraceLane* current_lane();
TraceRecorder* current_recorder();

/// \brief RAII complete-event span on the thread's active lane. When no
/// lane is installed the constructor and destructor do nothing — no clock
/// reads, no allocation — so instrumentation points cost two branch
/// instructions on untraced paths.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::string args_json = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  TraceLane* lane_;
  const char* name_;
  std::string args_json_;
  std::int64_t start_ns_ = 0;
};

}  // namespace snappix::obs
