#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/common.h"

namespace snappix::obs {

void validate(const TraceConfig& config) {
  if (config.sample_every < 0) {
    std::ostringstream os;
    os << "TraceConfig.sample_every must be >= 0 (0 = sample no frames), got "
       << config.sample_every;
    throw std::invalid_argument(os.str());
  }
  if (config.max_events_per_lane == 0) {
    throw std::invalid_argument(
        "TraceConfig.max_events_per_lane must be >= 1 (a zero-capacity lane would "
        "drop every span)");
  }
}

TraceLane::TraceLane(PassKey, std::uint64_t tid, std::string thread_name,
                     std::size_t capacity)
    : tid_(tid), thread_name_(std::move(thread_name)), capacity_(capacity),
      chunks_((capacity + kChunkEvents - 1) / kChunkEvents) {}

void TraceLane::add(TraceEvent event) {
  // order: relaxed self-read — only this (owning) thread ever advances
  // size_, so it reads its own last store.
  const std::size_t n = size_.load(std::memory_order_relaxed);
  if (n >= capacity_) {
    // order: relaxed — monotonic counter, no ordering relationship needed.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t chunk = n / kChunkEvents;
  if (chunks_[chunk] == nullptr) {
    chunks_[chunk] = std::make_unique<TraceEvent[]>(kChunkEvents);
  }
  event.tid = tid_;
  chunks_[chunk][n % kChunkEvents] = std::move(event);
  // order: release publishes the slot (and, on a chunk boundary, the chunk
  // pointer) to readers that acquire size_ — the single-writer protocol the
  // header documents.
  size_.store(n + 1, std::memory_order_release);
}

void TraceLane::add_complete(std::string name, std::int64_t ts_ns, std::int64_t dur_ns,
                             std::string args_json) {
  TraceEvent e;
  e.name = std::move(name);
  e.ph = 'X';
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns < 0 ? 0 : dur_ns;
  e.args_json = std::move(args_json);
  add(std::move(e));
}

void TraceLane::add_async_begin(std::string name, std::string cat, std::uint64_t id,
                                std::int64_t ts_ns, std::string args_json) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'b';
  e.id = id;
  e.ts_ns = ts_ns;
  e.args_json = std::move(args_json);
  add(std::move(e));
}

void TraceLane::add_async_end(std::string name, std::string cat, std::uint64_t id,
                              std::int64_t ts_ns) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'e';
  e.id = id;
  e.ts_ns = ts_ns;
  add(std::move(e));
}

TraceRecorder::TraceRecorder(TraceConfig config)
    : config_(config), epoch_(TraceClock::now()) {
  validate(config_);
}

TraceLane* TraceRecorder::create_lane(const std::string& thread_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  lanes_.push_back(std::make_unique<TraceLane>(TraceLane::PassKey{}, lanes_.size(),
                                               thread_name, config_.max_events_per_lane));
  return lanes_.back().get();
}

std::vector<TraceEvent> TraceRecorder::all_events() const {
  std::vector<TraceEvent> out;
  {
    // The mutex guards only the lane LIST; each lane's published prefix is
    // read through its own acquire, so this races active writers safely.
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& lane : lanes_) {
      const std::size_t published = lane->size();
      for (std::size_t i = 0; i < published; ++i) {
        out.push_back(lane->event(i));
      }
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.ts_ns < b.ts_ns;
  });
  return out;
}

std::size_t TraceRecorder::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  for (const auto& lane : lanes_) {
    dropped += lane->dropped();
  }
  return dropped;
}

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

// Chrome wants microseconds; keep nanosecond precision as a fraction.
std::string us(std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(ns / 1000),
                static_cast<long long>(ns < 0 ? 0 : ns % 1000));
  return buf;
}

}  // namespace

std::string TraceRecorder::chrome_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& lane : lanes_) {
      os << (first ? "" : ",") << "\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
         << "\"tid\": " << lane->tid_ << ", \"args\": {\"name\": \""
         << escape(lane->thread_name_) << "\"}}";
      first = false;
    }
  }
  for (const TraceEvent& e : all_events()) {
    os << (first ? "" : ",") << "\n{\"name\": \"" << escape(e.name) << "\", ";
    if (!e.cat.empty()) {
      os << "\"cat\": \"" << escape(e.cat) << "\", ";
    }
    os << "\"ph\": \"" << e.ph << "\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << us(e.ts_ns);
    if (e.ph == 'X') {
      os << ", \"dur\": " << us(e.dur_ns);
    }
    if (e.ph == 'b' || e.ph == 'e') {
      char idbuf[32];
      std::snprintf(idbuf, sizeof(idbuf), "0x%llx", static_cast<unsigned long long>(e.id));
      os << ", \"id\": \"" << idbuf << "\"";
    }
    if (!e.args_json.empty()) {
      os << ", \"args\": {" << e.args_json << "}";
    }
    os << "}";
    first = false;
  }
  os << "\n]}\n";
  return os.str();
}

void TraceRecorder::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  SNAPPIX_CHECK(out.good(), "cannot open trace file " << path);
  out << chrome_json();
  SNAPPIX_CHECK(out.good(), "failed writing trace file " << path);
}

namespace {

thread_local TraceRecorder* t_recorder = nullptr;
thread_local TraceLane* t_lane = nullptr;

}  // namespace

ScopedTraceLane::ScopedTraceLane(TraceRecorder* recorder, TraceLane* lane)
    : prev_recorder_(t_recorder), prev_lane_(t_lane) {
  t_recorder = recorder;
  t_lane = lane;
}

ScopedTraceLane::~ScopedTraceLane() {
  t_recorder = prev_recorder_;
  t_lane = prev_lane_;
}

TraceLane* current_lane() { return t_lane; }
TraceRecorder* current_recorder() { return t_recorder; }

ScopedSpan::ScopedSpan(const char* name, std::string args_json)
    : recorder_(t_recorder), lane_(t_lane), name_(name) {
  if (recorder_ != nullptr && lane_ != nullptr) {
    args_json_ = std::move(args_json);
    start_ns_ = recorder_->now_ns();
  }
}

ScopedSpan::~ScopedSpan() {
  if (recorder_ != nullptr && lane_ != nullptr) {
    lane_->add_complete(name_, start_ns_, recorder_->now_ns() - start_ns_,
                        std::move(args_json_));
  }
}

}  // namespace snappix::obs
