/// \file metrics.h
/// \brief Process-wide metrics registry: monotonic counters, gauges, and
/// fixed-bucket latency histograms with live percentile queries.
///
/// The serving tier's shards and camera producers record into these
/// concurrently on the hot path, so every write is lock-free: counters and
/// histogram buckets are relaxed atomic adds, gauges are atomic stores, and
/// the only mutex in the registry guards metric *creation* (done once at
/// setup, never per frame). A snapshot can therefore be taken mid-run —
/// InferenceServer::metrics_snapshot() — without stalling a single worker;
/// the reads are relaxed, so a snapshot racing a write may be one event
/// stale, never torn.
///
/// Percentile contract (the "empty-series contract" pinned by
/// tests/test_obs.cpp): a histogram percentile query NEVER returns NaN or
/// infinity. An empty histogram reports 0 for every percentile, mean, and
/// sum; a non-empty one interpolates linearly inside the bucket containing
/// the requested rank and clamps the result into [min observed, max
/// observed], so the open-ended overflow bucket cannot leak +inf into a JSON
/// artifact. Queries at increasing p are monotone: p50 <= p95 <= p99 always.
///
/// Exports: to_json() (flat machine-readable object, used by the BENCH_*
/// artifacts) and to_prometheus() (Prometheus text exposition format v0.0.4,
/// with cumulative `_bucket{le=...}` series per histogram) both render a
/// MetricsSnapshot. Metric names may embed Prometheus labels directly —
/// `snappix_batch_flush_total{reason="max_batch"}` — and the exporters split
/// them back out where the format requires it.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace snappix::obs {

/// \brief Monotonic counter. add() is a relaxed atomic increment.
class Counter {
 public:
  // order: relaxed — a counter carries no cross-variable invariant; each
  // increment is independent and a reader needs no ordering with any other
  // memory, only atomicity (a snapshot may be one event stale, never torn).
  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  // order: relaxed on every access — see add()/value() above.
  std::atomic<std::uint64_t> value_{0};
};

/// \brief Last-write-wins gauge with an atomic raise-to-max helper for
/// high-water marks.
class Gauge {
 public:
  // order: relaxed — last-write-wins semantics by design; there is no
  // happens-before a reader could rely on (which write "won" is already
  // unspecified), so stronger orderings would buy nothing.
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  /// \brief Raises the gauge to `value` if larger (CAS loop; lock-free).
  void set_max(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  // order: relaxed on every access — see set()/value() above.
  std::atomic<double> value_{0.0};
};

/// \brief The default latency bucket ladder (seconds): roughly 1-2-5 decades
/// from 1 us to 10 s. Narrow enough that interpolated percentiles track the
/// exact nearest-rank values to within a bucket width at serving latencies.
std::vector<double> default_latency_buckets_s();

/// \brief Point-in-time copy of one histogram, with derived percentiles.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;  ///< sum / count; 0 when empty
  double min = 0.0;   ///< smallest observed value; 0 when empty
  double max = 0.0;   ///< largest observed value; 0 when empty
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;          ///< ascending finite upper bounds
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (last = overflow)
};

/// \brief Fixed-bucket histogram. observe() is lock-free (atomic bucket add
/// plus CAS folds for sum/min/max); percentile() interpolates within the
/// bucket holding the rank and clamps to the observed range.
class Histogram {
 public:
  /// \param bounds ascending, finite, non-empty upper bucket bounds. An
  /// implicit overflow bucket catches values above the last bound.
  explicit Histogram(std::vector<double> bounds = default_latency_buckets_s());

  void observe(double value);

  // order: relaxed — each statistic is folded independently (observe() is
  // not one transaction); readers tolerate the documented one-event skew
  // between count/sum/buckets, and no reader dereferences anything through
  // these values, so no release/acquire pairing is required.
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// \brief Interpolated percentile, `p` in [0, 100]. Returns 0 when empty;
  /// never NaN or infinity; monotone in `p`.
  double percentile(double p) const;

  HistogramSnapshot snapshot() const;  ///< name left empty (registry fills it)

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  // order: relaxed adds/loads — bucket counts are independent monotonic
  // counters; percentile() reads one consistent local copy and tolerates
  // skew against count_ (it derives the total from the buckets themselves).
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  // order: relaxed — see count()/sum() above.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // order: relaxed CAS folds. Seeded to +/-inf so racing first observers
  // both fold (a plain "first sample stores" protocol would let a later
  // store overwrite a smaller concurrent min); readers sanitize the
  // still-unset infinities to 0 / a bucket bound, never exporting them.
  std::atomic<double> min_{kUnsetMin};
  std::atomic<double> max_{kUnsetMax};

  static constexpr double kUnsetMin = std::numeric_limits<double>::infinity();
  static constexpr double kUnsetMax = -std::numeric_limits<double>::infinity();
};

/// \brief Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // sorted by name
  std::vector<std::pair<std::string, double>> gauges;           // sorted by name
  std::vector<HistogramSnapshot> histograms;                    // sorted by name
};

/// \brief Name-keyed registry. counter()/gauge()/histogram() return a STABLE
/// reference (create-on-first-use under the registry mutex); callers resolve
/// once at setup and record through the reference lock-free thereafter.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// \brief `bounds` applies only on first creation; a later lookup with
  /// different bounds returns the existing histogram unchanged.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = default_latency_buckets_s());

  /// \brief Safe to call while writers are recording (reads are relaxed).
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// \brief Formats `value` for JSON: non-finite values (which valid JSON
/// cannot carry) render as 0. The single choke point that keeps every
/// exporter NaN/inf-free.
std::string json_number(double value);

/// \brief Flat JSON object: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, mean, min, max, p50, p95, p99,
/// buckets: [{le, count}, ...]}}}.
std::string to_json(const MetricsSnapshot& snapshot);

/// \brief Prometheus text exposition (v0.0.4): counters and gauges as single
/// samples, histograms as cumulative `_bucket{le="..."}` series plus `_sum`
/// and `_count`. Labels embedded in metric names are merged with the `le`
/// label.
std::string to_prometheus(const MetricsSnapshot& snapshot);

}  // namespace snappix::obs
