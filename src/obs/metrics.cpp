#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/common.h"

namespace snappix::obs {

namespace {

// CAS-folds `value` into `target` through `fold` (atomic<double> has no
// fetch_add/fetch_max in C++17).
// order: relaxed CAS — the fold is commutative and touches one variable;
// readers need atomicity, not ordering against other statistics (the
// documented one-event snapshot skew). The loop terminates because a failed
// CAS reloads `current` and some thread's CAS always succeeds.
template <typename Fold>
void atomic_fold(std::atomic<double>& target, double value, Fold fold) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, fold(current, value),
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::set_max(double value) {
  atomic_fold(value_, value, [](double a, double b) { return a > b ? a : b; });
}

std::vector<double> default_latency_buckets_s() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  bounds.push_back(10.0);
  return bounds;  // 1us .. 10s, 1-2-5 ladder
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  SNAPPIX_CHECK(!bounds_.empty(), "Histogram needs at least one bucket bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    SNAPPIX_CHECK(std::isfinite(bounds_[i]), "Histogram bounds must be finite");
    SNAPPIX_CHECK(i == 0 || bounds_[i] > bounds_[i - 1],
                  "Histogram bounds must be strictly ascending");
  }
}

void Histogram::observe(double value) {
  if (!std::isfinite(value)) {
    return;  // a poisoned sample must not poison the percentiles
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  atomic_fold(sum_, value, [](double a, double b) { return a + b; });
  count_.fetch_add(1, std::memory_order_relaxed);
  // min_/max_ are seeded to +/-inf, so the first observation folds exactly
  // like every later one. (The previous "first sample stores" protocol had
  // a lost-update window: observer A winning the count race could STORE its
  // value over the smaller min a racing observer B had already folded.
  // Folding unconditionally is idempotent and order-free; readers sanitize
  // the unset infinities.)
  atomic_fold(min_, value, [](double a, double b) { return a < b ? a : b; });
  atomic_fold(max_, value, [](double a, double b) { return a > b ? a : b; });
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::percentile(double p) const {
  SNAPPIX_CHECK(p >= 0.0 && p <= 100.0, "percentile " << p << " out of [0, 100]");
  // Work from one consistent read of the buckets (mid-run snapshots race
  // writers; summing twice could disagree).
  std::vector<std::uint64_t> counts(buckets_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) {
    return 0.0;  // the empty-series contract: never NaN, never inf
  }
  // A mid-run reader can observe a bucket count whose min/max folds have not
  // landed yet (relaxed, independent variables) — sanitize the unset
  // infinities so they can never leak into a percentile.
  double lo = min_.load(std::memory_order_relaxed);
  double hi = max_.load(std::memory_order_relaxed);
  if (!std::isfinite(lo)) {
    lo = 0.0;
  }
  if (!std::isfinite(hi)) {
    hi = bounds_.back();
  }
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    const double next = static_cast<double>(cumulative + counts[i]);
    if (next >= rank) {
      // Interpolate inside this bucket. The overflow bucket has no finite
      // upper bound, so the observed max stands in for it; likewise the
      // first bucket's lower edge is 0 (latencies are non-negative).
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = i < bounds_.size() ? bounds_[i] : hi;
      const double fraction =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(counts[i]);
      const double value = lower + fraction * (upper - lower);
      return std::min(std::max(value, lo), hi);  // clamp into observed range
    }
    cumulative += counts[i];
  }
  return hi;  // rank beyond the last occupied bucket (p == 100)
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.count = count();
  out.sum = sum();
  out.mean = mean();
  if (out.count > 0) {
    // Same transient-unset sanitation as percentile(): a count published
    // before the first min/max fold lands must not export an infinity.
    const double lo = min_.load(std::memory_order_relaxed);
    const double hi = max_.load(std::memory_order_relaxed);
    out.min = std::isfinite(lo) ? lo : 0.0;
    out.max = std::isfinite(hi) ? hi : 0.0;
  }
  out.p50 = percentile(50.0);
  out.p95 = percentile(95.0);
  out.p99 = percentile(99.0);
  out.bounds = bounds_;
  out.buckets.resize(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);  // guards the maps, not the values
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h = histogram->snapshot();
    h.name = name;
    out.histograms.push_back(std::move(h));
  }
  return out;  // std::map iteration is already name-sorted
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "0";  // valid JSON carries no NaN/inf; see the header contract
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

// Splits `snappix_foo_total{reason="max_batch"}` into its base name and the
// inner label list (empty when unlabeled) for Prometheus rendering.
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    return {name, ""};
  }
  return {name.substr(0, brace), name.substr(brace + 1, name.size() - brace - 2)};
}

std::string prometheus_bound(double bound) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", bound);
  return buf;
}

}  // namespace

std::string to_json(const MetricsSnapshot& s) {
  std::ostringstream os;
  os << "{\"counters\": {";
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    os << (i > 0 ? ", " : "") << "\"" << json_escape(s.counters[i].first)
       << "\": " << s.counters[i].second;
  }
  os << "}, \"gauges\": {";
  for (std::size_t i = 0; i < s.gauges.size(); ++i) {
    os << (i > 0 ? ", " : "") << "\"" << json_escape(s.gauges[i].first)
       << "\": " << json_number(s.gauges[i].second);
  }
  os << "}, \"histograms\": {";
  for (std::size_t i = 0; i < s.histograms.size(); ++i) {
    const HistogramSnapshot& h = s.histograms[i];
    os << (i > 0 ? ", " : "") << "\"" << json_escape(h.name) << "\": {\"count\": " << h.count
       << ", \"sum\": " << json_number(h.sum) << ", \"mean\": " << json_number(h.mean)
       << ", \"min\": " << json_number(h.min) << ", \"max\": " << json_number(h.max)
       << ", \"p50\": " << json_number(h.p50) << ", \"p95\": " << json_number(h.p95)
       << ", \"p99\": " << json_number(h.p99) << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b > 0 ? ", " : "") << "{\"le\": ";
      if (b < h.bounds.size()) {
        os << json_number(h.bounds[b]);
      } else {
        os << "\"+Inf\"";  // the overflow bucket's bound, as a string
      }
      os << ", \"count\": " << h.buckets[b] << "}";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

std::string to_prometheus(const MetricsSnapshot& s) {
  std::ostringstream os;
  for (const auto& [name, value] : s.counters) {
    const auto [base, labels] = split_labels(name);
    os << "# TYPE " << base << " counter\n";
    os << base << (labels.empty() ? "" : "{" + labels + "}") << " " << value << "\n";
  }
  for (const auto& [name, value] : s.gauges) {
    const auto [base, labels] = split_labels(name);
    os << "# TYPE " << base << " gauge\n";
    os << base << (labels.empty() ? "" : "{" + labels + "}") << " " << json_number(value)
       << "\n";
  }
  for (const HistogramSnapshot& h : s.histograms) {
    const auto [base, labels] = split_labels(h.name);
    const std::string prefix = labels.empty() ? "" : labels + ",";
    os << "# TYPE " << base << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      os << base << "_bucket{" << prefix << "le=\""
         << (b < h.bounds.size() ? prometheus_bound(h.bounds[b]) : "+Inf") << "\"} "
         << cumulative << "\n";
    }
    os << base << "_sum" << (labels.empty() ? "" : "{" + labels + "}") << " "
       << json_number(h.sum) << "\n";
    os << base << "_count" << (labels.empty() ? "" : "{" + labels + "}") << " " << h.count
       << "\n";
  }
  return os.str();
}

}  // namespace snappix::obs
