// Fused, allocation-free serving engines for the CE-optimized ViT, covering
// both task heads (AR classification and REC reconstruction) at two
// precision tiers behind one interface (VitEngine):
//
//   BatchedVitEngine    fp32, bit-identical to the tape framework
//   QuantizedVitEngine  int8 weights/activations, calibrated (quant.h),
//                       deterministic + batch-invariant, NOT bit-equal fp32
//
// The autograd framework is built for training: every op allocates an output
// tensor, records tape metadata, and dispatches through std::function. At
// serving batch sizes that machinery dominates the actual math — profiling
// the (B, H, W) -> logits forward at our geometry shows most wall time spent
// outside the GEMM kernels. These engines snapshot the model weights once,
// preallocate one workspace, and run the whole forward pass as fused loops
// with zero steady-state allocations. Both heads share the encoder trunk
// (patchify -> embed -> blocks -> final norm); classification pools the
// normed tokens through the linear AR head, reconstruction pushes them
// through the per-patch decoder and scatters tiles back into (B, T, H, W)
// video — the layout inverse of nn::unpatchify_video, pure data movement.
//
// Bit-exactness contract (fp32 tier): BatchedVitEngine reproduces the
// framework forward *bit-identically* (not just approximately). It calls the
// same GEMM kernel the matmul op uses (tensor/gemm.h) and replicates every
// elementwise formula and accumulation order of the tape ops (LayerNorm's
// sum-times-reciprocal mean, the tanh GELU, max-subtracted softmax, scale-
// after-matmul attention). Because every per-row computation is independent
// of which batch it rides in, batched outputs are also bit-identical to
// batch-1 outputs — the property the streaming runtime's determinism tests
// pin down. This holds for classify_logits() against
// SnapPixSystem::classify_logits_coded AND reconstruct() against
// SnapPixSystem::reconstruct_coded.
//
// Determinism contract (int8 tier): QuantizedVitEngine runs every linear as
// an int8 x int8 -> int32 GEMM (tensor/gemm_s8.h) with per-output-channel
// weight scales and calibrated per-tensor activation scales, dequantizing to
// fp32 at each layer boundary; LayerNorm/GELU/softmax/attention/residuals
// stay fp32. Integer accumulation is exact, so outputs are deterministic
// across runs, thread counts, and batch compositions (batch == batch-1
// bitwise) — but they are NOT bit-identical to the fp32 tier: quantization
// is a bounded approximation, measured by the accuracy-vs-throughput
// frontier bench (BENCH_int8.json).
//
// Thread-safety: classify_logits()/reconstruct() serialize on an internal
// mutex (one workspace). The intended topology is one engine per resident
// EngineCache entry; concurrency comes from sharding the cache, not from
// sharing one engine.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "models/vit.h"
#include "runtime/precision.h"
#include "runtime/quant.h"
#include "tensor/tensor.h"

namespace snappix::runtime {

// The serving-engine interface the EngineCache hands out: one fused forward
// per task head, tagged with the precision tier that produced it.
class VitEngine {
 public:
  virtual ~VitEngine() = default;

  // (B, H, W) exposure-normalized coded images -> (B, num_classes) logits.
  virtual Tensor classify_logits(const Tensor& coded) const = 0;
  std::vector<std::int64_t> classify(const Tensor& coded) const {
    return argmax_last_axis(classify_logits(coded));
  }

  // (B, H, W) exposure-normalized coded images -> (B, T, H, W) reconstructed
  // video. Requires an engine built with the reconstruction head.
  virtual Tensor reconstruct(const Tensor& coded) const = 0;
  virtual bool has_rec_head() const = 0;

  virtual Precision precision() const = 0;
  virtual const models::ViTConfig& config() const = 0;
};

// Absmax of every quantized-GEMM input activation, folded (max) over all
// frames pushed through collect_activation_ranges(). quant.h's calibrate()
// turns these into the QuantSpec scales.
struct ActivationRanges {
  struct BlockRanges {
    float qkv_in = 0.0F, proj_in = 0.0F, fc1_in = 0.0F, fc2_in = 0.0F;
    float gelu_in = 0.0F;  // fc1 output BEFORE the GELU (feeds the int8 LUT)
  };
  float embed_in = 0.0F;
  std::vector<BlockRanges> blocks;
  float head_in = 0.0F;
  float rec_in = 0.0F;
};

class BatchedVitEngine : public VitEngine {
 public:
  // Snapshots the classifier's current weights; `max_batch` sizes the
  // workspace (larger batches are processed in max_batch-sized chunks, which
  // does not change per-row results). Engines built this way serve
  // classification only.
  explicit BatchedVitEngine(const models::SnapPixClassifier& model, int max_batch = 64);

  // Additionally snapshots the reconstructor's per-patch decoder head so
  // reconstruct() serves through the same fused trunk. The reconstructor must
  // share the classifier's encoder (as SnapPixSystem guarantees) — otherwise
  // one trunk snapshot could not be bit-exact for both heads.
  BatchedVitEngine(const models::SnapPixClassifier& model,
                   const models::SnapPixReconstructor& reconstructor, int max_batch = 64);

  Tensor classify_logits(const Tensor& coded) const override;
  Tensor reconstruct(const Tensor& coded) const override;
  bool has_rec_head() const override { return frames_ > 0; }
  int frames() const { return frames_; }
  Precision precision() const override { return Precision::kFp32; }

  // Calibration hook: runs the fp32 trunk (and the classify pooling) over
  // `coded`, folding each quantized-GEMM input's absmax into `ranges` — max
  // over calls, so several representative batches can be streamed through.
  // Pure observation: serving results are unaffected.
  void collect_activation_ranges(const Tensor& coded, ActivationRanges& ranges) const;

  const models::ViTConfig& config() const override { return config_; }
  int max_batch() const { return max_batch_; }

 private:
  struct BlockWeights {
    std::vector<float> norm1_gamma, norm1_beta;
    std::vector<float> qkv_w, qkv_b;      // (D, 3D), (3D)
    std::vector<float> proj_w, proj_b;    // (D, D), (D)
    std::vector<float> norm2_gamma, norm2_beta;
    std::vector<float> fc1_w, fc1_b;      // (D, hidden), (hidden)
    std::vector<float> fc2_w, fc2_b;      // (hidden, D), (D)
  };

  // Scratch sized for max_batch; reused across calls (guarded by mutex_).
  struct Workspace {
    std::vector<float> patches;  // (B*N, p*p)
    std::vector<float> x;        // (B*N, D) residual stream
    std::vector<float> norm;     // (B*N, D)
    std::vector<float> qkv;      // (B*N, 3D)
    std::vector<float> ctx;      // (B*N, D)
    std::vector<float> proj;     // (B*N, D)
    std::vector<float> hidden;   // (B*N, hidden)
    std::vector<float> scores;   // (N, N) per (b, head)
    std::vector<float> pooled;   // (B, D)
    std::vector<float> rec;      // (B*N, T*p*p), only with a REC head
  };

  // Shared trunk: patchify -> embed -> blocks -> final norm. Leaves the
  // normed token rows (batch*N, D) in ws_.norm. A non-null `ranges` records
  // activation absmax per stage (calibration) without changing any output.
  void encode_chunk(const float* coded, std::int64_t batch,
                    ActivationRanges* ranges = nullptr) const;
  // Task heads, both reading ws_.norm.
  void classify_chunk(std::int64_t batch, float* logits) const;
  void reconstruct_chunk(std::int64_t batch, float* video) const;  // (batch, T, H, W)
  void check_coded_shape(const Tensor& coded) const;

  models::ViTConfig config_;
  std::int64_t hidden_;
  int max_batch_;
  int frames_ = 0;  // REC head output frames; 0 = classification-only engine

  std::vector<float> embed_w, embed_b;  // (p*p, D), (D)
  std::vector<float> pos_embed;         // (N, D)
  std::vector<BlockWeights> blocks_;
  std::vector<float> norm_gamma, norm_beta;
  std::vector<float> head_w, head_b;  // (D, C), (C)
  std::vector<float> rec_w, rec_b;    // (D, T*p*p), (T*p*p)

  mutable std::mutex mutex_;
  mutable Workspace ws_;
};

// Int8 tier: snapshots the model ONCE as per-output-channel int8 weights
// (transposed for the gemm_s8_nt layout) and serves both heads with int8
// GEMMs, int32 accumulation, and fp32 requantization at layer boundaries.
// Same workspace discipline as the fp32 engine: zero steady-state
// allocations, one mutex, chunked batches.
class QuantizedVitEngine : public VitEngine {
 public:
  // `spec` comes from quant.h's calibrate(); its block count must match the
  // model depth. Classification-only form.
  QuantizedVitEngine(const models::SnapPixClassifier& model, const QuantSpec& spec,
                     int max_batch = 64);
  // With the per-patch REC decoder head (reconstructor must share the
  // classifier's encoder, as for the fp32 engine).
  QuantizedVitEngine(const models::SnapPixClassifier& model,
                     const models::SnapPixReconstructor& reconstructor, const QuantSpec& spec,
                     int max_batch = 64);

  Tensor classify_logits(const Tensor& coded) const override;
  Tensor reconstruct(const Tensor& coded) const override;
  bool has_rec_head() const override { return frames_ > 0; }
  int frames() const { return frames_; }
  Precision precision() const override { return Precision::kInt8; }

  const models::ViTConfig& config() const override { return config_; }
  int max_batch() const { return max_batch_; }
  const QuantSpec& spec() const { return spec_; }

 private:
  // One quantized linear: int8 weights pre-transposed to (n, k) with one
  // output channel per row, the fused dequantization scale per channel
  // (act_scale * weight_scale[j]), and the fp32 bias.
  struct QuantLinear {
    std::vector<std::int8_t> wq;  // (n, k)
    std::vector<float> deq;       // (n)
    std::vector<float> bias;      // (n)
    float act_scale = 1.0F;
    std::int64_t k = 0, n = 0;
  };

  struct BlockWeights {
    std::vector<float> norm1_gamma, norm1_beta;
    std::vector<float> norm2_gamma, norm2_beta;
    QuantLinear qkv, proj, fc1, fc2;
    // 256-entry int8 -> int8 GELU table (indexed by the fc1 output
    // requantized onto the gelu_in grid; yields values on the fc2_in grid).
    std::vector<std::int8_t> gelu_lut;
    float gelu_inv_scale = 1.0F;  // 1 / gelu_in scale
  };

  struct Workspace {
    std::vector<float> patches;      // (B*N, p*p)
    std::vector<float> x;            // (B*N, D)
    std::vector<float> norm;         // (B*N, D)
    std::vector<float> qkv;          // (B*N, 3D)
    std::vector<float> ctx;          // (B*N, D)
    std::vector<float> proj;         // (B*N, D)
    std::vector<float> scores;       // (N, N) per (b, head)
    std::vector<float> kt;           // (head_dim, N) packed k^T per (b, head)
    std::vector<float> pooled;       // (B, D)
    std::vector<float> rec;          // (B*N, T*p*p), only with a REC head
    std::vector<std::int8_t> qin;    // quantized GEMM input, max row width
    std::vector<std::int32_t> acc;   // int32 GEMM output, max row width
  };

  static QuantLinear make_quant_linear(const std::vector<float>& w,
                                       const std::vector<float>& bias, float act_scale,
                                       std::int64_t k, std::int64_t n);
  // out(rows, n) = dequant(gemm_s8(quantize(in), wq)) + bias.
  void linear_s8(const float* in, const QuantLinear& lin, float* out, std::int64_t rows) const;
  // The fused MLP sublayer: fc1 -> GELU LUT -> fc2, reading the normed rows
  // and writing the fc2 output (fp32) to `out`. The hidden activations never
  // leave the int8 domain — see the LUT note in quant.h.
  void mlp_s8(const float* in, const BlockWeights& blk, float* out, std::int64_t rows) const;
  void encode_chunk(const float* coded, std::int64_t batch) const;
  void classify_chunk(std::int64_t batch, float* logits) const;
  void reconstruct_chunk(std::int64_t batch, float* video) const;
  void check_coded_shape(const Tensor& coded) const;

  models::ViTConfig config_;
  std::int64_t hidden_;
  int max_batch_;
  int frames_ = 0;
  QuantSpec spec_;

  QuantLinear embed_;
  std::vector<float> pos_embed;  // (N, D), fp32
  std::vector<BlockWeights> blocks_;
  std::vector<float> norm_gamma, norm_beta;
  QuantLinear head_;
  QuantLinear rec_;

  mutable std::mutex mutex_;
  mutable Workspace ws_;
};

}  // namespace snappix::runtime
