// BatchedVitEngine: fused, allocation-free serving path for the CE-optimized
// ViT, covering both task heads (AR classification and REC reconstruction).
//
// The autograd framework is built for training: every op allocates an output
// tensor, records tape metadata, and dispatches through std::function. At
// serving batch sizes that machinery dominates the actual math — profiling
// the (B, H, W) -> logits forward at our geometry shows most wall time spent
// outside the GEMM kernels. This engine snapshots the model weights once,
// preallocates one workspace, and runs the whole forward pass as fused loops
// with zero steady-state allocations. Both heads share the encoder trunk
// (patchify -> embed -> blocks -> final norm); classification pools the
// normed tokens through the linear AR head, reconstruction pushes them
// through the per-patch decoder and scatters tiles back into (B, T, H, W)
// video — the layout inverse of nn::unpatchify_video, pure data movement.
//
// Bit-exactness contract: the engine reproduces the framework forward
// *bit-identically* (not just approximately). It calls the same GEMM kernel
// the matmul op uses (tensor/gemm.h) and replicates every elementwise
// formula and accumulation order of the tape ops (LayerNorm's
// sum-times-reciprocal mean, the tanh GELU, max-subtracted softmax, scale-
// after-matmul attention). Because every per-row computation is independent
// of which batch it rides in, batched outputs are also bit-identical to
// batch-1 outputs — the property the streaming runtime's determinism tests
// pin down. This holds for classify_logits() against
// SnapPixSystem::classify_logits_coded AND reconstruct() against
// SnapPixSystem::reconstruct_coded.
//
// Thread-safety: classify_logits()/reconstruct() serialize on an internal
// mutex (one workspace). The intended topology is one engine per resident
// EngineCache entry; concurrency comes from sharding the cache, not from
// sharing one engine.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "models/vit.h"
#include "tensor/tensor.h"

namespace snappix::runtime {

class BatchedVitEngine {
 public:
  // Snapshots the classifier's current weights; `max_batch` sizes the
  // workspace (larger batches are processed in max_batch-sized chunks, which
  // does not change per-row results). Engines built this way serve
  // classification only.
  explicit BatchedVitEngine(const models::SnapPixClassifier& model, int max_batch = 64);

  // Additionally snapshots the reconstructor's per-patch decoder head so
  // reconstruct() serves through the same fused trunk. The reconstructor must
  // share the classifier's encoder (as SnapPixSystem guarantees) — otherwise
  // one trunk snapshot could not be bit-exact for both heads.
  BatchedVitEngine(const models::SnapPixClassifier& model,
                   const models::SnapPixReconstructor& reconstructor, int max_batch = 64);

  // (B, H, W) exposure-normalized coded images -> (B, num_classes) logits.
  Tensor classify_logits(const Tensor& coded) const;
  std::vector<std::int64_t> classify(const Tensor& coded) const;

  // (B, H, W) exposure-normalized coded images -> (B, T, H, W) reconstructed
  // video. Requires the reconstructor-aware constructor.
  Tensor reconstruct(const Tensor& coded) const;
  bool has_rec_head() const { return frames_ > 0; }
  int frames() const { return frames_; }

  const models::ViTConfig& config() const { return config_; }
  int max_batch() const { return max_batch_; }

 private:
  struct BlockWeights {
    std::vector<float> norm1_gamma, norm1_beta;
    std::vector<float> qkv_w, qkv_b;      // (D, 3D), (3D)
    std::vector<float> proj_w, proj_b;    // (D, D), (D)
    std::vector<float> norm2_gamma, norm2_beta;
    std::vector<float> fc1_w, fc1_b;      // (D, hidden), (hidden)
    std::vector<float> fc2_w, fc2_b;      // (hidden, D), (D)
  };

  // Scratch sized for max_batch; reused across calls (guarded by mutex_).
  struct Workspace {
    std::vector<float> patches;  // (B*N, p*p)
    std::vector<float> x;        // (B*N, D) residual stream
    std::vector<float> norm;     // (B*N, D)
    std::vector<float> qkv;      // (B*N, 3D)
    std::vector<float> ctx;      // (B*N, D)
    std::vector<float> proj;     // (B*N, D)
    std::vector<float> hidden;   // (B*N, hidden)
    std::vector<float> scores;   // (N, N) per (b, head)
    std::vector<float> pooled;   // (B, D)
    std::vector<float> rec;      // (B*N, T*p*p), only with a REC head
  };

  // Shared trunk: patchify -> embed -> blocks -> final norm. Leaves the
  // normed token rows (batch*N, D) in ws_.norm.
  void encode_chunk(const float* coded, std::int64_t batch) const;
  // Task heads, both reading ws_.norm.
  void classify_chunk(std::int64_t batch, float* logits) const;
  void reconstruct_chunk(std::int64_t batch, float* video) const;  // (batch, T, H, W)
  void layer_norm_rows(const float* in, float* out, std::int64_t rows, const float* gamma,
                       const float* beta) const;
  void check_coded_shape(const Tensor& coded) const;

  models::ViTConfig config_;
  std::int64_t hidden_;
  int max_batch_;
  int frames_ = 0;  // REC head output frames; 0 = classification-only engine

  std::vector<float> embed_w, embed_b;  // (p*p, D), (D)
  std::vector<float> pos_embed;         // (N, D)
  std::vector<BlockWeights> blocks_;
  std::vector<float> norm_gamma, norm_beta;
  std::vector<float> head_w, head_b;  // (D, C), (C)
  std::vector<float> rec_w, rec_b;    // (D, T*p*p), (T*p*p)

  mutable std::mutex mutex_;
  mutable Workspace ws_;
};

}  // namespace snappix::runtime
