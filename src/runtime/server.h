// InferenceServer: the task-typed serving surface for heterogeneous CE
// fleets.
//
// Where StreamingRuntime assumed one pattern and one task per server, the
// InferenceServer serves a fleet in which every camera owns its CE pattern
// and declares its task (AR classification or REC reconstruction). Frames
// arrive stamped with (pattern_id, task); the BatchAggregator coalesces them
// without ever crossing a pattern or task boundary, and the server resolves
// each batch's pattern_id to resident per-pattern serving state through the
// sharded, LRU-evicting EngineCache:
//
//   camera threads (ThreadPool)          consumer (caller's thread)
//   ┌─────────────────────┐  push        ┌────────────────────────────────┐
//   │ capture + CE encode ├───► Frame ──►│ batch by (pattern_id, task),   │
//   │ stamp pattern_id/   │     Queue    │ EngineCache::resolve(pattern), │──► TaskResults
//   │ task                │              │ classify / reconstruct,        │
//   └─────────────────────┘              │ record stats                   │
//                                        └────────────────────────────────┘
//
// Two inference backends serve a batch:
//   kFusedEngine    per-pattern BatchedVitEngine entries resolved through the
//                   EngineCache — fused, allocation-free forward for both
//                   task heads (bit-identical to the tape framework; default)
//   kTapeFramework  SnapPixSystem::classify_logits_coded / reconstruct_coded —
//                   the tape-based per-op path; batch-1 with this backend is
//                   the naive sequential serving baseline benchmarks compare
//                   against. Bypasses the cache (the tape model IS the
//                   resident state).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/snappix.h"
#include "runtime/batcher.h"
#include "runtime/camera.h"
#include "runtime/engine_cache.h"
#include "runtime/frame_queue.h"
#include "runtime/scheduler.h"
#include "runtime/stats.h"

namespace snappix::runtime {

enum class InferenceBackend { kFusedEngine, kTapeFramework };

struct ServerConfig {
  BatchPolicy batch;
  std::size_t queue_capacity = 64;
  // 0 = one producer thread per camera (see StreamScheduler for the
  // semantics of an explicit smaller cap).
  int scheduler_threads = 0;
  InferenceBackend backend = InferenceBackend::kFusedEngine;
  EngineCacheConfig cache;
};

// Throws std::invalid_argument with a descriptive message when the
// configuration is unusable (zero queue capacity, bad batch policy, negative
// thread count, zero cache shards/capacity).
void validate(const ServerConfig& config);

// One served frame's outcome, typed by the task that produced it.
struct TaskResult {
  int camera_id = -1;
  std::int64_t sequence = -1;
  Task task = Task::kClassify;
  std::uint64_t pattern_id = 0;

  // kClassify: predicted class (argmax of the AR head's logits).
  std::int64_t predicted = -1;
  std::int64_t label = -1;  // ground truth when the camera knows it

  // kReconstruct: the decoded (T, H, W) video.
  Tensor reconstruction;
};

class InferenceServer {
 public:
  // The system provides the served model weights. The server keeps a
  // reference — the system must outlive it.
  explicit InferenceServer(const core::SnapPixSystem& system,
                           const ServerConfig& config = {});

  // Registers the camera's pattern in the server's pattern registry (the
  // EngineCache rebuilds evicted entries from it) and hands the camera to the
  // scheduler.
  void add_camera(std::unique_ptr<CameraSource> camera);
  std::size_t camera_count() const { return scheduler_.camera_count(); }

  // Runs every camera for `frames_per_camera` frames, serving batches on the
  // calling thread until the stream drains. One-shot. Results are returned
  // sorted by (camera_id, sequence) so runs are comparable.
  std::vector<TaskResult> run(std::int64_t frames_per_camera);

  // Valid after run().
  RuntimeSummary summary() const;
  FleetEnergyReport fleet_energy(const energy::EnergyModel& model,
                                 energy::WirelessTech tech) const;

  const RuntimeStats& stats() const { return stats_; }
  const ServerConfig& config() const { return config_; }
  // Null when serving through the tape backend.
  const EngineCache* engine_cache() const { return cache_.get(); }

 private:
  const core::SnapPixSystem& system_;
  ServerConfig config_;
  std::unique_ptr<EngineCache> cache_;  // null for kTapeFramework
  // pattern_id -> the pattern itself, fed to the cache on (re)build. Shared
  // handles: a fleet on the system pattern contributes one entry, zero copies.
  std::unordered_map<std::uint64_t, PatternRef> patterns_;
  FrameQueue queue_;
  RuntimeStats stats_;
  StreamScheduler scheduler_;
  double wall_seconds_ = 0.0;
  std::int64_t pixels_per_frame_ = 0;
  bool ran_ = false;
};

}  // namespace snappix::runtime
