/// \file server.h
/// \brief InferenceServer: the sharded, task-typed serving surface for
/// heterogeneous CE fleets.
///
/// Where StreamingRuntime assumed one pattern, one task, and one consumer
/// thread, the InferenceServer serves a fleet in which every camera owns its
/// CE pattern and declares its task (AR classification or REC
/// reconstruction), across N consumer shards. Cameras are routed to shards by
/// pattern_id, so a shard's run queue only ever carries patterns it owns and
/// batches stay pattern-pure; each shard worker batches its own queue through
/// a BatchAggregator and resolves per-pattern serving state through its
/// private EngineCache view. An idle shard steals a (pattern_id, task)-pure
/// batch from the TAIL of a loaded sibling's queue, so one hot camera or
/// pattern cannot starve the fleet:
///
///   camera threads (ThreadPool)             shard workers (std::thread x N)
///   ┌─────────────────────┐ push            ┌──────────────────────────────┐
///   │ capture + CE encode ├──► shard queue ─►│ batch by (pattern_id, task), │
///   │ stamp pattern_id/   │    [pattern_id  │ resolve in own EngineCache,  │──► TaskResults
///   │ task                │     % shards]   │ classify / reconstruct,      │   (merged +
///   └─────────────────────┘                 │ idle? steal sibling's tail   │    sorted)
///                                           └──────────────────────────────┘
///
/// Bit-exactness: the fused engines are deterministic, batch-invariant
/// snapshots of the model and batches never mix serving keys, so results are
/// bit-identical to the sequential SnapPixSystem paths for EVERY shard count
/// and steal interleaving. Within one batch a camera's frames keep FIFO
/// order (batches — stolen ones included — are contiguous queue runs).
///
/// Two inference backends serve a batch:
///   kFusedEngine    per-pattern BatchedVitEngine entries resolved through
///                   each shard's EngineCache — fused, allocation-free
///                   forward for both task heads (bit-identical to the tape
///                   framework; default)
///   kTapeFramework  SnapPixSystem::classify_logits_coded /
///                   reconstruct_coded — the tape-based per-op path; batch-1
///                   with this backend is the naive sequential serving
///                   baseline benchmarks compare against. Bypasses the cache
///                   (the tape model IS the resident state) and is
///                   single-shard only: the tape framework is not built for
///                   concurrent forwards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/snappix.h"
#include "obs/trace.h"
#include "runtime/batcher.h"
#include "runtime/camera.h"
#include "runtime/engine_cache.h"
#include "runtime/frame_queue.h"
#include "runtime/health.h"
#include "runtime/scheduler.h"
#include "runtime/stats.h"

namespace snappix::runtime {

enum class InferenceBackend { kFusedEngine, kTapeFramework };

/// \brief Server topology and policy knobs. See docs/serving.md for sizing
/// guidance.
struct ServerConfig {
  BatchPolicy batch;
  /// Per-shard run-queue capacity (backpressure bound). A full queue blocks
  /// its producers, exactly as a saturated MIPI link stalls a sensor.
  std::size_t queue_capacity = 64;
  /// 0 = one producer thread per camera (see StreamScheduler for the
  /// semantics of an explicit smaller cap).
  int scheduler_threads = 0;
  InferenceBackend backend = InferenceBackend::kFusedEngine;
  /// Geometry of EACH shard's private EngineCache view.
  EngineCacheConfig cache;
  /// Consumer shards: worker threads, each owning a run queue + cache view.
  /// Cameras are routed by pattern_id % shards.
  std::size_t shards = 1;
  /// When true (default) an idle shard steals key-pure tail batches from
  /// loaded siblings. No effect with one shard.
  bool work_stealing = true;
  /// How long an idle shard waits on its own empty queue before probing
  /// victims (and between fruitless probe rounds). Small values tighten
  /// steal latency at the cost of idle wakeups.
  std::chrono::microseconds steal_poll{200};
  /// What to do with framed frames that arrive corrupt (CRC error,
  /// truncated, missing lines): drop them, or retransmit up to
  /// `transport.max_retransmits` times before dropping. Inert for cameras
  /// without framed mode. See docs/serving.md.
  TransportPolicy transport;
  /// Default precision tier for cameras that did not call set_precision:
  /// kFp32 serves bit-exactly, kInt8 through the calibrated quantized engine
  /// (deterministic + batch-invariant, NOT bit-equal to fp32 — see
  /// docs/serving.md). Requires the fused-engine backend; the tape framework
  /// has no int8 path.
  Precision precision = Precision::kFp32;
  /// How int8 engines are calibrated on a cache miss: `frames` synthetic
  /// clips (seeded by `seed`) are CE-encoded with the missing pattern and
  /// pushed through the fp32 engine to collect activation ranges. Same seed
  /// => same QuantSpec => an evicted-and-rebuilt int8 entry serves
  /// bit-identical int8 results.
  QuantCalibration calibration;
  /// Default QoS class for cameras that did not call set_qos (see
  /// QosClass in frame.h and docs/serving.md): realtime/standard producers
  /// block on a full shard queue, best-effort frames are shed instead.
  QosClass qos = QosClass::kStandard;
  /// Default per-frame deadline budget for cameras that did not call
  /// set_deadline_budget: every frame must be SERVED within this much time
  /// of its capture or it is shed (drop-late) instead of served stale.
  /// Zero (default) disables deadlines. Must not be negative.
  std::chrono::microseconds deadline_budget{0};
  /// Frame-lifecycle tracing (see docs/observability.md). When enabled, each
  /// shard worker owns a lock-free span lane; cameras sample 1-in-
  /// `trace.sample_every` frames (installed as the camera default at
  /// add_camera time — set_trace_sampling on a camera overrides), and served
  /// outputs stay bit-identical. Export via trace_json()/write_trace().
  obs::TraceConfig trace;
  /// Default progressive-decode depth for kClassify frames of cameras on
  /// entropy-coded framed links (transport::LinkConfig::codec): only the top
  /// N bit-planes cross the wire and are decoded for classify frames, while
  /// kReconstruct frames always ride at full depth. 0 (default) = full depth
  /// everywhere; must stay within [0, codec::kMaxBitplanes]. Installed as
  /// the camera default at add_camera time — set_codec_planes on a camera
  /// overrides. Inert for in-memory and raw framed cameras. See
  /// docs/serving.md.
  int classify_codec_planes = 0;
  /// Fleet health supervision (off by default — see docs/resilience.md):
  /// per-camera link-health state machine + degradation ladder driven by
  /// windowed transport counters, and (when health.watchdog.enabled and
  /// shards > 1) a supervisor thread that detects hung shard workers and
  /// re-routes their cameras to siblings. Healthy cameras' served bits stay
  /// bit-identical whether supervision is on or off.
  HealthConfig health;
  /// Test/chaos hook: invoked on the shard worker at the top of every
  /// serve_batch call, BEFORE inference, with (shard index, batch key, batch
  /// size). Injected sleeps here simulate a slow or hung shard for the
  /// watchdog to catch. Null (default) = no-op; must be thread-safe (all
  /// shard workers call it concurrently). Never affects served bits.
  std::function<void(std::size_t, const BatchKey&, std::size_t)> before_batch;
};

/// \brief Throws std::invalid_argument with a descriptive message when the
/// configuration is unusable (zero queue capacity, bad batch policy, negative
/// thread count, zero cache shards/capacity, zero consumer shards, a
/// multi-shard tape backend, an int8 default on the tape backend, or zero
/// calibration frames).
void validate(const ServerConfig& config);

/// \brief One served frame's outcome, typed by the task that produced it.
struct TaskResult {
  int camera_id = -1;
  std::int64_t sequence = -1;
  Task task = Task::kClassify;
  std::uint64_t pattern_id = 0;
  Precision precision = Precision::kFp32;  ///< tier that served the frame
  /// Progressive-decode depth the frame was served at (0 = full depth).
  /// Lets resilience harnesses tell full-fidelity results (base depth +
  /// precision) from ladder-degraded ones.
  std::uint8_t decode_depth = 0;

  /// kClassify: predicted class (argmax of the AR head's logits).
  std::int64_t predicted = -1;
  std::int64_t label = -1;  ///< ground truth when the camera knows it

  /// kReconstruct: the decoded (T, H, W) video.
  Tensor reconstruction;
};

class InferenceServer {
 public:
  /// \brief The system provides the served model weights. The server keeps a
  /// reference — the system must outlive it.
  explicit InferenceServer(const core::SnapPixSystem& system,
                           const ServerConfig& config = {});

  /// \brief Registers the camera's pattern in the server's pattern registry
  /// (shard caches rebuild evicted entries from it), routes the camera to the
  /// shard owning its pattern_id, and hands it to the scheduler.
  void add_camera(std::unique_ptr<CameraSource> camera);
  std::size_t camera_count() const { return scheduler_.camera_count(); }

  /// \brief Runs every camera for `frames_per_camera` frames, serving batches
  /// on the shard workers until every stream drains. One-shot. Results are
  /// returned sorted by (camera_id, sequence) so runs are comparable across
  /// shard counts and steal interleavings.
  std::vector<TaskResult> run(std::int64_t frames_per_camera);
  /// \brief Skewed-fleet variant: camera i (in add_camera order) emits
  /// frames_per_camera[i] frames.
  std::vector<TaskResult> run(const std::vector<std::int64_t>& frames_per_camera);

  /// \brief Valid after run(). Includes per-shard views (RuntimeSummary::shards).
  RuntimeSummary summary() const;
  FleetEnergyReport fleet_energy(const energy::EnergyModel& model,
                                 energy::WirelessTech tech) const;

  /// \brief Point-in-time copy of the live metrics registry. Safe to call
  /// MID-RUN from any thread (lock-free value reads — see obs/metrics.h);
  /// render with obs::to_json or obs::to_prometheus.
  obs::MetricsSnapshot metrics_snapshot() const { return stats_.registry().snapshot(); }

  /// \brief The trace recorder, or null when ServerConfig::trace.enabled is
  /// false. Spans may be read mid-run (lanes publish with release/acquire;
  /// a reader sees a consistent prefix); the full trace exists after run().
  const obs::TraceRecorder* trace_recorder() const { return trace_recorder_.get(); }
  /// \brief Chrome trace-event JSON of the recorded spans (requires tracing
  /// enabled; call after run()). Loadable in Perfetto / chrome://tracing.
  std::string trace_json() const;
  /// \brief Writes trace_json() to `path`.
  void write_trace(const std::string& path) const;

  const RuntimeStats& stats() const { return stats_; }
  const ServerConfig& config() const { return config_; }
  /// \brief The fleet health controller, or null when ServerConfig::health is
  /// disabled. Snapshots (state, ladder step, counters) are safe mid-run.
  const HealthController* health() const { return health_.get(); }
  /// \brief Shard `shard`'s private cache view; null when serving through the
  /// tape backend.
  const EngineCache* engine_cache(std::size_t shard = 0) const;

 private:
  /// One consumer shard: run queue + private cache view + worker-owned
  /// counters and result rows (touched lock-free by exactly one worker
  /// during a run, merged after the join).
  struct Shard {
    explicit Shard(std::size_t shard_index, std::size_t queue_capacity)
        : index(shard_index), queue(queue_capacity) {}
    std::size_t index;
    FrameQueue queue;
    std::unique_ptr<EngineCache> cache;  // null for kTapeFramework
    obs::TraceLane* lane = nullptr;      // null when tracing is off
    ShardStatsView counters;
    std::vector<TaskResult> results;
    // order: relaxed — a pure liveness counter. The worker bumps it every
    // loop iteration; the watchdog only compares successive reads for
    // INEQUALITY (progress vs. stall), so no ordering with the work itself
    // is needed.
    std::atomic<std::uint64_t> heartbeat{0};
    // order: relaxed — only the watchdog thread reads AND writes it (the
    // single-supervisor protocol); it exists so a recovered shard is routed
    // home exactly once.
    std::atomic<bool> stalled{false};
  };

  std::size_t shard_for(std::uint64_t pattern_id) const {
    return pattern_id % shards_.size();
  }
  void shard_loop(std::size_t index);
  /// Serves one key-pure batch on shard `self`, appending its TaskResults.
  /// `reason` is why the batch closed (kSteal for stolen batches).
  void serve_batch(Shard& self, const BatchKey& key, std::vector<Frame>& batch,
                   FlushReason reason);
  /// Emits the synthesized per-frame lifecycle spans (async b/e events, cat
  /// "frame") for every trace-sampled frame of a served batch onto `lane`.
  void emit_frame_lifecycles(obs::TraceLane& lane, const std::vector<Frame>& batch,
                             Clock::time_point infer_start,
                             Clock::time_point infer_end) const;
  /// True when no shard queue can ever yield another frame to `index`'s
  /// worker: its own queue is exhausted and every sibling queue is too.
  bool fleet_exhausted(std::size_t index) const;
  /// Supervisor loop (own thread, only when health.watchdog.enabled and
  /// shards > 1): polls each shard's heartbeat; a worker that holds a
  /// non-empty open queue without beating for `stall_polls` polls is declared
  /// stalled — its cameras are re-routed to the least-loaded live sibling and
  /// its queued frames drained over with exact conservation. A stalled shard
  /// that beats again is routed home. See docs/resilience.md.
  void watchdog_loop();
  /// Re-routes shard `index`'s cameras and drains its queued frames to the
  /// healthiest sibling. Idempotent per stall (re-drains catch frames a
  /// blocked producer landed after the first sweep).
  void rescue_shard(std::size_t index);

  /// Emits a "health_transition" instant onto health_lane_ (no-op when
  /// tracing is off). Runs on producer threads via the controller's
  /// transition hook, hence the serializing mutex.
  void trace_health_transition(int camera_id, HealthState from, HealthState to,
                               int ladder_step);

  const core::SnapPixSystem& system_;
  ServerConfig config_;
  // pattern_id -> the pattern itself, fed to shard caches on (re)build.
  // Shared handles: a fleet on the system pattern contributes one entry, zero
  // copies. Mutated only by add_camera (before run); workers read it freely.
  std::unordered_map<std::uint64_t, PatternRef> patterns_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<obs::TraceRecorder> trace_recorder_;  // null when tracing off
  /// Dedicated lane for "shed" events (null when tracing is off). Sheds
  /// happen on producer threads AND shard workers, so the single-writer
  /// lane protocol needs an external writer lock — shed_lane_mutex_
  /// serializes the writes (sheds are the rare, cold path; a contended
  /// mutex here costs nothing on the serve path).
  obs::TraceLane* shed_lane_ = nullptr;
  std::mutex shed_lane_mutex_;
  /// Lane for health state transitions (null when tracing is off). Written
  /// by producer threads through the transition hook; the mutex serializes
  /// them (transitions are rare by construction — hysteresis bounds their
  /// rate to once per window).
  obs::TraceLane* health_lane_ = nullptr;
  std::mutex health_lane_mutex_;
  RuntimeStats stats_;
  /// Built before scheduler_ (producers consult it) and destroyed after the
  /// scheduler joins its producers; null when config_.health.enabled is off.
  std::unique_ptr<HealthController> health_;
  StreamScheduler scheduler_;
  // order: release by run() after the shard workers join (everything the
  // watchdog must not outlive is quiescent), acquire in the watchdog poll
  // loop — the one cross-thread handshake that stops the supervisor.
  std::atomic<bool> watchdog_stop_{false};
  std::string worker_error_;  // first exception a shard worker caught
  std::mutex worker_error_mutex_;
  double wall_seconds_ = 0.0;
  std::int64_t pixels_per_frame_ = 0;
  bool ran_ = false;
};

}  // namespace snappix::runtime
