#include "runtime/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/common.h"

namespace snappix::runtime {

namespace {

StageSummary summarize(const obs::Histogram& h) {
  StageSummary out;
  out.count = static_cast<std::size_t>(h.count());
  out.mean_ms = h.mean() * 1e3;
  out.p50_ms = h.percentile(50.0) * 1e3;
  out.p95_ms = h.percentile(95.0) * 1e3;
  out.p99_ms = h.percentile(99.0) * 1e3;
  return out;
}

}  // namespace

RuntimeStats::RuntimeStats()
    : capture_(registry_.histogram("snappix_capture_seconds")),
      queue_wait_(registry_.histogram("snappix_queue_wait_seconds")),
      inference_(registry_.histogram("snappix_inference_seconds")),
      end_to_end_(registry_.histogram("snappix_e2e_seconds")),
      frames_(registry_.counter("snappix_frames_total")),
      batches_(registry_.counter("snappix_batches_total")),
      batched_frames_(registry_.counter("snappix_batched_frames_total")),
      classify_frames_(registry_.counter("snappix_task_frames_total{task=\"classify\"}")),
      reconstruct_frames_(
          registry_.counter("snappix_task_frames_total{task=\"reconstruct\"}")),
      fp32_frames_(registry_.counter("snappix_precision_frames_total{precision=\"fp32\"}")),
      int8_frames_(registry_.counter("snappix_precision_frames_total{precision=\"int8\"}")),
      raw_bytes_(registry_.counter("snappix_raw_bytes_total")),
      wire_bytes_(registry_.counter("snappix_wire_bytes_total")),
      deadline_miss_(registry_.counter("snappix_deadline_miss_total")),
      queue_high_water_(registry_.gauge("snappix_queue_high_water")) {
  for (const FlushReason reason :
       {FlushReason::kMaxBatch, FlushReason::kMaxLatency, FlushReason::kExhausted,
        FlushReason::kHoldback, FlushReason::kSteal}) {
    flush_[static_cast<std::size_t>(reason)] = &registry_.counter(
        std::string("snappix_batch_flush_total{reason=\"") + to_string(reason) + "\"}");
  }
  for (const QosClass qos :
       {QosClass::kRealtime, QosClass::kStandard, QosClass::kBestEffort}) {
    for (const ShedReason reason : {ShedReason::kQueueFull, ShedReason::kDeadline}) {
      shed_[static_cast<std::size_t>(qos)][static_cast<std::size_t>(reason)] =
          &registry_.counter(std::string("snappix_shed_frames_total{qos=\"") +
                             to_string(qos) + "\",reason=\"" + to_string(reason) + "\"}");
    }
    e2e_qos_[static_cast<std::size_t>(qos)] = &registry_.histogram(
        std::string("snappix_e2e_seconds{qos=\"") + to_string(qos) + "\"}");
  }
}

void RuntimeStats::record_capture(double seconds) { capture_.observe(seconds); }

void RuntimeStats::record_queue_wait(double seconds) { queue_wait_.observe(seconds); }

void RuntimeStats::record_batch(std::size_t batch_size, double inference_seconds,
                                FlushReason reason) {
  batches_.add();
  batched_frames_.add(batch_size);
  flush_[static_cast<std::size_t>(reason)]->add();
  inference_.observe(inference_seconds);
}

void RuntimeStats::record_task_frames(Task task, std::size_t count) {
  (task == Task::kClassify ? classify_frames_ : reconstruct_frames_).add(count);
}

void RuntimeStats::record_precision_frames(Precision precision, std::size_t count) {
  (precision == Precision::kFp32 ? fp32_frames_ : int8_frames_).add(count);
}

void RuntimeStats::record_transport(int camera_id, TransportStatus status, int retransmits,
                                    bool dropped, bool codec, int decoded_planes,
                                    int total_planes) {
  std::lock_guard<std::mutex> lock(mutex_);
  TransportCounters& c = transport_[camera_id];
  ++c.framed_frames;
  switch (status) {
    case TransportStatus::kFramedOk:
      ++c.ok_frames;
      break;
    case TransportStatus::kCrcError:
      ++c.crc_errors;
      break;
    case TransportStatus::kTruncated:
      ++c.truncated;
      break;
    case TransportStatus::kMissingLines:
      ++c.missing_lines;
      break;
    default:
      break;  // kInMemory frames are never recorded here
  }
  c.retransmits += static_cast<std::uint64_t>(retransmits);
  if (dropped) {
    ++c.dropped_frames;
  }
  if (codec) {
    ++c.codec_frames;
    c.codec_planes_decoded += static_cast<std::uint64_t>(decoded_planes);
    c.codec_planes_total += static_cast<std::uint64_t>(total_planes);
  }
}

void RuntimeStats::record_shed(int camera_id, QosClass qos, ShedReason reason) {
  shed_[static_cast<std::size_t>(qos)][static_cast<std::size_t>(reason)]->add();
  std::lock_guard<std::mutex> lock(mutex_);
  ShedCounters& c = shed_cameras_[camera_id];
  if (reason == ShedReason::kQueueFull) {
    ++c.queue_full;
  } else {
    ++c.deadline;
  }
}

void RuntimeStats::record_deadline_miss(int camera_id) {
  deadline_miss_.add();
  std::lock_guard<std::mutex> lock(mutex_);
  ++shed_cameras_[camera_id].deadline_misses;
}

void RuntimeStats::record_health_transition(int camera_id, HealthState from,
                                            HealthState to) {
  // Cold path (a handful of events per run at most): labeled counters are
  // resolved by name on demand instead of pre-building the 4x4 matrix.
  registry_.counter(std::string("snappix_health_transitions_total{from=\"") +
                    to_string(from) + "\",to=\"" + to_string(to) + "\"}")
      .add();
  registry_.gauge(std::string("snappix_camera_health{camera=\"") +
                  std::to_string(camera_id) + "\"}")
      .set(static_cast<double>(to));
  std::lock_guard<std::mutex> lock(mutex_);
  ++health_cameras_[camera_id].transitions;
}

void RuntimeStats::record_ladder_step(int camera_id, bool down, int step) {
  registry_.counter(std::string("snappix_ladder_steps_total{direction=\"") +
                    (down ? "down" : "up") + "\"}")
      .add();
  registry_.gauge(std::string("snappix_camera_ladder_step{camera=\"") +
                  std::to_string(camera_id) + "\"}")
      .set(static_cast<double>(step));
  std::lock_guard<std::mutex> lock(mutex_);
  HealthCounters& c = health_cameras_[camera_id];
  ++(down ? c.steps_down : c.steps_up);
}

void RuntimeStats::record_quarantine_drop(int camera_id) {
  registry_.counter("snappix_quarantine_drops_total").add();
  std::lock_guard<std::mutex> lock(mutex_);
  ++health_cameras_[camera_id].quarantine_drops;
}

void RuntimeStats::record_watchdog_stall(std::size_t shard) {
  registry_.counter(std::string("snappix_watchdog_stalls_total{shard=\"") +
                    std::to_string(shard) + "\"}")
      .add();
  std::lock_guard<std::mutex> lock(mutex_);
  ++watchdog_stalls_;
}

void RuntimeStats::record_rerouted_frames(std::size_t count) {
  registry_.counter("snappix_watchdog_rerouted_frames_total").add(count);
  std::lock_guard<std::mutex> lock(mutex_);
  rerouted_frames_ += count;
}

void RuntimeStats::record_frame_done(std::uint64_t raw_bytes, std::uint64_t wire_bytes,
                                     double end_to_end_seconds, QosClass qos) {
  frames_.add();
  raw_bytes_.add(raw_bytes);
  wire_bytes_.add(wire_bytes);
  end_to_end_.observe(end_to_end_seconds);
  e2e_qos_[static_cast<std::size_t>(qos)]->observe(end_to_end_seconds);
}

void RuntimeStats::set_queue_high_water(std::size_t depth) {
  queue_high_water_.set_max(static_cast<double>(depth));
}

void RuntimeStats::set_cache_counters(std::uint64_t hits, std::uint64_t misses,
                                      std::uint64_t evictions) {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_hits_ = hits;
  cache_misses_ = misses;
  cache_evictions_ = evictions;
}

void RuntimeStats::set_cache_tier_counters(const CacheTierCounters& fp32,
                                           const CacheTierCounters& int8) {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_fp32_ = fp32;
  cache_int8_ = int8;
}

void RuntimeStats::set_shard_views(std::vector<ShardStatsView> shards) {
  std::lock_guard<std::mutex> lock(mutex_);
  shards_ = std::move(shards);
}

RuntimeSummary RuntimeStats::summary(double wall_seconds) const {
  RuntimeSummary out;
  const std::uint64_t frames = frames_.value();
  const std::uint64_t batches = batches_.value();
  const std::uint64_t batched_frames = batched_frames_.value();
  const std::uint64_t raw_bytes = raw_bytes_.value();
  const std::uint64_t wire_bytes = wire_bytes_.value();
  out.frames = frames;
  out.batches = batches;
  out.wall_seconds = wall_seconds;
  out.aggregate_fps =
      wall_seconds > 0.0 ? static_cast<double>(frames) / wall_seconds : 0.0;
  out.mean_batch_size =
      batches > 0 ? static_cast<double>(batched_frames) / static_cast<double>(batches) : 0.0;
  out.queue_high_water = static_cast<std::size_t>(queue_high_water_.value());
  out.classify_frames = classify_frames_.value();
  out.reconstruct_frames = reconstruct_frames_.value();
  out.fp32_frames = fp32_frames_.value();
  out.int8_frames = int8_frames_.value();
  out.flush_max_batch = flush_[static_cast<std::size_t>(FlushReason::kMaxBatch)]->value();
  out.flush_max_latency =
      flush_[static_cast<std::size_t>(FlushReason::kMaxLatency)]->value();
  out.flush_exhausted = flush_[static_cast<std::size_t>(FlushReason::kExhausted)]->value();
  out.flush_holdback = flush_[static_cast<std::size_t>(FlushReason::kHoldback)]->value();
  out.flush_steal = flush_[static_cast<std::size_t>(FlushReason::kSteal)]->value();
  out.capture = summarize(capture_);
  out.queue_wait = summarize(queue_wait_);
  out.inference = summarize(inference_);
  out.end_to_end = summarize(end_to_end_);
  out.e2e_realtime = summarize(*e2e_qos_[static_cast<std::size_t>(QosClass::kRealtime)]);
  out.e2e_standard = summarize(*e2e_qos_[static_cast<std::size_t>(QosClass::kStandard)]);
  out.e2e_best_effort =
      summarize(*e2e_qos_[static_cast<std::size_t>(QosClass::kBestEffort)]);
  for (const QosClass qos :
       {QosClass::kRealtime, QosClass::kStandard, QosClass::kBestEffort}) {
    std::uint64_t by_qos = 0;
    for (const ShedReason reason : {ShedReason::kQueueFull, ShedReason::kDeadline}) {
      const std::uint64_t n =
          shed_[static_cast<std::size_t>(qos)][static_cast<std::size_t>(reason)]->value();
      by_qos += n;
      (reason == ShedReason::kQueueFull ? out.shed_queue_full : out.shed_deadline) += n;
    }
    switch (qos) {
      case QosClass::kRealtime: out.shed_realtime = by_qos; break;
      case QosClass::kStandard: out.shed_standard = by_qos; break;
      case QosClass::kBestEffort: out.shed_best_effort = by_qos; break;
    }
  }
  out.shed_frames = out.shed_queue_full + out.shed_deadline;
  out.deadline_misses = deadline_miss_.value();
  out.raw_bytes = raw_bytes;
  out.wire_bytes = wire_bytes;
  out.compression_ratio =
      wire_bytes > 0 ? static_cast<double>(raw_bytes) / static_cast<double>(wire_bytes) : 0.0;

  std::lock_guard<std::mutex> lock(mutex_);
  out.cache_fp32 = cache_fp32_;
  out.cache_int8 = cache_int8_;
  out.cache_hits = cache_hits_;
  out.cache_misses = cache_misses_;
  out.cache_evictions = cache_evictions_;
  const std::uint64_t lookups = cache_hits_ + cache_misses_;
  out.cache_hit_rate =
      lookups > 0 ? static_cast<double>(cache_hits_) / static_cast<double>(lookups) : 0.0;
  out.shards = shards_;
  for (const ShardStatsView& shard : shards_) {
    out.steal_attempts += shard.steal_attempts;
    out.steal_successes += shard.steal_successes;
    out.stolen_frames += shard.stolen_frames;
  }
  for (const auto& [camera_id, counters] : shed_cameras_) {
    out.shed_cameras.emplace_back(camera_id, counters);
  }
  out.watchdog_stalls = watchdog_stalls_;
  out.rerouted_frames = rerouted_frames_;
  for (const auto& [camera_id, counters] : health_cameras_) {
    out.health_cameras.emplace_back(camera_id, counters);
    out.health_transitions += counters.transitions;
    out.ladder_steps_down += counters.steps_down;
    out.ladder_steps_up += counters.steps_up;
    out.quarantine_drops += counters.quarantine_drops;
  }
  for (const auto& [camera_id, counters] : transport_) {
    out.transport_cameras.emplace_back(camera_id, counters);
    out.transport.framed_frames += counters.framed_frames;
    out.transport.ok_frames += counters.ok_frames;
    out.transport.crc_errors += counters.crc_errors;
    out.transport.truncated += counters.truncated;
    out.transport.missing_lines += counters.missing_lines;
    out.transport.retransmits += counters.retransmits;
    out.transport.dropped_frames += counters.dropped_frames;
    out.transport.codec_frames += counters.codec_frames;
    out.transport.codec_planes_decoded += counters.codec_planes_decoded;
    out.transport.codec_planes_total += counters.codec_planes_total;
  }
  return out;
}

FleetEnergyReport RuntimeStats::fleet_energy(const energy::EnergyModel& model,
                                             std::int64_t pixels_per_frame, int slots,
                                             energy::WirelessTech tech) const {
  const std::uint64_t frames = frames_.value();
  FleetEnergyReport report;
  report.conventional_j =
      static_cast<double>(frames) *
      model.conventional_edge_energy_j(pixels_per_frame, slots, tech);
  report.snappix_j = static_cast<double>(frames) *
                     model.snappix_edge_energy_j(pixels_per_frame, slots, tech);
  report.saving_factor =
      report.snappix_j > 0.0 ? report.conventional_j / report.snappix_j : 0.0;
  return report;
}

std::string to_string(const RuntimeSummary& s) {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "  frames %llu in %.3f s -> %.1f fps (batches %llu, mean size %.2f)\n"
      "  latency ms (mean/p50/p95/p99): capture %.3f/%.3f/%.3f/%.3f  queue "
      "%.3f/%.3f/%.3f/%.3f\n"
      "                                 infer %.3f/%.3f/%.3f/%.3f  e2e "
      "%.3f/%.3f/%.3f/%.3f\n"
      "  flushes: max_batch %llu max_latency %llu exhausted %llu holdback %llu "
      "steal %llu\n"
      "  queue high water %zu; bytes raw %llu vs wire %llu (%.1fx compression)\n"
      "  tasks: classify %llu / reconstruct %llu; engine cache hit %llu miss %llu "
      "evict %llu (hit rate %.2f)\n",
      static_cast<unsigned long long>(s.frames), s.wall_seconds, s.aggregate_fps,
      static_cast<unsigned long long>(s.batches), s.mean_batch_size, s.capture.mean_ms,
      s.capture.p50_ms, s.capture.p95_ms, s.capture.p99_ms, s.queue_wait.mean_ms,
      s.queue_wait.p50_ms, s.queue_wait.p95_ms, s.queue_wait.p99_ms, s.inference.mean_ms,
      s.inference.p50_ms, s.inference.p95_ms, s.inference.p99_ms, s.end_to_end.mean_ms,
      s.end_to_end.p50_ms, s.end_to_end.p95_ms, s.end_to_end.p99_ms,
      static_cast<unsigned long long>(s.flush_max_batch),
      static_cast<unsigned long long>(s.flush_max_latency),
      static_cast<unsigned long long>(s.flush_exhausted),
      static_cast<unsigned long long>(s.flush_holdback),
      static_cast<unsigned long long>(s.flush_steal), s.queue_high_water,
      static_cast<unsigned long long>(s.raw_bytes),
      static_cast<unsigned long long>(s.wire_bytes), s.compression_ratio,
      static_cast<unsigned long long>(s.classify_frames),
      static_cast<unsigned long long>(s.reconstruct_frames),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.cache_misses),
      static_cast<unsigned long long>(s.cache_evictions), s.cache_hit_rate);
  std::string out(buf);
  if (s.int8_frames > 0) {
    char line[320];
    std::snprintf(line, sizeof(line),
                  "  precision: fp32 %llu / int8 %llu frames; cache fp32 %llu/%llu/%llu "
                  "int8 %llu/%llu/%llu (hit/miss/evict)\n",
                  static_cast<unsigned long long>(s.fp32_frames),
                  static_cast<unsigned long long>(s.int8_frames),
                  static_cast<unsigned long long>(s.cache_fp32.hits),
                  static_cast<unsigned long long>(s.cache_fp32.misses),
                  static_cast<unsigned long long>(s.cache_fp32.evictions),
                  static_cast<unsigned long long>(s.cache_int8.hits),
                  static_cast<unsigned long long>(s.cache_int8.misses),
                  static_cast<unsigned long long>(s.cache_int8.evictions));
    out += line;
  }
  if (!s.shards.empty()) {
    char line[256];
    std::snprintf(line, sizeof(line), "  steals: %llu/%llu succeeded (%llu frames stolen)\n",
                  static_cast<unsigned long long>(s.steal_successes),
                  static_cast<unsigned long long>(s.steal_attempts),
                  static_cast<unsigned long long>(s.stolen_frames));
    out += line;
    for (const ShardStatsView& shard : s.shards) {
      std::snprintf(line, sizeof(line),
                    "  shard %zu: frames %llu batches %llu stolen %llu (%llu frames) "
                    "cache %llu/%llu/%llu qhw %zu\n",
                    shard.shard, static_cast<unsigned long long>(shard.frames),
                    static_cast<unsigned long long>(shard.batches),
                    static_cast<unsigned long long>(shard.steal_successes),
                    static_cast<unsigned long long>(shard.stolen_frames),
                    static_cast<unsigned long long>(shard.cache_hits),
                    static_cast<unsigned long long>(shard.cache_misses),
                    static_cast<unsigned long long>(shard.cache_evictions),
                    shard.queue_high_water);
      out += line;
    }
  }
  if (s.shed_frames > 0 || s.deadline_misses > 0) {
    char line[320];
    std::snprintf(line, sizeof(line),
                  "  overload: shed %llu (queue_full %llu deadline %llu; rt %llu std %llu "
                  "be %llu) deadline misses %llu\n",
                  static_cast<unsigned long long>(s.shed_frames),
                  static_cast<unsigned long long>(s.shed_queue_full),
                  static_cast<unsigned long long>(s.shed_deadline),
                  static_cast<unsigned long long>(s.shed_realtime),
                  static_cast<unsigned long long>(s.shed_standard),
                  static_cast<unsigned long long>(s.shed_best_effort),
                  static_cast<unsigned long long>(s.deadline_misses));
    out += line;
    for (const auto& [camera_id, c] : s.shed_cameras) {
      std::snprintf(line, sizeof(line),
                    "    camera %d: queue_full %llu deadline %llu misses %llu\n", camera_id,
                    static_cast<unsigned long long>(c.queue_full),
                    static_cast<unsigned long long>(c.deadline),
                    static_cast<unsigned long long>(c.deadline_misses));
      out += line;
    }
  }
  if (s.health_transitions > 0 || s.watchdog_stalls > 0) {
    char line[320];
    std::snprintf(line, sizeof(line),
                  "  health: transitions %llu ladder down %llu up %llu quarantine drops "
                  "%llu; watchdog stalls %llu rerouted %llu\n",
                  static_cast<unsigned long long>(s.health_transitions),
                  static_cast<unsigned long long>(s.ladder_steps_down),
                  static_cast<unsigned long long>(s.ladder_steps_up),
                  static_cast<unsigned long long>(s.quarantine_drops),
                  static_cast<unsigned long long>(s.watchdog_stalls),
                  static_cast<unsigned long long>(s.rerouted_frames));
    out += line;
    for (const auto& [camera_id, c] : s.health_cameras) {
      std::snprintf(line, sizeof(line),
                    "    camera %d: transitions %llu down %llu up %llu quarantine %llu\n",
                    camera_id, static_cast<unsigned long long>(c.transitions),
                    static_cast<unsigned long long>(c.steps_down),
                    static_cast<unsigned long long>(c.steps_up),
                    static_cast<unsigned long long>(c.quarantine_drops));
      out += line;
    }
  }
  if (s.transport.framed_frames > 0) {
    char line[320];
    std::snprintf(line, sizeof(line),
                  "  transport: framed %llu ok %llu crc %llu trunc %llu missing %llu "
                  "retransmits %llu dropped %llu\n",
                  static_cast<unsigned long long>(s.transport.framed_frames),
                  static_cast<unsigned long long>(s.transport.ok_frames),
                  static_cast<unsigned long long>(s.transport.crc_errors),
                  static_cast<unsigned long long>(s.transport.truncated),
                  static_cast<unsigned long long>(s.transport.missing_lines),
                  static_cast<unsigned long long>(s.transport.retransmits),
                  static_cast<unsigned long long>(s.transport.dropped_frames));
    out += line;
    for (const auto& [camera_id, c] : s.transport_cameras) {
      std::snprintf(line, sizeof(line),
                    "    camera %d: framed %llu ok %llu crc %llu trunc %llu missing %llu "
                    "retransmits %llu dropped %llu\n",
                    camera_id, static_cast<unsigned long long>(c.framed_frames),
                    static_cast<unsigned long long>(c.ok_frames),
                    static_cast<unsigned long long>(c.crc_errors),
                    static_cast<unsigned long long>(c.truncated),
                    static_cast<unsigned long long>(c.missing_lines),
                    static_cast<unsigned long long>(c.retransmits),
                    static_cast<unsigned long long>(c.dropped_frames));
      out += line;
    }
    if (s.transport.codec_frames > 0) {
      std::snprintf(line, sizeof(line),
                    "  codec: frames %llu planes decoded %llu of %llu\n",
                    static_cast<unsigned long long>(s.transport.codec_frames),
                    static_cast<unsigned long long>(s.transport.codec_planes_decoded),
                    static_cast<unsigned long long>(s.transport.codec_planes_total));
      out += line;
    }
  }
  return out;
}

std::string to_json(const CacheTierCounters& c) {
  std::ostringstream os;
  os << "{\"hits\": " << c.hits << ", \"misses\": " << c.misses
     << ", \"evictions\": " << c.evictions << "}";
  return os.str();
}

std::string to_json(const HealthCounters& c) {
  std::ostringstream os;
  os << "{\"transitions\": " << c.transitions << ", \"steps_down\": " << c.steps_down
     << ", \"steps_up\": " << c.steps_up
     << ", \"quarantine_drops\": " << c.quarantine_drops << "}";
  return os.str();
}

std::string to_json(const TransportCounters& c) {
  std::ostringstream os;
  os << "{\"framed_frames\": " << c.framed_frames << ", \"ok_frames\": " << c.ok_frames
     << ", \"crc_errors\": " << c.crc_errors << ", \"truncated\": " << c.truncated
     << ", \"missing_lines\": " << c.missing_lines
     << ", \"retransmits\": " << c.retransmits
     << ", \"dropped_frames\": " << c.dropped_frames
     << ", \"codec_frames\": " << c.codec_frames
     << ", \"codec_planes_decoded\": " << c.codec_planes_decoded
     << ", \"codec_planes_total\": " << c.codec_planes_total << "}";
  return os.str();
}

std::string to_json(const ShedCounters& c) {
  std::ostringstream os;
  os << "{\"queue_full\": " << c.queue_full << ", \"deadline\": " << c.deadline
     << ", \"deadline_misses\": " << c.deadline_misses << "}";
  return os.str();
}

std::string to_json(const ShardStatsView& s) {
  std::ostringstream os;
  os << "{\"shard\": " << s.shard << ", \"frames\": " << s.frames
     << ", \"batches\": " << s.batches << ", \"steal_attempts\": " << s.steal_attempts
     << ", \"steal_successes\": " << s.steal_successes
     << ", \"stolen_frames\": " << s.stolen_frames << ", \"cache_hits\": " << s.cache_hits
     << ", \"cache_misses\": " << s.cache_misses
     << ", \"cache_evictions\": " << s.cache_evictions
     << ", \"queue_high_water\": " << s.queue_high_water
     << ", \"flush_max_batch\": " << s.flush_max_batch
     << ", \"flush_max_latency\": " << s.flush_max_latency
     << ", \"flush_exhausted\": " << s.flush_exhausted
     << ", \"flush_holdback\": " << s.flush_holdback
     << ", \"flush_steal\": " << s.flush_steal << "}";
  return os.str();
}

std::string to_json(const RuntimeSummary& s, const FleetEnergyReport& energy,
                    const std::string& label) {
  // Every double goes through obs::json_number: an empty run's 0s and any
  // non-finite ratio render as valid JSON, never "nan"/"inf".
  const auto num = [](double v) { return obs::json_number(v); };
  std::ostringstream os;
  os << "{\"label\": \"" << label << "\", \"frames\": " << s.frames
     << ", \"batches\": " << s.batches << ", \"wall_seconds\": " << num(s.wall_seconds)
     << ", \"aggregate_fps\": " << num(s.aggregate_fps)
     << ", \"mean_batch_size\": " << num(s.mean_batch_size)
     << ", \"queue_high_water\": " << s.queue_high_water
     << ", \"capture_p50_ms\": " << num(s.capture.p50_ms)
     << ", \"capture_p95_ms\": " << num(s.capture.p95_ms)
     << ", \"capture_p99_ms\": " << num(s.capture.p99_ms)
     << ", \"queue_wait_p50_ms\": " << num(s.queue_wait.p50_ms)
     << ", \"queue_wait_p95_ms\": " << num(s.queue_wait.p95_ms)
     << ", \"queue_wait_p99_ms\": " << num(s.queue_wait.p99_ms)
     << ", \"inference_p50_ms\": " << num(s.inference.p50_ms)
     << ", \"inference_p95_ms\": " << num(s.inference.p95_ms)
     << ", \"inference_p99_ms\": " << num(s.inference.p99_ms)
     << ", \"e2e_p50_ms\": " << num(s.end_to_end.p50_ms)
     << ", \"e2e_p95_ms\": " << num(s.end_to_end.p95_ms)
     << ", \"e2e_p99_ms\": " << num(s.end_to_end.p99_ms)
     << ", \"raw_bytes\": " << s.raw_bytes
     << ", \"wire_bytes\": " << s.wire_bytes
     << ", \"compression_ratio\": " << num(s.compression_ratio)
     << ", \"flush_max_batch\": " << s.flush_max_batch
     << ", \"flush_max_latency\": " << s.flush_max_latency
     << ", \"flush_exhausted\": " << s.flush_exhausted
     << ", \"flush_holdback\": " << s.flush_holdback
     << ", \"flush_steal\": " << s.flush_steal
     << ", \"classify_frames\": " << s.classify_frames
     << ", \"reconstruct_frames\": " << s.reconstruct_frames
     << ", \"fp32_frames\": " << s.fp32_frames << ", \"int8_frames\": " << s.int8_frames
     << ", \"cache_hits\": " << s.cache_hits << ", \"cache_misses\": " << s.cache_misses
     << ", \"cache_evictions\": " << s.cache_evictions
     << ", \"cache_hit_rate\": " << num(s.cache_hit_rate)
     << ", \"cache_fp32\": " << to_json(s.cache_fp32)
     << ", \"cache_int8\": " << to_json(s.cache_int8)
     << ", \"steal_attempts\": " << s.steal_attempts
     << ", \"steal_successes\": " << s.steal_successes
     << ", \"stolen_frames\": " << s.stolen_frames << ", \"shards\": [";
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    os << (i > 0 ? ", " : "") << to_json(s.shards[i]);
  }
  os << "]"
     << ", \"shed_frames\": " << s.shed_frames
     << ", \"shed_queue_full\": " << s.shed_queue_full
     << ", \"shed_deadline\": " << s.shed_deadline
     << ", \"shed_realtime\": " << s.shed_realtime
     << ", \"shed_standard\": " << s.shed_standard
     << ", \"shed_best_effort\": " << s.shed_best_effort
     << ", \"deadline_misses\": " << s.deadline_misses
     << ", \"e2e_realtime_p99_ms\": " << num(s.e2e_realtime.p99_ms)
     << ", \"e2e_standard_p99_ms\": " << num(s.e2e_standard.p99_ms)
     << ", \"e2e_best_effort_p99_ms\": " << num(s.e2e_best_effort.p99_ms)
     << ", \"shed_cameras\": [";
  for (std::size_t i = 0; i < s.shed_cameras.size(); ++i) {
    os << (i > 0 ? ", " : "") << "{\"camera_id\": " << s.shed_cameras[i].first
       << ", \"counters\": " << to_json(s.shed_cameras[i].second) << "}";
  }
  os << "]"
     << ", \"transport\": " << to_json(s.transport) << ", \"transport_cameras\": [";
  for (std::size_t i = 0; i < s.transport_cameras.size(); ++i) {
    os << (i > 0 ? ", " : "") << "{\"camera_id\": " << s.transport_cameras[i].first
       << ", \"counters\": " << to_json(s.transport_cameras[i].second) << "}";
  }
  os << "]"
     << ", \"health_transitions\": " << s.health_transitions
     << ", \"ladder_steps_down\": " << s.ladder_steps_down
     << ", \"ladder_steps_up\": " << s.ladder_steps_up
     << ", \"quarantine_drops\": " << s.quarantine_drops
     << ", \"watchdog_stalls\": " << s.watchdog_stalls
     << ", \"rerouted_frames\": " << s.rerouted_frames << ", \"health_cameras\": [";
  for (std::size_t i = 0; i < s.health_cameras.size(); ++i) {
    os << (i > 0 ? ", " : "") << "{\"camera_id\": " << s.health_cameras[i].first
       << ", \"counters\": " << to_json(s.health_cameras[i].second) << "}";
  }
  os << "]"
     << ", \"energy_conventional_j\": " << num(energy.conventional_j)
     << ", \"energy_snappix_j\": " << num(energy.snappix_j)
     << ", \"energy_saving_factor\": " << num(energy.saving_factor) << "}";
  return os.str();
}

}  // namespace snappix::runtime
