#include "runtime/runtime.h"

#include <algorithm>

#include "util/common.h"

namespace snappix::runtime {

StreamingRuntime::StreamingRuntime(const core::SnapPixSystem& system,
                                   const RuntimeConfig& config)
    : system_(system), config_(config), queue_(config.queue_capacity),
      stats_(), scheduler_(queue_, stats_, config.scheduler_threads) {
  if (config_.backend == InferenceBackend::kFusedEngine) {
    engine_ = std::make_unique<BatchedVitEngine>(
        *system.classifier(), std::max(config_.batch.max_batch, 1));
  }
  pixels_per_frame_ = system.config().image * system.config().image;
}

void StreamingRuntime::add_camera(std::unique_ptr<CameraSource> camera) {
  scheduler_.add_camera(std::move(camera));
}

std::vector<InferenceResult> StreamingRuntime::run(std::int64_t frames_per_camera) {
  SNAPPIX_CHECK(!ran_, "StreamingRuntime::run() is one-shot");
  ran_ = true;
  NoGradGuard guard;
  const Clock::time_point run_start = Clock::now();
  scheduler_.start(frames_per_camera);

  std::vector<InferenceResult> results;
  results.reserve(static_cast<std::size_t>(frames_per_camera) * camera_count());
  BatchAggregator aggregator(queue_, config_.batch);
  std::vector<Frame> batch;
  while (aggregator.next_batch(batch)) {
    const Clock::time_point popped = Clock::now();
    for (const Frame& frame : batch) {
      stats_.record_queue_wait(
          std::chrono::duration<double>(popped - frame.enqueue_time).count());
    }
    const Tensor coded = BatchAggregator::stack_coded(batch);
    const Clock::time_point infer_start = Clock::now();
    const std::vector<std::int64_t> predicted =
        engine_ != nullptr ? engine_->classify(coded) : system_.classify_coded(coded);
    const Clock::time_point infer_end = Clock::now();
    stats_.record_batch(batch.size(),
                        std::chrono::duration<double>(infer_end - infer_start).count());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Frame& frame = batch[i];
      stats_.record_frame_done(
          frame.raw_bytes, frame.wire_bytes,
          std::chrono::duration<double>(infer_end - frame.capture_start).count());
      results.push_back({frame.camera_id, frame.sequence, predicted[i], frame.label});
    }
  }
  scheduler_.join();
  wall_seconds_ = std::chrono::duration<double>(Clock::now() - run_start).count();
  stats_.set_queue_high_water(queue_.high_water_mark());

  std::sort(results.begin(), results.end(),
            [](const InferenceResult& a, const InferenceResult& b) {
              return a.camera_id != b.camera_id ? a.camera_id < b.camera_id
                                                : a.sequence < b.sequence;
            });
  return results;
}

RuntimeSummary StreamingRuntime::summary() const {
  SNAPPIX_CHECK(ran_, "summary() requires a completed run()");
  return stats_.summary(wall_seconds_);
}

FleetEnergyReport StreamingRuntime::fleet_energy(const energy::EnergyModel& model,
                                                 energy::WirelessTech tech) const {
  SNAPPIX_CHECK(ran_, "fleet_energy() requires a completed run()");
  return stats_.fleet_energy(model, pixels_per_frame_, system_.config().frames, tech);
}

}  // namespace snappix::runtime
