#include "runtime/runtime.h"

#include <sstream>
#include <stdexcept>

#include "util/common.h"

namespace snappix::runtime {

namespace {

ServerConfig to_server_config(const RuntimeConfig& config) {
  ServerConfig server;
  server.batch = config.batch;
  server.queue_capacity = config.queue_capacity;
  server.scheduler_threads = config.scheduler_threads;
  server.backend = config.backend;
  server.shards = config.shards;
  server.work_stealing = config.work_stealing;
  return server;
}

}  // namespace

void validate(const RuntimeConfig& config) {
  validate(to_server_config(config));  // same rules, minus the cache knobs
}

StreamingRuntime::StreamingRuntime(const core::SnapPixSystem& system,
                                   const RuntimeConfig& config)
    : config_(config),
      server_(std::make_unique<InferenceServer>(system, to_server_config(config))) {}

void StreamingRuntime::add_camera(std::unique_ptr<CameraSource> camera) {
  SNAPPIX_CHECK(camera != nullptr, "null camera");
  SNAPPIX_CHECK(camera->task() == Task::kClassify,
                "StreamingRuntime serves classification only — route camera "
                    << camera->id() << " (task " << to_string(camera->task())
                    << ") through InferenceServer instead");
  server_->add_camera(std::move(camera));
}

std::vector<InferenceResult> StreamingRuntime::run(std::int64_t frames_per_camera) {
  const std::vector<TaskResult> typed = server_->run(frames_per_camera);
  std::vector<InferenceResult> results;
  results.reserve(typed.size());
  for (const TaskResult& r : typed) {
    results.push_back({r.camera_id, r.sequence, r.predicted, r.label});
  }
  return results;
}

}  // namespace snappix::runtime
