// Post-training quantization for the serving tier: calibration produces a
// QuantSpec, the recipe a QuantizedVitEngine (engine.h) needs to serve a
// model at int8.
//
// Scheme (standard symmetric post-training quantization):
//   weights      per-OUTPUT-CHANNEL symmetric int8, scales baked at engine
//                construction from the fp32 weights themselves
//   activations  per-TENSOR symmetric int8, scales calibrated offline by
//                running representative coded frames through the *fp32*
//                engine and recording each quantized-GEMM input's absmax
//                (BatchedVitEngine::collect_activation_ranges)
//   GEMMs        int8 x int8 -> int32 (tensor/gemm_s8.h), exact accumulation
//   boundaries   dequantize to fp32 after every GEMM; LayerNorm, softmax,
//                attention, residual adds and pooling stay fp32
//   GELU         a 256-entry int8 -> int8 lookup table per block (I-BERT
//                style): fc1's int32 output requantizes onto the calibrated
//                gelu_in grid, the table folds dequant + tanh-GELU + fc2-in
//                requant into one lookup — the tanh never runs at serve time
//
// Determinism: calibrate() is a pure function of its inputs (single pass,
// fixed iteration order, no threads mutate the ranges), and
// make_calibration_frames() is a pure function of (pattern, geometry, seed).
// So an evicted-and-rebuilt int8 cache entry recalibrates to the SAME spec
// and serves bit-identical int8 results — the quantized tier keeps the
// cache's evict/refetch invariant even though it is not bit-equal to fp32.
#pragma once

#include <cstdint>
#include <vector>

#include "ce/pattern.h"
#include "models/vit.h"
#include "tensor/tensor.h"

namespace snappix::runtime {

// Per-tensor activation scales for one transformer block's quantized GEMMs,
// in forward order. Each scale maps fp32 activations onto the [-127, 127]
// int8 grid (value = q * scale).
struct QuantBlockScales {
  float qkv_in = 1.0F;   // norm1 output -> fused QKV projection
  float proj_in = 1.0F;  // attention context -> output projection
  float fc1_in = 1.0F;   // norm2 output -> MLP expand
  float gelu_in = 1.0F;  // fc1 output (pre-GELU) -> the int8 GELU lookup table
  float fc2_in = 1.0F;   // GELU output -> MLP contract
};

// Everything activation-side a QuantizedVitEngine needs. Weight scales are
// not stored here: they derive deterministically from the weights at engine
// construction (per-output-channel absmax / 127).
struct QuantSpec {
  float embed_in = 1.0F;  // patchified pixels -> patch embedding
  std::vector<QuantBlockScales> blocks;
  float head_in = 1.0F;  // pooled tokens -> AR classification head
  float rec_in = 1.0F;   // final-norm token rows -> per-patch REC decoder
  std::int64_t calibration_frames = 0;  // how many frames produced the spec
};

// Runs `coded` — (B, H, W) exposure-normalized coded frames — through the
// fp32 fused engine built from the given heads and converts the observed
// per-tensor absmax ranges into symmetric scales. The reconstructor must
// share the classifier's encoder (the SnapPixSystem invariant). Throws
// std::invalid_argument when `coded` is empty or mis-shaped.
QuantSpec calibrate(const models::SnapPixClassifier& classifier,
                    const models::SnapPixReconstructor& reconstructor, const Tensor& coded);

// Server-side calibration policy: how the EngineCache factory synthesizes
// representative frames when an int8 engine is built for a pattern.
struct QuantCalibration {
  int frames = 32;             // calibration frames per pattern
  std::uint64_t seed = 9001;   // scene seed; same seed -> same spec, always
};

// Renders `config.frames` deterministic synthetic clips, CE-encodes them
// with `pattern`, and exposure-normalizes — the same edge-side path camera
// frames take — returning (frames, image_h, image_w). Pure function of its
// arguments, so cache rebuilds recalibrate identically.
Tensor make_calibration_frames(const ce::CePattern& pattern, std::int64_t image_h,
                               std::int64_t image_w, const QuantCalibration& config);

}  // namespace snappix::runtime
