#include "runtime/batcher.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "util/common.h"

namespace snappix::runtime {

void validate(const BatchPolicy& policy) {
  if (policy.max_batch < 1) {
    std::ostringstream os;
    os << "BatchPolicy.max_batch must be >= 1 (a batch needs at least one frame), got "
       << policy.max_batch;
    throw std::invalid_argument(os.str());
  }
  if (policy.max_delay.count() < 0) {
    std::ostringstream os;
    os << "BatchPolicy.max_delay must be non-negative (0 = greedy, never wait), got "
       << policy.max_delay.count() << " us";
    throw std::invalid_argument(os.str());
  }
}

BatchAggregator::BatchAggregator(FrameQueue& queue, const BatchPolicy& policy)
    : queue_(queue), policy_(policy) {
  validate(policy);
}

bool BatchAggregator::take_holdback(Frame& first) {
  if (!holdback_.has_value()) {
    return false;
  }
  if (holdback_->expired(Clock::now())) {
    // The previous batch's inference outlived the held-back frame's
    // deadline: drop-late applies to the holdback exactly as it would have
    // inside the queue. Accounted through the queue the frame came from.
    queue_.shed(*holdback_, ShedReason::kDeadline);
    holdback_.reset();
    return false;
  }
  first = std::move(*holdback_);
  holdback_.reset();
  return true;
}

bool BatchAggregator::next_batch(std::vector<Frame>& out) {
  out.clear();
  Frame first;
  // dequeue_time was stamped when a held-back frame actually left the queue —
  // the held-back wait must not absorb the previous batch's inference time.
  if (!take_holdback(first)) {
    if (!queue_.pop(first)) {
      return false;
    }
    first.dequeue_time = Clock::now();
  }
  fill_from(std::move(first), out);
  return true;
}

BatchAggregator::Poll BatchAggregator::poll_batch(std::vector<Frame>& out,
                                                  Clock::time_point idle_deadline) {
  out.clear();
  Frame first;
  if (take_holdback(first)) {
    fill_from(std::move(first), out);
    return Poll::kBatch;
  }
  if (!queue_.pop_until(first, idle_deadline)) {
    // pop_until conflates "timed out" with "closed and drained"; exhausted()
    // is sticky (no push can succeed after close), so checking it after the
    // fact cannot mislabel a queue that still holds frames.
    return queue_.exhausted() ? Poll::kExhausted : Poll::kIdle;
  }
  first.dequeue_time = Clock::now();
  fill_from(std::move(first), out);
  return Poll::kBatch;
}

void BatchAggregator::fill_from(Frame first, std::vector<Frame>& out) {
  last_key_ = BatchKey{first.pattern_id, first.task, first.precision, first.decode_depth};
  last_flush_reason_ = FlushReason::kMaxBatch;
  const Clock::time_point deadline = Clock::now() + policy_.max_delay;
  out.push_back(std::move(first));
  while (static_cast<int>(out.size()) < policy_.max_batch) {
    Frame next;
    if (!queue_.pop_until(next, deadline)) {
      // exhausted() is sticky, so this cleanly splits "queue is gone" from
      // "the max_delay deadline fired before the batch filled".
      last_flush_reason_ =
          queue_.exhausted() ? FlushReason::kExhausted : FlushReason::kMaxLatency;
      break;
    }
    next.dequeue_time = Clock::now();
    if (!last_key_.matches(next)) {
      holdback_ = std::move(next);  // different pattern/task/precision opens the next batch
      last_flush_reason_ = FlushReason::kHoldback;
      break;
    }
    out.push_back(std::move(next));
  }
}

Tensor BatchAggregator::stack_coded(const std::vector<Frame>& frames) {
  SNAPPIX_CHECK(!frames.empty(), "cannot stack an empty batch");
  const Shape& fs = frames.front().coded.shape();
  SNAPPIX_CHECK(fs.ndim() == 2, "frames must carry (H, W) coded images");
  const std::int64_t h = fs[0];
  const std::int64_t w = fs[1];
  std::vector<float> data(frames.size() * static_cast<std::size_t>(h * w));
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const Tensor& coded = frames[i].coded;
    SNAPPIX_CHECK(coded.shape() == fs, "batch mixes frame geometries: "
                                           << coded.shape().to_string() << " vs "
                                           << fs.to_string());
    std::memcpy(data.data() + i * static_cast<std::size_t>(h * w), coded.data().data(),
                static_cast<std::size_t>(h * w) * sizeof(float));
  }
  return Tensor::from_vector(std::move(data),
                             Shape{static_cast<std::int64_t>(frames.size()), h, w});
}

}  // namespace snappix::runtime
