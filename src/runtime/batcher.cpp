#include "runtime/batcher.h"

#include <cstring>

#include "util/common.h"

namespace snappix::runtime {

BatchAggregator::BatchAggregator(FrameQueue& queue, const BatchPolicy& policy)
    : queue_(queue), policy_(policy) {
  SNAPPIX_CHECK(policy.max_batch > 0, "batch policy needs max_batch >= 1");
  SNAPPIX_CHECK(policy.max_delay.count() >= 0, "batch policy needs a non-negative delay");
}

bool BatchAggregator::next_batch(std::vector<Frame>& out) {
  out.clear();
  Frame first;
  if (!queue_.pop(first)) {
    return false;
  }
  const Clock::time_point deadline = Clock::now() + policy_.max_delay;
  out.push_back(std::move(first));
  while (static_cast<int>(out.size()) < policy_.max_batch) {
    Frame next;
    if (!queue_.pop_until(next, deadline)) {
      break;  // deadline hit, or queue closed and drained
    }
    out.push_back(std::move(next));
  }
  return true;
}

Tensor BatchAggregator::stack_coded(const std::vector<Frame>& frames) {
  SNAPPIX_CHECK(!frames.empty(), "cannot stack an empty batch");
  const Shape& fs = frames.front().coded.shape();
  SNAPPIX_CHECK(fs.ndim() == 2, "frames must carry (H, W) coded images");
  const std::int64_t h = fs[0];
  const std::int64_t w = fs[1];
  std::vector<float> data(frames.size() * static_cast<std::size_t>(h * w));
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const Tensor& coded = frames[i].coded;
    SNAPPIX_CHECK(coded.shape() == fs, "batch mixes frame geometries: "
                                           << coded.shape().to_string() << " vs "
                                           << fs.to_string());
    std::memcpy(data.data() + i * static_cast<std::size_t>(h * w), coded.data().data(),
                static_cast<std::size_t>(h * w) * sizeof(float));
  }
  return Tensor::from_vector(std::move(data),
                             Shape{static_cast<std::int64_t>(frames.size()), h, w});
}

}  // namespace snappix::runtime
