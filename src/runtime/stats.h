/// \file stats.h
/// \brief RuntimeStats: thread-safe per-stage instrumentation for the
/// streaming runtime, plus the bridge into the Sec. VI-D energy model.
///
/// RuntimeStats is a VIEW over an obs::MetricsRegistry it owns: every frame/
/// batch/byte counter is a registry Counter and every latency series a
/// registry Histogram, so the hot-path record_* methods are lock-free
/// (relaxed atomics) and the registry can be snapshotted MID-RUN — that is
/// what InferenceServer::metrics_snapshot() hands out, in JSON or Prometheus
/// form via obs::to_json / obs::to_prometheus. The only mutex left guards
/// the cold structures: the per-camera transport map and the post-run
/// installs (shard views, cache counters).
///
/// summary() condenses the registry into percentiles/throughput — including
/// per-shard views (queue depth, batches served, steal traffic, per-reason
/// batch flush counts, cache hit/miss) installed by the sharded
/// InferenceServer — and fleet_energy() prices the recorded traffic with
/// energy::EnergyModel so a streaming run reports the same
/// baseline-vs-SNAPPIX numbers as the static scenario calculators.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "energy/model.h"
#include "obs/metrics.h"
#include "runtime/frame.h"

namespace snappix::runtime {

/// \brief Latency series with percentile queries (seconds), backed by a
/// fixed-bucket obs::Histogram (the same representation the metrics registry
/// serves), so record() is lock-free and count-independent in memory.
///
/// Empty-series contract (pinned by tests/test_obs.cpp): count 0 reports 0
/// for mean and every percentile — never NaN or infinity — so zero-frame
/// runs render valid JSON. Percentiles interpolate linearly inside the
/// bucket holding the rank and clamp into [min, max] observed; p50 <= p95 <=
/// p99 always.
class LatencySeries {
 public:
  void record(double seconds) { histogram_.observe(seconds); }
  std::size_t count() const { return static_cast<std::size_t>(histogram_.count()); }
  double mean() const { return histogram_.mean(); }
  /// \brief Interpolated percentile, `p` in [0, 100]; 0 when empty.
  double percentile(double p) const { return histogram_.percentile(p); }

  const obs::Histogram& histogram() const { return histogram_; }

 private:
  obs::Histogram histogram_;
};

/// \brief Condensed view of one pipeline stage's latency series.
struct StageSummary {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// \brief One consumer shard's share of a run, as installed by the sharded
/// InferenceServer after the workers join.
///
/// `frames`/`batches` count everything THIS shard's worker served, including
/// batches it stole; `steal_*` describe its thieving (attempts = victim
/// queues probed while idle, successes = non-empty tail batches taken,
/// stolen_frames = frames inside them). The cache counters are the shard's
/// private EngineCache view. Summing shard frames/batches/cache counters
/// over all shards reproduces the run totals.
struct ShardStatsView {
  std::size_t shard = 0;                ///< shard index in [0, ServerConfig::shards)
  std::uint64_t frames = 0;             ///< frames served by this shard's worker
  std::uint64_t batches = 0;            ///< batches dispatched (own + stolen)
  std::uint64_t steal_attempts = 0;     ///< victim-queue probes while idle
  std::uint64_t steal_successes = 0;    ///< probes that came back with a batch
  std::uint64_t stolen_frames = 0;      ///< frames served out of stolen batches
  std::uint64_t cache_hits = 0;         ///< this shard's EngineCache hits
  std::uint64_t cache_misses = 0;       ///< misses (entry rebuilds)
  std::uint64_t cache_evictions = 0;    ///< LRU evictions under capacity pressure
  std::size_t queue_high_water = 0;     ///< deepest this shard's run queue got

  /// Why this shard's batches closed, by FlushReason. The sum over reasons
  /// equals `batches`; `flush_steal` equals `steal_successes`.
  std::uint64_t flush_max_batch = 0;
  std::uint64_t flush_max_latency = 0;
  std::uint64_t flush_exhausted = 0;
  std::uint64_t flush_holdback = 0;
  std::uint64_t flush_steal = 0;
};

/// \brief One precision tier's EngineCache traffic (hits/misses/evictions
/// summed over every shard's cache view for that tier). The serving tier
/// keeps fp32 and int8 engines as distinct cache residents, so the split
/// shows which tier's working set is thrashing.
struct CacheTierCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// \brief One camera's overload tally: frames the runtime shed instead of
/// serving, by reason, plus deadline misses (frames that WERE served but
/// finished after their deadline — late answers delivered, distinct from
/// drop-late sheds). All zero for cameras that never hit overload. Summing
/// over cameras gives the fleet totals in RuntimeSummary.
struct ShedCounters {
  std::uint64_t queue_full = 0;       ///< admission rejects (best-effort, full queue)
  std::uint64_t deadline = 0;         ///< drop-late: expired before serving began
  std::uint64_t deadline_misses = 0;  ///< served, but past the deadline
};

/// \brief One camera's health-supervision tally (runtime/health.h): state
/// transitions, degradation-ladder traffic, and captures skipped while
/// quarantined. All zero for cameras never supervised or never degraded.
struct HealthCounters {
  std::uint64_t transitions = 0;       ///< health state changes
  std::uint64_t steps_down = 0;        ///< ladder rungs engaged (degradations)
  std::uint64_t steps_up = 0;          ///< ladder rungs released (recoveries)
  std::uint64_t quarantine_drops = 0;  ///< captures skipped while quarantined
};

/// \brief One camera's framed-transport tally: how its frames fared on the
/// wire, by FINAL outcome (a frame that recovers via retransmit counts as ok;
/// the retries it burned show up in `retransmits`). All zero for cameras that
/// hop in memory. Summing over cameras gives the fleet totals in
/// RuntimeSummary::transport.
struct TransportCounters {
  std::uint64_t framed_frames = 0;   ///< frames that crossed a framed link
  std::uint64_t ok_frames = 0;       ///< delivered intact (possibly after retries)
  std::uint64_t crc_errors = 0;      ///< final outcome: payload CRC failure
  std::uint64_t truncated = 0;       ///< final outcome: stream cut mid-frame
  std::uint64_t missing_lines = 0;   ///< final outcome: row packets lost
  std::uint64_t retransmits = 0;     ///< framed re-transfers spent by the policy
  std::uint64_t dropped_frames = 0;  ///< corrupt after the policy: never served

  /// Progressive-decode tally for frames that crossed an entropy-coded link
  /// (all zero on raw links). `codec_planes_decoded <= codec_planes_total`;
  /// the gap is depth deliberately left on the wire (truncated classify
  /// frames) plus planes lost to faults.
  std::uint64_t codec_frames = 0;         ///< frames that crossed a codec link
  std::uint64_t codec_planes_decoded = 0; ///< bit-planes actually decoded
  std::uint64_t codec_planes_total = 0;   ///< bit-planes the full streams held
};

/// \brief Everything a completed run reports: throughput, per-stage latency
/// percentiles, task/cache/steal counters, per-shard views, byte volumes.
struct RuntimeSummary {
  std::uint64_t frames = 0;
  std::uint64_t batches = 0;
  double wall_seconds = 0.0;
  double aggregate_fps = 0.0;     ///< frames / wall_seconds
  double mean_batch_size = 0.0;
  std::size_t queue_high_water = 0;  ///< max over all shard queues

  /// Per-task frame counts (classify + reconstruct == frames when the server
  /// records tasks; both zero under direct RuntimeStats use).
  std::uint64_t classify_frames = 0;
  std::uint64_t reconstruct_frames = 0;

  /// Per-precision frame counts (fp32 + int8 == frames when the server
  /// records precisions; both zero under direct RuntimeStats use).
  std::uint64_t fp32_frames = 0;
  std::uint64_t int8_frames = 0;

  /// EngineCache traffic summed over every shard's cache (zero when serving
  /// through the tape backend, which bypasses the cache).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  double cache_hit_rate = 0.0;  ///< hits / (hits + misses)

  /// The same cache traffic split by precision tier (fp32 + int8 == totals).
  CacheTierCounters cache_fp32;
  CacheTierCounters cache_int8;

  /// Work-stealing totals summed over shards (all zero with one shard).
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_successes = 0;
  std::uint64_t stolen_frames = 0;

  /// Batch flush reasons, run-wide (sum over reasons == batches when every
  /// record_batch carried a reason; all under kMaxBatch for legacy callers).
  std::uint64_t flush_max_batch = 0;
  std::uint64_t flush_max_latency = 0;
  std::uint64_t flush_exhausted = 0;
  std::uint64_t flush_holdback = 0;
  std::uint64_t flush_steal = 0;

  /// Per-shard breakdown; empty unless a sharded server installed views.
  std::vector<ShardStatsView> shards;

  /// Framed-transport totals summed over cameras (all zero when every frame
  /// hops in memory), plus the per-camera breakdown sorted by camera id.
  TransportCounters transport;
  std::vector<std::pair<int, TransportCounters>> transport_cameras;

  /// Overload totals: frames shed (never served) by reason and by QoS
  /// class, late-served deadline misses, and the per-camera breakdown
  /// sorted by camera id. Conservation per queue: admitted frames ==
  /// served + shed_deadline + still queued at shutdown; queue_full sheds
  /// never entered a queue at all.
  std::uint64_t shed_frames = 0;      ///< total sheds (queue_full + deadline)
  std::uint64_t shed_queue_full = 0;  ///< admission rejects
  std::uint64_t shed_deadline = 0;    ///< drop-late expiries
  std::uint64_t shed_realtime = 0;    ///< sheds of realtime frames (gated zero)
  std::uint64_t shed_standard = 0;
  std::uint64_t shed_best_effort = 0;
  std::uint64_t deadline_misses = 0;  ///< served but late
  std::vector<std::pair<int, ShedCounters>> shed_cameras;

  /// Fleet-health supervision totals (runtime/health.h; all zero when the
  /// controller is disabled), plus the per-camera breakdown sorted by id.
  /// Conservation with supervision on: offered == served + shed +
  /// transport dropped_frames + quarantine_drops (+ frames still queued at
  /// shutdown).
  std::uint64_t health_transitions = 0;
  std::uint64_t ladder_steps_down = 0;
  std::uint64_t ladder_steps_up = 0;
  std::uint64_t quarantine_drops = 0;
  std::uint64_t watchdog_stalls = 0;   ///< shard-stall detections
  std::uint64_t rerouted_frames = 0;   ///< frames drained + re-admitted by the watchdog
  std::vector<std::pair<int, HealthCounters>> health_cameras;

  StageSummary capture;      ///< camera next_frame() + framed transport retries
  StageSummary queue_wait;   ///< enqueue -> pop (or steal)
  StageSummary inference;    ///< model forward per batch
  StageSummary end_to_end;   ///< capture start -> result recorded

  /// end_to_end split by QoS class (counts sum to end_to_end.count when the
  /// server records QoS; all empty under direct RuntimeStats use). The
  /// saturation bench gates realtime p99 from e2e_realtime.
  StageSummary e2e_realtime;
  StageSummary e2e_standard;
  StageSummary e2e_best_effort;

  std::uint64_t raw_bytes = 0;     ///< conventional readout volume
  std::uint64_t wire_bytes = 0;    ///< coded volume actually shipped
  double compression_ratio = 0.0;  ///< raw / wire
};

/// \brief Whole-run energy bill priced through energy::EnergyModel.
struct FleetEnergyReport {
  double conventional_j = 0.0;  ///< T-frame readout + transmit, whole run
  double snappix_j = 0.0;       ///< CE capture + coded transmit, whole run
  double saving_factor = 0.0;
};

/// \brief Thread-safe run-wide counters. Producers, shard workers, and the
/// server all record into one instance. The record_* hot paths write
/// registry counters/histograms lock-free; the cold installs and the
/// transport map lock internally.
class RuntimeStats {
 public:
  RuntimeStats();

  // --- producer side ---------------------------------------------------------
  void record_capture(double seconds);

  // --- consumer side (any shard worker) --------------------------------------
  void record_queue_wait(double seconds);
  /// \brief `reason` feeds the per-reason flush counters
  /// (snappix_batch_flush_total{reason=...}); legacy callers without a
  /// batching policy default to kMaxBatch.
  void record_batch(std::size_t batch_size, double inference_seconds,
                    FlushReason reason = FlushReason::kMaxBatch);
  /// \brief Attributes a served batch's frames to its task head.
  void record_task_frames(Task task, std::size_t count);
  /// \brief Attributes a served batch's frames to its precision tier.
  void record_precision_frames(Precision precision, std::size_t count);
  /// \brief Records one framed frame's FINAL transport fate: its last
  /// outcome (`status`), the retries the policy spent on it, and whether it
  /// was dropped instead of enqueued. Called once per framed frame by the
  /// producer loop; never for in-memory cameras. When the frame crossed an
  /// entropy-coded link, pass `codec = true` plus the frame's
  /// decoded/total bit-plane counts to feed the progressive-decode tally;
  /// raw-link callers leave the defaults.
  void record_transport(int camera_id, TransportStatus status, int retransmits,
                        bool dropped, bool codec = false, int decoded_planes = 0,
                        int total_planes = 0);
  /// \brief Records one shed frame: bumps the per-(qos, reason) registry
  /// counter (snappix_shed_frames_total{qos=...,reason=...}) and the
  /// camera's ShedCounters row. Called by the queue shed observers the
  /// scheduler/server install — once per shed, on whichever thread shed it.
  void record_shed(int camera_id, QosClass qos, ShedReason reason);
  /// \brief Records a frame that was SERVED but finished after its deadline
  /// — a late answer delivered, distinct from a drop-late shed.
  void record_deadline_miss(int camera_id);
  /// \brief Records a camera health-state transition (runtime/health.h):
  /// bumps snappix_health_transitions_total{from=...,to=...}, sets the
  /// camera's snappix_camera_health gauge, and the per-camera tally. Called
  /// by the HealthController on the camera's producer thread.
  void record_health_transition(int camera_id, HealthState from, HealthState to);
  /// \brief Records a degradation-ladder move to `step` rungs engaged
  /// (`down` = a degradation, else a recovery step): bumps
  /// snappix_ladder_steps_total{direction=...} and sets the camera's
  /// snappix_camera_ladder_step gauge.
  void record_ladder_step(int camera_id, bool down, int step);
  /// \brief Records one capture skipped because its camera is quarantined.
  void record_quarantine_drop(int camera_id);
  /// \brief Records the watchdog declaring shard `shard` stalled.
  void record_watchdog_stall(std::size_t shard);
  /// \brief Records `count` frames the watchdog drained from a stalled shard
  /// and re-admitted into a sibling's queue.
  void record_rerouted_frames(std::size_t count);
  /// \brief `qos` additionally feeds the per-class e2e histogram
  /// (snappix_e2e_seconds{qos=...}); legacy callers without QoS default to
  /// kStandard.
  void record_frame_done(std::uint64_t raw_bytes, std::uint64_t wire_bytes,
                         double end_to_end_seconds, QosClass qos = QosClass::kStandard);
  /// \brief Raises the recorded high water to `depth` (max over calls, so the
  /// server feeds it each shard queue's own mark).
  void set_queue_high_water(std::size_t depth);
  /// \brief Installs the final cache snapshot (summed over shard caches by
  /// the server); the EngineCache itself keeps the live counters.
  void set_cache_counters(std::uint64_t hits, std::uint64_t misses, std::uint64_t evictions);
  /// \brief Installs the per-precision cache split (fp32 + int8 must sum to
  /// the totals installed by set_cache_counters).
  void set_cache_tier_counters(const CacheTierCounters& fp32, const CacheTierCounters& int8);
  /// \brief Installs the per-shard views once after a run; also derives the
  /// steal totals reported in RuntimeSummary.
  void set_shard_views(std::vector<ShardStatsView> shards);

  // --- reporting -------------------------------------------------------------
  RuntimeSummary summary(double wall_seconds) const;

  /// \brief The live metrics registry backing every record_* path. Safe to
  /// snapshot mid-run (obs::MetricsRegistry::snapshot is lock-free on the
  /// value reads); InferenceServer::metrics_snapshot() is a thin wrapper.
  const obs::MetricsRegistry& registry() const { return registry_; }
  obs::MetricsRegistry& registry() { return registry_; }

  /// \brief Prices the recorded frame traffic: every served frame represents
  /// one T-slot capture that a conventional pipeline would read out and
  /// transmit T times. `pixels_per_frame`/`slots` describe the camera
  /// geometry.
  FleetEnergyReport fleet_energy(const energy::EnergyModel& model,
                                 std::int64_t pixels_per_frame, int slots,
                                 energy::WirelessTech tech) const;

 private:
  obs::MetricsRegistry registry_;
  // References resolved once at construction; recording through them is
  // lock-free (see obs/metrics.h).
  obs::Histogram& capture_;
  obs::Histogram& queue_wait_;
  obs::Histogram& inference_;
  obs::Histogram& end_to_end_;
  obs::Counter& frames_;
  obs::Counter& batches_;
  obs::Counter& batched_frames_;
  obs::Counter& classify_frames_;
  obs::Counter& reconstruct_frames_;
  obs::Counter& fp32_frames_;
  obs::Counter& int8_frames_;
  obs::Counter& raw_bytes_;
  obs::Counter& wire_bytes_;
  obs::Counter* flush_[5];      // indexed by FlushReason
  obs::Counter* shed_[3][2];    // indexed by [QosClass][ShedReason]
  obs::Counter& deadline_miss_;
  obs::Histogram* e2e_qos_[3];  // indexed by QosClass
  obs::Gauge& queue_high_water_;

  // Cold structures: per-camera transport/shed tallies and post-run installs.
  mutable std::mutex mutex_;
  CacheTierCounters cache_fp32_;
  CacheTierCounters cache_int8_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_evictions_ = 0;
  std::vector<ShardStatsView> shards_;
  std::map<int, TransportCounters> transport_;  // camera_id -> tally (sorted)
  std::map<int, ShedCounters> shed_cameras_;    // camera_id -> tally (sorted)
  std::map<int, HealthCounters> health_cameras_;  // camera_id -> tally (sorted)
  std::uint64_t watchdog_stalls_ = 0;
  std::uint64_t rerouted_frames_ = 0;
};

/// \brief Renders a summary as an aligned human-readable block / flat JSON
/// object (used by bench/streaming_throughput.cpp to emit the BENCH_*.json
/// artifacts). The JSON carries the per-shard views as a "shards" array.
std::string to_string(const RuntimeSummary& summary);
std::string to_json(const CacheTierCounters& counters);
std::string to_json(const HealthCounters& counters);
std::string to_json(const TransportCounters& counters);
std::string to_json(const ShedCounters& counters);
std::string to_json(const ShardStatsView& shard);
std::string to_json(const RuntimeSummary& summary, const FleetEnergyReport& energy,
                    const std::string& label);

}  // namespace snappix::runtime
