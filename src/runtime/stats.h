// RuntimeStats: thread-safe per-stage instrumentation for the streaming
// runtime, plus the bridge into the Sec. VI-D energy model.
//
// Producers record capture latencies; the consumer records queue waits,
// batch assembly, inference and end-to-end latencies plus byte counters.
// summary() condenses everything into percentiles/throughput, and
// fleet_energy() prices the recorded traffic with energy::EnergyModel so a
// streaming run reports the same baseline-vs-SNAPPIX numbers as the static
// scenario calculators.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "energy/model.h"
#include "runtime/frame.h"

namespace snappix::runtime {

// Append-only latency series with percentile queries (seconds).
class LatencySeries {
 public:
  void record(double seconds);
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  // p in [0, 100]; nearest-rank on the sorted series. 0 when empty.
  double percentile(double p) const;

 private:
  std::vector<double> samples_;
};

struct StageSummary {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct RuntimeSummary {
  std::uint64_t frames = 0;
  std::uint64_t batches = 0;
  double wall_seconds = 0.0;
  double aggregate_fps = 0.0;     // frames / wall_seconds
  double mean_batch_size = 0.0;
  std::size_t queue_high_water = 0;

  // Per-task frame counts (classify + reconstruct == frames when the server
  // records tasks; both zero under direct RuntimeStats use).
  std::uint64_t classify_frames = 0;
  std::uint64_t reconstruct_frames = 0;

  // EngineCache traffic (zero when serving through the tape backend, which
  // bypasses the cache).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  double cache_hit_rate = 0.0;  // hits / (hits + misses)

  StageSummary capture;      // camera next_frame()
  StageSummary queue_wait;   // enqueue -> pop
  StageSummary inference;    // model forward per batch
  StageSummary end_to_end;   // capture start -> result recorded

  std::uint64_t raw_bytes = 0;   // conventional readout volume
  std::uint64_t wire_bytes = 0;  // coded volume actually shipped
  double compression_ratio = 0.0;  // raw / wire
};

struct FleetEnergyReport {
  double conventional_j = 0.0;  // T-frame readout + transmit, whole run
  double snappix_j = 0.0;       // CE capture + coded transmit, whole run
  double saving_factor = 0.0;
};

class RuntimeStats {
 public:
  // --- producer side ---------------------------------------------------------
  void record_capture(double seconds);

  // --- consumer side ---------------------------------------------------------
  void record_queue_wait(double seconds);
  void record_batch(std::size_t batch_size, double inference_seconds);
  // Attributes a served batch's frames to its task head.
  void record_task_frames(Task task, std::size_t count);
  void record_frame_done(std::uint64_t raw_bytes, std::uint64_t wire_bytes,
                         double end_to_end_seconds);
  void set_queue_high_water(std::size_t depth);
  // Installed once by the server after a run; EngineCache keeps the live
  // counters, the summary just reports the final snapshot.
  void set_cache_counters(std::uint64_t hits, std::uint64_t misses, std::uint64_t evictions);

  // --- reporting -------------------------------------------------------------
  RuntimeSummary summary(double wall_seconds) const;

  // Prices the recorded frame traffic: every served frame represents one
  // T-slot capture that a conventional pipeline would read out and transmit
  // T times. `pixels_per_frame`/`slots` describe the camera geometry.
  FleetEnergyReport fleet_energy(const energy::EnergyModel& model,
                                 std::int64_t pixels_per_frame, int slots,
                                 energy::WirelessTech tech) const;

 private:
  mutable std::mutex mutex_;
  LatencySeries capture_;
  LatencySeries queue_wait_;
  LatencySeries inference_;
  LatencySeries end_to_end_;
  std::uint64_t frames_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_frames_ = 0;
  std::uint64_t classify_frames_ = 0;
  std::uint64_t reconstruct_frames_ = 0;
  std::uint64_t raw_bytes_ = 0;
  std::uint64_t wire_bytes_ = 0;
  std::size_t queue_high_water_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_evictions_ = 0;
};

// Renders a summary as an aligned human-readable block / flat JSON object
// (used by bench/streaming_throughput.cpp to emit BENCH_streaming.json).
std::string to_string(const RuntimeSummary& summary);
std::string to_json(const RuntimeSummary& summary, const FleetEnergyReport& energy,
                    const std::string& label);

}  // namespace snappix::runtime
