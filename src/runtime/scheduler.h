// StreamScheduler: drives N camera producers onto one FrameQueue.
//
// Each camera gets a long-running producer task on the shared ThreadPool
// (util/parallel.h): loop { capture -> stamp -> blocking push }. The pool
// defaults to one worker per camera (producers mostly block on backpressure,
// so oversubscribing cores is the right model). Producer tasks run to
// completion: a pool smaller than the fleet serves cameras in waves, not
// interleaved.
// The last producer to finish closes the queue so the consumer drains and
// exits cleanly. All cameras own their Rng streams, so a camera's frame
// sequence is reproducible no matter how the producers interleave.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "runtime/camera.h"
#include "runtime/frame_queue.h"
#include "runtime/stats.h"
#include "util/parallel.h"

namespace snappix::runtime {

class StreamScheduler {
 public:
  // `threads` = 0 spawns one producer thread per camera at start(). Huge
  // fleets should pass an explicit cap — but note producer tasks run to
  // completion, so `threads` < cameras processes cameras in waves rather
  // than interleaving them.
  StreamScheduler(FrameQueue& queue, RuntimeStats& stats, int threads = 0);
  ~StreamScheduler();

  StreamScheduler(const StreamScheduler&) = delete;
  StreamScheduler& operator=(const StreamScheduler&) = delete;

  void add_camera(std::unique_ptr<CameraSource> camera);
  std::size_t camera_count() const { return cameras_.size(); }

  // Launches one producer task per camera, each emitting `frames_per_camera`
  // frames. Returns immediately; the queue is closed when every producer is
  // done (or the queue was closed externally).
  void start(std::int64_t frames_per_camera);

  // Blocks until all producers have finished.
  void join();

 private:
  void produce(CameraSource& camera, std::int64_t frames);

  FrameQueue& queue_;
  RuntimeStats& stats_;
  int threads_;
  std::vector<std::unique_ptr<CameraSource>> cameras_;
  std::atomic<int> active_producers_{0};
  bool started_ = false;
  // Declared last: producer tasks touch every member above, so the pool must
  // join its workers (its destructor) before anything they use is destroyed.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace snappix::runtime
