// StreamScheduler: drives N camera producers onto the server's shard queues.
//
// Each camera gets a long-running producer task on the shared ThreadPool
// (util/parallel.h): loop { capture -> stamp -> blocking push } onto the
// FrameQueue it was routed to at add_camera() time (the server routes by
// pattern_id so a shard's queue only ever carries patterns it owns). The pool
// defaults to one worker per camera (producers mostly block on backpressure,
// so oversubscribing cores is the right model). Producer tasks run to
// completion: a pool smaller than the fleet serves cameras in waves, not
// interleaved.
// The last producer to finish closes EVERY routed queue, so shard consumers
// drain and exit cleanly — closing queues one by one as their own producers
// finish would strand work-stealing siblings that still expect to poll them.
// All cameras own their Rng streams, so a camera's frame sequence is
// reproducible no matter how the producers interleave.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/camera.h"
#include "runtime/frame_queue.h"
#include "runtime/stats.h"
#include "util/parallel.h"

namespace snappix::runtime {

// What the producer loop does with a framed frame that arrives corrupt
// (CRC error, truncated, or missing lines). Applied per frame, edge-side,
// before the frame can enter a FrameQueue — the server only ever serves
// intact payloads.
struct TransportPolicy {
  enum class Corrupt : std::uint8_t {
    kDrop,        // count it and move on (the fleet serves one fewer frame)
    kRetransmit,  // re-run the framed transfer (fresh fault draws), up to
                  // max_retransmits times; still corrupt after that => drop
  };
  Corrupt corrupt = Corrupt::kDrop;
  int max_retransmits = 3;  // per-frame retry budget under kRetransmit
};

// Throws std::invalid_argument when the policy is unusable (negative
// max_retransmits). The single validation site for both the scheduler and
// ServerConfig.
void validate(const TransportPolicy& policy);

class StreamScheduler {
 public:
  // `threads` = 0 spawns one producer thread per camera at start(). Huge
  // fleets should pass an explicit cap — but note producer tasks run to
  // completion, so `threads` < cameras processes cameras in waves rather
  // than interleaving them. `transport` governs corrupt framed frames; it is
  // inert for cameras without framed mode.
  explicit StreamScheduler(RuntimeStats& stats, int threads = 0,
                           TransportPolicy transport = {});
  ~StreamScheduler();

  StreamScheduler(const StreamScheduler&) = delete;
  StreamScheduler& operator=(const StreamScheduler&) = delete;

  // Registers a queue for end-of-stream close WITHOUT routing a camera to
  // it. The server registers every shard queue up front: a shard that ends up
  // with no cameras must still see its queue close when the fleet drains, or
  // its worker (and every sibling waiting on fleet exhaustion) polls forever.
  void register_queue(FrameQueue& queue);

  // Routes the camera's frames to `queue` (registering it as with
  // register_queue). The queue must outlive the scheduler; several cameras
  // may share one queue.
  void add_camera(std::unique_ptr<CameraSource> camera, FrameQueue& queue);
  std::size_t camera_count() const { return cameras_.size(); }

  // Launches one producer task per camera, each emitting `frames_per_camera`
  // frames. Returns immediately; every routed queue is closed when the last
  // producer finishes (or the queues were closed externally).
  void start(std::int64_t frames_per_camera);
  // Skewed-fleet variant: camera i emits frames_per_camera[i] frames. The
  // vector must be parallel to the add_camera() order.
  void start(const std::vector<std::int64_t>& frames_per_camera);

  // Blocks until all producers have finished.
  void join();

 private:
  void produce(CameraSource& camera, FrameQueue& queue, std::int64_t frames);
  void close_all_queues();

  RuntimeStats& stats_;
  int threads_;
  TransportPolicy transport_;
  std::vector<std::unique_ptr<CameraSource>> cameras_;
  std::vector<FrameQueue*> routes_;         // parallel to cameras_
  std::vector<FrameQueue*> unique_queues_;  // each routed queue once
  // order: seq_cst (default) on the fetch_sub in produce() — the "last
  // producer out" edge (fetch_sub returning 1) must be a total-order event so
  // exactly one producer closes the queues; the queue state those closes
  // touch synchronizes separately through FrameQueue's mutex.
  std::atomic<int> active_producers_{0};
  bool started_ = false;
  // Declared last: producer tasks touch every member above, so the pool must
  // join its workers (its destructor) before anything they use is destroyed.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace snappix::runtime
