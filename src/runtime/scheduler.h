// StreamScheduler: drives N camera producers onto the server's shard queues.
//
// Each camera gets a long-running producer task on the shared ThreadPool
// (util/parallel.h): loop { capture -> stamp -> blocking push } onto the
// FrameQueue it was routed to at add_camera() time (the server routes by
// pattern_id so a shard's queue only ever carries patterns it owns). The pool
// defaults to one worker per camera (producers mostly block on backpressure,
// so oversubscribing cores is the right model). Producer tasks run to
// completion: a pool smaller than the fleet serves cameras in waves, not
// interleaved.
// The last producer to finish closes EVERY routed queue, so shard consumers
// drain and exit cleanly — closing queues one by one as their own producers
// finish would strand work-stealing siblings that still expect to poll them.
// All cameras own their Rng streams, so a camera's frame sequence is
// reproducible no matter how the producers interleave.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/camera.h"
#include "runtime/frame_queue.h"
#include "runtime/stats.h"
#include "util/parallel.h"

namespace snappix::runtime {

class HealthController;

// What the producer loop does with a framed frame that arrives corrupt
// (CRC error, truncated, or missing lines). Applied per frame, edge-side,
// before the frame can enter a FrameQueue — the server only ever serves
// intact payloads.
struct TransportPolicy {
  enum class Corrupt : std::uint8_t {
    kDrop,        // count it and move on (the fleet serves one fewer frame)
    kRetransmit,  // re-run the framed transfer (fresh fault draws), up to
                  // max_retransmits times; still corrupt after that => drop
  };
  Corrupt corrupt = Corrupt::kDrop;
  int max_retransmits = 3;  // per-frame retry budget under kRetransmit

  // Exponential retransmit backoff: the producer sleeps `backoff_initial`
  // before the first retry, multiplying by `backoff_multiplier` (capped at
  // `backoff_max`) between attempts — a degrading link gets breathing room
  // instead of a tight retry storm. Zero initial backoff (the default)
  // keeps the legacy immediate-retry loop. The wait is interruptible: a
  // scheduler shutting down wakes mid-backoff producers immediately.
  std::chrono::microseconds backoff_initial{0};
  double backoff_multiplier = 2.0;
  std::chrono::microseconds backoff_max{5000};
  // Per-frame wall-clock retransmit budget, measured from the frame's first
  // transfer attempt: once spending the next backoff would exceed it, the
  // frame is dropped rather than retried further. 0 = unlimited (the
  // max_retransmits count is then the only bound). NOTE: a nonzero budget
  // makes the retry COUNT timing-dependent, which advances each link's
  // fault-Rng stream differently run to run — determinism-sensitive tests
  // and benches should bound retries by count, not time.
  std::chrono::microseconds retransmit_budget{0};
};

// Throws std::invalid_argument when the policy is unusable (negative
// max_retransmits, negative backoff/budget durations, a multiplier below 1
// or non-finite). The single validation site for both the scheduler and
// ServerConfig.
void validate(const TransportPolicy& policy);

class StreamScheduler {
 public:
  // `threads` = 0 spawns one producer thread per camera at start(). Huge
  // fleets should pass an explicit cap — but note producer tasks run to
  // completion, so `threads` < cameras processes cameras in waves rather
  // than interleaving them. `transport` governs corrupt framed frames; it is
  // inert for cameras without framed mode.
  explicit StreamScheduler(RuntimeStats& stats, int threads = 0,
                           TransportPolicy transport = {});
  ~StreamScheduler();

  StreamScheduler(const StreamScheduler&) = delete;
  StreamScheduler& operator=(const StreamScheduler&) = delete;

  // Registers a queue for end-of-stream close WITHOUT routing a camera to
  // it. The server registers every shard queue up front: a shard that ends up
  // with no cameras must still see its queue close when the fleet drains, or
  // its worker (and every sibling waiting on fleet exhaustion) polls forever.
  void register_queue(FrameQueue& queue);

  // Routes the camera's frames to `queue` (registering it as with
  // register_queue). The queue must outlive the scheduler; several cameras
  // may share one queue.
  void add_camera(std::unique_ptr<CameraSource> camera, FrameQueue& queue);
  std::size_t camera_count() const { return cameras_.size(); }

  // Installs the fleet health controller (may be null = unsupervised). Call
  // before start(); the controller must outlive the scheduler. Producers
  // consult it per capture (quarantine gate) and report every framed
  // frame's transport fate to it.
  void set_health(HealthController* health);

  // Watchdog re-routing: atomically points every camera currently routed to
  // `from` at `to` instead (both must be registered queues), returning how
  // many cameras moved. Safe to call mid-run from the supervisor thread;
  // producers pick up the new route on their next frame. Frames already
  // queued in `from` are NOT moved — drain() them separately.
  std::size_t reroute(FrameQueue& from, FrameQueue& to);
  // Points every camera whose HOME queue is `home` back at it (the stalled
  // shard recovered). Returns how many cameras moved back.
  std::size_t restore_routes(FrameQueue& home);

  // Launches one producer task per camera, each emitting `frames_per_camera`
  // frames. Returns immediately; every routed queue is closed when the last
  // producer finishes (or the queues were closed externally).
  void start(std::int64_t frames_per_camera);
  // Skewed-fleet variant: camera i emits frames_per_camera[i] frames. The
  // vector must be parallel to the add_camera() order.
  void start(const std::vector<std::int64_t>& frames_per_camera);

  // Blocks until all producers have finished.
  void join();

 private:
  // One camera's routing slot. `home` is the add_camera() assignment;
  // `current` is where frames actually go and is the only part the watchdog
  // retargets mid-run.
  struct Route {
    FrameQueue* home = nullptr;
    // order: producers load `current` acquire before every admit; the
    // watchdog swaps it with release stores on reroute/restore. The
    // pointed-to queue synchronizes its own state through its mutex — the
    // acquire/release here only orders the route swap itself, so a producer
    // that sees the new pointer sees a fully re-routed fleet.
    std::atomic<FrameQueue*> current{nullptr};
  };

  void produce(CameraSource& camera, Route& route, std::int64_t frames);
  // Runs the kRetransmit policy on a corrupt framed frame: exponential
  // interruptible backoff between attempts, bounded by max_retransmits and
  // (when set) the per-frame wall-clock budget.
  void retransmit_with_backoff(CameraSource& camera, Frame& frame);
  // Interruptible sleep for retransmit backoff; false when the scheduler is
  // stopping (the producer must abandon the frame and exit).
  bool backoff_wait(std::chrono::microseconds delay);
  void request_stop();
  void close_all_queues();

  RuntimeStats& stats_;
  int threads_;
  TransportPolicy transport_;
  HealthController* health_ = nullptr;  // optional; set before start()
  std::vector<std::unique_ptr<CameraSource>> cameras_;
  std::vector<std::unique_ptr<Route>> routes_;  // parallel to cameras_
  std::vector<FrameQueue*> unique_queues_;      // each routed queue once
  // Shutdown handshake for producers sleeping in retransmit backoff: the
  // destructor sets stopping_ (under stop_mutex_) and notifies BEFORE
  // closing the queues, so a producer mid-backoff wakes immediately instead
  // of serving out its sleep against a dying scheduler.
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;  // guarded by stop_mutex_
  // order: seq_cst (default) on the fetch_sub in produce() — the "last
  // producer out" edge (fetch_sub returning 1) must be a total-order event so
  // exactly one producer closes the queues; the queue state those closes
  // touch synchronizes separately through FrameQueue's mutex.
  std::atomic<int> active_producers_{0};
  bool started_ = false;
  // Declared last: producer tasks touch every member above, so the pool must
  // join its workers (its destructor) before anything they use is destroyed.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace snappix::runtime
