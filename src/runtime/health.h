// HealthController: per-camera link-health supervision for the serving fleet.
//
// The transport tier reports every framed frame's fate (final outcome +
// retransmits spent); this controller folds those reports into fixed-size
// observation windows per camera and drives a four-state machine on them:
//
//            bad window                 bad window (rungs left)
//   kHealthy ──────────► kDegraded ───────────────────────────┐ (step down)
//      ▲                     │  error rate >= quarantine      │
//      │                     │  threshold, or bad at the      ▼
//      │ step count          │  bottom rung, or N consecutive losses
//      │ reaches 0           ▼                                │
//   kRecovering ◄──── kQuarantined ◄──────────────────────────┘
//        (hold captures elapsed; step back up one rung per
//         `recover_clean_windows` consecutive clean windows)
//
// On a bad window the controller steps the camera DOWN a configured
// degradation ladder — lower classify codec depth, then int8 precision, then
// best-effort QoS by default — trading that camera's fidelity for fleet
// stability instead of burning retransmit budget forever. Clean windows step
// back up hysteretically. The invariant the chaos suite pins: the ladder only
// ever touches the afflicted camera's knobs, so every frame served at full
// fidelity (the camera's base codec depth + precision) remains bit-identical
// to a fault-free run. Quarantine pauses capture entirely (drops are counted)
// so a dead link stops paying transfer + retry cost per frame.
//
// Threading: attach() happens before the scheduler starts (single-threaded
// setup). admit_capture()/on_frame() for one camera run on that camera's
// producer thread only; the window tallies are plain fields. state() and the
// snapshot counters are cross-thread reads backed by atomics, so the
// watchdog, benches, and tests may poll mid-run. See docs/resilience.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/camera.h"
#include "runtime/stats.h"

namespace snappix::runtime {

// One rung of the degradation ladder. Rungs are applied cumulatively in
// order: at ladder step K, rungs [0, K) are engaged and the rest restored to
// the camera's base (attach-time) values.
struct LadderStep {
  enum class Kind : std::uint8_t {
    kCodecPlanes,     // cap classify decode depth at `codec_planes`
    kInt8Precision,   // serve through the calibrated int8 tier
    kBestEffortQos,   // stop exerting backpressure; shed under overload
  };
  Kind kind = Kind::kCodecPlanes;
  int codec_planes = 0;  // kCodecPlanes only: depth while this rung is engaged
};

const char* to_string(LadderStep::Kind kind);

// The default ladder: codec depth 4 -> int8 -> best-effort.
std::vector<LadderStep> default_ladder();

// Shard-stall supervision (runs inside InferenceServer::run; needs >= 2
// shards to have anywhere to re-route). See docs/resilience.md.
struct WatchdogConfig {
  bool enabled = false;
  // Supervisor poll period. A shard is declared stalled after `stall_polls`
  // consecutive polls with no heartbeat progress while its queue holds
  // frames — size poll * stall_polls well above the batcher's max_delay or
  // a latency flush will be misread as a hang.
  std::chrono::microseconds poll{1000};
  int stall_polls = 8;
};

struct HealthConfig {
  bool enabled = false;
  // Observation window, in framed frames per camera.
  int window = 16;
  // A window is BAD when its final-corrupt rate reaches degrade_error_rate
  // or its retransmits-per-frame reach degrade_retransmit_rate.
  double degrade_error_rate = 0.25;
  double degrade_retransmit_rate = 1.5;
  // A bad window at or above this corrupt rate skips the ladder and
  // quarantines outright (the link is effectively down).
  double quarantine_error_rate = 0.75;
  // Mid-window tripwire: this many consecutive final losses quarantines
  // immediately, without waiting for the window to close.
  int quarantine_consecutive_losses = 8;
  // Captures to skip (and count) while quarantined before probing again.
  int quarantine_hold = 16;
  // Consecutive clean windows required per upward ladder step.
  int recover_clean_windows = 2;
  std::vector<LadderStep> ladder = default_ladder();
  WatchdogConfig watchdog;
};

// Throws std::invalid_argument when the config is unusable (non-positive
// window/hold/thresholds, non-finite rates, a codec rung outside
// [1, codec::kMaxBitplanes], non-positive watchdog poll/stall count).
void validate(const HealthConfig& config);

// Cross-thread view of one camera's supervision state, for benches/tests.
struct CameraHealthSnapshot {
  HealthState state = HealthState::kHealthy;
  int ladder_step = 0;  // rungs currently engaged
  std::uint64_t transitions = 0;
  std::uint64_t steps_down = 0;
  std::uint64_t steps_up = 0;
  std::uint64_t quarantine_drops = 0;  // captures skipped while quarantined
};

class HealthController {
 public:
  // (camera_id, from, to, ladder step after the transition)
  using TransitionHook = std::function<void(int, HealthState, HealthState, int)>;

  HealthController(const HealthConfig& config, RuntimeStats& stats);

  // Registers a camera and snapshots its BASE knobs (effective codec depth,
  // precision, QoS) — the values the ladder restores on recovery. Call after
  // the camera's defaults are final and before the scheduler starts.
  void attach(CameraSource& camera);
  bool attached(int camera_id) const;

  // Producer-thread gate, called once per capture opportunity. Returns false
  // while the camera is quarantined: the capture is skipped outright (no
  // transfer, no retries) and counted as a quarantine drop. The hold is
  // denominated in these skipped opportunities; when it elapses the camera
  // moves to kRecovering and captures resume.
  bool admit_capture(int camera_id);

  // Producer-thread report of one framed frame's FINAL transport fate
  // (after the retransmit policy ran): whether it was still corrupt, and the
  // retries spent on it. Drives the window accounting and every transition.
  void on_frame(CameraSource& camera, bool corrupt, int retransmits);

  // Cross-thread reads (safe mid-run).
  HealthState state(int camera_id) const;
  CameraHealthSnapshot snapshot(int camera_id) const;

  // Observer for state transitions (the server hangs trace emission here).
  // Install before the scheduler starts; runs on the producer thread.
  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

  const HealthConfig& config() const { return config_; }

 private:
  struct Entry {
    int camera_id = -1;
    CameraSource* camera = nullptr;
    // Producer-thread-only window accounting (plain fields by design).
    int window_frames = 0;
    int window_errors = 0;
    int window_retransmits = 0;
    int consecutive_losses = 0;
    int clean_windows = 0;
    int quarantine_remaining = 0;
    // Base knobs snapshotted at attach(); what step 0 restores.
    int base_codec_planes = 0;
    Precision base_precision = Precision::kFp32;
    QosClass base_qos = QosClass::kStandard;
    // order: release store on the producer thread at each transition /
    // ladder move; acquire loads from watchdog/bench/test readers — the
    // reader needs the knob writes that preceded the transition to be
    // visible before it trusts the state it read.
    std::atomic<HealthState> state{HealthState::kHealthy};
    // order: release/acquire, same pairing as `state` above.
    std::atomic<int> ladder_step{0};
    // order: relaxed — monotone event tallies; readers only ever sum or
    // compare them after the fact, no data is published through them.
    std::atomic<std::uint64_t> transitions{0};
    // order: relaxed — see `transitions`.
    std::atomic<std::uint64_t> steps_down{0};
    // order: relaxed — see `transitions`.
    std::atomic<std::uint64_t> steps_up{0};
    // order: relaxed — see `transitions`.
    std::atomic<std::uint64_t> quarantine_drops{0};
  };

  Entry* find(int camera_id);
  const Entry* find(int camera_id) const;
  void transition(Entry& entry, HealthState to);
  // Moves the camera to ladder step `step`, engaging/restoring every rung.
  void set_ladder_step(Entry& entry, int step, bool down);
  void quarantine(Entry& entry);

  HealthConfig config_;
  RuntimeStats& stats_;
  TransitionHook hook_;
  // Built by attach() before the scheduler starts; strictly read-only
  // afterwards (no mutex needed — entries are reached through const lookups
  // and their mutable state is the atomics above).
  std::unordered_map<int, std::unique_ptr<Entry>> cameras_;
};

}  // namespace snappix::runtime
