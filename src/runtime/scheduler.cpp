#include "runtime/scheduler.h"

#include <cstdio>

#include "util/common.h"

namespace snappix::runtime {

StreamScheduler::StreamScheduler(FrameQueue& queue, RuntimeStats& stats, int threads)
    : queue_(queue), stats_(stats), threads_(threads) {
  SNAPPIX_CHECK(threads >= 0, "scheduler thread count must be >= 0");
}

StreamScheduler::~StreamScheduler() {
  // Unblock producers stuck in push() before the pool's destructor joins.
  queue_.close();
}

void StreamScheduler::add_camera(std::unique_ptr<CameraSource> camera) {
  SNAPPIX_CHECK(!started_, "cannot add cameras after start()");
  SNAPPIX_CHECK(camera != nullptr, "null camera");
  cameras_.push_back(std::move(camera));
}

void StreamScheduler::start(std::int64_t frames_per_camera) {
  SNAPPIX_CHECK(!started_, "scheduler already started");
  SNAPPIX_CHECK(!cameras_.empty(), "no cameras to schedule");
  SNAPPIX_CHECK(frames_per_camera > 0, "frames_per_camera must be positive");
  started_ = true;
  // One producer thread per camera by default: producers spend most of their
  // time blocked in push() under backpressure, so oversubscribing cores is
  // the right model (and preemption provides the multiplexing on small hosts).
  const int threads = threads_ > 0 ? threads_ : static_cast<int>(cameras_.size());
  pool_ = std::make_unique<ThreadPool>(threads);
  active_producers_.store(static_cast<int>(cameras_.size()));
  for (const auto& camera : cameras_) {
    CameraSource* cam = camera.get();
    pool_->submit([this, cam, frames_per_camera] { produce(*cam, frames_per_camera); });
  }
}

void StreamScheduler::produce(CameraSource& camera, std::int64_t frames) {
  // ThreadPool tasks must not throw (an escaping exception aborts the
  // process), and a producer that dies without the fetch_sub below would
  // leave the queue open forever. A failing camera therefore logs and drops
  // out; the rest of the fleet keeps streaming.
  try {
    for (std::int64_t i = 0; i < frames; ++i) {
      const Clock::time_point t0 = Clock::now();
      Frame frame = camera.next_frame();
      frame.capture_start = t0;
      stats_.record_capture(std::chrono::duration<double>(Clock::now() - t0).count());
      frame.enqueue_time = Clock::now();
      if (!queue_.push(std::move(frame))) {
        break;  // queue closed under us — runtime is shutting down
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "runtime: camera %d failed: %s\n", camera.id(), e.what());
  }
  if (active_producers_.fetch_sub(1) == 1) {
    queue_.close();  // last producer out turns off the lights
  }
}

void StreamScheduler::join() {
  if (pool_ != nullptr) {
    pool_->wait_idle();
  }
}

}  // namespace snappix::runtime
