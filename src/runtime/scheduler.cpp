#include "runtime/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "runtime/health.h"
#include "util/common.h"

namespace snappix::runtime {

void validate(const TransportPolicy& policy) {
  // The upper bound matches Frame::retransmits (uint16): a larger budget
  // would wrap the counter and the retry loop's guard would never trip.
  if (policy.max_retransmits < 0 || policy.max_retransmits > 0xFFFF) {
    std::ostringstream os;
    os << "TransportPolicy.max_retransmits must be in [0, 65535], got "
       << policy.max_retransmits;
    throw std::invalid_argument(os.str());
  }
  if (policy.backoff_initial.count() < 0 || policy.backoff_max.count() < 0 ||
      policy.retransmit_budget.count() < 0) {
    throw std::invalid_argument(
        "TransportPolicy backoff/budget durations must be non-negative");
  }
  // The negated form rejects NaN multipliers too.
  if (!(policy.backoff_multiplier >= 1.0) || policy.backoff_multiplier > 1e6) {
    std::ostringstream os;
    os << "TransportPolicy.backoff_multiplier must be finite and >= 1, got "
       << policy.backoff_multiplier;
    throw std::invalid_argument(os.str());
  }
  if (policy.backoff_initial.count() > 0 &&
      policy.backoff_max < policy.backoff_initial) {
    throw std::invalid_argument(
        "TransportPolicy.backoff_max must be >= backoff_initial");
  }
}

StreamScheduler::StreamScheduler(RuntimeStats& stats, int threads, TransportPolicy transport)
    : stats_(stats), threads_(threads), transport_(transport) {
  SNAPPIX_CHECK(threads >= 0, "scheduler thread count must be >= 0");
  validate(transport);
}

StreamScheduler::~StreamScheduler() {
  // Shutdown order matters: first wake producers sleeping in retransmit
  // backoff (they re-check stopping_ and bail), THEN close the queues to
  // unblock producers stuck in admit(). Either order alone leaves one class
  // of producer blocked while the pool destructor tries to join it.
  request_stop();
  close_all_queues();
}

void StreamScheduler::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
}

void StreamScheduler::close_all_queues() {
  for (FrameQueue* queue : unique_queues_) {
    queue->close();
  }
}

bool StreamScheduler::backoff_wait(std::chrono::microseconds delay) {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  return !stop_cv_.wait_for(lock, delay, [this] { return stopping_; });
}

void StreamScheduler::register_queue(FrameQueue& queue) {
  SNAPPIX_CHECK(!started_, "cannot register queues after start()");
  if (std::find(unique_queues_.begin(), unique_queues_.end(), &queue) ==
      unique_queues_.end()) {
    unique_queues_.push_back(&queue);
    // Default shed accounting: every shed (admission reject or drop-late
    // expiry, whichever thread performs it) lands in RuntimeStats. The
    // server replaces this with an observer that also emits trace events.
    RuntimeStats& stats = stats_;
    queue.set_shed_observer([&stats](const Frame& frame, ShedReason reason) {
      stats.record_shed(frame.camera_id, frame.qos, reason);
    });
  }
}

void StreamScheduler::add_camera(std::unique_ptr<CameraSource> camera, FrameQueue& queue) {
  SNAPPIX_CHECK(!started_, "cannot add cameras after start()");
  SNAPPIX_CHECK(camera != nullptr, "null camera");
  cameras_.push_back(std::move(camera));
  auto route = std::make_unique<Route>();
  route->home = &queue;
  route->current.store(&queue, std::memory_order_relaxed);
  routes_.push_back(std::move(route));
  register_queue(queue);
}

void StreamScheduler::set_health(HealthController* health) {
  SNAPPIX_CHECK(!started_, "cannot install a health controller after start()");
  health_ = health;
}

std::size_t StreamScheduler::reroute(FrameQueue& from, FrameQueue& to) {
  std::size_t moved = 0;
  for (const std::unique_ptr<Route>& route : routes_) {
    if (route->current.load(std::memory_order_acquire) == &from) {
      route->current.store(&to, std::memory_order_release);
      ++moved;
    }
  }
  return moved;
}

std::size_t StreamScheduler::restore_routes(FrameQueue& home) {
  std::size_t moved = 0;
  for (const std::unique_ptr<Route>& route : routes_) {
    if (route->home == &home &&
        route->current.load(std::memory_order_acquire) != &home) {
      route->current.store(&home, std::memory_order_release);
      ++moved;
    }
  }
  return moved;
}

void StreamScheduler::start(std::int64_t frames_per_camera) {
  start(std::vector<std::int64_t>(cameras_.size(), frames_per_camera));
}

void StreamScheduler::start(const std::vector<std::int64_t>& frames_per_camera) {
  SNAPPIX_CHECK(!started_, "scheduler already started");
  SNAPPIX_CHECK(!cameras_.empty(), "no cameras to schedule");
  SNAPPIX_CHECK(frames_per_camera.size() == cameras_.size(),
                "frames_per_camera has " << frames_per_camera.size() << " entries for "
                                         << cameras_.size() << " cameras");
  for (const std::int64_t frames : frames_per_camera) {
    SNAPPIX_CHECK(frames > 0, "frames_per_camera entries must be positive, got " << frames);
  }
  started_ = true;
  // One producer thread per camera by default: producers spend most of their
  // time blocked in push() under backpressure, so oversubscribing cores is
  // the right model (and preemption provides the multiplexing on small hosts).
  const int threads = threads_ > 0 ? threads_ : static_cast<int>(cameras_.size());
  pool_ = std::make_unique<ThreadPool>(threads);
  active_producers_.store(static_cast<int>(cameras_.size()));
  for (std::size_t i = 0; i < cameras_.size(); ++i) {
    CameraSource* cam = cameras_[i].get();
    Route* route = routes_[i].get();
    const std::int64_t frames = frames_per_camera[i];
    pool_->submit([this, cam, route, frames] { produce(*cam, *route, frames); });
  }
}

void StreamScheduler::retransmit_with_backoff(CameraSource& camera, Frame& frame) {
  // Edge-side integrity gate: a corrupt framed frame is retried (fresh fault
  // draws over the same payload) until it recovers, the retry count runs
  // out, or the per-frame wall-clock budget (measured from the FIRST
  // attempt) would be blown by the next backoff sleep.
  const Clock::time_point budget_end =
      transport_.retransmit_budget.count() > 0
          ? frame.transport_start + transport_.retransmit_budget
          : Clock::time_point::max();
  std::chrono::microseconds backoff = transport_.backoff_initial;
  while (is_corrupt(frame.transport) &&
         frame.retransmits < transport_.max_retransmits) {
    if (backoff.count() > 0) {
      if (Clock::now() + backoff > budget_end) {
        break;  // budget exhausted: drop rather than sleep past it
      }
      if (!backoff_wait(backoff)) {
        break;  // scheduler is shutting down; abandon the frame
      }
      const double next_us =
          static_cast<double>(backoff.count()) * transport_.backoff_multiplier;
      backoff = std::min(transport_.backoff_max,
                         std::chrono::microseconds(static_cast<std::int64_t>(next_us)));
    } else if (Clock::now() > budget_end) {
      break;
    }
    camera.retransmit(frame);
  }
}

void StreamScheduler::produce(CameraSource& camera, Route& route, std::int64_t frames) {
  // ThreadPool tasks must not throw (an escaping exception aborts the
  // process), and a producer that dies without the fetch_sub below would
  // leave the queues open forever. A failing camera therefore logs and drops
  // out; the rest of the fleet keeps streaming.
  try {
    for (std::int64_t i = 0; i < frames; ++i) {
      // Quarantine gate: a camera the health controller has quarantined
      // skips the capture entirely (no transfer, no retries, counted as a
      // quarantine drop) — the whole point is to stop paying wire cost for
      // a dead link. The iteration still consumes one frame of the camera's
      // budget, keeping per-camera conservation exact.
      if (health_ != nullptr && !health_->admit_capture(camera.id())) {
        continue;
      }
      const Clock::time_point t0 = Clock::now();
      Frame frame = camera.next_frame();
      frame.capture_start = t0;
      if (camera.framed()) {
        if (is_corrupt(frame.transport) &&
            transport_.corrupt == TransportPolicy::Corrupt::kRetransmit) {
          retransmit_with_backoff(camera, frame);
        }
        const bool codec_link = camera.framed_link()->config().codec;
        stats_.record_transport(camera.id(), frame.transport, frame.retransmits,
                                is_corrupt(frame.transport), codec_link,
                                frame.decoded_planes, frame.total_planes);
        if (health_ != nullptr) {
          health_->on_frame(camera, is_corrupt(frame.transport), frame.retransmits);
        }
      }
      // The capture stage owns everything edge-side: scene synthesis, CE
      // encoding, and — in framed mode — every transport attempt including
      // retries and backoff sleeps, so retry storms are visible in the
      // capture percentiles rather than silently widening the capture->e2e
      // gap.
      frame.capture_end = Clock::now();
      stats_.record_capture(std::chrono::duration<double>(frame.capture_end - t0).count());
      if (is_corrupt(frame.transport)) {
        continue;  // counted, never enqueued: the fleet serves one fewer frame
      }
      frame.enqueue_time = Clock::now();
      // The route is re-read per frame: the watchdog may have re-pointed
      // this camera at a sibling shard mid-run (see reroute()).
      FrameQueue& queue = *route.current.load(std::memory_order_acquire);
      // QoS admission: kShed means a best-effort frame met a full queue —
      // it was counted through the shed observer and the camera keeps
      // streaming (overload is THIS frame's problem, not the stream's).
      // kClosed means the runtime is shutting down; the loop ends without
      // counting anything (a blocked producer observing close() is not a
      // shed — the taxonomy the regression tests pin).
      if (queue.admit(std::move(frame)) == PushResult::kClosed) {
        break;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "runtime: camera %d failed: %s\n", camera.id(), e.what());
  }
  if (active_producers_.fetch_sub(1) == 1) {
    close_all_queues();  // last producer out turns off the lights, fleet-wide
  }
}

void StreamScheduler::join() {
  if (pool_ != nullptr) {
    pool_->wait_idle();
  }
}

}  // namespace snappix::runtime
