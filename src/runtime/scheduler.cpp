#include "runtime/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/common.h"

namespace snappix::runtime {

void validate(const TransportPolicy& policy) {
  // The upper bound matches Frame::retransmits (uint16): a larger budget
  // would wrap the counter and the retry loop's guard would never trip.
  if (policy.max_retransmits < 0 || policy.max_retransmits > 0xFFFF) {
    std::ostringstream os;
    os << "TransportPolicy.max_retransmits must be in [0, 65535], got "
       << policy.max_retransmits;
    throw std::invalid_argument(os.str());
  }
}

StreamScheduler::StreamScheduler(RuntimeStats& stats, int threads, TransportPolicy transport)
    : stats_(stats), threads_(threads), transport_(transport) {
  SNAPPIX_CHECK(threads >= 0, "scheduler thread count must be >= 0");
  validate(transport);
}

StreamScheduler::~StreamScheduler() {
  // Unblock producers stuck in push() before the pool's destructor joins.
  close_all_queues();
}

void StreamScheduler::close_all_queues() {
  for (FrameQueue* queue : unique_queues_) {
    queue->close();
  }
}

void StreamScheduler::register_queue(FrameQueue& queue) {
  SNAPPIX_CHECK(!started_, "cannot register queues after start()");
  if (std::find(unique_queues_.begin(), unique_queues_.end(), &queue) ==
      unique_queues_.end()) {
    unique_queues_.push_back(&queue);
    // Default shed accounting: every shed (admission reject or drop-late
    // expiry, whichever thread performs it) lands in RuntimeStats. The
    // server replaces this with an observer that also emits trace events.
    RuntimeStats& stats = stats_;
    queue.set_shed_observer([&stats](const Frame& frame, ShedReason reason) {
      stats.record_shed(frame.camera_id, frame.qos, reason);
    });
  }
}

void StreamScheduler::add_camera(std::unique_ptr<CameraSource> camera, FrameQueue& queue) {
  SNAPPIX_CHECK(!started_, "cannot add cameras after start()");
  SNAPPIX_CHECK(camera != nullptr, "null camera");
  cameras_.push_back(std::move(camera));
  routes_.push_back(&queue);
  register_queue(queue);
}

void StreamScheduler::start(std::int64_t frames_per_camera) {
  start(std::vector<std::int64_t>(cameras_.size(), frames_per_camera));
}

void StreamScheduler::start(const std::vector<std::int64_t>& frames_per_camera) {
  SNAPPIX_CHECK(!started_, "scheduler already started");
  SNAPPIX_CHECK(!cameras_.empty(), "no cameras to schedule");
  SNAPPIX_CHECK(frames_per_camera.size() == cameras_.size(),
                "frames_per_camera has " << frames_per_camera.size() << " entries for "
                                         << cameras_.size() << " cameras");
  for (const std::int64_t frames : frames_per_camera) {
    SNAPPIX_CHECK(frames > 0, "frames_per_camera entries must be positive, got " << frames);
  }
  started_ = true;
  // One producer thread per camera by default: producers spend most of their
  // time blocked in push() under backpressure, so oversubscribing cores is
  // the right model (and preemption provides the multiplexing on small hosts).
  const int threads = threads_ > 0 ? threads_ : static_cast<int>(cameras_.size());
  pool_ = std::make_unique<ThreadPool>(threads);
  active_producers_.store(static_cast<int>(cameras_.size()));
  for (std::size_t i = 0; i < cameras_.size(); ++i) {
    CameraSource* cam = cameras_[i].get();
    FrameQueue* queue = routes_[i];
    const std::int64_t frames = frames_per_camera[i];
    pool_->submit([this, cam, queue, frames] { produce(*cam, *queue, frames); });
  }
}

void StreamScheduler::produce(CameraSource& camera, FrameQueue& queue, std::int64_t frames) {
  // ThreadPool tasks must not throw (an escaping exception aborts the
  // process), and a producer that dies without the fetch_sub below would
  // leave the queues open forever. A failing camera therefore logs and drops
  // out; the rest of the fleet keeps streaming.
  try {
    for (std::int64_t i = 0; i < frames; ++i) {
      const Clock::time_point t0 = Clock::now();
      Frame frame = camera.next_frame();
      frame.capture_start = t0;
      if (camera.framed()) {
        // Edge-side integrity gate: a corrupt framed frame is retried (fresh
        // fault draws over the same payload) or dropped, so the queues only
        // ever carry intact coded images.
        while (is_corrupt(frame.transport) &&
               transport_.corrupt == TransportPolicy::Corrupt::kRetransmit &&
               frame.retransmits < transport_.max_retransmits) {
          camera.retransmit(frame);
        }
        const bool codec_link = camera.framed_link()->config().codec;
        stats_.record_transport(camera.id(), frame.transport, frame.retransmits,
                                is_corrupt(frame.transport), codec_link,
                                frame.decoded_planes, frame.total_planes);
      }
      // The capture stage owns everything edge-side: scene synthesis, CE
      // encoding, and — in framed mode — every transport attempt including
      // retries, so retry storms are visible in the capture percentiles
      // rather than silently widening the capture->e2e gap.
      frame.capture_end = Clock::now();
      stats_.record_capture(std::chrono::duration<double>(frame.capture_end - t0).count());
      if (is_corrupt(frame.transport)) {
        continue;  // counted, never enqueued: the fleet serves one fewer frame
      }
      frame.enqueue_time = Clock::now();
      // QoS admission: kShed means a best-effort frame met a full queue —
      // it was counted through the shed observer and the camera keeps
      // streaming (overload is THIS frame's problem, not the stream's).
      // kClosed means the runtime is shutting down; the loop ends without
      // counting anything (a blocked producer observing close() is not a
      // shed — the taxonomy the regression tests pin).
      if (queue.admit(std::move(frame)) == PushResult::kClosed) {
        break;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "runtime: camera %d failed: %s\n", camera.id(), e.what());
  }
  if (active_producers_.fetch_sub(1) == 1) {
    close_all_queues();  // last producer out turns off the lights, fleet-wide
  }
}

void StreamScheduler::join() {
  if (pool_ != nullptr) {
    pool_->wait_idle();
  }
}

}  // namespace snappix::runtime
