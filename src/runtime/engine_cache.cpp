#include "runtime/engine_cache.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/common.h"

namespace snappix::runtime {

// --- PatternNormalizer -------------------------------------------------------

PatternNormalizer::PatternNormalizer(const ce::CePattern& pattern) : tile_(pattern.tile()) {
  const auto counts = pattern.exposure_counts();
  inv_counts_.resize(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    // Same reciprocal-then-multiply as ce::normalize_by_exposure, so apply()
    // is bit-identical to the library path.
    inv_counts_[i] = counts[i] > 0 ? 1.0F / static_cast<float>(counts[i]) : 0.0F;
  }
}

Tensor PatternNormalizer::apply(const Tensor& coded) const {
  SNAPPIX_CHECK(coded.ndim() == 3, "PatternNormalizer expects (B, H, W), got "
                                       << coded.shape().to_string());
  const std::int64_t batch = coded.shape()[0];
  const std::int64_t h = coded.shape()[1];
  const std::int64_t w = coded.shape()[2];
  SNAPPIX_CHECK(h % tile_ == 0 && w % tile_ == 0,
                "frame " << h << "x" << w << " not divisible by tile " << tile_);
  std::vector<float> out(coded.data().size());
  const auto& dc = coded.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* src = dc.data() + b * h * w;
    float* dst = out.data() + b * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      const float* irow = inv_counts_.data() + (y % tile_) * tile_;
      for (std::int64_t x = 0; x < w; ++x) {
        dst[y * w + x] = src[y * w + x] * irow[x % tile_];
      }
    }
  }
  return Tensor::from_vector(std::move(out), coded.shape());
}

// --- EngineCache -------------------------------------------------------------

EngineCache::EngineCache(const EngineCacheConfig& config, EngineFactory factory)
    : config_(config), factory_(std::move(factory)) {
  SNAPPIX_CHECK(config.shards > 0, "EngineCache needs at least one shard");
  SNAPPIX_CHECK(config.capacity_per_shard > 0, "EngineCache shard capacity must be positive");
  SNAPPIX_CHECK(factory_ != nullptr, "EngineCache needs an engine factory");
  shards_.reserve(config.shards);
  for (std::size_t i = 0; i < config.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

EngineCache::Shard& EngineCache::shard_for(std::uint64_t pattern_id) {
  // pattern_id is an FNV-1a hash, already well mixed — modulo suffices.
  return *shards_[pattern_id % shards_.size()];
}

std::shared_ptr<const ServingEntry> EngineCache::resolve(
    std::uint64_t pattern_id, const std::shared_ptr<const ce::CePattern>& pattern,
    Precision precision) {
  SNAPPIX_CHECK(pattern != nullptr, "resolve() needs the pattern to build on a miss");
  Shard& shard = shard_for(pattern_id);
  const CacheKey key{pattern_id, precision};
  EngineCacheCounters& counters = shard.counters[static_cast<std::size_t>(precision)];

  // A hit is a map lookup; a miss builds (and for int8, calibrates) an
  // engine. The hit/miss arg on the span makes the difference visible in the
  // trace without a separate event type.
  obs::TraceLane* lane = obs::current_lane();
  obs::TraceRecorder* recorder = obs::current_recorder();
  const std::int64_t span_start = lane != nullptr ? recorder->now_ns() : 0;

  std::lock_guard<std::mutex> lock(shard.mutex);

  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    ++counters.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
    if (lane != nullptr) {
      lane->add_complete("cache_resolve", span_start, recorder->now_ns() - span_start,
                         "\"hit\": true");
    }
    return it->second->second;
  }

  ++counters.misses;
  auto entry = std::make_shared<ServingEntry>();
  entry->pattern = pattern;
  entry->normalizer = std::make_unique<PatternNormalizer>(*pattern);
  entry->engine = factory_(*pattern, precision);
  entry->precision = precision;
  SNAPPIX_CHECK(entry->engine != nullptr, "engine factory returned null");
  SNAPPIX_CHECK(entry->engine->precision() == precision,
                "engine factory built a " << to_string(entry->engine->precision())
                                          << " engine for a " << to_string(precision)
                                          << " miss");

  shard.lru.emplace_front(key, entry);
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > config_.capacity_per_shard) {
    const CacheKey& victim = shard.lru.back().first;
    ++shard.counters[static_cast<std::size_t>(victim.precision)].evictions;
    shard.index.erase(victim);
    shard.lru.pop_back();  // in-flight holders keep the entry alive
  }
  if (lane != nullptr) {
    lane->add_complete("cache_resolve", span_start, recorder->now_ns() - span_start,
                       "\"hit\": false");
  }
  return entry;
}

EngineCacheCounters EngineCache::counters() const {
  EngineCacheCounters total;
  for (const Precision precision : {Precision::kFp32, Precision::kInt8}) {
    const EngineCacheCounters tier = counters(precision);
    total.hits += tier.hits;
    total.misses += tier.misses;
    total.evictions += tier.evictions;
  }
  return total;
}

EngineCacheCounters EngineCache::counters(Precision precision) const {
  EngineCacheCounters total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    const EngineCacheCounters& tier = shard->counters[static_cast<std::size_t>(precision)];
    total.hits += tier.hits;
    total.misses += tier.misses;
    total.evictions += tier.evictions;
  }
  return total;
}

std::size_t EngineCache::resident() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

std::size_t EngineCache::max_shard_occupancy() const {
  std::size_t max_occupancy = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    max_occupancy = std::max(max_occupancy, shard->lru.size());
  }
  return max_occupancy;
}

}  // namespace snappix::runtime
