#include "runtime/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <string>

#include "obs/trace.h"
#include "tensor/gemm.h"
#include "tensor/gemm_s8.h"
#include "util/common.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace snappix::runtime {

namespace {

constexpr float kLayerNormEps = 1e-5F;  // nn::LayerNorm's default

// Replicates the tape ops' elementwise formulas exactly (see engine.h).
inline float gelu_scalar(float x) {
  constexpr float kPi = 3.14159265358979323846F;
  const float c = std::sqrt(2.0F / kPi);
  const float inner = c * (x + 0.044715F * x * x * x);
  return 0.5F * x * (1.0F + std::tanh(inner));
}

// out(rows, n) = in(rows, k) @ w(k, n) + bias(n), matching Linear::forward:
// matmul into zeroed accumulators, then a separate broadcast bias add.
void linear_rows(const float* in, const float* w, const float* bias, float* out,
                 std::int64_t rows, std::int64_t k, std::int64_t n) {
  std::memset(out, 0, static_cast<std::size_t>(rows * n) * sizeof(float));
  detail::gemm_nn(in, w, out, rows, k, n);
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = out + r * n;
    for (std::int64_t j = 0; j < n; ++j) {
      row[j] = row[j] + bias[j];
    }
  }
}

void softmax_row(float* row, std::int64_t n) {
  float mx = -std::numeric_limits<float>::infinity();
  for (std::int64_t i = 0; i < n; ++i) {
    mx = std::max(mx, row[i]);
  }
  float denom = 0.0F;
  for (std::int64_t i = 0; i < n; ++i) {
    row[i] = std::exp(row[i] - mx);
    denom += row[i];
  }
  for (std::int64_t i = 0; i < n; ++i) {
    row[i] /= denom;
  }
}

// Fast exp for the int8 tier's softmax: 2^(x log2 e) assembled from the
// exponent bits and a cubic on the fraction (~1e-3 relative error, which the
// softmax normalization largely cancels). Pure float arithmetic — no libm —
// so it is deterministic across runs and hosts, just not bit-equal to
// std::exp. The fp32 engine MUST keep softmax_row above; only the already-
// approximate int8 tier may trade exp accuracy for the ~10x speedup.
inline float fast_exp_negative(float x) {
  x = std::max(x, -80.0F);  // softmax inputs are <= 0 after max subtraction
  const float z = x * 1.44269504F;
  const float zf = std::floor(z);
  const float f = z - zf;
  const float p =
      1.0F + f * (0.69314718F + f * (0.24022651F + f * (0.05204867F + f * 0.01353997F)));
  union {
    std::uint32_t u;
    float fl;
  } bits;
  bits.u = static_cast<std::uint32_t>(static_cast<int>(zf) + 127) << 23;
  return bits.fl * p;
}

void softmax_row_fast(float* row, std::int64_t n) {
  float mx = -std::numeric_limits<float>::infinity();
  for (std::int64_t i = 0; i < n; ++i) {
    mx = std::max(mx, row[i]);
  }
  float denom = 0.0F;
  for (std::int64_t i = 0; i < n; ++i) {
    row[i] = fast_exp_negative(row[i] - mx);
    denom += row[i];
  }
  for (std::int64_t i = 0; i < n; ++i) {
    row[i] /= denom;
  }
}

// LayerNorm over (rows, d), replicating the tape op's formula (mean() is sum
// times reciprocal). Shared verbatim by both precision tiers — the fp32
// engine's bit-exactness depends on this exact operation sequence, and the
// int8 engine keeps normalization in fp32.
void layer_norm_rows(const float* in, float* out, std::int64_t rows, std::int64_t d,
                     const float* gamma, const float* beta) {
  const float inv_d = 1.0F / static_cast<float>(d);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* x = in + r * d;
    float* y = out + r * d;
    float acc = 0.0F;
    for (std::int64_t j = 0; j < d; ++j) {
      acc += x[j];
    }
    const float mu = acc * inv_d;
    float var_acc = 0.0F;
    for (std::int64_t j = 0; j < d; ++j) {
      const float centered = x[j] - mu;
      var_acc += centered * centered;
    }
    const float var = var_acc * inv_d;
    const float denom = std::sqrt(var + kLayerNormEps);
    for (std::int64_t j = 0; j < d; ++j) {
      const float normalized = (x[j] - mu) / denom;
      y[j] = normalized * gamma[j] + beta[j];
    }
  }
}

// Multi-head self-attention over the fused qkv rows (batch*N, 3D): scores
// into `scores` ((N, N) scratch, per (b, head)), context into ctx
// (batch*N, D). Replicates the tape's q @ k^T -> scale -> softmax -> @ v
// accumulation orders — the fp32 engine's bit-exactness depends on these
// exact scalar ascending-l dots, so this function must not be vectorized.
// The int8 tier uses attention_rows_fast below instead.
void attention_rows(const float* qkv, float* ctx, float* scores, std::int64_t batch,
                    std::int64_t n, std::int64_t d, std::int64_t heads) {
  const std::int64_t hd = d / heads;
  const float scale = 1.0F / std::sqrt(static_cast<float>(hd));
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* qkv_base = qkv + b * n * 3 * d;
    for (std::int64_t head = 0; head < heads; ++head) {
      // The head's q/k/v live strided inside the qkv rows:
      // q[t][e] = qkv[b, t, head*hd + e], k at +D, v at +2D. The dots below
      // accumulate in the same ascending order as the tape's q @ k^T and
      // attn @ v matmuls, so no gather copies are needed.
      const std::int64_t q_off = head * hd;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* q_row = qkv_base + i * 3 * d + q_off;
        float* score_row = scores + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
          const float* k_row = qkv_base + j * 3 * d + d + q_off;
          float acc = 0.0F;
          for (std::int64_t l = 0; l < hd; ++l) {
            acc += q_row[l] * k_row[l];
          }
          score_row[j] = acc;
        }
      }
      // Scale applied after the matmul as a separate pass (mul_scalar
      // comes after matmul on the tape), then row softmax.
      for (std::int64_t i = 0; i < n * n; ++i) {
        scores[i] *= scale;
      }
      for (std::int64_t t = 0; t < n; ++t) {
        softmax_row(scores + t * n, n);
      }
      for (std::int64_t t = 0; t < n; ++t) {
        const float* attn_row = scores + t * n;
        float* ctx_row = ctx + (b * n + t) * d + q_off;
        for (std::int64_t e = 0; e < hd; ++e) {
          ctx_row[e] = 0.0F;
        }
        for (std::int64_t j = 0; j < n; ++j) {
          const float av = attn_row[j];
          const float* v_row = qkv_base + j * 3 * d + 2 * d + q_off;
          for (std::int64_t e = 0; e < hd; ++e) {
            ctx_row[e] += av * v_row[e];
          }
        }
      }
    }
  }
}

// The int8 tier's attention: same math as attention_rows, but the head's
// k rows are first packed into a contiguous k^T tile (`kt`, (hd, n)) so the
// score accumulation runs broadcast-times-row across n-wide vector lanes —
// no per-dot horizontal sums, no order pinning. Explicit AVX2: the library
// builds at -O2, where gcc only vectorizes fixed-trip-count loops, so every
// runtime-width loop here would otherwise run scalar. Deterministic (fixed
// operation order), NOT bit-equal to the tape: the fp32 engine's attention
// is pinned to scalar ascending-order dots, which makes it the hottest
// serving stage; freeing the int8 tier from that ordering is most of its
// speedup at small-token geometries.
void attention_rows_fast(const float* qkv, float* ctx, float* scores, float* kt,
                         std::int64_t batch, std::int64_t n, std::int64_t d,
                         std::int64_t heads) {
  const std::int64_t hd = d / heads;
  const float scale = 1.0F / std::sqrt(static_cast<float>(hd));
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* qkv_base = qkv + b * n * 3 * d;
    for (std::int64_t head = 0; head < heads; ++head) {
      const std::int64_t q_off = head * hd;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* k_row = qkv_base + j * 3 * d + d + q_off;
        for (std::int64_t l = 0; l < hd; ++l) {
          kt[l * n + j] = k_row[l];
        }
      }
      for (std::int64_t i = 0; i < n; ++i) {
        const float* q_row = qkv_base + i * 3 * d + q_off;
        float* score_row = scores + i * n;
        std::int64_t j0 = 0;
#if defined(__AVX2__)
        const __m256 vscale = _mm256_set1_ps(scale);
        for (; j0 + 8 <= n; j0 += 8) {
          __m256 acc = _mm256_setzero_ps();
          for (std::int64_t l = 0; l < hd; ++l) {
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(q_row[l]),
                                                   _mm256_loadu_ps(kt + l * n + j0)));
          }
          _mm256_storeu_ps(score_row + j0, _mm256_mul_ps(acc, vscale));
        }
#endif
        for (; j0 < n; ++j0) {  // scalar tail (and the non-AVX2 whole loop)
          float acc = 0.0F;
          for (std::int64_t l = 0; l < hd; ++l) {
            acc += q_row[l] * kt[l * n + j0];
          }
          score_row[j0] = acc * scale;
        }
        softmax_row_fast(score_row, n);
      }
      for (std::int64_t t = 0; t < n; ++t) {
        const float* attn_row = scores + t * n;
        float* ctx_row = ctx + (b * n + t) * d + q_off;
        std::int64_t e0 = 0;
#if defined(__AVX2__)
        for (; e0 + 8 <= hd; e0 += 8) {
          __m256 acc = _mm256_setzero_ps();
          for (std::int64_t j = 0; j < n; ++j) {
            acc = _mm256_add_ps(
                acc, _mm256_mul_ps(_mm256_set1_ps(attn_row[j]),
                                   _mm256_loadu_ps(qkv_base + j * 3 * d + 2 * d + q_off + e0)));
          }
          _mm256_storeu_ps(ctx_row + e0, acc);
        }
#endif
        for (; e0 < hd; ++e0) {
          float acc = 0.0F;
          for (std::int64_t j = 0; j < n; ++j) {
            acc += attn_row[j] * qkv_base[j * 3 * d + 2 * d + q_off + e0];
          }
          ctx_row[e0] = acc;
        }
      }
    }
  }
}

// out[i] (+)= in[i] elementwise, AVX2-wide (the -O2 build does not vectorize
// runtime-width loops on its own). Int8 tier only — the fp32 engine's
// residual adds stay in its own pinned loops.
inline void add_rows_fast(float* out, const float* in, std::int64_t count) {
  std::int64_t i = 0;
#if defined(__AVX2__)
  for (; i + 8 <= count; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(out + i),
                                            _mm256_loadu_ps(in + i)));
  }
#endif
  for (; i < count; ++i) {
    out[i] += in[i];
  }
}

// Vector-friendly LayerNorm for the int8 tier: tree-order reductions instead
// of the tape's pinned ascending sums. Deterministic, not bit-equal to
// layer_norm_rows.
void layer_norm_rows_fast(const float* in, float* out, std::int64_t rows, std::int64_t d,
                          const float* gamma, const float* beta) {
  const float inv_d = 1.0F / static_cast<float>(d);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* x = in + r * d;
    float* y = out + r * d;
#if defined(__AVX2__)
    __m256 vsum = _mm256_setzero_ps();
    std::int64_t j = 0;
    for (; j + 8 <= d; j += 8) {
      vsum = _mm256_add_ps(vsum, _mm256_loadu_ps(x + j));
    }
    __m128 s = _mm_add_ps(_mm256_castps256_ps128(vsum), _mm256_extractf128_ps(vsum, 1));
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    float acc = _mm_cvtss_f32(s);
    for (; j < d; ++j) {
      acc += x[j];
    }
    const float mu = acc * inv_d;
    const __m256 vmu = _mm256_set1_ps(mu);
    __m256 vvar = _mm256_setzero_ps();
    j = 0;
    for (; j + 8 <= d; j += 8) {
      const __m256 c = _mm256_sub_ps(_mm256_loadu_ps(x + j), vmu);
      vvar = _mm256_add_ps(vvar, _mm256_mul_ps(c, c));
    }
    __m128 v = _mm_add_ps(_mm256_castps256_ps128(vvar), _mm256_extractf128_ps(vvar, 1));
    v = _mm_add_ps(v, _mm_movehl_ps(v, v));
    v = _mm_add_ss(v, _mm_shuffle_ps(v, v, 1));
    float var_acc = _mm_cvtss_f32(v);
    for (; j < d; ++j) {
      const float centered = x[j] - mu;
      var_acc += centered * centered;
    }
#else
    float acc = 0.0F;
    for (std::int64_t j = 0; j < d; ++j) {
      acc += x[j];
    }
    const float mu = acc * inv_d;
    float var_acc = 0.0F;
    for (std::int64_t j = 0; j < d; ++j) {
      const float centered = x[j] - mu;
      var_acc += centered * centered;
    }
#endif
    const float var = var_acc * inv_d;
    const float inv_denom = 1.0F / std::sqrt(var + kLayerNormEps);
    std::int64_t jj = 0;
#if defined(__AVX2__)
    const __m256 vmu2 = _mm256_set1_ps(mu);
    const __m256 vinv = _mm256_set1_ps(inv_denom);
    for (; jj + 8 <= d; jj += 8) {
      const __m256 normalized =
          _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + jj), vmu2), vinv);
      _mm256_storeu_ps(y + jj, _mm256_add_ps(_mm256_mul_ps(normalized,
                                                           _mm256_loadu_ps(gamma + jj)),
                                             _mm256_loadu_ps(beta + jj)));
    }
#endif
    for (; jj < d; ++jj) {
      y[jj] = (x[jj] - mu) * inv_denom * gamma[jj] + beta[jj];
    }
  }
}

// out(rows, n) = float(acc) * deq[j] + bias[j] — the int8 tier's per-channel
// requantization back to fp32 at a layer boundary, AVX2-wide.
inline void dequant_rows_fast(const std::int32_t* acc, const float* deq, const float* bias,
                              float* out, std::int64_t rows, std::int64_t n) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int32_t* arow = acc + r * n;
    float* row = out + r * n;
    std::int64_t j = 0;
#if defined(__AVX2__)
    for (; j + 8 <= n; j += 8) {
      const __m256 v = _mm256_cvtepi32_ps(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arow + j)));
      _mm256_storeu_ps(row + j, _mm256_add_ps(_mm256_mul_ps(v, _mm256_loadu_ps(deq + j)),
                                              _mm256_loadu_ps(bias + j)));
    }
#endif
    for (; j < n; ++j) {
      row[j] = static_cast<float>(arow[j]) * deq[j] + bias[j];
    }
  }
}

// Patchify: patches[(b, gy*gw+gx), py*p+px] = coded[b, gy*p+py, gx*p+px].
void patchify_rows(const float* coded, float* patches, std::int64_t batch,
                   const models::ViTConfig& config) {
  const std::int64_t n = config.tokens();
  const int patch = config.patch;
  const std::int64_t pp = static_cast<std::int64_t>(patch) * patch;
  const std::int64_t gw = config.image_w / patch;
  const std::int64_t w = config.image_w;
  const std::int64_t h = config.image_h;
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* image = coded + b * h * w;
    for (std::int64_t t = 0; t < n; ++t) {
      const std::int64_t gy = t / gw;
      const std::int64_t gx = t % gw;
      float* dst = patches + (b * n + t) * pp;
      for (int py = 0; py < patch; ++py) {
        const float* src = image + (gy * patch + py) * w + gx * patch;
        std::memcpy(dst + static_cast<std::int64_t>(py) * patch, src,
                    static_cast<std::size_t>(patch) * sizeof(float));
      }
    }
  }
}

// Scatter decoded tiles into the video — the exact index map of
// nn::unpatchify_video: video[b, f, gy*p+py, gx*p+px] =
// rec[(b*N + gy*gw+gx), (f*p + py)*p + px]. Pure data movement.
void scatter_video(const float* rec, float* video, std::int64_t batch, int frames,
                   const models::ViTConfig& config) {
  const std::int64_t n = config.tokens();
  const int patch = config.patch;
  const std::int64_t gw = config.image_w / patch;
  const std::int64_t h = config.image_h;
  const std::int64_t w = config.image_w;
  const std::int64_t out = static_cast<std::int64_t>(frames) * patch * patch;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t t = 0; t < n; ++t) {
      const std::int64_t gy = t / gw;
      const std::int64_t gx = t % gw;
      const float* src = rec + (b * n + t) * out;
      for (std::int64_t f = 0; f < frames; ++f) {
        for (int py = 0; py < patch; ++py) {
          float* dst = video + ((b * frames + f) * h + gy * patch + py) * w + gx * patch;
          std::memcpy(dst, src + (f * patch + py) * patch,
                      static_cast<std::size_t>(patch) * sizeof(float));
        }
      }
    }
  }
}

std::vector<float> take(const std::map<std::string, Tensor>& params, const std::string& name,
                        std::int64_t expected_numel) {
  const auto it = params.find(name);
  SNAPPIX_CHECK(it != params.end(), "engine: classifier has no parameter `" << name << "`");
  SNAPPIX_CHECK(it->second.numel() == expected_numel,
                "engine: parameter `" << name << "` has " << it->second.numel()
                                      << " values, expected " << expected_numel);
  return it->second.data();
}

std::map<std::string, Tensor> param_map(const nn::Module& module) {
  std::map<std::string, Tensor> params;
  for (const auto& [name, tensor] : module.named_parameters()) {
    params.emplace(name, tensor);
  }
  return params;
}

inline void fold_absmax(float& slot, const float* x, std::int64_t n) {
  slot = std::max(slot, detail::absmax(x, n));
}

}  // namespace

BatchedVitEngine::BatchedVitEngine(const models::SnapPixClassifier& model,
                                   const models::SnapPixReconstructor& reconstructor,
                                   int max_batch)
    : BatchedVitEngine(model, max_batch) {
  SNAPPIX_CHECK(reconstructor.encoder().get() == model.encoder().get(),
                "engine: the reconstructor must share the classifier's encoder — one trunk "
                "snapshot cannot be bit-exact for two different encoders");
  frames_ = reconstructor.frames();
  const std::int64_t d = config_.dim;
  const std::int64_t out =
      static_cast<std::int64_t>(frames_) * config_.patch * config_.patch;
  const auto params = param_map(reconstructor);
  rec_w = take(params, "head.weight", d * out);
  rec_b = take(params, "head.bias", out);
  // ws_.rec — the engine's largest buffer — is allocated on the first
  // reconstruct() call, so classification-only traffic never pays for it.
}

BatchedVitEngine::BatchedVitEngine(const models::SnapPixClassifier& model, int max_batch)
    : config_(model.encoder()->config()), max_batch_(max_batch) {
  SNAPPIX_CHECK(max_batch > 0, "engine max_batch must be positive");
  const std::int64_t d = config_.dim;
  const std::int64_t n = config_.tokens();
  const std::int64_t pp = static_cast<std::int64_t>(config_.patch) * config_.patch;
  hidden_ = static_cast<std::int64_t>(static_cast<float>(d) * config_.mlp_ratio);

  const auto params = param_map(model);

  embed_w = take(params, "encoder.patch_embed.proj.weight", pp * d);
  embed_b = take(params, "encoder.patch_embed.proj.bias", d);
  pos_embed = take(params, "encoder.pos_embed", n * d);
  blocks_.resize(static_cast<std::size_t>(config_.depth));
  for (int i = 0; i < config_.depth; ++i) {
    const std::string p = "encoder.blocks." + std::to_string(i) + ".";
    auto& b = blocks_[static_cast<std::size_t>(i)];
    b.norm1_gamma = take(params, p + "norm1.gamma", d);
    b.norm1_beta = take(params, p + "norm1.beta", d);
    b.qkv_w = take(params, p + "attn.qkv.weight", d * 3 * d);
    b.qkv_b = take(params, p + "attn.qkv.bias", 3 * d);
    b.proj_w = take(params, p + "attn.proj.weight", d * d);
    b.proj_b = take(params, p + "attn.proj.bias", d);
    b.norm2_gamma = take(params, p + "norm2.gamma", d);
    b.norm2_beta = take(params, p + "norm2.beta", d);
    b.fc1_w = take(params, p + "mlp.fc1.weight", d * hidden_);
    b.fc1_b = take(params, p + "mlp.fc1.bias", hidden_);
    b.fc2_w = take(params, p + "mlp.fc2.weight", hidden_ * d);
    b.fc2_b = take(params, p + "mlp.fc2.bias", d);
  }
  norm_gamma = take(params, "encoder.norm.gamma", d);
  norm_beta = take(params, "encoder.norm.beta", d);
  head_w = take(params, "head.weight", d * config_.num_classes);
  head_b = take(params, "head.bias", config_.num_classes);

  const std::int64_t rows = static_cast<std::int64_t>(max_batch) * n;
  ws_.patches.resize(static_cast<std::size_t>(rows * pp));
  ws_.x.resize(static_cast<std::size_t>(rows * d));
  ws_.norm.resize(static_cast<std::size_t>(rows * d));
  ws_.qkv.resize(static_cast<std::size_t>(rows * 3 * d));
  ws_.ctx.resize(static_cast<std::size_t>(rows * d));
  ws_.proj.resize(static_cast<std::size_t>(rows * d));
  ws_.hidden.resize(static_cast<std::size_t>(rows * hidden_));
  ws_.scores.resize(static_cast<std::size_t>(n * n));
  ws_.pooled.resize(static_cast<std::size_t>(static_cast<std::int64_t>(max_batch) * d));
}

void BatchedVitEngine::encode_chunk(const float* coded, std::int64_t batch,
                                    ActivationRanges* ranges) const {
  const std::int64_t d = config_.dim;
  const std::int64_t n = config_.tokens();
  const std::int64_t pp = static_cast<std::int64_t>(config_.patch) * config_.patch;
  const std::int64_t rows = batch * n;
  const std::int64_t heads = config_.heads;

  obs::ScopedSpan encode_span("encode");

  patchify_rows(coded, ws_.patches.data(), batch, config_);
  if (ranges != nullptr) {
    fold_absmax(ranges->embed_in, ws_.patches.data(), rows * pp);
  }

  {
    // Embedding: (patches @ We + be) + pos — bias first, then the positional
    // add, matching Linear::forward followed by ViTEncoder::embed's add().
    obs::ScopedSpan span("embed");
    std::memset(ws_.x.data(), 0, static_cast<std::size_t>(rows * d) * sizeof(float));
    detail::gemm_nn(ws_.patches.data(), embed_w.data(), ws_.x.data(), rows, pp, d);
    for (std::int64_t b = 0; b < batch; ++b) {
      for (std::int64_t t = 0; t < n; ++t) {
        float* row = ws_.x.data() + (b * n + t) * d;
        const float* pos = pos_embed.data() + t * d;
        for (std::int64_t j = 0; j < d; ++j) {
          row[j] = (row[j] + embed_b[j]) + pos[j];
        }
      }
    }
  }

  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    const BlockWeights& blk = blocks_[bi];
    ActivationRanges::BlockRanges* blk_ranges =
        ranges != nullptr ? &ranges->blocks[bi] : nullptr;
    // --- attention sublayer ---------------------------------------------
    {
      obs::ScopedSpan span("qkv");
      layer_norm_rows(ws_.x.data(), ws_.norm.data(), rows, d, blk.norm1_gamma.data(),
                      blk.norm1_beta.data());
      if (blk_ranges != nullptr) {
        fold_absmax(blk_ranges->qkv_in, ws_.norm.data(), rows * d);
      }
      linear_rows(ws_.norm.data(), blk.qkv_w.data(), blk.qkv_b.data(), ws_.qkv.data(), rows, d,
                  3 * d);
    }
    {
      obs::ScopedSpan span("attention");
      attention_rows(ws_.qkv.data(), ws_.ctx.data(), ws_.scores.data(), batch, n, d, heads);
    }
    if (blk_ranges != nullptr) {
      fold_absmax(blk_ranges->proj_in, ws_.ctx.data(), rows * d);
    }
    {
      obs::ScopedSpan span("proj");
      linear_rows(ws_.ctx.data(), blk.proj_w.data(), blk.proj_b.data(), ws_.proj.data(), rows,
                  d, d);
      for (std::int64_t i = 0; i < rows * d; ++i) {
        ws_.x[static_cast<std::size_t>(i)] =
            ws_.x[static_cast<std::size_t>(i)] + ws_.proj[static_cast<std::size_t>(i)];
      }
    }

    // --- MLP sublayer ----------------------------------------------------
    obs::ScopedSpan mlp_span("mlp");
    layer_norm_rows(ws_.x.data(), ws_.norm.data(), rows, d, blk.norm2_gamma.data(),
                    blk.norm2_beta.data());
    if (blk_ranges != nullptr) {
      fold_absmax(blk_ranges->fc1_in, ws_.norm.data(), rows * d);
    }
    linear_rows(ws_.norm.data(), blk.fc1_w.data(), blk.fc1_b.data(), ws_.hidden.data(), rows, d,
                hidden_);
    if (blk_ranges != nullptr) {
      fold_absmax(blk_ranges->gelu_in, ws_.hidden.data(), rows * hidden_);
    }
    for (std::int64_t i = 0; i < rows * hidden_; ++i) {
      ws_.hidden[static_cast<std::size_t>(i)] = gelu_scalar(ws_.hidden[static_cast<std::size_t>(i)]);
    }
    if (blk_ranges != nullptr) {
      fold_absmax(blk_ranges->fc2_in, ws_.hidden.data(), rows * hidden_);
    }
    linear_rows(ws_.hidden.data(), blk.fc2_w.data(), blk.fc2_b.data(), ws_.proj.data(), rows,
                hidden_, d);
    for (std::int64_t i = 0; i < rows * d; ++i) {
      ws_.x[static_cast<std::size_t>(i)] =
          ws_.x[static_cast<std::size_t>(i)] + ws_.proj[static_cast<std::size_t>(i)];
    }
  }

  layer_norm_rows(ws_.x.data(), ws_.norm.data(), rows, d, norm_gamma.data(), norm_beta.data());
  if (ranges != nullptr) {
    fold_absmax(ranges->rec_in, ws_.norm.data(), rows * d);
  }
}

void BatchedVitEngine::classify_chunk(std::int64_t batch, float* logits) const {
  obs::ScopedSpan span("classify_head");
  const std::int64_t d = config_.dim;
  const std::int64_t n = config_.tokens();

  // Token pooling: mean over N = sum in token order times 1/N.
  const float inv_n = 1.0F / static_cast<float>(n);
  std::memset(ws_.pooled.data(), 0, static_cast<std::size_t>(batch * d) * sizeof(float));
  for (std::int64_t b = 0; b < batch; ++b) {
    float* pooled = ws_.pooled.data() + b * d;
    for (std::int64_t t = 0; t < n; ++t) {
      const float* row = ws_.norm.data() + (b * n + t) * d;
      for (std::int64_t j = 0; j < d; ++j) {
        pooled[j] += row[j];
      }
    }
    for (std::int64_t j = 0; j < d; ++j) {
      pooled[j] *= inv_n;
    }
  }

  linear_rows(ws_.pooled.data(), head_w.data(), head_b.data(), logits, batch, d,
              config_.num_classes);
}

void BatchedVitEngine::reconstruct_chunk(std::int64_t batch, float* video) const {
  obs::ScopedSpan span("rec_decode");
  const std::int64_t d = config_.dim;
  const std::int64_t n = config_.tokens();
  const std::int64_t out =
      static_cast<std::int64_t>(frames_) * config_.patch * config_.patch;

  // Per-patch decoder: the same Linear-over-token-rows the tape head runs.
  linear_rows(ws_.norm.data(), rec_w.data(), rec_b.data(), ws_.rec.data(), batch * n, d, out);
  scatter_video(ws_.rec.data(), video, batch, frames_, config_);
}

void BatchedVitEngine::check_coded_shape(const Tensor& coded) const {
  SNAPPIX_CHECK(coded.ndim() == 3 && coded.shape()[1] == config_.image_h &&
                    coded.shape()[2] == config_.image_w,
                "engine expects (B, " << config_.image_h << ", " << config_.image_w
                                      << "), got " << coded.shape().to_string());
}

Tensor BatchedVitEngine::classify_logits(const Tensor& coded) const {
  check_coded_shape(coded);
  const std::int64_t batch = coded.shape()[0];
  std::vector<float> logits(static_cast<std::size_t>(batch * config_.num_classes));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::int64_t begin = 0; begin < batch; begin += max_batch_) {
      const std::int64_t chunk = std::min<std::int64_t>(max_batch_, batch - begin);
      encode_chunk(coded.data().data() + begin * config_.image_h * config_.image_w, chunk);
      classify_chunk(chunk, logits.data() + begin * config_.num_classes);
    }
  }
  return Tensor::from_vector(std::move(logits), Shape{batch, config_.num_classes});
}

void BatchedVitEngine::collect_activation_ranges(const Tensor& coded,
                                                 ActivationRanges& ranges) const {
  check_coded_shape(coded);
  const std::int64_t batch = coded.shape()[0];
  ranges.blocks.resize(blocks_.size());
  std::vector<float> logits(
      static_cast<std::size_t>(std::min<std::int64_t>(batch, max_batch_) *
                               config_.num_classes));
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::int64_t begin = 0; begin < batch; begin += max_batch_) {
    const std::int64_t chunk = std::min<std::int64_t>(max_batch_, batch - begin);
    encode_chunk(coded.data().data() + begin * config_.image_h * config_.image_w, chunk,
                 &ranges);
    // The AR head reads the pooled tokens; run the pooling (classify_chunk)
    // and fold its input range. The logits themselves are discarded.
    classify_chunk(chunk, logits.data());
    fold_absmax(ranges.head_in, ws_.pooled.data(),
                static_cast<std::int64_t>(chunk) * config_.dim);
  }
}

Tensor BatchedVitEngine::reconstruct(const Tensor& coded) const {
  SNAPPIX_CHECK(has_rec_head(),
                "engine was built without a reconstruction head — use the "
                "(classifier, reconstructor) constructor for REC serving");
  check_coded_shape(coded);
  const std::int64_t batch = coded.shape()[0];
  const std::int64_t h = config_.image_h;
  const std::int64_t w = config_.image_w;
  const std::int64_t frame_elems = static_cast<std::int64_t>(frames_) * h * w;
  std::vector<float> video(static_cast<std::size_t>(batch * frame_elems));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t rec_size = static_cast<std::size_t>(
        static_cast<std::int64_t>(max_batch_) * config_.tokens() * frames_ *
        config_.patch * config_.patch);
    if (ws_.rec.size() < rec_size) {
      ws_.rec.resize(rec_size);
    }
    for (std::int64_t begin = 0; begin < batch; begin += max_batch_) {
      const std::int64_t chunk = std::min<std::int64_t>(max_batch_, batch - begin);
      encode_chunk(coded.data().data() + begin * h * w, chunk);
      reconstruct_chunk(chunk, video.data() + begin * frame_elems);
    }
  }
  return Tensor::from_vector(std::move(video), Shape{batch, frames_, h, w});
}

// --- QuantizedVitEngine ------------------------------------------------------

QuantizedVitEngine::QuantLinear QuantizedVitEngine::make_quant_linear(
    const std::vector<float>& w, const std::vector<float>& bias, float act_scale,
    std::int64_t k, std::int64_t n) {
  QuantLinear lin;
  lin.k = k;
  lin.n = n;
  lin.act_scale = act_scale;
  lin.bias = bias;
  lin.wq.resize(static_cast<std::size_t>(n * k));
  std::vector<float> scales(static_cast<std::size_t>(n));
  detail::quantize_weights_per_channel(w.data(), k, n, lin.wq.data(), scales.data());
  lin.deq.resize(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    lin.deq[static_cast<std::size_t>(j)] = act_scale * scales[static_cast<std::size_t>(j)];
  }
  return lin;
}

QuantizedVitEngine::QuantizedVitEngine(const models::SnapPixClassifier& model,
                                       const models::SnapPixReconstructor& reconstructor,
                                       const QuantSpec& spec, int max_batch)
    : QuantizedVitEngine(model, spec, max_batch) {
  SNAPPIX_CHECK(reconstructor.encoder().get() == model.encoder().get(),
                "engine: the reconstructor must share the classifier's encoder");
  frames_ = reconstructor.frames();
  const std::int64_t d = config_.dim;
  const std::int64_t out =
      static_cast<std::int64_t>(frames_) * config_.patch * config_.patch;
  const auto params = param_map(reconstructor);
  rec_ = make_quant_linear(take(params, "head.weight", d * out),
                           take(params, "head.bias", out), spec_.rec_in, d, out);
  // ws_.rec / the matching int32 accumulator are allocated on the first
  // reconstruct() call, like the fp32 engine.
}

QuantizedVitEngine::QuantizedVitEngine(const models::SnapPixClassifier& model,
                                       const QuantSpec& spec, int max_batch)
    : config_(model.encoder()->config()), max_batch_(max_batch), spec_(spec) {
  SNAPPIX_CHECK(max_batch > 0, "engine max_batch must be positive");
  SNAPPIX_CHECK(static_cast<int>(spec.blocks.size()) == config_.depth,
                "QuantSpec has " << spec.blocks.size() << " block scales for a depth-"
                                 << config_.depth << " model — calibrate against this model");
  const std::int64_t d = config_.dim;
  const std::int64_t n = config_.tokens();
  const std::int64_t pp = static_cast<std::int64_t>(config_.patch) * config_.patch;
  hidden_ = static_cast<std::int64_t>(static_cast<float>(d) * config_.mlp_ratio);

  const auto params = param_map(model);

  embed_ = make_quant_linear(take(params, "encoder.patch_embed.proj.weight", pp * d),
                             take(params, "encoder.patch_embed.proj.bias", d), spec_.embed_in,
                             pp, d);
  pos_embed = take(params, "encoder.pos_embed", n * d);
  blocks_.resize(static_cast<std::size_t>(config_.depth));
  for (int i = 0; i < config_.depth; ++i) {
    const std::string p = "encoder.blocks." + std::to_string(i) + ".";
    const QuantBlockScales& bs = spec_.blocks[static_cast<std::size_t>(i)];
    auto& b = blocks_[static_cast<std::size_t>(i)];
    b.norm1_gamma = take(params, p + "norm1.gamma", d);
    b.norm1_beta = take(params, p + "norm1.beta", d);
    b.qkv = make_quant_linear(take(params, p + "attn.qkv.weight", d * 3 * d),
                              take(params, p + "attn.qkv.bias", 3 * d), bs.qkv_in, d, 3 * d);
    b.proj = make_quant_linear(take(params, p + "attn.proj.weight", d * d),
                               take(params, p + "attn.proj.bias", d), bs.proj_in, d, d);
    b.norm2_gamma = take(params, p + "norm2.gamma", d);
    b.norm2_beta = take(params, p + "norm2.beta", d);
    b.fc1 = make_quant_linear(take(params, p + "mlp.fc1.weight", d * hidden_),
                              take(params, p + "mlp.fc1.bias", hidden_), bs.fc1_in, d, hidden_);
    b.fc2 = make_quant_linear(take(params, p + "mlp.fc2.weight", hidden_ * d),
                              take(params, p + "mlp.fc2.bias", d), bs.fc2_in, hidden_, d);
    // Bake the GELU into a 256-entry table: entry q (an int8 on the gelu_in
    // grid) maps to gelu(q * gelu_in) requantized onto the fc2_in grid — the
    // tanh runs 256 times here and never again.
    b.gelu_inv_scale = 1.0F / bs.gelu_in;
    b.gelu_lut.resize(256);
    const float fc2_inv = 1.0F / bs.fc2_in;
    for (int q = -128; q < 128; ++q) {
      const float x = static_cast<float>(q) * bs.gelu_in;
      const float r = std::nearbyintf(gelu_scalar(x) * fc2_inv);
      b.gelu_lut[static_cast<std::size_t>(static_cast<std::uint8_t>(q))] =
          static_cast<std::int8_t>(std::max(-127.0F, std::min(127.0F, r)));
    }
  }
  norm_gamma = take(params, "encoder.norm.gamma", d);
  norm_beta = take(params, "encoder.norm.beta", d);
  head_ = make_quant_linear(take(params, "head.weight", d * config_.num_classes),
                            take(params, "head.bias", config_.num_classes), spec_.head_in, d,
                            config_.num_classes);

  const std::int64_t rows = static_cast<std::int64_t>(max_batch) * n;
  ws_.patches.resize(static_cast<std::size_t>(rows * pp));
  ws_.x.resize(static_cast<std::size_t>(rows * d));
  ws_.norm.resize(static_cast<std::size_t>(rows * d));
  ws_.qkv.resize(static_cast<std::size_t>(rows * 3 * d));
  ws_.ctx.resize(static_cast<std::size_t>(rows * d));
  ws_.proj.resize(static_cast<std::size_t>(rows * d));
  ws_.scores.resize(static_cast<std::size_t>(n * n));
  ws_.kt.resize(static_cast<std::size_t>((d / config_.heads) * n));
  ws_.pooled.resize(static_cast<std::size_t>(static_cast<std::int64_t>(max_batch) * d));
  // One quantized-input and one int32-accumulator buffer cover every linear:
  // size them for the widest input row / output row the trunk sees. (There
  // is no fp32 hidden buffer: the MLP's hidden activations live in qin as
  // int8 — see mlp_s8.)
  const std::int64_t max_in = std::max({pp, d, hidden_});
  const std::int64_t max_out = std::max({3 * d, hidden_, d, config_.num_classes});
  ws_.qin.resize(static_cast<std::size_t>(rows * max_in));
  ws_.acc.resize(static_cast<std::size_t>(rows * max_out));
}

void QuantizedVitEngine::linear_s8(const float* in, const QuantLinear& lin, float* out,
                                   std::int64_t rows) const {
  {
    obs::ScopedSpan span("quantize");
    detail::quantize_symmetric(in, rows * lin.k, lin.act_scale, ws_.qin.data());
  }
  {
    obs::ScopedSpan span("gemm_s8");
    detail::gemm_s8_nt(ws_.qin.data(), lin.wq.data(), ws_.acc.data(), rows, lin.k, lin.n);
  }
  obs::ScopedSpan span("requant");
  dequant_rows_fast(ws_.acc.data(), lin.deq.data(), lin.bias.data(), out, rows, lin.n);
}

void QuantizedVitEngine::mlp_s8(const float* in, const BlockWeights& blk, float* out,
                                std::int64_t rows) const {
  {
    obs::ScopedSpan span("quantize");
    detail::quantize_symmetric(in, rows * blk.fc1.k, blk.fc1.act_scale, ws_.qin.data());
  }
  {
    obs::ScopedSpan span("gemm_s8");
    detail::gemm_s8_nt(ws_.qin.data(), blk.fc1.wq.data(), ws_.acc.data(), rows, blk.fc1.k,
                       blk.fc1.n);
  }
  {
    // fc1 output -> GELU -> fc2 input without leaving int8: requantize each
    // accumulator onto the gelu_in grid (tensor/gemm_s8.h's shared pack
    // pipeline), then map through the 256-entry LUT. ws_.qin is rewritten in
    // place (the fc1 input it held is spent).
    obs::ScopedSpan span("requant");
    const std::int64_t total = rows * blk.fc1.n;
    detail::requantize_rows(ws_.acc.data(), blk.fc1.deq.data(), blk.fc1.bias.data(),
                            blk.gelu_inv_scale, ws_.qin.data(), rows, blk.fc1.n);
    const std::int8_t* lut = blk.gelu_lut.data();
    std::int8_t* q = ws_.qin.data();
    for (std::int64_t i = 0; i < total; ++i) {
      q[i] = lut[static_cast<std::uint8_t>(q[i])];
    }
  }
  {
    obs::ScopedSpan span("gemm_s8");
    detail::gemm_s8_nt(ws_.qin.data(), blk.fc2.wq.data(), ws_.acc.data(), rows, blk.fc2.k,
                       blk.fc2.n);
  }
  obs::ScopedSpan span("requant");
  dequant_rows_fast(ws_.acc.data(), blk.fc2.deq.data(), blk.fc2.bias.data(), out, rows,
                    blk.fc2.n);
}

void QuantizedVitEngine::encode_chunk(const float* coded, std::int64_t batch) const {
  obs::ScopedSpan encode_span("encode");
  const std::int64_t d = config_.dim;
  const std::int64_t n = config_.tokens();
  const std::int64_t rows = batch * n;
  const std::int64_t heads = config_.heads;

  patchify_rows(coded, ws_.patches.data(), batch, config_);
  linear_s8(ws_.patches.data(), embed_, ws_.x.data(), rows);
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t t = 0; t < n; ++t) {
      add_rows_fast(ws_.x.data() + (b * n + t) * d, pos_embed.data() + t * d, d);
    }
  }

  for (const BlockWeights& blk : blocks_) {
    layer_norm_rows_fast(ws_.x.data(), ws_.norm.data(), rows, d, blk.norm1_gamma.data(),
                         blk.norm1_beta.data());
    linear_s8(ws_.norm.data(), blk.qkv, ws_.qkv.data(), rows);
    attention_rows_fast(ws_.qkv.data(), ws_.ctx.data(), ws_.scores.data(), ws_.kt.data(),
                        batch, n, d, heads);
    linear_s8(ws_.ctx.data(), blk.proj, ws_.proj.data(), rows);
    add_rows_fast(ws_.x.data(), ws_.proj.data(), rows * d);

    layer_norm_rows_fast(ws_.x.data(), ws_.norm.data(), rows, d, blk.norm2_gamma.data(),
                         blk.norm2_beta.data());
    mlp_s8(ws_.norm.data(), blk, ws_.proj.data(), rows);
    add_rows_fast(ws_.x.data(), ws_.proj.data(), rows * d);
  }

  layer_norm_rows_fast(ws_.x.data(), ws_.norm.data(), rows, d, norm_gamma.data(),
                       norm_beta.data());
}

void QuantizedVitEngine::classify_chunk(std::int64_t batch, float* logits) const {
  obs::ScopedSpan span("classify_head");
  const std::int64_t d = config_.dim;
  const std::int64_t n = config_.tokens();
  const float inv_n = 1.0F / static_cast<float>(n);
  std::memset(ws_.pooled.data(), 0, static_cast<std::size_t>(batch * d) * sizeof(float));
  for (std::int64_t b = 0; b < batch; ++b) {
    float* pooled = ws_.pooled.data() + b * d;
    for (std::int64_t t = 0; t < n; ++t) {
      add_rows_fast(pooled, ws_.norm.data() + (b * n + t) * d, d);
    }
    for (std::int64_t j = 0; j < d; ++j) {
      pooled[j] *= inv_n;
    }
  }
  linear_s8(ws_.pooled.data(), head_, logits, batch);
}

void QuantizedVitEngine::reconstruct_chunk(std::int64_t batch, float* video) const {
  obs::ScopedSpan span("rec_decode");
  linear_s8(ws_.norm.data(), rec_, ws_.rec.data(), batch * config_.tokens());
  scatter_video(ws_.rec.data(), video, batch, frames_, config_);
}

void QuantizedVitEngine::check_coded_shape(const Tensor& coded) const {
  SNAPPIX_CHECK(coded.ndim() == 3 && coded.shape()[1] == config_.image_h &&
                    coded.shape()[2] == config_.image_w,
                "engine expects (B, " << config_.image_h << ", " << config_.image_w
                                      << "), got " << coded.shape().to_string());
}

Tensor QuantizedVitEngine::classify_logits(const Tensor& coded) const {
  check_coded_shape(coded);
  const std::int64_t batch = coded.shape()[0];
  std::vector<float> logits(static_cast<std::size_t>(batch * config_.num_classes));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::int64_t begin = 0; begin < batch; begin += max_batch_) {
      const std::int64_t chunk = std::min<std::int64_t>(max_batch_, batch - begin);
      encode_chunk(coded.data().data() + begin * config_.image_h * config_.image_w, chunk);
      classify_chunk(chunk, logits.data() + begin * config_.num_classes);
    }
  }
  return Tensor::from_vector(std::move(logits), Shape{batch, config_.num_classes});
}

Tensor QuantizedVitEngine::reconstruct(const Tensor& coded) const {
  SNAPPIX_CHECK(has_rec_head(),
                "engine was built without a reconstruction head — use the "
                "(classifier, reconstructor, spec) constructor for REC serving");
  check_coded_shape(coded);
  const std::int64_t batch = coded.shape()[0];
  const std::int64_t h = config_.image_h;
  const std::int64_t w = config_.image_w;
  const std::int64_t frame_elems = static_cast<std::int64_t>(frames_) * h * w;
  std::vector<float> video(static_cast<std::size_t>(batch * frame_elems));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::int64_t rec_rows =
        static_cast<std::int64_t>(max_batch_) * config_.tokens();
    const std::size_t rec_size = static_cast<std::size_t>(rec_rows * rec_.n);
    if (ws_.rec.size() < rec_size) {
      ws_.rec.resize(rec_size);
    }
    if (ws_.acc.size() < rec_size) {
      ws_.acc.resize(rec_size);
    }
    for (std::int64_t begin = 0; begin < batch; begin += max_batch_) {
      const std::int64_t chunk = std::min<std::int64_t>(max_batch_, batch - begin);
      encode_chunk(coded.data().data() + begin * h * w, chunk);
      reconstruct_chunk(chunk, video.data() + begin * frame_elems);
    }
  }
  return Tensor::from_vector(std::move(video), Shape{batch, frames_, h, w});
}

}  // namespace snappix::runtime
