#include "runtime/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <string>

#include "tensor/gemm.h"
#include "util/common.h"

namespace snappix::runtime {

namespace {

constexpr float kLayerNormEps = 1e-5F;  // nn::LayerNorm's default

// Replicates the tape ops' elementwise formulas exactly (see engine.h).
inline float gelu_scalar(float x) {
  constexpr float kPi = 3.14159265358979323846F;
  const float c = std::sqrt(2.0F / kPi);
  const float inner = c * (x + 0.044715F * x * x * x);
  return 0.5F * x * (1.0F + std::tanh(inner));
}

// out(rows, n) = in(rows, k) @ w(k, n) + bias(n), matching Linear::forward:
// matmul into zeroed accumulators, then a separate broadcast bias add.
void linear_rows(const float* in, const float* w, const float* bias, float* out,
                 std::int64_t rows, std::int64_t k, std::int64_t n) {
  std::memset(out, 0, static_cast<std::size_t>(rows * n) * sizeof(float));
  detail::gemm_nn(in, w, out, rows, k, n);
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = out + r * n;
    for (std::int64_t j = 0; j < n; ++j) {
      row[j] = row[j] + bias[j];
    }
  }
}

void softmax_row(float* row, std::int64_t n) {
  float mx = -std::numeric_limits<float>::infinity();
  for (std::int64_t i = 0; i < n; ++i) {
    mx = std::max(mx, row[i]);
  }
  float denom = 0.0F;
  for (std::int64_t i = 0; i < n; ++i) {
    row[i] = std::exp(row[i] - mx);
    denom += row[i];
  }
  for (std::int64_t i = 0; i < n; ++i) {
    row[i] /= denom;
  }
}

std::vector<float> take(const std::map<std::string, Tensor>& params, const std::string& name,
                        std::int64_t expected_numel) {
  const auto it = params.find(name);
  SNAPPIX_CHECK(it != params.end(), "engine: classifier has no parameter `" << name << "`");
  SNAPPIX_CHECK(it->second.numel() == expected_numel,
                "engine: parameter `" << name << "` has " << it->second.numel()
                                      << " values, expected " << expected_numel);
  return it->second.data();
}

}  // namespace

BatchedVitEngine::BatchedVitEngine(const models::SnapPixClassifier& model,
                                   const models::SnapPixReconstructor& reconstructor,
                                   int max_batch)
    : BatchedVitEngine(model, max_batch) {
  SNAPPIX_CHECK(reconstructor.encoder().get() == model.encoder().get(),
                "engine: the reconstructor must share the classifier's encoder — one trunk "
                "snapshot cannot be bit-exact for two different encoders");
  frames_ = reconstructor.frames();
  const std::int64_t d = config_.dim;
  const std::int64_t out =
      static_cast<std::int64_t>(frames_) * config_.patch * config_.patch;
  std::map<std::string, Tensor> params;
  for (const auto& [name, tensor] : reconstructor.named_parameters()) {
    params.emplace(name, tensor);
  }
  rec_w = take(params, "head.weight", d * out);
  rec_b = take(params, "head.bias", out);
  // ws_.rec — the engine's largest buffer — is allocated on the first
  // reconstruct() call, so classification-only traffic never pays for it.
}

BatchedVitEngine::BatchedVitEngine(const models::SnapPixClassifier& model, int max_batch)
    : config_(model.encoder()->config()), max_batch_(max_batch) {
  SNAPPIX_CHECK(max_batch > 0, "engine max_batch must be positive");
  const std::int64_t d = config_.dim;
  const std::int64_t n = config_.tokens();
  const std::int64_t pp = static_cast<std::int64_t>(config_.patch) * config_.patch;
  hidden_ = static_cast<std::int64_t>(static_cast<float>(d) * config_.mlp_ratio);

  std::map<std::string, Tensor> params;
  for (const auto& [name, tensor] : model.named_parameters()) {
    params.emplace(name, tensor);
  }

  embed_w = take(params, "encoder.patch_embed.proj.weight", pp * d);
  embed_b = take(params, "encoder.patch_embed.proj.bias", d);
  pos_embed = take(params, "encoder.pos_embed", n * d);
  blocks_.resize(static_cast<std::size_t>(config_.depth));
  for (int i = 0; i < config_.depth; ++i) {
    const std::string p = "encoder.blocks." + std::to_string(i) + ".";
    auto& b = blocks_[static_cast<std::size_t>(i)];
    b.norm1_gamma = take(params, p + "norm1.gamma", d);
    b.norm1_beta = take(params, p + "norm1.beta", d);
    b.qkv_w = take(params, p + "attn.qkv.weight", d * 3 * d);
    b.qkv_b = take(params, p + "attn.qkv.bias", 3 * d);
    b.proj_w = take(params, p + "attn.proj.weight", d * d);
    b.proj_b = take(params, p + "attn.proj.bias", d);
    b.norm2_gamma = take(params, p + "norm2.gamma", d);
    b.norm2_beta = take(params, p + "norm2.beta", d);
    b.fc1_w = take(params, p + "mlp.fc1.weight", d * hidden_);
    b.fc1_b = take(params, p + "mlp.fc1.bias", hidden_);
    b.fc2_w = take(params, p + "mlp.fc2.weight", hidden_ * d);
    b.fc2_b = take(params, p + "mlp.fc2.bias", d);
  }
  norm_gamma = take(params, "encoder.norm.gamma", d);
  norm_beta = take(params, "encoder.norm.beta", d);
  head_w = take(params, "head.weight", d * config_.num_classes);
  head_b = take(params, "head.bias", config_.num_classes);

  const std::int64_t rows = static_cast<std::int64_t>(max_batch) * n;
  ws_.patches.resize(static_cast<std::size_t>(rows * pp));
  ws_.x.resize(static_cast<std::size_t>(rows * d));
  ws_.norm.resize(static_cast<std::size_t>(rows * d));
  ws_.qkv.resize(static_cast<std::size_t>(rows * 3 * d));
  ws_.ctx.resize(static_cast<std::size_t>(rows * d));
  ws_.proj.resize(static_cast<std::size_t>(rows * d));
  ws_.hidden.resize(static_cast<std::size_t>(rows * hidden_));
  ws_.scores.resize(static_cast<std::size_t>(n * n));
  ws_.pooled.resize(static_cast<std::size_t>(static_cast<std::int64_t>(max_batch) * d));
}

void BatchedVitEngine::layer_norm_rows(const float* in, float* out, std::int64_t rows,
                                       const float* gamma, const float* beta) const {
  const std::int64_t d = config_.dim;
  const float inv_d = 1.0F / static_cast<float>(d);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* x = in + r * d;
    float* y = out + r * d;
    // mean() is sum * (1/d) in the tape op — keep the reciprocal multiply.
    float acc = 0.0F;
    for (std::int64_t j = 0; j < d; ++j) {
      acc += x[j];
    }
    const float mu = acc * inv_d;
    float var_acc = 0.0F;
    for (std::int64_t j = 0; j < d; ++j) {
      const float centered = x[j] - mu;
      var_acc += centered * centered;
    }
    const float var = var_acc * inv_d;
    const float denom = std::sqrt(var + kLayerNormEps);
    for (std::int64_t j = 0; j < d; ++j) {
      const float normalized = (x[j] - mu) / denom;
      y[j] = normalized * gamma[j] + beta[j];
    }
  }
}

void BatchedVitEngine::encode_chunk(const float* coded, std::int64_t batch) const {
  const std::int64_t d = config_.dim;
  const std::int64_t n = config_.tokens();
  const int patch = config_.patch;
  const std::int64_t pp = static_cast<std::int64_t>(patch) * patch;
  const std::int64_t gw = config_.image_w / patch;
  const std::int64_t w = config_.image_w;
  const std::int64_t h = config_.image_h;
  const std::int64_t rows = batch * n;
  const std::int64_t heads = config_.heads;
  const std::int64_t hd = d / heads;
  const float scale = 1.0F / std::sqrt(static_cast<float>(hd));

  // Patchify: patches[(b, gy*gw+gx), py*p+px] = coded[b, gy*p+py, gx*p+px].
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* image = coded + b * h * w;
    for (std::int64_t t = 0; t < n; ++t) {
      const std::int64_t gy = t / gw;
      const std::int64_t gx = t % gw;
      float* dst = ws_.patches.data() + (b * n + t) * pp;
      for (int py = 0; py < patch; ++py) {
        const float* src = image + (gy * patch + py) * w + gx * patch;
        std::memcpy(dst + static_cast<std::int64_t>(py) * patch, src,
                    static_cast<std::size_t>(patch) * sizeof(float));
      }
    }
  }

  // Embedding: (patches @ We + be) + pos — bias first, then the positional
  // add, matching Linear::forward followed by ViTEncoder::embed's add().
  std::memset(ws_.x.data(), 0, static_cast<std::size_t>(rows * d) * sizeof(float));
  detail::gemm_nn(ws_.patches.data(), embed_w.data(), ws_.x.data(), rows, pp, d);
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t t = 0; t < n; ++t) {
      float* row = ws_.x.data() + (b * n + t) * d;
      const float* pos = pos_embed.data() + t * d;
      for (std::int64_t j = 0; j < d; ++j) {
        row[j] = (row[j] + embed_b[j]) + pos[j];
      }
    }
  }

  for (const BlockWeights& blk : blocks_) {
    // --- attention sublayer ---------------------------------------------
    layer_norm_rows(ws_.x.data(), ws_.norm.data(), rows, blk.norm1_gamma.data(),
                    blk.norm1_beta.data());
    linear_rows(ws_.norm.data(), blk.qkv_w.data(), blk.qkv_b.data(), ws_.qkv.data(), rows, d,
                3 * d);
    for (std::int64_t b = 0; b < batch; ++b) {
      const float* qkv_base = ws_.qkv.data() + b * n * 3 * d;
      for (std::int64_t head = 0; head < heads; ++head) {
        // The head's q/k/v live strided inside the qkv rows:
        // q[t][e] = qkv[b, t, head*hd + e], k at +D, v at +2D. The dots below
        // accumulate in the same ascending order as the tape's q @ k^T and
        // attn @ v matmuls, so no gather copies are needed.
        const std::int64_t q_off = head * hd;
        for (std::int64_t i = 0; i < n; ++i) {
          const float* q_row = qkv_base + i * 3 * d + q_off;
          float* score_row = ws_.scores.data() + i * n;
          for (std::int64_t j = 0; j < n; ++j) {
            const float* k_row = qkv_base + j * 3 * d + d + q_off;
            float acc = 0.0F;
            for (std::int64_t l = 0; l < hd; ++l) {
              acc += q_row[l] * k_row[l];
            }
            score_row[j] = acc;
          }
        }
        // Scale applied after the matmul as a separate pass (mul_scalar
        // comes after matmul on the tape), then row softmax.
        for (std::int64_t i = 0; i < n * n; ++i) {
          ws_.scores[static_cast<std::size_t>(i)] *= scale;
        }
        for (std::int64_t t = 0; t < n; ++t) {
          softmax_row(ws_.scores.data() + t * n, n);
        }
        for (std::int64_t t = 0; t < n; ++t) {
          const float* attn_row = ws_.scores.data() + t * n;
          float* ctx_row = ws_.ctx.data() + (b * n + t) * d + q_off;
          for (std::int64_t e = 0; e < hd; ++e) {
            ctx_row[e] = 0.0F;
          }
          for (std::int64_t j = 0; j < n; ++j) {
            const float av = attn_row[j];
            const float* v_row = qkv_base + j * 3 * d + 2 * d + q_off;
            for (std::int64_t e = 0; e < hd; ++e) {
              ctx_row[e] += av * v_row[e];
            }
          }
        }
      }
    }
    linear_rows(ws_.ctx.data(), blk.proj_w.data(), blk.proj_b.data(), ws_.proj.data(), rows, d,
                d);
    for (std::int64_t i = 0; i < rows * d; ++i) {
      ws_.x[static_cast<std::size_t>(i)] =
          ws_.x[static_cast<std::size_t>(i)] + ws_.proj[static_cast<std::size_t>(i)];
    }

    // --- MLP sublayer ----------------------------------------------------
    layer_norm_rows(ws_.x.data(), ws_.norm.data(), rows, blk.norm2_gamma.data(),
                    blk.norm2_beta.data());
    linear_rows(ws_.norm.data(), blk.fc1_w.data(), blk.fc1_b.data(), ws_.hidden.data(), rows, d,
                hidden_);
    for (std::int64_t i = 0; i < rows * hidden_; ++i) {
      ws_.hidden[static_cast<std::size_t>(i)] = gelu_scalar(ws_.hidden[static_cast<std::size_t>(i)]);
    }
    linear_rows(ws_.hidden.data(), blk.fc2_w.data(), blk.fc2_b.data(), ws_.proj.data(), rows,
                hidden_, d);
    for (std::int64_t i = 0; i < rows * d; ++i) {
      ws_.x[static_cast<std::size_t>(i)] =
          ws_.x[static_cast<std::size_t>(i)] + ws_.proj[static_cast<std::size_t>(i)];
    }
  }

  layer_norm_rows(ws_.x.data(), ws_.norm.data(), rows, norm_gamma.data(), norm_beta.data());
}

void BatchedVitEngine::classify_chunk(std::int64_t batch, float* logits) const {
  const std::int64_t d = config_.dim;
  const std::int64_t n = config_.tokens();

  // Token pooling: mean over N = sum in token order times 1/N.
  const float inv_n = 1.0F / static_cast<float>(n);
  std::memset(ws_.pooled.data(), 0, static_cast<std::size_t>(batch * d) * sizeof(float));
  for (std::int64_t b = 0; b < batch; ++b) {
    float* pooled = ws_.pooled.data() + b * d;
    for (std::int64_t t = 0; t < n; ++t) {
      const float* row = ws_.norm.data() + (b * n + t) * d;
      for (std::int64_t j = 0; j < d; ++j) {
        pooled[j] += row[j];
      }
    }
    for (std::int64_t j = 0; j < d; ++j) {
      pooled[j] *= inv_n;
    }
  }

  linear_rows(ws_.pooled.data(), head_w.data(), head_b.data(), logits, batch, d,
              config_.num_classes);
}

void BatchedVitEngine::reconstruct_chunk(std::int64_t batch, float* video) const {
  const std::int64_t d = config_.dim;
  const std::int64_t n = config_.tokens();
  const int patch = config_.patch;
  const std::int64_t gw = config_.image_w / patch;
  const std::int64_t h = config_.image_h;
  const std::int64_t w = config_.image_w;
  const std::int64_t out = static_cast<std::int64_t>(frames_) * patch * patch;

  // Per-patch decoder: the same Linear-over-token-rows the tape head runs.
  linear_rows(ws_.norm.data(), rec_w.data(), rec_b.data(), ws_.rec.data(), batch * n, d, out);

  // Scatter tiles into the video — the exact index map of
  // nn::unpatchify_video: video[b, f, gy*p+py, gx*p+px] =
  // rec[(b*N + gy*gw+gx), (f*p + py)*p + px]. Pure data movement, so this
  // path is trivially bit-identical to the tape's reshape/permute chain.
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t t = 0; t < n; ++t) {
      const std::int64_t gy = t / gw;
      const std::int64_t gx = t % gw;
      const float* src = ws_.rec.data() + (b * n + t) * out;
      for (std::int64_t f = 0; f < frames_; ++f) {
        for (int py = 0; py < patch; ++py) {
          float* dst = video + ((b * frames_ + f) * h + gy * patch + py) * w + gx * patch;
          std::memcpy(dst, src + (f * patch + py) * patch,
                      static_cast<std::size_t>(patch) * sizeof(float));
        }
      }
    }
  }
}

void BatchedVitEngine::check_coded_shape(const Tensor& coded) const {
  SNAPPIX_CHECK(coded.ndim() == 3 && coded.shape()[1] == config_.image_h &&
                    coded.shape()[2] == config_.image_w,
                "engine expects (B, " << config_.image_h << ", " << config_.image_w
                                      << "), got " << coded.shape().to_string());
}

Tensor BatchedVitEngine::classify_logits(const Tensor& coded) const {
  check_coded_shape(coded);
  const std::int64_t batch = coded.shape()[0];
  std::vector<float> logits(static_cast<std::size_t>(batch * config_.num_classes));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::int64_t begin = 0; begin < batch; begin += max_batch_) {
      const std::int64_t chunk = std::min<std::int64_t>(max_batch_, batch - begin);
      encode_chunk(coded.data().data() + begin * config_.image_h * config_.image_w, chunk);
      classify_chunk(chunk, logits.data() + begin * config_.num_classes);
    }
  }
  return Tensor::from_vector(std::move(logits), Shape{batch, config_.num_classes});
}

std::vector<std::int64_t> BatchedVitEngine::classify(const Tensor& coded) const {
  return argmax_last_axis(classify_logits(coded));
}

Tensor BatchedVitEngine::reconstruct(const Tensor& coded) const {
  SNAPPIX_CHECK(has_rec_head(),
                "engine was built without a reconstruction head — use the "
                "(classifier, reconstructor) constructor for REC serving");
  check_coded_shape(coded);
  const std::int64_t batch = coded.shape()[0];
  const std::int64_t h = config_.image_h;
  const std::int64_t w = config_.image_w;
  const std::int64_t frame_elems = static_cast<std::int64_t>(frames_) * h * w;
  std::vector<float> video(static_cast<std::size_t>(batch * frame_elems));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t rec_size = static_cast<std::size_t>(
        static_cast<std::int64_t>(max_batch_) * config_.tokens() * frames_ *
        config_.patch * config_.patch);
    if (ws_.rec.size() < rec_size) {
      ws_.rec.resize(rec_size);
    }
    for (std::int64_t begin = 0; begin < batch; begin += max_batch_) {
      const std::int64_t chunk = std::min<std::int64_t>(max_batch_, batch - begin);
      encode_chunk(coded.data().data() + begin * h * w, chunk);
      reconstruct_chunk(chunk, video.data() + begin * frame_elems);
    }
  }
  return Tensor::from_vector(std::move(video), Shape{batch, frames_, h, w});
}

}  // namespace snappix::runtime
