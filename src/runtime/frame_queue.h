// FrameQueue: bounded MPMC queue connecting camera producers to shard
// consumers, with blocking backpressure and tail-batch work stealing.
//
// Multiple camera threads push concurrently; the owning shard's batch
// aggregator pops from the head, and idle sibling shards may steal a
// key-pure batch from the tail. When the queue is full, push() blocks — that
// is the backpressure that keeps a slow server from being buried by fast
// sensors (frames queue up at the edge, exactly as a real sensor's MIPI link
// would stall). close() wakes everyone: pending pops drain the remaining
// frames, then return false.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "runtime/frame.h"

namespace snappix::runtime {

class FrameQueue {
 public:
  explicit FrameQueue(std::size_t capacity);

  FrameQueue(const FrameQueue&) = delete;
  FrameQueue& operator=(const FrameQueue&) = delete;

  // Blocks while the queue is full. Returns false (dropping `frame`) only if
  // the queue was closed before space became available.
  bool push(Frame frame);

  // Blocks while the queue is empty. Returns false once closed AND drained.
  bool pop(Frame& out);

  // Like pop(), but gives up at `deadline`; false on timeout or closed+drained.
  bool pop_until(Frame& out, Clock::time_point deadline);

  // Work stealing: removes the maximal (pattern_id, task, precision)-pure run of frames
  // from the TAIL of the queue — at most `max_frames` of them — and appends
  // them to `out` in FIFO order (out is cleared first). The stolen run is a
  // contiguous queue suffix, so a camera's frames inside it keep their
  // sequence order, and it never mixes serving keys — the thief can serve it
  // as one batch through one engine. Non-blocking: returns false when the
  // queue is empty. Frees up to max_frames capacity slots, waking ALL
  // producers blocked in push() (a single wake here would strand producers
  // behind capacity that a steal already freed — see the shutdown-while-
  // stealing regression tests).
  bool steal_tail(std::vector<Frame>& out, int max_frames);

  // Idempotent. After close(), pushes fail and pops drain whatever is left.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }

  // True once the queue can never yield another frame: closed and drained.
  // Sticky — no push can succeed after close() — so a true result is final.
  bool exhausted() const;

  // Lifetime counters for RuntimeStats.
  std::uint64_t total_pushed() const;
  std::size_t high_water_mark() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Frame> frames_;
  bool closed_ = false;
  std::uint64_t total_pushed_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace snappix::runtime
