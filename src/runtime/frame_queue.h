// FrameQueue: bounded MPMC queue connecting camera producers to the server
// consumer, with blocking backpressure.
//
// Multiple camera threads push concurrently; the batch aggregator pops. When
// the queue is full, push() blocks — that is the backpressure that keeps a
// slow server from being buried by fast sensors (frames queue up at the edge,
// exactly as a real sensor's MIPI link would stall). close() wakes everyone:
// pending pops drain the remaining frames, then return false.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "runtime/frame.h"

namespace snappix::runtime {

class FrameQueue {
 public:
  explicit FrameQueue(std::size_t capacity);

  FrameQueue(const FrameQueue&) = delete;
  FrameQueue& operator=(const FrameQueue&) = delete;

  // Blocks while the queue is full. Returns false (dropping `frame`) only if
  // the queue was closed before space became available.
  bool push(Frame frame);

  // Blocks while the queue is empty. Returns false once closed AND drained.
  bool pop(Frame& out);

  // Like pop(), but gives up at `deadline`; false on timeout or closed+drained.
  bool pop_until(Frame& out, Clock::time_point deadline);

  // Idempotent. After close(), pushes fail and pops drain whatever is left.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }

  // Lifetime counters for RuntimeStats.
  std::uint64_t total_pushed() const;
  std::size_t high_water_mark() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Frame> frames_;
  bool closed_ = false;
  std::uint64_t total_pushed_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace snappix::runtime
