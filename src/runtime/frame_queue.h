// FrameQueue: bounded MPMC queue connecting camera producers to shard
// consumers, with QoS admission control, deadline-aware dequeue, blocking
// backpressure, and tail-batch work stealing.
//
// Multiple camera threads push concurrently; the owning shard's batch
// aggregator pops, and idle sibling shards may steal a key-pure batch from
// the tail. Overload behavior is governed by each frame's QosClass:
//
//   kRealtime / kStandard  a full queue BLOCKS the producer — the
//                          backpressure that keeps a slow server from being
//                          buried by fast sensors (frames queue up at the
//                          edge, exactly as a real sensor's MIPI link would
//                          stall).
//   kBestEffort            a full queue REJECTS the frame instead
//                          (PushResult::kShed): best-effort traffic absorbs
//                          the overload so the higher classes keep their
//                          latency. Sheds are counted exactly and reported
//                          through the shed observer.
//
// Dequeue is earliest-deadline-first (EDF): pop()/pop_until() serve the
// frame with the soonest deadline; frames without deadlines rank behind all
// deadlined frames and among themselves keep strict FIFO order (so queues
// with no deadlines behave exactly as the original FIFO — the
// batching-determinism tests rely on that). Frames whose deadline has
// already passed are shed at dequeue (drop-late) rather than served stale;
// shedding frees capacity, so ALL blocked producers are woken.
//
// close() wakes everyone: pending pops drain the remaining frames
// (drop-late still applies), then return false.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "runtime/frame.h"

namespace snappix::runtime {

// Outcome of an admit() call. kAccepted: the frame is queued. kShed: the
// frame was rejected by admission control (best-effort on a full queue) —
// the producer should keep producing; the frame is counted and reported,
// not served. kClosed: the queue closed — the runtime is shutting down and
// the producer should stop. The kShed/kClosed split is load-bearing: a
// producer blocked on a full queue that observes close() is NOT a shed (see
// the counter-taxonomy regression tests).
enum class PushResult : std::uint8_t { kAccepted, kShed, kClosed };

inline const char* to_string(PushResult result) {
  switch (result) {
    case PushResult::kAccepted:
      return "accepted";
    case PushResult::kShed:
      return "shed";
    default:
      return "closed";
  }
}

class FrameQueue {
 public:
  // Called once per shed frame (admission rejects and drop-late expiries),
  // OUTSIDE the queue lock, on whichever thread performed the shed. The
  // frame is dead — the observer may read it (ids, qos, timestamps) but the
  // runtime will never serve it.
  using ShedObserver = std::function<void(const Frame&, ShedReason)>;

  explicit FrameQueue(std::size_t capacity);

  FrameQueue(const FrameQueue&) = delete;
  FrameQueue& operator=(const FrameQueue&) = delete;

  // QoS-aware admission. Realtime/standard frames block while the queue is
  // full (kClosed if it closes first); best-effort frames are shed
  // immediately on a full queue (kShed) instead of blocking. kAccepted
  // frames will be served or counted as drop-late sheds — never lost
  // silently.
  PushResult admit(Frame frame);

  // Legacy blocking push: admit() collapsed to a bool. Returns true when the
  // frame was accepted; false when it was shed OR the queue closed. Kept for
  // callers that predate QoS (all frames default to kStandard, which never
  // sheds at admission, so for them false still means exactly "closed").
  bool push(Frame frame) { return admit(std::move(frame)) == PushResult::kAccepted; }

  // Blocks while the queue is empty. Serves the earliest-deadline frame
  // (ties and no-deadline frames in FIFO order); sheds expired frames
  // instead of serving them. Returns false once closed AND drained.
  bool pop(Frame& out);

  // Like pop(), but gives up at `deadline`; false on timeout or closed+drained.
  bool pop_until(Frame& out, Clock::time_point deadline);

  // Work stealing: removes the maximal (pattern_id, task, precision)-pure run of frames
  // from the TAIL of the queue — at most `max_frames` of them — and appends
  // them to `out` in FIFO order (out is cleared first). The stolen run is a
  // contiguous queue suffix, so a camera's frames inside it keep their
  // sequence order, and it never mixes serving keys — the thief can serve it
  // as one batch through one engine. Realtime frames are NEVER stolen: the
  // run stops where a kRealtime frame starts, so a thief (by construction a
  // slower/idler shard) cannot move latency-critical work behind its own
  // tail. Already-expired frames inside the run are shed, not exported.
  // Non-blocking: returns false when the queue is empty or the tail is
  // realtime. Frees up to max_frames capacity slots, waking ALL producers
  // blocked in admit() (a single wake here would strand producers behind
  // capacity that a steal already freed — see the shutdown-while-stealing
  // regression tests).
  bool steal_tail(std::vector<Frame>& out, int max_frames);

  // Watchdog rescue, step 1: removes EVERY queued frame into `out` (appended
  // in FIFO order) without serving or shedding them, and returns the count.
  // The caller owns the frames and must re-admit them elsewhere (or shed
  // them through a queue's shed() so the ledger stays exact). Frees the full
  // capacity, waking all blocked producers. Drained frames leave this
  // queue's conservation ledger through `drained()`.
  std::size_t drain(std::vector<Frame>& out);

  // Watchdog rescue, step 2: enqueues `frame` BYPASSING the capacity bound —
  // the supervisor must never block behind a sibling's backpressure while it
  // holds rescued frames. On success the frame is consumed (moved) and
  // counted in total_pushed; returns false — leaving `frame` intact for the
  // caller to shed — when the queue is closed. Not for producers: capacity
  // is the backpressure contract; only rescue paths may overshoot it.
  bool force_admit(Frame& frame);

  // Counts `frame` as shed for `reason` through this queue's counters and
  // observer, WITHOUT it being queued. For external owners of dequeued
  // frames that decide to drop them under this queue's accounting — e.g. the
  // BatchAggregator shedding an expired holdback.
  void shed(const Frame& frame, ShedReason reason);

  // Installs the shed callback (replacing any previous one). Call before
  // concurrent use: installation is unsynchronized against running
  // producers/consumers.
  void set_shed_observer(ShedObserver observer) { shed_observer_ = std::move(observer); }

  // Idempotent. After close(), pushes fail and pops drain whatever is left.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }

  // True once the queue can never yield another frame: closed and drained.
  // Sticky — no push can succeed after close() — so a true result is final.
  bool exhausted() const;

  // Lifetime counters for RuntimeStats. Conservation: total_pushed ==
  // frames served downstream + shed_expired + drained + depth() at any
  // quiescent point (admission sheds never enter the queue, so
  // shed_admission is NOT part of that ledger; drained frames moved to a
  // sibling queue and re-entered the ledger THERE via force_admit).
  std::uint64_t total_pushed() const;
  std::size_t high_water_mark() const;
  // Frames rejected at admission (best-effort on a full queue).
  std::uint64_t shed_admission() const;
  // Accepted frames later shed for missing their deadline (drop-late at
  // pop/steal, plus external shed(..., kDeadline) calls).
  std::uint64_t shed_expired() const;
  // Frames removed by drain() (watchdog rescue).
  std::uint64_t drained() const;

 private:
  // Index of the frame pop should serve: earliest deadline, FIFO among
  // no-deadline frames and ties. Call with mutex_ held and frames_ non-empty.
  std::size_t edf_index() const;
  // Removes already-expired frames from the queue into `shed`, bumping
  // shed_expired_. Call with mutex_ held; report_sheds() must run on the
  // collected frames after the lock is released.
  void collect_expired(Clock::time_point now, std::vector<Frame>& shed);
  // Invokes the observer for every collected frame. Call WITHOUT the lock.
  void report_sheds(const std::vector<Frame>& shed, ShedReason reason) const;

  const std::size_t capacity_;
  ShedObserver shed_observer_;  // set before concurrent use, then read-only
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Frame> frames_;
  bool closed_ = false;
  std::uint64_t total_pushed_ = 0;
  std::uint64_t shed_admission_ = 0;
  std::uint64_t shed_expired_ = 0;
  std::uint64_t drained_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace snappix::runtime
