#include "runtime/server.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "codec/bitplane.h"
#include "util/common.h"

namespace snappix::runtime {

void validate(const ServerConfig& config) {
  validate(config.batch);
  if (config.queue_capacity == 0) {
    throw std::invalid_argument(
        "ServerConfig.queue_capacity must be >= 1 (a zero-capacity queue can never "
        "accept a frame)");
  }
  if (config.scheduler_threads < 0) {
    std::ostringstream os;
    os << "ServerConfig.scheduler_threads must be >= 0 (0 = one thread per camera), got "
       << config.scheduler_threads;
    throw std::invalid_argument(os.str());
  }
  if (config.cache.shards == 0) {
    throw std::invalid_argument("ServerConfig.cache.shards must be >= 1");
  }
  if (config.cache.capacity_per_shard == 0) {
    throw std::invalid_argument(
        "ServerConfig.cache.capacity_per_shard must be >= 1 (a zero-capacity shard "
        "would evict every entry it admits)");
  }
  if (config.shards == 0) {
    throw std::invalid_argument(
        "ServerConfig.shards must be >= 1 (someone has to serve the batches)");
  }
  if (config.backend == InferenceBackend::kTapeFramework && config.shards > 1) {
    std::ostringstream os;
    os << "ServerConfig.shards = " << config.shards
       << " requires the fused-engine backend: the tape framework shares one tape and "
          "is not safe under concurrent forwards";
    throw std::invalid_argument(os.str());
  }
  if (config.steal_poll.count() <= 0) {
    std::ostringstream os;
    os << "ServerConfig.steal_poll must be positive (idle shards would spin), got "
       << config.steal_poll.count() << " us";
    throw std::invalid_argument(os.str());
  }
  if (config.backend == InferenceBackend::kTapeFramework &&
      config.precision == Precision::kInt8) {
    throw std::invalid_argument(
        "ServerConfig.precision = int8 requires the fused-engine backend: the tape "
        "framework has no quantized path");
  }
  if (config.calibration.frames < 1) {
    std::ostringstream os;
    os << "ServerConfig.calibration.frames must be >= 1 (an int8 engine cannot be "
          "calibrated on zero frames), got "
       << config.calibration.frames;
    throw std::invalid_argument(os.str());
  }
  if (config.deadline_budget.count() < 0) {
    std::ostringstream os;
    os << "ServerConfig.deadline_budget must be non-negative (0 = no deadlines), got "
       << config.deadline_budget.count() << " us";
    throw std::invalid_argument(os.str());
  }
  if (config.classify_codec_planes < 0 ||
      config.classify_codec_planes > codec::kMaxBitplanes) {
    std::ostringstream os;
    os << "ServerConfig.classify_codec_planes must be in [0, " << codec::kMaxBitplanes
       << "] (0 = full depth), got " << config.classify_codec_planes;
    throw std::invalid_argument(os.str());
  }
  validate(config.transport);
  validate(config.health);
  if (config.health.enabled && config.backend == InferenceBackend::kTapeFramework) {
    for (const LadderStep& step : config.health.ladder) {
      if (step.kind == LadderStep::Kind::kInt8Precision) {
        throw std::invalid_argument(
            "ServerConfig.health.ladder contains an int8 rung, but the server runs "
            "the tape backend — the tape framework has no quantized path");
      }
    }
  }
  obs::validate(config.trace);
}

namespace {

const ServerConfig& validated(const ServerConfig& config) {
  validate(config);
  return config;
}

}  // namespace

InferenceServer::InferenceServer(const core::SnapPixSystem& system,
                                 const ServerConfig& config)
    : system_(system), config_(validated(config)),
      scheduler_(stats_, config_.scheduler_threads, config_.transport) {
  // The factory snapshots the system's model into a fresh fused engine for
  // each newly-resident (pattern, precision) pair. The fp32 snapshot is
  // pattern-independent (one shared model today; a deployment with
  // per-pattern fine-tuned heads swaps this lambda for a weight-store
  // lookup). An int8 miss first CALIBRATES against the missing pattern:
  // synthetic clips are CE-encoded with it and pushed through the fp32
  // engine to collect activation ranges — coded-image statistics depend on
  // the pattern's exposure counts, so the scales are per-pattern. The
  // calibration seed is fixed by config, so rebuilds are bit-identical.
  const int max_batch = std::max(config_.batch.max_batch, 1);
  const QuantCalibration calibration = config_.calibration;
  const std::int64_t image = system.config().image;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>(i, config_.queue_capacity);
    if (config_.backend == InferenceBackend::kFusedEngine) {
      shard->cache = std::make_unique<EngineCache>(
          config_.cache,
          [&system, max_batch, calibration, image](
              const ce::CePattern& pattern, Precision precision) -> std::shared_ptr<VitEngine> {
            if (precision == Precision::kFp32) {
              return std::make_shared<BatchedVitEngine>(*system.classifier(),
                                                        *system.reconstructor(), max_batch);
            }
            const Tensor frames = make_calibration_frames(pattern, image, image, calibration);
            const QuantSpec spec =
                calibrate(*system.classifier(), *system.reconstructor(), frames);
            return std::make_shared<QuantizedVitEngine>(
                *system.classifier(), *system.reconstructor(), spec, max_batch);
          });
    }
    shards_.push_back(std::move(shard));
  }
  if (config_.trace.enabled) {
    trace_recorder_ = std::make_unique<obs::TraceRecorder>(config_.trace);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      std::ostringstream name;
      name << "shard " << i;
      shards_[i]->lane = trace_recorder_->create_lane(name.str());
    }
    shed_lane_ = trace_recorder_->create_lane("shed");
    if (config_.health.enabled) {
      health_lane_ = trace_recorder_->create_lane("health");
    }
  }
  if (config_.health.enabled) {
    health_ = std::make_unique<HealthController>(config_.health, stats_);
    health_->set_transition_hook(
        [this](int camera_id, HealthState from, HealthState to, int ladder_step) {
          trace_health_transition(camera_id, from, to, ladder_step);
        });
    scheduler_.set_health(health_.get());
  }
  // Every shard queue closes when the fleet drains — including queues of
  // shards no camera happens to hash to, whose workers would otherwise poll
  // an open-and-forever-empty queue while siblings wait on fleet exhaustion.
  for (const auto& shard : shards_) {
    scheduler_.register_queue(shard->queue);
  }
  // Replace the scheduler's default shed observer with one that also emits
  // a trace event per shed — every shed, not just sampled frames: sheds are
  // rare by design and each one is an operational signal worth keeping.
  for (const auto& shard : shards_) {
    shard->queue.set_shed_observer([this](const Frame& frame, ShedReason reason) {
      stats_.record_shed(frame.camera_id, frame.qos, reason);
      if (shed_lane_ != nullptr) {
        std::ostringstream args;
        args << "\"camera\": " << frame.camera_id << ", \"sequence\": " << frame.sequence
             << ", \"qos\": \"" << to_string(frame.qos) << "\", \"reason\": \""
             << to_string(reason) << "\"";
        // Sheds come from producer threads and shard workers alike; the
        // mutex provides the exclusive-writer guarantee the lane's publish
        // protocol requires.
        std::lock_guard<std::mutex> lock(shed_lane_mutex_);
        shed_lane_->add_complete("shed", trace_recorder_->now_ns(), 0, args.str());
      }
    });
  }
  pixels_per_frame_ = system.config().image * system.config().image;
}

void InferenceServer::add_camera(std::unique_ptr<CameraSource> camera) {
  SNAPPIX_CHECK(camera != nullptr, "null camera");
  camera->set_default_precision(config_.precision);
  camera->set_default_qos(config_.qos);
  camera->set_default_deadline_budget(config_.deadline_budget);
  // Tracing off => default sampling 0 (no frame stamps trace_sampled); an
  // explicit set_trace_sampling on the camera still wins either way.
  camera->set_default_trace_sampling(config_.trace.enabled ? config_.trace.sample_every : 0);
  camera->set_default_codec_planes(config_.classify_codec_planes);
  if (camera->precision() == Precision::kInt8 &&
      config_.backend == InferenceBackend::kTapeFramework) {
    std::ostringstream os;
    os << "camera " << camera->id()
       << " requests int8 serving, but the server runs the tape backend — int8 needs "
          "the fused-engine backend";
    throw std::invalid_argument(os.str());
  }
  const auto [it, inserted] = patterns_.emplace(camera->pattern_id(), camera->pattern_ref());
  // Same 64-bit id must mean same pattern bits: a silent hash collision would
  // merge two patterns' batches and serve both through one cache entry.
  SNAPPIX_CHECK(inserted || *it->second == camera->pattern(),
                "camera " << camera->id() << ": pattern hash collision on id "
                          << camera->pattern_id()
                          << " — two distinct CE patterns share a pattern_id");
  FrameQueue& queue = shards_[shard_for(camera->pattern_id())]->queue;
  // Attach AFTER the defaults above are installed: the controller snapshots
  // the camera's effective knobs (codec planes, precision, qos) as the
  // full-fidelity baseline the degradation ladder steps down from and the
  // recovery path restores.
  if (health_ != nullptr) {
    health_->attach(*camera);
  }
  scheduler_.add_camera(std::move(camera), queue);
}

void InferenceServer::trace_health_transition(int camera_id, HealthState from,
                                              HealthState to, int ladder_step) {
  if (health_lane_ == nullptr) {
    return;
  }
  std::ostringstream args;
  args << "\"camera\": " << camera_id << ", \"from\": \"" << to_string(from)
       << "\", \"to\": \"" << to_string(to) << "\", \"ladder_step\": " << ladder_step;
  // Transitions fire on producer threads; the mutex provides the lane's
  // exclusive-writer guarantee (same pattern as the shed lane).
  std::lock_guard<std::mutex> lock(health_lane_mutex_);
  health_lane_->add_complete("health_transition", trace_recorder_->now_ns(), 0, args.str());
}

const EngineCache* InferenceServer::engine_cache(std::size_t shard) const {
  SNAPPIX_CHECK(shard < shards_.size(),
                "engine_cache(" << shard << ") out of range for " << shards_.size()
                                << " shards");
  return shards_[shard]->cache.get();
}

bool InferenceServer::fleet_exhausted(std::size_t index) const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i != index && !shards_[i]->queue.exhausted()) {
      return false;
    }
  }
  return true;
}

void InferenceServer::serve_batch(Shard& self, const BatchKey& key,
                                  std::vector<Frame>& batch, FlushReason reason) {
  // Chaos hook first: an injected stall here models a shard hung BEFORE
  // serving, which is exactly the window the watchdog must cover.
  if (config_.before_batch) {
    config_.before_batch(self.index, key, batch.size());
  }
  for (const Frame& frame : batch) {
    stats_.record_queue_wait(
        std::chrono::duration<double>(frame.dequeue_time - frame.enqueue_time).count());
  }

  // Tracing: only batches carrying at least one sampled frame pay for span
  // emission. Installing the shard's lane in TLS lets the EngineCache and the
  // engines emit their stage spans with no API changes; everything lands in
  // this worker's single-writer lane.
  bool traced = false;
  if (trace_recorder_ != nullptr && self.lane != nullptr) {
    for (const Frame& frame : batch) {
      if (frame.trace_sampled) {
        traced = true;
        break;
      }
    }
  }
  std::optional<obs::ScopedTraceLane> lane_scope;
  std::int64_t serve_start_ns = 0;
  if (traced) {
    lane_scope.emplace(trace_recorder_.get(), self.lane);
    serve_start_ns = trace_recorder_->now_ns();
  }

  const Tensor coded = BatchAggregator::stack_coded(batch);

  // Resolve the batch's pattern to resident serving state in THIS shard's
  // cache view. The registry holds every pattern an added camera carries, so
  // a thief can build its own entry for a stolen pattern without the frame
  // shipping its pattern bits — engines are deterministic snapshots, so the
  // duplicate serves bit-identical results.
  std::shared_ptr<const ServingEntry> entry;
  if (self.cache != nullptr) {
    const auto it = patterns_.find(key.pattern_id);
    SNAPPIX_CHECK(it != patterns_.end(),
                  "frame carries unregistered pattern_id " << key.pattern_id
                      << " — was its camera added through add_camera()?");
    entry = self.cache->resolve(key.pattern_id, it->second, key.precision);
  }

  const Clock::time_point infer_start = Clock::now();
  if (key.task == Task::kClassify) {
    const std::vector<std::int64_t> predicted =
        entry != nullptr ? entry->engine->classify(coded) : system_.classify_coded(coded);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      TaskResult result;
      result.camera_id = batch[i].camera_id;
      result.sequence = batch[i].sequence;
      result.task = Task::kClassify;
      result.pattern_id = key.pattern_id;
      result.precision = key.precision;
      result.decode_depth = key.decode_depth;
      result.predicted = predicted[i];
      result.label = batch[i].label;
      self.results.push_back(std::move(result));
    }
  } else {
    const Tensor video = entry != nullptr ? entry->engine->reconstruct(coded)
                                          : system_.reconstruct_coded(coded);
    const std::int64_t frame_elems = video.shape()[1] * video.shape()[2] * video.shape()[3];
    for (std::size_t i = 0; i < batch.size(); ++i) {
      TaskResult result;
      result.camera_id = batch[i].camera_id;
      result.sequence = batch[i].sequence;
      result.task = Task::kReconstruct;
      result.pattern_id = key.pattern_id;
      result.precision = key.precision;
      result.decode_depth = key.decode_depth;
      result.label = batch[i].label;
      const auto begin = video.data().begin() + static_cast<std::int64_t>(i) * frame_elems;
      result.reconstruction = Tensor::from_vector(
          std::vector<float>(begin, begin + frame_elems),
          Shape{video.shape()[1], video.shape()[2], video.shape()[3]});
      self.results.push_back(std::move(result));
    }
  }
  const Clock::time_point infer_end = Clock::now();

  if (traced) {
    std::ostringstream args;
    args << "\"frames\": " << batch.size() << ", \"reason\": \"" << to_string(reason)
         << "\", \"task\": \"" << to_string(key.task) << "\", \"precision\": \""
         << to_string(key.precision) << "\", \"depth\": "
         << static_cast<int>(key.decode_depth);
    self.lane->add_complete("serve_batch", serve_start_ns,
                            trace_recorder_->now_ns() - serve_start_ns, args.str());
    emit_frame_lifecycles(*self.lane, batch, infer_start, infer_end);
  }

  stats_.record_batch(batch.size(),
                      std::chrono::duration<double>(infer_end - infer_start).count(),
                      reason);
  stats_.record_task_frames(key.task, batch.size());
  stats_.record_precision_frames(key.precision, batch.size());
  for (const Frame& frame : batch) {
    stats_.record_frame_done(
        frame.raw_bytes, frame.wire_bytes,
        std::chrono::duration<double>(infer_end - frame.capture_start).count(), frame.qos);
    // A served frame that finished past its deadline is a deadline MISS —
    // the answer was delivered, just late (distinct from a drop-late shed,
    // where nothing was served). Drop-late catches frames that expire while
    // queued; a frame can still expire during batch assembly or inference.
    if (frame.has_deadline() && infer_end > frame.deadline) {
      stats_.record_deadline_miss(frame.camera_id);
    }
  }
  self.counters.frames += batch.size();
  ++self.counters.batches;
  switch (reason) {
    case FlushReason::kMaxBatch: ++self.counters.flush_max_batch; break;
    case FlushReason::kMaxLatency: ++self.counters.flush_max_latency; break;
    case FlushReason::kExhausted: ++self.counters.flush_exhausted; break;
    case FlushReason::kHoldback: ++self.counters.flush_holdback; break;
    case FlushReason::kSteal: ++self.counters.flush_steal; break;
  }
  // A completed batch is the strongest liveness signal there is.
  self.heartbeat.fetch_add(1, std::memory_order_relaxed);
}

void InferenceServer::emit_frame_lifecycles(obs::TraceLane& lane,
                                            const std::vector<Frame>& batch,
                                            Clock::time_point infer_start,
                                            Clock::time_point infer_end) const {
  const obs::TraceRecorder& rec = *trace_recorder_;
  const std::int64_t infer_b = rec.to_ns(infer_start);
  const std::int64_t infer_e = rec.to_ns(infer_end);
  for (const Frame& f : batch) {
    if (!f.trace_sampled) {
      continue;
    }
    // One async track per frame: camera_id in the high half, sequence in the
    // low half. Chrome/Perfetto nest same-(cat, id) b/e events by timestamp,
    // so the stage spans render as children of the enclosing "frame" span.
    const std::uint64_t id =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.camera_id)) << 32) |
        static_cast<std::uint64_t>(f.sequence & 0xFFFFFFFF);
    std::ostringstream args;
    args << "\"camera\": " << f.camera_id << ", \"sequence\": " << f.sequence;
    const std::int64_t capture_b = rec.to_ns(f.capture_start);
    lane.add_async_begin("frame", "frame", id, capture_b, args.str());
    lane.add_async_begin("capture", "frame", id, capture_b);
    if (f.transport_start != Clock::time_point{}) {
      lane.add_async_begin("transport", "frame", id, rec.to_ns(f.transport_start));
      lane.add_async_end("transport", "frame", id, rec.to_ns(f.transport_end));
    }
    lane.add_async_end("capture", "frame", id, rec.to_ns(f.capture_end));
    lane.add_async_begin("queue_wait", "frame", id, rec.to_ns(f.enqueue_time));
    lane.add_async_end("queue_wait", "frame", id, rec.to_ns(f.dequeue_time));
    lane.add_async_begin("batch_assembly", "frame", id, rec.to_ns(f.dequeue_time));
    lane.add_async_end("batch_assembly", "frame", id, infer_b);
    lane.add_async_begin("infer", "frame", id, infer_b);
    lane.add_async_end("infer", "frame", id, infer_e);
    lane.add_async_end("frame", "frame", id, infer_e);
  }
}

std::string InferenceServer::trace_json() const {
  SNAPPIX_CHECK(trace_recorder_ != nullptr,
                "trace_json() requires ServerConfig::trace.enabled = true");
  return trace_recorder_->chrome_json();
}

void InferenceServer::write_trace(const std::string& path) const {
  SNAPPIX_CHECK(trace_recorder_ != nullptr,
                "write_trace() requires ServerConfig::trace.enabled = true");
  trace_recorder_->write(path);
}

void InferenceServer::shard_loop(std::size_t index) {
  // Grad mode is thread-local, so every worker needs its own guard — the
  // guard installed on the caller's thread does not reach us.
  NoGradGuard guard;
  Shard& self = *shards_[index];
  BatchAggregator aggregator(self.queue, config_.batch);
  std::vector<Frame> batch;
  std::vector<std::pair<std::size_t, std::size_t>> victim_order;  // (depth, shard)
  try {
    if (!config_.work_stealing || shards_.size() == 1) {
      // No one to steal from (or stealing disabled): the bounded-wait poll
      // loop would only add idle wakeups every steal_poll. Block properly.
      while (aggregator.next_batch(batch)) {
        self.heartbeat.fetch_add(1, std::memory_order_relaxed);
        serve_batch(self, aggregator.last_key(), batch, aggregator.last_flush_reason());
      }
      return;
    }
    for (;;) {
      // Every pass through the loop is a beat: the watchdog distinguishes a
      // worker that is polling (alive, queue just slow to fill) from one
      // wedged inside a serve (no beats while its queue backs up).
      self.heartbeat.fetch_add(1, std::memory_order_relaxed);
      // Own queue first: a shard prefers the patterns routed to it, keeping
      // its cache view hot.
      const BatchAggregator::Poll poll =
          aggregator.poll_batch(batch, Clock::now() + config_.steal_poll);
      if (poll == BatchAggregator::Poll::kBatch) {
        serve_batch(self, aggregator.last_key(), batch, aggregator.last_flush_reason());
        continue;
      }
      // Idle (or drained for good): probe the siblings for a tail batch so a
      // hot camera or pattern cannot starve the fleet while we sit here.
      // Deepest queue first — relief goes where the backlog (and therefore
      // the latency debt and the shed risk) is largest. Depths are a racy
      // snapshot, which is fine: any victim with frames is a valid steal,
      // the ordering is only a preference.
      victim_order.clear();
      for (std::size_t offset = 1; offset < shards_.size(); ++offset) {
        const std::size_t v = (index + offset) % shards_.size();
        victim_order.emplace_back(shards_[v]->queue.depth(), v);
      }
      std::sort(victim_order.begin(), victim_order.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      bool stole = false;
      for (std::size_t i = 0; i < victim_order.size() && !stole; ++i) {
        Shard& victim = *shards_[victim_order[i].second];
        ++self.counters.steal_attempts;
        if (victim.queue.steal_tail(batch, config_.batch.max_batch)) {
          const Clock::time_point now = Clock::now();
          for (Frame& frame : batch) {
            frame.dequeue_time = now;
          }
          ++self.counters.steal_successes;
          self.counters.stolen_frames += batch.size();
          serve_batch(self,
                      BatchKey{batch.front().pattern_id, batch.front().task,
                               batch.front().precision, batch.front().decode_depth},
                      batch, FlushReason::kSteal);
          stole = true;
        }
      }
      if (stole) {
        continue;
      }
      if (poll == BatchAggregator::Poll::kExhausted) {
        if (fleet_exhausted(index)) {
          break;  // nothing left anywhere
        }
        // Our queue is done but siblings may still be filling; poll_batch on
        // an exhausted queue returns immediately, so pace the probe loop.
        std::this_thread::sleep_for(config_.steal_poll);
      }
    }
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(worker_error_mutex_);
      if (worker_error_.empty()) {
        std::ostringstream os;
        os << "shard " << index << " worker failed: " << e.what();
        worker_error_ = os.str();
      }
    }
    // Unwind the whole fleet: closing every queue unblocks producers and
    // lets sibling workers drain and exit; run() rethrows after the join.
    for (const auto& shard : shards_) {
      shard->queue.close();
    }
  }
}

void InferenceServer::watchdog_loop() {
  const WatchdogConfig& wd = config_.health.watchdog;
  std::vector<std::uint64_t> last(shards_.size(), 0);
  std::vector<int> stale(shards_.size(), 0);
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(wd.poll);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& shard = *shards_[i];
      const std::uint64_t beat = shard.heartbeat.load(std::memory_order_relaxed);
      if (beat != last[i]) {
        last[i] = beat;
        stale[i] = 0;
        if (shard.stalled.load(std::memory_order_relaxed)) {
          // The worker came back (the stall was a long batch, not a death):
          // route its cameras home so its cache view warms back up. Frames
          // already rescued stay with the sibling — moving them again would
          // only add latency.
          shard.stalled.store(false, std::memory_order_relaxed);
          scheduler_.restore_routes(shard.queue);
        }
        continue;
      }
      // A silent worker is only a stall if it is sitting on work it could
      // serve: an empty or closed queue gives an idle worker nothing to beat
      // about (the blocking no-steal path parks in next_batch).
      if (shard.queue.exhausted() || shard.queue.depth() == 0) {
        stale[i] = 0;
        continue;
      }
      if (shard.stalled.load(std::memory_order_relaxed)) {
        // Still hung: re-drain. A producer that was blocked in admit() when
        // the first rescue swept the queue may have landed one more frame
        // before it observed the new route.
        rescue_shard(i);
      } else if (++stale[i] >= wd.stall_polls) {
        shard.stalled.store(true, std::memory_order_relaxed);
        stats_.record_watchdog_stall(i);
        rescue_shard(i);
      }
    }
  }
}

void InferenceServer::rescue_shard(std::size_t index) {
  Shard& stalled = *shards_[index];
  // Healthiest sibling = live, open, shallowest queue: relief must not land
  // on another shard that is itself drowning or already declared dead.
  std::size_t target = index;
  std::size_t best_depth = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i == index || shards_[i]->stalled.load(std::memory_order_relaxed) ||
        shards_[i]->queue.closed()) {
      continue;
    }
    const std::size_t depth = shards_[i]->queue.depth();
    if (target == index || depth < best_depth) {
      target = i;
      best_depth = depth;
    }
  }
  if (target == index) {
    return;  // no live sibling; nothing to rescue toward
  }
  Shard& sibling = *shards_[target];
  // Route FIRST, then drain: the other order lets producers refill the
  // stalled queue between the sweep and the swap, stranding frames behind a
  // dead worker.
  scheduler_.reroute(stalled.queue, sibling.queue);
  std::vector<Frame> rescued;
  stalled.queue.drain(rescued);
  if (rescued.empty()) {
    return;
  }
  // force_admit bypasses the sibling's capacity bound — the supervisor must
  // never block in admit() while it holds every rescued frame. A closed
  // sibling (shutdown race) sheds the frame through the sibling's ledger so
  // conservation stays exact: drained == force-admitted + shed.
  for (Frame& frame : rescued) {
    if (!sibling.queue.force_admit(frame)) {
      sibling.queue.shed(frame, ShedReason::kDeadline);
    }
  }
  stats_.record_rerouted_frames(rescued.size());
}

std::vector<TaskResult> InferenceServer::run(std::int64_t frames_per_camera) {
  return run(std::vector<std::int64_t>(camera_count(), frames_per_camera));
}

std::vector<TaskResult> InferenceServer::run(
    const std::vector<std::int64_t>& frames_per_camera) {
  SNAPPIX_CHECK(!ran_, "InferenceServer::run() is one-shot");
  // Validate the request BEFORE committing the one-shot flag: a rejected
  // call must not poison the server for the corrected retry.
  SNAPPIX_CHECK(frames_per_camera.size() == camera_count(),
                "frames_per_camera has " << frames_per_camera.size() << " entries for "
                                         << camera_count() << " cameras");
  for (const std::int64_t frames : frames_per_camera) {
    SNAPPIX_CHECK(frames > 0, "frames_per_camera entries must be positive, got " << frames);
  }
  SNAPPIX_CHECK(camera_count() > 0, "no cameras to serve");
  ran_ = true;
  const Clock::time_point run_start = Clock::now();
  scheduler_.start(frames_per_camera);

  // The watchdog needs siblings to re-route to, so it only runs with > 1
  // shard. It starts before the workers and stops after they join: the whole
  // worker lifetime is supervised.
  std::thread watchdog;
  if (config_.health.enabled && config_.health.watchdog.enabled && shards_.size() > 1) {
    watchdog = std::thread([this] { watchdog_loop(); });
  }
  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    workers.emplace_back([this, i] { shard_loop(i); });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  if (watchdog.joinable()) {
    watchdog_stop_.store(true, std::memory_order_release);
    watchdog.join();
  }
  scheduler_.join();
  wall_seconds_ = std::chrono::duration<double>(Clock::now() - run_start).count();

  EngineCacheCounters cache_total;
  CacheTierCounters cache_fp32;
  CacheTierCounters cache_int8;
  std::vector<ShardStatsView> views;
  views.reserve(shards_.size());
  std::size_t total_results = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    shard.counters.shard = i;
    shard.counters.queue_high_water = shard.queue.high_water_mark();
    stats_.set_queue_high_water(shard.queue.high_water_mark());
    if (shard.cache != nullptr) {
      // One snapshot per tier; the total is their sum BY CONSTRUCTION (a
      // separately-locked counters() read could disagree with the tier reads
      // if a resolve were still in flight).
      const EngineCacheCounters fp32 = shard.cache->counters(Precision::kFp32);
      const EngineCacheCounters int8 = shard.cache->counters(Precision::kInt8);
      shard.counters.cache_hits = fp32.hits + int8.hits;
      shard.counters.cache_misses = fp32.misses + int8.misses;
      shard.counters.cache_evictions = fp32.evictions + int8.evictions;
      cache_total.hits += shard.counters.cache_hits;
      cache_total.misses += shard.counters.cache_misses;
      cache_total.evictions += shard.counters.cache_evictions;
      cache_fp32.hits += fp32.hits;
      cache_fp32.misses += fp32.misses;
      cache_fp32.evictions += fp32.evictions;
      cache_int8.hits += int8.hits;
      cache_int8.misses += int8.misses;
      cache_int8.evictions += int8.evictions;
    }
    views.push_back(shard.counters);
    total_results += shard.results.size();
  }
  if (config_.backend == InferenceBackend::kFusedEngine) {
    stats_.set_cache_counters(cache_total.hits, cache_total.misses, cache_total.evictions);
    stats_.set_cache_tier_counters(cache_fp32, cache_int8);
  }
  stats_.set_shard_views(std::move(views));

  {
    std::lock_guard<std::mutex> lock(worker_error_mutex_);
    if (!worker_error_.empty()) {
      throw std::runtime_error(worker_error_);
    }
  }

  std::vector<TaskResult> results;
  results.reserve(total_results);
  for (const auto& shard : shards_) {
    for (TaskResult& result : shard->results) {
      results.push_back(std::move(result));
    }
    shard->results.clear();
  }
  std::sort(results.begin(), results.end(), [](const TaskResult& a, const TaskResult& b) {
    return a.camera_id != b.camera_id ? a.camera_id < b.camera_id : a.sequence < b.sequence;
  });
  return results;
}

RuntimeSummary InferenceServer::summary() const {
  SNAPPIX_CHECK(ran_, "summary() requires a completed run()");
  return stats_.summary(wall_seconds_);
}

FleetEnergyReport InferenceServer::fleet_energy(const energy::EnergyModel& model,
                                                energy::WirelessTech tech) const {
  SNAPPIX_CHECK(ran_, "fleet_energy() requires a completed run()");
  return stats_.fleet_energy(model, pixels_per_frame_, system_.config().frames, tech);
}

}  // namespace snappix::runtime
