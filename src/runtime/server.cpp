#include "runtime/server.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/common.h"

namespace snappix::runtime {

void validate(const ServerConfig& config) {
  validate(config.batch);
  if (config.queue_capacity == 0) {
    throw std::invalid_argument(
        "ServerConfig.queue_capacity must be >= 1 (a zero-capacity queue can never "
        "accept a frame)");
  }
  if (config.scheduler_threads < 0) {
    std::ostringstream os;
    os << "ServerConfig.scheduler_threads must be >= 0 (0 = one thread per camera), got "
       << config.scheduler_threads;
    throw std::invalid_argument(os.str());
  }
  if (config.cache.shards == 0) {
    throw std::invalid_argument("ServerConfig.cache.shards must be >= 1");
  }
  if (config.cache.capacity_per_shard == 0) {
    throw std::invalid_argument(
        "ServerConfig.cache.capacity_per_shard must be >= 1 (a zero-capacity shard "
        "would evict every entry it admits)");
  }
}

namespace {

const ServerConfig& validated(const ServerConfig& config) {
  validate(config);
  return config;
}

}  // namespace

InferenceServer::InferenceServer(const core::SnapPixSystem& system,
                                 const ServerConfig& config)
    : system_(system), config_(validated(config)), queue_(config_.queue_capacity),
      stats_(), scheduler_(queue_, stats_, config_.scheduler_threads) {
  if (config_.backend == InferenceBackend::kFusedEngine) {
    // The factory snapshots the system's model into a fresh fused engine for
    // each newly-resident pattern. With today's single shared model the
    // snapshot is pattern-independent; a deployment with per-pattern
    // fine-tuned heads swaps this lambda for a weight-store lookup.
    const int max_batch = std::max(config_.batch.max_batch, 1);
    cache_ = std::make_unique<EngineCache>(
        config_.cache, [&system, max_batch](const ce::CePattern&) {
          return std::make_shared<BatchedVitEngine>(*system.classifier(),
                                                    *system.reconstructor(), max_batch);
        });
  }
  pixels_per_frame_ = system.config().image * system.config().image;
}

void InferenceServer::add_camera(std::unique_ptr<CameraSource> camera) {
  SNAPPIX_CHECK(camera != nullptr, "null camera");
  const auto [it, inserted] = patterns_.emplace(camera->pattern_id(), camera->pattern_ref());
  // Same 64-bit id must mean same pattern bits: a silent hash collision would
  // merge two patterns' batches and serve both through one cache entry.
  SNAPPIX_CHECK(inserted || *it->second == camera->pattern(),
                "camera " << camera->id() << ": pattern hash collision on id "
                          << camera->pattern_id()
                          << " — two distinct CE patterns share a pattern_id");
  scheduler_.add_camera(std::move(camera));
}

std::vector<TaskResult> InferenceServer::run(std::int64_t frames_per_camera) {
  SNAPPIX_CHECK(!ran_, "InferenceServer::run() is one-shot");
  ran_ = true;
  NoGradGuard guard;
  const Clock::time_point run_start = Clock::now();
  scheduler_.start(frames_per_camera);

  std::vector<TaskResult> results;
  results.reserve(static_cast<std::size_t>(frames_per_camera) * camera_count());
  BatchAggregator aggregator(queue_, config_.batch);
  std::vector<Frame> batch;
  while (aggregator.next_batch(batch)) {
    for (const Frame& frame : batch) {
      stats_.record_queue_wait(
          std::chrono::duration<double>(frame.dequeue_time - frame.enqueue_time).count());
    }
    const BatchKey key = aggregator.last_key();
    const Tensor coded = BatchAggregator::stack_coded(batch);

    // Resolve the batch's pattern to resident serving state. The registry
    // holds every pattern an added camera carries, so the cache can rebuild
    // an evicted entry without the frame shipping its pattern bits.
    std::shared_ptr<const ServingEntry> entry;
    if (cache_ != nullptr) {
      const auto it = patterns_.find(key.pattern_id);
      SNAPPIX_CHECK(it != patterns_.end(),
                    "frame carries unregistered pattern_id " << key.pattern_id
                        << " — was its camera added through add_camera()?");
      entry = cache_->resolve(key.pattern_id, it->second);
    }

    const Clock::time_point infer_start = Clock::now();
    if (key.task == Task::kClassify) {
      const std::vector<std::int64_t> predicted =
          entry != nullptr ? entry->engine->classify(coded) : system_.classify_coded(coded);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        TaskResult result;
        result.camera_id = batch[i].camera_id;
        result.sequence = batch[i].sequence;
        result.task = Task::kClassify;
        result.pattern_id = key.pattern_id;
        result.predicted = predicted[i];
        result.label = batch[i].label;
        results.push_back(std::move(result));
      }
    } else {
      const Tensor video = entry != nullptr ? entry->engine->reconstruct(coded)
                                            : system_.reconstruct_coded(coded);
      const std::int64_t frame_elems = video.shape()[1] * video.shape()[2] * video.shape()[3];
      for (std::size_t i = 0; i < batch.size(); ++i) {
        TaskResult result;
        result.camera_id = batch[i].camera_id;
        result.sequence = batch[i].sequence;
        result.task = Task::kReconstruct;
        result.pattern_id = key.pattern_id;
        result.label = batch[i].label;
        const auto begin =
            video.data().begin() + static_cast<std::int64_t>(i) * frame_elems;
        result.reconstruction = Tensor::from_vector(
            std::vector<float>(begin, begin + frame_elems),
            Shape{video.shape()[1], video.shape()[2], video.shape()[3]});
        results.push_back(std::move(result));
      }
    }
    const Clock::time_point infer_end = Clock::now();
    stats_.record_batch(batch.size(),
                        std::chrono::duration<double>(infer_end - infer_start).count());
    stats_.record_task_frames(key.task, batch.size());
    for (const Frame& frame : batch) {
      stats_.record_frame_done(
          frame.raw_bytes, frame.wire_bytes,
          std::chrono::duration<double>(infer_end - frame.capture_start).count());
    }
  }
  scheduler_.join();
  wall_seconds_ = std::chrono::duration<double>(Clock::now() - run_start).count();
  stats_.set_queue_high_water(queue_.high_water_mark());
  if (cache_ != nullptr) {
    const EngineCacheCounters counters = cache_->counters();
    stats_.set_cache_counters(counters.hits, counters.misses, counters.evictions);
  }

  std::sort(results.begin(), results.end(), [](const TaskResult& a, const TaskResult& b) {
    return a.camera_id != b.camera_id ? a.camera_id < b.camera_id : a.sequence < b.sequence;
  });
  return results;
}

RuntimeSummary InferenceServer::summary() const {
  SNAPPIX_CHECK(ran_, "summary() requires a completed run()");
  return stats_.summary(wall_seconds_);
}

FleetEnergyReport InferenceServer::fleet_energy(const energy::EnergyModel& model,
                                                energy::WirelessTech tech) const {
  SNAPPIX_CHECK(ran_, "fleet_energy() requires a completed run()");
  return stats_.fleet_energy(model, pixels_per_frame_, system_.config().frames, tech);
}

}  // namespace snappix::runtime
