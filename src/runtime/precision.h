// Precision: the serving tier's accuracy-vs-throughput knob.
//
// kFp32 is the bit-exact reference path (BatchedVitEngine, identical to the
// tape framework down to the last bit). kInt8 serves through the calibrated
// QuantizedVitEngine — int8 weights/activations with int32 accumulation —
// which is deterministic and batch-invariant but NOT bit-identical to fp32:
// it trades a bounded quantization error for higher throughput, the same
// fidelity-for-efficiency trade SNAPPIX makes at the sensor. Precision rides
// on every Frame (like Task), keys batches and EngineCache entries, so fp32
// and int8 cameras coexist on one server.
#pragma once

#include <cstdint>

namespace snappix::runtime {

enum class Precision : std::uint8_t { kFp32, kInt8 };

inline const char* to_string(Precision precision) {
  return precision == Precision::kFp32 ? "fp32" : "int8";
}

}  // namespace snappix::runtime
