// StreamingRuntime: the single-task compatibility facade over the task-typed
// InferenceServer.
//
// Historically this class owned the whole serving pipeline (one global
// pattern, classification only). The pipeline now lives in
// runtime::InferenceServer — per-camera patterns, AR + REC task heads, and a
// sharded pattern→engine cache (see server.h). StreamingRuntime remains as
// the convenient classification-only view: it forwards cameras and
// configuration to an owned InferenceServer and narrows the typed
// TaskResults back to the legacy InferenceResult rows. New code should use
// InferenceServer directly; see src/runtime/README.md for the migration map.
#pragma once

#include <memory>
#include <vector>

#include "core/snappix.h"
#include "runtime/server.h"

namespace snappix::runtime {

struct RuntimeConfig {
  BatchPolicy batch;
  std::size_t queue_capacity = 64;
  // 0 = one producer thread per camera (see StreamScheduler for the
  // semantics of an explicit smaller cap).
  int scheduler_threads = 0;
  InferenceBackend backend = InferenceBackend::kFusedEngine;
  // Consumer shards + work stealing, forwarded to ServerConfig — see
  // docs/serving.md for sizing guidance.
  std::size_t shards = 1;
  bool work_stealing = true;
};

// Throws std::invalid_argument when the configuration is unusable
// (queue_capacity == 0, max_batch < 1, negative max_delay).
void validate(const RuntimeConfig& config);

struct InferenceResult {
  int camera_id = -1;
  std::int64_t sequence = -1;
  std::int64_t predicted = -1;
  std::int64_t label = -1;  // ground truth when the camera knows it
};

class StreamingRuntime {
 public:
  // The system provides the served model; its pattern is also the default
  // camera pattern. The runtime keeps a reference — the system must outlive it.
  StreamingRuntime(const core::SnapPixSystem& system, const RuntimeConfig& config = {});

  void add_camera(std::unique_ptr<CameraSource> camera);
  std::size_t camera_count() const { return server_->camera_count(); }

  // Runs every camera for `frames_per_camera` frames, serving batches on the
  // calling thread until the stream drains. One-shot. Results are returned
  // sorted by (camera_id, sequence) so runs are comparable.
  std::vector<InferenceResult> run(std::int64_t frames_per_camera);

  // Valid after run().
  RuntimeSummary summary() const { return server_->summary(); }
  FleetEnergyReport fleet_energy(const energy::EnergyModel& model,
                                 energy::WirelessTech tech) const {
    return server_->fleet_energy(model, tech);
  }

  const RuntimeStats& stats() const { return server_->stats(); }
  const RuntimeConfig& config() const { return config_; }

  // The underlying task-typed server, for callers migrating incrementally.
  InferenceServer& server() { return *server_; }
  const InferenceServer& server() const { return *server_; }

 private:
  RuntimeConfig config_;
  std::unique_ptr<InferenceServer> server_;
};

}  // namespace snappix::runtime
