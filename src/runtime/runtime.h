// StreamingRuntime: the multi-camera serving facade.
//
// Wires cameras -> StreamScheduler -> FrameQueue -> BatchAggregator ->
// batched ViT inference, with RuntimeStats instrumentation throughout:
//
//   camera threads (ThreadPool)          consumer (caller's thread)
//   ┌────────────┐  push                 ┌───────────────┐
//   │ capture+CE ├───────► FrameQueue ──►│ batch, infer, │──► results
//   │  encode    │  (bounded, blocking)  │  record stats │
//   └────────────┘                       └───────────────┘
//
// Two inference backends serve a batch:
//   kFusedEngine    BatchedVitEngine — fused, allocation-free forward
//                   (bit-identical to the tape framework; the default)
//   kTapeFramework  SnapPixSystem::classify_logits_coded — the tape-based
//                   per-op path; batch-1 with this backend is the naive
//                   sequential serving baseline benchmarks compare against
#pragma once

#include <memory>
#include <vector>

#include "core/snappix.h"
#include "runtime/batcher.h"
#include "runtime/camera.h"
#include "runtime/engine.h"
#include "runtime/frame_queue.h"
#include "runtime/scheduler.h"
#include "runtime/stats.h"

namespace snappix::runtime {

enum class InferenceBackend { kFusedEngine, kTapeFramework };

struct RuntimeConfig {
  BatchPolicy batch;
  std::size_t queue_capacity = 64;
  // 0 = one producer thread per camera (see StreamScheduler for the
  // semantics of an explicit smaller cap).
  int scheduler_threads = 0;
  InferenceBackend backend = InferenceBackend::kFusedEngine;
};

struct InferenceResult {
  int camera_id = -1;
  std::int64_t sequence = -1;
  std::int64_t predicted = -1;
  std::int64_t label = -1;  // ground truth when the camera knows it
};

class StreamingRuntime {
 public:
  // The system provides the served model; its pattern is also the default
  // camera pattern. The runtime keeps a reference — the system must outlive it.
  StreamingRuntime(const core::SnapPixSystem& system, const RuntimeConfig& config = {});

  void add_camera(std::unique_ptr<CameraSource> camera);
  std::size_t camera_count() const { return scheduler_.camera_count(); }

  // Runs every camera for `frames_per_camera` frames, serving batches on the
  // calling thread until the stream drains. One-shot. Results are returned
  // sorted by (camera_id, sequence) so runs are comparable.
  std::vector<InferenceResult> run(std::int64_t frames_per_camera);

  // Valid after run().
  RuntimeSummary summary() const;
  FleetEnergyReport fleet_energy(const energy::EnergyModel& model,
                                 energy::WirelessTech tech) const;

  const RuntimeStats& stats() const { return stats_; }
  const RuntimeConfig& config() const { return config_; }

 private:
  const core::SnapPixSystem& system_;
  RuntimeConfig config_;
  std::unique_ptr<BatchedVitEngine> engine_;  // null for kTapeFramework
  FrameQueue queue_;
  RuntimeStats stats_;
  StreamScheduler scheduler_;
  double wall_seconds_ = 0.0;
  std::int64_t pixels_per_frame_ = 0;
  bool ran_ = false;
};

}  // namespace snappix::runtime
