// CameraSource: adapters that turn the repo's scene/data/sensor components
// into per-camera coded-frame streams for the scheduler.
//
// Every camera owns its CE pattern, its Rng stream, and whatever generator or
// simulator produces its scenes, so next_frame() is deterministic given the
// camera's seed regardless of how producer threads interleave — the property
// the batching-determinism tests rely on. Four adapters:
//
//   SyntheticCameraSource  renders procedural clips and encodes them with the
//                          mathematical Eqn.-1 encoder (fast functional path)
//   DatasetCameraSource    replays a VideoDataset's test split round-robin
//   SensorCameraSource     drives the cycle-level StackedSensor simulator and
//                          reports its measured MIPI bytes on the wire
//   ReplayCameraSource     loops a pre-coded frame buffer; models an edge
//                          sensor whose capture happens off-host (serving
//                          benchmarks measure the server, not scene synthesis)
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ce/pattern.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "runtime/frame.h"
#include "sensor/sensor.h"
#include "util/rng.h"

namespace snappix::runtime {

class CameraSource {
 public:
  virtual ~CameraSource() = default;

  // Produces the camera's next coded frame (blocking, called from a producer
  // thread). Implementations fill coded/label/byte counters; the scheduler
  // stamps the timing fields.
  virtual Frame next_frame() = 0;

  int id() const { return id_; }
  const ce::CePattern& pattern() const { return pattern_; }

 protected:
  CameraSource(int id, ce::CePattern pattern);

  // Starts a Frame with identity, sequence number, and the conventional
  // (raw_bytes) vs coded (wire_bytes) readout volumes for `height` x `width`
  // at 8-bit depth across the pattern's exposure slots.
  Frame begin_frame(std::int64_t height, std::int64_t width);

  // Encodes a (T, H, W) clip with this camera's pattern and exposure-
  // normalizes it — the mathematical sensor model shared by the synthetic and
  // dataset adapters.
  Tensor encode_normalized(const Tensor& clip) const;

  int id_;
  ce::CePattern pattern_;
  std::int64_t next_sequence_ = 0;
};

// Procedural scene generator + mathematical CE encoder.
class SyntheticCameraSource : public CameraSource {
 public:
  SyntheticCameraSource(int id, const data::SceneConfig& scene, ce::CePattern pattern,
                        std::uint64_t seed);

  Frame next_frame() override;

 private:
  data::SyntheticVideoGenerator generator_;
  Rng rng_;
};

// Round-robin replay of a dataset's test split (deterministic labels).
class DatasetCameraSource : public CameraSource {
 public:
  // Starts at sample `offset` into the test split and wraps around.
  DatasetCameraSource(int id, std::shared_ptr<const data::VideoDataset> dataset,
                      ce::CePattern pattern, std::int64_t offset = 0);

  Frame next_frame() override;

 private:
  std::shared_ptr<const data::VideoDataset> dataset_;
  std::int64_t cursor_;
};

// Cycle-level hardware simulator in the loop; wire bytes come from the
// simulated MIPI link rather than the analytic estimate.
class SensorCameraSource : public CameraSource {
 public:
  SensorCameraSource(int id, const sensor::SensorConfig& sensor_config,
                     const data::SceneConfig& scene, ce::CePattern pattern,
                     std::uint64_t seed);

  Frame next_frame() override;

 private:
  sensor::StackedSensor sensor_;
  data::SyntheticVideoGenerator generator_;
  Rng rng_;
};

// Loops a pre-coded frame buffer. next_frame() is O(copy), so serving
// benchmarks measure server throughput instead of scene synthesis.
class ReplayCameraSource : public CameraSource {
 public:
  // `coded` are (H, W) exposure-normalized frames; `labels` may be empty or
  // parallel to `coded`.
  ReplayCameraSource(int id, ce::CePattern pattern, std::vector<Tensor> coded,
                     std::vector<std::int64_t> labels);

  // Pre-codes `frames` clips from `source` (exercising its full capture path
  // once per clip) and wraps them in a replay camera with the same id/pattern.
  static std::unique_ptr<ReplayCameraSource> record(CameraSource& source, int frames);

  Frame next_frame() override;

 private:
  std::vector<Tensor> coded_;
  std::vector<std::int64_t> labels_;
  std::vector<std::uint64_t> raw_bytes_;
  std::vector<std::uint64_t> wire_bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace snappix::runtime
