// CameraSource: adapters that turn the repo's scene/data/sensor components
// into per-camera coded-frame streams for the scheduler.
//
// Every camera owns a handle to its CE pattern, its Rng stream, and whatever
// generator or simulator produces its scenes, so next_frame() is deterministic
// given the camera's seed regardless of how producer threads interleave — the
// property the batching-determinism tests rely on. Patterns are held through
// `PatternRef` (shared, immutable): a fleet programmed with the system default
// shares ONE CePattern instance (take it from SnapPixSystem::pattern_ref()),
// while heterogeneous fleets give each camera its own. Each camera also
// declares the task its frames request (`set_task`): classification cameras
// and reconstruction cameras coexist on one server, and every emitted frame is
// stamped with the camera's `pattern_id` (stable CePattern::hash()) plus task
// so the server can route it. Four adapters:
//
//   SyntheticCameraSource  renders procedural clips and encodes them with the
//                          mathematical Eqn.-1 encoder (fast functional path)
//   DatasetCameraSource    replays a VideoDataset's test split round-robin
//   SensorCameraSource     drives the cycle-level StackedSensor simulator and
//                          reports its measured MIPI bytes on the wire
//   ReplayCameraSource     loops a pre-coded frame buffer; models an edge
//                          sensor whose capture happens off-host (serving
//                          benchmarks measure the server, not scene synthesis)
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ce/pattern.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "runtime/frame.h"
#include "sensor/sensor.h"
#include "transport/link.h"
#include "util/rng.h"

namespace snappix::runtime {

// Shared immutable handle to a CE pattern. Cameras, sensors, and the server's
// pattern registry all hold PatternRefs, so "every camera uses the system
// pattern" costs one allocation for the whole fleet.
using PatternRef = std::shared_ptr<const ce::CePattern>;

// Wraps a pattern value into an owning PatternRef (copies once).
inline PatternRef make_pattern_ref(ce::CePattern pattern) {
  return std::make_shared<const ce::CePattern>(std::move(pattern));
}

class CameraSource {
 public:
  virtual ~CameraSource() = default;

  // Produces the camera's next coded frame (blocking, called from a producer
  // thread). Captures via the adapter's capture_frame(), then — in framed
  // mode — serializes the coded image into CSI-2-style packets, pushes them
  // through the camera's FramedLink (byte/lane accounting + seeded fault
  // injection), and replaces `coded` with whatever the depacketizer
  // reassembled, stamping `transport` and the framed byte accounting.
  // Without framed mode the frame hops in memory unchanged.
  Frame next_frame();

  // Switches this camera onto a framed MIPI link. Call before scheduling;
  // the link (and its fault Rng) lives as long as the camera. With all fault
  // rates zero the framed path is bit-identical to the in-memory one.
  void set_framed(const transport::LinkConfig& link);
  bool framed() const { return link_ != nullptr; }
  // The camera's link, for reading its byte/outcome/injected-fault counters;
  // null when not framed. The non-const overload exists for capture-side
  // schedule hooks (tests/chaos.h flips fault rates between captures) — it is
  // only safe from the camera's own producer thread.
  const transport::FramedLink* framed_link() const { return link_.get(); }
  transport::FramedLink* framed_link() { return link_.get(); }

  // Re-runs the framed transfer of the most recently captured frame (same
  // payload, fresh fault draws), restamping the transport fields and bumping
  // frame.retransmits — the mechanism behind TransportPolicy::kRetransmit.
  // Only the frame returned by the last next_frame() call may be retried.
  void retransmit(Frame& frame);

  int id() const { return id_; }
  const ce::CePattern& pattern() const { return *pattern_; }
  const PatternRef& pattern_ref() const { return pattern_; }
  // Stable hash of this camera's pattern; stamped on every emitted frame.
  std::uint64_t pattern_id() const { return pattern_id_; }

  // Which task head this camera's frames request (default kClassify).
  Task task() const { return task_; }
  void set_task(Task task) { task_ = task; }

  // Which precision tier serves this camera's frames. Explicit set_precision
  // wins; otherwise the server's default (ServerConfig::precision, installed
  // via set_default_precision at add_camera time) applies, so a fleet can be
  // flipped to int8 wholesale or opted in per camera.
  Precision precision() const { return precision_override_.value_or(default_precision_); }
  void set_precision(Precision precision) { precision_override_ = precision; }
  bool precision_overridden() const { return precision_override_.has_value(); }
  void set_default_precision(Precision precision) { default_precision_ = precision; }

  // QoS class stamped on every emitted frame (default kStandard). Same
  // default/override split as precision: the server installs
  // ServerConfig::qos as the fleet default at add_camera time, an explicit
  // set_qos wins — so a fleet can run best-effort wholesale while its alarm
  // cameras stay realtime. See docs/serving.md for the overload semantics.
  QosClass qos() const { return qos_override_.value_or(default_qos_); }
  void set_qos(QosClass qos) { qos_override_ = qos; }
  bool qos_overridden() const { return qos_override_.has_value(); }
  void set_default_qos(QosClass qos) { default_qos_ = qos; }

  // Per-frame deadline budget: every emitted frame carries
  // deadline = capture time + budget, and the runtime sheds it (drop-late)
  // rather than serve it stale once that passes. Zero means no deadline.
  // Same default/override split as precision/qos.
  std::chrono::microseconds deadline_budget() const {
    return deadline_budget_override_.value_or(default_deadline_budget_);
  }
  void set_deadline_budget(std::chrono::microseconds budget) {
    deadline_budget_override_ = budget;
  }
  bool deadline_budget_overridden() const {
    return deadline_budget_override_.has_value();
  }
  void set_default_deadline_budget(std::chrono::microseconds budget) {
    default_deadline_budget_ = budget;
  }

  // Per-camera trace sampling period: every Nth frame (sequence % N == 0) is
  // emitted with trace_sampled set; 0 samples nothing. Same default/override
  // split as precision: the server installs its TraceConfig::sample_every as
  // the default at add_camera time, an explicit set_trace_sampling wins — so
  // one noisy camera can be traced densely while the fleet stays at 1-in-N.
  int trace_sampling() const {
    return trace_sampling_override_.value_or(default_trace_sampling_);
  }
  void set_trace_sampling(int sample_every) { trace_sampling_override_ = sample_every; }
  void set_default_trace_sampling(int sample_every) {
    default_trace_sampling_ = sample_every;
  }

  // Progressive-decode depth for kClassify frames on an entropy-coded framed
  // link (transport::LinkConfig::codec): only the top N bit-planes are
  // transmitted and decoded for classify frames (0 = full depth), while
  // kReconstruct frames always ride at full depth. Same default/override
  // split as precision: the server installs ServerConfig::classify_codec_planes
  // at add_camera time, an explicit set_codec_planes wins. Ignored on raw
  // (non-codec) links.
  int classify_codec_planes() const {
    return codec_planes_override_.value_or(default_codec_planes_);
  }
  void set_codec_planes(int planes) { codec_planes_override_ = planes; }
  bool codec_planes_overridden() const { return codec_planes_override_.has_value(); }
  void set_default_codec_planes(int planes) { default_codec_planes_ = planes; }

 protected:
  CameraSource(int id, PatternRef pattern);

  // Adapter hook: produce the next coded frame (the pre-transport capture).
  // Implementations fill coded/label/byte counters; next_frame() layers the
  // framed transport on top and the scheduler stamps the timing fields.
  virtual Frame capture_frame() = 0;

  // Starts a Frame with identity, sequence number, routing metadata
  // (pattern_id + task), and the conventional (raw_bytes) vs coded
  // (wire_bytes) readout volumes for `height` x `width` at 8-bit depth across
  // the pattern's exposure slots.
  Frame begin_frame(std::int64_t height, std::int64_t width);

  // Encodes a (T, H, W) clip with this camera's pattern and exposure-
  // normalizes it — the mathematical sensor model shared by the synthetic and
  // dataset adapters.
  Tensor encode_normalized(const Tensor& clip) const;

  int id_;
  PatternRef pattern_;
  std::uint64_t pattern_id_;
  Task task_ = Task::kClassify;
  Precision default_precision_ = Precision::kFp32;
  std::optional<Precision> precision_override_;
  QosClass default_qos_ = QosClass::kStandard;
  std::optional<QosClass> qos_override_;
  std::chrono::microseconds default_deadline_budget_{0};  // 0 = no deadline
  std::optional<std::chrono::microseconds> deadline_budget_override_;
  int default_trace_sampling_ = 0;  // 0 = tracing off for this camera
  std::optional<int> trace_sampling_override_;
  int default_codec_planes_ = 0;  // 0 = full depth on entropy-coded links
  std::optional<int> codec_planes_override_;
  std::int64_t next_sequence_ = 0;

 private:
  // Runs one framed transfer of last_coded_, restamping `frame`'s transport
  // fields and coded payload with the receiver-side view.
  void transfer_framed(Frame& frame);

  std::unique_ptr<transport::FramedLink> link_;  // null = in-memory hop
  Tensor last_coded_;        // pre-transport payload of the latest capture
  std::int64_t last_sequence_ = -1;
};

// Procedural scene generator + mathematical CE encoder.
class SyntheticCameraSource : public CameraSource {
 public:
  SyntheticCameraSource(int id, const data::SceneConfig& scene, PatternRef pattern,
                        std::uint64_t seed);
  SyntheticCameraSource(int id, const data::SceneConfig& scene, ce::CePattern pattern,
                        std::uint64_t seed)
      : SyntheticCameraSource(id, scene, make_pattern_ref(std::move(pattern)), seed) {}

 protected:
  Frame capture_frame() override;

 private:
  data::SyntheticVideoGenerator generator_;
  Rng rng_;
};

// Round-robin replay of a dataset's test split (deterministic labels).
class DatasetCameraSource : public CameraSource {
 public:
  // Starts at sample `offset` into the test split and wraps around.
  DatasetCameraSource(int id, std::shared_ptr<const data::VideoDataset> dataset,
                      PatternRef pattern, std::int64_t offset = 0);
  DatasetCameraSource(int id, std::shared_ptr<const data::VideoDataset> dataset,
                      ce::CePattern pattern, std::int64_t offset = 0)
      : DatasetCameraSource(id, std::move(dataset), make_pattern_ref(std::move(pattern)),
                            offset) {}

 protected:
  Frame capture_frame() override;

 private:
  std::shared_ptr<const data::VideoDataset> dataset_;
  std::int64_t cursor_;
};

// Cycle-level hardware simulator in the loop; wire bytes come from the
// simulated MIPI link rather than the analytic estimate. The camera and its
// StackedSensor share one pattern instance.
class SensorCameraSource : public CameraSource {
 public:
  SensorCameraSource(int id, const sensor::SensorConfig& sensor_config,
                     const data::SceneConfig& scene, PatternRef pattern, std::uint64_t seed);
  SensorCameraSource(int id, const sensor::SensorConfig& sensor_config,
                     const data::SceneConfig& scene, ce::CePattern pattern,
                     std::uint64_t seed)
      : SensorCameraSource(id, sensor_config, scene, make_pattern_ref(std::move(pattern)),
                           seed) {}

  const sensor::StackedSensor& sensor() const { return sensor_; }

 protected:
  Frame capture_frame() override;

 private:
  sensor::StackedSensor sensor_;
  data::SyntheticVideoGenerator generator_;
  Rng rng_;
};

// Loops a pre-coded frame buffer. next_frame() is O(copy), so serving
// benchmarks measure server throughput instead of scene synthesis.
class ReplayCameraSource : public CameraSource {
 public:
  // `coded` are (H, W) exposure-normalized frames; `labels` may be empty or
  // parallel to `coded`.
  ReplayCameraSource(int id, PatternRef pattern, std::vector<Tensor> coded,
                     std::vector<std::int64_t> labels);
  ReplayCameraSource(int id, ce::CePattern pattern, std::vector<Tensor> coded,
                     std::vector<std::int64_t> labels)
      : ReplayCameraSource(id, make_pattern_ref(std::move(pattern)), std::move(coded),
                           std::move(labels)) {}

  // Pre-codes `frames` clips from `source` (exercising its full capture path
  // once per clip) and wraps them in a replay camera sharing the same
  // id/pattern handle/task.
  static std::unique_ptr<ReplayCameraSource> record(CameraSource& source, int frames);

 protected:
  Frame capture_frame() override;

 private:
  std::vector<Tensor> coded_;
  std::vector<std::int64_t> labels_;
  std::vector<std::uint64_t> raw_bytes_;
  std::vector<std::uint64_t> wire_bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace snappix::runtime
