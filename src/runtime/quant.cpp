#include "runtime/quant.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "ce/encode.h"
#include "data/synthetic.h"
#include "runtime/engine.h"
#include "tensor/gemm_s8.h"
#include "util/common.h"
#include "util/rng.h"

namespace snappix::runtime {

namespace {

float scale_from(float absmax_value) { return detail::symmetric_scale(absmax_value); }

}  // namespace

QuantSpec calibrate(const models::SnapPixClassifier& classifier,
                    const models::SnapPixReconstructor& reconstructor, const Tensor& coded) {
  const models::ViTConfig& config = classifier.encoder()->config();
  if (coded.ndim() != 3 || coded.shape()[0] < 1 || coded.shape()[1] != config.image_h ||
      coded.shape()[2] != config.image_w) {
    throw std::invalid_argument(
        "calibrate() needs at least one (B, H, W) coded frame matching the model geometry, "
        "got " +
        coded.shape().to_string());
  }

  // The observed activations ARE the fp32 engine's activations: the ranges
  // come out of the exact serving path the int8 tier approximates, not a
  // re-implementation that could drift.
  NoGradGuard guard;
  BatchedVitEngine engine(classifier, reconstructor,
                          static_cast<int>(std::min<std::int64_t>(coded.shape()[0], 64)));
  ActivationRanges ranges;
  engine.collect_activation_ranges(coded, ranges);

  QuantSpec spec;
  spec.embed_in = scale_from(ranges.embed_in);
  spec.blocks.resize(ranges.blocks.size());
  for (std::size_t i = 0; i < ranges.blocks.size(); ++i) {
    spec.blocks[i].qkv_in = scale_from(ranges.blocks[i].qkv_in);
    spec.blocks[i].proj_in = scale_from(ranges.blocks[i].proj_in);
    spec.blocks[i].fc1_in = scale_from(ranges.blocks[i].fc1_in);
    spec.blocks[i].gelu_in = scale_from(ranges.blocks[i].gelu_in);
    spec.blocks[i].fc2_in = scale_from(ranges.blocks[i].fc2_in);
  }
  spec.head_in = scale_from(ranges.head_in);
  spec.rec_in = scale_from(ranges.rec_in);
  spec.calibration_frames = coded.shape()[0];
  return spec;
}

Tensor make_calibration_frames(const ce::CePattern& pattern, std::int64_t image_h,
                               std::int64_t image_w, const QuantCalibration& config) {
  if (config.frames < 1) {
    throw std::invalid_argument("QuantCalibration.frames must be >= 1, got " +
                                std::to_string(config.frames));
  }
  data::SceneConfig scene;
  scene.frames = pattern.slots();
  scene.height = static_cast<int>(image_h);
  scene.width = static_cast<int>(image_w);
  data::SyntheticVideoGenerator generator(scene);
  Rng rng(config.seed);

  NoGradGuard guard;
  std::vector<float> frames(static_cast<std::size_t>(config.frames) *
                            static_cast<std::size_t>(image_h * image_w));
  for (int i = 0; i < config.frames; ++i) {
    const data::VideoSample sample = generator.sample(rng);
    // The same edge-side path camera frames take: CE-encode with the
    // pattern, then exposure-normalize.
    const Tensor clip = Tensor::from_vector(
        sample.video.data(), Shape{1, sample.video.shape()[0], sample.video.shape()[1],
                                   sample.video.shape()[2]});
    const Tensor coded = ce::normalize_by_exposure(ce::ce_encode(clip, pattern), pattern);
    std::copy(coded.data().begin(), coded.data().end(),
              frames.begin() + static_cast<std::int64_t>(i) * image_h * image_w);
  }
  return Tensor::from_vector(std::move(frames),
                             Shape{config.frames, image_h, image_w});
}

}  // namespace snappix::runtime
