#include "runtime/camera.h"

#include <utility>

#include "ce/encode.h"
#include "util/common.h"

namespace snappix::runtime {

CameraSource::CameraSource(int id, PatternRef pattern)
    : id_(id), pattern_(std::move(pattern)) {
  SNAPPIX_CHECK(pattern_ != nullptr, "camera " << id << " needs a CE pattern");
  pattern_id_ = pattern_->hash();  // computed once, stamped on every frame
}

Frame CameraSource::next_frame() {
  Frame frame = capture_frame();
  if (link_ != nullptr) {
    // Kept for TransportPolicy::kRetransmit; a move, since transfer_framed
    // replaces frame.coded with the receiver-side reassembly anyway.
    last_coded_ = std::move(frame.coded);
    last_sequence_ = frame.sequence;
    if (link_->config().codec) {
      // Classify rides the truncated plane stream; reconstruct needs every
      // plane. Set before the first attempt so retransmits reuse the depth.
      const int planes = frame.task == Task::kClassify ? classify_codec_planes() : 0;
      link_->set_codec_planes(planes);
      frame.decode_depth = static_cast<std::uint8_t>(planes);
    }
    frame.transport_start = Clock::now();
    transfer_framed(frame);
    frame.transport_end = Clock::now();
  }
  return frame;
}

void CameraSource::set_framed(const transport::LinkConfig& link) {
  link_ = std::make_unique<transport::FramedLink>(link);
}

void CameraSource::retransmit(Frame& frame) {
  SNAPPIX_CHECK(link_ != nullptr, "camera " << id_ << " is not framed");
  SNAPPIX_CHECK(frame.camera_id == id_ && frame.sequence == last_sequence_,
                "camera " << id_ << " can only retransmit its latest frame (sequence "
                          << last_sequence_ << "), got camera " << frame.camera_id
                          << " sequence " << frame.sequence);
  const std::uint64_t prior_wire_bytes = frame.wire_bytes;
  transfer_framed(frame);
  frame.transport_end = Clock::now();  // the transport span absorbs retries
  // Every attempt's bytes crossed the wire; the frame's traffic accumulates
  // (raw_bytes stays per-attempt: a conventional pipeline has no retries).
  frame.wire_bytes += prior_wire_bytes;
  ++frame.retransmits;
}

namespace {

TransportStatus to_status(transport::RxOutcome outcome) {
  switch (outcome) {
    case transport::RxOutcome::kOk:
      return TransportStatus::kFramedOk;
    case transport::RxOutcome::kCrcError:
      return TransportStatus::kCrcError;
    case transport::RxOutcome::kTruncated:
      return TransportStatus::kTruncated;
    default:
      return TransportStatus::kMissingLines;
  }
}

}  // namespace

void CameraSource::transfer_framed(Frame& frame) {
  transport::TransferResult result =
      link_->transfer(last_coded_, static_cast<std::uint16_t>(frame.sequence & 0xFFFF));
  frame.transport = to_status(result.outcome);
  // The receiver only ever has what the wire delivered — corrupt transfers
  // hand over the partial/damaged reassembly, not the transmitter's tensor.
  frame.coded = std::move(result.coded);
  // Framed accounting replaces the analytic estimate on BOTH sides of the
  // ratio, keeping it an apples-to-apples transport comparison: wire_bytes
  // is the coded frame as actually framed (float32 payload + header/CRC/
  // short-packet overhead), raw_bytes is what a conventional pipeline would
  // ship over the SAME framed link — all T slot frames, identically framed.
  // The compression ratio therefore stays T, as in the analytic model.
  frame.wire_bytes = result.wire_bytes;
  frame.raw_bytes = result.wire_bytes * static_cast<std::uint64_t>(pattern_->slots());
  frame.decoded_planes = result.decoded_planes;
  frame.total_planes = result.total_planes;
}

Frame CameraSource::begin_frame(std::int64_t height, std::int64_t width) {
  Frame frame;
  frame.camera_id = id_;
  frame.sequence = next_sequence_++;
  frame.pattern_id = pattern_id_;
  frame.task = task_;
  frame.precision = precision();
  frame.qos = qos();
  // Deadline at capture: the budget covers the frame's WHOLE journey
  // (capture, transport, queueing, batching, inference) — a frame that
  // misses it anywhere downstream is shed rather than served stale.
  const std::chrono::microseconds budget = deadline_budget();
  if (budget.count() > 0) {
    frame.deadline = Clock::now() + budget;
  }
  const int sample_every = trace_sampling();
  frame.trace_sampled = sample_every > 0 && frame.sequence % sample_every == 0;
  // 8-bit readout: a conventional pipeline ships all T slot frames, the CE
  // sensor ships one coded image of the same geometry.
  frame.wire_bytes = static_cast<std::uint64_t>(height * width);
  frame.raw_bytes = frame.wire_bytes * static_cast<std::uint64_t>(pattern_->slots());
  return frame;
}

Tensor CameraSource::encode_normalized(const Tensor& clip) const {
  NoGradGuard guard;
  const Tensor batched = Tensor::from_vector(
      clip.data(), Shape{1, clip.shape()[0], clip.shape()[1], clip.shape()[2]});
  const Tensor coded = ce::normalize_by_exposure(ce::ce_encode(batched, *pattern_), *pattern_);
  return Tensor::from_vector(coded.data(), Shape{clip.shape()[1], clip.shape()[2]});
}

// --- SyntheticCameraSource ---------------------------------------------------

SyntheticCameraSource::SyntheticCameraSource(int id, const data::SceneConfig& scene,
                                             PatternRef pattern, std::uint64_t seed)
    : CameraSource(id, std::move(pattern)), generator_(scene), rng_(seed) {
  SNAPPIX_CHECK(scene.frames == pattern_->slots(),
                "camera " << id << ": scene frames " << scene.frames
                          << " != pattern slots " << pattern_->slots());
}

Frame SyntheticCameraSource::capture_frame() {
  const data::VideoSample sample = generator_.sample(rng_);
  Frame frame = begin_frame(sample.video.shape()[1], sample.video.shape()[2]);
  frame.coded = encode_normalized(sample.video);
  frame.label = sample.label;
  return frame;
}

// --- DatasetCameraSource -----------------------------------------------------

DatasetCameraSource::DatasetCameraSource(int id,
                                         std::shared_ptr<const data::VideoDataset> dataset,
                                         PatternRef pattern, std::int64_t offset)
    : CameraSource(id, std::move(pattern)), dataset_(std::move(dataset)), cursor_(offset) {
  SNAPPIX_CHECK(dataset_ != nullptr && dataset_->test_size() > 0,
                "camera " << id << ": dataset has no test samples");
  SNAPPIX_CHECK(offset >= 0, "camera " << id << ": negative dataset offset " << offset);
  cursor_ %= dataset_->test_size();
}

Frame DatasetCameraSource::capture_frame() {
  const data::VideoSample& sample = dataset_->test_sample(cursor_);
  cursor_ = (cursor_ + 1) % dataset_->test_size();
  Frame frame = begin_frame(sample.video.shape()[1], sample.video.shape()[2]);
  frame.coded = encode_normalized(sample.video);
  frame.label = sample.label;
  return frame;
}

// --- SensorCameraSource ------------------------------------------------------

SensorCameraSource::SensorCameraSource(int id, const sensor::SensorConfig& sensor_config,
                                       const data::SceneConfig& scene, PatternRef pattern,
                                       std::uint64_t seed)
    : CameraSource(id, std::move(pattern)), sensor_(sensor_config, pattern_),
      generator_(scene), rng_(seed) {
  SNAPPIX_CHECK(scene.frames == pattern_->slots(),
                "camera " << id << ": scene frames " << scene.frames
                          << " != pattern slots " << pattern_->slots());
  SNAPPIX_CHECK(scene.height == sensor_config.height && scene.width == sensor_config.width,
                "camera " << id << ": scene geometry does not match sensor");
}

Frame SensorCameraSource::capture_frame() {
  NoGradGuard guard;
  const data::VideoSample sample = generator_.sample(rng_);
  Frame frame = begin_frame(sensor_.config().height, sensor_.config().width);
  // Cycle-level capture -> scene units -> the same exposure normalization the
  // mathematical path applies. The per-capture stats out-param keeps byte
  // attribution correct even if several cameras share one sensor instance.
  sensor::CaptureStats stats;
  const Tensor captured = sensor_.capture_normalized(sample.video, rng_, &stats);
  const Tensor batched = Tensor::from_vector(
      captured.data(), Shape{1, captured.shape()[0], captured.shape()[1]});
  const Tensor normalized = ce::normalize_by_exposure(batched, *pattern_);
  frame.coded =
      Tensor::from_vector(normalized.data(), Shape{captured.shape()[0], captured.shape()[1]});
  frame.label = sample.label;
  // Replace the analytic byte estimate with the simulated link's accounting.
  frame.wire_bytes = stats.mipi_bytes;
  frame.raw_bytes = stats.mipi_bytes * static_cast<std::uint64_t>(pattern_->slots());
  return frame;
}

// --- ReplayCameraSource ------------------------------------------------------

ReplayCameraSource::ReplayCameraSource(int id, PatternRef pattern,
                                       std::vector<Tensor> coded,
                                       std::vector<std::int64_t> labels)
    : CameraSource(id, std::move(pattern)), coded_(std::move(coded)),
      labels_(std::move(labels)) {
  SNAPPIX_CHECK(!coded_.empty(), "ReplayCameraSource needs at least one frame");
  SNAPPIX_CHECK(labels_.empty() || labels_.size() == coded_.size(),
                "labels must be empty or parallel to the frame buffer");
}

std::unique_ptr<ReplayCameraSource> ReplayCameraSource::record(CameraSource& source,
                                                               int frames) {
  SNAPPIX_CHECK(frames > 0, "record() needs a positive frame count");
  std::vector<Tensor> coded;
  std::vector<std::int64_t> labels;
  std::vector<std::uint64_t> raw;
  std::vector<std::uint64_t> wire;
  coded.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    Frame frame = source.next_frame();
    coded.push_back(std::move(frame.coded));
    labels.push_back(frame.label);
    raw.push_back(frame.raw_bytes);
    wire.push_back(frame.wire_bytes);
  }
  auto replay = std::make_unique<ReplayCameraSource>(source.id(), source.pattern_ref(),
                                                     std::move(coded), std::move(labels));
  replay->set_task(source.task());
  // Mirror the source's QoS/deadline OVERRIDES only: a replay of a camera
  // running on fleet defaults keeps following whatever defaults its server
  // installs, exactly like the source would.
  if (source.qos_overridden()) {
    replay->set_qos(source.qos());
  }
  if (source.deadline_budget_overridden()) {
    replay->set_deadline_budget(source.deadline_budget());
  }
  if (source.codec_planes_overridden()) {
    replay->set_codec_planes(source.classify_codec_planes());
  }
  replay->raw_bytes_ = std::move(raw);
  replay->wire_bytes_ = std::move(wire);
  return replay;
}

Frame ReplayCameraSource::capture_frame() {
  const std::size_t i = cursor_;
  cursor_ = (cursor_ + 1) % coded_.size();
  Frame frame = begin_frame(coded_[i].shape()[0], coded_[i].shape()[1]);
  frame.coded = coded_[i];
  if (!labels_.empty()) {
    frame.label = labels_[i];
  }
  if (!raw_bytes_.empty()) {
    frame.raw_bytes = raw_bytes_[i];
    frame.wire_bytes = wire_bytes_[i];
  }
  return frame;
}

}  // namespace snappix::runtime
