// Frame: the unit of data flowing through the streaming runtime.
//
// A frame is one typed inference request as it leaves a camera: a coded image
// (T exposure slots folded into a single (H, W) image, exposure-normalized —
// exactly the tensor the server-side ViT consumes) plus the routing metadata
// the server needs in a heterogeneous fleet: which CE pattern produced it
// (`pattern_id`, a stable content hash) and which task head should serve it
// (`task`). The byte counters carry the sensor-side accounting (what a
// conventional T-frame readout would have shipped vs. what actually went on
// the wire) so RuntimeStats can report fleet-level compression and energy
// numbers.
#pragma once

#include <chrono>
#include <cstdint>

#include "runtime/precision.h"
#include "tensor/tensor.h"

namespace snappix::runtime {

using Clock = std::chrono::steady_clock;

// The task a frame requests from the server. kClassify runs the AR
// (action-recognition) head; kReconstruct runs the per-patch REC decoder.
enum class Task : std::uint8_t { kClassify, kReconstruct };

inline const char* to_string(Task task) {
  return task == Task::kClassify ? "classify" : "reconstruct";
}

// Per-camera quality-of-service class, governing what happens to a camera's
// frames under overload. Realtime frames are never rejected at admission
// (producers block, as before) and are never stolen into a slower shard's
// tail; standard frames block on a full queue too but may be stolen;
// best-effort frames are REJECTED (shed, counted) when their queue is full
// instead of exerting backpressure — they absorb the overload so the
// higher classes keep their latency.
enum class QosClass : std::uint8_t { kRealtime, kStandard, kBestEffort };

inline const char* to_string(QosClass qos) {
  switch (qos) {
    case QosClass::kRealtime:
      return "realtime";
    case QosClass::kStandard:
      return "standard";
    default:
      return "best_effort";
  }
}

// Why a frame was shed (dropped by the runtime, never served). kQueueFull is
// admission control: a best-effort frame met a full queue. kDeadline is
// drop-late: the frame's deadline expired while it waited, so serving it
// would hand the client a stale answer. Keyed into the per-camera,
// per-reason shed counters (snappix_shed_frames_total) and the trace's
// "shed" events.
enum class ShedReason : std::uint8_t { kQueueFull, kDeadline };

inline const char* to_string(ShedReason reason) {
  return reason == ShedReason::kQueueFull ? "queue_full" : "deadline";
}

// How the frame's coded image reached the server. kInMemory is the direct
// tensor hop (no transport modeled); the framed states mirror
// transport::RxOutcome for frames that crossed a framed MIPI link
// (src/transport/): kFramedOk round-tripped bit-exactly, the rest name the
// fault class that corrupted the frame.
enum class TransportStatus : std::uint8_t {
  kInMemory,
  kFramedOk,
  kCrcError,
  kTruncated,
  kMissingLines,
};

inline const char* to_string(TransportStatus status) {
  switch (status) {
    case TransportStatus::kInMemory:
      return "in_memory";
    case TransportStatus::kFramedOk:
      return "framed_ok";
    case TransportStatus::kCrcError:
      return "crc_error";
    case TransportStatus::kTruncated:
      return "truncated";
    default:
      return "missing_lines";
  }
}

// True when the framed transfer failed to deliver the frame intact — the
// states the server's TransportPolicy (drop or retransmit) acts on.
inline bool is_corrupt(TransportStatus status) {
  return status == TransportStatus::kCrcError || status == TransportStatus::kTruncated ||
         status == TransportStatus::kMissingLines;
}

// Link-health state of a camera, as tracked by the fleet HealthController
// (runtime/health.h) from windowed transport counters. kHealthy serves at
// the camera's configured fidelity; kDegraded has the degradation ladder
// engaged (lower codec depth / int8 / best-effort); kQuarantined pauses
// capture entirely for a hold period; kRecovering is stepping back up the
// ladder on sustained clean windows. See docs/resilience.md.
enum class HealthState : std::uint8_t {
  kHealthy,
  kDegraded,
  kQuarantined,
  kRecovering,
};

inline const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kQuarantined:
      return "quarantined";
    default:
      return "recovering";
  }
}

// Why a BatchAggregator closed a batch. Recorded per batch for the per-reason
// counters in ShardStatsView / the metrics registry and stamped on the trace
// span, so a latency regression can be attributed to policy (deadline
// flushes) vs load (full batches) vs drain/steal behavior.
enum class FlushReason : std::uint8_t {
  kMaxBatch,    // batch reached BatchPolicy::max_batch
  kMaxLatency,  // max_delay elapsed before the batch filled
  kExhausted,   // the queue closed and drained mid-batch
  kHoldback,    // a frame with a different serving key closed the batch
  kSteal,       // the batch was stolen from a sibling's queue tail
};

inline const char* to_string(FlushReason reason) {
  switch (reason) {
    case FlushReason::kMaxBatch:
      return "max_batch";
    case FlushReason::kMaxLatency:
      return "max_latency";
    case FlushReason::kExhausted:
      return "exhausted";
    case FlushReason::kHoldback:
      return "holdback";
    default:
      return "steal";
  }
}

struct Frame {
  int camera_id = -1;
  std::int64_t sequence = -1;  // per-camera frame index, starts at 0
  Tensor coded;                // (H, W) exposure-normalized coded image
  std::int64_t label = -1;     // ground-truth motion class, -1 when unknown

  // Stable hash of the CE pattern that coded this frame (CePattern::hash()).
  // The server resolves it to per-pattern serving state through the
  // EngineCache; batches never mix pattern ids.
  std::uint64_t pattern_id = 0;
  Task task = Task::kClassify;
  // Which engine tier serves this frame (see precision.h). Part of the
  // serving key: batches never mix precisions, and the EngineCache keeps one
  // entry per (pattern_id, precision).
  Precision precision = Precision::kFp32;

  // QoS class inherited from the camera (see QosClass above). Stamped at
  // capture; read by FrameQueue admission, the EDF dequeue policy, and the
  // steal path (realtime frames are never stolen).
  QosClass qos = QosClass::kStandard;
  // Absolute serving deadline, stamped at capture as capture_start +
  // the camera's deadline budget. time_point{} (the epoch) means "no
  // deadline" — the frame is served whenever its turn comes. A frame whose
  // deadline has passed is shed at dequeue (drop-late), never served stale.
  Clock::time_point deadline{};

  bool has_deadline() const { return deadline != Clock::time_point{}; }
  bool expired(Clock::time_point now) const { return has_deadline() && deadline < now; }

  std::uint64_t raw_bytes = 0;   // conventional T-frame readout volume
  std::uint64_t wire_bytes = 0;  // coded-image volume actually transmitted
                                 // (framed mode: total framed bytes, overhead included)

  // Transport outcome of the LAST framed transfer attempt (kInMemory when the
  // camera is not framed), plus the retry accounting. Finer receiver-side
  // detail (per-row CRC failures, lost packets) lives on the camera's
  // FramedLink counters, not on every frame.
  TransportStatus transport = TransportStatus::kInMemory;
  std::uint16_t retransmits = 0;  // framed re-transfers spent on this frame

  // Progressive-decode depth (entropy-coded links only, all zero otherwise).
  // `decode_depth` is the CONFIGURED plane cap the camera applied to this
  // frame (0 = full depth) — part of the serving key, so frames decoded at
  // different fidelity never share a batch. `decoded_planes`/`total_planes`
  // report what the link actually achieved, for stats and tracing; they vary
  // per frame (the bit depth depends on the frame's max magnitude) and are
  // deliberately NOT part of the key.
  std::uint8_t decode_depth = 0;
  std::uint8_t decoded_planes = 0;
  std::uint8_t total_planes = 0;

  // Trace context: true when this frame was selected by its camera's 1-in-N
  // trace sampling. The serving shard synthesizes the frame's full lifecycle
  // spans (capture/transport/queue_wait/batch_assembly/infer) from the
  // timestamps below, so sampling a frame costs one bool at capture time and
  // the span emission rides on the shard worker, off the camera threads.
  bool trace_sampled = false;

  Clock::time_point capture_start{};    // camera began producing this frame
  Clock::time_point capture_end{};      // capture + transport retries finished
  Clock::time_point transport_start{};  // first framed transfer began (framed only)
  Clock::time_point transport_end{};    // last framed transfer ended (framed only)
  Clock::time_point enqueue_time{};     // frame entered the FrameQueue
  Clock::time_point dequeue_time{};     // aggregator popped it (even if held back)
};

}  // namespace snappix::runtime
