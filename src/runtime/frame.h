// Frame: the unit of data flowing through the streaming runtime.
//
// A frame is one coded image as it leaves a camera: already CE-compressed
// (T exposure slots folded into a single (H, W) image) and exposure-
// normalized, i.e. exactly the tensor the server-side ViT consumes. The
// byte counters carry the sensor-side accounting (what a conventional
// T-frame readout would have shipped vs. what actually went on the wire) so
// RuntimeStats can report fleet-level compression and energy numbers.
#pragma once

#include <chrono>
#include <cstdint>

#include "tensor/tensor.h"

namespace snappix::runtime {

using Clock = std::chrono::steady_clock;

struct Frame {
  int camera_id = -1;
  std::int64_t sequence = -1;  // per-camera frame index, starts at 0
  Tensor coded;                // (H, W) exposure-normalized coded image
  std::int64_t label = -1;     // ground-truth motion class, -1 when unknown

  std::uint64_t raw_bytes = 0;   // conventional T-frame readout volume
  std::uint64_t wire_bytes = 0;  // coded-image volume actually transmitted

  Clock::time_point capture_start{};  // camera began producing this frame
  Clock::time_point enqueue_time{};   // frame entered the FrameQueue
};

}  // namespace snappix::runtime
