#include "runtime/health.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "codec/bitplane.h"
#include "util/common.h"

namespace snappix::runtime {

const char* to_string(LadderStep::Kind kind) {
  switch (kind) {
    case LadderStep::Kind::kCodecPlanes:
      return "codec_planes";
    case LadderStep::Kind::kInt8Precision:
      return "int8_precision";
    default:
      return "best_effort_qos";
  }
}

std::vector<LadderStep> default_ladder() {
  return {
      {LadderStep::Kind::kCodecPlanes, 4},
      {LadderStep::Kind::kInt8Precision, 0},
      {LadderStep::Kind::kBestEffortQos, 0},
  };
}

namespace {

void check_rate(double rate, const char* name) {
  if (!std::isfinite(rate) || rate <= 0.0 || rate > 1.0) {
    std::ostringstream os;
    os << "HealthConfig." << name << " must be a finite rate in (0, 1], got " << rate;
    throw std::invalid_argument(os.str());
  }
}

}  // namespace

void validate(const HealthConfig& config) {
  if (!config.enabled) {
    return;  // disabled configs are inert; garbage in them cannot act
  }
  if (config.window <= 0) {
    throw std::invalid_argument("HealthConfig.window must be positive");
  }
  check_rate(config.degrade_error_rate, "degrade_error_rate");
  check_rate(config.quarantine_error_rate, "quarantine_error_rate");
  if (config.quarantine_error_rate < config.degrade_error_rate) {
    throw std::invalid_argument(
        "HealthConfig.quarantine_error_rate must be >= degrade_error_rate");
  }
  if (!std::isfinite(config.degrade_retransmit_rate) ||
      config.degrade_retransmit_rate <= 0.0) {
    throw std::invalid_argument(
        "HealthConfig.degrade_retransmit_rate must be finite and positive");
  }
  if (config.quarantine_consecutive_losses <= 0) {
    throw std::invalid_argument(
        "HealthConfig.quarantine_consecutive_losses must be positive");
  }
  if (config.quarantine_hold <= 0) {
    throw std::invalid_argument("HealthConfig.quarantine_hold must be positive");
  }
  if (config.recover_clean_windows <= 0) {
    throw std::invalid_argument("HealthConfig.recover_clean_windows must be positive");
  }
  for (const LadderStep& rung : config.ladder) {
    if (rung.kind == LadderStep::Kind::kCodecPlanes &&
        (rung.codec_planes < 1 || rung.codec_planes > codec::kMaxBitplanes)) {
      std::ostringstream os;
      os << "HealthConfig ladder codec rung depth must be in [1, "
         << codec::kMaxBitplanes << "], got " << rung.codec_planes;
      throw std::invalid_argument(os.str());
    }
  }
  if (config.watchdog.enabled) {
    if (config.watchdog.poll.count() <= 0) {
      throw std::invalid_argument("WatchdogConfig.poll must be positive");
    }
    if (config.watchdog.stall_polls <= 0) {
      throw std::invalid_argument("WatchdogConfig.stall_polls must be positive");
    }
  }
}

HealthController::HealthController(const HealthConfig& config, RuntimeStats& stats)
    : config_(config), stats_(stats) {
  validate(config_);
  SNAPPIX_CHECK(config_.enabled, "HealthController built from a disabled config");
}

void HealthController::attach(CameraSource& camera) {
  SNAPPIX_CHECK(cameras_.find(camera.id()) == cameras_.end(),
                "camera " << camera.id() << " attached twice");
  auto entry = std::make_unique<Entry>();
  entry->camera_id = camera.id();
  entry->camera = &camera;
  // What "full fidelity" means for THIS camera: whatever was effective when
  // it joined the fleet (server default or per-camera override).
  entry->base_codec_planes = camera.classify_codec_planes();
  entry->base_precision = camera.precision();
  entry->base_qos = camera.qos();
  cameras_.emplace(camera.id(), std::move(entry));
}

bool HealthController::attached(int camera_id) const { return find(camera_id) != nullptr; }

HealthController::Entry* HealthController::find(int camera_id) {
  auto it = cameras_.find(camera_id);
  return it == cameras_.end() ? nullptr : it->second.get();
}

const HealthController::Entry* HealthController::find(int camera_id) const {
  auto it = cameras_.find(camera_id);
  return it == cameras_.end() ? nullptr : it->second.get();
}

void HealthController::transition(Entry& entry, HealthState to) {
  const HealthState from = entry.state.load(std::memory_order_relaxed);
  if (from == to) {
    return;
  }
  entry.state.store(to, std::memory_order_release);
  entry.transitions.fetch_add(1, std::memory_order_relaxed);
  stats_.record_health_transition(entry.camera_id, from, to);
  if (hook_) {
    hook_(entry.camera_id, from, to, entry.ladder_step.load(std::memory_order_relaxed));
  }
}

void HealthController::set_ladder_step(Entry& entry, int step, bool down) {
  CameraSource& camera = *entry.camera;
  for (std::size_t r = 0; r < config_.ladder.size(); ++r) {
    const LadderStep& rung = config_.ladder[r];
    const bool engaged = static_cast<int>(r) < step;
    switch (rung.kind) {
      case LadderStep::Kind::kCodecPlanes:
        camera.set_codec_planes(engaged ? rung.codec_planes : entry.base_codec_planes);
        break;
      case LadderStep::Kind::kInt8Precision:
        camera.set_precision(engaged ? Precision::kInt8 : entry.base_precision);
        break;
      case LadderStep::Kind::kBestEffortQos:
        camera.set_qos(engaged ? QosClass::kBestEffort : entry.base_qos);
        break;
    }
  }
  entry.ladder_step.store(step, std::memory_order_release);
  (down ? entry.steps_down : entry.steps_up).fetch_add(1, std::memory_order_relaxed);
  stats_.record_ladder_step(entry.camera_id, down, step);
}

void HealthController::quarantine(Entry& entry) {
  entry.quarantine_remaining = config_.quarantine_hold;
  entry.window_frames = 0;
  entry.window_errors = 0;
  entry.window_retransmits = 0;
  entry.consecutive_losses = 0;
  entry.clean_windows = 0;
  transition(entry, HealthState::kQuarantined);
}

bool HealthController::admit_capture(int camera_id) {
  Entry* entry = find(camera_id);
  if (entry == nullptr ||
      entry->state.load(std::memory_order_relaxed) != HealthState::kQuarantined) {
    return true;
  }
  // The hold is denominated in skipped capture opportunities, so a fleet
  // budgeted at N frames per camera spends exactly N admit_capture calls
  // whether or not quarantine struck (conservation: offered == served +
  // shed + transport drops + quarantine drops).
  entry->quarantine_drops.fetch_add(1, std::memory_order_relaxed);
  stats_.record_quarantine_drop(camera_id);
  if (--entry->quarantine_remaining <= 0) {
    transition(*entry, HealthState::kRecovering);
  }
  return false;
}

void HealthController::on_frame(CameraSource& camera, bool corrupt, int retransmits) {
  Entry* entry = find(camera.id());
  if (entry == nullptr) {
    return;
  }
  Entry& e = *entry;
  ++e.window_frames;
  e.window_errors += corrupt ? 1 : 0;
  e.window_retransmits += retransmits;
  e.consecutive_losses = corrupt ? e.consecutive_losses + 1 : 0;

  // Mid-window tripwire: a run of consecutive final losses means the link is
  // effectively down — waiting for the window to close just burns retries.
  if (e.consecutive_losses >= config_.quarantine_consecutive_losses) {
    quarantine(e);
    return;
  }
  if (e.window_frames < config_.window) {
    return;
  }

  const double window = static_cast<double>(config_.window);
  const double error_rate = static_cast<double>(e.window_errors) / window;
  const double retransmit_rate = static_cast<double>(e.window_retransmits) / window;
  e.window_frames = 0;
  e.window_errors = 0;
  e.window_retransmits = 0;

  const bool bad = error_rate >= config_.degrade_error_rate ||
                   retransmit_rate >= config_.degrade_retransmit_rate;
  const int step = e.ladder_step.load(std::memory_order_relaxed);
  if (bad) {
    e.clean_windows = 0;
    const bool rungs_left = step < static_cast<int>(config_.ladder.size());
    if (error_rate >= config_.quarantine_error_rate || !rungs_left) {
      // The link is mostly dead, or the ladder is exhausted and the window is
      // still bad: stop paying per-frame transfer + retry cost.
      quarantine(e);
      return;
    }
    set_ladder_step(e, step + 1, /*down=*/true);
    transition(e, HealthState::kDegraded);
    return;
  }

  // Clean window. Hysteresis: each upward step needs `recover_clean_windows`
  // consecutive clean windows, so a flapping link cannot oscillate the knobs
  // at window rate.
  if (step == 0) {
    transition(e, HealthState::kHealthy);  // no-op when already healthy
    return;
  }
  if (++e.clean_windows >= config_.recover_clean_windows) {
    e.clean_windows = 0;
    set_ladder_step(e, step - 1, /*down=*/false);
    transition(e, step - 1 == 0 ? HealthState::kHealthy : HealthState::kRecovering);
  }
}

HealthState HealthController::state(int camera_id) const {
  const Entry* entry = find(camera_id);
  return entry == nullptr ? HealthState::kHealthy
                          : entry->state.load(std::memory_order_acquire);
}

CameraHealthSnapshot HealthController::snapshot(int camera_id) const {
  CameraHealthSnapshot snap;
  const Entry* entry = find(camera_id);
  if (entry == nullptr) {
    return snap;
  }
  snap.state = entry->state.load(std::memory_order_acquire);
  snap.ladder_step = entry->ladder_step.load(std::memory_order_acquire);
  snap.transitions = entry->transitions.load(std::memory_order_relaxed);
  snap.steps_down = entry->steps_down.load(std::memory_order_relaxed);
  snap.steps_up = entry->steps_up.load(std::memory_order_relaxed);
  snap.quarantine_drops = entry->quarantine_drops.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace snappix::runtime
