// BatchAggregator: coalesces frames from many cameras into server batches
// under a max-batch-size / max-latency policy, never mixing serving keys.
//
// The aggregator pops one frame (blocking), then keeps popping until either
// the batch is full or `max_delay` has elapsed since the batch opened — the
// standard serving trade-off: larger batches amortize per-dispatch cost,
// the deadline bounds how long an early frame can sit waiting for company.
//
// Heterogeneous fleets add a constraint: a batch runs through ONE engine with
// ONE task head at ONE precision, so coalescing must never cross a
// (pattern_id, task, precision) boundary. When a frame with a different key
// arrives mid-batch it is held back (one-frame holdback, preserving global
// FIFO order) and opens the next batch instead.
#pragma once

#include <chrono>
#include <optional>
#include <vector>

#include "runtime/frame.h"
#include "runtime/frame_queue.h"

namespace snappix::runtime {

struct BatchPolicy {
  int max_batch = 8;
  // How long an open batch may wait for more frames. Zero means "greedy":
  // take whatever is already queued, never wait.
  std::chrono::microseconds max_delay{2000};
};

// Throws std::invalid_argument with a descriptive message when the policy is
// unusable (max_batch < 1 or negative max_delay).
void validate(const BatchPolicy& policy);

// The serving key: batches are homogeneous in pattern, task, precision, AND
// progressive-decode depth — a batch runs through ONE engine, fp32/int8
// engines are distinct residents of the cache, and frames decoded at
// different plane depths are different-fidelity inputs that must not mix.
// (Depth does NOT extend the EngineCache key: the engine itself is
// depth-agnostic, the same weights serve every depth.)
struct BatchKey {
  std::uint64_t pattern_id = 0;
  Task task = Task::kClassify;
  Precision precision = Precision::kFp32;
  std::uint8_t decode_depth = 0;  // configured plane cap, 0 = full depth

  bool matches(const Frame& frame) const {
    return frame.pattern_id == pattern_id && frame.task == task &&
           frame.precision == precision && frame.decode_depth == decode_depth;
  }
};

class BatchAggregator {
 public:
  // Outcome of a bounded-wait poll_batch() call, for consumers that have
  // other work to do when their own queue runs dry (e.g. a shard worker that
  // steals from siblings while idle).
  enum class Poll {
    kBatch,      // `out` holds a batch; key via last_key()
    kIdle,       // no frame arrived by the deadline, but more may still come
    kExhausted,  // queue closed + drained and no held-back frame: terminal
  };

  BatchAggregator(FrameQueue& queue, const BatchPolicy& policy);

  // Fills `out` with the next batch (clearing it first). Returns false when
  // the queue is closed and fully drained (and no held-back frame remains).
  // Batches preserve queue FIFO order and are homogeneous in
  // (pattern_id, task); the batch's key is available via last_key().
  bool next_batch(std::vector<Frame>& out);

  // Like next_batch(), but waits for the batch's FIRST frame only until
  // `idle_deadline` instead of blocking indefinitely; once a first frame is
  // in hand the usual max_batch/max_delay policy applies. kIdle means the
  // caller should come back (or go steal); kExhausted is terminal.
  Poll poll_batch(std::vector<Frame>& out, Clock::time_point idle_deadline);

  // Key of the batch most recently returned by next_batch().
  const BatchKey& last_key() const { return last_key_; }

  // Why the batch most recently returned by next_batch()/poll_batch() was
  // closed (kMaxBatch / kMaxLatency / kExhausted / kHoldback — kSteal is
  // stamped by the server for batches that bypass the aggregator).
  FlushReason last_flush_reason() const { return last_flush_reason_; }

  // Stacks the batch's coded images into one (B, H, W) tensor.
  static Tensor stack_coded(const std::vector<Frame>& frames);

  const BatchPolicy& policy() const { return policy_; }

 private:
  // Moves the held-back frame into `first` if one exists and its deadline
  // has not passed. An expired holdback is shed (drop-late, accounted
  // through the queue) and false is returned, as if no holdback existed.
  bool take_holdback(Frame& first);

  // Shared tail of next_batch/poll_batch: grows a batch around `first` under
  // the max_batch/max_delay policy, never crossing a key boundary.
  void fill_from(Frame first, std::vector<Frame>& out);

  FrameQueue& queue_;
  BatchPolicy policy_;
  BatchKey last_key_;
  FlushReason last_flush_reason_ = FlushReason::kMaxBatch;
  // A frame popped mid-batch whose key differed: it opens the next batch.
  std::optional<Frame> holdback_;
};

}  // namespace snappix::runtime
