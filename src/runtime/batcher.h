// BatchAggregator: coalesces frames from many cameras into server batches
// under a max-batch-size / max-latency policy.
//
// The aggregator pops one frame (blocking), then keeps popping until either
// the batch is full or `max_delay` has elapsed since the batch opened — the
// standard serving trade-off: larger batches amortize per-dispatch cost,
// the deadline bounds how long an early frame can sit waiting for company.
#pragma once

#include <chrono>
#include <vector>

#include "runtime/frame.h"
#include "runtime/frame_queue.h"

namespace snappix::runtime {

struct BatchPolicy {
  int max_batch = 8;
  // How long an open batch may wait for more frames. Zero means "greedy":
  // take whatever is already queued, never wait.
  std::chrono::microseconds max_delay{2000};
};

class BatchAggregator {
 public:
  BatchAggregator(FrameQueue& queue, const BatchPolicy& policy);

  // Fills `out` with the next batch (clearing it first). Returns false when
  // the queue is closed and fully drained. Batches preserve queue FIFO order.
  bool next_batch(std::vector<Frame>& out);

  // Stacks the batch's coded images into one (B, H, W) tensor.
  static Tensor stack_coded(const std::vector<Frame>& frames);

  const BatchPolicy& policy() const { return policy_; }

 private:
  FrameQueue& queue_;
  BatchPolicy policy_;
};

}  // namespace snappix::runtime
