/// \file engine_cache.h
/// \brief EngineCache: sharded, LRU-evicting map from pattern_id to resident
/// per-pattern serving state.
///
/// A SNAPPIX deployment serves a fleet whose cameras carry *different*
/// learned CE patterns; each distinct pattern needs server-side state to
/// serve its frames — the exposure normalizer derived from the pattern bits
/// and a fused BatchedVitEngine workspace. Millions of cameras cannot each
/// keep an engine resident, so the cache bounds residency: N independent
/// shards (keyed by the pattern's stable content hash, so no cross-shard
/// coordination on the hot path) each hold at most `capacity_per_shard`
/// entries and evict the least recently used beyond that. A miss rebuilds the
/// entry through the factory the server installed; because engines are
/// deterministic snapshots of the model, an evicted-and-refetched pattern
/// serves bit-identical results.
///
/// Topology note: the cache's internal shards (EngineCacheConfig::shards)
/// are a lock-granularity knob and are unrelated to the InferenceServer's
/// CONSUMER shards — each consumer shard owns a whole private EngineCache
/// instance (its "cache view"), so concurrent workers never contend on one
/// cache, and a work-stealing thief builds its own entry for a stolen
/// pattern rather than reaching into the victim's view.
///
/// Precision tiers: entries are keyed by (pattern_id, Precision), so one
/// pattern's fp32 (bit-exact BatchedVitEngine) and int8 (calibrated
/// QuantizedVitEngine) engines coexist independently — a fleet can serve
/// some cameras at each tier. Traffic counters are kept per tier;
/// counters() sums them, counters(Precision) reads one tier.
///
/// Thread-safety: resolve() locks only the owning shard. Entries are handed
/// out as shared_ptr, so an entry evicted mid-flight stays alive until its
/// last in-flight batch completes.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ce/pattern.h"
#include "runtime/engine.h"
#include "runtime/precision.h"
#include "tensor/tensor.h"

namespace snappix::runtime {

/// \brief Cache geometry: lock shards x per-shard LRU capacity. Total
/// residency bound is shards * capacity_per_shard entries.
struct EngineCacheConfig {
  std::size_t shards = 4;
  std::size_t capacity_per_shard = 8;
};

/// \brief Monotonic traffic counters, aggregated over the cache's shards.
struct EngineCacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// \brief Precomputed exposure normalizer for one pattern: the reciprocal
/// exposure counts per within-tile pixel (never-exposed pixels map to 0).
///
/// apply() is bit-identical to ce::normalize_by_exposure — same reciprocal
/// table, same multiply — but skips recomputing the table per batch.
class PatternNormalizer {
 public:
  explicit PatternNormalizer(const ce::CePattern& pattern);

  /// \brief (B, H, W) raw coded images -> exposure-normalized (B, H, W).
  Tensor apply(const Tensor& coded) const;

  int tile() const { return tile_; }

 private:
  int tile_;
  std::vector<float> inv_counts_;  // (tile, tile) reciprocal exposure counts
};

/// \brief One resident cache entry: everything a shard worker needs to serve
/// a pattern.
///
/// Note on the normalizer: the in-repo camera adapters normalize at the edge
/// (frames arrive exposure-normalized), so the serving loop reads only
/// `engine` — do NOT apply the normalizer to frames from those cameras, that
/// would divide by the exposure counts twice. It is resident state for ingest
/// paths that ship raw coded pixels. (The framed MIPI transport in
/// src/transport/ is NOT such a path: it serializes the already-normalized
/// float32 coded image, so framed frames arrive normalized like every other.)
struct ServingEntry {
  std::shared_ptr<const ce::CePattern> pattern;
  std::unique_ptr<PatternNormalizer> normalizer;
  std::shared_ptr<VitEngine> engine;
  Precision precision = Precision::kFp32;
};

class EngineCache {
 public:
  /// \brief Builds the engine for a newly-resident (pattern, precision) pair
  /// (called under the owning shard's lock; per-shard locking keeps
  /// concurrent misses on different shards independent).
  using EngineFactory =
      std::function<std::shared_ptr<VitEngine>(const ce::CePattern&, Precision)>;

  EngineCache(const EngineCacheConfig& config, EngineFactory factory);

  /// \brief Returns the resident entry for (`pattern_id`, `precision`),
  /// building it from `pattern` on a miss and evicting the shard's LRU entry
  /// beyond capacity.
  std::shared_ptr<const ServingEntry> resolve(
      std::uint64_t pattern_id, const std::shared_ptr<const ce::CePattern>& pattern,
      Precision precision = Precision::kFp32);

  /// \brief Traffic counters aggregated over all shards and both precision
  /// tiers.
  EngineCacheCounters counters() const;
  /// \brief Traffic counters for one precision tier, aggregated over shards.
  EngineCacheCounters counters(Precision precision) const;
  /// \brief Entries currently resident, summed over shards.
  std::size_t resident() const;
  /// \brief Largest current per-shard occupancy — never exceeds
  /// capacity_per_shard.
  std::size_t max_shard_occupancy() const;

  const EngineCacheConfig& config() const { return config_; }

 private:
  /// Composite residency key: one pattern may be resident once per tier.
  struct CacheKey {
    std::uint64_t pattern_id = 0;
    Precision precision = Precision::kFp32;
    bool operator==(const CacheKey& other) const {
      return pattern_id == other.pattern_id && precision == other.precision;
    }
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const {
      // pattern_id is an FNV-1a hash, already well mixed; fold the tier bit
      // in without disturbing the shard routing (which uses pattern_id only).
      return static_cast<std::size_t>(key.pattern_id ^
                                      (0x9E3779B97F4A7C15ULL *
                                       (static_cast<std::uint64_t>(key.precision) + 1)));
    }
  };

  struct Shard {
    mutable std::mutex mutex;
    // Front = most recently used. The list owns the entries; the index maps
    // (pattern_id, precision) -> list node for O(1) touch.
    std::list<std::pair<CacheKey, std::shared_ptr<const ServingEntry>>> lru;
    std::unordered_map<CacheKey,
                       std::list<std::pair<CacheKey,
                                           std::shared_ptr<const ServingEntry>>>::iterator,
                       CacheKeyHash>
        index;
    // Indexed by Precision: [0] = kFp32, [1] = kInt8.
    EngineCacheCounters counters[2];
  };

  Shard& shard_for(std::uint64_t pattern_id);

  EngineCacheConfig config_;
  EngineFactory factory_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace snappix::runtime
