#include "runtime/frame_queue.h"

#include <algorithm>

#include "util/common.h"

namespace snappix::runtime {

FrameQueue::FrameQueue(std::size_t capacity) : capacity_(capacity) {
  SNAPPIX_CHECK(capacity > 0, "FrameQueue capacity must be positive");
}

bool FrameQueue::push(Frame frame) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [this] { return closed_ || frames_.size() < capacity_; });
  if (closed_) {
    return false;
  }
  frames_.push_back(std::move(frame));
  ++total_pushed_;
  high_water_ = std::max(high_water_, frames_.size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool FrameQueue::pop(Frame& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return closed_ || !frames_.empty(); });
  if (frames_.empty()) {
    return false;  // closed and drained
  }
  out = std::move(frames_.front());
  frames_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

bool FrameQueue::pop_until(Frame& out, Clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!not_empty_.wait_until(lock, deadline,
                             [this] { return closed_ || !frames_.empty(); })) {
    return false;  // timed out
  }
  if (frames_.empty()) {
    return false;  // closed and drained
  }
  out = std::move(frames_.front());
  frames_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

bool FrameQueue::steal_tail(std::vector<Frame>& out, int max_frames) {
  SNAPPIX_CHECK(max_frames > 0, "steal_tail needs max_frames >= 1, got " << max_frames);
  out.clear();
  std::size_t taken = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (frames_.empty()) {
      return false;
    }
    // Walk backwards over the maximal run sharing the tail frame's serving
    // key, capped at max_frames — the run is a contiguous suffix, so per-
    // camera sequence order inside it is preserved.
    const std::uint64_t pattern_id = frames_.back().pattern_id;
    const Task task = frames_.back().task;
    const Precision precision = frames_.back().precision;
    auto first = frames_.end();
    while (first != frames_.begin() && taken < static_cast<std::size_t>(max_frames)) {
      auto prev = std::prev(first);
      if (prev->pattern_id != pattern_id || prev->task != task ||
          prev->precision != precision) {
        break;
      }
      first = prev;
      ++taken;
    }
    out.reserve(taken);
    for (auto it = first; it != frames_.end(); ++it) {
      out.push_back(std::move(*it));
    }
    frames_.erase(first, frames_.end());
  }
  // A steal frees up to max_frames slots at once. notify_one would wake a
  // single blocked producer and strand the rest until the next pop — with
  // thieves as the only remaining consumers during shutdown, that is a
  // deadlock. Wake everyone; each re-checks capacity under the lock.
  not_full_.notify_all();
  return true;
}

void FrameQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool FrameQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t FrameQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_.size();
}

bool FrameQueue::exhausted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_ && frames_.empty();
}

std::uint64_t FrameQueue::total_pushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_pushed_;
}

std::size_t FrameQueue::high_water_mark() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

}  // namespace snappix::runtime
