#include "runtime/frame_queue.h"

#include <algorithm>

#include "util/common.h"

namespace snappix::runtime {

FrameQueue::FrameQueue(std::size_t capacity) : capacity_(capacity) {
  SNAPPIX_CHECK(capacity > 0, "FrameQueue capacity must be positive");
}

PushResult FrameQueue::admit(Frame frame) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (frame.qos == QosClass::kBestEffort) {
      // Admission control: best-effort never exerts backpressure. A full
      // queue sheds the frame right here — exactly once, exactly counted —
      // instead of stalling the producer.
      if (closed_) {
        return PushResult::kClosed;
      }
      if (frames_.size() >= capacity_) {
        ++shed_admission_;
        lock.unlock();
        if (shed_observer_) {
          shed_observer_(frame, ShedReason::kQueueFull);
        }
        return PushResult::kShed;
      }
    } else {
      // Realtime/standard: block under backpressure. A producer parked here
      // that observes close() is NOT shed — its frame simply never entered
      // the runtime (the kShed/kClosed taxonomy the regression tests pin).
      not_full_.wait(lock, [this] { return closed_ || frames_.size() < capacity_; });
      if (closed_) {
        return PushResult::kClosed;
      }
    }
    frames_.push_back(std::move(frame));
    ++total_pushed_;
    high_water_ = std::max(high_water_, frames_.size());
  }
  not_empty_.notify_one();
  return PushResult::kAccepted;
}

std::size_t FrameQueue::edf_index() const {
  // Earliest deadline first; frames without deadlines rank behind every
  // deadlined frame. Strict less on both comparisons keeps ties (and the
  // no-deadline bulk) in FIFO order, so a queue with no deadlines degrades
  // to exactly the original FIFO behavior.
  std::size_t best = 0;
  for (std::size_t i = 1; i < frames_.size(); ++i) {
    const Frame& cand = frames_[i];
    const Frame& cur = frames_[best];
    if (!cand.has_deadline()) {
      continue;
    }
    if (!cur.has_deadline() || cand.deadline < cur.deadline) {
      best = i;
    }
  }
  return best;
}

void FrameQueue::collect_expired(Clock::time_point now, std::vector<Frame>& shed) {
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->expired(now)) {
      shed.push_back(std::move(*it));
      it = frames_.erase(it);
      ++shed_expired_;
    } else {
      ++it;
    }
  }
}

void FrameQueue::report_sheds(const std::vector<Frame>& shed, ShedReason reason) const {
  if (!shed_observer_) {
    return;
  }
  for (const Frame& frame : shed) {
    shed_observer_(frame, reason);
  }
}

bool FrameQueue::pop(Frame& out) {
  std::vector<Frame> shed;
  bool got = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      not_empty_.wait(lock, [this] { return closed_ || !frames_.empty(); });
      // Drop-late: frames past their deadline are shed, never served stale.
      collect_expired(Clock::now(), shed);
      if (!frames_.empty()) {
        const std::size_t idx = edf_index();
        out = std::move(frames_[idx]);
        frames_.erase(frames_.begin() + static_cast<std::ptrdiff_t>(idx));
        got = true;
        break;
      }
      if (closed_) {
        break;  // closed and drained
      }
      // Everything present had expired; wait for fresh frames.
    }
  }
  // Sheds can free several slots at once; a single wake would strand
  // producers behind capacity the sheds already freed.
  if (!shed.empty()) {
    not_full_.notify_all();
  } else if (got) {
    not_full_.notify_one();
  }
  report_sheds(shed, ShedReason::kDeadline);
  return got;
}

bool FrameQueue::pop_until(Frame& out, Clock::time_point deadline) {
  std::vector<Frame> shed;
  bool got = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (!not_empty_.wait_until(lock, deadline,
                                 [this] { return closed_ || !frames_.empty(); })) {
        break;  // timed out
      }
      collect_expired(Clock::now(), shed);
      if (!frames_.empty()) {
        const std::size_t idx = edf_index();
        out = std::move(frames_[idx]);
        frames_.erase(frames_.begin() + static_cast<std::ptrdiff_t>(idx));
        got = true;
        break;
      }
      if (closed_) {
        break;  // closed and drained
      }
    }
  }
  if (!shed.empty()) {
    not_full_.notify_all();
  } else if (got) {
    not_full_.notify_one();
  }
  report_sheds(shed, ShedReason::kDeadline);
  return got;
}

bool FrameQueue::steal_tail(std::vector<Frame>& out, int max_frames) {
  SNAPPIX_CHECK(max_frames > 0, "steal_tail needs max_frames >= 1, got " << max_frames);
  out.clear();
  std::vector<Frame> shed;
  std::size_t taken = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Never export stale work: expired frames are shed here exactly as a pop
    // would shed them, before the key run is measured.
    collect_expired(Clock::now(), shed);
    if (frames_.empty() || frames_.back().qos == QosClass::kRealtime) {
      // Empty, or the tail is realtime — realtime frames stay on the shard
      // their camera was routed to (a thief is by construction the idler,
      // often colder shard; moving latency-critical work there inverts the
      // priority the QoS class promises).
      lock.unlock();
      if (!shed.empty()) {
        not_full_.notify_all();
      }
      report_sheds(shed, ShedReason::kDeadline);
      return false;
    }
    // Walk backwards over the maximal run sharing the tail frame's serving
    // key, capped at max_frames and stopping at any realtime frame — the run
    // is a contiguous suffix, so per-camera sequence order inside it is
    // preserved.
    const std::uint64_t pattern_id = frames_.back().pattern_id;
    const Task task = frames_.back().task;
    const Precision precision = frames_.back().precision;
    const std::uint8_t decode_depth = frames_.back().decode_depth;
    auto first = frames_.end();
    while (first != frames_.begin() && taken < static_cast<std::size_t>(max_frames)) {
      auto prev = std::prev(first);
      if (prev->pattern_id != pattern_id || prev->task != task ||
          prev->precision != precision || prev->decode_depth != decode_depth ||
          prev->qos == QosClass::kRealtime) {
        break;
      }
      first = prev;
      ++taken;
    }
    out.reserve(taken);
    for (auto it = first; it != frames_.end(); ++it) {
      out.push_back(std::move(*it));
    }
    frames_.erase(first, frames_.end());
  }
  // A steal (and any sheds above) frees up to max_frames slots at once.
  // notify_one would wake a single blocked producer and strand the rest
  // until the next pop — with thieves as the only remaining consumers during
  // shutdown, that is a deadlock. Wake everyone; each re-checks capacity
  // under the lock.
  not_full_.notify_all();
  report_sheds(shed, ShedReason::kDeadline);
  return !out.empty();
}

std::size_t FrameQueue::drain(std::vector<Frame>& out) {
  std::size_t taken = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    taken = frames_.size();
    out.reserve(out.size() + taken);
    for (Frame& frame : frames_) {
      out.push_back(std::move(frame));
    }
    frames_.clear();
    drained_ += taken;
  }
  if (taken > 0) {
    // A drain frees the whole queue at once; wake every blocked producer.
    not_full_.notify_all();
  }
  return taken;
}

bool FrameQueue::force_admit(Frame& frame) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return false;  // frame left intact: the caller sheds it honestly
    }
    frames_.push_back(std::move(frame));
    ++total_pushed_;
    high_water_ = std::max(high_water_, frames_.size());
  }
  not_empty_.notify_one();
  return true;
}

void FrameQueue::shed(const Frame& frame, ShedReason reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (reason == ShedReason::kQueueFull) {
      ++shed_admission_;
    } else {
      ++shed_expired_;
    }
  }
  if (shed_observer_) {
    shed_observer_(frame, reason);
  }
}

void FrameQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool FrameQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t FrameQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_.size();
}

bool FrameQueue::exhausted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_ && frames_.empty();
}

std::uint64_t FrameQueue::total_pushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_pushed_;
}

std::size_t FrameQueue::high_water_mark() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

std::uint64_t FrameQueue::shed_admission() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_admission_;
}

std::uint64_t FrameQueue::shed_expired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_expired_;
}

std::uint64_t FrameQueue::drained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return drained_;
}

}  // namespace snappix::runtime
