#include "runtime/frame_queue.h"

#include "util/common.h"

namespace snappix::runtime {

FrameQueue::FrameQueue(std::size_t capacity) : capacity_(capacity) {
  SNAPPIX_CHECK(capacity > 0, "FrameQueue capacity must be positive");
}

bool FrameQueue::push(Frame frame) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [this] { return closed_ || frames_.size() < capacity_; });
  if (closed_) {
    return false;
  }
  frames_.push_back(std::move(frame));
  ++total_pushed_;
  high_water_ = std::max(high_water_, frames_.size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool FrameQueue::pop(Frame& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return closed_ || !frames_.empty(); });
  if (frames_.empty()) {
    return false;  // closed and drained
  }
  out = std::move(frames_.front());
  frames_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

bool FrameQueue::pop_until(Frame& out, Clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!not_empty_.wait_until(lock, deadline,
                             [this] { return closed_ || !frames_.empty(); })) {
    return false;  // timed out
  }
  if (frames_.empty()) {
    return false;  // closed and drained
  }
  out = std::move(frames_.front());
  frames_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

void FrameQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool FrameQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t FrameQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_.size();
}

std::uint64_t FrameQueue::total_pushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_pushed_;
}

std::size_t FrameQueue::high_water_mark() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

}  // namespace snappix::runtime
