// Task metrics (top-1 accuracy, PSNR) and a throughput profiler.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace snappix::eval {

// Top-1 accuracy in [0, 1] from (B, C) logits and B labels.
float top1_accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

// Row-normalized confusion matrix counts: result[true][predicted].
std::vector<std::vector<int>> confusion_matrix(const Tensor& logits,
                                               const std::vector<std::int64_t>& labels,
                                               int num_classes);

// Peak signal-to-noise ratio in dB; `peak` is the maximum signal value.
float psnr_db(const Tensor& prediction, const Tensor& target, float peak = 1.0F);

// Wall-clock throughput of `fn` in invocations/second (Table I's
// "Inference/sec" column). Runs `warmup` untimed then `iters` timed calls.
double measure_per_second(const std::function<void()>& fn, int warmup = 2, int iters = 10);

}  // namespace snappix::eval
