#include "eval/metrics.h"

#include <chrono>
#include <cmath>
#include <limits>

#include "util/common.h"

namespace snappix::eval {

float top1_accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  SNAPPIX_CHECK(logits.ndim() == 2, "top1_accuracy expects (B, C) logits");
  const std::int64_t batch = logits.shape()[0];
  SNAPPIX_CHECK(static_cast<std::int64_t>(labels.size()) == batch,
                "label count mismatch: " << labels.size() << " vs batch " << batch);
  const auto predictions = argmax_last_axis(logits);
  std::int64_t correct = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    if (predictions[static_cast<std::size_t>(b)] == labels[static_cast<std::size_t>(b)]) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(batch);
}

std::vector<std::vector<int>> confusion_matrix(const Tensor& logits,
                                               const std::vector<std::int64_t>& labels,
                                               int num_classes) {
  SNAPPIX_CHECK(logits.ndim() == 2 && logits.shape()[1] == num_classes,
                "confusion_matrix: logits " << logits.shape().to_string() << " vs "
                                            << num_classes << " classes");
  std::vector<std::vector<int>> m(static_cast<std::size_t>(num_classes),
                                  std::vector<int>(static_cast<std::size_t>(num_classes), 0));
  const auto predictions = argmax_last_axis(logits);
  for (std::size_t b = 0; b < labels.size(); ++b) {
    const auto truth = static_cast<std::size_t>(labels[b]);
    const auto pred = static_cast<std::size_t>(predictions[b]);
    SNAPPIX_CHECK(truth < m.size(), "label " << labels[b] << " out of range");
    m[truth][pred]++;
  }
  return m;
}

float psnr_db(const Tensor& prediction, const Tensor& target, float peak) {
  SNAPPIX_CHECK(prediction.shape() == target.shape(),
                "psnr_db shape mismatch: " << prediction.shape().to_string() << " vs "
                                           << target.shape().to_string());
  SNAPPIX_CHECK(peak > 0.0F, "psnr_db: peak must be positive");
  const auto& dp = prediction.data();
  const auto& dt = target.data();
  double mse = 0.0;
  for (std::size_t i = 0; i < dp.size(); ++i) {
    const double diff = static_cast<double>(dp[i]) - static_cast<double>(dt[i]);
    mse += diff * diff;
  }
  mse /= static_cast<double>(dp.size());
  if (mse <= 0.0) {
    return std::numeric_limits<float>::infinity();
  }
  return static_cast<float>(10.0 * std::log10(static_cast<double>(peak) * peak / mse));
}

double measure_per_second(const std::function<void()>& fn, int warmup, int iters) {
  SNAPPIX_CHECK(iters > 0, "measure_per_second: iters must be positive");
  for (int i = 0; i < warmup; ++i) {
    fn();
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    fn();
  }
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  return static_cast<double>(iters) / std::max(seconds, 1e-9);
}

}  // namespace snappix::eval
