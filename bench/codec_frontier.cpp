// Entropy-coded wire tier frontier (BENCH_codec.json).
//
// The bit-plane codec (src/codec/bitplane.h) replaces raw float32 rows on the
// framed MIPI link with quantized, entropy-coded, truncatable plane streams.
// This bench measures what that buys and gates the claims:
//
//   1. RATE-DISTORTION FRONTIER: for every decode depth d, the bytes-on-wire
//      ratio (codec framed bytes / raw float32 framed bytes), the top-1
//      agreement of classification from d planes against full-fidelity
//      classification, and the REC PSNR against ground-truth clips.
//   2. FULL-DEPTH BIT-IDENTITY (gated): the framed codec path at full depth
//      reproduces dequantize(quantize(x)) — the unframed coded measurements —
//      bit for bit, wire headers, CRCs and all.
//   3. RATE POINT (gated): the shallowest depth whose top-1 agreement is
//      >= 0.98 must put <= 0.5x the raw framed bytes on the wire.
//   4. PROGRESSIVE SERVING (gated): a served fleet whose classify cameras ride
//      at the rate-point depth (kReconstruct at full depth) produces results
//      bit-identical to an in-memory reference that pre-applies the same
//      quantize/truncate transform — truncation changes fidelity, never which
//      frames are served.
//
// `--quick` shrinks the streams for CI smoke runs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "codec/bitplane.h"
#include "core/snappix.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "runtime/camera.h"
#include "runtime/server.h"
#include "transport/csi2.h"
#include "transport/link.h"

namespace {

using namespace snappix;

constexpr int kImage = 16;
constexpr int kFrames = 8;
constexpr int kCameras = 8;

// What the codec wire delivers for a frame shipped at `planes` depth
// (0 = full): quantize, encode, depth-capped decode, dequantize.
Tensor wire_view(const Tensor& frame, int planes) {
  const codec::QuantizedFrame q = codec::quantize_frame(frame);
  const codec::PlaneStream stream = codec::encode_bitplanes(q);
  return codec::dequantize_frame(codec::decode_bitplanes(stream, planes).frame);
}

bool results_identical(const std::vector<runtime::TaskResult>& a,
                       const std::vector<runtime::TaskResult>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].camera_id != b[i].camera_id || a[i].sequence != b[i].sequence ||
        a[i].task != b[i].task || a[i].predicted != b[i].predicted) {
      return false;
    }
    if (a[i].task == runtime::Task::kReconstruct) {
      const auto& va = a[i].reconstruction.data();
      const auto& vb = b[i].reconstruction.data();
      if (va.size() != vb.size()) {
        return false;
      }
      for (std::size_t v = 0; v < va.size(); ++v) {
        if (va[v] != vb[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

struct DepthPoint {
  int planes = 0;
  double wire_ratio = 0.0;      // codec framed bytes / raw float32 framed bytes
  double top1_agreement = 0.0;  // vs full-fidelity classification
  double rec_psnr_db = 0.0;     // reconstruction vs ground-truth clips
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::int64_t eval_frames = quick ? 32 : 96;
  const std::int64_t serve_frames = quick ? 20 : 60;

  bench::print_header("Entropy-coded wire tier: bit-plane codec rate-distortion frontier");
  std::printf("geometry %dx%d, T=%d; %lld eval frames, %d cameras x %lld served frames\n",
              kImage, kImage, kFrames, static_cast<long long>(eval_frames), kCameras,
              static_cast<long long>(serve_frames));

  core::SnapPixConfig cfg;
  cfg.image = kImage;
  cfg.frames = kFrames;
  cfg.num_classes = 6;
  cfg.seed = 42;
  core::SnapPixSystem system(cfg);
  Rng pattern_rng(7);
  system.set_pattern(ce::CePattern::random(kFrames, cfg.tile, pattern_rng, 0.5F));

  NoGradGuard guard;

  // --- ground-truth clips and their coded measurements -----------------------
  data::SceneConfig scene;
  scene.frames = kFrames;
  scene.height = kImage;
  scene.width = kImage;
  scene.num_classes = 6;
  data::SyntheticVideoGenerator generator(scene);
  Rng scene_rng(31337);
  std::vector<float> clips(static_cast<std::size_t>(eval_frames) * kFrames * kImage * kImage);
  for (std::int64_t i = 0; i < eval_frames; ++i) {
    const data::VideoSample sample = generator.sample(scene_rng);
    std::copy(sample.video.data().begin(), sample.video.data().end(),
              clips.begin() + i * kFrames * kImage * kImage);
  }
  const Tensor videos =
      Tensor::from_vector(std::move(clips), Shape{eval_frames, kFrames, kImage, kImage});
  const Tensor eval_coded = system.encode(videos);
  const std::vector<std::int64_t> full_pred = system.classify_coded(eval_coded);

  // --- full-depth bit-identity through the framed codec wire ------------------
  const transport::CodedFramePacketizer packetizer(0);
  const transport::Depacketizer depacketizer;
  bool full_depth_identical = true;
  std::uint64_t raw_framed_bytes = 0;
  int max_depth = 0;
  std::vector<Tensor> eval_slices;
  for (std::int64_t i = 0; i < eval_frames; ++i) {
    std::vector<float> one(static_cast<std::size_t>(kImage) * kImage);
    std::copy(eval_coded.data().begin() + i * kImage * kImage,
              eval_coded.data().begin() + (i + 1) * kImage * kImage, one.begin());
    eval_slices.push_back(Tensor::from_vector(std::move(one), Shape{kImage, kImage}));
    const Tensor& frame = eval_slices.back();
    raw_framed_bytes += packetizer.packetize(frame, static_cast<std::uint16_t>(i)).total_bytes();
    const transport::WireFrame wire =
        packetizer.packetize_codec(frame, static_cast<std::uint16_t>(i));
    const transport::RxCodecFrame rx = depacketizer.depacketize_codec(wire, kImage, kImage);
    const Tensor reference = wire_view(frame, 0);
    full_depth_identical &= rx.outcome == transport::RxOutcome::kOk &&
                            std::memcmp(rx.coded.data().data(), reference.data().data(),
                                        reference.data().size() * sizeof(float)) == 0;
    max_depth = std::max(max_depth, static_cast<int>(rx.total_planes));
  }
  std::printf("full-depth framed decode bit-identical to in-memory quantize: %s "
              "(deepest stream %d planes)\n",
              full_depth_identical ? "yes" : "NO", max_depth);

  // --- per-depth frontier: wire ratio, top-1 agreement, REC PSNR --------------
  std::vector<DepthPoint> frontier;
  for (int depth = 1; depth <= max_depth; ++depth) {
    DepthPoint point;
    point.planes = depth;
    std::uint64_t codec_bytes = 0;
    std::vector<float> truncated(static_cast<std::size_t>(eval_frames) * kImage * kImage);
    for (std::int64_t i = 0; i < eval_frames; ++i) {
      const Tensor& frame = eval_slices[static_cast<std::size_t>(i)];
      codec_bytes +=
          packetizer.packetize_codec(frame, static_cast<std::uint16_t>(i), depth).total_bytes();
      const Tensor view = wire_view(frame, depth);
      std::copy(view.data().begin(), view.data().end(),
                truncated.begin() + i * kImage * kImage);
    }
    const Tensor truncated_coded =
        Tensor::from_vector(std::move(truncated), Shape{eval_frames, kImage, kImage});
    const std::vector<std::int64_t> pred = system.classify_coded(truncated_coded);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < pred.size(); ++i) {
      agree += pred[i] == full_pred[i] ? 1U : 0U;
    }
    point.top1_agreement = static_cast<double>(agree) / static_cast<double>(pred.size());
    point.rec_psnr_db =
        static_cast<double>(eval::psnr_db(system.reconstruct_coded(truncated_coded), videos));
    point.wire_ratio = raw_framed_bytes > 0
                           ? static_cast<double>(codec_bytes) / static_cast<double>(raw_framed_bytes)
                           : 0.0;
    frontier.push_back(point);
    std::printf("  depth %2d: wire %.3fx raw   top-1 agreement %.4f   REC PSNR %.2f dB\n",
                depth, point.wire_ratio, point.top1_agreement, point.rec_psnr_db);
  }

  // --- rate point: shallowest depth with agreement >= 0.98 --------------------
  const DepthPoint* rate_point = nullptr;
  for (const DepthPoint& point : frontier) {
    if (point.top1_agreement >= 0.98) {
      rate_point = &point;
      break;
    }
  }
  const bool rate_point_exists = rate_point != nullptr;
  const bool rate_point_cheap = rate_point_exists && rate_point->wire_ratio <= 0.5;
  bench::print_rule();
  if (rate_point_exists) {
    std::printf("rate point: %d planes at %.3fx raw framed bytes (gates: agreement >= 0.98, "
                "ratio <= 0.5)\n",
                rate_point->planes, rate_point->wire_ratio);
  } else {
    std::printf("rate point: NONE — no truncated depth reached 0.98 top-1 agreement\n");
  }

  // --- progressive serving: codec fleet vs pre-truncated in-memory reference --
  const int serve_depth = rate_point_exists ? rate_point->planes : max_depth;
  std::vector<std::vector<Tensor>> streams(kCameras);
  std::vector<std::vector<std::int64_t>> labels(kCameras);
  for (int cam = 0; cam < kCameras; ++cam) {
    data::SceneConfig cam_scene = scene;
    cam_scene.speed = 1.0F + 0.2F * static_cast<float>(cam % 4);
    runtime::SyntheticCameraSource source(cam, cam_scene, system.pattern(),
                                          1000 + static_cast<std::uint64_t>(cam));
    for (std::int64_t f = 0; f < serve_frames; ++f) {
      runtime::Frame frame = source.next_frame();
      streams[static_cast<std::size_t>(cam)].push_back(std::move(frame.coded));
      labels[static_cast<std::size_t>(cam)].push_back(frame.label);
    }
  }

  const auto run_fleet = [&](bool codec_framed) {
    runtime::ServerConfig server_cfg;
    server_cfg.batch.max_batch = kCameras;
    server_cfg.classify_codec_planes = serve_depth;
    runtime::InferenceServer server(system, server_cfg);
    for (int cam = 0; cam < kCameras; ++cam) {
      const bool reconstruct = cam >= kCameras - 2;
      std::vector<Tensor> stream;
      for (const Tensor& frame : streams[static_cast<std::size_t>(cam)]) {
        stream.push_back(codec_framed ? frame
                                      : wire_view(frame, reconstruct ? 0 : serve_depth));
      }
      auto camera = std::make_unique<runtime::ReplayCameraSource>(
          cam, system.pattern(), std::move(stream), labels[static_cast<std::size_t>(cam)]);
      if (reconstruct) {
        camera->set_task(runtime::Task::kReconstruct);
      }
      if (codec_framed) {
        transport::LinkConfig link;
        link.codec = true;
        link.mipi.lanes = 2;
        camera->set_framed(link);
      }
      server.add_camera(std::move(camera));
    }
    auto results = server.run(serve_frames);
    return std::make_pair(std::move(results), server.summary());
  };

  const auto [reference_results, reference_summary] = run_fleet(false);
  const auto [served_results, served_summary] = run_fleet(true);
  (void)reference_summary;
  const bool serving_identical = results_identical(reference_results, served_results);
  const bool serving_clean =
      served_summary.transport.framed_frames == served_summary.frames &&
      served_summary.transport.codec_frames == served_summary.transport.framed_frames &&
      served_summary.transport.ok_frames == served_summary.transport.framed_frames &&
      served_summary.transport.dropped_frames == 0;

  std::printf("\n[codec_served] classify depth %d, REC full depth\n%s", serve_depth,
              runtime::to_string(served_summary).c_str());
  std::printf("progressive serving bit-identical to pre-truncated reference: %s   "
              "transport clean: %s\n",
              serving_identical ? "yes" : "NO", serving_clean ? "yes" : "NO");

  // --- artifact ---------------------------------------------------------------
  std::ofstream json("BENCH_codec.json");
  json << "{\n  \"image\": " << kImage << ",\n  \"slots\": " << kFrames
       << ",\n  \"eval_frames\": " << eval_frames
       << ",\n  \"max_depth\": " << max_depth
       << ",\n  \"raw_framed_bytes\": " << raw_framed_bytes << ",\n  \"frontier\": [\n";
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const DepthPoint& point = frontier[i];
    json << "    {\"planes\": " << point.planes << ", \"wire_ratio\": " << point.wire_ratio
         << ", \"top1_agreement\": " << point.top1_agreement
         << ", \"rec_psnr_db\": " << point.rec_psnr_db << "}"
         << (i + 1 < frontier.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"full_depth_bit_identical\": " << (full_depth_identical ? "true" : "false")
       << ",\n  \"agreement_gate\": 0.98,\n  \"ratio_gate\": 0.5"
       << ",\n  \"rate_point_planes\": " << (rate_point_exists ? rate_point->planes : 0)
       << ",\n  \"rate_point_wire_ratio\": "
       << (rate_point_exists ? rate_point->wire_ratio : 0.0)
       << ",\n  \"rate_point_within_gate\": " << (rate_point_cheap ? "true" : "false")
       << ",\n  \"serving\": {\"cameras\": " << kCameras
       << ", \"frames_per_camera\": " << serve_frames
       << ", \"classify_depth\": " << serve_depth
       << ", \"aggregate_fps\": " << served_summary.aggregate_fps
       << ", \"wire_bytes\": " << served_summary.wire_bytes
       << ", \"transport\": " << runtime::to_json(served_summary.transport)
       << ", \"bit_identical\": " << (serving_identical ? "true" : "false")
       << ", \"transport_clean\": " << (serving_clean ? "true" : "false") << "}\n}\n";
  json.close();
  std::printf("wrote BENCH_codec.json\n");

  if (!full_depth_identical) {
    std::printf("FAIL: full-depth framed codec decode diverged from the in-memory "
                "quantize round trip\n");
  }
  if (!rate_point_exists) {
    std::printf("FAIL: no truncated depth reached the 0.98 top-1 agreement gate\n");
  }
  if (rate_point_exists && !rate_point_cheap) {
    std::printf("FAIL: rate point %.3fx raw framed bytes, above the 0.5x gate\n",
                rate_point->wire_ratio);
  }
  if (!serving_identical) {
    std::printf("FAIL: progressive serving diverged bitwise from the pre-truncated "
                "reference fleet\n");
  }
  if (!serving_clean) {
    std::printf("FAIL: clean codec fleet reported transport errors or drops\n");
  }
  const bool ok = full_depth_identical && rate_point_exists && rate_point_cheap &&
                  serving_identical && serving_clean;
  return ok ? 0 : 1;
}
