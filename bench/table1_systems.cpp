// Reproduces Table I: SNAPPIX-S/B vs SVC2D [17], C3D [37], VideoMAEv2-ST
// [26] on three datasets (UCF-101 / SSV2 / K400 stand-ins) plus inference
// throughput. Expected shape: SNAPPIX variants lead in accuracy, CE-input
// models are faster than video-input models, SVC2D trails badly.
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ce/encode.h"
#include "core/snappix.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "models/baselines.h"
#include "train/pattern_trainer.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace {

using namespace snappix;
using bench::kFrames;
using bench::kImage;
using bench::kTile;

struct SystemRow {
  std::string name;
  std::string input;
  std::vector<float> accuracy;  // per dataset
  double inferences_per_sec = 0.0;
};

constexpr int kScratchEpochs = 12;
// The paper halves fine-tune epochs after pre-training; at our step-bound
// scale that under-trains, so pre-trained models get the same budget (see
// EXPERIMENTS.md).
constexpr int kFinetuneEpochs = 12;
constexpr int kPretrainEpochs = 3;
constexpr int kSpeedBatch = 32;

double measure_speed(const std::function<void()>& fn) {
  NoGradGuard guard;
  return eval::measure_per_second(fn, /*warmup=*/1, /*iters=*/5) * kSpeedBatch;
}

}  // namespace

int main() {
  bench::print_header("Table I - System comparison: accuracy + inference throughput");

  const std::vector<data::DatasetConfig> dataset_configs = {
      bench::bench_dataset(data::ucf101_like(kFrames, kImage), 24, 8),
      bench::bench_dataset(data::ssv2_like(kFrames, kImage), 24, 8),
      bench::bench_dataset(data::k400_like(kFrames, kImage), 24, 8),
  };
  std::vector<std::unique_ptr<data::VideoDataset>> datasets;
  for (const auto& cfg : dataset_configs) {
    datasets.push_back(std::make_unique<data::VideoDataset>(cfg));
  }

  // The paper's pipeline: the decorrelated pattern AND the MAE pre-training
  // both use a large unlabeled corpus (K710 in the paper; a bigger synthetic
  // pool here), then the encoder is fine-tuned per downstream dataset.
  auto corpus_cfg = bench::bench_dataset(data::ssv2_like(kFrames, kImage), 80, 1);
  corpus_cfg.seed = 777;
  corpus_cfg.name = "pretrain-corpus";
  const data::VideoDataset corpus(corpus_cfg);

  train::PatternTrainConfig pc;
  pc.tile = kTile;
  pc.steps = 120;
  pc.batch_size = 8;
  std::printf("[learning decorrelated CE pattern on %s (%lld clips)]\n", corpus.name().c_str(),
              static_cast<long long>(corpus.train_size()));
  std::fflush(stdout);
  const auto learned = train::learn_decorrelated_pattern(corpus, pc);
  const ce::CePattern& pattern = learned.pattern;
  auto encode_transform = [&pattern](const Tensor& videos) {
    return ce::normalize_by_exposure(ce::ce_encode(videos, pattern), pattern);
  };

  std::vector<SystemRow> rows;

  // --- SNAPPIX-S and SNAPPIX-B: pre-train once on the corpus, then fine-tune
  // a fresh head per dataset from the saved encoder checkpoint. ---
  for (const auto backbone : {core::Backbone::kSnapPixS, core::Backbone::kSnapPixB}) {
    SystemRow row;
    row.name = backbone == core::Backbone::kSnapPixS ? "SNAPPIX-S (ours)" : "SNAPPIX-B (ours)";
    row.input = "CE";
    core::SnapPixConfig sc;
    sc.image = kImage;
    sc.frames = kFrames;
    sc.tile = kTile;
    sc.backbone = backbone;
    sc.num_classes = corpus.num_classes();
    sc.seed = 100;
    core::SnapPixSystem pre_system(sc);
    pre_system.set_pattern(pattern);
    std::printf("[%s: pre-training %d epochs on %s]\n", row.name.c_str(), kPretrainEpochs,
                corpus.name().c_str());
    std::fflush(stdout);
    pre_system.pretrain(corpus, kPretrainEpochs, 1e-3F, 16);
    const std::string checkpoint =
        (std::filesystem::temp_directory_path() / "snappix_table1_encoder.bin").string();
    pre_system.encoder()->save(checkpoint);

    for (std::size_t d = 0; d < datasets.size(); ++d) {
      Rng rng(110 + d);
      auto vit_cfg =
          core::backbone_config(backbone, kImage, datasets[d]->num_classes());
      auto encoder = std::make_shared<models::ViTEncoder>(vit_cfg, rng);
      encoder->load(checkpoint);
      models::SnapPixClassifier classifier(encoder, rng);
      std::printf("[%s on %s: fine-tune %d epochs]\n", row.name.c_str(),
                  datasets[d]->name().c_str(), kFinetuneEpochs);
      std::fflush(stdout);
      auto forward = [&](const Tensor& input) { return classifier.forward(input); };
      train::TrainConfig tc;
      tc.epochs = kFinetuneEpochs;
      tc.batch_size = 16;
      tc.lr = 2e-3F;
      const auto fit = train::fit_classifier(classifier.parameters(), forward, *datasets[d],
                                             encode_transform, tc);
      row.accuracy.push_back(fit.test_metric);
      if (d == 0) {
        Rng srng(1);
        const Tensor coded = Tensor::rand_uniform(Shape{kSpeedBatch, kImage, kImage}, srng);
        row.inferences_per_sec =
            measure_speed([&classifier, &coded] { (void)classifier.forward(coded); });
      }
    }
    rows.push_back(std::move(row));
  }

  // --- SVC2D: end-to-end learned pattern + SVC model, trained from scratch --
  {
    SystemRow row;
    row.name = "SVC2D [17]";
    row.input = "CE";
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      Rng rng(200 + d);
      models::Svc2dModel model(kImage, kTile, datasets[d]->num_classes(), rng);
      std::printf("[%s on %s: joint pattern+model %d epochs]\n", row.name.c_str(),
                  datasets[d]->name().c_str(), kScratchEpochs);
      std::fflush(stdout);
      train::PatternTrainConfig spc;
      spc.tile = kTile;
      spc.batch_size = 16;
      spc.lr = 2e-3F;
      spc.seed = 300 + d;
      const auto task = train::learn_task_pattern(
          *datasets[d], model.parameters(),
          [&](const Tensor& coded) { return model.forward(coded); }, spc, kScratchEpochs);
      // Evaluate with the jointly learned (now frozen) pattern.
      auto transform = [&](const Tensor& videos) {
        return ce::ce_encode(videos, task.pattern);
      };
      auto forward = [&](const Tensor& input) { return model.forward(input); };
      row.accuracy.push_back(
          train::evaluate_classifier(forward, *datasets[d], transform, 16));
      if (d == 0) {
        Rng srng(2);
        const Tensor coded = Tensor::rand_uniform(Shape{kSpeedBatch, kImage, kImage}, srng);
        row.inferences_per_sec =
            measure_speed([&model, &coded] { (void)model.forward(coded); });
      }
    }
    rows.push_back(std::move(row));
  }

  // --- C3D: video model trained from scratch ---------------------------------
  {
    SystemRow row;
    row.name = "C3D [37]";
    row.input = "Video";
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      Rng rng(400 + d);
      models::C3dModel model(kImage, kFrames, datasets[d]->num_classes(), rng);
      std::printf("[%s on %s: scratch %d epochs]\n", row.name.c_str(),
                  datasets[d]->name().c_str(), kScratchEpochs);
      std::fflush(stdout);
      auto transform = [](const Tensor& videos) { return videos; };
      auto forward = [&](const Tensor& input) { return model.forward(input); };
      train::TrainConfig tc;
      tc.epochs = kScratchEpochs;
      tc.batch_size = 16;
      tc.lr = 2e-3F;
      const auto fit =
          train::fit_classifier(model.parameters(), forward, *datasets[d], transform, tc);
      row.accuracy.push_back(fit.test_metric);
      if (d == 0) {
        Rng srng(3);
        const Tensor video =
            Tensor::rand_uniform(Shape{kSpeedBatch, kFrames, kImage, kImage}, srng);
        row.inferences_per_sec =
            measure_speed([&model, &video] { (void)model.forward(video); });
      }
    }
    rows.push_back(std::move(row));
  }

  // --- VideoMAEv2-ST stand-in: VideoViT sized near SNAPPIX-B's speed ---------
  {
    SystemRow row;
    row.name = "VideoMAEv2-ST [26]";
    row.input = "Video";
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      Rng rng(500 + d);
      models::VideoViTConfig vc;
      vc.image_h = kImage;
      vc.image_w = kImage;
      vc.frames = kFrames;
      vc.tubelet_t = 2;
      vc.patch = kTile;
      vc.dim = 48;
      vc.depth = 2;
      vc.heads = 4;
      vc.num_classes = datasets[d]->num_classes();
      models::VideoViT model(vc, rng);
      std::printf("[%s on %s: scratch %d epochs]\n", row.name.c_str(),
                  datasets[d]->name().c_str(), kScratchEpochs);
      std::fflush(stdout);
      auto transform = [](const Tensor& videos) { return videos; };
      auto forward = [&](const Tensor& input) { return model.forward(input); };
      train::TrainConfig tc;
      tc.epochs = kScratchEpochs;
      tc.batch_size = 16;
      tc.lr = 2e-3F;
      const auto fit =
          train::fit_classifier(model.parameters(), forward, *datasets[d], transform, tc);
      row.accuracy.push_back(fit.test_metric);
      if (d == 0) {
        Rng srng(4);
        const Tensor video =
            Tensor::rand_uniform(Shape{kSpeedBatch, kFrames, kImage, kImage}, srng);
        row.inferences_per_sec =
            measure_speed([&model, &video] { (void)model.forward(video); });
      }
    }
    rows.push_back(std::move(row));
  }

  bench::print_rule();
  std::printf("%-20s %6s %12s %12s %12s %12s\n", "model", "input", "ucf101-like", "ssv2-like",
              "k400-like", "inf/sec");
  bench::print_rule();
  for (const auto& row : rows) {
    std::printf("%-20s %6s %11.2f%% %11.2f%% %11.2f%% %12.0f\n", row.name.c_str(),
                row.input.c_str(), static_cast<double>(row.accuracy[0] * 100.0F),
                static_cast<double>(row.accuracy[1] * 100.0F),
                static_cast<double>(row.accuracy[2] * 100.0F), row.inferences_per_sec);
  }
  bench::print_rule();
  std::printf(
      "paper (112x112, RTX 4090): SNAPPIX-S 74.65/42.38/47.58 @2282, SNAPPIX-B\n"
      "79.14/45.21/54.11 @760, SVC2D 41.16/23.05/26.09 @2135, C3D 62.70/33.48/41.66\n"
      "@541, VideoMAEv2-ST 72.54/39.84/41.99 @750.\n");
  return 0;
}
