// Reproduces the Sec. VI-E ablation: starting from SNAPPIX-S on the SSV2
// stand-in (AR task), remove components one at a time:
//  - no pre-training          (paper: -11.39%)
//  - random instead of decorrelated pattern (further -3.43%)
//  - global (non-tile-repetitive) pattern   (-23.74%)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ce/encode.h"
#include "core/snappix.h"
#include "data/dataset.h"
#include "models/vit.h"
#include "train/pattern_trainer.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace {

using namespace snappix;
using bench::kFrames;
using bench::kImage;
using bench::kTile;

// All configurations get the same fine-tune budget; pre-training happens on
// a larger unlabeled corpus (the paper's K710 analogue) beforehand. The
// paper's halved-fine-tune recipe under-trains at our step-bound scale (see
// EXPERIMENTS.md).
constexpr int kTaskEpochs = 14;
constexpr int kPretrainEpochs = 3;

float run_snappix(const data::VideoDataset& dataset, const data::VideoDataset& corpus,
                  const ce::CePattern& pattern, bool pretrain) {
  core::SnapPixConfig sc;
  sc.image = kImage;
  sc.frames = kFrames;
  sc.tile = kTile;
  sc.backbone = core::Backbone::kSnapPixS;
  sc.num_classes = dataset.num_classes();
  sc.seed = 42;
  core::SnapPixSystem system(sc);
  system.set_pattern(pattern);
  if (pretrain) {
    system.pretrain(corpus, kPretrainEpochs, 1e-3F, 16);
  }
  train::TrainConfig tc;
  tc.epochs = kTaskEpochs;
  tc.batch_size = 16;
  tc.lr = 2e-3F;
  return system.train_action_recognition(dataset, tc).test_metric;
}

// Global (non-tile-repetitive) pattern: the exposure varies across the whole
// frame, so within-ViT-patch variation differs per patch and the patch-wise
// MLPs cannot specialize (the tile-repetition ablation of Sec. VI-E).
float run_global_pattern(const data::VideoDataset& dataset) {
  Rng rng(7);
  // A full-frame random pattern == tile of size kImage.
  const auto global = ce::CePattern::random(kFrames, kImage, rng, 0.5F);
  models::ViTConfig cfg = models::ViTConfig::snappix_s(kImage, dataset.num_classes());
  models::SnapPixClassifier model(cfg, rng);
  auto transform = [&](const Tensor& videos) {
    return ce::normalize_by_exposure(ce::ce_encode(videos, global), global);
  };
  auto forward = [&](const Tensor& input) { return model.forward(input); };
  train::TrainConfig tc;
  tc.epochs = kTaskEpochs;
  tc.batch_size = 16;
  tc.lr = 2e-3F;
  return train::fit_classifier(model.parameters(), forward, dataset, transform, tc).test_metric;
}

}  // namespace

int main() {
  bench::print_header("Sec. VI-E - Ablation study (SNAPPIX-S, SSV2-like, AR)");

  const data::VideoDataset dataset(
      bench::bench_dataset(data::ssv2_like(kFrames, kImage), /*train=*/24, /*test=*/8));
  auto corpus_cfg = bench::bench_dataset(data::ssv2_like(kFrames, kImage), 80, 1);
  corpus_cfg.seed = 777;
  corpus_cfg.name = "pretrain-corpus";
  const data::VideoDataset corpus(corpus_cfg);

  std::printf("[learning decorrelated pattern]\n");
  std::fflush(stdout);
  train::PatternTrainConfig pc;
  pc.tile = kTile;
  pc.steps = 120;
  pc.batch_size = 8;
  const auto learned = train::learn_decorrelated_pattern(corpus, pc);

  Rng rng(3);
  const auto random_pattern = ce::CePattern::random(kFrames, kTile, rng, 0.5F);

  struct Row {
    std::string name;
    float accuracy;
  };
  std::vector<Row> rows;

  std::printf("[full system: pretrain + decorrelated + tile-repetitive]\n");
  std::fflush(stdout);
  rows.push_back(
      {"full SNAPPIX-S", run_snappix(dataset, corpus, learned.pattern, /*pretrain=*/true)});

  std::printf("[- pre-training]\n");
  std::fflush(stdout);
  rows.push_back(
      {"- pre-training", run_snappix(dataset, corpus, learned.pattern, /*pretrain=*/false)});

  std::printf("[- decorrelated pattern (random instead)]\n");
  std::fflush(stdout);
  rows.push_back(
      {"- decorrelation (random)", run_snappix(dataset, corpus, random_pattern,
                                               /*pretrain=*/false)});

  std::printf("[- tile repetition (global pattern)]\n");
  std::fflush(stdout);
  rows.push_back({"- tile repetition (global)", run_global_pattern(dataset)});

  bench::print_rule();
  std::printf("%-30s %14s %18s\n", "configuration", "AR acc (%)", "delta vs full (%)");
  bench::print_rule();
  const float full = rows.front().accuracy;
  for (const auto& row : rows) {
    std::printf("%-30s %14.2f %18.2f\n", row.name.c_str(),
                static_cast<double>(row.accuracy * 100.0F),
                static_cast<double>((row.accuracy - full) * 100.0F));
  }
  bench::print_rule();
  std::printf(
      "paper: -11.39%% w/o pre-training; further -3.43%% with a random pattern;\n"
      "-23.74%% with a global (non-tile-repetitive) pattern.\n");
  return 0;
}
