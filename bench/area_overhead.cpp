// Reproduces the Sec. V area analysis: per-pixel logic area across technology
// nodes (30 um^2 @65nm -> 3.2 um^2 @22nm), and the broadcast-wire vs
// shift-register wire-area comparison (2.24 um @N=8 -> 3.92 um @N=14, which
// exceeds the state-of-the-art APS pitch; ours stays at 4 wires).
#include <cstdio>

#include "bench_util.h"
#include "hw/area.h"

int main() {
  using namespace snappix;

  const hw::PixelAreaModel model;

  bench::print_header("Sec. V - Per-pixel CE logic area across technology nodes");
  std::printf("%-10s %20s %26s\n", "node (nm)", "logic area (um^2)", "hidden under APS (3 um)?");
  bench::print_rule();
  for (const int node : hw::known_nodes()) {
    std::printf("%-10d %20.2f %26s\n", node, model.logic_area_um2(node),
                model.logic_hidden_under_aps(node) ? "yes" : "no");
  }
  std::printf("(paper: 30 um^2 @65nm synthesized, 3.2 um^2 @22nm via DeepScale)\n");

  bench::print_header("Sec. V - Pattern-wire footprint: broadcast (2N wires) vs ours (4 wires)");
  std::printf("%-10s %24s %24s\n", "tile N", "broadcast side (um)", "shift-register side (um)");
  bench::print_rule();
  for (const int n : {2, 4, 8, 10, 12, 14, 16}) {
    std::printf("%-10d %24.2f %24.2f\n", n, model.broadcast_wire_side_um(n),
                model.shift_register_wire_side_um());
  }
  bench::print_rule();
  std::printf("broadcast wiring exceeds the APS pitch (%.2f um) from N = %d\n",
              model.params().aps_pitch_um, model.broadcast_crossover_tile());
  std::printf("(paper: 2.24 um @N=8; 3.92 um @N=14 exceeds the state-of-the-art APS)\n");
  return 0;
}
