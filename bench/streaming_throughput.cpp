// Streaming-serving throughput: 8 simulated CE cameras against one server.
//
// Three arms over identical pre-coded frame streams (replay cameras, so the
// measurement is server throughput, not scene synthesis):
//
//   sequential       the naive pre-runtime path: one frame at a time through
//                    the tape-based SnapPixSystem::classify_coded (batch 1)
//   runtime_batch1   the async runtime, but every frame dispatched alone
//                    through the same tape path (batching disabled)
//   runtime_batched  the async runtime with batch aggregation + the fused
//                    BatchedVitEngine (batching enabled)
//
// The batched arm must (a) reach >= 3x the aggregate fps of the batch-1
// arms and (b) produce bit-identical predictions to the sequential path —
// the fused engine replicates the tape ops' float semantics exactly, so
// batching is a pure latency/throughput trade, never an accuracy one.
//
// Writes BENCH_streaming.json next to the working directory. `--quick`
// shrinks the stream for CI smoke runs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/snappix.h"
#include "runtime/camera.h"
#include "runtime/runtime.h"

namespace {

using namespace snappix;

// Edge-node geometry: 16x16 thumbnails, T = 8 slots, 8x8 CE tile (2x2 ViT
// tokens) — the sensor-fleet operating point where per-frame serving
// overhead, not raw FLOPs, dominates the server bill.
constexpr int kStreamImage = 16;
constexpr int kStreamFrames = 8;
constexpr int kCameras = 8;

struct RecordedStream {
  std::vector<Tensor> coded;  // (H, W) exposure-normalized frames
  std::vector<std::int64_t> labels;
};

struct ArmResult {
  std::string label;
  runtime::RuntimeSummary summary;
  runtime::FleetEnergyReport energy;
  std::vector<runtime::InferenceResult> results;
};

data::SceneConfig camera_scene(int camera) {
  data::SceneConfig scene;
  scene.frames = kStreamFrames;
  scene.height = kStreamImage;
  scene.width = kStreamImage;
  scene.num_classes = 6;
  scene.speed = 1.0F + 0.2F * static_cast<float>(camera % 4);  // heterogeneous fleet
  return scene;
}

std::unique_ptr<runtime::ReplayCameraSource> make_camera(int id, const RecordedStream& stream,
                                                         const ce::CePattern& pattern) {
  return std::make_unique<runtime::ReplayCameraSource>(id, pattern, stream.coded,
                                                       stream.labels);
}

ArmResult run_runtime_arm(const std::string& label, const core::SnapPixSystem& system,
                          const std::vector<RecordedStream>& streams,
                          std::int64_t frames_per_camera, const runtime::RuntimeConfig& config) {
  runtime::StreamingRuntime rt(system, config);
  for (int cam = 0; cam < kCameras; ++cam) {
    rt.add_camera(make_camera(cam, streams[static_cast<std::size_t>(cam)], system.pattern()));
  }
  ArmResult arm;
  arm.label = label;
  arm.results = rt.run(frames_per_camera);
  arm.summary = rt.summary();
  arm.energy = rt.fleet_energy(energy::EnergyModel{}, energy::WirelessTech::kPassiveWifi);
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::int64_t frames_per_camera = quick ? 40 : 150;

  bench::print_header("Streaming serving throughput: 8 CE cameras, one ViT server");
  std::printf("geometry %dx%d, T=%d; %d cameras x %lld frames\n", kStreamImage, kStreamImage,
              kStreamFrames, kCameras, static_cast<long long>(frames_per_camera));

  core::SnapPixConfig cfg;
  cfg.image = kStreamImage;
  cfg.frames = kStreamFrames;
  cfg.num_classes = 6;
  cfg.seed = 42;
  core::SnapPixSystem system(cfg);
  Rng pattern_rng(7);
  system.set_pattern(ce::CePattern::random(kStreamFrames, cfg.tile, pattern_rng, 0.5F));

  // Pre-code each camera's stream once; every arm replays the same bytes.
  std::vector<RecordedStream> streams;
  for (int cam = 0; cam < kCameras; ++cam) {
    runtime::SyntheticCameraSource source(cam, camera_scene(cam), system.pattern(),
                                          1000 + static_cast<std::uint64_t>(cam));
    RecordedStream stream;
    for (std::int64_t i = 0; i < frames_per_camera; ++i) {
      runtime::Frame frame = source.next_frame();
      stream.coded.push_back(std::move(frame.coded));
      stream.labels.push_back(frame.label);
    }
    streams.push_back(std::move(stream));
  }

  // --- arm 1: sequential single-camera path (tape framework, batch 1) -------
  ArmResult sequential;
  sequential.label = "sequential";
  std::vector<Tensor> sequential_logits;
  {
    NoGradGuard guard;
    runtime::RuntimeStats stats;
    const runtime::Clock::time_point t0 = runtime::Clock::now();
    for (int cam = 0; cam < kCameras; ++cam) {
      auto camera = make_camera(cam, streams[static_cast<std::size_t>(cam)], system.pattern());
      for (std::int64_t i = 0; i < frames_per_camera; ++i) {
        const runtime::Clock::time_point f0 = runtime::Clock::now();
        runtime::Frame frame = camera->next_frame();
        const Tensor one = Tensor::from_vector(
            frame.coded.data(), Shape{1, frame.coded.shape()[0], frame.coded.shape()[1]});
        const runtime::Clock::time_point i0 = runtime::Clock::now();
        const Tensor logits = system.classify_logits_coded(one);
        const double infer_s =
            std::chrono::duration<double>(runtime::Clock::now() - i0).count();
        const auto predicted = argmax_last_axis(logits)[0];
        sequential_logits.push_back(logits);
        stats.record_batch(1, infer_s);
        stats.record_frame_done(
            frame.raw_bytes, frame.wire_bytes,
            std::chrono::duration<double>(runtime::Clock::now() - f0).count());
        sequential.results.push_back({cam, frame.sequence, predicted, frame.label});
      }
    }
    const double wall =
        std::chrono::duration<double>(runtime::Clock::now() - t0).count();
    sequential.summary = stats.summary(wall);
    sequential.energy = stats.fleet_energy(energy::EnergyModel{},
                                           static_cast<std::int64_t>(kStreamImage) * kStreamImage,
                                           kStreamFrames, energy::WirelessTech::kPassiveWifi);
  }

  // --- arm 2: async runtime, batching disabled ------------------------------
  runtime::RuntimeConfig batch1_cfg;
  batch1_cfg.batch.max_batch = 1;
  batch1_cfg.backend = runtime::InferenceBackend::kTapeFramework;
  const ArmResult runtime_batch1 =
      run_runtime_arm("runtime_batch1", system, streams, frames_per_camera, batch1_cfg);

  // --- arm 3: async runtime, batching enabled (fused engine) ----------------
  runtime::RuntimeConfig batched_cfg;
  batched_cfg.batch.max_batch = kCameras;
  batched_cfg.batch.max_delay = std::chrono::microseconds(2000);
  batched_cfg.backend = runtime::InferenceBackend::kFusedEngine;
  const ArmResult runtime_batched =
      run_runtime_arm("runtime_batched", system, streams, frames_per_camera, batched_cfg);

  // --- verification: batched serving is bit-identical to sequential --------
  bool identical_predictions = sequential.results.size() == runtime_batched.results.size();
  if (identical_predictions) {
    for (std::size_t i = 0; i < sequential.results.size(); ++i) {
      const auto& a = sequential.results[i];
      const auto& b = runtime_batched.results[i];
      identical_predictions &= a.camera_id == b.camera_id && a.sequence == b.sequence &&
                               a.predicted == b.predicted;
    }
  }
  // Logit-level bitwise check: the fused engine vs the tape framework over
  // every recorded frame, served as full cross-camera batches.
  bool identical_logits = true;
  {
    runtime::BatchedVitEngine engine(*system.classifier(), kCameras);
    std::size_t frame_index = 0;
    for (std::int64_t i = 0; i < frames_per_camera && identical_logits; ++i) {
      std::vector<runtime::Frame> batch;
      for (int cam = 0; cam < kCameras; ++cam) {
        runtime::Frame frame;
        frame.coded = streams[static_cast<std::size_t>(cam)].coded[static_cast<std::size_t>(i)];
        batch.push_back(std::move(frame));
      }
      const Tensor coded = runtime::BatchAggregator::stack_coded(batch);
      const Tensor batched_logits = engine.classify_logits(coded);
      for (int cam = 0; cam < kCameras; ++cam) {
        const Tensor& single = sequential_logits[static_cast<std::size_t>(cam) *
                                                     static_cast<std::size_t>(frames_per_camera) +
                                                 static_cast<std::size_t>(i)];
        for (std::int64_t c = 0; c < cfg.num_classes; ++c) {
          identical_logits &=
              single.data()[static_cast<std::size_t>(c)] ==
              batched_logits.data()[static_cast<std::size_t>(cam * cfg.num_classes + c)];
        }
      }
      ++frame_index;
    }
    (void)frame_index;
  }

  const std::vector<const ArmResult*> arms = {&sequential, &runtime_batch1, &runtime_batched};
  for (const ArmResult* arm : arms) {
    std::printf("\n[%s]\n%s", arm->label.c_str(), runtime::to_string(arm->summary).c_str());
    std::printf("  fleet energy: conventional %.3f J vs snappix %.3f J (%.1fx)\n",
                arm->energy.conventional_j, arm->energy.snappix_j,
                arm->energy.saving_factor);
  }

  const double speedup_vs_sequential =
      runtime_batched.summary.aggregate_fps / sequential.summary.aggregate_fps;
  const double speedup_vs_batch1 =
      runtime_batched.summary.aggregate_fps / runtime_batch1.summary.aggregate_fps;
  bench::print_rule();
  std::printf("batched vs sequential: %.2fx   batched vs runtime_batch1: %.2fx\n",
              speedup_vs_sequential, speedup_vs_batch1);
  std::printf("bit-identical predictions: %s   bit-identical logits: %s\n",
              identical_predictions ? "yes" : "NO", identical_logits ? "yes" : "NO");

  std::ofstream json("BENCH_streaming.json");
  json << "{\n  \"cameras\": " << kCameras << ",\n  \"frames_per_camera\": "
       << frames_per_camera << ",\n  \"image\": " << kStreamImage
       << ",\n  \"slots\": " << kStreamFrames << ",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    json << "    " << runtime::to_json(arms[i]->summary, arms[i]->energy, arms[i]->label)
         << (i + 1 < arms.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"speedup_batched_vs_sequential\": " << speedup_vs_sequential
       << ",\n  \"speedup_batched_vs_batch1\": " << speedup_vs_batch1
       << ",\n  \"bit_identical_predictions\": " << (identical_predictions ? "true" : "false")
       << ",\n  \"bit_identical_logits\": " << (identical_logits ? "true" : "false") << "\n}\n";
  json.close();
  std::printf("wrote BENCH_streaming.json\n");

  // Gate numerics strictly; gate throughput with a regression floor below
  // the 3x target so noisy shared CI runners don't flake the build (the
  // measured ratio on a quiet single core is 3.3-4.3x).
  if (speedup_vs_batch1 < 3.0) {
    std::printf("WARNING: batched serving %.2fx over batch-1, below the 3x target\n",
                speedup_vs_batch1);
  }
  const bool fast_enough = speedup_vs_batch1 >= 2.0;
  if (!fast_enough) {
    std::printf("FAIL: batched serving only %.2fx over batch-1 (regression floor 2x)\n",
                speedup_vs_batch1);
  }
  const bool ok = identical_predictions && identical_logits && fast_enough;
  return ok ? 0 : 1;
}
