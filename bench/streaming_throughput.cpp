// Streaming-serving throughput: 8 simulated CE cameras against one server.
//
// Three arms over identical pre-coded frame streams (replay cameras, so the
// measurement is server throughput, not scene synthesis):
//
//   sequential       the naive pre-runtime path: one frame at a time through
//                    the tape-based SnapPixSystem::classify_coded (batch 1)
//   runtime_batch1   the async runtime, but every frame dispatched alone
//                    through the same tape path (batching disabled)
//   runtime_batched  the async runtime with batch aggregation + the fused
//                    BatchedVitEngine (batching enabled)
//
// The batched arm must (a) reach >= 3x the aggregate fps of the batch-1
// arms and (b) produce bit-identical predictions to the sequential path —
// the fused engine replicates the tape ops' float semantics exactly, so
// batching is a pure latency/throughput trade, never an accuracy one.
//
// A fourth section benches the task-typed InferenceServer on a heterogeneous
// fleet: 8 cameras over 4 distinct CE patterns with an AR+REC task mix,
// served through the sharded pattern->engine cache. It reports cache hit
// rate / evictions / fps at two cache sizes (everything resident vs a
// 1-entry cache under thrash) and verifies both task heads stay
// bit-identical to the sequential tape paths.
//
// A fifth section benches SHARDED serving: the same heterogeneous fleet
// served by 4 consumer shards with work stealing versus the single-consumer
// arm above. Identity is gated unconditionally (shard count and steal
// interleaving must never change a bit); the >= 1.5x throughput gate is
// enforced only when the host has >= 4 hardware threads — shard workers are
// real parallelism, and on a 1-2 core runner the arm measures scheduling
// overhead, not scaling (same spirit as the regression floor below).
//
// A sixth section benches the FRAMED MIPI transport path: the heterogeneous
// fleet with every frame serialized into CSI-2-style packets (header + CRC +
// lane model, src/transport/) and reassembled server-side. At zero fault
// rate the framed arm must be bit-identical to the in-memory arm (gated);
// the framed byte overhead ratio (wire bytes / float32 payload bytes) is
// reported. A lossy sub-arm injects seeded packet drops under the kDrop
// policy and gates that the observed drop counters match the links'
// injected-fault ground truth exactly.
//
// A seventh section measures the ACCURACY-VS-THROUGHPUT FRONTIER of the int8
// serving tier (BENCH_int8.json): a calibrated QuantizedVitEngine against
// the bit-exact fp32 engine at a GEMM-heavy geometry — classify/REC
// throughput ratios, top-1 agreement (gated >= 0.98 always), REC PSNR delta
// against ground-truth clips, plus a mixed-precision served fleet whose fp32
// cameras are gated bit-identical to the all-fp32 arm. The >= 1.8x classify
// speedup gate binds only where the AVX2 int8 kernels compiled in.
//
// Writes BENCH_streaming.json, BENCH_pattern_cache.json, BENCH_sharded.json,
// BENCH_framed.json and BENCH_int8.json next to the working directory.
// `--quick` shrinks the streams for CI smoke runs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "core/snappix.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "runtime/camera.h"
#include "runtime/quant.h"
#include "runtime/runtime.h"
#include "runtime/server.h"
#include "tensor/gemm_s8.h"
#include "transport/link.h"

namespace {

using namespace snappix;

// Edge-node geometry: 16x16 thumbnails, T = 8 slots, 8x8 CE tile (2x2 ViT
// tokens) — the sensor-fleet operating point where per-frame serving
// overhead, not raw FLOPs, dominates the server bill.
constexpr int kStreamImage = 16;
constexpr int kStreamFrames = 8;
constexpr int kCameras = 8;
constexpr int kHeteroPatterns = 4;  // distinct CE patterns in the hetero fleet

struct RecordedStream {
  std::vector<Tensor> coded;  // (H, W) exposure-normalized frames
  std::vector<std::int64_t> labels;
};

struct ArmResult {
  std::string label;
  runtime::RuntimeSummary summary;
  runtime::FleetEnergyReport energy;
  std::vector<runtime::InferenceResult> results;
};

data::SceneConfig camera_scene(int camera) {
  data::SceneConfig scene;
  scene.frames = kStreamFrames;
  scene.height = kStreamImage;
  scene.width = kStreamImage;
  scene.num_classes = 6;
  scene.speed = 1.0F + 0.2F * static_cast<float>(camera % 4);  // heterogeneous fleet
  return scene;
}

std::unique_ptr<runtime::ReplayCameraSource> make_camera(int id, const RecordedStream& stream,
                                                         const ce::CePattern& pattern) {
  return std::make_unique<runtime::ReplayCameraSource>(id, pattern, stream.coded,
                                                       stream.labels);
}

// Bitwise identity over two (camera, sequence)-sorted result sets: identity,
// task, prediction, and every reconstruction voxel. Shared by the sharded and
// framed arms' gates.
bool results_identical(const std::vector<runtime::TaskResult>& a,
                       const std::vector<runtime::TaskResult>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].camera_id != b[i].camera_id || a[i].sequence != b[i].sequence ||
        a[i].task != b[i].task || a[i].predicted != b[i].predicted) {
      return false;
    }
    if (a[i].task == runtime::Task::kReconstruct) {
      const auto& va = a[i].reconstruction.data();
      const auto& vb = b[i].reconstruction.data();
      if (va.size() != vb.size()) {
        return false;
      }
      for (std::size_t v = 0; v < va.size(); ++v) {
        if (va[v] != vb[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

ArmResult run_runtime_arm(const std::string& label, const core::SnapPixSystem& system,
                          const std::vector<RecordedStream>& streams,
                          std::int64_t frames_per_camera, const runtime::RuntimeConfig& config) {
  runtime::StreamingRuntime rt(system, config);
  for (int cam = 0; cam < kCameras; ++cam) {
    rt.add_camera(make_camera(cam, streams[static_cast<std::size_t>(cam)], system.pattern()));
  }
  ArmResult arm;
  arm.label = label;
  arm.results = rt.run(frames_per_camera);
  arm.summary = rt.summary();
  arm.energy = rt.fleet_energy(energy::EnergyModel{}, energy::WirelessTech::kPassiveWifi);
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::int64_t frames_per_camera = quick ? 40 : 150;

  bench::print_header("Streaming serving throughput: 8 CE cameras, one ViT server");
  std::printf("geometry %dx%d, T=%d; %d cameras x %lld frames\n", kStreamImage, kStreamImage,
              kStreamFrames, kCameras, static_cast<long long>(frames_per_camera));

  core::SnapPixConfig cfg;
  cfg.image = kStreamImage;
  cfg.frames = kStreamFrames;
  cfg.num_classes = 6;
  cfg.seed = 42;
  core::SnapPixSystem system(cfg);
  Rng pattern_rng(7);
  system.set_pattern(ce::CePattern::random(kStreamFrames, cfg.tile, pattern_rng, 0.5F));

  // Pre-code each camera's stream once; every arm replays the same bytes.
  std::vector<RecordedStream> streams;
  for (int cam = 0; cam < kCameras; ++cam) {
    runtime::SyntheticCameraSource source(cam, camera_scene(cam), system.pattern(),
                                          1000 + static_cast<std::uint64_t>(cam));
    RecordedStream stream;
    for (std::int64_t i = 0; i < frames_per_camera; ++i) {
      runtime::Frame frame = source.next_frame();
      stream.coded.push_back(std::move(frame.coded));
      stream.labels.push_back(frame.label);
    }
    streams.push_back(std::move(stream));
  }

  // --- arm 1: sequential single-camera path (tape framework, batch 1) -------
  ArmResult sequential;
  sequential.label = "sequential";
  std::vector<Tensor> sequential_logits;
  {
    NoGradGuard guard;
    runtime::RuntimeStats stats;
    const runtime::Clock::time_point t0 = runtime::Clock::now();
    for (int cam = 0; cam < kCameras; ++cam) {
      auto camera = make_camera(cam, streams[static_cast<std::size_t>(cam)], system.pattern());
      for (std::int64_t i = 0; i < frames_per_camera; ++i) {
        const runtime::Clock::time_point f0 = runtime::Clock::now();
        runtime::Frame frame = camera->next_frame();
        const Tensor one = Tensor::from_vector(
            frame.coded.data(), Shape{1, frame.coded.shape()[0], frame.coded.shape()[1]});
        const runtime::Clock::time_point i0 = runtime::Clock::now();
        const Tensor logits = system.classify_logits_coded(one);
        const double infer_s =
            std::chrono::duration<double>(runtime::Clock::now() - i0).count();
        const auto predicted = argmax_last_axis(logits)[0];
        sequential_logits.push_back(logits);
        stats.record_batch(1, infer_s);
        stats.record_frame_done(
            frame.raw_bytes, frame.wire_bytes,
            std::chrono::duration<double>(runtime::Clock::now() - f0).count());
        sequential.results.push_back({cam, frame.sequence, predicted, frame.label});
      }
    }
    const double wall =
        std::chrono::duration<double>(runtime::Clock::now() - t0).count();
    sequential.summary = stats.summary(wall);
    sequential.energy = stats.fleet_energy(energy::EnergyModel{},
                                           static_cast<std::int64_t>(kStreamImage) * kStreamImage,
                                           kStreamFrames, energy::WirelessTech::kPassiveWifi);
  }

  // --- arm 2: async runtime, batching disabled ------------------------------
  runtime::RuntimeConfig batch1_cfg;
  batch1_cfg.batch.max_batch = 1;
  batch1_cfg.backend = runtime::InferenceBackend::kTapeFramework;
  const ArmResult runtime_batch1 =
      run_runtime_arm("runtime_batch1", system, streams, frames_per_camera, batch1_cfg);

  // --- arm 3: async runtime, batching enabled (fused engine) ----------------
  runtime::RuntimeConfig batched_cfg;
  batched_cfg.batch.max_batch = kCameras;
  batched_cfg.batch.max_delay = std::chrono::microseconds(2000);
  batched_cfg.backend = runtime::InferenceBackend::kFusedEngine;
  const ArmResult runtime_batched =
      run_runtime_arm("runtime_batched", system, streams, frames_per_camera, batched_cfg);

  // --- verification: batched serving is bit-identical to sequential --------
  bool identical_predictions = sequential.results.size() == runtime_batched.results.size();
  if (identical_predictions) {
    for (std::size_t i = 0; i < sequential.results.size(); ++i) {
      const auto& a = sequential.results[i];
      const auto& b = runtime_batched.results[i];
      identical_predictions &= a.camera_id == b.camera_id && a.sequence == b.sequence &&
                               a.predicted == b.predicted;
    }
  }
  // Logit-level bitwise check: the fused engine vs the tape framework over
  // every recorded frame, served as full cross-camera batches.
  bool identical_logits = true;
  {
    runtime::BatchedVitEngine engine(*system.classifier(), kCameras);
    std::size_t frame_index = 0;
    for (std::int64_t i = 0; i < frames_per_camera && identical_logits; ++i) {
      std::vector<runtime::Frame> batch;
      for (int cam = 0; cam < kCameras; ++cam) {
        runtime::Frame frame;
        frame.coded = streams[static_cast<std::size_t>(cam)].coded[static_cast<std::size_t>(i)];
        batch.push_back(std::move(frame));
      }
      const Tensor coded = runtime::BatchAggregator::stack_coded(batch);
      const Tensor batched_logits = engine.classify_logits(coded);
      for (int cam = 0; cam < kCameras; ++cam) {
        const Tensor& single = sequential_logits[static_cast<std::size_t>(cam) *
                                                     static_cast<std::size_t>(frames_per_camera) +
                                                 static_cast<std::size_t>(i)];
        for (std::int64_t c = 0; c < cfg.num_classes; ++c) {
          identical_logits &=
              single.data()[static_cast<std::size_t>(c)] ==
              batched_logits.data()[static_cast<std::size_t>(cam * cfg.num_classes + c)];
        }
      }
      ++frame_index;
    }
    (void)frame_index;
  }

  const std::vector<const ArmResult*> arms = {&sequential, &runtime_batch1, &runtime_batched};
  for (const ArmResult* arm : arms) {
    std::printf("\n[%s]\n%s", arm->label.c_str(), runtime::to_string(arm->summary).c_str());
    std::printf("  fleet energy: conventional %.3f J vs snappix %.3f J (%.1fx)\n",
                arm->energy.conventional_j, arm->energy.snappix_j,
                arm->energy.saving_factor);
  }

  const double speedup_vs_sequential =
      runtime_batched.summary.aggregate_fps / sequential.summary.aggregate_fps;
  const double speedup_vs_batch1 =
      runtime_batched.summary.aggregate_fps / runtime_batch1.summary.aggregate_fps;
  bench::print_rule();
  std::printf("batched vs sequential: %.2fx   batched vs runtime_batch1: %.2fx\n",
              speedup_vs_sequential, speedup_vs_batch1);
  std::printf("bit-identical predictions: %s   bit-identical logits: %s\n",
              identical_predictions ? "yes" : "NO", identical_logits ? "yes" : "NO");

  std::ofstream json("BENCH_streaming.json");
  json << "{\n  \"cameras\": " << kCameras << ",\n  \"frames_per_camera\": "
       << frames_per_camera << ",\n  \"image\": " << kStreamImage
       << ",\n  \"slots\": " << kStreamFrames << ",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    json << "    " << runtime::to_json(arms[i]->summary, arms[i]->energy, arms[i]->label)
         << (i + 1 < arms.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"speedup_batched_vs_sequential\": " << speedup_vs_sequential
       << ",\n  \"speedup_batched_vs_batch1\": " << speedup_vs_batch1
       << ",\n  \"bit_identical_predictions\": " << (identical_predictions ? "true" : "false")
       << ",\n  \"bit_identical_logits\": " << (identical_logits ? "true" : "false") << "\n}\n";
  json.close();
  std::printf("wrote BENCH_streaming.json\n");

  // --- heterogeneous fleet: 4 patterns, AR+REC mix, pattern->engine cache ---
  bench::print_rule();
  std::printf("heterogeneous fleet: %d cameras x %d patterns, AR+REC mix\n", kCameras,
              kHeteroPatterns);
  const std::int64_t hetero_frames = quick ? 25 : 100;

  std::vector<runtime::PatternRef> patterns;
  {
    Rng hetero_rng(19);
    for (int p = 0; p < kHeteroPatterns; ++p) {
      patterns.push_back(runtime::make_pattern_ref(
          ce::CePattern::random(kStreamFrames, cfg.tile, hetero_rng, 0.5F)));
    }
  }
  // Camera c uses pattern c % 4; the last two cameras request reconstruction.
  std::vector<RecordedStream> hetero_streams;
  for (int cam = 0; cam < kCameras; ++cam) {
    runtime::SyntheticCameraSource source(cam, camera_scene(cam),
                                          patterns[static_cast<std::size_t>(cam % kHeteroPatterns)],
                                          2000 + static_cast<std::uint64_t>(cam));
    RecordedStream stream;
    for (std::int64_t i = 0; i < hetero_frames; ++i) {
      runtime::Frame frame = source.next_frame();
      stream.coded.push_back(std::move(frame.coded));
      stream.labels.push_back(frame.label);
    }
    hetero_streams.push_back(std::move(stream));
  }

  // The ONE definition of the heterogeneous fleet's shape (pattern mix +
  // AR/REC task split), shared by the cache, sharded, and framed arms so
  // their bit-identity gates always compare the same fleet.
  const auto make_hetero_camera = [&](int cam) {
    auto camera = std::make_unique<runtime::ReplayCameraSource>(
        cam, patterns[static_cast<std::size_t>(cam % kHeteroPatterns)],
        hetero_streams[static_cast<std::size_t>(cam)].coded,
        hetero_streams[static_cast<std::size_t>(cam)].labels);
    if (cam >= kCameras - 2) {
      camera->set_task(runtime::Task::kReconstruct);
    }
    return camera;
  };

  const auto run_hetero = [&](const char* label, const runtime::EngineCacheConfig& cache_cfg,
                              std::int64_t frames, std::size_t shards = 1) {
    runtime::ServerConfig server_cfg;
    server_cfg.batch.max_batch = kCameras;
    server_cfg.batch.max_delay = std::chrono::microseconds(2000);
    server_cfg.cache = cache_cfg;
    server_cfg.shards = shards;
    runtime::InferenceServer server(system, server_cfg);
    for (int cam = 0; cam < kCameras; ++cam) {
      server.add_camera(make_hetero_camera(cam));
    }
    auto results = server.run(frames);
    auto summary = server.summary();
    std::printf("\n[%s] consumer_shards=%zu cache_shards=%zu capacity/shard=%zu\n%s", label,
                shards, cache_cfg.shards, cache_cfg.capacity_per_shard,
                runtime::to_string(summary).c_str());
    return std::make_pair(std::move(results), summary);
  };

  // All four patterns resident: every batch after first touch is a hit.
  runtime::EngineCacheConfig roomy;
  roomy.shards = 2;
  roomy.capacity_per_shard = 4;
  auto [hetero_results, hetero_summary] = run_hetero("pattern_cache_resident", roomy,
                                                     hetero_frames);
  // One-entry cache: pattern alternation thrashes, counting evictions.
  runtime::EngineCacheConfig tiny;
  tiny.shards = 1;
  tiny.capacity_per_shard = 1;
  auto [pressure_results, pressure_summary] =
      run_hetero("pattern_cache_pressure", tiny, quick ? 10 : 25);
  (void)pressure_results;

  // Verify both task heads against the sequential tape paths, per camera.
  bool hetero_identical = true;
  {
    NoGradGuard guard;
    std::size_t idx = 0;
    for (int cam = 0; cam < kCameras && hetero_identical; ++cam) {
      const auto& stream = hetero_streams[static_cast<std::size_t>(cam)];
      for (std::int64_t f = 0; f < hetero_frames && hetero_identical; ++f, ++idx) {
        const Tensor& coded = stream.coded[static_cast<std::size_t>(
            f % static_cast<std::int64_t>(stream.coded.size()))];
        const Tensor one =
            Tensor::from_vector(coded.data(), Shape{1, coded.shape()[0], coded.shape()[1]});
        const auto& r = hetero_results[idx];
        hetero_identical &= r.camera_id == cam && r.sequence == f;
        if (r.task == runtime::Task::kClassify) {
          hetero_identical &= r.predicted == system.classify_coded(one)[0];
        } else {
          const Tensor expected = system.reconstruct_coded(one);
          const auto& actual = r.reconstruction.data();
          hetero_identical &= actual.size() == expected.data().size();
          for (std::size_t v = 0; hetero_identical && v < actual.size(); ++v) {
            hetero_identical &= actual[v] == expected.data()[v];
          }
        }
      }
    }
  }

  const bool cache_hits_nonzero = hetero_summary.cache_hits > 0;
  const bool pressure_evicted = pressure_summary.cache_evictions > 0;
  std::printf("\nhetero bit-identical (AR+REC): %s   cache hits: %llu (rate %.2f)   "
              "pressure evictions: %llu\n",
              hetero_identical ? "yes" : "NO",
              static_cast<unsigned long long>(hetero_summary.cache_hits),
              hetero_summary.cache_hit_rate,
              static_cast<unsigned long long>(pressure_summary.cache_evictions));

  {
    std::ofstream cache_json("BENCH_pattern_cache.json");
    const auto arm_json = [](const runtime::RuntimeSummary& s,
                             const runtime::EngineCacheConfig& c) {
      std::string out = "{\"shards\": " + std::to_string(c.shards) +
                        ", \"capacity_per_shard\": " + std::to_string(c.capacity_per_shard) +
                        ", \"frames\": " + std::to_string(s.frames) +
                        ", \"classify_frames\": " + std::to_string(s.classify_frames) +
                        ", \"reconstruct_frames\": " + std::to_string(s.reconstruct_frames) +
                        ", \"aggregate_fps\": " + std::to_string(s.aggregate_fps) +
                        ", \"mean_batch_size\": " + std::to_string(s.mean_batch_size) +
                        ", \"cache_hits\": " + std::to_string(s.cache_hits) +
                        ", \"cache_misses\": " + std::to_string(s.cache_misses) +
                        ", \"cache_evictions\": " + std::to_string(s.cache_evictions) +
                        ", \"cache_hit_rate\": " + std::to_string(s.cache_hit_rate) + "}";
      return out;
    };
    cache_json << "{\n  \"cameras\": " << kCameras
               << ",\n  \"patterns\": " << kHeteroPatterns
               << ",\n  \"frames_per_camera\": " << hetero_frames
               << ",\n  \"task_mix\": \"" << (kCameras - 2) << " classify + 2 reconstruct\""
               << ",\n  \"resident\": " << arm_json(hetero_summary, roomy)
               << ",\n  \"pressure\": " << arm_json(pressure_summary, tiny)
               << ",\n  \"bit_identical\": " << (hetero_identical ? "true" : "false")
               << "\n}\n";
  }
  std::printf("wrote BENCH_pattern_cache.json\n");

  // --- sharded serving: 4 consumer shards + work stealing vs 1 consumer ----
  bench::print_rule();
  const std::size_t kShards = 4;
  const unsigned hw_threads = std::max(1U, std::thread::hardware_concurrency());
  std::printf("sharded serving: %zu consumer shards (work stealing) vs single consumer, "
              "%u hardware threads\n", kShards, hw_threads);
  // Same fleet, same cache geometry, same batch policy — the only variable is
  // the consumer topology, so the fps ratio isolates shard scaling.
  auto [sharded_results, sharded_summary] =
      run_hetero("sharded_x4", roomy, hetero_frames, kShards);

  const bool sharded_identical = results_identical(hetero_results, sharded_results);
  const double sharded_speedup =
      hetero_summary.aggregate_fps > 0.0
          ? sharded_summary.aggregate_fps / hetero_summary.aggregate_fps
          : 0.0;
  // The 1.5x gate measures parallel scaling, so it only binds where the
  // shards can actually run in parallel; below 4 hardware threads the arm
  // still gates identity and reports the measured ratio.
  const bool speedup_gate_enforced = hw_threads >= 4;
  std::printf("\nsharded vs single consumer: %.2fx (gate %s)   bit-identical: %s   "
              "steals: %llu/%llu (%llu frames)\n",
              sharded_speedup, speedup_gate_enforced ? ">=1.5x enforced" : "report-only",
              sharded_identical ? "yes" : "NO",
              static_cast<unsigned long long>(sharded_summary.steal_successes),
              static_cast<unsigned long long>(sharded_summary.steal_attempts),
              static_cast<unsigned long long>(sharded_summary.stolen_frames));

  {
    std::ofstream sharded_json("BENCH_sharded.json");
    const auto arm_json = [](const runtime::RuntimeSummary& s) {
      std::string out = "{\"frames\": " + std::to_string(s.frames) +
                        ", \"batches\": " + std::to_string(s.batches) +
                        ", \"aggregate_fps\": " + std::to_string(s.aggregate_fps) +
                        ", \"mean_batch_size\": " + std::to_string(s.mean_batch_size) +
                        ", \"steal_attempts\": " + std::to_string(s.steal_attempts) +
                        ", \"steal_successes\": " + std::to_string(s.steal_successes) +
                        ", \"stolen_frames\": " + std::to_string(s.stolen_frames) +
                        ", \"shards\": [";
      for (std::size_t i = 0; i < s.shards.size(); ++i) {
        out += (i > 0 ? ", " : "") + runtime::to_json(s.shards[i]);
      }
      out += "]}";
      return out;
    };
    sharded_json << "{\n  \"cameras\": " << kCameras
                 << ",\n  \"patterns\": " << kHeteroPatterns
                 << ",\n  \"frames_per_camera\": " << hetero_frames
                 << ",\n  \"consumer_shards\": " << kShards
                 << ",\n  \"hardware_threads\": " << hw_threads
                 << ",\n  \"single_consumer\": " << arm_json(hetero_summary)
                 << ",\n  \"sharded\": " << arm_json(sharded_summary)
                 << ",\n  \"speedup_sharded_vs_single\": " << sharded_speedup
                 << ",\n  \"speedup_gate_enforced\": "
                 << (speedup_gate_enforced ? "true" : "false")
                 << ",\n  \"bit_identical\": " << (sharded_identical ? "true" : "false")
                 << "\n}\n";
  }
  std::printf("wrote BENCH_sharded.json\n");

  // --- framed MIPI transport: CSI-2 packets + CRC vs the in-memory hop ------
  bench::print_rule();
  std::printf("framed transport: hetero fleet over CSI-2-style packets vs in-memory\n");

  const auto run_framed = [&](const char* label, double drop_rate,
                              runtime::TransportPolicy policy) {
    runtime::ServerConfig server_cfg;
    server_cfg.batch.max_batch = kCameras;
    server_cfg.batch.max_delay = std::chrono::microseconds(2000);
    server_cfg.cache = roomy;
    server_cfg.transport = policy;
    runtime::InferenceServer server(system, server_cfg);
    std::vector<const runtime::CameraSource*> cameras;
    for (int cam = 0; cam < kCameras; ++cam) {
      auto camera = make_hetero_camera(cam);
      transport::LinkConfig link;
      link.mipi.lanes = 2;
      link.virtual_channel = cam % 4;
      link.faults.packet_drop_rate = drop_rate;
      link.faults.seed = 4000 + static_cast<std::uint64_t>(cam);
      camera->set_framed(link);
      cameras.push_back(camera.get());  // server-owned; alive until it dies
      server.add_camera(std::move(camera));
    }
    auto results = server.run(hetero_frames);
    auto summary = server.summary();
    std::uint64_t injected_faulted = 0;
    for (const auto* camera : cameras) {
      injected_faulted += camera->framed_link()->injector().stats().frames_faulted;
    }
    std::printf("\n[%s] drop_rate=%.3f\n%s", label, drop_rate,
                runtime::to_string(summary).c_str());
    return std::make_tuple(std::move(results), summary, injected_faulted);
  };

  const auto [framed_results, framed_summary, framed_injected] =
      run_framed("framed_clean", 0.0, {});

  // Zero faults: the framed arm must reproduce the in-memory arm bit for bit.
  const bool framed_identical = results_identical(hetero_results, framed_results);
  const bool framed_all_ok =
      framed_summary.transport.framed_frames == framed_summary.frames &&
      framed_summary.transport.ok_frames == framed_summary.transport.framed_frames &&
      framed_summary.transport.dropped_frames == 0 && framed_injected == 0;
  // Transport overhead: framed wire bytes over the raw float32 payload.
  const double framed_payload_bytes = static_cast<double>(framed_summary.frames) *
                                      kStreamImage * kStreamImage * 4.0;
  const double framed_overhead_ratio =
      framed_payload_bytes > 0.0
          ? static_cast<double>(framed_summary.wire_bytes) / framed_payload_bytes
          : 0.0;
  const double framed_fps_ratio =
      hetero_summary.aggregate_fps > 0.0
          ? framed_summary.aggregate_fps / hetero_summary.aggregate_fps
          : 0.0;

  // Lossy sub-arm: seeded packet drops under the kDrop policy. The gate is
  // exactness: observed drop counters == the links' injected ground truth.
  runtime::TransportPolicy drop_policy;
  drop_policy.corrupt = runtime::TransportPolicy::Corrupt::kDrop;
  const auto [lossy_results, lossy_summary, lossy_injected] =
      run_framed("framed_lossy", 0.02, drop_policy);
  const bool drops_exact = lossy_summary.transport.dropped_frames == lossy_injected &&
                           lossy_results.size() + lossy_injected ==
                               static_cast<std::size_t>(kCameras) *
                                   static_cast<std::size_t>(hetero_frames);

  std::printf("\nframed bit-identical at zero faults: %s   transport all-ok: %s   "
              "overhead %.3fx   fps vs in-memory %.2fx\n",
              framed_identical ? "yes" : "NO", framed_all_ok ? "yes" : "NO",
              framed_overhead_ratio, framed_fps_ratio);
  std::printf("lossy arm: %llu dropped vs %llu injected (%s), %zu/%lld frames served\n",
              static_cast<unsigned long long>(lossy_summary.transport.dropped_frames),
              static_cast<unsigned long long>(lossy_injected),
              drops_exact ? "exact" : "MISMATCH", lossy_results.size(),
              static_cast<long long>(kCameras * hetero_frames));

  {
    std::ofstream framed_json("BENCH_framed.json");
    framed_json << "{\n  \"cameras\": " << kCameras
                << ",\n  \"patterns\": " << kHeteroPatterns
                << ",\n  \"frames_per_camera\": " << hetero_frames
                << ",\n  \"in_memory_fps\": " << hetero_summary.aggregate_fps
                << ",\n  \"framed_fps\": " << framed_summary.aggregate_fps
                << ",\n  \"framed_fps_ratio\": " << framed_fps_ratio
                << ",\n  \"framed_wire_bytes\": " << framed_summary.wire_bytes
                << ",\n  \"framed_overhead_ratio\": " << framed_overhead_ratio
                << ",\n  \"bit_identical\": " << (framed_identical ? "true" : "false")
                << ",\n  \"transport\": " << runtime::to_json(framed_summary.transport)
                << ",\n  \"lossy_drop_rate\": 0.02"
                << ",\n  \"lossy_injected_faulted_frames\": " << lossy_injected
                << ",\n  \"lossy_transport\": " << runtime::to_json(lossy_summary.transport)
                << ",\n  \"lossy_drops_exact\": " << (drops_exact ? "true" : "false")
                << "\n}\n";
  }
  std::printf("wrote BENCH_framed.json\n");

  // --- int8 frontier: calibrated QuantizedVitEngine vs bit-exact fp32 ------
  bench::print_rule();
  const bool avx2_int8 = snappix::detail::gemm_s8_simd_enabled();
  std::printf("int8 frontier: calibrated engine vs fp32 at 32x32 (int8 SIMD: %s)\n",
              avx2_int8 ? "AVX2" : "scalar fallback");

  // A GEMM-heavy geometry (16 tokens instead of 4) so the ratio measures the
  // compute backends, not patchify glue; same backbone family as the fleet.
  core::SnapPixConfig frontier_cfg;
  frontier_cfg.image = 32;
  frontier_cfg.frames = kStreamFrames;
  frontier_cfg.num_classes = 6;
  frontier_cfg.seed = 42;
  core::SnapPixSystem frontier(frontier_cfg);
  {
    Rng frontier_rng(7);
    frontier.set_pattern(
        ce::CePattern::random(kStreamFrames, frontier_cfg.tile, frontier_rng, 0.5F));
  }

  const std::int64_t frontier_frames = quick ? 32 : 96;
  const int frontier_reps = quick ? 3 : 5;
  double fp32_classify_fps = 0.0, int8_classify_fps = 0.0;
  double fp32_rec_fps = 0.0, int8_rec_fps = 0.0;
  double top1_agreement = 0.0, mean_abs_logit_diff = 0.0;
  double psnr_fp32 = 0.0, psnr_int8 = 0.0;
  {
    NoGradGuard guard;
    // Ground-truth clips (for REC PSNR) and their coded frames.
    data::SceneConfig scene;
    scene.frames = kStreamFrames;
    scene.height = 32;
    scene.width = 32;
    scene.num_classes = 6;
    data::SyntheticVideoGenerator generator(scene);
    Rng scene_rng(31337);
    std::vector<float> clips(static_cast<std::size_t>(frontier_frames) * kStreamFrames * 32 *
                             32);
    for (std::int64_t i = 0; i < frontier_frames; ++i) {
      const data::VideoSample sample = generator.sample(scene_rng);
      std::copy(sample.video.data().begin(), sample.video.data().end(),
                clips.begin() + i * kStreamFrames * 32 * 32);
    }
    const Tensor videos = Tensor::from_vector(
        std::move(clips), Shape{frontier_frames, kStreamFrames, 32, 32});
    const Tensor eval_coded = frontier.encode(videos);

    // Calibrate exactly the way the serving tier does on an int8 cache miss.
    const runtime::ServerConfig defaults;
    const Tensor calib = runtime::make_calibration_frames(frontier.pattern(), 32, 32,
                                                          defaults.calibration);
    const runtime::QuantSpec spec =
        runtime::calibrate(*frontier.classifier(), *frontier.reconstructor(), calib);
    const runtime::BatchedVitEngine fp32_engine(*frontier.classifier(),
                                                *frontier.reconstructor(), 32);
    const runtime::QuantizedVitEngine int8_engine(*frontier.classifier(),
                                                  *frontier.reconstructor(), spec, 32);

    const auto fps_of = [&](const auto& fn) {
      fn();  // warm the workspace
      const runtime::Clock::time_point t0 = runtime::Clock::now();
      for (int r = 0; r < frontier_reps; ++r) {
        fn();
      }
      const double seconds =
          std::chrono::duration<double>(runtime::Clock::now() - t0).count();
      return static_cast<double>(frontier_frames * frontier_reps) / seconds;
    };
    fp32_classify_fps = fps_of([&] { fp32_engine.classify_logits(eval_coded); });
    int8_classify_fps = fps_of([&] { int8_engine.classify_logits(eval_coded); });
    fp32_rec_fps = fps_of([&] { fp32_engine.reconstruct(eval_coded); });
    int8_rec_fps = fps_of([&] { int8_engine.reconstruct(eval_coded); });

    const Tensor fp32_logits = fp32_engine.classify_logits(eval_coded);
    const Tensor int8_logits = int8_engine.classify_logits(eval_coded);
    const auto fp32_pred = argmax_last_axis(fp32_logits);
    const auto int8_pred = argmax_last_axis(int8_logits);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < fp32_pred.size(); ++i) {
      agree += fp32_pred[i] == int8_pred[i] ? 1U : 0U;
    }
    top1_agreement = static_cast<double>(agree) / static_cast<double>(fp32_pred.size());
    for (std::size_t i = 0; i < fp32_logits.data().size(); ++i) {
      mean_abs_logit_diff += std::fabs(fp32_logits.data()[i] - int8_logits.data()[i]);
    }
    mean_abs_logit_diff /= static_cast<double>(fp32_logits.data().size());

    psnr_fp32 = eval::psnr_db(fp32_engine.reconstruct(eval_coded), videos);
    psnr_int8 = eval::psnr_db(int8_engine.reconstruct(eval_coded), videos);
  }
  const double int8_classify_speedup =
      fp32_classify_fps > 0.0 ? int8_classify_fps / fp32_classify_fps : 0.0;
  const double int8_rec_speedup = fp32_rec_fps > 0.0 ? int8_rec_fps / fp32_rec_fps : 0.0;
  const double psnr_delta = psnr_fp32 - psnr_int8;

  std::printf("\nclassify fps: fp32 %.1f vs int8 %.1f (%.2fx)   rec fps: fp32 %.1f vs "
              "int8 %.1f (%.2fx)\n",
              fp32_classify_fps, int8_classify_fps, int8_classify_speedup, fp32_rec_fps,
              int8_rec_fps, int8_rec_speedup);
  std::printf("top-1 agreement %.4f   mean |dlogit| %.5f   REC PSNR fp32 %.2f dB vs int8 "
              "%.2f dB (delta %.3f dB)\n",
              top1_agreement, mean_abs_logit_diff, psnr_fp32, psnr_int8, psnr_delta);

  // Mixed-precision served fleet: odd cameras opt into int8, the server keys
  // batches and cache entries by precision, and the fp32 cameras must stay
  // bit-identical to the all-fp32 arm above.
  std::vector<runtime::TaskResult> mixed_results;
  runtime::RuntimeSummary mixed_summary;
  {
    runtime::ServerConfig server_cfg;
    server_cfg.batch.max_batch = kCameras;
    server_cfg.batch.max_delay = std::chrono::microseconds(2000);
    server_cfg.cache = roomy;
    server_cfg.shards = 2;
    runtime::InferenceServer server(system, server_cfg);
    for (int cam = 0; cam < kCameras; ++cam) {
      auto camera = make_hetero_camera(cam);
      if (cam % 2 == 1) {
        camera->set_precision(runtime::Precision::kInt8);
      }
      server.add_camera(std::move(camera));
    }
    mixed_results = server.run(hetero_frames);
    mixed_summary = server.summary();
    std::printf("\n[int8_mixed_fleet]\n%s", runtime::to_string(mixed_summary).c_str());
  }
  bool mixed_fp32_identical = true;
  std::size_t mixed_int8_frames = 0, mixed_int8_agree = 0;
  for (std::size_t i = 0; i < mixed_results.size(); ++i) {
    const auto& mixed = mixed_results[i];
    const auto& reference = hetero_results[i];
    if (mixed.camera_id % 2 == 0) {
      mixed_fp32_identical &= mixed.precision == runtime::Precision::kFp32 &&
                              mixed.camera_id == reference.camera_id &&
                              mixed.sequence == reference.sequence &&
                              mixed.predicted == reference.predicted;
      if (mixed.task == runtime::Task::kReconstruct && mixed_fp32_identical) {
        const auto& va = mixed.reconstruction.data();
        const auto& vb = reference.reconstruction.data();
        mixed_fp32_identical &= va.size() == vb.size();
        for (std::size_t v = 0; mixed_fp32_identical && v < va.size(); ++v) {
          mixed_fp32_identical &= va[v] == vb[v];
        }
      }
    } else if (mixed.task == runtime::Task::kClassify) {
      ++mixed_int8_frames;
      mixed_int8_agree += mixed.predicted == reference.predicted ? 1U : 0U;
    }
  }
  const double mixed_agreement =
      mixed_int8_frames > 0
          ? static_cast<double>(mixed_int8_agree) / static_cast<double>(mixed_int8_frames)
          : 1.0;
  std::printf("mixed fleet: fp32 cameras bit-identical: %s   served int8 top-1 agreement "
              "%.4f   cache fp32 %llu/%llu int8 %llu/%llu (hit/miss)\n",
              mixed_fp32_identical ? "yes" : "NO", mixed_agreement,
              static_cast<unsigned long long>(mixed_summary.cache_fp32.hits),
              static_cast<unsigned long long>(mixed_summary.cache_fp32.misses),
              static_cast<unsigned long long>(mixed_summary.cache_int8.hits),
              static_cast<unsigned long long>(mixed_summary.cache_int8.misses));

  {
    std::ofstream int8_json("BENCH_int8.json");
    int8_json << "{\n  \"image\": 32,\n  \"tokens\": 16,\n  \"frames\": " << frontier_frames
              << ",\n  \"reps\": " << frontier_reps
              << ",\n  \"int8_simd\": " << (avx2_int8 ? "true" : "false")
              << ",\n  \"fp32_classify_fps\": " << fp32_classify_fps
              << ",\n  \"int8_classify_fps\": " << int8_classify_fps
              << ",\n  \"int8_classify_speedup\": " << int8_classify_speedup
              << ",\n  \"fp32_rec_fps\": " << fp32_rec_fps
              << ",\n  \"int8_rec_fps\": " << int8_rec_fps
              << ",\n  \"int8_rec_speedup\": " << int8_rec_speedup
              << ",\n  \"top1_agreement\": " << top1_agreement
              << ",\n  \"mean_abs_logit_diff\": " << mean_abs_logit_diff
              << ",\n  \"rec_psnr_fp32_db\": " << psnr_fp32
              << ",\n  \"rec_psnr_int8_db\": " << psnr_int8
              << ",\n  \"rec_psnr_delta_db\": " << psnr_delta
              << ",\n  \"agreement_gate\": 0.98"
              << ",\n  \"speedup_gate\": 1.8"
              << ",\n  \"speedup_gate_enforced\": " << (avx2_int8 ? "true" : "false")
              << ",\n  \"mixed_fleet\": {\"cameras\": " << kCameras
              << ", \"int8_cameras\": " << kCameras / 2
              << ", \"aggregate_fps\": " << mixed_summary.aggregate_fps
              << ", \"fp32_frames\": " << mixed_summary.fp32_frames
              << ", \"int8_frames\": " << mixed_summary.int8_frames
              << ", \"cache_fp32\": " << runtime::to_json(mixed_summary.cache_fp32)
              << ", \"cache_int8\": " << runtime::to_json(mixed_summary.cache_int8)
              << ", \"fp32_bit_identical\": " << (mixed_fp32_identical ? "true" : "false")
              << ", \"int8_top1_agreement\": " << mixed_agreement << "}\n}\n";
  }
  std::printf("wrote BENCH_int8.json\n");

  // Gate numerics strictly; gate throughput with a regression floor below
  // the 3x target so noisy shared CI runners don't flake the build (the
  // measured ratio on a quiet single core is 3.3-4.3x).
  if (speedup_vs_batch1 < 3.0) {
    std::printf("WARNING: batched serving %.2fx over batch-1, below the 3x target\n",
                speedup_vs_batch1);
  }
  const bool fast_enough = speedup_vs_batch1 >= 2.0;
  if (!fast_enough) {
    std::printf("FAIL: batched serving only %.2fx over batch-1 (regression floor 2x)\n",
                speedup_vs_batch1);
  }
  if (!cache_hits_nonzero) {
    std::printf("FAIL: heterogeneous fleet served with zero pattern-cache hits\n");
  }
  if (!pressure_evicted) {
    std::printf("FAIL: 1-entry cache under 4-pattern thrash recorded no evictions\n");
  }
  if (!sharded_identical) {
    std::printf("FAIL: sharded serving diverged bitwise from the single-consumer arm\n");
  }
  const bool sharded_fast_enough = !speedup_gate_enforced || sharded_speedup >= 1.5;
  if (!sharded_fast_enough) {
    std::printf("FAIL: sharded serving only %.2fx over single consumer on %u threads "
                "(gate 1.5x)\n", sharded_speedup, hw_threads);
  }
  if (!framed_identical) {
    std::printf("FAIL: framed transport at zero faults diverged bitwise from the "
                "in-memory arm\n");
  }
  if (!framed_all_ok) {
    std::printf("FAIL: clean framed arm reported transport errors or drops\n");
  }
  if (!drops_exact) {
    std::printf("FAIL: lossy framed arm's drop counters diverge from the injected "
                "ground truth\n");
  }
  const bool int8_agrees = top1_agreement >= 0.98;
  if (!int8_agrees) {
    std::printf("FAIL: int8 top-1 agreement %.4f below the 0.98 gate\n", top1_agreement);
  }
  // The 1.8x gate measures the AVX2 int8 kernels; the scalar fallback build
  // (non-x86 hosts) still gates agreement and reports the measured ratio.
  const bool int8_fast_enough = !avx2_int8 || int8_classify_speedup >= 1.8;
  if (!int8_fast_enough) {
    std::printf("FAIL: int8 classify only %.2fx over fp32 on an AVX2 host (gate 1.8x)\n",
                int8_classify_speedup);
  }
  if (!mixed_fp32_identical) {
    std::printf("FAIL: mixed-precision fleet's fp32 cameras diverged bitwise from the "
                "all-fp32 arm\n");
  }
  const bool ok = identical_predictions && identical_logits && fast_enough &&
                  hetero_identical && cache_hits_nonzero && pressure_evicted &&
                  sharded_identical && sharded_fast_enough && framed_identical &&
                  framed_all_ok && drops_exact && int8_agrees && int8_fast_enough &&
                  mixed_fp32_identical;
  return ok ? 0 : 1;
}
