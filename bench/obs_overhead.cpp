// Observability overhead: what does frame-lifecycle tracing cost the serving
// tier, and is the trace it produces complete?
//
// Three arms serve the SAME heterogeneous replay fleet (8 cameras, 4 CE
// patterns, AR+REC mix — the BENCH_sharded geometry) through a 2-shard
// server:
//
//   untraced    ServerConfig::trace.enabled = false — the baseline. The
//               instrumentation compiles in but every ScopedSpan reduces to
//               two null checks.
//   unsampled   tracing enabled, sample_every = 0: recorder + lanes exist,
//               every frame checks its sampling gate, but no frame is
//               sampled so no span is ever emitted. This isolates the
//               always-on overhead, gated <= 2% (fps >= 0.98x untraced).
//   sampled     tracing enabled, sample_every = 8 (1-in-8 per camera),
//               gated <= 5% (fps >= 0.95x untraced).
//
// Each arm runs `reps` times and reports the MAX aggregate fps (damps
// shared-runner noise; the overhead gates compare best-vs-best). Served
// results must be bit-identical across all three arms — tracing must never
// change a served bit.
//
// The sampled arm's trace is then validated structurally: zero dropped
// events, time-sorted export, a COMPLETE lifecycle (b/e "frame" +
// capture/queue_wait/batch_assembly/infer pairs) for every sampled served
// frame, and the Chrome JSON must parse (tests/json_lite.h). Writes
// BENCH_obs.json and trace_obs.json; exits non-zero if any gate fails.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "../tests/json_lite.h"
#include "bench_util.h"
#include "core/snappix.h"
#include "obs/trace.h"
#include "runtime/camera.h"
#include "runtime/server.h"

namespace {

using namespace snappix;

constexpr int kStreamImage = 16;
constexpr int kStreamFrames = 8;
constexpr int kCameras = 8;
constexpr int kHeteroPatterns = 4;
constexpr int kSampleEvery = 8;

struct RecordedStream {
  std::vector<Tensor> coded;
  std::vector<std::int64_t> labels;
};

struct ArmResult {
  std::string label;
  std::vector<double> fps;  // one entry per rep
  double max_fps = 0.0;
  std::vector<runtime::TaskResult> results;  // from the last rep
  std::unique_ptr<runtime::InferenceServer> server;  // last rep's server
};

data::SceneConfig camera_scene(int camera) {
  data::SceneConfig scene;
  scene.frames = kStreamFrames;
  scene.height = kStreamImage;
  scene.width = kStreamImage;
  scene.num_classes = 6;
  scene.speed = 1.0F + 0.2F * static_cast<float>(camera % 4);
  return scene;
}

bool results_identical(const std::vector<runtime::TaskResult>& a,
                       const std::vector<runtime::TaskResult>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].camera_id != b[i].camera_id || a[i].sequence != b[i].sequence ||
        a[i].task != b[i].task || a[i].predicted != b[i].predicted) {
      return false;
    }
    if (a[i].task == runtime::Task::kReconstruct) {
      const auto& va = a[i].reconstruction.data();
      const auto& vb = b[i].reconstruction.data();
      if (va.size() != vb.size()) {
        return false;
      }
      for (std::size_t v = 0; v < va.size(); ++v) {
        if (va[v] != vb[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::int64_t frames_per_camera = quick ? 120 : 240;
  const int reps = quick ? 3 : 4;

  bench::print_header("Observability overhead: frame-lifecycle tracing vs untraced serving");
  std::printf("%d cameras x %lld frames, %d patterns, AR+REC mix, 2 shards, %d reps/arm "
              "(max fps gates)\n",
              kCameras, static_cast<long long>(frames_per_camera), kHeteroPatterns, reps);

  core::SnapPixConfig cfg;
  cfg.image = kStreamImage;
  cfg.frames = kStreamFrames;
  cfg.num_classes = 6;
  cfg.seed = 42;
  core::SnapPixSystem system(cfg);

  std::vector<runtime::PatternRef> patterns;
  {
    Rng pattern_rng(19);
    for (int p = 0; p < kHeteroPatterns; ++p) {
      patterns.push_back(runtime::make_pattern_ref(
          ce::CePattern::random(kStreamFrames, cfg.tile, pattern_rng, 0.5F)));
    }
  }

  // Pre-code each camera's stream once; every arm and rep replays the same
  // bytes, so fps differences measure tracing, not scene synthesis.
  std::vector<RecordedStream> streams;
  for (int cam = 0; cam < kCameras; ++cam) {
    runtime::SyntheticCameraSource source(
        cam, camera_scene(cam), patterns[static_cast<std::size_t>(cam % kHeteroPatterns)],
        2000 + static_cast<std::uint64_t>(cam));
    RecordedStream stream;
    for (std::int64_t i = 0; i < frames_per_camera; ++i) {
      runtime::Frame frame = source.next_frame();
      stream.coded.push_back(std::move(frame.coded));
      stream.labels.push_back(frame.label);
    }
    streams.push_back(std::move(stream));
  }

  const auto run_once = [&](ArmResult& arm, bool trace_enabled, int sample_every) {
    runtime::ServerConfig server_cfg;
    server_cfg.batch.max_batch = kCameras;
    server_cfg.batch.max_delay = std::chrono::microseconds(2000);
    server_cfg.cache.shards = 2;
    server_cfg.cache.capacity_per_shard = 4;
    server_cfg.shards = 2;
    server_cfg.trace.enabled = trace_enabled;
    server_cfg.trace.sample_every = sample_every;
    auto server = std::make_unique<runtime::InferenceServer>(system, server_cfg);
    for (int cam = 0; cam < kCameras; ++cam) {
      auto camera = std::make_unique<runtime::ReplayCameraSource>(
          cam, patterns[static_cast<std::size_t>(cam % kHeteroPatterns)],
          streams[static_cast<std::size_t>(cam)].coded,
          streams[static_cast<std::size_t>(cam)].labels);
      if (cam >= kCameras - 2) {
        camera->set_task(runtime::Task::kReconstruct);
      }
      server->add_camera(std::move(camera));
    }
    arm.results = server->run(frames_per_camera);
    arm.fps.push_back(server->summary().aggregate_fps);
    arm.server = std::move(server);
  };

  // Reps are interleaved round-robin across arms so scheduler/thermal drift
  // hits every arm equally instead of biasing whichever arm ran last.
  ArmResult untraced;
  untraced.label = "untraced";
  ArmResult unsampled;
  unsampled.label = "unsampled_tracing";
  ArmResult sampled;
  sampled.label = "sampled_1_in_8";
  for (int rep = 0; rep < reps; ++rep) {
    run_once(untraced, false, 0);
    run_once(unsampled, true, 0);
    run_once(sampled, true, kSampleEvery);
  }
  for (ArmResult* arm : {&untraced, &unsampled, &sampled}) {
    arm->max_fps = *std::max_element(arm->fps.begin(), arm->fps.end());
    std::printf("\n[%s] fps per rep:", arm->label.c_str());
    for (const double fps : arm->fps) {
      std::printf(" %.1f", fps);
    }
    std::printf("  -> max %.1f\n", arm->max_fps);
  }

  // --- gates: throughput deltas + bit identity ------------------------------
  const double unsampled_ratio =
      untraced.max_fps > 0.0 ? unsampled.max_fps / untraced.max_fps : 0.0;
  const double sampled_ratio =
      untraced.max_fps > 0.0 ? sampled.max_fps / untraced.max_fps : 0.0;
  const bool unsampled_fast_enough = unsampled_ratio >= 0.98;
  const bool sampled_fast_enough = sampled_ratio >= 0.95;
  const bool bits_identical = results_identical(untraced.results, unsampled.results) &&
                              results_identical(untraced.results, sampled.results);

  bench::print_rule();
  std::printf("unsampled tracing: %.3fx untraced (gate >= 0.98)   sampled 1-in-%d: %.3fx "
              "(gate >= 0.95)\n",
              unsampled_ratio, kSampleEvery, sampled_ratio);
  std::printf("served bits identical across arms: %s\n", bits_identical ? "yes" : "NO");

  // --- trace completeness: every sampled served frame has a full lifecycle --
  const obs::TraceRecorder* recorder = sampled.server->trace_recorder();
  const std::size_t dropped = recorder->dropped_events();
  bool sorted = true;
  std::map<std::uint64_t, std::map<std::string, std::pair<int, int>>> lifecycle;
  std::set<std::string> complete_names;
  {
    std::int64_t prev_ts = std::numeric_limits<std::int64_t>::min();
    for (const obs::TraceEvent& e : recorder->all_events()) {
      sorted &= e.ts_ns >= prev_ts;
      prev_ts = e.ts_ns;
      if (e.cat == "frame") {
        auto& pair = lifecycle[e.id][e.name];
        (e.ph == 'b' ? pair.first : pair.second) += 1;
      } else if (e.ph == 'X') {
        complete_names.insert(e.name);
      }
    }
  }
  std::size_t sampled_frames = 0;
  bool lifecycles_complete = true;
  for (const runtime::TaskResult& result : sampled.results) {
    if (result.sequence % kSampleEvery != 0) {
      continue;
    }
    ++sampled_frames;
    const std::uint64_t id =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(result.camera_id)) << 32) |
        static_cast<std::uint64_t>(result.sequence & 0xFFFFFFFF);
    const auto it = lifecycle.find(id);
    if (it == lifecycle.end()) {
      lifecycles_complete = false;
      continue;
    }
    for (const char* name : {"frame", "capture", "queue_wait", "batch_assembly", "infer"}) {
      const auto span = it->second.find(name);
      lifecycles_complete &= span != it->second.end() && span->second.first == 1 &&
                             span->second.second == 1;
    }
  }
  const bool stage_spans_present =
      complete_names.count("serve_batch") > 0 && complete_names.count("cache_resolve") > 0 &&
      complete_names.count("encode") > 0;
  // No extra lifecycles either: exactly one async track per sampled frame.
  lifecycles_complete &= lifecycle.size() == sampled_frames;

  const std::string trace_text = sampled.server->trace_json();
  bool json_valid = true;
  std::size_t trace_events = 0;
  try {
    const testing::json::Value root = testing::json::parse(trace_text);
    trace_events = root.at("traceEvents").array.size();
  } catch (const std::exception& e) {
    json_valid = false;
    std::printf("trace JSON parse error: %s\n", e.what());
  }
  {
    std::ofstream trace_file("trace_obs.json");
    trace_file << trace_text;
  }

  std::printf("sampled frames served: %zu   lifecycles complete: %s   dropped events: %zu\n",
              sampled_frames, lifecycles_complete ? "yes" : "NO", dropped);
  std::printf("trace: %zu events, time-sorted: %s, stage spans: %s, valid JSON: %s "
              "(wrote trace_obs.json)\n",
              trace_events, sorted ? "yes" : "NO", stage_spans_present ? "yes" : "NO",
              json_valid ? "yes" : "NO");

  const auto arm_json = [](const ArmResult& arm) {
    std::string out = "{\"fps\": [";
    for (std::size_t i = 0; i < arm.fps.size(); ++i) {
      out += (i > 0 ? ", " : "") + std::to_string(arm.fps[i]);
    }
    out += "], \"max_fps\": " + std::to_string(arm.max_fps) + "}";
    return out;
  };
  {
    std::ofstream json("BENCH_obs.json");
    json << "{\n  \"cameras\": " << kCameras
         << ",\n  \"frames_per_camera\": " << frames_per_camera
         << ",\n  \"patterns\": " << kHeteroPatterns << ",\n  \"reps\": " << reps
         << ",\n  \"sample_every\": " << kSampleEvery
         << ",\n  \"untraced\": " << arm_json(untraced)
         << ",\n  \"unsampled_tracing\": " << arm_json(unsampled)
         << ",\n  \"sampled_tracing\": " << arm_json(sampled)
         << ",\n  \"unsampled_fps_ratio\": " << unsampled_ratio
         << ",\n  \"sampled_fps_ratio\": " << sampled_ratio
         << ",\n  \"unsampled_gate\": 0.98,\n  \"sampled_gate\": 0.95"
         << ",\n  \"bit_identical\": " << (bits_identical ? "true" : "false")
         << ",\n  \"sampled_frames\": " << sampled_frames
         << ",\n  \"trace_events\": " << trace_events
         << ",\n  \"dropped_events\": " << dropped
         << ",\n  \"lifecycles_complete\": " << (lifecycles_complete ? "true" : "false")
         << ",\n  \"trace_time_sorted\": " << (sorted ? "true" : "false")
         << ",\n  \"stage_spans_present\": " << (stage_spans_present ? "true" : "false")
         << ",\n  \"trace_json_valid\": " << (json_valid ? "true" : "false") << "\n}\n";
  }
  std::printf("wrote BENCH_obs.json\n");

  if (!unsampled_fast_enough) {
    std::printf("FAIL: unsampled tracing %.3fx untraced (gate 0.98x)\n", unsampled_ratio);
  }
  if (!sampled_fast_enough) {
    std::printf("FAIL: 1-in-%d sampling %.3fx untraced (gate 0.95x)\n", kSampleEvery,
                sampled_ratio);
  }
  if (!bits_identical) {
    std::printf("FAIL: tracing changed served bits\n");
  }
  if (!lifecycles_complete || sampled_frames == 0) {
    std::printf("FAIL: sampled frames missing complete trace lifecycles\n");
  }
  if (dropped != 0) {
    std::printf("FAIL: trace lanes dropped %zu events\n", dropped);
  }
  if (!sorted || !json_valid || !stage_spans_present) {
    std::printf("FAIL: trace export invalid (sorted=%d json=%d stages=%d)\n", sorted,
                json_valid, stage_spans_present);
  }
  const bool ok = unsampled_fast_enough && sampled_fast_enough && bits_identical &&
                  lifecycles_complete && sampled_frames > 0 && dropped == 0 && sorted &&
                  json_valid && stage_spans_present;
  return ok ? 0 : 1;
}
