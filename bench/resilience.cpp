// Resilience bench: does fleet health supervision actually contain faults?
//
// Two arms over replay fleets with entropy-coded framed links, driven by the
// chaos harness (tests/chaos.h):
//
//   degradation  4 cameras, 1 shard. Camera 0 rides through a seeded
//                burst-noise episode spanning three observation windows; the
//                health controller must walk it down the degradation ladder
//                (codec depth -> int8 -> best-effort), then walk it back up
//                hysteretically once the link clears. Cameras 1-3 stay
//                clean the whole run.
//   watchdog     4 cameras, 2 shards, work stealing off. Every camera homes
//                on one shard (shared pattern); a SlowShard hook wedges that
//                shard's worker mid-run, and the watchdog must detect the
//                stall, re-route the fleet to the sibling, and drain the
//                stranded queue — with camera 0 running realtime QoS.
//
// Gates (exit non-zero on any failure):
//   - the ladder engaged: camera 0 steps_down > 0, and every step down was
//     matched by a step up (steps_up == steps_down)
//   - recovery completed: camera 0 ends kHealthy at ladder step 0, and no
//     frame at or past the recovery deadline sequence is served degraded
//     (recovery within 4 windows of the episode ending)
//   - the ladder never leaks: cameras 1-3 see zero transitions, zero
//     transport drops, and every one of their answers is bit-identical to
//     the fault-free batch-1 reference
//   - full fidelity means full fidelity: every camera-0 answer served at
//     base depth + fp32 is bit-identical to the same reference
//   - exact per-camera conservation in both arms: offered == served + shed
//     + transport-dropped + quarantine-dropped
//   - the stall was real and caught: watchdog_stalls >= 1, rescued frames
//     re-routed (rerouted_frames >= 1), every frame of every camera served
//     (nothing lost to the hang), zero realtime sheds
//
// Writes BENCH_resilience.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "chaos.h"
#include "codec/bitplane.h"
#include "core/snappix.h"
#include "obs/metrics.h"
#include "runtime/camera.h"
#include "runtime/health.h"
#include "runtime/server.h"
#include "util/rng.h"

namespace {

using namespace snappix;

constexpr int kStreamImage = 16;
constexpr int kStreamFrames = 8;
constexpr int kCameras = 4;
constexpr int kBufferFrames = 6;
constexpr int kWindow = 8;  // health observation window (frames per camera)

// Episode geometry for the degradation arm, in sequence numbers: windows
// 1-3 are faulted (three bad windows = the full default ladder, never the
// "no rungs left" quarantine), everything after is clean. With
// recover_clean_windows = 1 the controller is back at step 0 by sequence
// kEpisodeEnd + 3 * kWindow; one extra window of slack is the deadline.
constexpr std::int64_t kEpisodeStart = 1 * kWindow;
constexpr std::int64_t kEpisodeEnd = 4 * kWindow;
constexpr std::int64_t kRecoveryDeadlineSeq = kEpisodeEnd + 4 * kWindow;

struct CameraLedger {
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t transitions = 0;
};

std::map<int, CameraLedger> ledger_from(const runtime::RuntimeSummary& summary,
                                        const std::vector<runtime::TaskResult>& results) {
  std::map<int, CameraLedger> ledger;
  for (const runtime::TaskResult& r : results) {
    ++ledger[r.camera_id].served;
  }
  for (const auto& [camera_id, counters] : summary.shed_cameras) {
    ledger[camera_id].shed = counters.queue_full + counters.deadline;
  }
  for (const auto& [camera_id, counters] : summary.transport_cameras) {
    ledger[camera_id].dropped = counters.dropped_frames;
  }
  for (const auto& [camera_id, counters] : summary.health_cameras) {
    ledger[camera_id].quarantined = counters.quarantine_drops;
    ledger[camera_id].transitions = counters.transitions;
  }
  return ledger;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  // The degradation arm needs the full episode + recovery runway; quick mode
  // only trims the healthy tail and the watchdog arm's load.
  const std::int64_t degrade_frames = quick ? kRecoveryDeadlineSeq + 2 * kWindow
                                            : kRecoveryDeadlineSeq + 6 * kWindow;
  const std::int64_t watchdog_frames = quick ? 60 : 120;

  bench::print_header("Resilience: degradation ladder + shard watchdog under chaos");
  std::printf("%d cameras, entropy-coded links, episode windows [%lld, %lld), window %d\n",
              kCameras, static_cast<long long>(kEpisodeStart),
              static_cast<long long>(kEpisodeEnd), kWindow);

  core::SnapPixConfig cfg;
  cfg.image = kStreamImage;
  cfg.frames = kStreamFrames;
  cfg.num_classes = 4;
  cfg.seed = 42;
  core::SnapPixSystem system(cfg);

  // Deterministic replay buffers + the fault-free batch-1 reference. The
  // clean codec wire reconstructs exactly dequantize(quantize(frame)), so
  // that round-trip IS the full-fidelity baseline every gate compares to.
  std::vector<std::vector<Tensor>> buffers;
  std::vector<std::vector<std::int64_t>> reference;
  for (int cam = 0; cam < kCameras; ++cam) {
    Rng rng(700 + static_cast<std::uint64_t>(cam));
    std::vector<Tensor> coded;
    std::vector<std::int64_t> predictions;
    for (int i = 0; i < kBufferFrames; ++i) {
      std::vector<float> data(kStreamImage * kStreamImage);
      for (float& v : data) {
        v = rng.uniform(0.0F, 1.0F);
      }
      Tensor frame = Tensor::from_vector(std::move(data), Shape{kStreamImage, kStreamImage});
      const Tensor wire = codec::dequantize_frame(codec::quantize_frame(frame));
      predictions.push_back(system.classify_coded(
          Tensor::from_vector(wire.data(), Shape{1, kStreamImage, kStreamImage}))[0]);
      coded.push_back(std::move(frame));
    }
    buffers.push_back(std::move(coded));
    reference.push_back(std::move(predictions));
  }

  bool ok = true;
  const auto gate = [&ok](bool pass, const char* what) {
    if (!pass) {
      std::printf("FAIL: %s\n", what);
      ok = false;
    }
    return pass;
  };

  const auto expect_reference = [&](const runtime::TaskResult& r) {
    return reference[static_cast<std::size_t>(r.camera_id)]
                    [static_cast<std::size_t>(r.sequence % kBufferFrames)];
  };

  // --- arm 1: degradation ladder + hysteretic recovery ------------------------
  runtime::RuntimeSummary degrade_summary;
  runtime::CameraHealthSnapshot afflicted;
  std::int64_t last_degraded_seq = -1;
  bool healthy_bit_identical = true;
  bool full_fidelity_bit_identical = true;
  std::uint64_t full_fidelity_checked = 0;
  double degrade_wall = 0.0;
  {
    runtime::ServerConfig server_cfg;
    server_cfg.batch.max_batch = 8;
    server_cfg.shards = 1;
    server_cfg.queue_capacity = 64;  // unloaded: resilience, not overload
    server_cfg.transport.corrupt = runtime::TransportPolicy::Corrupt::kRetransmit;
    server_cfg.transport.max_retransmits = 3;
    server_cfg.transport.backoff_initial = std::chrono::microseconds(20);
    // NOTE: retransmit_budget stays 0 — a wall-clock budget would make the
    // retry count (and so each link's fault-Rng stream) timing-dependent.
    server_cfg.health.enabled = true;
    server_cfg.health.window = kWindow;
    server_cfg.health.degrade_error_rate = 0.25;
    server_cfg.health.degrade_retransmit_rate = 1.0;
    // The episode must exercise the LADDER: park the quarantine thresholds
    // far above anything the burst can reach.
    server_cfg.health.quarantine_error_rate = 0.99;
    server_cfg.health.quarantine_consecutive_losses = 1000;
    server_cfg.health.recover_clean_windows = 1;
    runtime::InferenceServer server(system, server_cfg);
    for (int cam = 0; cam < kCameras; ++cam) {
      std::vector<chaos::Episode> schedule;
      if (cam == 0) {
        // Tuned so most attempts are corrupt (heavy retransmit traffic) and
        // a meaningful fraction of frames stay corrupt through the retry
        // budget — well over the degrade thresholds, under quarantine's.
        schedule.push_back(chaos::burst(kEpisodeStart, kEpisodeEnd,
                                        /*bit_flip_per_byte=*/0.0005,
                                        /*packet_drop_rate=*/0.12));
      }
      auto camera = std::make_unique<chaos::ChaosReplaySource>(
          cam, system.pattern_ref(), buffers[static_cast<std::size_t>(cam)],
          std::vector<std::int64_t>{}, std::move(schedule));
      transport::LinkConfig link;
      link.codec = true;
      link.faults.seed = 40 + static_cast<std::uint64_t>(cam);
      camera->set_framed(link);
      server.add_camera(std::move(camera));
    }

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<runtime::TaskResult> results = server.run(degrade_frames);
    degrade_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    degrade_summary = server.summary();
    afflicted = server.health()->snapshot(0);

    for (const runtime::TaskResult& r : results) {
      const bool full_fidelity =
          r.decode_depth == 0 && r.precision == runtime::Precision::kFp32;
      if (r.camera_id == 0) {
        if (!full_fidelity) {
          last_degraded_seq = std::max(last_degraded_seq, r.sequence);
        } else {
          ++full_fidelity_checked;
          if (r.predicted != expect_reference(r)) {
            full_fidelity_bit_identical = false;
          }
        }
      } else if (r.predicted != expect_reference(r)) {
        healthy_bit_identical = false;
      }
    }

    const std::map<int, CameraLedger> ledger = ledger_from(degrade_summary, results);
    for (int cam = 0; cam < kCameras; ++cam) {
      const CameraLedger& c = ledger.count(cam) ? ledger.at(cam) : CameraLedger{};
      if (c.served + c.shed + c.dropped + c.quarantined !=
          static_cast<std::uint64_t>(degrade_frames)) {
        std::printf("FAIL: [degradation] camera %d conservation broke: "
                    "%llu served + %llu shed + %llu dropped + %llu quarantined != %lld\n",
                    cam, static_cast<unsigned long long>(c.served),
                    static_cast<unsigned long long>(c.shed),
                    static_cast<unsigned long long>(c.dropped),
                    static_cast<unsigned long long>(c.quarantined),
                    static_cast<long long>(degrade_frames));
        ok = false;
      }
      if (cam != 0) {
        gate(c.transitions == 0, "the ladder leaked onto a healthy camera");
        gate(c.dropped == 0, "a clean link dropped frames");
      }
    }

    std::printf("\n[degradation] wall %.2fs  camera 0: %llu steps down, %llu up, "
                "%llu transitions, final %s @ step %d, last degraded seq %lld\n",
                degrade_wall, static_cast<unsigned long long>(afflicted.steps_down),
                static_cast<unsigned long long>(afflicted.steps_up),
                static_cast<unsigned long long>(afflicted.transitions),
                runtime::to_string(afflicted.state), afflicted.ladder_step,
                static_cast<long long>(last_degraded_seq));

    gate(afflicted.steps_down > 0, "the burst never engaged the ladder");
    gate(afflicted.steps_up == afflicted.steps_down,
         "recovery did not retrace every ladder step");
    gate(afflicted.state == runtime::HealthState::kHealthy,
         "afflicted camera did not end kHealthy");
    gate(afflicted.ladder_step == 0, "afflicted camera did not end at ladder step 0");
    gate(last_degraded_seq >= 0, "no frame was ever served degraded — chaos was inert");
    gate(last_degraded_seq < kRecoveryDeadlineSeq,
         "recovery exceeded the 4-window deadline after the episode");
    gate(healthy_bit_identical, "a healthy camera's answers diverged from the reference");
    gate(full_fidelity_checked > 0 && full_fidelity_bit_identical,
         "a full-fidelity answer from the afflicted camera diverged from the reference");
  }

  // --- arm 2: shard stall, watchdog rescue, re-route --------------------------
  runtime::RuntimeSummary watchdog_summary;
  bool rescue_bit_identical = true;
  double watchdog_wall = 0.0;
  {
    runtime::ServerConfig server_cfg;
    server_cfg.batch.max_batch = 4;
    server_cfg.shards = 2;
    server_cfg.queue_capacity = 4;
    server_cfg.work_stealing = false;  // the rescue path, not the thief, moves frames
    server_cfg.health.enabled = true;
    server_cfg.health.window = kWindow;
    server_cfg.health.watchdog.enabled = true;
    server_cfg.health.watchdog.poll = std::chrono::milliseconds(5);
    server_cfg.health.watchdog.stall_polls = 4;  // 20 ms >> the 2 ms batch max_delay
    // All cameras share the system pattern and home on one shard; wedge it.
    const std::size_t home = system.pattern_ref()->hash() % 2;
    chaos::SlowShard slow(home, /*after_batches=*/2,
                          std::chrono::milliseconds(quick ? 150 : 250));
    server_cfg.before_batch = slow;
    runtime::InferenceServer server(system, server_cfg);
    for (int cam = 0; cam < kCameras; ++cam) {
      auto camera = std::make_unique<runtime::ReplayCameraSource>(
          cam, system.pattern_ref(), buffers[static_cast<std::size_t>(cam)],
          std::vector<std::int64_t>{});
      transport::LinkConfig link;
      link.codec = true;
      link.faults.seed = 80 + static_cast<std::uint64_t>(cam);
      camera->set_framed(link);
      if (cam == 0) {
        camera->set_qos(runtime::QosClass::kRealtime);
      }
      server.add_camera(std::move(camera));
    }

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<runtime::TaskResult> results = server.run(watchdog_frames);
    watchdog_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    watchdog_summary = server.summary();

    std::map<int, std::uint64_t> served;
    for (const runtime::TaskResult& r : results) {
      ++served[r.camera_id];
      if (r.predicted != expect_reference(r)) {
        rescue_bit_identical = false;
      }
    }

    std::printf("\n[watchdog] wall %.2fs  %llu stalls detected, %llu frames re-routed, "
                "%llu served\n",
                watchdog_wall,
                static_cast<unsigned long long>(watchdog_summary.watchdog_stalls),
                static_cast<unsigned long long>(watchdog_summary.rerouted_frames),
                static_cast<unsigned long long>(watchdog_summary.frames));

    gate(slow.stalls_left() == 0, "the injected stall never fired");
    gate(watchdog_summary.watchdog_stalls >= 1, "the watchdog never detected the stall");
    gate(watchdog_summary.rerouted_frames >= 1, "the rescue re-routed nothing");
    gate(watchdog_summary.shed_realtime == 0, "realtime frames were shed during the rescue");
    // Clean links, no overload: conservation here means EVERY offered frame
    // of EVERY camera was served despite the hang — the stalled shard's
    // traffic survived the re-route exactly.
    for (int cam = 0; cam < kCameras; ++cam) {
      if (served[cam] != static_cast<std::uint64_t>(watchdog_frames)) {
        std::printf("FAIL: [watchdog] camera %d served %llu of %lld offered frames\n", cam,
                    static_cast<unsigned long long>(served[cam]),
                    static_cast<long long>(watchdog_frames));
        ok = false;
      }
    }
    gate(rescue_bit_identical, "a re-routed answer diverged from the reference");
  }

  bench::print_rule();
  {
    std::ofstream json("BENCH_resilience.json");
    json << "{\n  \"cameras\": " << kCameras << ",\n  \"quick\": " << (quick ? "true" : "false")
         << ",\n  \"window\": " << kWindow
         << ",\n  \"degradation\": {"
         << "\n    \"offered_per_camera\": " << degrade_frames
         << ",\n    \"served\": " << degrade_summary.frames
         << ",\n    \"steps_down\": " << afflicted.steps_down
         << ",\n    \"steps_up\": " << afflicted.steps_up
         << ",\n    \"transitions\": " << afflicted.transitions
         << ",\n    \"quarantine_drops\": " << afflicted.quarantine_drops
         << ",\n    \"final_state\": \"" << runtime::to_string(afflicted.state) << "\""
         << ",\n    \"final_ladder_step\": " << afflicted.ladder_step
         << ",\n    \"last_degraded_sequence\": " << last_degraded_seq
         << ",\n    \"recovery_deadline_sequence\": " << kRecoveryDeadlineSeq
         << ",\n    \"retransmits\": " << degrade_summary.transport.retransmits
         << ",\n    \"transport_dropped\": " << degrade_summary.transport.dropped_frames
         << ",\n    \"healthy_bit_identical\": " << (healthy_bit_identical ? "true" : "false")
         << ",\n    \"full_fidelity_bit_identical\": "
         << (full_fidelity_bit_identical ? "true" : "false")
         << ",\n    \"wall_seconds\": " << obs::json_number(degrade_wall) << "\n  }"
         << ",\n  \"watchdog\": {"
         << "\n    \"offered_per_camera\": " << watchdog_frames
         << ",\n    \"served\": " << watchdog_summary.frames
         << ",\n    \"watchdog_stalls\": " << watchdog_summary.watchdog_stalls
         << ",\n    \"rerouted_frames\": " << watchdog_summary.rerouted_frames
         << ",\n    \"shed_realtime\": " << watchdog_summary.shed_realtime
         << ",\n    \"bit_identical\": " << (rescue_bit_identical ? "true" : "false")
         << ",\n    \"wall_seconds\": " << obs::json_number(watchdog_wall) << "\n  }"
         << ",\n  \"gates_passed\": " << (ok ? "true" : "false") << "\n}\n";
  }
  std::printf("wrote BENCH_resilience.json\n");

  if (ok) {
    std::printf("all resilience gates passed\n");
  }
  return ok ? 0 : 1;
}
