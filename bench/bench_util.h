// Shared helpers for the benchmark harnesses: table formatting and the
// scaled-down experiment geometry used across all paper reproductions.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace snappix::bench {

// Experiment geometry: 32x32 frames, T = 16 slots, 8x8 CE tile == ViT patch.
// (The paper uses 112x112; the geometry ratio patch:image is preserved at
// at 1:4 of the paper's 1:14 to keep CPU training tractable.)
inline constexpr int kImage = 32;
inline constexpr int kFrames = 16;
inline constexpr int kTile = 8;

inline data::DatasetConfig bench_dataset(data::DatasetConfig base, int train_per_class,
                                         int test_per_class) {
  base.scene.frames = kFrames;
  base.scene.height = kImage;
  base.scene.width = kImage;
  base.train_per_class = train_per_class;
  base.test_per_class = test_per_class;
  return base;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

}  // namespace snappix::bench
