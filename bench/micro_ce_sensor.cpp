// google-benchmark micro-benchmarks for CE encoding and the cycle-level
// sensor simulator (Fig. 5 protocol throughput).
#include <benchmark/benchmark.h>

#include "ce/encode.h"
#include "ce/pattern.h"
#include "ce/stats.h"
#include "sensor/sensor.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace {

using namespace snappix;

void BM_CeEncode(benchmark::State& state) {
  const auto image = state.range(0);
  Rng rng(1);
  NoGradGuard guard;
  const auto pattern = ce::CePattern::random(16, 8, rng, 0.5F);
  const Tensor videos = Tensor::rand_uniform(Shape{4, 16, image, image}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ce::ce_encode(videos, pattern).data().data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * 16 * image * image);
}
BENCHMARK(BM_CeEncode)->Arg(32)->Arg(64)->Arg(112);

void BM_CeEncodeDiffTrainStep(benchmark::State& state) {
  Rng rng(2);
  Tensor weights = Tensor::rand_uniform(Shape{16, 8, 8}, rng, 0.3F, 0.7F, true);
  const Tensor videos = Tensor::rand_uniform(Shape{4, 16, 32, 32}, rng);
  for (auto _ : state) {
    weights.zero_grad();
    Tensor loss = ce::decorrelation_loss(ce::ce_encode_diff(videos, weights), 8);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_CeEncodeDiffTrainStep);

void BM_SensorCapture(benchmark::State& state) {
  const auto image = state.range(0);
  Rng rng(3);
  const auto pattern = ce::CePattern::random(16, 8, rng, 0.5F);
  sensor::SensorConfig cfg;
  cfg.height = image;
  cfg.width = image;
  cfg.adc.full_scale = cfg.electrons_per_unit * 16;
  cfg.pixel.full_well_electrons = cfg.adc.full_scale;
  sensor::StackedSensor sensor(cfg, pattern);
  const Tensor scene = Tensor::rand_uniform(Shape{16, image, image}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sensor.capture(scene, rng).data().data());
  }
  state.SetItemsProcessed(state.iterations() * image * image);
}
BENCHMARK(BM_SensorCapture)->Arg(32)->Arg(64)->Arg(112);

void BM_SensorCaptureWithNoise(benchmark::State& state) {
  Rng rng(4);
  const auto pattern = ce::CePattern::random(16, 8, rng, 0.5F);
  sensor::SensorConfig cfg;
  cfg.height = 64;
  cfg.width = 64;
  cfg.adc.full_scale = cfg.electrons_per_unit * 16;
  cfg.pixel.full_well_electrons = cfg.adc.full_scale;
  cfg.noise.enabled = true;
  sensor::StackedSensor sensor(cfg, pattern);
  const Tensor scene = Tensor::rand_uniform(Shape{16, 64, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sensor.capture(scene, rng).data().data());
  }
}
BENCHMARK(BM_SensorCaptureWithNoise);

void BM_DffChainStreaming(benchmark::State& state) {
  const int tile = static_cast<int>(state.range(0));
  sensor::DffShiftChain chain(tile * tile);
  const std::vector<std::uint8_t> bits(static_cast<std::size_t>(tile) * tile, 1);
  for (auto _ : state) {
    chain.load_slot(bits);
    benchmark::DoNotOptimize(chain.bit_at(0));
  }
  state.SetItemsProcessed(state.iterations() * tile * tile);
}
BENCHMARK(BM_DffChainStreaming)->Arg(4)->Arg(8)->Arg(14);

void BM_PearsonCorrelation(benchmark::State& state) {
  Rng rng(5);
  NoGradGuard guard;
  const Tensor coded = Tensor::rand_uniform(Shape{8, 32, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ce::mean_correlation(coded, 8));
  }
}
BENCHMARK(BM_PearsonCorrelation);

}  // namespace

BENCHMARK_MAIN();
