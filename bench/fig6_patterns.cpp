// Reproduces Fig. 6: comparison of task-agnostic CE patterns on AR accuracy
// (y-axis) and REC PSNR (x-axis), with each pattern's Pearson correlation
// coefficient (the figure's legend). The decorrelated pattern should be the
// only one strong on BOTH tasks; LONG/SHORT EXPOSURE should be clearly worst;
// the ordering of correlation coefficients should track task quality.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ce/encode.h"
#include "ce/pattern.h"
#include "ce/stats.h"
#include "data/dataset.h"
#include "models/vit.h"
#include "train/pattern_trainer.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace {

using namespace snappix;
using bench::kFrames;
using bench::kImage;
using bench::kTile;

struct PatternRow {
  std::string name;
  ce::CePattern pattern;
  float correlation = 0.0F;
  float ar_accuracy = 0.0F;
  float rec_psnr = 0.0F;
};

float train_ar(const ce::CePattern& pattern, const data::VideoDataset& dataset, int epochs) {
  Rng rng(11);
  models::ViTConfig cfg = models::ViTConfig::snappix_s(kImage, dataset.num_classes());
  models::SnapPixClassifier model(cfg, rng);
  auto transform = [&](const Tensor& videos) {
    return ce::normalize_by_exposure(ce::ce_encode(videos, pattern), pattern);
  };
  auto forward = [&](const Tensor& input) { return model.forward(input); };
  train::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 16;
  tc.lr = 3e-3F;
  return train::fit_classifier(model.parameters(), forward, dataset, transform, tc).test_metric;
}

float train_rec(const ce::CePattern& pattern, const data::VideoDataset& dataset, int epochs) {
  Rng rng(12);
  models::ViTConfig cfg = models::ViTConfig::snappix_s(kImage, dataset.num_classes());
  models::SnapPixReconstructor model(cfg, kFrames, rng);
  auto transform = [&](const Tensor& videos) {
    return ce::normalize_by_exposure(ce::ce_encode(videos, pattern), pattern);
  };
  auto forward = [&](const Tensor& input) { return model.forward(input); };
  train::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 16;
  tc.lr = 3e-3F;
  return train::fit_reconstructor(model.parameters(), forward, dataset, transform, tc)
      .test_metric;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 6 - Task-agnostic CE patterns: AR accuracy vs REC PSNR (SSV2-like)");

  const data::VideoDataset dataset(
      bench::bench_dataset(data::ssv2_like(kFrames, kImage), /*train=*/24, /*test=*/8));
  std::printf("dataset: %s, %d classes, %lld train / %lld test clips of %dx%dx%d\n",
              dataset.name().c_str(), dataset.num_classes(),
              static_cast<long long>(dataset.train_size()),
              static_cast<long long>(dataset.test_size()), kFrames, kImage, kImage);

  Rng rng(5);
  std::vector<PatternRow> rows;
  // Our decorrelated pattern (Sec. III), learned on the same dataset.
  {
    train::PatternTrainConfig pc;
    pc.tile = kTile;
    pc.steps = 120;
    pc.batch_size = 8;
    const auto learned = train::learn_decorrelated_pattern(dataset, pc);
    rows.push_back({"decorrelated (ours)", learned.pattern});
  }
  rows.push_back({"sparse random", ce::CePattern::sparse_random(kFrames, kTile, rng)});
  rows.push_back({"random p=0.5", ce::CePattern::random(kFrames, kTile, rng, 0.5F)});
  rows.push_back({"long exposure", ce::CePattern::long_exposure(kFrames, kTile)});
  rows.push_back({"short exposure", ce::CePattern::short_exposure(kFrames, kTile, 8)});

  // Pearson coefficient per pattern (the Fig. 6 legend) on a fixed batch.
  std::vector<std::int64_t> idx;
  for (std::int64_t i = 0; i < dataset.test_size(); ++i) {
    idx.push_back(i);
  }
  std::vector<std::int64_t> labels;
  const Tensor eval_videos = dataset.test_batch(idx, labels);

  const int ar_epochs = 15;
  const int rec_epochs = 8;
  for (auto& row : rows) {
    row.correlation = ce::mean_correlation(ce::ce_encode(eval_videos, row.pattern), kTile);
    std::printf("[training %-20s AR %d epochs + REC %d epochs]\n", row.name.c_str(), ar_epochs,
                rec_epochs);
    std::fflush(stdout);
    row.ar_accuracy = train_ar(row.pattern, dataset, ar_epochs);
    row.rec_psnr = train_rec(row.pattern, dataset, rec_epochs);
  }

  bench::print_rule();
  std::printf("%-22s %12s %14s %14s\n", "pattern", "pearson", "AR acc (%)", "REC PSNR (dB)");
  bench::print_rule();
  for (const auto& row : rows) {
    std::printf("%-22s %12.3f %14.2f %14.2f\n", row.name.c_str(),
                static_cast<double>(row.correlation),
                static_cast<double>(row.ar_accuracy * 100.0F),
                static_cast<double>(row.rec_psnr));
  }
  bench::print_rule();
  std::printf(
      "paper (112x112, SSV2): decorrelated 0.16 best jointly; random 0.29 best REC only;\n"
      "sparse-random 0.23 best AR only; long 0.38 / short 0.48 worst on both.\n");
  return 0;
}
