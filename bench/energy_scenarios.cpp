// Reproduces the Sec. VI-D energy analysis:
//  - component-level 16x reduction of ADC/MIPI and wireless energy at T=16,
//  - 7.6x edge energy saving with short-range passive Wi-Fi,
//  - ~15.4x with long-range LoRa backscatter,
//  - mobile-GPU scenario: SNAPPIX-S saves 1.4x vs VideoMAEv2-ST, 4.5x vs C3D.
#include <cstdio>

#include "bench_util.h"
#include "energy/model.h"
#include "energy/scenario.h"

int main() {
  using namespace snappix;
  using energy::WirelessTech;

  const energy::EnergyModel model;
  constexpr std::int64_t kPixels = 112 * 112;  // paper input resolution
  constexpr int kSlots = 16;

  bench::print_header("Sec. VI-D - Component energy reductions (T = 16, per pixel)");
  std::printf("%-28s %16s %16s %10s\n", "component", "baseline (pJ)", "snappix (pJ)",
              "reduction");
  bench::print_rule();
  for (const auto& row : energy::component_reductions(model, kSlots,
                                                      WirelessTech::kPassiveWifi)) {
    std::printf("%-28s %16.2f %16.2f %9.1fx\n", row.component.c_str(),
                row.baseline_pj_per_pixel, row.snappix_pj_per_pixel, row.reduction);
  }
  std::printf("(paper: ADC/MIPI and wireless energy both reduced 16x under T = 16)\n");

  bench::print_header("Sec. VI-D - Edge offload scenarios (112x112, T = 16)");
  std::printf("%-36s %14s %14s %10s\n", "scenario", "baseline (uJ)", "snappix (uJ)", "saving");
  bench::print_rule();
  for (const auto tech : {WirelessTech::kPassiveWifi, WirelessTech::kLoraBackscatter}) {
    const auto r = energy::offload_scenario(model, kPixels, kSlots, tech);
    std::printf("%-36s %14.2f %14.2f %9.2fx\n", r.name.c_str(), r.baseline_j * 1e6,
                r.snappix_j * 1e6, r.saving_factor);
  }
  std::printf("(paper: 7.6x short-range, 15.4x long-range)\n");

  bench::print_header("Sec. VI-D - Edge-GPU scenario (Jetson Xavier class, batch 1)");
  const energy::GpuModelParams gpu;
  const energy::GpuInference snappix_s{"snappix-s", energy::paper_snappix_s_gflops(), false};
  const energy::GpuInference snappix_b{"snappix-b", energy::paper_snappix_b_gflops(), false};
  const energy::GpuInference videomae{"videomae-st", energy::paper_videomae_st_gflops(), false};
  const energy::GpuInference c3d{"c3d", energy::paper_c3d_gflops(), true};
  std::printf("%-16s %10s %18s\n", "model", "GFLOPs", "GPU energy (J)");
  bench::print_rule();
  for (const auto& inf : {snappix_s, snappix_b, videomae, c3d}) {
    std::printf("%-16s %10.2f %18.3f\n", inf.name.c_str(), inf.gflops,
                energy::gpu_inference_energy_j(inf, gpu));
  }
  bench::print_rule();
  std::printf("%-36s %14s %14s %10s\n", "scenario", "baseline (J)", "snappix (J)", "saving");
  bench::print_rule();
  for (const auto& baseline : {videomae, c3d}) {
    const auto r = energy::edge_gpu_scenario(model, gpu, kPixels, kSlots, snappix_s, baseline);
    std::printf("%-36s %14.3f %14.3f %9.2fx\n", r.name.c_str(), r.baseline_j, r.snappix_j,
                r.saving_factor);
  }
  std::printf("(paper: SNAPPIX-S saves 1.4x vs VideoMAEv2-ST and 4.5x vs C3D)\n");
  return 0;
}
