// google-benchmark micro-benchmarks for the tensor/autograd hot paths.
#include <benchmark/benchmark.h>

#include <vector>

#include "nn/attention.h"
#include "tensor/gemm.h"
#include "tensor/gemm_s8.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace {

using namespace snappix;

void BM_MatmulForward(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  NoGradGuard guard;
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b).data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulForward)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulTrainStep(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::randn(Shape{n, n}, rng, 1.0F, true);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  for (auto _ : state) {
    a.zero_grad();
    Tensor loss = mean_all(square(matmul(a, b)));
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_MatmulTrainStep)->Arg(32)->Arg(64)->Arg(128);

// Raw backward GEMM kernels (matmul's gradient path): the register-tiled
// rewrites must show up here as items/sec gains over the old streaming
// versions while the gradcheck/bit-identity suites pin their exactness.
void BM_GemmNtBackward(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(31);
  std::vector<float> a(static_cast<std::size_t>(n * n)), b(static_cast<std::size_t>(n * n)),
      c(static_cast<std::size_t>(n * n), 0.0F);
  for (auto& v : a) {
    v = rng.uniform(-1.0F, 1.0F);
  }
  for (auto& v : b) {
    v = rng.uniform(-1.0F, 1.0F);
  }
  for (auto _ : state) {
    detail::gemm_nt(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNtBackward)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTnBackward(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(37);
  std::vector<float> a(static_cast<std::size_t>(n * n)), b(static_cast<std::size_t>(n * n)),
      c(static_cast<std::size_t>(n * n), 0.0F);
  for (auto& v : a) {
    v = rng.uniform(-1.0F, 1.0F);
  }
  for (auto& v : b) {
    v = rng.uniform(-1.0F, 1.0F);
  }
  for (auto _ : state) {
    detail::gemm_tn(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmTnBackward)->Arg(64)->Arg(128)->Arg(256);

// The int8 serving GEMM against the fp32 forward kernel at the same shape —
// the kernel-level slice of the BENCH_int8.json frontier.
void BM_GemmS8Forward(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(41);
  std::vector<std::int8_t> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n));
  std::vector<std::int32_t> c(static_cast<std::size_t>(n * n));
  for (auto& v : a) {
    v = static_cast<std::int8_t>(static_cast<int>(rng.uniform() * 255.0F) - 127);
  }
  for (auto& v : b) {
    v = static_cast<std::int8_t>(static_cast<int>(rng.uniform() * 255.0F) - 127);
  }
  for (auto _ : state) {
    detail::gemm_s8_nt(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmS8Forward)->Arg(64)->Arg(128)->Arg(256);

void BM_SoftmaxForward(benchmark::State& state) {
  Rng rng(3);
  NoGradGuard guard;
  const Tensor a = Tensor::randn(Shape{64, state.range(0)}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(softmax(a, -1).data().data());
  }
}
BENCHMARK(BM_SoftmaxForward)->Arg(64)->Arg(256)->Arg(1024);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(4);
  NoGradGuard guard;
  const Tensor x = Tensor::randn(Shape{1, 8, state.range(0), state.range(0)}, rng);
  const Tensor w = Tensor::randn(Shape{16, 8, 3, 3}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d(x, w, Tensor(), 1, 1).data().data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(32)->Arg(64);

void BM_TransformerBlockForward(benchmark::State& state) {
  Rng rng(5);
  NoGradGuard guard;
  nn::TransformerBlock block(64, 4, 2.0F, rng);
  const Tensor x = Tensor::randn(Shape{8, state.range(0), 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.forward(x).data().data());
  }
}
BENCHMARK(BM_TransformerBlockForward)->Arg(16)->Arg(64)->Arg(196);

void BM_BroadcastAdd(benchmark::State& state) {
  Rng rng(6);
  NoGradGuard guard;
  const Tensor a = Tensor::randn(Shape{64, state.range(0)}, rng);
  const Tensor b = Tensor::randn(Shape{state.range(0)}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(add(a, b).data().data());
  }
}
BENCHMARK(BM_BroadcastAdd)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
