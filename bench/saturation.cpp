// Saturation bench: does overload discipline actually hold at 3x capacity?
//
// Three arms over the same replay fleet (1 realtime + 5 best-effort cameras,
// one shared pattern, 1 shard):
//
//   baseline    unloaded run (standard QoS, ample queue) — measures the
//               serving capacity C (aggregate fps) that the overload arms
//               are scaled against, and demonstrates the unloaded reference
//               behavior: zero sheds.
//   saturation  producers paced so the fleet OFFERS ~3x C into a tiny
//               queue: the realtime camera offers C/5 (well under
//               capacity), the five best-effort cameras offer ~0.56C each.
//               Admission control must shed the excess from best-effort
//               traffic only.
//   drop_late   same offered load, but best-effort frames carry a deadline
//               budget of half the full-queue wait — frames that sit behind
//               a deep backlog expire and must be shed at dequeue, never
//               served stale. The realtime camera keeps no deadline.
//
// Gates (exit non-zero on any failure):
//   - overload was real: offered > served and best-effort sheds > 0 in both
//     overload arms; drop_late additionally sheds > 0 frames for kDeadline
//   - ZERO realtime sheds in every arm; the realtime camera is served in
//     full at bounded p99 (their producer never offers more than C/5)
//   - exact conservation per camera: offered == served + shed (the run
//     drains before returning, so nothing hides in flight)
//   - no starvation (saturation arm): every camera gets some service
//   - bit identity: every served prediction equals the batch-1 unloaded
//     reference for that replay slot — overload changes WHICH frames are
//     answered, never the bits of an answer
//
// Writes BENCH_saturation.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/snappix.h"
#include "obs/metrics.h"
#include "runtime/camera.h"
#include "runtime/server.h"
#include "util/rng.h"

namespace {

using namespace snappix;

constexpr int kStreamImage = 16;
constexpr int kStreamFrames = 8;
constexpr int kCameras = 6;       // camera 0 realtime, 1..5 best-effort
constexpr int kBufferFrames = 8;  // replay buffer depth per camera

// ReplayCameraSource with a fixed inter-frame gap: the bench's throttle for
// dialing OFFERED load to a multiple of measured capacity. The sleep sits in
// capture_frame, so a blocked admit (backpressure) still dominates the gap
// for realtime/standard producers, exactly as a real sensor's frame interval
// would.
class PacedReplaySource : public runtime::ReplayCameraSource {
 public:
  PacedReplaySource(int id, runtime::PatternRef pattern, std::vector<Tensor> coded,
                    std::chrono::microseconds gap)
      : runtime::ReplayCameraSource(id, std::move(pattern), std::move(coded), {}),
        gap_(gap) {}

 protected:
  runtime::Frame capture_frame() override {
    // Absolute schedule (due_ += gap, sleep_until) rather than sleep_for:
    // per-sleep overshoot would otherwise compound into a much lower offered
    // rate than the arm was dialed to — against an absolute schedule the
    // producer simply skips the sleep until it has caught back up.
    if (gap_.count() > 0) {
      if (due_.time_since_epoch().count() == 0) {
        due_ = std::chrono::steady_clock::now();
      }
      due_ += gap_;
      std::this_thread::sleep_until(due_);
    }
    return runtime::ReplayCameraSource::capture_frame();
  }

 private:
  std::chrono::microseconds gap_;
  std::chrono::steady_clock::time_point due_{};
};

struct ArmOutcome {
  std::string label;
  std::vector<std::int64_t> offered;            // per camera
  std::map<int, std::uint64_t> served;          // per camera
  std::map<int, std::uint64_t> shed;            // per camera (all reasons)
  runtime::RuntimeSummary summary;
  double wall_seconds = 0.0;
  bool bit_identical = true;
  std::uint64_t checked = 0;
};

double offered_fps(const ArmOutcome& arm) {
  std::int64_t total = 0;
  for (const std::int64_t n : arm.offered) {
    total += n;
  }
  return arm.wall_seconds > 0.0 ? static_cast<double>(total) / arm.wall_seconds : 0.0;
}

std::int64_t clamp64(double value, std::int64_t lo, std::int64_t hi) {
  const auto v = static_cast<std::int64_t>(value);
  return std::max(lo, std::min(hi, v));
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const double duration_s = quick ? 0.6 : 1.5;      // target wall per overload arm
  const std::int64_t baseline_frames = quick ? 40 : 80;  // per camera

  bench::print_header("Saturation: QoS admission control + drop-late under 3x offered load");
  std::printf("%d cameras (1 realtime, %d best-effort), shared pattern, 1 shard\n", kCameras,
              kCameras - 1);

  core::SnapPixConfig cfg;
  cfg.image = kStreamImage;
  cfg.frames = kStreamFrames;
  cfg.num_classes = 4;
  cfg.seed = 42;
  core::SnapPixSystem system(cfg);

  // Deterministic replay buffers + the batch-1 reference predictions every
  // served frame is checked against (the engines are batch-invariant, so
  // batch-1 IS the unloaded answer).
  std::vector<std::vector<Tensor>> buffers;
  std::vector<std::vector<std::int64_t>> reference;
  for (int cam = 0; cam < kCameras; ++cam) {
    Rng rng(300 + static_cast<std::uint64_t>(cam));
    std::vector<Tensor> coded;
    std::vector<std::int64_t> predictions;
    for (int i = 0; i < kBufferFrames; ++i) {
      std::vector<float> data(kStreamImage * kStreamImage);
      for (float& v : data) {
        v = rng.uniform(0.0F, 1.0F);
      }
      Tensor frame = Tensor::from_vector(std::move(data), Shape{kStreamImage, kStreamImage});
      predictions.push_back(system.classify_coded(
          Tensor::from_vector(frame.data(), Shape{1, kStreamImage, kStreamImage}))[0]);
      coded.push_back(std::move(frame));
    }
    buffers.push_back(std::move(coded));
    reference.push_back(std::move(predictions));
  }

  // One arm: build the fleet, run it, tally per-camera conservation and
  // check every served bit against the reference.
  const auto run_arm = [&](const std::string& label, std::size_t queue_capacity,
                           runtime::QosClass fleet_qos,
                           const std::vector<std::int64_t>& frames_per_camera,
                           std::chrono::microseconds realtime_gap,
                           std::chrono::microseconds best_effort_gap,
                           std::chrono::microseconds best_effort_deadline) {
    runtime::ServerConfig server_cfg;
    server_cfg.batch.max_batch = 8;
    server_cfg.shards = 1;
    server_cfg.queue_capacity = queue_capacity;
    server_cfg.qos = fleet_qos;
    runtime::InferenceServer server(system, server_cfg);
    for (int cam = 0; cam < kCameras; ++cam) {
      auto camera = std::make_unique<PacedReplaySource>(
          cam, system.pattern_ref(), buffers[static_cast<std::size_t>(cam)],
          cam == 0 ? realtime_gap : best_effort_gap);
      if (cam == 0) {
        camera->set_qos(runtime::QosClass::kRealtime);
      } else if (best_effort_deadline.count() > 0) {
        camera->set_deadline_budget(best_effort_deadline);
      }
      server.add_camera(std::move(camera));
    }

    ArmOutcome arm;
    arm.label = label;
    arm.offered = frames_per_camera;
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<runtime::TaskResult> results = server.run(frames_per_camera);
    arm.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    arm.summary = server.summary();

    for (const runtime::TaskResult& r : results) {
      ++arm.served[r.camera_id];
      ++arm.checked;
      const std::int64_t expect =
          reference[static_cast<std::size_t>(r.camera_id)]
                   [static_cast<std::size_t>(r.sequence % kBufferFrames)];
      if (r.predicted != expect) {
        arm.bit_identical = false;
      }
    }
    for (const auto& [camera_id, counters] : arm.summary.shed_cameras) {
      arm.shed[camera_id] = counters.queue_full + counters.deadline;
    }
    std::printf("\n[%s] wall %.2fs  offered %.0f fps  served %llu frames "
                "(shed: %llu queue_full, %llu deadline; %llu misses)\n",
                arm.label.c_str(), arm.wall_seconds, offered_fps(arm),
                static_cast<unsigned long long>(arm.summary.frames),
                static_cast<unsigned long long>(arm.summary.shed_queue_full),
                static_cast<unsigned long long>(arm.summary.shed_deadline),
                static_cast<unsigned long long>(arm.summary.deadline_misses));
    return arm;
  };

  // --- baseline: unloaded capacity --------------------------------------------
  const ArmOutcome baseline =
      run_arm("baseline", 64, runtime::QosClass::kStandard,
              std::vector<std::int64_t>(kCameras, baseline_frames),
              std::chrono::microseconds(0), std::chrono::microseconds(0),
              std::chrono::microseconds(0));
  const double capacity_fps =
      std::max(50.0, std::min(200000.0, baseline.summary.aggregate_fps));
  std::printf("measured serving capacity: %.0f fps\n", capacity_fps);

  // --- overload geometry: offer ~3x capacity ----------------------------------
  // Realtime offers C/5; each best-effort camera offers (3C - C/5)/5 = 0.56C.
  const auto rt_gap = std::chrono::microseconds(static_cast<std::int64_t>(5e6 / capacity_fps));
  const auto be_gap =
      std::chrono::microseconds(static_cast<std::int64_t>(1e6 / (0.56 * capacity_fps)));
  const std::int64_t rt_frames = clamp64(duration_s * capacity_fps / 5.0, 20, 20000);
  const std::int64_t be_frames = clamp64(duration_s * 0.56 * capacity_fps, 20, 20000);
  std::vector<std::int64_t> overload_offered(kCameras, be_frames);
  overload_offered[0] = rt_frames;
  // Drop-late budget: half the time a frame would wait behind a FULL queue,
  // so admitted frames expire exactly when the backlog is deep.
  constexpr std::size_t kOverloadQueue = 16;
  const auto be_deadline = std::chrono::microseconds(
      static_cast<std::int64_t>(0.5 * 1e6 * static_cast<double>(kOverloadQueue) / capacity_fps));

  const ArmOutcome saturation =
      run_arm("saturation", kOverloadQueue, runtime::QosClass::kBestEffort, overload_offered,
              rt_gap, be_gap, std::chrono::microseconds(0));
  const ArmOutcome drop_late =
      run_arm("drop_late", kOverloadQueue, runtime::QosClass::kBestEffort, overload_offered,
              rt_gap, be_gap, be_deadline);

  // --- gates -------------------------------------------------------------------
  bool ok = true;
  const auto gate = [&ok](bool pass, const char* what) {
    if (!pass) {
      std::printf("FAIL: %s\n", what);
      ok = false;
    }
    return pass;
  };

  gate(baseline.summary.shed_frames == 0, "baseline run shed frames while unloaded");
  gate(baseline.bit_identical && baseline.checked > 0, "baseline predictions diverged");

  const auto check_overload_arm = [&](const ArmOutcome& arm, bool require_progress_everywhere,
                                      bool require_deadline_sheds) {
    // Conservation, per camera, exactly.
    for (int cam = 0; cam < kCameras; ++cam) {
      const std::uint64_t served =
          arm.served.count(cam) ? arm.served.at(cam) : 0;
      const std::uint64_t shed = arm.shed.count(cam) ? arm.shed.at(cam) : 0;
      if (served + shed != static_cast<std::uint64_t>(arm.offered[static_cast<std::size_t>(cam)])) {
        std::printf("FAIL: [%s] camera %d conservation broke: %llu served + %llu shed != %lld "
                    "offered\n",
                    arm.label.c_str(), cam, static_cast<unsigned long long>(served),
                    static_cast<unsigned long long>(shed),
                    static_cast<long long>(arm.offered[static_cast<std::size_t>(cam)]));
        ok = false;
      }
    }
    gate(arm.summary.shed_realtime == 0, "realtime frames were shed");
    gate(arm.served.count(0) != 0 &&
             arm.served.at(0) == static_cast<std::uint64_t>(arm.offered[0]),
         "realtime camera not served in full");
    gate(arm.summary.shed_best_effort > 0, "overload arm shed nothing — not saturated");
    gate(arm.summary.frames < static_cast<std::uint64_t>(arm.offered[0]) +
                                  static_cast<std::uint64_t>(kCameras - 1) *
                                      static_cast<std::uint64_t>(arm.offered[1]),
         "overload arm served everything — offered load did not exceed capacity");
    gate(arm.bit_identical && arm.checked > 0, "served predictions diverged from reference");
    gate(arm.summary.e2e_realtime.count > 0 && arm.summary.e2e_realtime.p99_ms < 500.0,
         "realtime p99 unbounded under overload");
    if (require_progress_everywhere) {
      for (int cam = 0; cam < kCameras; ++cam) {
        if (!arm.served.count(cam) || arm.served.at(cam) == 0) {
          std::printf("FAIL: [%s] camera %d starved\n", arm.label.c_str(), cam);
          ok = false;
        }
      }
    }
    if (require_deadline_sheds) {
      gate(arm.summary.shed_deadline > 0, "drop-late arm shed nothing for kDeadline");
    }
  };
  check_overload_arm(saturation, /*require_progress_everywhere=*/true,
                     /*require_deadline_sheds=*/false);
  check_overload_arm(drop_late, /*require_progress_everywhere=*/false,
                     /*require_deadline_sheds=*/true);

  bench::print_rule();
  std::printf("realtime p99: baseline %s ms, saturation %s ms, drop_late %s ms\n",
              obs::json_number(baseline.summary.e2e_realtime.p99_ms).c_str(),
              obs::json_number(saturation.summary.e2e_realtime.p99_ms).c_str(),
              obs::json_number(drop_late.summary.e2e_realtime.p99_ms).c_str());

  const auto arm_json = [&](const ArmOutcome& arm) {
    std::int64_t offered_total = 0;
    for (const std::int64_t n : arm.offered) {
      offered_total += n;
    }
    std::string out = "{\n    \"offered\": " + std::to_string(offered_total) +
                      ",\n    \"served\": " + std::to_string(arm.summary.frames) +
                      ",\n    \"shed_queue_full\": " + std::to_string(arm.summary.shed_queue_full) +
                      ",\n    \"shed_deadline\": " + std::to_string(arm.summary.shed_deadline) +
                      ",\n    \"shed_realtime\": " + std::to_string(arm.summary.shed_realtime) +
                      ",\n    \"deadline_misses\": " + std::to_string(arm.summary.deadline_misses) +
                      ",\n    \"offered_fps\": " + obs::json_number(offered_fps(arm)) +
                      ",\n    \"served_fps\": " + obs::json_number(arm.summary.aggregate_fps) +
                      ",\n    \"wall_seconds\": " + obs::json_number(arm.wall_seconds) +
                      ",\n    \"realtime_p99_ms\": " +
                      obs::json_number(arm.summary.e2e_realtime.p99_ms) +
                      ",\n    \"bit_identical\": " + (arm.bit_identical ? "true" : "false") +
                      "\n  }";
    return out;
  };
  {
    std::ofstream json("BENCH_saturation.json");
    json << "{\n  \"cameras\": " << kCameras << ",\n  \"quick\": " << (quick ? "true" : "false")
         << ",\n  \"capacity_fps\": " << obs::json_number(capacity_fps)
         << ",\n  \"target_overload_factor\": 3.0"
         << ",\n  \"achieved_overload_factor\": "
         << obs::json_number(capacity_fps > 0.0 ? offered_fps(saturation) / capacity_fps : 0.0)
         << ",\n  \"baseline\": " << arm_json(baseline)
         << ",\n  \"saturation\": " << arm_json(saturation)
         << ",\n  \"drop_late\": " << arm_json(drop_late)
         << ",\n  \"gates_passed\": " << (ok ? "true" : "false") << "\n}\n";
  }
  std::printf("wrote BENCH_saturation.json\n");

  if (ok) {
    std::printf("all saturation gates passed\n");
  }
  return ok ? 0 : 1;
}
