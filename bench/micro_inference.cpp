// google-benchmark micro-benchmarks for model inference latency — the
// relative speeds behind Table I's inference/sec column (CE single-image
// models must beat video-input models), plus the serving-engine frontier:
// the tape-framework forward against the fused BatchedVitEngine (fp32,
// bit-exact) and the calibrated QuantizedVitEngine (int8), for both task
// heads. Comparing BM_TapeClassify / BM_FusedClassifyFp32 /
// BM_FusedClassifyInt8 items-per-second gives the fused-vs-tape speedup per
// precision in one report.
#include <benchmark/benchmark.h>

#include "models/baselines.h"
#include "models/vit.h"
#include "runtime/engine.h"
#include "runtime/quant.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace {

using namespace snappix;

constexpr int kImage = 32;
constexpr int kFrames = 16;
constexpr int kBatch = 8;

// Shared fixture for the engine-frontier benches: one classifier +
// reconstructor pair (shared encoder), calibrated once.
struct EngineBench {
  EngineBench()
      : rng(21),
        classifier(models::ViTConfig::snappix_s(kImage, 10), rng),
        reconstructor(classifier.encoder(), 8, rng),
        coded(Tensor::rand_uniform(Shape{kBatch, kImage, kImage}, rng)),
        spec(runtime::calibrate(classifier, reconstructor,
                                Tensor::rand_uniform(Shape{16, kImage, kImage}, rng))),
        fused(classifier, reconstructor, kBatch),
        quantized(classifier, reconstructor, spec, kBatch) {}

  static EngineBench& instance() {
    static EngineBench bench;
    return bench;
  }

  Rng rng;
  models::SnapPixClassifier classifier;
  models::SnapPixReconstructor reconstructor;
  Tensor coded;
  runtime::QuantSpec spec;
  runtime::BatchedVitEngine fused;
  runtime::QuantizedVitEngine quantized;
};

void BM_SnapPixS(benchmark::State& state) {
  Rng rng(1);
  NoGradGuard guard;
  models::SnapPixClassifier model(models::ViTConfig::snappix_s(kImage, 10), rng);
  const Tensor coded = Tensor::rand_uniform(Shape{kBatch, kImage, kImage}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(coded).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_SnapPixS);

void BM_SnapPixB(benchmark::State& state) {
  Rng rng(2);
  NoGradGuard guard;
  models::SnapPixClassifier model(models::ViTConfig::snappix_b(kImage, 10), rng);
  const Tensor coded = Tensor::rand_uniform(Shape{kBatch, kImage, kImage}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(coded).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_SnapPixB);

// --- serving-engine frontier: tape vs fused fp32 vs fused int8 --------------

void BM_TapeClassify(benchmark::State& state) {
  NoGradGuard guard;
  EngineBench& bench = EngineBench::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.classifier.forward(bench.coded).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_TapeClassify);

void BM_FusedClassifyFp32(benchmark::State& state) {
  NoGradGuard guard;
  EngineBench& bench = EngineBench::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.fused.classify_logits(bench.coded).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_FusedClassifyFp32);

void BM_FusedClassifyInt8(benchmark::State& state) {
  NoGradGuard guard;
  EngineBench& bench = EngineBench::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.quantized.classify_logits(bench.coded).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_FusedClassifyInt8);

void BM_TapeReconstruct(benchmark::State& state) {
  NoGradGuard guard;
  EngineBench& bench = EngineBench::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.reconstructor.forward(bench.coded).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_TapeReconstruct);

void BM_FusedReconstructFp32(benchmark::State& state) {
  NoGradGuard guard;
  EngineBench& bench = EngineBench::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.fused.reconstruct(bench.coded).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_FusedReconstructFp32);

void BM_FusedReconstructInt8(benchmark::State& state) {
  NoGradGuard guard;
  EngineBench& bench = EngineBench::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.quantized.reconstruct(bench.coded).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_FusedReconstructInt8);

void BM_Svc2d(benchmark::State& state) {
  Rng rng(3);
  NoGradGuard guard;
  models::Svc2dModel model(kImage, 8, 10, rng);
  const Tensor coded = Tensor::rand_uniform(Shape{kBatch, kImage, kImage}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(coded).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_Svc2d);

void BM_C3d(benchmark::State& state) {
  Rng rng(4);
  NoGradGuard guard;
  models::C3dModel model(kImage, kFrames, 10, rng);
  const Tensor video = Tensor::rand_uniform(Shape{kBatch, kFrames, kImage, kImage}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(video).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_C3d);

void BM_VideoViT(benchmark::State& state) {
  Rng rng(5);
  NoGradGuard guard;
  models::VideoViTConfig cfg;
  cfg.image_h = kImage;
  cfg.image_w = kImage;
  cfg.frames = kFrames;
  cfg.dim = 48;
  cfg.depth = 2;
  cfg.heads = 4;
  cfg.num_classes = 10;
  models::VideoViT model(cfg, rng);
  const Tensor video = Tensor::rand_uniform(Shape{kBatch, kFrames, kImage, kImage}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(video).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_VideoViT);

}  // namespace

BENCHMARK_MAIN();
