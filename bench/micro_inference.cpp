// google-benchmark micro-benchmarks for model inference latency — the
// relative speeds behind Table I's inference/sec column (CE single-image
// models must beat video-input models).
#include <benchmark/benchmark.h>

#include "models/baselines.h"
#include "models/vit.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace {

using namespace snappix;

constexpr int kImage = 32;
constexpr int kFrames = 16;
constexpr int kBatch = 8;

void BM_SnapPixS(benchmark::State& state) {
  Rng rng(1);
  NoGradGuard guard;
  models::SnapPixClassifier model(models::ViTConfig::snappix_s(kImage, 10), rng);
  const Tensor coded = Tensor::rand_uniform(Shape{kBatch, kImage, kImage}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(coded).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_SnapPixS);

void BM_SnapPixB(benchmark::State& state) {
  Rng rng(2);
  NoGradGuard guard;
  models::SnapPixClassifier model(models::ViTConfig::snappix_b(kImage, 10), rng);
  const Tensor coded = Tensor::rand_uniform(Shape{kBatch, kImage, kImage}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(coded).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_SnapPixB);

void BM_Svc2d(benchmark::State& state) {
  Rng rng(3);
  NoGradGuard guard;
  models::Svc2dModel model(kImage, 8, 10, rng);
  const Tensor coded = Tensor::rand_uniform(Shape{kBatch, kImage, kImage}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(coded).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_Svc2d);

void BM_C3d(benchmark::State& state) {
  Rng rng(4);
  NoGradGuard guard;
  models::C3dModel model(kImage, kFrames, 10, rng);
  const Tensor video = Tensor::rand_uniform(Shape{kBatch, kFrames, kImage, kImage}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(video).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_C3d);

void BM_VideoViT(benchmark::State& state) {
  Rng rng(5);
  NoGradGuard guard;
  models::VideoViTConfig cfg;
  cfg.image_h = kImage;
  cfg.image_w = kImage;
  cfg.frames = kFrames;
  cfg.dim = 48;
  cfg.depth = 2;
  cfg.heads = 4;
  cfg.num_classes = 10;
  models::VideoViT model(cfg, rng);
  const Tensor video = Tensor::rand_uniform(Shape{kBatch, kFrames, kImage, kImage}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(video).data().data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_VideoViT);

}  // namespace

BENCHMARK_MAIN();
