// Reproduces the Sec. VI-D closing comparison: a simple compression baseline
// that spatially downsamples each frame 16x (4x4 average filtering, matching
// SNAPPIX's compression rate) and feeds the video model, vs SNAPPIX-B on the
// coded image. Paper: the baseline loses 9.83 / 6.24 / 16.45% accuracy on
// UCF-101 / SSV2 / K400.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/snappix.h"
#include "data/dataset.h"
#include "models/baselines.h"
#include "train/pattern_trainer.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace {

using namespace snappix;
using bench::kFrames;
using bench::kImage;
using bench::kTile;

constexpr int kEpochs = 12;
constexpr int kDownsample = 4;  // 4x4 averaging = 16x spatial compression

}  // namespace

int main() {
  bench::print_header(
      "Sec. VI-D - Downsample-16x + video model vs SNAPPIX-B (same compression rate)");

  const std::vector<data::DatasetConfig> dataset_configs = {
      bench::bench_dataset(data::ucf101_like(kFrames, kImage), 24, 8),
      bench::bench_dataset(data::ssv2_like(kFrames, kImage), 24, 8),
      bench::bench_dataset(data::k400_like(kFrames, kImage), 24, 8),
  };

  std::printf("%-14s %22s %22s %10s\n", "dataset", "downsample+video (%)", "SNAPPIX-B (%)",
              "delta");
  bench::print_rule();
  for (const auto& cfg : dataset_configs) {
    const data::VideoDataset dataset(cfg);

    // Downsample baseline: 4x4 average filter, then a video transformer on
    // the 8x8 frames.
    Rng rng(17);
    models::VideoViTConfig vc;
    vc.image_h = kImage / kDownsample;
    vc.image_w = kImage / kDownsample;
    vc.frames = kFrames;
    vc.tubelet_t = 2;
    vc.patch = kImage / kDownsample;  // single spatial patch per frame pair
    vc.dim = 48;
    vc.depth = 2;
    vc.heads = 4;
    vc.num_classes = dataset.num_classes();
    models::VideoViT video_model(vc, rng);
    auto down_transform = [](const Tensor& videos) {
      return data::downsample_videos(videos, kDownsample);
    };
    auto down_forward = [&](const Tensor& input) { return video_model.forward(input); };
    train::TrainConfig tc;
    tc.epochs = kEpochs;
    tc.batch_size = 16;
    tc.lr = 2e-3F;
    std::printf("[%s: training downsample baseline]\n", dataset.name().c_str());
    std::fflush(stdout);
    const float down_acc = train::fit_classifier(video_model.parameters(), down_forward,
                                                 dataset, down_transform, tc)
                               .test_metric;

    // SNAPPIX-B on the decorrelated coded image (same 16x compression),
    // trained from scratch with the same epoch budget as the baseline.
    core::SnapPixConfig sc;
    sc.image = kImage;
    sc.frames = kFrames;
    sc.tile = kTile;
    sc.backbone = core::Backbone::kSnapPixB;
    sc.num_classes = dataset.num_classes();
    core::SnapPixSystem system(sc);
    train::PatternTrainConfig pc;
    pc.tile = kTile;
    pc.steps = 100;
    pc.batch_size = 8;
    system.learn_pattern(dataset, pc);
    std::printf("[%s: training SNAPPIX-B]\n", dataset.name().c_str());
    std::fflush(stdout);
    train::TrainConfig sc_tc;
    sc_tc.epochs = kEpochs;
    sc_tc.batch_size = 16;
    sc_tc.lr = 2e-3F;
    const float snappix_acc = system.train_action_recognition(dataset, sc_tc).test_metric;

    std::printf("%-14s %21.2f%% %21.2f%% %9.2f%%\n", dataset.name().c_str(),
                static_cast<double>(down_acc * 100.0F),
                static_cast<double>(snappix_acc * 100.0F),
                static_cast<double>((down_acc - snappix_acc) * 100.0F));
  }
  bench::print_rule();
  std::printf("paper deltas: -9.83%% (UCF-101), -6.24%% (SSV2), -16.45%% (K400)\n");
  return 0;
}
