// Property tests for the bit-plane entropy codec (codec/bitplane.h): full-
// depth losslessness, monotone fidelity in decoded depth, truncatability at
// every plane boundary, and safe rejection of corrupt or truncated streams.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "codec/bitplane.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snappix {
namespace {

using codec::BitplaneDecode;
using codec::decode_bitplanes;
using codec::dequantize_frame;
using codec::encode_bitplanes;
using codec::kMaxBitplanes;
using codec::kStreamHeaderBytes;
using codec::parse_stream_header;
using codec::PlaneStream;
using codec::quantize_frame;
using codec::QuantizedFrame;
using codec::serialize_stream_header;

// The geometries the property sweeps cover: degenerate, odd, square, wide.
struct Geometry {
  std::int64_t height;
  std::int64_t width;
};
constexpr Geometry kGeometries[] = {{1, 1}, {7, 5}, {16, 16}, {32, 8}, {3, 17}};

double mse(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    sum += d * d;
  }
  return sum / static_cast<double>(a.data().size());
}

TEST(Quantize, RoundTripIsExactForRepresentableValues) {
  // Values that are exact multiples of the scale survive the int16 round trip.
  QuantizedFrame frame;
  frame.scale = 0.25F;
  frame.height = 2;
  frame.width = 2;
  frame.values = {100, -200, 32767, 0};
  const Tensor deq = dequantize_frame(frame);
  const QuantizedFrame again = quantize_frame(deq);
  EXPECT_EQ(again.values, frame.values);
}

TEST(Quantize, AllZeroFrameHasZeroScaleAndNoPlanes) {
  const QuantizedFrame q = quantize_frame(Tensor::zeros(Shape{4, 4}));
  EXPECT_EQ(q.scale, 0.0F);
  const PlaneStream stream = encode_bitplanes(q);
  EXPECT_EQ(stream.plane_count, 0);
  EXPECT_TRUE(stream.planes.empty());
  const BitplaneDecode decode = decode_bitplanes(stream);
  EXPECT_EQ(decode.decoded_planes, 0);
  const Tensor out = dequantize_frame(decode.frame);
  for (const float v : out.data()) {
    EXPECT_EQ(v, 0.0F);
  }
}

TEST(Quantize, InvalidInputsThrow) {
  EXPECT_THROW(quantize_frame(Tensor::zeros(Shape{4})), std::exception);
  EXPECT_THROW(quantize_frame(Tensor::zeros(Shape{2, 2, 2})), std::exception);
  std::vector<float> bad = {1.0F, std::numeric_limits<float>::quiet_NaN()};
  EXPECT_THROW(quantize_frame(Tensor::from_vector(bad, Shape{1, 2})), std::exception);
}

// Full-depth decode reproduces the int16 values exactly, for every geometry
// and seed — the guarantee the framed codec path's bit-identity rests on.
TEST(Bitplane, FullDepthIsLossless) {
  for (const Geometry geo : kGeometries) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Rng rng(seed);
      const Tensor coded =
          Tensor::rand_uniform(Shape{geo.height, geo.width}, rng, -3.0F, 3.0F);
      const QuantizedFrame q = quantize_frame(coded);
      const PlaneStream stream = encode_bitplanes(q);
      const BitplaneDecode decode = decode_bitplanes(stream);
      EXPECT_EQ(decode.decoded_planes, static_cast<int>(stream.plane_count));
      ASSERT_EQ(decode.frame.values.size(), q.values.size());
      EXPECT_EQ(decode.frame.values, q.values)
          << "lossy at geometry " << geo.height << "x" << geo.width << " seed " << seed;
      // And therefore the dequantized floats are bit-identical to the
      // in-memory quantize -> dequantize round trip.
      const Tensor wire_view = dequantize_frame(decode.frame);
      const Tensor memory_view = dequantize_frame(q);
      EXPECT_EQ(std::memcmp(wire_view.data().data(), memory_view.data().data(),
                            wire_view.data().size() * sizeof(float)),
                0);
    }
  }
}

// Decoding more planes never increases the error: the zero-fill of undecoded
// low bits makes per-coefficient error monotone in depth.
TEST(Bitplane, ErrorIsMonotoneInDecodedDepth) {
  Rng rng(42);
  const Tensor coded = Tensor::rand_uniform(Shape{16, 16}, rng, -2.0F, 2.0F);
  const QuantizedFrame q = quantize_frame(coded);
  const PlaneStream stream = encode_bitplanes(q);
  const Tensor reference = dequantize_frame(q);
  ASSERT_GT(stream.plane_count, 2);
  double prev = std::numeric_limits<double>::infinity();
  for (int depth = 1; depth <= stream.plane_count; ++depth) {
    const BitplaneDecode decode = decode_bitplanes(stream, depth);
    EXPECT_EQ(decode.decoded_planes, depth);
    const double err = mse(dequantize_frame(decode.frame), reference);
    EXPECT_LE(err, prev) << "MSE increased at depth " << depth;
    prev = err;
  }
  EXPECT_EQ(prev, 0.0);  // full depth is exact
}

// Cutting the chunk list at any plane boundary decodes to exactly what a
// depth-capped decode of the full stream produces — the property that lets
// the transmit side truncate the wire stream without changing semantics.
TEST(Bitplane, TruncationAtEveryPlaneBoundaryMatchesCappedDecode) {
  Rng rng(7);
  const Tensor coded = Tensor::rand_uniform(Shape{8, 12}, rng, -1.0F, 1.0F);
  const QuantizedFrame q = quantize_frame(coded);
  const PlaneStream full = encode_bitplanes(q);
  {
    // Depth 0: an empty chunk list decodes to all-zero magnitudes. (A cap of
    // 0 means "all planes" by contract, so it is not part of the sweep.)
    PlaneStream cut = full;
    cut.planes.clear();
    const BitplaneDecode none = decode_bitplanes(cut);
    EXPECT_EQ(none.decoded_planes, 0);
    for (const std::int16_t v : none.frame.values) {
      EXPECT_EQ(v, 0);
    }
  }
  for (int depth = 1; depth <= full.plane_count; ++depth) {
    PlaneStream cut = full;
    cut.planes.resize(static_cast<std::size_t>(depth));
    const BitplaneDecode from_cut = decode_bitplanes(cut);
    const BitplaneDecode from_cap = decode_bitplanes(full, depth);
    EXPECT_EQ(from_cut.decoded_planes, depth);
    EXPECT_EQ(from_cap.decoded_planes, depth);
    EXPECT_EQ(from_cut.frame.values, from_cap.frame.values);
  }
}

// Transmit-side truncation emits a byte-identical prefix of the full encode:
// the encoder's plane chunks do not depend on how many follow them.
TEST(Bitplane, EncodeWithCapEmitsPrefixOfFullEncode) {
  Rng rng(11);
  const Tensor coded = Tensor::rand_uniform(Shape{9, 9}, rng, -4.0F, 4.0F);
  const QuantizedFrame q = quantize_frame(coded);
  const PlaneStream full = encode_bitplanes(q);
  ASSERT_GT(full.plane_count, 3);
  for (int cap = 1; cap <= full.plane_count; ++cap) {
    const PlaneStream truncated = encode_bitplanes(q, cap);
    EXPECT_EQ(truncated.plane_count, full.plane_count);  // header keeps full depth
    ASSERT_EQ(truncated.planes.size(), static_cast<std::size_t>(cap));
    for (int j = 0; j < cap; ++j) {
      EXPECT_EQ(truncated.planes[static_cast<std::size_t>(j)],
                full.planes[static_cast<std::size_t>(j)]);
    }
    EXPECT_LE(truncated.payload_bytes(), full.payload_bytes());
  }
}

TEST(StreamHeader, SerializeParseRoundTrip) {
  Rng rng(3);
  const QuantizedFrame q =
      quantize_frame(Tensor::rand_uniform(Shape{5, 6}, rng, -1.0F, 1.0F));
  const PlaneStream stream = encode_bitplanes(q);
  const auto bytes = serialize_stream_header(stream);
  PlaneStream parsed;
  ASSERT_TRUE(parse_stream_header(bytes.data(), bytes.size(), parsed));
  EXPECT_EQ(parsed.scale, stream.scale);
  EXPECT_EQ(parsed.height, stream.height);
  EXPECT_EQ(parsed.width, stream.width);
  EXPECT_EQ(parsed.plane_count, stream.plane_count);
}

TEST(StreamHeader, TruncatedHeaderIsRejected) {
  Rng rng(4);
  const PlaneStream stream =
      encode_bitplanes(quantize_frame(Tensor::rand_uniform(Shape{4, 4}, rng)));
  const auto bytes = serialize_stream_header(stream);
  PlaneStream parsed;
  for (std::size_t size = 0; size < kStreamHeaderBytes; ++size) {
    EXPECT_FALSE(parse_stream_header(bytes.data(), size, parsed));
  }
}

// Single-byte corruption fuzz: every parse either rejects the header or
// yields structurally valid fields — never UB, never absurd geometry.
TEST(StreamHeader, CorruptHeaderBytesNeverYieldInvalidFields) {
  Rng rng(5);
  const PlaneStream stream =
      encode_bitplanes(quantize_frame(Tensor::rand_uniform(Shape{6, 6}, rng)));
  const auto golden = serialize_stream_header(stream);
  for (std::size_t pos = 0; pos < golden.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bytes = golden;
      bytes[pos] = static_cast<std::uint8_t>(bytes[pos] ^ (1U << bit));
      PlaneStream parsed;
      if (parse_stream_header(bytes.data(), bytes.size(), parsed)) {
        EXPECT_GT(parsed.height, 0);
        EXPECT_GT(parsed.width, 0);
        EXPECT_LE(parsed.plane_count, kMaxBitplanes);
        EXPECT_TRUE(std::isfinite(parsed.scale));
        EXPECT_GE(parsed.scale, 0.0F);
      }
    }
  }
}

// Corrupt chunk bytes must never crash the decoder: it either decodes some
// prefix or stops at the damaged plane, and every reported plane count is
// within bounds. (On the real wire the CSI-2 CRC catches this first; the
// decoder still has to be safe on arbitrary bytes.)
TEST(Bitplane, CorruptChunkBytesDecodeSafely) {
  Rng rng(6);
  const Tensor coded = Tensor::rand_uniform(Shape{10, 10}, rng, -2.0F, 2.0F);
  const QuantizedFrame q = quantize_frame(coded);
  const PlaneStream full = encode_bitplanes(q);
  ASSERT_GT(full.plane_count, 0);
  for (int trial = 0; trial < 200; ++trial) {
    PlaneStream damaged = full;
    const auto plane =
        static_cast<std::size_t>(rng.uniform_int(0, full.plane_count - 1));
    auto& chunk = damaged.planes[plane];
    const auto byte =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(chunk.size()) - 1));
    chunk[byte] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const BitplaneDecode decode = decode_bitplanes(damaged);
    EXPECT_GE(decode.decoded_planes, 0);
    EXPECT_LE(decode.decoded_planes, static_cast<int>(full.plane_count));
    EXPECT_EQ(decode.frame.values.size(), q.values.size());
  }
}

// A chunk shorter than the range coder's minimum stream ends the decode at
// that plane; earlier planes are kept.
TEST(Bitplane, UndersizedChunkStopsDecodeCleanly) {
  Rng rng(8);
  const QuantizedFrame q =
      quantize_frame(Tensor::rand_uniform(Shape{6, 6}, rng, -1.0F, 1.0F));
  const PlaneStream full = encode_bitplanes(q);
  ASSERT_GT(full.plane_count, 1);
  PlaneStream damaged = full;
  damaged.planes[1] = {0x00, 0x01};  // too short to be a range-coder stream
  const BitplaneDecode decode = decode_bitplanes(damaged);
  EXPECT_EQ(decode.decoded_planes, 1);
  EXPECT_EQ(decode.frame.values,
            decode_bitplanes(full, 1).frame.values);
}

TEST(Bitplane, InvalidArgumentsThrow) {
  Rng rng(9);
  const QuantizedFrame q = quantize_frame(Tensor::rand_uniform(Shape{4, 4}, rng));
  EXPECT_THROW(encode_bitplanes(q, -1), std::exception);
  const PlaneStream stream = encode_bitplanes(q);
  EXPECT_THROW(decode_bitplanes(stream, -2), std::exception);
  QuantizedFrame bad = q;
  bad.values.pop_back();
  EXPECT_THROW(encode_bitplanes(bad), std::exception);
}

}  // namespace
}  // namespace snappix
