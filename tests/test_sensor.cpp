// Tests for the cycle-level stacked-sensor simulator (paper Sec. V / Fig. 5):
// pixel protocol, DFF pattern distribution, ADC, MIPI, noise, and functional
// equivalence between the hardware protocol and Eqn. 1.
#include <gtest/gtest.h>

#include <cmath>

#include "ce/encode.h"
#include "ce/pattern.h"
#include "sensor/adc.h"
#include "sensor/mipi.h"
#include "sensor/noise.h"
#include "sensor/pattern_memory.h"
#include "sensor/pixel.h"
#include "sensor/sensor.h"
#include "util/rng.h"

namespace snappix {
namespace {

using ce::CePattern;
using sensor::AdcConfig;
using sensor::ApsPixel;
using sensor::ColumnAdc;
using sensor::DffShiftChain;
using sensor::MipiConfig;
using sensor::MipiCsi2Link;
using sensor::NoiseConfig;
using sensor::NoiseModel;
using sensor::SensorConfig;
using sensor::StackedSensor;

TEST(ApsPixelTest, ExposeTransferRead) {
  ApsPixel pixel;
  pixel.expose(100.0F);
  EXPECT_FLOAT_EQ(pixel.pd_electrons(), 100.0F);
  EXPECT_FLOAT_EQ(pixel.fd_electrons(), 0.0F);
  pixel.transfer();
  EXPECT_FLOAT_EQ(pixel.pd_electrons(), 0.0F);
  EXPECT_FLOAT_EQ(pixel.fd_electrons(), 100.0F);
  EXPECT_FLOAT_EQ(pixel.read(), 100.0F);
}

TEST(ApsPixelTest, FdAccumulatesAcrossTransfers) {
  // The decoupled-reset behaviour of Fig. 5: multiple slot transfers add up.
  ApsPixel pixel;
  pixel.expose(30.0F);
  pixel.transfer();
  pixel.expose(50.0F);
  pixel.transfer();
  EXPECT_FLOAT_EQ(pixel.fd_electrons(), 80.0F);
}

TEST(ApsPixelTest, PdResetDiscardsUntransferredCharge) {
  // Unexposed-slot light accumulates on the PD but a later pattern reset
  // (M1) clears it before the next coded exposure — the core CE mechanism.
  ApsPixel pixel;
  pixel.expose(70.0F);  // slot with CE bit 0: integrates but never transfers
  pixel.reset_pd();     // CE bit 1 at next slot start
  pixel.expose(40.0F);
  pixel.transfer();
  EXPECT_FLOAT_EQ(pixel.fd_electrons(), 40.0F);
}

TEST(ApsPixelTest, FullWellSaturation) {
  ApsPixel pixel(sensor::PixelParams{.full_well_electrons = 100.0F, .conversion_gain = 1.0F});
  pixel.expose(250.0F);
  EXPECT_FLOAT_EQ(pixel.pd_electrons(), 100.0F);
  pixel.transfer();
  pixel.expose(250.0F);
  pixel.transfer();
  EXPECT_FLOAT_EQ(pixel.fd_electrons(), 100.0F);  // FD also saturates
}

TEST(ApsPixelTest, NegativeLightClamped) {
  ApsPixel pixel;
  pixel.expose(-5.0F);
  EXPECT_FLOAT_EQ(pixel.pd_electrons(), 0.0F);
}

TEST(DffChainTest, LoadSlotPlacesBitsAtPixelPositions) {
  DffShiftChain chain(4);
  chain.load_slot({1, 0, 1, 1});
  EXPECT_EQ(chain.bit_at(0), 1);
  EXPECT_EQ(chain.bit_at(1), 0);
  EXPECT_EQ(chain.bit_at(2), 1);
  EXPECT_EQ(chain.bit_at(3), 1);
}

TEST(DffChainTest, CostsExactlyLengthCyclesPerLoad) {
  DffShiftChain chain(16);
  chain.load_slot(std::vector<std::uint8_t>(16, 1));
  EXPECT_EQ(chain.cycles(), 16U);
  chain.load_slot(std::vector<std::uint8_t>(16, 0));
  EXPECT_EQ(chain.cycles(), 32U);
}

TEST(DffChainTest, PowerGatingBlocksShifts) {
  DffShiftChain chain(2);
  chain.power_gate();
  EXPECT_TRUE(chain.power_gated());
  EXPECT_THROW(chain.shift_in(1), std::runtime_error);
  chain.wake();
  chain.shift_in(1);
  EXPECT_EQ(chain.bit_at(0), 1);
}

TEST(DffChainTest, LoadSlotWakesChain) {
  DffShiftChain chain(2);
  chain.power_gate();
  chain.load_slot({1, 0});  // must wake implicitly (start of each slot)
  EXPECT_EQ(chain.bit_at(0), 1);
}

TEST(DffChainTest, WrongBitCountThrows) {
  DffShiftChain chain(4);
  EXPECT_THROW(chain.load_slot({1, 0}), std::runtime_error);
}

TEST(AdcTest, QuantizesFullScale) {
  ColumnAdc adc(AdcConfig{.bits = 8, .full_scale = 256.0F, .cycles_per_conversion = 8});
  EXPECT_EQ(adc.convert(0.0F), 0U);
  EXPECT_EQ(adc.convert(256.0F), 255U);
  EXPECT_EQ(adc.convert(128.0F), 128U);
  EXPECT_EQ(adc.convert(1000.0F), 255U);  // clamps
  EXPECT_EQ(adc.convert(-10.0F), 0U);
  EXPECT_EQ(adc.conversions(), 5U);
  EXPECT_EQ(adc.cycles(), 40U);
}

TEST(AdcTest, BitDepthControlsCodes) {
  ColumnAdc adc10(AdcConfig{.bits = 10, .full_scale = 1.0F, .cycles_per_conversion = 10});
  EXPECT_EQ(adc10.convert(1.0F), 1023U);
  EXPECT_THROW(ColumnAdc(AdcConfig{.bits = 0, .full_scale = 1.0F, .cycles_per_conversion = 1}),
               std::runtime_error);
}

TEST(MipiTest, PacketOverheadAccounting) {
  MipiCsi2Link link(MipiConfig{.lanes = 1, .byte_clock_hz = 1e6, .header_bytes = 4,
                               .footer_bytes = 2});
  link.send_line(100);
  EXPECT_EQ(link.total_bytes(), 106U);
  EXPECT_EQ(link.payload_bytes(), 100U);
  EXPECT_EQ(link.packets(), 1U);
  link.send_line(100);
  EXPECT_EQ(link.total_bytes(), 212U);
  EXPECT_NEAR(link.transmit_seconds(), 212e-6, 1e-9);
}

TEST(MipiTest, LanesDivideTimeOnLaneAlignedPackets) {
  // 994 payload + 6 overhead = 1000 wire bytes: divisible by 4, so four lanes
  // really do cut the time by exactly 4.
  MipiCsi2Link one(MipiConfig{.lanes = 1, .byte_clock_hz = 1e6});
  MipiCsi2Link four(MipiConfig{.lanes = 4, .byte_clock_hz = 1e6});
  one.send_line(994);
  four.send_line(994);
  EXPECT_NEAR(one.transmit_seconds() / four.transmit_seconds(), 4.0, 1e-9);
}

// Regression: wire time must follow the MOST-LOADED lane. 1000 payload + 6
// overhead = 1006 bytes on 4 lanes puts 252 bytes on lanes 0-1 and 251 on
// lanes 2-3 — the packet takes 252 byte-times, not the 251.5 that
// total_bytes / lanes used to claim.
TEST(MipiTest, TransmitTimeFollowsMostLoadedLane) {
  MipiCsi2Link four(MipiConfig{.lanes = 4, .byte_clock_hz = 1e6});
  four.send_line(1000);
  EXPECT_EQ(four.lane_bytes(0), 252U);
  EXPECT_EQ(four.lane_bytes(1), 252U);
  EXPECT_EQ(four.lane_bytes(2), 251U);
  EXPECT_EQ(four.lane_bytes(3), 251U);
  EXPECT_NEAR(four.transmit_seconds(), 252e-6, 1e-12);
  // Ceilings accumulate per packet: two 1006-byte packets cost 2 x 252
  // byte-times, not ceil(2012 / 4) = 503 — each packet waits for its own
  // slowest lane before the next begins.
  four.send_line(1000);
  EXPECT_NEAR(four.transmit_seconds(), 504e-6, 1e-12);
  // The framed-transport entry point shares the accounting.
  MipiCsi2Link framed(MipiConfig{.lanes = 2, .byte_clock_hz = 1e6});
  framed.send_packet(7, 1);  // 7 bytes on 2 lanes: 4 + 3, time = 4 byte-times
  EXPECT_EQ(framed.lane_bytes(0), 4U);
  EXPECT_EQ(framed.lane_bytes(1), 3U);
  EXPECT_NEAR(framed.transmit_seconds(), 4e-6, 1e-12);
  EXPECT_EQ(framed.total_bytes(), 7U);
  EXPECT_EQ(framed.payload_bytes(), 1U);
}

TEST(NoiseTest, DisabledIsIdentity) {
  NoiseModel noise(NoiseConfig{}, 16);
  Rng rng(1);
  EXPECT_FLOAT_EQ(noise.apply_exposure(0, 123.0F, 0.01, rng), 123.0F);
  EXPECT_FLOAT_EQ(noise.apply_read(0, 45.0F, rng), 45.0F);
}

TEST(NoiseTest, ShotNoiseHasPoissonScaling) {
  NoiseConfig cfg;
  cfg.enabled = true;
  cfg.read_noise_electrons = 0.0F;
  cfg.dark_current_e_per_s = 0.0F;
  cfg.fpn_gain_sigma = 0.0F;
  cfg.fpn_offset_electrons = 0.0F;
  NoiseModel noise(cfg, 1);
  Rng rng(2);
  const float mean_e = 400.0F;
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const double v = noise.apply_exposure(0, mean_e, 0.0, rng);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, mean_e, 2.0);          // unbiased
  EXPECT_NEAR(var, mean_e, mean_e * 0.2);  // variance ~= mean (Poisson)
}

TEST(NoiseTest, FixedPatternNoiseIsDeterministicPerPixel) {
  NoiseConfig cfg;
  cfg.enabled = true;
  cfg.shot_noise = false;
  cfg.read_noise_electrons = 0.0F;
  cfg.dark_current_e_per_s = 0.0F;
  NoiseModel noise(cfg, 8);
  Rng rng(3);
  const float a1 = noise.apply_exposure(3, 100.0F, 0.0, rng);
  const float a2 = noise.apply_exposure(3, 100.0F, 0.0, rng);
  EXPECT_FLOAT_EQ(a1, a2);  // same pixel, same gain
}

// --- full sensor ------------------------------------------------------------

SensorConfig small_sensor_config(int image, int slots) {
  SensorConfig cfg;
  cfg.height = image;
  cfg.width = image;
  cfg.electrons_per_unit = 200.0F;
  cfg.adc.full_scale = 200.0F * static_cast<float>(slots);
  cfg.pixel.full_well_electrons = cfg.adc.full_scale;
  return cfg;
}

TEST(StackedSensorTest, NoiselessCaptureMatchesEquationOne) {
  Rng scene_rng(4);
  Rng cap_rng(5);
  const CePattern pattern = CePattern::random(8, 4, scene_rng, 0.5F);
  StackedSensor sensor(small_sensor_config(16, 8), pattern);
  const Tensor scene = Tensor::rand_uniform(Shape{8, 16, 16}, scene_rng);
  const Tensor captured = sensor.capture(scene, cap_rng);
  const Tensor ideal = sensor.ideal_codes(scene);
  // Protocol result must match the mathematical model to within 1 LSB.
  for (std::size_t i = 0; i < captured.data().size(); ++i) {
    EXPECT_NEAR(captured.data()[i], ideal.data()[i], 1.0F) << "pixel " << i;
  }
}

TEST(StackedSensorTest, LongExposureSaturatesBrightScene) {
  Rng rng(6);
  SensorConfig cfg = small_sensor_config(8, 4);
  cfg.adc.full_scale = 200.0F;  // one slot's worth of range
  cfg.pixel.full_well_electrons = 200.0F;
  StackedSensor sensor(cfg, CePattern::long_exposure(4, 2));
  const Tensor scene = Tensor::ones(Shape{4, 8, 8});
  const Tensor captured = sensor.capture(scene, rng);
  for (const float v : captured.data()) {
    EXPECT_FLOAT_EQ(v, 255.0F);  // full-well + ADC clamp
  }
}

TEST(StackedSensorTest, PatternStreamingCycleAccounting) {
  Rng rng(7);
  const int tile = 4;
  const int slots = 8;
  const CePattern pattern = CePattern::random(slots, tile, rng, 0.5F);
  StackedSensor sensor(small_sensor_config(16, slots), pattern);
  const Tensor scene = Tensor::rand_uniform(Shape{slots, 16, 16}, rng);
  (void)sensor.capture(scene, rng);
  const auto& stats = sensor.stats();
  // Two streams (reset + transfer) of P bits per slot, per chain.
  const std::uint64_t chains = 16 / tile * (16 / tile);
  EXPECT_EQ(stats.pattern_bits_streamed,
            2ULL * slots * tile * tile * chains);
  EXPECT_EQ(stats.pattern_clk_cycles, 2ULL * slots * tile * tile);
  EXPECT_EQ(stats.adc_conversions, 16ULL * 16ULL);
  // MIPI: 16 rows of 16 payload bytes + 6 bytes packet overhead each.
  EXPECT_EQ(stats.mipi_bytes, 16ULL * (16 + 6));
}

TEST(StackedSensorTest, ResetAndTransferCountsMatchPattern) {
  Rng rng(8);
  const CePattern pattern = CePattern::sparse_random(8, 4, rng);
  StackedSensor sensor(small_sensor_config(16, 8), pattern);
  const Tensor scene = Tensor::rand_uniform(Shape{8, 16, 16}, rng);
  (void)sensor.capture(scene, rng);
  // Sparse random: each pixel exposed exactly once -> one reset+transfer per
  // pixel over the whole frame.
  EXPECT_EQ(sensor.stats().pd_resets, 16ULL * 16ULL);
  EXPECT_EQ(sensor.stats().charge_transfers, 16ULL * 16ULL);
}

TEST(StackedSensorTest, FrameTimeComposition) {
  Rng rng(9);
  const CePattern pattern = CePattern::long_exposure(4, 2);
  StackedSensor sensor(small_sensor_config(8, 4), pattern);
  const Tensor scene = Tensor::rand_uniform(Shape{4, 8, 8}, rng);
  (void)sensor.capture(scene, rng);
  const auto& stats = sensor.stats();
  EXPECT_GT(stats.pattern_time_s, 0.0);
  EXPECT_GT(stats.exposure_time_s, 0.0);
  EXPECT_GT(stats.readout_time_s, 0.0);
  EXPECT_GT(stats.mipi_time_s, 0.0);
  EXPECT_NEAR(stats.frame_time_s,
              stats.pattern_time_s + stats.exposure_time_s + stats.readout_time_s +
                  stats.mipi_time_s,
              1e-12);
  // Exposure dominates at 480 Hz slots.
  EXPECT_GT(stats.exposure_time_s, stats.pattern_time_s);
}

TEST(StackedSensorTest, NoisyCaptureStaysCloseToIdeal) {
  Rng rng(10);
  SensorConfig cfg = small_sensor_config(16, 8);
  cfg.noise.enabled = true;
  const CePattern pattern = CePattern::random(8, 4, rng, 0.5F);
  StackedSensor sensor(cfg, pattern);
  const Tensor scene = Tensor::rand_uniform(Shape{8, 16, 16}, rng, 0.3F, 0.9F);
  const Tensor captured = sensor.capture(scene, rng);
  const Tensor ideal = sensor.ideal_codes(scene);
  double err = 0.0;
  for (std::size_t i = 0; i < captured.data().size(); ++i) {
    err += std::fabs(captured.data()[i] - ideal.data()[i]);
  }
  err /= static_cast<double>(captured.data().size());
  EXPECT_GT(err, 0.0);   // noise did something
  EXPECT_LT(err, 10.0);  // but within a few LSBs on average
}

TEST(StackedSensorTest, MismatchedSceneThrows) {
  Rng rng(11);
  StackedSensor sensor(small_sensor_config(16, 8), CePattern::long_exposure(8, 4));
  EXPECT_THROW(sensor.capture(Tensor::zeros(Shape{4, 16, 16}), rng), std::runtime_error);
  EXPECT_THROW(sensor.capture(Tensor::zeros(Shape{8, 8, 8}), rng), std::runtime_error);
}

TEST(StackedSensorTest, IndivisibleTileThrows) {
  SensorConfig cfg = small_sensor_config(10, 4);
  EXPECT_THROW(StackedSensor(cfg, CePattern::long_exposure(4, 4)), std::runtime_error);
}

// Property sweep: protocol == Eqn. 1 across pattern families and geometries.
struct SensorCase {
  int image;
  int slots;
  int tile;
  int pattern_kind;  // 0 long, 1 short, 2 random, 3 sparse
};

class SensorEquivalenceTest : public ::testing::TestWithParam<SensorCase> {};

TEST_P(SensorEquivalenceTest, ProtocolMatchesMath) {
  const auto param = GetParam();
  Rng rng(static_cast<std::uint64_t>(param.image * 1000 + param.slots * 10 + param.tile));
  CePattern pattern = [&] {
    switch (param.pattern_kind) {
      case 0:
        return CePattern::long_exposure(param.slots, param.tile);
      case 1:
        return CePattern::short_exposure(param.slots, param.tile, 4);
      case 2:
        return CePattern::random(param.slots, param.tile, rng, 0.5F);
      default:
        return CePattern::sparse_random(param.slots, param.tile, rng);
    }
  }();
  StackedSensor sensor(small_sensor_config(param.image, param.slots), pattern);
  const Tensor scene =
      Tensor::rand_uniform(Shape{param.slots, param.image, param.image}, rng);
  Rng cap_rng(99);
  const Tensor captured = sensor.capture(scene, cap_rng);
  const Tensor ideal = sensor.ideal_codes(scene);
  for (std::size_t i = 0; i < captured.data().size(); ++i) {
    ASSERT_NEAR(captured.data()[i], ideal.data()[i], 1.0F);
  }
}

INSTANTIATE_TEST_SUITE_P(SensorGrid, SensorEquivalenceTest,
                         ::testing::Values(SensorCase{8, 4, 2, 0}, SensorCase{8, 4, 2, 1},
                                           SensorCase{16, 8, 4, 2}, SensorCase{16, 8, 4, 3},
                                           SensorCase{16, 16, 8, 2}, SensorCase{32, 16, 8, 2},
                                           SensorCase{16, 2, 1, 2}, SensorCase{8, 16, 2, 3}));

}  // namespace
}  // namespace snappix
